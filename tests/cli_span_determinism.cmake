# Span determinism at the CLI level (driven by the cli_span_determinism
# ctest entry): the causal span export is recorded on run 0 only and its
# sampling decision is a pure function of (seed, proc, op), so the span
# JSONL and the Chrome trace must be byte-identical between --jobs 1 and
# --jobs 4, fault-free and under a fault plan (which exercises the retry /
# unanswered-RPC span paths).  See docs/OBSERVABILITY.md for the contract.
#
# Inputs: -DCLI=<path to experiment_cli> -DWORK_DIR=<scratch directory>

if(NOT CLI OR NOT WORK_DIR)
  message(FATAL_ERROR
    "cli_span_determinism.cmake needs -DCLI=... and -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(check_identical label a b)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "${label} diverged between --jobs 1 and --jobs 4: ${a} vs ${b}")
  endif()
endfunction()

# Scenario 1: fault-free multi-run experiment, every op sampled.
set(base_args app=apsp graph=chain size=10 quorum=prob k=3 servers=8
    monotone=1 sync=1 runs=6 cap=5000 seed=5 span-sample=1)
# Scenario 2: the same workload under an explicit fault plan with sampling
# (retry-wait spans, unanswered RPCs, degraded closes must all replay).
set(fault_args app=apsp graph=chain size=10 quorum=prob k=3 servers=8
    monotone=1 sync=0 runs=4 cap=5000 seed=5 span-sample=3
    "fault-plan=outage:2@5-60;slow:1*4@10;drop=0.02;dup=0.01")

foreach(scenario base fault)
  foreach(jobs 1 4)
    set(dir "${WORK_DIR}/${scenario}_j${jobs}")
    file(MAKE_DIRECTORY "${dir}")
    execute_process(
      COMMAND "${CLI}" ${${scenario}_args} jobs=${jobs}
              "spans-out=${dir}/spans.jsonl"
              "spans-chrome-out=${dir}/spans.json"
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "experiment_cli ${scenario} jobs=${jobs} failed (rc=${rc})\n"
        "${out}\n${err}")
    endif()
    # Strip the "wrote ... to <path>" lines: the per-jobs scratch paths are
    # the one legitimate stdout difference.
    string(REGEX REPLACE "wrote [^\n]*\n" "" out "${out}")
    file(WRITE "${dir}/stdout.txt" "${out}")
  endforeach()
  set(d1 "${WORK_DIR}/${scenario}_j1")
  set(d4 "${WORK_DIR}/${scenario}_j4")
  check_identical("${scenario}: stdout" "${d1}/stdout.txt" "${d4}/stdout.txt")
  check_identical("${scenario}: span JSONL"
                  "${d1}/spans.jsonl" "${d4}/spans.jsonl")
  check_identical("${scenario}: span Chrome trace"
                  "${d1}/spans.json" "${d4}/spans.json")
endforeach()
