#include "quorum/analysis.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "quorum/rowa.hpp"
#include "quorum/singleton.hpp"
#include "util/math.hpp"

namespace pqra::quorum {
namespace {

TEST(IntersectionTest, StrictSystemsAlwaysIntersect) {
  util::Rng rng(1);
  EXPECT_TRUE(check_intersection(MajorityQuorums(9), rng));
  EXPECT_TRUE(check_intersection(GridQuorums(4, 4), rng));
  EXPECT_TRUE(check_intersection(FppQuorums(3), rng));
  EXPECT_TRUE(check_intersection(SingletonQuorums(5), rng));
  EXPECT_TRUE(check_intersection(ReadOneWriteAll(5), rng));
}

TEST(IntersectionTest, SmallProbabilisticQuorumsMiss) {
  util::Rng rng(2);
  // n = 34, k = 2: nonoverlap probability ~ 0.886 — misses show up fast.
  EXPECT_FALSE(check_intersection(ProbabilisticQuorums(34, 2), rng, 200));
}

TEST(IntersectionTest, OverHalfProbabilisticQuorumsAreStrict) {
  util::Rng rng(3);
  EXPECT_TRUE(check_intersection(ProbabilisticQuorums(34, 18), rng, 500));
}

TEST(EmpiricalNonoverlapTest, MatchesTheFormula) {
  util::Rng rng(5);
  for (std::size_t k : {1u, 3u, 6u, 10u}) {
    double expected = util::quorum_nonoverlap_probability(34, k);
    double measured = empirical_nonoverlap(ProbabilisticQuorums(34, k), rng,
                                           20000);
    EXPECT_NEAR(measured, expected, 0.02) << "k=" << k;
  }
}

TEST(LoadTest, ProbabilisticLoadIsKOverN) {
  util::Rng rng(7);
  ProbabilisticQuorums qs(36, 6);
  LoadEstimate est = empirical_load(qs, AccessKind::kRead, rng, 40000);
  // Uniform strategy: every server accessed with frequency k/n ~ 1/6.
  EXPECT_NEAR(est.busiest, 6.0 / 36.0, 0.01);
  EXPECT_NEAR(est.average, 6.0 / 36.0, 0.005);
}

TEST(LoadTest, MajorityLoadIsAboutHalf) {
  util::Rng rng(9);
  LoadEstimate est =
      empirical_load(MajorityQuorums(35), AccessKind::kRead, rng, 20000);
  EXPECT_NEAR(est.busiest, 18.0 / 35.0, 0.02);
}

TEST(LoadTest, GridLoadIsOrderInverseSqrtN) {
  util::Rng rng(11);
  GridQuorums qs(6, 6);  // n = 36, quorum size 11
  LoadEstimate est = empirical_load(qs, AccessKind::kRead, rng, 40000);
  EXPECT_NEAR(est.busiest, 11.0 / 36.0, 0.02);
}

TEST(LoadTest, SingletonLoadIsOne) {
  util::Rng rng(13);
  LoadEstimate est =
      empirical_load(SingletonQuorums(5), AccessKind::kRead, rng, 100);
  EXPECT_DOUBLE_EQ(est.busiest, 1.0);
}

TEST(LoadTest, NaorWoolLowerBoundHolds) {
  util::Rng rng(15);
  struct Case {
    std::unique_ptr<QuorumSystem> qs;
  };
  std::vector<std::unique_ptr<QuorumSystem>> systems;
  systems.push_back(std::make_unique<ProbabilisticQuorums>(36, 6));
  systems.push_back(std::make_unique<MajorityQuorums>(36));
  systems.push_back(std::make_unique<GridQuorums>(6, 6));
  systems.push_back(std::make_unique<FppQuorums>(5));
  for (const auto& qs : systems) {
    double bound =
        load_lower_bound(qs->num_servers(), qs->quorum_size(AccessKind::kRead));
    LoadEstimate est = empirical_load(*qs, AccessKind::kRead, rng, 20000);
    EXPECT_GE(est.busiest + 0.02, bound) << qs->name();
  }
}

TEST(SurvivalTest, SurvivesCrashesMatchesSemantics) {
  ProbabilisticQuorums prob(6, 2);
  std::vector<bool> crashed(6, false);
  EXPECT_TRUE(survives_crashes(prob, AccessKind::kRead, crashed));
  for (int i = 0; i < 5; ++i) crashed[i] = true;  // one server left < k = 2
  EXPECT_FALSE(survives_crashes(prob, AccessKind::kRead, crashed));
  crashed[0] = false;  // two alive
  EXPECT_TRUE(survives_crashes(prob, AccessKind::kRead, crashed));
}

TEST(SurvivalTest, GridDiesWithARow) {
  GridQuorums qs(3, 3);
  std::vector<bool> crashed(9, false);
  crashed[0] = crashed[1] = crashed[2] = true;  // full top row
  EXPECT_FALSE(survives_crashes(qs, AccessKind::kRead, crashed));
  crashed[2] = false;  // partial row: column 2 quorums survive
  EXPECT_TRUE(survives_crashes(qs, AccessKind::kRead, crashed));
}

TEST(SurvivalTest, MonteCarloProbabilityOrdering) {
  // At 30% crash probability, the probabilistic sqrt-n system should survive
  // far more often than FPP of comparable quorum size.
  util::Rng rng(17);
  FppQuorums fpp(5);                              // n = 31, quorums of 6
  ProbabilisticQuorums prob(31, 6);               // same n, same size
  double p_fpp = survival_probability(fpp, AccessKind::kRead, 0.3, rng, 4000);
  double p_prob = survival_probability(prob, AccessKind::kRead, 0.3, rng, 4000);
  EXPECT_GT(p_prob, 0.99);
  EXPECT_LT(p_fpp, p_prob);
}

TEST(BruteForceMinKillTest, MatchesAnalyticValues) {
  EXPECT_EQ(brute_force_min_kill(ProbabilisticQuorums(6, 2),
                                 AccessKind::kRead),
            5u);
  EXPECT_EQ(brute_force_min_kill(MajorityQuorums(7), AccessKind::kRead), 4u);
  EXPECT_EQ(brute_force_min_kill(GridQuorums(3, 3), AccessKind::kRead), 3u);
  EXPECT_EQ(brute_force_min_kill(FppQuorums(2), AccessKind::kRead), 3u);
  EXPECT_EQ(brute_force_min_kill(SingletonQuorums(4), AccessKind::kRead), 1u);
}

TEST(BruteForceMinKillTest, AgreesWithMinKillAcrossSystems) {
  std::vector<std::unique_ptr<QuorumSystem>> systems;
  systems.push_back(std::make_unique<ProbabilisticQuorums>(8, 3));
  systems.push_back(std::make_unique<MajorityQuorums>(8));
  systems.push_back(std::make_unique<GridQuorums>(2, 4));
  systems.push_back(std::make_unique<FppQuorums>(2));
  systems.push_back(std::make_unique<ReadOneWriteAll>(5));
  for (const auto& qs : systems) {
    for (AccessKind kind : {AccessKind::kRead, AccessKind::kWrite}) {
      EXPECT_EQ(brute_force_min_kill(*qs, kind), qs->min_kill(kind))
          << qs->name();
    }
  }
}

TEST(AvailabilityTradeoffTest, ProbabilisticBreaksTheTradeoff) {
  // §4: strict systems with optimal sqrt(n) load have only O(sqrt n)
  // availability; the probabilistic system with the same load has Theta(n).
  FppQuorums fpp(5);  // n = 31, load ~ 6/31
  ProbabilisticQuorums prob(31, 6);
  EXPECT_EQ(fpp.min_kill(AccessKind::kRead), 6u);          // Theta(sqrt n)
  EXPECT_EQ(prob.min_kill(AccessKind::kRead), 31u - 6 + 1);  // Theta(n)
}

}  // namespace
}  // namespace pqra::quorum
