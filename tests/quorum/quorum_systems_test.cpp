#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "quorum/rowa.hpp"
#include "quorum/singleton.hpp"

namespace pqra::quorum {
namespace {

void expect_valid_quorum(const QuorumSystem& qs, const std::vector<ServerId>& q,
                         std::size_t expected_size) {
  EXPECT_EQ(q.size(), expected_size);
  std::set<ServerId> unique(q.begin(), q.end());
  EXPECT_EQ(unique.size(), q.size()) << "duplicate servers in quorum";
  for (ServerId s : q) EXPECT_LT(s, qs.num_servers());
}

// ---------------------------------------------------------------- parameterized
// Every (n, k) probabilistic configuration must produce valid quorums.

struct ProbParam {
  std::size_t n;
  std::size_t k;
};

class ProbabilisticSweep : public ::testing::TestWithParam<ProbParam> {};

TEST_P(ProbabilisticSweep, PicksValidQuorums) {
  auto [n, k] = GetParam();
  ProbabilisticQuorums qs(n, k);
  util::Rng rng(n * 131 + k);
  for (int i = 0; i < 50; ++i) {
    auto q = qs.sample(AccessKind::kRead, rng);
    expect_valid_quorum(qs, q, k);
  }
  EXPECT_EQ(qs.min_kill(AccessKind::kRead), n - k + 1);
  EXPECT_EQ(qs.is_strict(), 2 * k > n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ProbabilisticSweep,
    ::testing::Values(ProbParam{1, 1}, ProbParam{5, 1}, ProbParam{5, 3},
                      ProbParam{5, 5}, ProbParam{34, 1}, ProbParam{34, 6},
                      ProbParam{34, 17}, ProbParam{34, 18}, ProbParam{34, 34},
                      ProbParam{100, 10}, ProbParam{100, 51}));

TEST(ProbabilisticTest, CoversAllServersEventually) {
  ProbabilisticQuorums qs(20, 3);
  util::Rng rng(7);
  std::set<ServerId> seen;
  for (int i = 0; i < 500; ++i) {
    for (ServerId s : qs.sample(AccessKind::kRead, rng)) seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(ProbabilisticTest, RejectsBadParameters) {
  EXPECT_THROW(ProbabilisticQuorums(0, 0), std::logic_error);
  EXPECT_THROW(ProbabilisticQuorums(5, 0), std::logic_error);
  EXPECT_THROW(ProbabilisticQuorums(5, 6), std::logic_error);
}

// ----------------------------------------------------------------- majority
TEST(MajorityTest, QuorumSizeIsFloorHalfPlusOne) {
  EXPECT_EQ(MajorityQuorums(1).quorum_size(AccessKind::kRead), 1u);
  EXPECT_EQ(MajorityQuorums(2).quorum_size(AccessKind::kRead), 2u);
  EXPECT_EQ(MajorityQuorums(5).quorum_size(AccessKind::kRead), 3u);
  EXPECT_EQ(MajorityQuorums(34).quorum_size(AccessKind::kRead), 18u);
}

TEST(MajorityTest, AvailabilityIsCeilHalf) {
  EXPECT_EQ(MajorityQuorums(5).min_kill(AccessKind::kRead), 3u);
  EXPECT_EQ(MajorityQuorums(6).min_kill(AccessKind::kRead), 3u);
  EXPECT_EQ(MajorityQuorums(34).min_kill(AccessKind::kRead), 17u);
}

TEST(MajorityTest, PicksValidQuorums) {
  MajorityQuorums qs(9);
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    expect_valid_quorum(qs, qs.sample(AccessKind::kWrite, rng), 5);
  }
  EXPECT_TRUE(qs.is_strict());
}

// --------------------------------------------------------------------- grid
TEST(GridTest, QuorumIsRowPlusColumn) {
  GridQuorums qs(3, 4);
  EXPECT_EQ(qs.num_servers(), 12u);
  EXPECT_EQ(qs.quorum_size(AccessKind::kRead), 6u);  // 3 + 4 - 1
  EXPECT_EQ(qs.num_quorums(AccessKind::kRead), 12u);
  util::Rng rng(1);
  expect_valid_quorum(qs, qs.sample(AccessKind::kRead, rng), 6);
}

TEST(GridTest, EnumeratedQuorumsArePairwiseIntersecting) {
  GridQuorums qs(3, 3);
  std::vector<ServerId> a, b;
  for (std::size_t i = 0; i < qs.num_quorums(AccessKind::kRead); ++i) {
    qs.quorum(AccessKind::kRead, i, a);
    for (std::size_t j = 0; j < qs.num_quorums(AccessKind::kWrite); ++j) {
      qs.quorum(AccessKind::kWrite, j, b);
      bool intersect = false;
      for (ServerId s : a) {
        if (std::find(b.begin(), b.end(), s) != b.end()) intersect = true;
      }
      EXPECT_TRUE(intersect) << "grid quorums " << i << "," << j;
    }
  }
}

TEST(GridTest, SquareFactoryRequiresPerfectSquare) {
  GridQuorums qs = GridQuorums::square(25);
  EXPECT_EQ(qs.rows(), 5u);
  EXPECT_EQ(qs.cols(), 5u);
  EXPECT_THROW(GridQuorums::square(26), std::logic_error);
}

TEST(GridTest, MinKillIsShorterSide) {
  EXPECT_EQ(GridQuorums(3, 5).min_kill(AccessKind::kRead), 3u);
  EXPECT_EQ(GridQuorums(5, 3).min_kill(AccessKind::kRead), 3u);
  EXPECT_EQ(GridQuorums(4, 4).min_kill(AccessKind::kRead), 4u);
}

// ---------------------------------------------------------------------- fpp
struct FppParam {
  std::size_t order;
};

class FppSweep : public ::testing::TestWithParam<FppParam> {};

TEST_P(FppSweep, ProjectivePlaneStructure) {
  std::size_t s = GetParam().order;
  FppQuorums qs(s);
  std::size_t n = s * s + s + 1;
  EXPECT_EQ(qs.num_servers(), n);
  EXPECT_EQ(qs.num_quorums(AccessKind::kRead), n);
  EXPECT_EQ(qs.quorum_size(AccessKind::kRead), s + 1);

  // Any two distinct lines meet in exactly one point.
  std::vector<ServerId> a, b;
  for (std::size_t i = 0; i < n; ++i) {
    qs.quorum(AccessKind::kRead, i, a);
    EXPECT_EQ(a.size(), s + 1);
    for (std::size_t j = i + 1; j < n; ++j) {
      qs.quorum(AccessKind::kRead, j, b);
      std::size_t common = 0;
      for (ServerId x : a) {
        if (std::find(b.begin(), b.end(), x) != b.end()) ++common;
      }
      EXPECT_EQ(common, 1u) << "lines " << i << " and " << j;
    }
  }

  // Every point lies on exactly s + 1 lines (uniform load structure).
  std::vector<std::size_t> incidence(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    qs.quorum(AccessKind::kRead, i, a);
    for (ServerId x : a) ++incidence[x];
  }
  for (std::size_t count : incidence) EXPECT_EQ(count, s + 1);
}

INSTANTIATE_TEST_SUITE_P(Orders, FppSweep,
                         ::testing::Values(FppParam{2}, FppParam{3},
                                           FppParam{5}, FppParam{7}));

TEST(FppTest, RejectsNonPrimeOrder) {
  EXPECT_THROW(FppQuorums(4), std::logic_error);
  EXPECT_THROW(FppQuorums(6), std::logic_error);
}

// ---------------------------------------------------------- singleton / rowa
TEST(SingletonTest, AlwaysServerZero) {
  SingletonQuorums qs(5);
  util::Rng rng(1);
  auto q = qs.sample(AccessKind::kRead, rng);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0], 0u);
  EXPECT_EQ(qs.min_kill(AccessKind::kWrite), 1u);
}

TEST(RowaTest, ReadOneWriteAllShapes) {
  ReadOneWriteAll qs(6);
  util::Rng rng(2);
  auto r = qs.sample(AccessKind::kRead, rng);
  EXPECT_EQ(r.size(), 1u);
  auto w = qs.sample(AccessKind::kWrite, rng);
  EXPECT_EQ(w.size(), 6u);
  EXPECT_EQ(qs.min_kill(AccessKind::kRead), 6u);
  EXPECT_EQ(qs.min_kill(AccessKind::kWrite), 1u);
}

TEST(RowaTest, ReadQuorumsCoverAllServers) {
  ReadOneWriteAll qs(6);
  util::Rng rng(3);
  std::set<ServerId> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(qs.sample(AccessKind::kRead, rng)[0]);
  }
  EXPECT_EQ(seen.size(), 6u);
}

}  // namespace
}  // namespace pqra::quorum
