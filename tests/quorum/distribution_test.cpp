#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "quorum/analysis.hpp"
#include "quorum/fpp.hpp"
#include "quorum/hierarchical.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/math.hpp"

/// Distributional properties of the quorum sampling strategies, and an
/// analytic cross-check of the Monte-Carlo survival estimator.

namespace pqra::quorum {
namespace {

TEST(DistributionTest, FppPicksLinesUniformly) {
  FppQuorums qs(3);  // 13 lines
  util::Rng rng(3);
  std::map<std::vector<ServerId>, int> counts;
  constexpr int kDraws = 26000;
  std::vector<ServerId> q;
  for (int i = 0; i < kDraws; ++i) {
    qs.pick(AccessKind::kRead, rng, q);
    ++counts[q];
  }
  EXPECT_EQ(counts.size(), 13u);
  for (const auto& [line, count] : counts) {
    EXPECT_NEAR(count, kDraws / 13, 300);
  }
}

TEST(DistributionTest, ProbabilisticPairInclusionIsUniform) {
  // P[servers {a, b} both in a k-subset] = k(k-1)/(n(n-1)) for all pairs.
  const std::size_t n = 10, k = 4;
  ProbabilisticQuorums qs(n, k);
  util::Rng rng(7);
  constexpr int kDraws = 60000;
  std::vector<std::vector<int>> pair_counts(n, std::vector<int>(n, 0));
  std::vector<ServerId> q;
  for (int i = 0; i < kDraws; ++i) {
    qs.pick(AccessKind::kRead, rng, q);
    for (std::size_t a = 0; a < q.size(); ++a) {
      for (std::size_t b = a + 1; b < q.size(); ++b) {
        ++pair_counts[std::min(q[a], q[b])][std::max(q[a], q[b])];
      }
    }
  }
  double expected = static_cast<double>(k) * (k - 1) /
                    (static_cast<double>(n) * (n - 1)) * kDraws;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      EXPECT_NEAR(pair_counts[a][b], expected, expected * 0.08)
          << "pair " << a << "," << b;
    }
  }
}

TEST(DistributionTest, HierarchicalLeavesAreEquallyLoaded) {
  HierarchicalQuorums qs(2);  // 9 leaves, quorums of 4
  util::Rng rng(11);
  LoadEstimate est = empirical_load(qs, AccessKind::kRead, rng, 45000);
  for (double f : est.per_server) {
    EXPECT_NEAR(f, 4.0 / 9.0, 0.01);
  }
}

TEST(DistributionTest, SurvivalMatchesBinomialForProbabilisticSystems) {
  // The probabilistic system survives iff >= k servers stay alive, so the
  // Monte-Carlo estimator must match the exact binomial sum.
  const std::size_t n = 20, k = 6;
  ProbabilisticQuorums qs(n, k);
  util::Rng rng(13);
  for (double f : {0.1, 0.5, 0.8}) {
    double analytic = 0.0;
    for (std::size_t alive = k; alive <= n; ++alive) {
      analytic += util::choose(n, alive) *
                  std::pow(1.0 - f, static_cast<double>(alive)) *
                  std::pow(f, static_cast<double>(n - alive));
    }
    double mc = survival_probability(qs, AccessKind::kRead, f, rng, 40000);
    EXPECT_NEAR(mc, analytic, 0.01) << "f=" << f;
  }
}

TEST(DistributionTest, MajoritySurvivalHasSharpThreshold) {
  MajorityQuorums qs(21);
  util::Rng rng(17);
  double below = survival_probability(qs, AccessKind::kRead, 0.3, rng, 20000);
  double above = survival_probability(qs, AccessKind::kRead, 0.7, rng, 20000);
  EXPECT_GT(below, 0.95);
  EXPECT_LT(above, 0.05);
}

}  // namespace
}  // namespace pqra::quorum
