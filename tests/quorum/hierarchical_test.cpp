#include "quorum/hierarchical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "quorum/analysis.hpp"

namespace pqra::quorum {
namespace {

TEST(HierarchicalTest, SizesFollowThePowers) {
  for (std::size_t h : {0u, 1u, 2u, 3u, 4u}) {
    HierarchicalQuorums qs(h);
    std::size_t n = 1, q = 1;
    for (std::size_t l = 0; l < h; ++l) {
      n *= 3;
      q *= 2;
    }
    EXPECT_EQ(qs.num_servers(), n);
    EXPECT_EQ(qs.quorum_size(AccessKind::kRead), q);
    EXPECT_EQ(qs.min_kill(AccessKind::kRead), q);
  }
}

TEST(HierarchicalTest, QuorumCountIsThreeQSquared) {
  EXPECT_EQ(HierarchicalQuorums(0).num_quorums(AccessKind::kRead), 1u);
  EXPECT_EQ(HierarchicalQuorums(1).num_quorums(AccessKind::kRead), 3u);
  EXPECT_EQ(HierarchicalQuorums(2).num_quorums(AccessKind::kRead), 27u);
  EXPECT_EQ(HierarchicalQuorums(3).num_quorums(AccessKind::kRead), 2187u);
}

TEST(HierarchicalTest, PickedQuorumsAreValid) {
  HierarchicalQuorums qs(3);  // n = 27, quorums of 8
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    auto q = qs.sample(AccessKind::kRead, rng);
    EXPECT_EQ(q.size(), 8u);
    std::set<ServerId> unique(q.begin(), q.end());
    EXPECT_EQ(unique.size(), 8u);
    for (ServerId s : q) EXPECT_LT(s, 27u);
  }
}

TEST(HierarchicalTest, EnumerationIsExhaustiveAndDistinct) {
  HierarchicalQuorums qs(2);  // 27 quorums of 4 over 9 servers
  std::set<std::vector<ServerId>> seen;
  std::vector<ServerId> q;
  for (std::size_t i = 0; i < qs.num_quorums(AccessKind::kRead); ++i) {
    qs.quorum(AccessKind::kRead, i, q);
    EXPECT_EQ(q.size(), 4u);
    std::vector<ServerId> sorted = q;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(seen.insert(sorted).second) << "duplicate quorum " << i;
  }
  EXPECT_EQ(seen.size(), 27u);
}

TEST(HierarchicalTest, PairwiseIntersection) {
  util::Rng rng(7);
  EXPECT_TRUE(check_intersection(HierarchicalQuorums(1), rng));
  EXPECT_TRUE(check_intersection(HierarchicalQuorums(2), rng));
  EXPECT_TRUE(check_intersection(HierarchicalQuorums(3), rng));
  // h = 4 is not enumerable: sampled check.
  EXPECT_TRUE(check_intersection(HierarchicalQuorums(4), rng, 3000));
}

TEST(HierarchicalTest, BruteForceMinKillMatches) {
  EXPECT_EQ(brute_force_min_kill(HierarchicalQuorums(1), AccessKind::kRead),
            2u);
  EXPECT_EQ(brute_force_min_kill(HierarchicalQuorums(2), AccessKind::kRead),
            4u);
}

TEST(HierarchicalTest, LoadIsUniformAtQOverN) {
  HierarchicalQuorums qs(3);
  util::Rng rng(9);
  LoadEstimate est = empirical_load(qs, AccessKind::kRead, rng, 30000);
  EXPECT_NEAR(est.busiest, 8.0 / 27.0, 0.02);
  EXPECT_NEAR(est.average, 8.0 / 27.0, 0.01);
}

TEST(HierarchicalTest, SitsBetweenGridAndMajorityOnTheTradeoff) {
  HierarchicalQuorums qs(3);  // n = 27
  // Availability 8 > sqrt(27) ~ 5.2 (grid-like) but << majority's 14;
  // load 8/27 ~ 0.30 < majority's ~0.52 but > sqrt-n's ~0.19.
  EXPECT_GT(qs.min_kill(AccessKind::kRead), 5u);
  EXPECT_LT(qs.min_kill(AccessKind::kRead), 14u);
}

TEST(HierarchicalTest, RejectsAbsurdDepth) {
  EXPECT_THROW(HierarchicalQuorums(11), std::logic_error);
}

}  // namespace
}  // namespace pqra::quorum
