#include "iter/alg1_threads.hpp"

#include <gtest/gtest.h>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "apps/transitive_closure.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"

namespace pqra::iter {
namespace {

TEST(Alg1ThreadsTest, ConvergesWithMajorityQuorums) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(5);
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.rounds, 1u);
  EXPECT_GT(r.messages.total, 0u);
}

TEST(Alg1ThreadsTest, ConvergesWithMonotoneProbabilisticQuorums) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(8, 3);
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.monotone = true;
  options.round_cap = 100000;
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  EXPECT_TRUE(r.converged);
}

TEST(Alg1ThreadsTest, FewerProcessesThanComponents) {
  apps::Graph g = apps::make_chain(8);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(5);
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.num_processes = 2;
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  EXPECT_TRUE(r.converged);
}

TEST(Alg1ThreadsTest, RoundCapStopsTheRun) {
  apps::Graph g = apps::make_chain(12);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(16, 1);  // tiny quorums: very slow
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.monotone = false;
  options.round_cap = 3;
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  if (!r.converged) {
    EXPECT_GE(r.rounds, 3u);
  }
}

TEST(Alg1ThreadsTest, SharedMetricsRegistryCountsAllLayers) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(5);
  obs::Registry registry(obs::Concurrency::kThreadSafe);
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.metrics = &registry;
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  ASSERT_TRUE(r.converged);

  // Every layer reported: clients, servers, transport.  The registry totals
  // must be consistent with the runtime's own counts even though p client
  // threads and n server threads updated them concurrently.
  namespace names = obs::names;
  std::uint64_t reads = registry.counter(names::kClientReads).value();
  std::uint64_t writes = registry.counter(names::kClientWrites).value();
  EXPECT_GT(reads, 0u);
  EXPECT_GT(writes, 0u);
  EXPECT_EQ(registry.counter(names::kTransportMessages).value(),
            r.messages.total);
  EXPECT_EQ(registry.counter(names::kClientCacheHits).value(),
            r.monotone_cache_hits);
  EXPECT_GT(registry.counter(names::kServerRequests).value(), 0u);
  EXPECT_EQ(registry.histogram(names::kClientReadLatency).count(), reads);

  // Satellite stats: per-thread wall-clock latency merged at teardown.
  EXPECT_EQ(r.read_latency.count(), reads);
  EXPECT_EQ(r.write_latency.count(), writes);
  EXPECT_GT(r.read_latency.mean(), 0.0);
}

TEST(Alg1ThreadsTest, RejectsSingleThreadRegistry) {
  apps::Graph g = apps::make_chain(4);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(3);
  obs::Registry registry(obs::Concurrency::kSingleThread);
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.metrics = &registry;
  EXPECT_THROW(run_alg1_threads(op, options), std::logic_error);
}

TEST(Alg1ThreadsTest, OtherOperatorsRunToo) {
  apps::Graph g = apps::make_cycle(6);
  apps::TransitiveClosureOperator op(g);
  quorum::MajorityQuorums qs(5);
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace pqra::iter
