#include "iter/alg1_threads.hpp"

#include <gtest/gtest.h>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "apps/transitive_closure.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"

namespace pqra::iter {
namespace {

TEST(Alg1ThreadsTest, ConvergesWithMajorityQuorums) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(5);
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.rounds, 1u);
  EXPECT_GT(r.messages.total, 0u);
}

TEST(Alg1ThreadsTest, ConvergesWithMonotoneProbabilisticQuorums) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(8, 3);
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.monotone = true;
  options.round_cap = 100000;
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  EXPECT_TRUE(r.converged);
}

TEST(Alg1ThreadsTest, FewerProcessesThanComponents) {
  apps::Graph g = apps::make_chain(8);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(5);
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.num_processes = 2;
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  EXPECT_TRUE(r.converged);
}

TEST(Alg1ThreadsTest, RoundCapStopsTheRun) {
  apps::Graph g = apps::make_chain(12);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(16, 1);  // tiny quorums: very slow
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.monotone = false;
  options.round_cap = 3;
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  if (!r.converged) {
    EXPECT_GE(r.rounds, 3u);
  }
}

TEST(Alg1ThreadsTest, OtherOperatorsRunToo) {
  apps::Graph g = apps::make_cycle(6);
  apps::TransitiveClosureOperator op(g);
  quorum::MajorityQuorums qs(5);
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace pqra::iter
