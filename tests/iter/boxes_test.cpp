#include <gtest/gtest.h>

#include "apps/apsp.hpp"
#include "apps/csp.hpp"
#include "apps/graph.hpp"
#include "apps/linear.hpp"
#include "apps/transitive_closure.hpp"
#include "iter/update_sequence.hpp"
#include "util/codec.hpp"

/// Tests of the ACO contraction-box oracles ([C1]-[C3] of §5) and the
/// Theorem 2 proof invariant: at the close of pseudocycle K, every component
/// lies in D(K) — checked live by run_update_sequence(check_boxes).

namespace pqra::iter {
namespace {

// ------------------------------------------------------------- oracle sanity
TEST(BoxOracleTest, ApspBoxesAreNested) {
  apps::Graph g = apps::make_chain(8);
  apps::ApspOperator op(g);
  // initial in D(0); fixed point in every D(K); initial NOT in D(M) (chain
  // initial is far from the answer).
  for (std::size_t i = 0; i < op.num_components(); ++i) {
    EXPECT_TRUE(op.box_contains(0, i, op.initial(i)));
    for (std::size_t K = 0; K <= 6; ++K) {
      EXPECT_TRUE(op.box_contains(K, i, op.fixed_point(i)));
    }
  }
  std::size_t M = op.max_pseudocycles().value();
  EXPECT_FALSE(op.box_contains(M, 7, op.initial(7)))
      << "the source row's initial value cannot be in the final box";
}

TEST(BoxOracleTest, ApspRejectsOutOfRangeValues) {
  apps::Graph g = apps::make_chain(4);
  apps::ApspOperator op(g);
  // A row below the fixed point (distance too small) is outside every box.
  std::vector<apps::Weight> too_small(4, 0);
  EXPECT_FALSE(op.box_contains(0, 3, util::encode(too_small)));
}

TEST(BoxOracleTest, TransitiveClosureBoxes) {
  apps::Graph g = apps::make_chain(6);
  apps::TransitiveClosureOperator op(g);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(op.box_contains(0, i, op.initial(i)));
    EXPECT_TRUE(op.box_contains(9, i, op.fixed_point(i)));
  }
  // A row with a bit outside the closure is in no box.
  apps::ReachRow bogus(1, ~0ULL);
  EXPECT_FALSE(op.box_contains(0, 0, util::encode(bogus)));
  // The initial row of the source is not in a late box (missing bits).
  EXPECT_FALSE(op.box_contains(8, 5, op.initial(5)));
}

TEST(BoxOracleTest, JacobiBoxesShrinkGeometrically) {
  util::Rng rng(3);
  apps::LinearSystem sys = apps::make_dominant_system(6, 0.5, rng);
  apps::JacobiOperator op(std::move(sys), 1e-9);
  EXPECT_TRUE(op.box_contains(0, 0, op.initial(0)));
  EXPECT_TRUE(op.box_contains(50, 0, op.fixed_point(0)));
  // A value at distance r0 from the solution leaves the box after a few
  // halvings (alpha = 0.5).
  double far = util::decode<double>(op.fixed_point(0)) + 1000.0;
  EXPECT_FALSE(op.box_contains(30, 0, util::encode(far)));
}

TEST(BoxOracleTest, ArcConsistencyBoxes) {
  apps::Csp csp = apps::make_ordering_csp(5, 5);
  apps::ArcConsistencyOperator op(std::move(csp));
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_TRUE(op.box_contains(0, v, op.initial(v)));
    EXPECT_TRUE(op.box_contains(20, v, op.fixed_point(v)));
  }
  // A domain that dropped a value of the fixpoint is in no box.
  EXPECT_FALSE(op.box_contains(0, 0, util::encode<apps::DomainMask>(0)));
  // Full domain of the last variable is eventually outside (it must shrink).
  EXPECT_FALSE(op.box_contains(20, 4, op.initial(4)));
}

// --------------------------------------------------- Theorem 2 live invariant
struct InvariantCase {
  const char* schedule;
  std::size_t staleness;
  std::uint64_t seed;
};

class Theorem2Invariant : public ::testing::TestWithParam<InvariantCase> {
 protected:
  std::unique_ptr<ScheduleGenerator> make(const InvariantCase& c) const {
    std::string kind = c.schedule;
    if (kind == "sync") return make_synchronous_schedule();
    if (kind == "rr") return make_round_robin_schedule();
    if (kind == "oldest") return make_oldest_view_schedule(c.staleness);
    return make_bounded_stale_schedule(c.staleness, util::Rng(c.seed));
  }
};

TEST_P(Theorem2Invariant, ApspStaysInItsBoxes) {
  apps::Graph g = apps::make_chain(9);
  apps::ApspOperator op(g);
  auto schedule = make(GetParam());
  auto r = run_update_sequence(op, *schedule, 30000, /*check_boxes=*/true);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.box_violations, 0u)
      << "Theorem 2 invariant violated under " << GetParam().schedule;
}

TEST_P(Theorem2Invariant, TransitiveClosureStaysInItsBoxes) {
  apps::Graph g = apps::make_cycle(7);
  apps::TransitiveClosureOperator op(g);
  auto schedule = make(GetParam());
  auto r = run_update_sequence(op, *schedule, 30000, true);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.box_violations, 0u);
}

TEST_P(Theorem2Invariant, JacobiStaysInItsBoxes) {
  util::Rng rng(11);
  apps::LinearSystem sys = apps::make_dominant_system(7, 0.6, rng);
  apps::JacobiOperator op(std::move(sys), 1e-7);
  auto schedule = make(GetParam());
  auto r = run_update_sequence(op, *schedule, 50000, true);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.box_violations, 0u);
}

TEST_P(Theorem2Invariant, ArcConsistencyStaysInItsBoxes) {
  apps::Csp csp = apps::make_ordering_csp(6, 7);
  apps::ArcConsistencyOperator op(std::move(csp));
  auto schedule = make(GetParam());
  auto r = run_update_sequence(op, *schedule, 30000, true);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.box_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, Theorem2Invariant,
    ::testing::Values(InvariantCase{"sync", 1, 1}, InvariantCase{"rr", 1, 1},
                      InvariantCase{"stale", 1, 2},
                      InvariantCase{"stale", 1, 3},
                      InvariantCase{"oldest", 1, 1}),
    [](const auto& info) {
      return std::string(info.param.schedule) + "_s" +
             std::to_string(info.param.staleness) + "_" +
             std::to_string(info.param.seed);
    });

TEST(Theorem2InvariantTest, ConvergesWithinMPseudocyclesSynchronously) {
  // Theorem 2's quantitative half: M pseudocycles suffice.
  for (std::size_t n : {4u, 8u, 16u, 33u}) {
    apps::Graph g = apps::make_chain(n);
    apps::ApspOperator op(g);
    auto schedule = make_synchronous_schedule();
    auto r = run_update_sequence(op, *schedule, 100, true);
    ASSERT_TRUE(r.converged);
    EXPECT_LE(r.pseudocycles, op.max_pseudocycles().value()) << "n=" << n;
    EXPECT_EQ(r.box_violations, 0u);
  }
}

}  // namespace
}  // namespace pqra::iter
