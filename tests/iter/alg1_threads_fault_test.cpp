#include <gtest/gtest.h>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "iter/alg1_threads.hpp"
#include "net/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "quorum/probabilistic.hpp"

/// Fault injection on the real-threads runtime (ISSUE satellite): a
/// LiveFaultDriver crashes and recovers ThreadedServers in scaled wall-clock
/// time while the workers iterate; the retry policy carries them through and
/// the run still converges.  Suite name starts with "Alg1Threads" so the
/// PQRA_SANITIZE=thread CI job's --gtest_filter picks these up.

namespace pqra::iter {
namespace {

core::RetryPolicy fast_retry() {
  core::RetryPolicy retry;  // wall-clock seconds on this runtime
  retry.rpc_timeout = 0.05;
  retry.backoff_factor = 1.5;
  retry.max_backoff = 0.2;
  retry.jitter = 0.1;
  return retry;
}

TEST(Alg1ThreadsFaultTest, ConvergesThroughCrashAndRecover) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(8, 3);

  // Server 0 is down from the start for ~150 ms (plan time 30 at 5 ms per
  // unit), so the first rounds are guaranteed to run against a crashed
  // server; server 5 follows shortly after.
  net::FaultPlan plan;
  plan.outage(0, 0.0, 30.0);
  plan.outage(5, 2.0, 30.0);

  Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.fault_plan = &plan;
  options.seconds_per_time_unit = 0.005;
  options.retry = fast_retry();
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  EXPECT_TRUE(r.converged);
  // The t=0 crash always lands; the second only if the run is still going.
  EXPECT_GE(r.faults.crashes, 1u);
  EXPECT_GT(r.retries, 0u);
}

TEST(Alg1ThreadsFaultTest, ConvergesUnderMessageDrops) {
  apps::Graph g = apps::make_chain(5);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(6, 3);

  net::FaultPlan plan;
  net::MessageFaults message;
  message.drop_probability = 0.05;
  message.duplicate_probability = 0.02;
  plan.with_message_faults(message);

  Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.fault_plan = &plan;
  options.seconds_per_time_unit = 0.005;
  options.retry = fast_retry();
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.faults.random_drops, 0u);
}

TEST(Alg1ThreadsFaultTest, FaultAndRetryMetricsReachTheRegistry) {
  apps::Graph g = apps::make_chain(5);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(6, 3);

  net::FaultPlan plan;
  plan.outage(0, 0.0, 20.0);

  obs::Registry registry(obs::Concurrency::kThreadSafe);
  Alg1ThreadsOptions options;
  options.quorums = &qs;
  options.metrics = &registry;
  options.fault_plan = &plan;
  options.seconds_per_time_unit = 0.005;
  options.retry = fast_retry();
  Alg1ThreadsResult r = run_alg1_threads(op, options);
  EXPECT_TRUE(r.converged);

  namespace n = obs::names;
  EXPECT_GE(registry.counter(n::kFaultsCrashes).value(), 1u);
  EXPECT_EQ(registry.counter(n::kClientRetries).value(), r.retries);
  EXPECT_EQ(registry.counter(n::kFaultsCrashes).value(), r.faults.crashes);
}

}  // namespace
}  // namespace pqra::iter
