#include "iter/update_sequence.hpp"

#include <gtest/gtest.h>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"

namespace pqra::iter {
namespace {

/// A schedule that violates [A1] by viewing the current update.
class FutureViewSchedule final : public ScheduleGenerator {
 public:
  UpdateStep next(std::size_t k, std::size_t m) override {
    UpdateStep step;
    step.change.push_back(0);
    step.view.assign(m, k);  // view from "now": illegal
    return step;
  }
  std::string name() const override { return "future-view"; }
};

TEST(UpdateSequenceTest, SynchronousConvergesInLogDiameterUpdates) {
  apps::Graph g = apps::make_chain(8);  // diameter 7, M = ceil(log2 7) = 3
  apps::ApspOperator op(g);
  ASSERT_EQ(op.max_pseudocycles().value(), 3u);
  auto schedule = make_synchronous_schedule();
  SequentialResult r = run_update_sequence(op, *schedule, 100);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.updates, 3u);  // Theorem 2: at most M pseudocycles
  EXPECT_EQ(r.pseudocycles, r.updates);  // each sync update is a pseudocycle
  EXPECT_TRUE(r.all_updates_b2);
  for (std::size_t i = 0; i < op.num_components(); ++i) {
    EXPECT_EQ(r.final_x[i], op.fixed_point(i));
  }
}

TEST(UpdateSequenceTest, RoundRobinConverges) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  auto schedule = make_round_robin_schedule();
  SequentialResult r = run_update_sequence(op, *schedule, 1000);
  EXPECT_TRUE(r.converged);
  // One pseudocycle per m consecutive updates, and Theorem 2 bounds the
  // number of pseudocycles by M.
  EXPECT_LE(r.pseudocycles,
            op.max_pseudocycles().value() + 1);  // +1: partial pc at the end
  EXPECT_TRUE(r.all_updates_b2);
}

struct StaleParam {
  std::size_t staleness;
  std::uint64_t seed;
};

class BoundedStaleSweep : public ::testing::TestWithParam<StaleParam> {};

TEST_P(BoundedStaleSweep, ConvergesUnderBoundedAsynchrony) {
  auto [staleness, seed] = GetParam();
  apps::Graph g = apps::make_chain(7);
  apps::ApspOperator op(g);
  auto schedule = make_bounded_stale_schedule(staleness, util::Rng(seed));
  SequentialResult r = run_update_sequence(op, *schedule, 20000);
  EXPECT_TRUE(r.converged) << "staleness=" << staleness << " seed=" << seed;
  for (std::size_t i = 0; i < op.num_components(); ++i) {
    EXPECT_EQ(r.final_x[i], op.fixed_point(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Staleness, BoundedStaleSweep,
    ::testing::Values(StaleParam{1, 1}, StaleParam{1, 2}, StaleParam{3, 1},
                      StaleParam{3, 7}, StaleParam{10, 1}, StaleParam{10, 3},
                      StaleParam{25, 5}));

TEST(UpdateSequenceTest, OldestViewStillConverges) {
  // Adversarially stale (but bounded) views: convergence is slower yet
  // guaranteed — this is exactly what [A3]/[B2] buy.
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  auto schedule = make_oldest_view_schedule(4);
  SequentialResult r = run_update_sequence(op, *schedule, 5000);
  EXPECT_TRUE(r.converged);
  auto sync = make_synchronous_schedule();
  SequentialResult fast = run_update_sequence(op, *sync, 100);
  EXPECT_GE(r.updates, fast.updates);
}

TEST(UpdateSequenceTest, MoreStalenessMeansMoreUpdates) {
  apps::Graph g = apps::make_chain(10);
  apps::ApspOperator op(g);
  auto fresh = make_oldest_view_schedule(1);
  auto stale = make_oldest_view_schedule(8);
  auto r_fresh = run_update_sequence(op, *fresh, 10000);
  auto r_stale = run_update_sequence(op, *stale, 10000);
  ASSERT_TRUE(r_fresh.converged);
  ASSERT_TRUE(r_stale.converged);
  EXPECT_LT(r_fresh.updates, r_stale.updates);
}

TEST(UpdateSequenceTest, A1ViolationThrows) {
  apps::Graph g = apps::make_chain(4);
  apps::ApspOperator op(g);
  FutureViewSchedule schedule;
  EXPECT_THROW(run_update_sequence(op, schedule, 10), std::logic_error);
}

TEST(UpdateSequenceTest, MaxUpdatesHonoredWithoutConvergence) {
  apps::Graph g = apps::make_chain(16);
  apps::ApspOperator op(g);
  auto schedule = make_round_robin_schedule();
  SequentialResult r = run_update_sequence(op, *schedule, 5);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.updates, 5u);
  EXPECT_EQ(r.final_x.size(), op.num_components());
}

TEST(UpdateSequenceTest, AlreadyConvergedInitialVectorStopsInOneUpdate) {
  // A complete graph with all direct edges optimal: initial == fixed point.
  util::Rng rng(3);
  apps::Graph g(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      if (i != j) g.add_edge(i, j, 1);
    }
  }
  apps::ApspOperator op(g);
  auto schedule = make_synchronous_schedule();
  SequentialResult r = run_update_sequence(op, *schedule, 10);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.updates, 1u);
}

}  // namespace
}  // namespace pqra::iter
