#include "iter/rounds.hpp"

#include <gtest/gtest.h>

namespace pqra::iter {
namespace {

TEST(RoundTrackerTest, RoundClosesWhenEveryoneIterated) {
  RoundTracker t(3);
  EXPECT_FALSE(t.iteration_completed(0));
  EXPECT_FALSE(t.iteration_completed(1));
  EXPECT_TRUE(t.iteration_completed(2));
  EXPECT_EQ(t.completed_rounds(), 1u);
}

TEST(RoundTrackerTest, ExtraIterationsDoNotDoubleCount) {
  RoundTracker t(2);
  EXPECT_FALSE(t.iteration_completed(0));
  EXPECT_FALSE(t.iteration_completed(0));
  EXPECT_FALSE(t.iteration_completed(0));
  EXPECT_TRUE(t.iteration_completed(1));
  EXPECT_EQ(t.completed_rounds(), 1u);
  EXPECT_EQ(t.iterations_total(), 4u);
}

TEST(RoundTrackerTest, PartialRoundDetection) {
  RoundTracker t(2);
  EXPECT_FALSE(t.in_partial_round());
  EXPECT_EQ(t.rounds_including_partial(), 0u);
  t.iteration_completed(0);
  EXPECT_TRUE(t.in_partial_round());
  EXPECT_EQ(t.rounds_including_partial(), 1u);
  t.iteration_completed(1);
  EXPECT_FALSE(t.in_partial_round());
  EXPECT_EQ(t.rounds_including_partial(), 1u);
}

TEST(RoundTrackerTest, SingleProcessEveryIterationIsARound) {
  RoundTracker t(1);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(t.iteration_completed(0));
    EXPECT_EQ(t.completed_rounds(), static_cast<std::size_t>(i));
  }
}

TEST(RoundTrackerTest, ManyRounds) {
  RoundTracker t(4);
  for (int round = 0; round < 10; ++round) {
    for (std::size_t p = 0; p < 4; ++p) t.iteration_completed(p);
  }
  EXPECT_EQ(t.completed_rounds(), 10u);
  EXPECT_EQ(t.iterations_total(), 40u);
}

TEST(RoundTrackerTest, RejectsBadInput) {
  EXPECT_THROW(RoundTracker(0), std::logic_error);
  RoundTracker t(2);
  EXPECT_THROW(t.iteration_completed(2), std::logic_error);
}

}  // namespace
}  // namespace pqra::iter
