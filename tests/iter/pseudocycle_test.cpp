#include "iter/pseudocycle.hpp"

#include <gtest/gtest.h>

namespace pqra::iter {
namespace {

TEST(PseudocycleTest, FirstPseudocycleHasNoViewRequirement) {
  PseudocycleTracker t(2, 2);
  // Both processes iterate with only initial values (ts 0): closes pc 0.
  EXPECT_FALSE(t.on_iteration(0, {0, 0}));
  t.on_write(0, 1);
  t.on_write(1, 1);
  EXPECT_TRUE(t.on_iteration(1, {0, 0}));
  EXPECT_EQ(t.completed(), 1u);
}

TEST(PseudocycleTest, SecondPseudocycleRequiresFreshViews) {
  PseudocycleTracker t(1, 1);
  t.on_write(0, 1);
  EXPECT_TRUE(t.on_iteration(0, {0}));  // pc 0 closes; target becomes ts 1

  // A stale iteration (still reading ts 0) does not close pc 1 ...
  t.on_write(0, 2);
  EXPECT_FALSE(t.on_iteration(0, {0}));
  // ... but once the process reads ts >= 1, it does.
  t.on_write(0, 3);
  EXPECT_TRUE(t.on_iteration(0, {1}));
  EXPECT_EQ(t.completed(), 2u);
}

TEST(PseudocycleTest, TargetIsFirstWriteOfPreviousPc) {
  PseudocycleTracker t(1, 1);
  // pc 0: writes ts 1, 2, 3 happen; first is ts 1.
  t.on_write(0, 1);
  t.on_write(0, 2);
  t.on_write(0, 3);
  EXPECT_TRUE(t.on_iteration(0, {0}));
  // pc 1: reading ts 1 (>= first write of pc 0) suffices even though ts 3
  // exists.
  t.on_write(0, 4);
  EXPECT_TRUE(t.on_iteration(0, {1}));
  EXPECT_EQ(t.completed(), 2u);
}

TEST(PseudocycleTest, AllProcessesMustHaveFreshViews) {
  PseudocycleTracker t(2, 1);
  t.on_write(0, 1);
  t.on_iteration(0, {0});
  EXPECT_TRUE(t.on_iteration(1, {0}));  // pc 0 done, target ts 1

  t.on_write(0, 2);
  EXPECT_FALSE(t.on_iteration(0, {2}));  // process 0 fresh
  EXPECT_FALSE(t.on_iteration(1, {0}));  // process 1 stale: pc stays open
  EXPECT_TRUE(t.on_iteration(1, {2}));
  EXPECT_EQ(t.completed(), 2u);
}

TEST(PseudocycleTest, GoodFlagIsSticky) {
  // Once a process contributed a good iteration to the pseudocycle, later
  // stale iterations by the same process do not revoke it.
  PseudocycleTracker t(2, 1);
  t.on_write(0, 1);
  t.on_iteration(0, {0});
  t.on_iteration(1, {0});  // pc 0 closed, target ts 1

  t.on_write(0, 2);
  EXPECT_FALSE(t.on_iteration(0, {2}));  // good
  EXPECT_FALSE(t.on_iteration(0, {0}));  // stale again, but already counted
  EXPECT_TRUE(t.on_iteration(1, {1}));
  EXPECT_EQ(t.completed(), 2u);
}

TEST(PseudocycleTest, StrictSynchronousPatternOnePcPerRound) {
  // With always-fresh reads (strict quorums, synchronous), every round is a
  // pseudocycle.
  PseudocycleTracker t(2, 2);
  core::Timestamp ts = 0;
  for (int round = 0; round < 5; ++round) {
    ++ts;
    t.on_write(0, ts);
    t.on_write(1, ts);
    t.on_iteration(0, {ts, ts});
    t.on_iteration(1, {ts, ts});
  }
  EXPECT_EQ(t.completed(), 5u);
}

TEST(PseudocycleTest, RejectsBadArguments) {
  EXPECT_THROW(PseudocycleTracker(0, 1), std::logic_error);
  EXPECT_THROW(PseudocycleTracker(1, 0), std::logic_error);
  PseudocycleTracker t(1, 1);
  EXPECT_THROW(t.on_write(1, 1), std::logic_error);
  EXPECT_THROW(t.on_write(0, 0), std::logic_error);
  EXPECT_THROW(t.on_iteration(0, {0, 0}), std::logic_error);
}

}  // namespace
}  // namespace pqra::iter
