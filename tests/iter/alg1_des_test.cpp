#include "iter/alg1_des.hpp"

#include <gtest/gtest.h>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "core/spec/checker.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/math.hpp"

namespace pqra::iter {
namespace {

TEST(Alg1DesTest, StrictSynchronousConvergesInMRounds) {
  apps::Graph g = apps::make_chain(6);  // d = 5, M = 3
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(6);
  Alg1Options options;
  options.quorums = &qs;
  Alg1Result r = run_alg1(op, options);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 3u);
  // Strict synchronous: one pseudocycle per round.
  EXPECT_EQ(r.pseudocycles, r.rounds);
}

TEST(Alg1DesTest, OverHalfProbabilisticQuorumBehavesStrictly) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(6, 4);  // 2k > n
  Alg1Options options;
  options.quorums = &qs;
  Alg1Result r = run_alg1(op, options);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 3u);
}

struct SweepParam {
  std::size_t k;
  bool monotone;
  bool synchronous;
};

class Alg1Sweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Alg1Sweep, ConvergesAndSatisfiesTheRegisterSpec) {
  auto [k, monotone, synchronous] = GetParam();
  apps::Graph g = apps::make_chain(10);  // d = 9, M = 4
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(10, k);
  Alg1Options options;
  options.quorums = &qs;
  options.monotone = monotone;
  options.synchronous = synchronous;
  options.seed = 42 + k;
  options.round_cap = 3000;
  options.record_history = true;
  Alg1Result r = run_alg1(op, options);
  EXPECT_TRUE(r.converged) << "k=" << k;
  EXPECT_GE(r.rounds, op.max_pseudocycles().value() - 1);
  ASSERT_NE(r.history, nullptr);
  // The execution was cut short by convergence, so pending ops may exist;
  // check [R2] (+ [R4] when monotone) rather than [R1].
  auto r2 = core::spec::check_r2(r.history->ops());
  EXPECT_TRUE(r2.ok) << r2.violations.front();
  auto sw = core::spec::check_single_writer(r.history->ops());
  EXPECT_TRUE(sw.ok) << sw.violations.front();
  if (monotone) {
    auto r4 = core::spec::check_r4(r.history->ops());
    EXPECT_TRUE(r4.ok) << r4.violations.front();
  }
}

INSTANTIATE_TEST_SUITE_P(
    QuorumSizes, Alg1Sweep,
    ::testing::Values(SweepParam{2, true, true}, SweepParam{3, true, true},
                      SweepParam{4, true, true}, SweepParam{6, true, true},
                      SweepParam{3, true, false}, SweepParam{5, true, false},
                      SweepParam{4, false, true}, SweepParam{6, false, true},
                      SweepParam{5, false, false}, SweepParam{8, false, true}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.k) +
             (info.param.monotone ? "_mono" : "_plain") +
             (info.param.synchronous ? "_sync" : "_async");
    });

TEST(Alg1DesTest, SmallQuorumsNeedMoreRoundsThanStrict) {
  apps::Graph g = apps::make_chain(8);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums tiny(8, 1);
  quorum::ProbabilisticQuorums strict(8, 5);
  Alg1Options options;
  options.round_cap = 5000;
  options.quorums = &tiny;
  options.seed = 3;
  Alg1Result r_tiny = run_alg1(op, options);
  options.quorums = &strict;
  Alg1Result r_strict = run_alg1(op, options);
  ASSERT_TRUE(r_tiny.converged);
  ASSERT_TRUE(r_strict.converged);
  EXPECT_GT(r_tiny.rounds, r_strict.rounds);
}

TEST(Alg1DesTest, DeterministicGivenSeed) {
  apps::Graph g = apps::make_chain(7);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(7, 2);
  Alg1Options options;
  options.quorums = &qs;
  options.synchronous = false;
  options.seed = 9;
  Alg1Result a = run_alg1(op, options);
  Alg1Result b = run_alg1(op, options);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.messages.total, b.messages.total);
  EXPECT_DOUBLE_EQ(a.sim_time, b.sim_time);
}

TEST(Alg1DesTest, MessageCountMatchesTheFormulaShape) {
  // §6.4: 2pmk + 2mk messages per round with p = m processes.  Iterations
  // in flight when the run stops add at most one round's worth.
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  const std::size_t m = 6, k = 4;
  quorum::ProbabilisticQuorums qs(6, k);
  Alg1Options options;
  options.quorums = &qs;
  Alg1Result r = run_alg1(op, options);
  ASSERT_TRUE(r.converged);
  // Each completed iteration: m reads + 1 write, each costing 2k messages.
  std::uint64_t expected_completed = r.iterations * (m + 1) * 2 * k;
  EXPECT_GE(r.messages.total, expected_completed);
  std::uint64_t slack = m * (m + 1) * 2 * k;  // one extra iteration per proc
  EXPECT_LE(r.messages.total, expected_completed + slack);
}

TEST(Alg1DesTest, MonotoneBeatsNonMonotoneOnTinyQuorums) {
  apps::Graph g = apps::make_chain(8);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(8, 2);
  Alg1Options options;
  options.quorums = &qs;
  options.seed = 11;
  options.round_cap = 5000;
  options.monotone = true;
  Alg1Result mono = run_alg1(op, options);
  options.monotone = false;
  Alg1Result plain = run_alg1(op, options);
  ASSERT_TRUE(mono.converged);
  EXPECT_GT(mono.monotone_cache_hits, 0u);
  if (plain.converged) {
    EXPECT_LE(mono.rounds, plain.rounds);
  }
}

TEST(Alg1DesTest, GridQuorumsWorkAsTheRegisterSubstrate) {
  apps::Graph g = apps::make_chain(9);
  apps::ApspOperator op(g);
  quorum::GridQuorums qs(3, 3);
  Alg1Options options;
  options.quorums = &qs;
  Alg1Result r = run_alg1(op, options);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, apps::apsp_pseudocycle_bound(g));
}

TEST(Alg1DesTest, FewerProcessesThanComponents) {
  apps::Graph g = apps::make_chain(8);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(8);
  Alg1Options options;
  options.quorums = &qs;
  options.num_processes = 3;  // each owns 2-3 rows
  Alg1Result r = run_alg1(op, options);
  EXPECT_TRUE(r.converged);
}

TEST(Alg1DesTest, SingleProcessOwnsEverything) {
  apps::Graph g = apps::make_chain(5);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(5);
  Alg1Options options;
  options.quorums = &qs;
  options.num_processes = 1;
  Alg1Result r = run_alg1(op, options);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, r.iterations);
}

TEST(Alg1DesTest, RoundCapReportsNonConvergence) {
  apps::Graph g = apps::make_chain(12);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(12, 1);
  Alg1Options options;
  options.quorums = &qs;
  options.monotone = false;
  options.round_cap = 5;
  options.seed = 5;
  Alg1Result r = run_alg1(op, options);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.rounds, 5u);
}

TEST(Alg1DesTest, CrashToleranceWithRetries) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(10, 3);
  Alg1Options options;
  options.quorums = &qs;
  options.crashed_servers = {0, 1, 2, 3, 4};  // 5 alive >= k = 3
  options.retry_timeout = 8.0;
  Alg1Result r = run_alg1(op, options);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.retries, 0u);
}

TEST(Alg1DesTest, MajorityStallsWhenMajorityCrashed) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(10);
  Alg1Options options;
  options.quorums = &qs;
  options.crashed_servers = {0, 1, 2, 3, 4};  // 5 alive < 6 needed
  options.retry_timeout = 8.0;
  options.max_sim_time = 500.0;
  Alg1Result r = run_alg1(op, options);
  EXPECT_FALSE(r.converged)
      << "majority cannot make progress with half the servers down";
}

TEST(Alg1DesTest, ProbabilisticSurvivesWhereMajorityStalls) {
  // The §4 availability story end-to-end: same crash set, same quorum size
  // regime, opposite outcomes.
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  Alg1Options options;
  options.crashed_servers = {0, 1, 2, 3, 4, 5};
  options.retry_timeout = 8.0;
  options.max_sim_time = 3000.0;

  quorum::ProbabilisticQuorums prob(10, 3);
  options.quorums = &prob;
  Alg1Result r_prob = run_alg1(op, options);
  EXPECT_TRUE(r_prob.converged);

  quorum::MajorityQuorums maj(10);
  options.quorums = &maj;
  Alg1Result r_maj = run_alg1(op, options);
  EXPECT_FALSE(r_maj.converged);
}

TEST(Alg1DesTest, SurvivesServerChurnWithRetries) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(12, 3);
  util::Rng churn_rng(21);
  net::FaultPlan plan =
      net::FaultPlan::random_churn(12, /*horizon=*/300.0,
                                   /*mean_uptime=*/40.0,
                                   /*mean_downtime=*/10.0, churn_rng);
  iter::Alg1Options options;
  options.quorums = &qs;
  options.retry_timeout = 8.0;
  options.fault_plan = &plan;
  options.round_cap = 20000;
  options.max_sim_time = 20000.0;
  Alg1Result r = run_alg1(op, options);
  EXPECT_TRUE(r.converged);
}

TEST(Alg1DesTest, LatencyStatsMatchTheSynchronousDelayModel) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(6);
  Alg1Options options;
  options.quorums = &qs;
  Alg1Result r = run_alg1(op, options);
  ASSERT_TRUE(r.converged);
  // Constant delay 1 each way: every op takes exactly 2 time units.
  EXPECT_GT(r.read_latency.count(), 0u);
  EXPECT_DOUBLE_EQ(r.read_latency.mean(), 2.0);
  EXPECT_DOUBLE_EQ(r.read_latency.min(), 2.0);
  EXPECT_DOUBLE_EQ(r.read_latency.max(), 2.0);
  EXPECT_DOUBLE_EQ(r.write_latency.mean(), 2.0);
}

TEST(Alg1DesTest, AsyncLatencyGrowsWithQuorumSize) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  Alg1Options options;
  options.synchronous = false;
  options.seed = 13;
  quorum::ProbabilisticQuorums small(12, 2);
  options.quorums = &small;
  Alg1Result r_small = run_alg1(op, options);
  quorum::ProbabilisticQuorums large(12, 10);
  options.quorums = &large;
  Alg1Result r_large = run_alg1(op, options);
  // Read latency = max over k of (exp + exp): grows with k.
  EXPECT_GT(r_large.read_latency.mean(), r_small.read_latency.mean());
}

TEST(Alg1DesTest, RequiresAQuorumSystem) {
  apps::Graph g = apps::make_chain(4);
  apps::ApspOperator op(g);
  EXPECT_THROW(run_alg1(op, Alg1Options{}), std::logic_error);
}

}  // namespace
}  // namespace pqra::iter
