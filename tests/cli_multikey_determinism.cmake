# Jobs-invariance check for the sharded multi-key store app (driven by the
# cli_multikey_determinism ctest entry): on a mixed-key Zipfian workload —
# fault-free and under a key-addressed fault plan — stdout, the metrics
# JSON, the Prometheus export, the op trace and the causal spans must be
# byte-identical between --jobs 1 and --jobs 8.  See docs/SHARDING.md and
# docs/PERFORMANCE.md for the contract.
#
# Inputs: -DCLI=<path to experiment_cli> -DWORK_DIR=<scratch directory>

if(NOT CLI OR NOT WORK_DIR)
  message(FATAL_ERROR
    "cli_multikey_determinism.cmake needs -DCLI=... and -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(check_identical label a b)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "${label} diverged between --jobs 1 and --jobs 8: ${a} vs ${b}")
  endif()
endfunction()

# Scenario 1: fault-free mixed-key workload, Zipf-skewed reads, sharded
# onto 3-replica consistent-hash groups.
set(base_args app=store keys=512 theta=0.7 servers=12 replicas=3 k=2
    vnodes=8 clients=4 ops=60 runs=4 seed=9)
# Scenario 2: the same workload under a fault plan with key-addressed
# targets (crash:k5 = "crash key 5's primary replica") plus a node outage
# and message drops — retries, fault metrics and the recorded histories
# must all stay jobs-invariant.
set(fault_args app=store keys=512 theta=0.7 servers=12 replicas=3 k=2
    vnodes=8 clients=4 ops=60 runs=3 seed=9
    "fault-plan=crash:k5@20;recover:k5@120;outage:2@40-90;drop=0.01")

foreach(scenario base fault)
  foreach(jobs 1 8)
    set(dir "${WORK_DIR}/${scenario}_j${jobs}")
    file(MAKE_DIRECTORY "${dir}")
    execute_process(
      COMMAND "${CLI}" ${${scenario}_args} jobs=${jobs}
              "metrics-out=${dir}/metrics.json"
              "prom-out=${dir}/metrics.prom"
              "trace-out=${dir}/trace.jsonl"
              "spans-out=${dir}/spans.jsonl"
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "experiment_cli store ${scenario} jobs=${jobs} failed (rc=${rc})\n"
        "${out}\n${err}")
    endif()
    # Strip the "wrote ... to <path>" lines: the per-jobs scratch paths are
    # the one legitimate stdout difference.
    string(REGEX REPLACE "wrote [^\n]*\n" "" out "${out}")
    file(WRITE "${dir}/stdout.txt" "${out}")
  endforeach()
  set(d1 "${WORK_DIR}/${scenario}_j1")
  set(d8 "${WORK_DIR}/${scenario}_j8")
  check_identical("${scenario}: stdout" "${d1}/stdout.txt" "${d8}/stdout.txt")
  check_identical("${scenario}: metrics JSON"
                  "${d1}/metrics.json" "${d8}/metrics.json")
  check_identical("${scenario}: Prometheus export"
                  "${d1}/metrics.prom" "${d8}/metrics.prom")
  check_identical("${scenario}: op trace"
                  "${d1}/trace.jsonl" "${d8}/trace.jsonl")
  check_identical("${scenario}: spans"
                  "${d1}/spans.jsonl" "${d8}/spans.jsonl")
endforeach()
