# Replay-determinism check at the CLI level (driven by the cli_fault_replay
# ctest entry): run experiment_cli twice with the same --fault-plan and seed
# and require the exported metrics JSON files to be byte-identical.
#
# Inputs: -DCLI=<path to experiment_cli> -DWORK_DIR=<scratch directory>

if(NOT CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "cli_replay.cmake needs -DCLI=... and -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

set(common_args
  app=apsp graph=chain size=10 quorum=prob k=3 servers=8
  monotone=1 sync=0 runs=1 cap=5000 seed=5
  "fault-plan=outage:2@5-60;slow:1*4@10;drop=0.02;dup=0.01")

foreach(run a b)
  execute_process(
    COMMAND "${CLI}" ${common_args}
            "metrics-out=${WORK_DIR}/metrics_${run}.json"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "experiment_cli run ${run} failed (rc=${rc})\n${out}\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/metrics_a.json" "${WORK_DIR}/metrics_b.json"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "metrics JSON diverged between two runs with the same fault plan and "
    "seed: ${WORK_DIR}/metrics_a.json vs ${WORK_DIR}/metrics_b.json")
endif()
