#include "apps/approx_agreement.hpp"

#include <gtest/gtest.h>

#include "iter/alg1_des.hpp"
#include "iter/update_sequence.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"

namespace pqra::apps {
namespace {

std::vector<double> decode_all(const std::vector<iter::Value>& x) {
  std::vector<double> out;
  for (const auto& v : x) out.push_back(util::decode<double>(v));
  return out;
}

double spread(const std::vector<double>& v) {
  double lo = v[0], hi = v[0];
  for (double d : v) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return hi - lo;
}

TEST(ApproxAgreementTest, MidpointHalvesTheRangeSynchronously) {
  ApproxAgreementOperator op({0.0, 8.0, 4.0, 2.0}, 1e-9);
  std::vector<iter::Value> x;
  for (std::size_t i = 0; i < 4; ++i) x.push_back(op.initial(i));
  // One synchronous application: everyone moves to (0 + 8)/2 = 4.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(util::decode<double>(op.apply(i, x)), 4.0);
  }
}

TEST(ApproxAgreementTest, SequentialConvergesWithinEpsilon) {
  ApproxAgreementOperator op({-3.0, 1.5, 7.25, 10.0, 0.0}, 1e-6);
  auto schedule = iter::make_bounded_stale_schedule(3, util::Rng(5));
  auto r = run_update_sequence(op, *schedule, 50000);
  ASSERT_TRUE(r.converged);
  auto values = decode_all(r.final_x);
  EXPECT_LE(spread(values), 1e-6);
  // Validity: the agreed band lies inside the input range.
  for (double v : values) {
    EXPECT_GE(v, -3.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(ApproxAgreementTest, DistributedOverStrictQuorums) {
  ApproxAgreementOperator op({0.0, 100.0, 50.0, 25.0, 75.0, 10.0}, 0.01);
  quorum::MajorityQuorums qs(6);
  iter::Alg1Options options;
  options.quorums = &qs;
  iter::Alg1Result r = iter::run_alg1(op, options);
  EXPECT_TRUE(r.converged);
  // Full-view midpoint with fresh reads agrees instantly: round 1 moves
  // everyone to (0+100)/2, round 2 observes the agreement.
  EXPECT_LE(r.rounds, 3u);
}

struct AaParam {
  std::size_t k;
  bool synchronous;
  std::uint64_t seed;
};

class ApproxAgreementSweep : public ::testing::TestWithParam<AaParam> {};

TEST_P(ApproxAgreementSweep, DistributedOverRandomRegisters) {
  auto [k, synchronous, seed] = GetParam();
  ApproxAgreementOperator op({0.0, 64.0, 32.0, 16.0, 8.0, 4.0, 2.0, 1.0},
                             0.5);
  quorum::ProbabilisticQuorums qs(8, k);
  iter::Alg1Options options;
  options.quorums = &qs;
  options.monotone = true;
  options.synchronous = synchronous;
  options.seed = seed;
  options.round_cap = 20000;
  iter::Alg1Result r = iter::run_alg1(op, options);
  EXPECT_TRUE(r.converged) << "k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Params, ApproxAgreementSweep,
    ::testing::Values(AaParam{2, true, 1}, AaParam{2, false, 2},
                      AaParam{3, true, 3}, AaParam{3, false, 4},
                      AaParam{5, true, 5}, AaParam{5, false, 6}));

TEST(ApproxAgreementTest, ValidityInvariantUnderStaleness) {
  // Even the adversarially stale schedule keeps every proposal inside the
  // input range — midpoints of values in [lo, hi] stay in [lo, hi].
  ApproxAgreementOperator op({-5.0, 5.0, 1.0}, 1e-3);
  auto schedule = iter::make_oldest_view_schedule(6);
  auto r = run_update_sequence(op, *schedule, 20000);
  ASSERT_TRUE(r.converged);
  for (double v : decode_all(r.final_x)) {
    EXPECT_GE(v, -5.0);
    EXPECT_LE(v, 5.0);
  }
}

TEST(ApproxAgreementTest, RejectsBadArguments) {
  EXPECT_THROW(ApproxAgreementOperator({}, 0.1), std::logic_error);
  EXPECT_THROW(ApproxAgreementOperator({1.0}, 0.0), std::logic_error);
}

TEST(ApproxAgreementTest, AlreadyAgreedInputsFinishInOneRound) {
  ApproxAgreementOperator op({1.0, 1.0001, 0.9999}, 0.01);
  quorum::MajorityQuorums qs(3);
  iter::Alg1Options options;
  options.quorums = &qs;
  iter::Alg1Result r = iter::run_alg1(op, options);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 1u);
}

}  // namespace
}  // namespace pqra::apps
