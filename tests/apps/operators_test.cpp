#include <gtest/gtest.h>

#include "apps/apsp.hpp"
#include "apps/csp.hpp"
#include "apps/graph.hpp"
#include "apps/linear.hpp"
#include "apps/transitive_closure.hpp"
#include "iter/update_sequence.hpp"
#include "util/codec.hpp"

namespace pqra::apps {
namespace {

// ---------------------------------------------------------------------- APSP
TEST(ApspOperatorTest, InitialRowsAreEdgeWeights) {
  Graph g = make_chain(5);
  ApspOperator op(g);
  auto row4 = util::decode<std::vector<Weight>>(op.initial(4));
  EXPECT_EQ(row4[4], 0);
  EXPECT_EQ(row4[3], 1);
  EXPECT_EQ(row4[0], kInf);
}

TEST(ApspOperatorTest, OneSynchronousApplicationDoublesHorizon) {
  Graph g = make_chain(5);
  ApspOperator op(g);
  std::vector<iter::Value> x;
  for (std::size_t i = 0; i < 5; ++i) x.push_back(op.initial(i));
  auto row4 = util::decode<std::vector<Weight>>(op.apply(4, x));
  EXPECT_EQ(row4[2], 2);     // two hops now visible
  EXPECT_EQ(row4[1], kInf);  // three hops not yet
}

TEST(ApspOperatorTest, FixedPointIsFloydWarshall) {
  util::Rng rng(3);
  Graph g = make_random_gnp(10, 0.3, 1, 4, rng);
  ApspOperator op(g);
  auto fw = floyd_warshall(g);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(util::decode<std::vector<Weight>>(op.fixed_point(i)), fw[i]);
  }
}

TEST(ApspOperatorTest, FixedPointIsActuallyFixed) {
  util::Rng rng(5);
  Graph g = make_random_gnp(9, 0.4, 1, 5, rng);
  ApspOperator op(g);
  std::vector<iter::Value> x;
  for (std::size_t i = 0; i < 9; ++i) x.push_back(op.fixed_point(i));
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(op.apply(i, x), op.fixed_point(i)) << "row " << i;
  }
}

struct GraphCase {
  const char* name;
  std::size_t seed;
};

class ApspRandomSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ApspRandomSweep, SequentialAsyncIterationMatchesFloydWarshall) {
  util::Rng rng(GetParam());
  Graph g = make_random_gnp(8, 0.35, 1, 6, rng);
  ApspOperator op(g);
  auto schedule =
      iter::make_bounded_stale_schedule(4, util::Rng(GetParam() * 7 + 1));
  auto r = run_update_sequence(op, *schedule, 30000);
  ASSERT_TRUE(r.converged) << "seed " << GetParam();
  auto fw = floyd_warshall(g);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(util::decode<std::vector<Weight>>(r.final_x[i]), fw[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApspRandomSweep,
                         ::testing::Range<std::size_t>(1, 11));

// ---------------------------------------------------------- transitive closure
TEST(TransitiveClosureTest, ChainClosureIsLowerTriangle) {
  Graph g = make_chain(5);  // edges i -> i-1
  TransitiveClosureOperator op(g);
  const auto& ref = op.reference();
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(TransitiveClosureOperator::test_bit(ref[i], j), j <= i)
          << i << "," << j;
    }
  }
}

TEST(TransitiveClosureTest, CycleClosureIsComplete) {
  Graph g = make_cycle(6);
  TransitiveClosureOperator op(g);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_TRUE(TransitiveClosureOperator::test_bit(op.reference()[i], j));
    }
  }
}

TEST(TransitiveClosureTest, FixedPointIsFixed) {
  util::Rng rng(11);
  Graph g = make_random_gnp(12, 0.2, 1, 1, rng);
  TransitiveClosureOperator op(g);
  std::vector<iter::Value> x;
  for (std::size_t i = 0; i < 12; ++i) x.push_back(op.fixed_point(i));
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(op.apply(i, x), op.fixed_point(i));
  }
}

class TcRandomSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcRandomSweep, AsyncIterationMatchesWarshall) {
  util::Rng rng(GetParam() + 100);
  Graph g = make_random_gnp(10, 0.25, 1, 1, rng);
  TransitiveClosureOperator op(g);
  auto schedule =
      iter::make_bounded_stale_schedule(3, util::Rng(GetParam() * 13 + 5));
  auto r = run_update_sequence(op, *schedule, 30000);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(r.final_x[i], op.fixed_point(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcRandomSweep,
                         ::testing::Range<std::size_t>(1, 9));

TEST(TransitiveClosureTest, WorksBeyond64Vertices) {
  Graph g = make_chain(100);  // two bitset words per row
  TransitiveClosureOperator op(g);
  EXPECT_TRUE(TransitiveClosureOperator::test_bit(op.reference()[99], 0));
  EXPECT_FALSE(TransitiveClosureOperator::test_bit(op.reference()[0], 99));
}

// ----------------------------------------------------------------------- CSP
TEST(CspTest, DifferenceConstraintAlonePrunesNothing) {
  // With two values per side, every value of u keeps a support in v, so arc
  // consistency leaves both domains full.
  Csp csp(2, 2);
  // u != v constraint.
  csp.add_constraint(0, 1, {0b10, 0b01});
  auto dom = ac3(csp);
  EXPECT_EQ(dom[0], 0b11u);  // nothing prunable yet
  EXPECT_EQ(dom[1], 0b11u);
}

TEST(CspTest, SupportlessValueIsPruned) {
  Csp csp(2, 3);
  // Value 2 of variable 0 has no support in variable 1.
  csp.add_constraint(0, 1, {0b011, 0b101, 0b000});
  auto dom = ac3(csp);
  EXPECT_EQ(dom[0], 0b011u);
  EXPECT_EQ(dom[1], 0b111u);
}

TEST(CspTest, PruningCascades) {
  // Chain of 3 variables where pruning propagates end to end.
  Csp csp(3, 2);
  csp.add_constraint(0, 1, {0b01, 0b00});  // (0,b) allowed only b=0; 1 dead
  csp.add_constraint(1, 2, {0b10, 0b11});  // v1=0 forces v2=1
  auto dom = ac3(csp);
  EXPECT_EQ(dom[0], 0b01u);
  EXPECT_EQ(dom[1], 0b01u);
  EXPECT_EQ(dom[2], 0b10u);
}

TEST(CspTest, OperatorFixedPointMatchesAc3) {
  util::Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    Csp csp = make_random_csp(8, 5, 0.4, 0.4, rng);
    ArcConsistencyOperator op(csp);
    auto schedule =
        iter::make_bounded_stale_schedule(3, util::Rng(trial * 31 + 2));
    auto r = run_update_sequence(op, *schedule, 20000);
    ASSERT_TRUE(r.converged) << "trial " << trial;
    auto ref = ac3(csp);
    for (std::size_t v = 0; v < 8; ++v) {
      EXPECT_EQ(util::decode<DomainMask>(r.final_x[v]), ref[v]);
    }
  }
}

TEST(CspTest, ColoringCspPrunesNothingOnTriangleWith3Colors) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 2}, {0, 2}};
  Csp csp = make_coloring_csp(edges, 3, 3);
  auto dom = ac3(csp);
  for (auto d : dom) EXPECT_EQ(d, 0b111u);
}

TEST(CspTest, OrderingChainPrunesToStaircaseDomains) {
  // x_0 < x_1 < ... < x_{n-1} over {0..d-1}: AC leaves dom(x_i) = {i..d-n+i}.
  const std::size_t n = 5, d = 7;
  Csp csp = make_ordering_csp(n, d);
  auto dom = ac3(csp);
  for (std::size_t i = 0; i < n; ++i) {
    DomainMask expected = 0;
    for (std::size_t v = i; v <= d - n + i; ++v) expected |= 1ULL << v;
    EXPECT_EQ(dom[i], expected) << "variable " << i;
  }
}

TEST(CspTest, OrderingChainDistributedMatchesAc3) {
  Csp csp = make_ordering_csp(6, 6);
  auto ref = ac3(csp);
  ArcConsistencyOperator op(std::move(csp));
  auto schedule = iter::make_bounded_stale_schedule(2, util::Rng(4));
  auto r = run_update_sequence(op, *schedule, 20000);
  ASSERT_TRUE(r.converged);
  for (std::size_t v = 0; v < 6; ++v) {
    EXPECT_EQ(util::decode<DomainMask>(r.final_x[v]), ref[v]);
  }
}

TEST(CspTest, RejectsBadParameters) {
  EXPECT_THROW(Csp(0, 3), std::logic_error);
  EXPECT_THROW(Csp(3, 0), std::logic_error);
  EXPECT_THROW(Csp(3, 65), std::logic_error);
  Csp csp(3, 2);
  EXPECT_THROW(csp.add_constraint(0, 0, {0b01, 0b10}), std::logic_error);
  EXPECT_THROW(csp.add_constraint(0, 1, {0b01}), std::logic_error);
}

// -------------------------------------------------------------------- linear
TEST(LinearTest, DirectSolverSolvesKnownSystem) {
  LinearSystem sys;
  sys.a = {{2.0, 1.0}, {1.0, 3.0}};
  sys.b = {5.0, 10.0};
  auto x = solve_direct(sys);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(LinearTest, GeneratorRespectsDominance) {
  util::Rng rng(23);
  LinearSystem sys = make_dominant_system(12, 0.6, rng);
  EXPECT_NEAR(sys.contraction_factor(), 0.6, 1e-9);
}

TEST(LinearTest, ResidualOfDirectSolveIsTiny) {
  util::Rng rng(29);
  LinearSystem sys = make_dominant_system(15, 0.7, rng);
  auto x = solve_direct(sys);
  for (std::size_t i = 0; i < 15; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < 15; ++j) acc += sys.a[i][j] * x[j];
    EXPECT_NEAR(acc, sys.b[i], 1e-8);
  }
}

TEST(LinearTest, JacobiOperatorConvergesSequentially) {
  util::Rng rng(31);
  LinearSystem sys = make_dominant_system(10, 0.5, rng);
  JacobiOperator op(sys, 1e-8);
  auto schedule = iter::make_synchronous_schedule();
  auto r = run_update_sequence(op, *schedule, 1000);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(util::decode<double>(r.final_x[i]), op.solution()[i], 1e-7);
  }
}

TEST(LinearTest, JacobiConvergesUnderAsynchrony) {
  util::Rng rng(37);
  LinearSystem sys = make_dominant_system(8, 0.6, rng);
  JacobiOperator op(sys, 1e-6);
  auto schedule = iter::make_bounded_stale_schedule(5, util::Rng(9));
  auto r = run_update_sequence(op, *schedule, 50000);
  EXPECT_TRUE(r.converged);
}

TEST(LinearTest, SlowerContractionNeedsMoreUpdates) {
  util::Rng rng(41);
  LinearSystem fast_sys = make_dominant_system(8, 0.3, rng);
  LinearSystem slow_sys = make_dominant_system(8, 0.9, rng);
  JacobiOperator fast_op(fast_sys, 1e-8);
  JacobiOperator slow_op(slow_sys, 1e-8);
  auto s1 = iter::make_synchronous_schedule();
  auto s2 = iter::make_synchronous_schedule();
  auto r_fast = run_update_sequence(fast_op, *s1, 10000);
  auto r_slow = run_update_sequence(slow_op, *s2, 10000);
  ASSERT_TRUE(r_fast.converged);
  ASSERT_TRUE(r_slow.converged);
  EXPECT_LT(r_fast.updates, r_slow.updates);
}

TEST(LinearTest, RejectsNonDominantSystems) {
  LinearSystem sys;
  sys.a = {{1.0, 2.0}, {2.0, 1.0}};  // factor 2 > 1
  sys.b = {1.0, 1.0};
  EXPECT_THROW(JacobiOperator(sys, 1e-6), std::logic_error);
}

TEST(LinearTest, SingularSystemThrowsInDirectSolve) {
  LinearSystem sys;
  sys.a = {{1.0, 1.0}, {1.0, 1.0}};
  sys.b = {1.0, 2.0};
  EXPECT_THROW(solve_direct(sys), std::logic_error);
}

}  // namespace
}  // namespace pqra::apps
