#include "apps/graph.hpp"

#include <gtest/gtest.h>

namespace pqra::apps {
namespace {

TEST(GraphTest, ChainStructureAndDistances) {
  Graph g = make_chain(34);
  EXPECT_EQ(g.size(), 34u);
  auto dist = floyd_warshall(g);
  // The paper's chain: vertex 33 (source) reaches vertex 0 (sink) in 33
  // steps; nothing flows the other way.
  EXPECT_EQ(dist[33][0], 33);
  EXPECT_EQ(dist[5][0], 5);
  EXPECT_EQ(dist[0][33], kInf);
  EXPECT_EQ(weighted_diameter(g), 33);
  EXPECT_EQ(apsp_pseudocycle_bound(g), 6u);  // ceil(log2 33) = 6 (paper §7)
}

TEST(GraphTest, CycleDistances) {
  Graph g = make_cycle(5);
  auto dist = floyd_warshall(g);
  EXPECT_EQ(dist[0][1], 1);
  EXPECT_EQ(dist[1][0], 4);
  EXPECT_EQ(weighted_diameter(g), 4);
}

TEST(GraphTest, GridIsSymmetricAndHasManhattanDistances) {
  Graph g = make_grid_graph(3, 4);
  auto dist = floyd_warshall(g);
  // (0,0) to (2,3): 2 + 3 = 5.
  EXPECT_EQ(dist[0][2 * 4 + 3], 5);
  EXPECT_EQ(dist[2 * 4 + 3][0], 5);
  EXPECT_EQ(weighted_diameter(g), 5);
}

TEST(GraphTest, DiagonalIsZeroAndTriangleInequalityHolds) {
  util::Rng rng(5);
  Graph g = make_random_gnp(12, 0.3, 1, 9, rng);
  auto dist = floyd_warshall(g);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(dist[i][i], 0);
    for (std::size_t j = 0; j < 12; ++j) {
      for (std::size_t k = 0; k < 12; ++k) {
        EXPECT_LE(dist[i][j],
                  util::saturating_add(dist[i][k], dist[k][j]));
      }
    }
  }
}

TEST(GraphTest, CompleteGraphAllPairsFinite) {
  util::Rng rng(7);
  Graph g = make_complete(8, 1, 5, rng);
  auto dist = floyd_warshall(g);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_LT(dist[i][j], kInf);
    }
  }
}

TEST(GraphTest, RandomTreeReachesAllFromRoot) {
  util::Rng rng(9);
  Graph g = make_random_tree(20, rng);
  auto dist = floyd_warshall(g);
  for (std::size_t j = 1; j < 20; ++j) {
    EXPECT_LT(dist[0][j], kInf) << "root must reach vertex " << j;
  }
}

TEST(GraphTest, ShorterParallelEdgeWins) {
  Graph g(2);
  g.add_edge(0, 1, 5);
  g.add_edge(0, 1, 2);
  auto dist = floyd_warshall(g);
  EXPECT_EQ(dist[0][1], 2);
}

TEST(GraphTest, RejectsBadInput) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3, 1), std::logic_error);
  EXPECT_THROW(g.add_edge(0, 1, -2), std::logic_error);
  EXPECT_THROW(make_chain(1), std::logic_error);
}

}  // namespace
}  // namespace pqra::apps
