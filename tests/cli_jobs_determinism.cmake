# Jobs-invariance check at the CLI level (driven by the cli_jobs_determinism
# ctest entry): the parallel replication driver must be a pure wall-clock
# optimisation — stdout, the metrics JSON, the Prometheus export and the op
# trace must be byte-identical between --jobs 1 and --jobs 8, with and
# without a fault plan.  See docs/PERFORMANCE.md for the contract.
#
# Inputs: -DCLI=<path to experiment_cli> -DWORK_DIR=<scratch directory>

if(NOT CLI OR NOT WORK_DIR)
  message(FATAL_ERROR
    "cli_jobs_determinism.cmake needs -DCLI=... and -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(check_identical label a b)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "${label} diverged between --jobs 1 and --jobs 8: ${a} vs ${b}")
  endif()
endfunction()

# Scenario 1: fault-free multi-run experiment, all export formats.  sync=1:
# in async mode a run can converge with its last write still in flight,
# which the completion-only trace flags — a pre-existing trace-mode caveat,
# not a jobs issue (the faulted scenario below covers async via the
# recorded-history checks).
set(base_args app=apsp graph=chain size=10 quorum=prob k=3 servers=8
    monotone=1 sync=1 runs=6 cap=5000 seed=5)
# Scenario 2: the same workload under an explicit fault plan (retries,
# fault metrics and the recorded history must all stay jobs-invariant).
set(fault_args app=apsp graph=chain size=10 quorum=prob k=3 servers=8
    monotone=1 sync=0 runs=4 cap=5000 seed=5
    "fault-plan=outage:2@5-60;slow:1*4@10;drop=0.02;dup=0.01")

foreach(scenario base fault)
  foreach(jobs 1 8)
    set(dir "${WORK_DIR}/${scenario}_j${jobs}")
    file(MAKE_DIRECTORY "${dir}")
    execute_process(
      COMMAND "${CLI}" ${${scenario}_args} jobs=${jobs}
              "metrics-out=${dir}/metrics.json"
              "prom-out=${dir}/metrics.prom"
              "trace-out=${dir}/trace.jsonl"
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "experiment_cli ${scenario} jobs=${jobs} failed (rc=${rc})\n"
        "${out}\n${err}")
    endif()
    # Strip the "wrote ... to <path>" lines: the per-jobs scratch paths are
    # the one legitimate stdout difference.
    string(REGEX REPLACE "wrote [^\n]*\n" "" out "${out}")
    file(WRITE "${dir}/stdout.txt" "${out}")
  endforeach()
  set(d1 "${WORK_DIR}/${scenario}_j1")
  set(d8 "${WORK_DIR}/${scenario}_j8")
  check_identical("${scenario}: stdout" "${d1}/stdout.txt" "${d8}/stdout.txt")
  check_identical("${scenario}: metrics JSON"
                  "${d1}/metrics.json" "${d8}/metrics.json")
  check_identical("${scenario}: Prometheus export"
                  "${d1}/metrics.prom" "${d8}/metrics.prom")
  check_identical("${scenario}: op trace"
                  "${d1}/trace.jsonl" "${d8}/trace.jsonl")
endforeach()
