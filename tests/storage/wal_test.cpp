/// WAL record-format pins (docs/DURABILITY.md): encode/decode round-trips,
/// CRC rejection of payload corruption, and — the truncation-tolerance
/// contract — an exhaustive sweep that cuts the log at EVERY byte offset of
/// the final record and asserts replay recovers exactly the valid prefix
/// with the torn flag set.

#include "storage/wal.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/codec.hpp"

namespace pqra::storage::wal {
namespace {

core::Value val(std::int64_t x) { return util::encode(x); }

/// Appends one encoded record to \p log and returns its size in bytes.
std::size_t append(util::Bytes& log, core::RegisterId reg, core::Timestamp ts,
                   const core::Value& value) {
  util::Bytes buf;
  encode_record(buf, reg, ts, value);
  log.insert(log.end(), buf.begin(), buf.end());
  return buf.size();
}

TEST(WalTest, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 (IEEE 802.3, reflected) check value: any deviation
  // means logs written by one build would be rejected by another.
  const std::string nine = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::byte*>(nine.data()), nine.size()),
            0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(WalTest, EncodeDecodeRoundTripsRecords) {
  util::Bytes log;
  append(log, 0, 1, val(42));
  append(log, 7, 9, core::Value{});  // empty value is legal
  core::Value big(util::Bytes(1000, std::byte{0x5a}));
  append(log, 3, 2, big);

  const ReplayResult r = replay_log(log);
  EXPECT_FALSE(r.torn);
  EXPECT_EQ(r.valid_bytes, log.size());
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].reg, 0u);
  EXPECT_EQ(r.records[0].ts, 1u);
  EXPECT_EQ(util::decode<std::int64_t>(r.records[0].value), 42);
  EXPECT_EQ(r.records[1].reg, 7u);
  EXPECT_EQ(r.records[1].ts, 9u);
  EXPECT_TRUE(r.records[1].value.empty());
  EXPECT_EQ(r.records[2].value, big);
}

TEST(WalTest, EmptyLogReplaysToNothing) {
  const ReplayResult r = replay_log(util::Bytes{});
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.valid_bytes, 0u);
  EXPECT_FALSE(r.torn);
}

TEST(WalTest, PayloadCorruptionIsRejectedByCrc) {
  util::Bytes log;
  const std::size_t first = append(log, 0, 1, val(10));
  append(log, 0, 2, val(20));

  // Flip one payload byte of the SECOND record: replay keeps record one,
  // stops at the mismatch, and never surfaces the corrupt payload.
  util::Bytes corrupt = log;
  corrupt[first + kHeaderBytes + 3] ^= std::byte{0xff};
  const ReplayResult r = replay_log(corrupt);
  EXPECT_TRUE(r.torn);
  EXPECT_EQ(r.valid_bytes, first);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(util::decode<std::int64_t>(r.records[0].value), 10);
}

TEST(WalTest, ZeroFilledTailIsRejectedNotDecoded) {
  // A torn sector write can fabricate an all-zero "header": len 0 is below
  // kMinPayloadBytes, so replay must stop rather than loop or decode it.
  util::Bytes log;
  const std::size_t first = append(log, 2, 5, val(1));
  log.insert(log.end(), 24, std::byte{0});

  const ReplayResult r = replay_log(log);
  EXPECT_TRUE(r.torn);
  EXPECT_EQ(r.valid_bytes, first);
  ASSERT_EQ(r.records.size(), 1u);
}

// The tentpole contract: cut the log at EVERY byte offset inside the final
// record.  Whatever the cut, replay returns exactly the records before it,
// valid_bytes lands on the preceding record boundary, and the torn flag is
// raised iff any partial bytes were discarded.  No offset may surface a
// partially-written record.
TEST(WalTest, TruncationAtEveryByteOffsetOfFinalRecordRecoversValidPrefix) {
  util::Bytes log;
  std::size_t prefix = 0;
  prefix += append(log, 0, 1, val(11));
  prefix += append(log, 1, 2, val(22));
  const core::Value last_value = util::encode<std::int64_t>(33);
  append(log, 2, 3, last_value);

  for (std::size_t cut = prefix; cut <= log.size(); ++cut) {
    util::Bytes torn_log(log.begin(),
                         log.begin() + static_cast<std::ptrdiff_t>(cut));
    const ReplayResult r = replay_log(torn_log);
    if (cut == log.size()) {
      // Nothing missing: the full final record replays.
      EXPECT_FALSE(r.torn);
      ASSERT_EQ(r.records.size(), 3u);
      EXPECT_EQ(r.valid_bytes, log.size());
      EXPECT_EQ(r.records[2].value, last_value);
    } else if (cut == prefix) {
      // Clean boundary: the final record is absent in full, nothing torn.
      EXPECT_FALSE(r.torn);
      ASSERT_EQ(r.records.size(), 2u);
      EXPECT_EQ(r.valid_bytes, prefix);
    } else {
      // Any strictly partial tail is discarded in full.
      EXPECT_TRUE(r.torn) << "cut at byte " << cut;
      EXPECT_EQ(r.valid_bytes, prefix) << "cut at byte " << cut;
      ASSERT_EQ(r.records.size(), 2u) << "cut at byte " << cut;
      EXPECT_EQ(util::decode<std::int64_t>(r.records[1].value), 22);
    }
  }
}

// Same sweep with the tail zeroed in place (MemDisk's torn-write model)
// instead of removed: the length-prefixed bytes are still there, but the
// CRC no longer matches, so replay must stop at the same boundary.
TEST(WalTest, ZeroedSuffixOfFinalRecordIsDiscardedAtEveryLength) {
  util::Bytes log;
  std::size_t prefix = 0;
  prefix += append(log, 0, 1, val(7));
  const std::size_t final_bytes = append(log, 1, 2, val(0x1122334455667788));

  for (std::size_t tear = 1; tear <= final_bytes; ++tear) {
    util::Bytes torn_log = log;
    std::fill(torn_log.end() - static_cast<std::ptrdiff_t>(tear),
              torn_log.end(), std::byte{0});
    const ReplayResult r = replay_log(torn_log);
    EXPECT_TRUE(r.torn) << "tear of " << tear << " bytes";
    EXPECT_EQ(r.valid_bytes, prefix) << "tear of " << tear << " bytes";
    ASSERT_EQ(r.records.size(), 1u) << "tear of " << tear << " bytes";
    EXPECT_EQ(util::decode<std::int64_t>(r.records[0].value), 7);
  }
}

TEST(WalTest, ImpossibleLengthHeaderStopsReplay) {
  util::Bytes log;
  const std::size_t first = append(log, 0, 1, val(4));
  // A header claiming more payload than the log holds: structurally torn.
  const std::uint32_t len = 1u << 20;
  const std::uint32_t crc = 0;
  const std::size_t off = log.size();
  log.resize(off + kHeaderBytes);
  std::memcpy(log.data() + off, &len, sizeof len);
  std::memcpy(log.data() + off + sizeof len, &crc, sizeof crc);

  const ReplayResult r = replay_log(log);
  EXPECT_TRUE(r.torn);
  EXPECT_EQ(r.valid_bytes, first);
  EXPECT_EQ(r.records.size(), 1u);
}

// The planted-bug hook (docs/EXPLORATION.md): with skip_crc_bug set, a CRC
// mismatch does NOT stop replay — the corrupt payload is surfaced.  This is
// the defect the crash-replay-compare drill must catch, and the unit test
// pins that the hook actually disables the check (a drill against a
// secretly-correct implementation would prove nothing).
TEST(WalTest, SkipCrcBugSurfacesCorruptRecords) {
  util::Bytes log;
  append(log, 0, 3, val(10));
  append(log, 1, 4, val(20));

  util::Bytes corrupt = log;
  corrupt[kHeaderBytes + 2] ^= std::byte{0x40};  // first record's payload

  const ReplayResult honest = replay_log(corrupt);
  EXPECT_TRUE(honest.torn);
  EXPECT_TRUE(honest.records.empty());

  const ReplayResult buggy = replay_log(corrupt, /*skip_crc_bug=*/true);
  EXPECT_FALSE(buggy.torn);
  ASSERT_EQ(buggy.records.size(), 2u);
  EXPECT_EQ(buggy.valid_bytes, corrupt.size());
  // The corrupt first record decodes to something, the intact second record
  // decodes correctly — the bug propagates garbage while looking healthy.
  EXPECT_EQ(util::decode<std::int64_t>(buggy.records[1].value), 20);
}

}  // namespace
}  // namespace pqra::storage::wal
