/// DurableStore + backend pins (docs/DURABILITY.md): snapshot install /
/// WAL-replay equivalence, log truncation after checkpoints, crash recovery
/// through MemDisk (including injected fsync-loss and torn-write faults and
/// the repair-by-later-sync rule), and a real-file FileBackend restart.

#include "storage/durable_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/replica.hpp"
#include "net/faults.hpp"
#include "storage/file_backend.hpp"
#include "storage/mem_disk.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace pqra::storage {
namespace {

core::Value val(std::int64_t x) { return util::encode(x); }

/// Applies one write through the protocol path (so the StoreListener fires
/// exactly as in a real run).
void write(core::Replica& r, core::RegisterId reg, core::Timestamp ts,
           std::int64_t x) {
  r.handle(net::Message::write_req(reg, /*op=*/ts, ts, val(x)));
}

TEST(DurableStoreTest, CrashAfterSyncedWritesRecoversEveryApply) {
  core::Replica replica;
  MemDisk disk(0, nullptr, util::Rng(1));
  DurableStore store(disk, DurableStore::Options{/*snapshot_every=*/0});
  store.attach(replica);

  write(replica, 0, 1, 10);
  write(replica, 1, 1, 20);
  write(replica, 0, 2, 11);
  const core::Value before = replica.encode_store();

  disk.drop_volatile();
  store.recover();
  EXPECT_EQ(replica.encode_store(), before);
  EXPECT_EQ(replica.get(0)->ts, 2u);
  EXPECT_EQ(util::decode<std::int64_t>(replica.get(0)->value), 11);
  EXPECT_EQ(store.counters().recoveries, 1u);
  EXPECT_EQ(store.counters().replayed_records, 3u);
  EXPECT_EQ(store.counters().torn_tails_dropped, 0u);
}

TEST(DurableStoreTest, SnapshotPlusWalReplayEqualsSnapshotlessReplay) {
  // Same write sequence, one store checkpointing mid-stream, one never:
  // recovery must land both on the identical store (snapshot ⊔ WAL prefix
  // is equivalent to replaying the full log).
  core::Replica with_snap;
  core::Replica wal_only;
  MemDisk disk_a(0, nullptr, util::Rng(1));
  MemDisk disk_b(1, nullptr, util::Rng(1));
  DurableStore store_a(disk_a, DurableStore::Options{0});
  DurableStore store_b(disk_b, DurableStore::Options{0});
  store_a.attach(with_snap);
  store_b.attach(wal_only);

  for (core::Timestamp ts = 1; ts <= 3; ++ts) {
    write(with_snap, 0, ts, 100 + static_cast<std::int64_t>(ts));
    write(wal_only, 0, ts, 100 + static_cast<std::int64_t>(ts));
  }
  store_a.checkpoint();
  ASSERT_TRUE(disk_a.durable_wal().empty());  // log reset at the checkpoint
  for (core::Timestamp ts = 4; ts <= 6; ++ts) {
    write(with_snap, 1, ts, 200 + static_cast<std::int64_t>(ts));
    write(wal_only, 1, ts, 200 + static_cast<std::int64_t>(ts));
  }

  disk_a.drop_volatile();
  disk_b.drop_volatile();
  store_a.recover();
  store_b.recover();
  EXPECT_EQ(with_snap.encode_store(), wal_only.encode_store());
  EXPECT_EQ(store_a.counters().snapshot_loads, 1u);
  EXPECT_EQ(store_a.counters().replayed_records, 3u);  // post-snapshot WAL
  EXPECT_EQ(store_b.counters().snapshot_loads, 0u);
  EXPECT_EQ(store_b.counters().replayed_records, 6u);
}

TEST(DurableStoreTest, AutomaticCheckpointTruncatesTheLog) {
  core::Replica replica;
  MemDisk disk(0, nullptr, util::Rng(1));
  DurableStore store(disk, DurableStore::Options{/*snapshot_every=*/4});
  store.attach(replica);

  for (core::Timestamp ts = 1; ts <= 4; ++ts) write(replica, 0, ts, 1);
  EXPECT_EQ(store.counters().checkpoints, 1u);
  EXPECT_TRUE(disk.durable_wal().empty());
  EXPECT_FALSE(disk.durable_snapshot().empty());

  // The 5th apply starts a fresh log; recovery folds snapshot + 1 record.
  write(replica, 1, 5, 2);
  const core::Value before = replica.encode_store();
  disk.drop_volatile();
  store.recover();
  EXPECT_EQ(replica.encode_store(), before);
  EXPECT_EQ(store.counters().snapshot_loads, 1u);
  EXPECT_EQ(store.counters().replayed_records, 1u);
}

TEST(DurableStoreTest, CheckpointMakesPreloadedInitialsDurable) {
  // preload() bypasses the listener by design; the explicit checkpoint is
  // what makes initial vectors durable (the explore runner does exactly
  // this after preloading).
  core::Replica replica;
  MemDisk disk(0, nullptr, util::Rng(1));
  DurableStore store(disk, DurableStore::Options{0});
  replica.preload(0, val(7));
  replica.preload(1, val(8));
  store.attach(replica);
  store.checkpoint();

  disk.drop_volatile();
  store.recover();
  ASSERT_NE(replica.get(0), nullptr);
  EXPECT_EQ(replica.get(0)->ts, 0u);
  EXPECT_EQ(util::decode<std::int64_t>(replica.get(0)->value), 7);
  EXPECT_EQ(util::decode<std::int64_t>(replica.get(1)->value), 8);
}

TEST(DurableStoreTest, FsyncLossWindowLosesExactlyTheUnsyncedSuffix) {
  net::FaultInjector faults(2);
  core::Replica replica;
  MemDisk disk(0, &faults, util::Rng(3));
  DurableStore store(disk, DurableStore::Options{0});
  store.attach(replica);

  write(replica, 0, 1, 10);  // durable
  faults.set_fsync_loss(0, true);
  write(replica, 0, 2, 11);  // sync silently lost
  write(replica, 1, 1, 20);  // still lost
  faults.set_fsync_loss(0, false);

  EXPECT_EQ(disk.counters().lost_syncs, 2u);
  disk.drop_volatile();
  store.recover();
  // Only the write synced before the window survives.
  EXPECT_EQ(replica.get(0)->ts, 1u);
  EXPECT_EQ(util::decode<std::int64_t>(replica.get(0)->value), 10);
  EXPECT_EQ(replica.get(1), nullptr);
  EXPECT_EQ(faults.counters().fsync_losses, 2u);
}

TEST(DurableStoreTest, SyncAfterFsyncLossWindowRepairsTheLog) {
  // The lying fsync loses bytes only until the next honest sync: wal_sync
  // copies the whole volatile image, so one good sync re-persists the
  // records the window dropped.
  net::FaultInjector faults(2);
  core::Replica replica;
  MemDisk disk(0, &faults, util::Rng(3));
  DurableStore store(disk, DurableStore::Options{0});
  store.attach(replica);

  faults.set_fsync_loss(0, true);
  write(replica, 0, 1, 10);
  faults.set_fsync_loss(0, false);
  write(replica, 0, 2, 11);  // honest sync: both records land
  const core::Value before = replica.encode_store();

  disk.drop_volatile();
  store.recover();
  EXPECT_EQ(replica.encode_store(), before);
  EXPECT_EQ(store.counters().replayed_records, 2u);
}

TEST(DurableStoreTest, TornWriteSurfacedOnCrashDropsOnlyTheTornRecord) {
  net::FaultInjector faults(2);
  core::Replica replica;
  MemDisk disk(0, &faults, util::Rng(7));
  DurableStore store(disk, DurableStore::Options{0});
  store.attach(replica);

  write(replica, 0, 1, 10);  // durable, intact
  faults.arm_torn_write(0);
  // All-nonzero value bytes: wherever the tear lands in the final record,
  // it changes at least one byte, so the CRC catches it after the crash.
  write(replica, 0, 2, 0x1122334455667788);  // this sync tears its own record
  EXPECT_EQ(disk.counters().torn_syncs, 1u);
  EXPECT_EQ(faults.counters().torn_writes, 1u);

  disk.drop_volatile();
  store.recover();
  // The torn tail is discarded, the prefix survives, and the log is
  // repaired so post-recovery appends extend a well-formed image.
  EXPECT_EQ(replica.get(0)->ts, 1u);
  EXPECT_EQ(util::decode<std::int64_t>(replica.get(0)->value), 10);
  EXPECT_EQ(store.counters().torn_tails_dropped, 1u);
  const wal::ReplayResult repaired = wal::replay_log(disk.durable_wal());
  EXPECT_FALSE(repaired.torn);
  EXPECT_EQ(repaired.records.size(), 1u);

  write(replica, 0, 3, 12);
  disk.drop_volatile();
  store.recover();
  EXPECT_EQ(replica.get(0)->ts, 3u);
}

TEST(DurableStoreTest, LaterGoodSyncRepairsATornTail) {
  // A torn write only matters if the node crashes while the tear is the
  // durable tail: the next honest sync rewrites the image in full.
  net::FaultInjector faults(2);
  core::Replica replica;
  MemDisk disk(0, &faults, util::Rng(7));
  DurableStore store(disk, DurableStore::Options{0});
  store.attach(replica);

  faults.arm_torn_write(0);
  write(replica, 0, 1, 10);  // torn in the durable image
  write(replica, 0, 2, 11);  // honest sync repairs the tear
  const core::Value before = replica.encode_store();

  disk.drop_volatile();
  store.recover();
  EXPECT_EQ(replica.encode_store(), before);
  EXPECT_EQ(store.counters().torn_tails_dropped, 0u);
  EXPECT_EQ(store.counters().replayed_records, 2u);
}

TEST(DurableStoreTest, FileBackendSurvivesAProcessRestart) {
  const std::string prefix = testing::TempDir() + "pqra_wal_restart";
  std::remove((prefix + ".wal").c_str());
  std::remove((prefix + ".snap").c_str());
  core::Value before;
  {
    core::Replica replica;
    FileBackend files(prefix);
    DurableStore store(files, DurableStore::Options{0});
    store.attach(replica);
    write(replica, 0, 1, 10);
    write(replica, 1, 1, 20);
    store.checkpoint();
    write(replica, 0, 2, 11);
    before = replica.encode_store();
  }  // "process exit": backend closed, files remain

  core::Replica revived;
  FileBackend files(prefix);
  DurableStore store(files, DurableStore::Options{0});
  store.attach(revived);
  store.recover();
  EXPECT_EQ(revived.encode_store(), before);
  EXPECT_EQ(store.counters().snapshot_loads, 1u);
  EXPECT_EQ(store.counters().replayed_records, 1u);
  std::remove((prefix + ".wal").c_str());
  std::remove((prefix + ".snap").c_str());
}

TEST(DurableStoreTest, FileBackendTruncatesATornTailOnRecovery) {
  const std::string prefix = testing::TempDir() + "pqra_wal_torn";
  std::remove((prefix + ".wal").c_str());
  std::remove((prefix + ".snap").c_str());
  std::size_t full_size = 0;
  {
    core::Replica replica;
    FileBackend files(prefix);
    DurableStore store(files, DurableStore::Options{0});
    store.attach(replica);
    write(replica, 0, 1, 10);
    write(replica, 0, 2, 11);
    full_size = files.wal_contents().size();
  }
  // Crash simulation: chop bytes off the on-disk log mid-record.
  {
    util::Bytes bytes;
    {
      FileBackend files(prefix);
      bytes = files.wal_contents();
    }
    ASSERT_EQ(bytes.size(), full_size);
    std::FILE* f = std::fopen((prefix + ".wal").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, full_size - 5, f), full_size - 5);
    std::fclose(f);
  }

  core::Replica revived;
  FileBackend files(prefix);
  DurableStore store(files, DurableStore::Options{0});
  store.attach(revived);
  store.recover();
  EXPECT_EQ(revived.get(0)->ts, 1u);
  EXPECT_EQ(store.counters().torn_tails_dropped, 1u);
  // The repair is durable: the file now ends at the valid prefix.
  const wal::ReplayResult repaired = wal::replay_log(files.wal_contents());
  EXPECT_FALSE(repaired.torn);
  EXPECT_EQ(repaired.records.size(), 1u);
  std::remove((prefix + ".wal").c_str());
  std::remove((prefix + ".snap").c_str());
}

}  // namespace
}  // namespace pqra::storage
