#include "net/sim_transport.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pqra::net {
namespace {

/// Records everything delivered to it.
class Recorder final : public Receiver {
 public:
  void on_message(NodeId from, Message msg) override {
    senders.push_back(from);
    messages.push_back(std::move(msg));
  }

  std::vector<NodeId> senders;
  std::vector<Message> messages;
};

class SimTransportTest : public ::testing::Test {
 protected:
  SimTransportTest()
      : delay_(sim::make_constant_delay(1.0)),
        transport_(sim_, *delay_, util::Rng(1), 4) {
    for (NodeId i = 0; i < 4; ++i) {
      transport_.register_receiver(i, &recorders_[i]);
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::DelayModel> delay_;
  SimTransport transport_;
  Recorder recorders_[4];
};

TEST_F(SimTransportTest, DeliversWithModelDelay) {
  transport_.send(0, 1, Message::read_req(7, 99));
  EXPECT_TRUE(recorders_[1].messages.empty());
  sim_.run();
  ASSERT_EQ(recorders_[1].messages.size(), 1u);
  EXPECT_EQ(recorders_[1].senders[0], 0u);
  EXPECT_EQ(recorders_[1].messages[0].reg, 7u);
  EXPECT_EQ(recorders_[1].messages[0].op, 99u);
  EXPECT_DOUBLE_EQ(sim_.now(), 1.0);
}

TEST_F(SimTransportTest, CountsByType) {
  transport_.send(0, 1, Message::read_req(0, 1));
  transport_.send(1, 0, Message::read_ack(0, 1, 3, {}));
  transport_.send(0, 2, Message::write_req(0, 2, 4, {}));
  transport_.send(2, 0, Message::write_ack(0, 2, 4));
  sim_.run();
  MessageStats stats = transport_.stats();
  EXPECT_EQ(stats.total, 4u);
  for (MsgType t : {MsgType::kReadReq, MsgType::kReadAck, MsgType::kWriteReq,
                    MsgType::kWriteAck}) {
    EXPECT_EQ(stats.by_type[static_cast<std::size_t>(t)], 1u);
  }
  EXPECT_EQ(stats.by_type[static_cast<std::size_t>(MsgType::kGossip)], 0u);
  EXPECT_EQ(stats.received_by_node[0], 2u);
  EXPECT_EQ(stats.received_by_node[1], 1u);
  EXPECT_EQ(stats.received_by_node[2], 1u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(SimTransportTest, StatsMinusAttributesPhases) {
  transport_.send(0, 1, Message::read_req(0, 1));
  sim_.run();
  MessageStats before = transport_.stats();
  transport_.send(0, 2, Message::read_req(0, 2));
  transport_.send(0, 3, Message::read_req(0, 3));
  sim_.run();
  MessageStats delta = transport_.stats().minus(before);
  EXPECT_EQ(delta.total, 2u);
  EXPECT_EQ(delta.received_by_node[1], 0u);
  EXPECT_EQ(delta.received_by_node[2], 1u);
}

TEST_F(SimTransportTest, CrashedDestinationDropsMessages) {
  transport_.crash(1);
  transport_.send(0, 1, Message::read_req(0, 1));
  sim_.run();
  EXPECT_TRUE(recorders_[1].messages.empty());
  EXPECT_EQ(transport_.stats().dropped, 1u);
  EXPECT_EQ(transport_.stats().total, 1u);  // sends still counted
}

TEST_F(SimTransportTest, CrashedSourceDropsMessages) {
  transport_.crash(0);
  transport_.send(0, 1, Message::read_req(0, 1));
  sim_.run();
  EXPECT_TRUE(recorders_[1].messages.empty());
  EXPECT_EQ(transport_.stats().dropped, 1u);
}

TEST_F(SimTransportTest, CrashInFlightDropsMessage) {
  transport_.send(0, 1, Message::read_req(0, 1));
  transport_.crash(1);  // after send, before delivery
  sim_.run();
  EXPECT_TRUE(recorders_[1].messages.empty());
  EXPECT_EQ(transport_.stats().dropped, 1u);
}

TEST_F(SimTransportTest, RecoverRestoresDelivery) {
  transport_.crash(1);
  transport_.recover(1);
  transport_.send(0, 1, Message::read_req(0, 1));
  sim_.run();
  EXPECT_EQ(recorders_[1].messages.size(), 1u);
}

TEST_F(SimTransportTest, DropProbabilityLosesRoughlyThatFraction) {
  transport_.set_drop_probability(0.25);
  for (int i = 0; i < 4000; ++i) {
    transport_.send(0, 1, Message::read_req(0, static_cast<OpId>(i)));
  }
  sim_.run();
  double lost = static_cast<double>(transport_.stats().dropped) / 4000.0;
  EXPECT_NEAR(lost, 0.25, 0.03);
}

TEST_F(SimTransportTest, RejectsUnknownNodes) {
  EXPECT_THROW(transport_.send(0, 99, Message::read_req(0, 1)),
               std::logic_error);
  EXPECT_THROW(transport_.crash(99), std::logic_error);
}

TEST_F(SimTransportTest, RejectsDoubleRegistration) {
  Recorder extra;
  EXPECT_THROW(transport_.register_receiver(0, &extra), std::logic_error);
}

TEST(SimTransportOrderTest, ExponentialDelaysReorderMessages) {
  sim::Simulator sim;
  auto delay = sim::make_exponential_delay(1.0);
  SimTransport transport(sim, *delay, util::Rng(3), 2);
  Recorder rx;
  Recorder tx;
  transport.register_receiver(0, &tx);
  transport.register_receiver(1, &rx);
  for (OpId i = 0; i < 50; ++i) {
    transport.send(0, 1, Message::read_req(0, i));
  }
  sim.run();
  ASSERT_EQ(rx.messages.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 1; i < rx.messages.size(); ++i) {
    if (rx.messages[i].op < rx.messages[i - 1].op) reordered = true;
  }
  EXPECT_TRUE(reordered) << "exponential delays should reorder messages";
}

TEST(MessageTest, FactoriesAndDescribe) {
  Message m = Message::read_ack(3, 17, 5, Value(util::Bytes(4)));
  EXPECT_EQ(m.type, MsgType::kReadAck);
  EXPECT_EQ(m.describe(), "ReadAck{reg=3 op=17 ts=5 |v|=4}");
  EXPECT_STREQ(msg_type_name(MsgType::kWriteReq), "WriteReq");
}

}  // namespace
}  // namespace pqra::net
