#include "net/fault_plan.hpp"

#include <gtest/gtest.h>

namespace pqra::net {
namespace {

class NullReceiver final : public Receiver {
 public:
  void on_message(NodeId, Message) override { ++received; }
  int received = 0;
};

TEST(FaultPlanTest, InstallDrivesCrashAndRecovery) {
  sim::Simulator sim;
  auto delay = sim::make_constant_delay(0.1);
  SimTransport transport(sim, *delay, util::Rng(1), 2);
  NullReceiver rx0, rx1;
  transport.register_receiver(0, &rx0);
  transport.register_receiver(1, &rx1);

  FaultPlan plan;
  plan.outage(1, 5.0, 10.0);
  plan.install(sim, transport);

  // Before the outage: delivered.
  transport.send(0, 1, Message::read_req(0, 1));
  sim.run_until(2.0);
  EXPECT_EQ(rx1.received, 1);
  // During the outage: dropped.
  sim.run_until(7.0);
  EXPECT_TRUE(transport.is_crashed(1));
  transport.send(0, 1, Message::read_req(0, 2));
  sim.run_until(9.0);
  EXPECT_EQ(rx1.received, 1);
  // After recovery: delivered again.
  sim.run_until(16.0);
  EXPECT_FALSE(transport.is_crashed(1));
  transport.send(0, 1, Message::read_req(0, 3));
  sim.run();
  EXPECT_EQ(rx1.received, 2);
}

TEST(FaultPlanTest, MaxConcurrentDownComputesOverlap) {
  FaultPlan plan;
  plan.outage(0, 1.0, 5.0);   // down [1, 6)
  plan.outage(1, 3.0, 5.0);   // down [3, 8)
  plan.outage(2, 10.0, 1.0);  // down [10, 11)
  EXPECT_EQ(plan.max_concurrent_down(3), 2u);
  EXPECT_EQ(plan.max_concurrent_down(1), 1u);  // only server 0 considered
}

TEST(FaultPlanTest, RandomChurnProducesPairedEvents) {
  util::Rng rng(7);
  FaultPlan plan = FaultPlan::random_churn(10, 100.0, 20.0, 5.0, rng);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.events().size() % 2, 0u);  // crash/recover pairs
  for (const auto& ev : plan.events()) {
    EXPECT_LT(ev.node, 10u);
    EXPECT_GE(ev.at, 0.0);
  }
}

TEST(FaultPlanTest, ChurnIsDeterministicGivenSeed) {
  util::Rng a(3), b(3);
  FaultPlan p1 = FaultPlan::random_churn(5, 50.0, 10.0, 2.0, a);
  FaultPlan p2 = FaultPlan::random_churn(5, 50.0, 10.0, 2.0, b);
  ASSERT_EQ(p1.events().size(), p2.events().size());
  for (std::size_t i = 0; i < p1.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.events()[i].at, p2.events()[i].at);
    EXPECT_EQ(p1.events()[i].node, p2.events()[i].node);
    EXPECT_EQ(p1.events()[i].kind, p2.events()[i].kind);
  }
}

TEST(FaultPlanTest, RejectsBadArguments) {
  FaultPlan plan;
  EXPECT_THROW(plan.crash_at(-1.0, 0), std::logic_error);
  EXPECT_THROW(plan.outage(0, 1.0, 0.0), std::logic_error);
  EXPECT_THROW(plan.slow_at(1.0, 0, 0.5), std::logic_error);
  EXPECT_THROW(plan.partition_at(1.0, {{0, 1}}), std::logic_error);
}

TEST(FaultPlanTest, ParseAcceptsFullGrammar) {
  FaultPlan plan = FaultPlan::parse(
      "crash:2@10;recover:2@50;outage:3@60-70;slow:1*4@5;noslow:1@25;"
      "partition:0-2|3,4@30;heal@40;drop=0.02;dup=0.01;delay=0.5;"
      "reorder=0.1:3");
  ASSERT_EQ(plan.events().size(), 8u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events()[0].node, 2u);
  EXPECT_DOUBLE_EQ(plan.events()[0].at, 10.0);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kRecover);
  // outage expands to a crash/recover pair
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(plan.events()[2].at, 60.0);
  EXPECT_EQ(plan.events()[3].kind, FaultKind::kRecover);
  EXPECT_DOUBLE_EQ(plan.events()[3].at, 70.0);
  EXPECT_EQ(plan.events()[4].kind, FaultKind::kSlow);
  EXPECT_DOUBLE_EQ(plan.events()[4].factor, 4.0);
  EXPECT_EQ(plan.events()[5].kind, FaultKind::kClearSlow);
  const auto& part = plan.events()[6];
  EXPECT_EQ(part.kind, FaultKind::kPartition);
  ASSERT_EQ(part.groups.size(), 2u);
  EXPECT_EQ(part.groups[0], (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(part.groups[1], (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(plan.events()[7].kind, FaultKind::kHeal);
  const MessageFaults& mf = plan.message_faults();
  EXPECT_DOUBLE_EQ(mf.drop_probability, 0.02);
  EXPECT_DOUBLE_EQ(mf.duplicate_probability, 0.01);
  EXPECT_DOUBLE_EQ(mf.extra_delay, 0.5);
  EXPECT_DOUBLE_EQ(mf.reorder_probability, 0.1);
  EXPECT_DOUBLE_EQ(mf.reorder_delay_max, 3.0);
}

TEST(FaultPlanTest, ParseRejectsBadClauses) {
  EXPECT_THROW(FaultPlan::parse("crash:1"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("explode:1@5"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("slow:1@5"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("outage:1@9-3"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("frob=0.1"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("drop=abc"), std::logic_error);
}

TEST(FaultPlanTest, ParseAcceptsKeyAddressedTargets) {
  const FaultPlan plan = FaultPlan::parse(
      "crash:k12@10;recover:k12@50;outage:k7@20-60;slow:k3*2@5;noslow:k3@25;"
      "partition:0-2,k7|3@9");
  ASSERT_TRUE(plan.has_key_targets());
  ASSERT_EQ(plan.events().size(), 7u);  // outage expands to crash/recover
  EXPECT_TRUE(plan.events()[0].node_is_key);
  EXPECT_EQ(plan.events()[0].node, 12u);
  EXPECT_TRUE(plan.events()[2].node_is_key);  // outage:k7 crash half
  EXPECT_EQ(plan.events()[2].node, 7u);
  EXPECT_TRUE(plan.events()[3].node_is_key);  // ...and recover half
  const auto& part = plan.events()[6];
  EXPECT_EQ(part.kind, FaultKind::kPartition);
  ASSERT_EQ(part.group_keys.size(), 2u);
  EXPECT_EQ(part.group_keys[0], (std::vector<KeyId>{7}));
  EXPECT_TRUE(part.group_keys[1].empty());

  // Plain plans have no key targets; key ranges are not in the grammar.
  EXPECT_FALSE(FaultPlan::parse("crash:2@10").has_key_targets());
  EXPECT_THROW(FaultPlan::parse("crash:k@10"), std::logic_error);
  EXPECT_THROW(FaultPlan::parse("outage:k1-k3@5-9"), std::logic_error);
}

TEST(FaultPlanTest, ResolveKeysMapsTargetsToPrimaries) {
  FaultPlan plan;
  plan.crash_key_at(10.0, 12).recover_key_at(50.0, 12).crash_at(5.0, 1);
  FaultPlan part = FaultPlan::parse("partition:0,k9,k4|2@3");
  ASSERT_TRUE(plan.has_key_targets());

  const auto primary = [](KeyId key) {
    return static_cast<NodeId>(key % 5);
  };
  const FaultPlan resolved = plan.resolve_keys(primary);
  EXPECT_FALSE(resolved.has_key_targets());
  EXPECT_EQ(resolved.events()[0].node, 2u);  // 12 % 5
  EXPECT_FALSE(resolved.events()[0].node_is_key);
  EXPECT_EQ(resolved.events()[2].node, 1u);  // node targets pass through

  // Partition members fold into the node group, deduplicated: k9 -> 4,
  // k4 -> 4 (already present after k9).
  const FaultPlan rpart = part.resolve_keys(primary);
  EXPECT_FALSE(rpart.has_key_targets());
  EXPECT_EQ(rpart.events()[0].groups[0], (std::vector<NodeId>{0, 4}));
  EXPECT_EQ(rpart.events()[0].groups[1], (std::vector<NodeId>{2}));

  // Resolution is a copy: the original still carries its key targets (one
  // plan can be resolved against several cluster shapes).
  EXPECT_TRUE(plan.has_key_targets());
}

TEST(FaultPlanTest, InstallRejectsUnresolvedKeyTargets) {
  sim::Simulator sim;
  auto delay = sim::make_constant_delay(0.1);
  SimTransport transport(sim, *delay, util::Rng(1), 3);

  FaultPlan plan;
  plan.crash_key_at(10.0, 2);
  EXPECT_THROW(plan.install(sim, transport), std::logic_error);

  // Resolving unblocks installation.
  const FaultPlan resolved =
      plan.resolve_keys([](KeyId key) { return static_cast<NodeId>(key); });
  resolved.install(sim, transport);
  sim.run_until(11.0);
  EXPECT_TRUE(transport.is_crashed(2));
}

TEST(FaultPlanTest, EmptyConsidersMessageFaults) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.with_message_faults(MessageFaults{.drop_probability = 0.1});
  EXPECT_FALSE(plan.empty());
}

}  // namespace
}  // namespace pqra::net
