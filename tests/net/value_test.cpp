/// \file value_test.cpp
/// net::Value, the refcounted immutable payload: copies share one buffer,
/// mutable_bytes() copies on write only when the buffer is shared, and the
/// refcount survives cross-thread handoff (exercised under TSan in CI —
/// quorum fan-out in the threaded runtime bumps the count from many
/// threads).

#include "net/value.hpp"

#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/message.hpp"
#include "util/codec.hpp"

namespace pqra::net {
namespace {

util::Bytes bytes_of(std::initializer_list<int> xs) {
  util::Bytes b;
  for (int x : xs) b.push_back(static_cast<std::byte>(x));
  return b;
}

TEST(Value, DefaultIsEmpty) {
  Value v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v, Value(util::Bytes{}));
}

TEST(Value, CopiesShareOneBuffer) {
  Value a(bytes_of({1, 2, 3}));
  EXPECT_EQ(a.use_count(), 1);

  Value b = a;
  Value c = a;
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_TRUE(a.shares_buffer_with(b));
  EXPECT_TRUE(b.shares_buffer_with(c));
  EXPECT_EQ(a.bytes().data(), b.bytes().data())
      << "copy must alias, not duplicate";

  c = Value();
  EXPECT_EQ(a.use_count(), 2);
}

TEST(Value, QuorumFanOutSharesThePayload) {
  // The k messages of one write all carry the same buffer: this is the
  // fan-out pattern in QuorumRegisterClient::send_to_quorum.
  Value payload(bytes_of({9, 8, 7, 6}));
  std::vector<Message> msgs;
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.type = MsgType::kWriteReq;
    m.value = payload;
    msgs.push_back(std::move(m));
  }
  EXPECT_EQ(payload.use_count(), 6);  // the original + 5 messages
  for (const Message& m : msgs) {
    EXPECT_TRUE(m.value.shares_buffer_with(payload));
  }
}

TEST(Value, MutableBytesClonesWhenShared) {
  Value a(bytes_of({1, 2, 3}));
  Value b = a;
  const std::byte* before = a.bytes().data();

  b.mutable_bytes()[0] = std::byte{42};
  EXPECT_FALSE(a.shares_buffer_with(b)) << "write must detach the copy";
  EXPECT_EQ(a.bytes().data(), before) << "the other holder is untouched";
  EXPECT_EQ(a.bytes()[0], std::byte{1});
  EXPECT_EQ(b.bytes()[0], std::byte{42});
}

TEST(Value, MutableBytesSkipsCloneWhenSole) {
  Value a(bytes_of({5, 6}));
  const std::byte* before = a.bytes().data();
  a.mutable_bytes()[1] = std::byte{60};
  EXPECT_EQ(a.bytes().data(), before)
      << "a sole owner mutates in place, no copy";
  EXPECT_EQ(a.bytes()[1], std::byte{60});
}

TEST(Value, ComparesByContentNotIdentity) {
  Value a(bytes_of({1, 2}));
  Value b(bytes_of({1, 2}));
  EXPECT_FALSE(a.shares_buffer_with(b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, bytes_of({1, 2}));
  EXPECT_EQ(bytes_of({1, 2}), a);
  EXPECT_NE(a, Value(bytes_of({1, 3})));
}

TEST(Value, ConvertsToBytesForCodecs) {
  Value v(util::Codec<std::uint64_t>::encode(123456789ULL));
  // Implicit conversion keeps every Codec::decode call site unchanged.
  EXPECT_EQ(util::Codec<std::uint64_t>::decode(v), 123456789ULL);
}

TEST(Value, EmptyBytesNormalizeToNullRep) {
  Value v((util::Bytes()));
  EXPECT_TRUE(v.empty());
  Value w = v;
  EXPECT_TRUE(v.shares_buffer_with(w));  // both null reps
}

TEST(Value, RefcountSurvivesCrossThreadHandoff) {
  Value payload(bytes_of({1, 2, 3, 4, 5, 6, 7, 8}));
  constexpr int kThreads = 8;
  constexpr int kCopiesPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&payload] {
      for (int i = 0; i < kCopiesPerThread; ++i) {
        Value local = payload;              // refcount bump
        EXPECT_EQ(local.size(), 8u);        // read through the shared buffer
        EXPECT_EQ(local.bytes()[0], std::byte{1});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(payload.use_count(), 1);
}

}  // namespace
}  // namespace pqra::net
