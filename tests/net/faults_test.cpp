#include "net/faults.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/rng.hpp"

namespace pqra::net {
namespace {

TEST(FaultInjectorTest, DefaultInjectsNothing) {
  FaultInjector faults(8);
  util::Rng rng(1);
  FaultDecision d = faults.on_send(0, 1, rng);
  EXPECT_FALSE(d.drop);
  EXPECT_FALSE(d.duplicate);
  EXPECT_EQ(d.extra_delay, 0.0);
  EXPECT_EQ(d.delay_factor, 1.0);
  EXPECT_EQ(faults.counters().injected(), 0u);
}

TEST(FaultInjectorTest, NoFaultsLeaveTheRngStreamUntouched) {
  // The deterministic-replay guarantee: a fault-free injector must not
  // perturb the caller's random stream.
  FaultInjector faults(8);
  util::Rng used(42), untouched(42);
  for (int i = 0; i < 100; ++i) faults.on_send(0, 1, used);
  EXPECT_EQ(used.uniform01(), untouched.uniform01());
}

TEST(FaultInjectorTest, CrashDropsBothDirectionsUntilRecovery) {
  FaultInjector faults(4);
  util::Rng rng(1);
  faults.crash(2);
  EXPECT_TRUE(faults.is_crashed(2));
  EXPECT_TRUE(faults.on_send(0, 2, rng).drop);  // to the crashed node
  EXPECT_TRUE(faults.on_send(2, 0, rng).drop);  // from the crashed node
  EXPECT_FALSE(faults.on_send(0, 1, rng).drop);
  faults.recover(2);
  EXPECT_FALSE(faults.is_crashed(2));
  EXPECT_FALSE(faults.on_send(0, 2, rng).drop);
  EXPECT_EQ(faults.counters().crashes, 1u);
  EXPECT_EQ(faults.counters().recoveries, 1u);
  EXPECT_EQ(faults.counters().crash_drops, 2u);
}

TEST(FaultInjectorTest, CrashAndRecoverAreIdempotent) {
  FaultInjector faults(4);
  faults.crash(1);
  faults.crash(1);
  EXPECT_EQ(faults.counters().crashes, 1u);
  EXPECT_EQ(faults.num_crashed(), 1u);
  faults.recover(1);
  faults.recover(1);
  faults.recover(3);  // never crashed
  EXPECT_EQ(faults.counters().recoveries, 1u);
  EXPECT_EQ(faults.num_crashed(), 0u);
}

TEST(FaultInjectorTest, PartitionSeversGroupsButNotOutsiders) {
  FaultInjector faults(8);
  util::Rng rng(1);
  faults.partition({{0, 1}, {2, 3}});
  EXPECT_TRUE(faults.partitioned(0, 2));
  EXPECT_FALSE(faults.partitioned(0, 1));
  EXPECT_TRUE(faults.on_send(0, 2, rng).drop);
  EXPECT_FALSE(faults.on_send(0, 1, rng).drop);
  // Node 5 is in no group: it talks across the partition (a client).
  EXPECT_FALSE(faults.on_send(5, 0, rng).drop);
  EXPECT_FALSE(faults.on_send(5, 3, rng).drop);
  EXPECT_EQ(faults.counters().partition_drops, 1u);
  faults.heal();
  EXPECT_FALSE(faults.partitioned(0, 2));
  EXPECT_FALSE(faults.on_send(0, 2, rng).drop);
}

TEST(FaultInjectorTest, SlowNodeFactorsCompound) {
  FaultInjector faults(4);
  util::Rng rng(1);
  faults.set_slow(1, 4.0);
  EXPECT_DOUBLE_EQ(faults.on_send(0, 1, rng).delay_factor, 4.0);
  EXPECT_DOUBLE_EQ(faults.on_send(1, 0, rng).delay_factor, 4.0);
  faults.set_slow(0, 2.0);
  EXPECT_DOUBLE_EQ(faults.on_send(0, 1, rng).delay_factor, 8.0);
  faults.clear_slow(1);
  EXPECT_DOUBLE_EQ(faults.on_send(0, 1, rng).delay_factor, 2.0);
  EXPECT_DOUBLE_EQ(faults.slow_factor(0), 2.0);
}

TEST(FaultInjectorTest, DropProbabilityOneLosesEveryMessage) {
  FaultInjector faults(4);
  util::Rng rng(1);
  MessageFaults message;
  message.drop_probability = 1.0;
  faults.set_message_faults(message);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(faults.on_send(0, 1, rng).drop);
  EXPECT_EQ(faults.counters().random_drops, 10u);
}

TEST(FaultInjectorTest, DuplicateAndDelayDecisions) {
  FaultInjector faults(4);
  util::Rng rng(1);
  MessageFaults message;
  message.duplicate_probability = 1.0;
  message.extra_delay = 0.5;
  message.reorder_probability = 1.0;
  message.reorder_delay_max = 2.0;
  faults.set_message_faults(message);
  for (int i = 0; i < 20; ++i) {
    FaultDecision d = faults.on_send(0, 1, rng);
    EXPECT_FALSE(d.drop);
    EXPECT_TRUE(d.duplicate);
    // Fixed extra delay plus a uniform reorder delay in [0, 2).
    EXPECT_GE(d.extra_delay, 0.5);
    EXPECT_LT(d.extra_delay, 2.5);
  }
  EXPECT_EQ(faults.counters().duplicates, 20u);
  EXPECT_EQ(faults.counters().delayed, 20u);
}

TEST(FaultInjectorTest, SlowFactorScalesTheExtraDelay) {
  FaultInjector faults(4);
  util::Rng rng(1);
  MessageFaults message;
  message.extra_delay = 1.0;
  faults.set_message_faults(message);
  faults.set_slow(1, 3.0);
  FaultDecision d = faults.on_send(0, 1, rng);
  EXPECT_DOUBLE_EQ(d.extra_delay, 3.0);
  EXPECT_DOUBLE_EQ(d.delay_factor, 3.0);
}

TEST(FaultInjectorTest, MetricsMirrorTheCounters) {
  obs::Registry registry(obs::Concurrency::kSingleThread);
  FaultInjector faults(4);
  faults.bind_metrics(registry);
  util::Rng rng(1);
  faults.crash(0);
  faults.on_send(1, 0, rng);  // crash drop
  faults.recover(0);
  MessageFaults message;
  message.drop_probability = 1.0;
  faults.set_message_faults(message);
  faults.on_send(1, 2, rng);  // random drop

  namespace n = obs::names;
  EXPECT_EQ(registry.counter(n::kFaultsCrashes).value(), 1u);
  EXPECT_EQ(registry.counter(n::kFaultsRecoveries).value(), 1u);
  EXPECT_EQ(registry.counter(n::kFaultsMsgDropped).value(), 2u);
  // "All kinds" includes the crash event itself on top of the two drops.
  EXPECT_EQ(registry.counter(n::kFaultsInjected).value(), 3u);
}

}  // namespace
}  // namespace pqra::net
