#include <gtest/gtest.h>

#include <string>

#include "net/fault_plan.hpp"
#include "util/rng.hpp"

namespace pqra::net {
namespace {

TEST(FaultPlanRoundtripTest, HandWrittenPlanRoundTrips) {
  FaultPlan plan;
  plan.crash_at(10.0, 2)
      .recover_at(50.0, 2)
      .slow_at(5.0, 1, 3.5)
      .clear_slow_at(25.0, 1)
      .partition_at(30.0, {{0, 1}, {2, 3, 4}})
      .heal_at(60.0);
  MessageFaults mf;
  mf.drop_probability = 0.02;
  mf.duplicate_probability = 0.01;
  mf.extra_delay = 0.5;
  mf.reorder_probability = 0.1;
  mf.reorder_delay_max = 3.0;
  plan.with_message_faults(mf);

  const std::string text = plan.serialize();
  const FaultPlan parsed = FaultPlan::parse(text);
  EXPECT_EQ(parsed, plan);
  EXPECT_EQ(parsed.serialize(), text);
}

TEST(FaultPlanRoundtripTest, MutatedPlansRoundTripByteIdentically) {
  // The fuzzer's mutation operator is the plan generator that matters:
  // whatever it can produce must serialize -> parse -> serialize
  // byte-identically (the --replay file contract).
  util::Rng rng(20260807);
  for (int trial = 0; trial < 400; ++trial) {
    FaultPlan plan;
    const std::size_t edits = 1 + static_cast<std::size_t>(rng.below(10));
    for (std::size_t i = 0; i < edits; ++i) {
      plan.mutate(/*num_servers=*/8, /*horizon=*/100.0, rng);
    }
    if (plan.empty()) continue;
    const std::string text = plan.serialize();
    FaultPlan parsed;
    ASSERT_NO_THROW(parsed = FaultPlan::parse(text)) << text;
    // Structural equality, not just string equality: nothing the grammar
    // cannot express may survive inside a mutated plan (e.g. a reorder
    // delay with zero probability — normalized away by mutate()).
    EXPECT_EQ(parsed, plan) << text;
    EXPECT_EQ(parsed.serialize(), text) << text;
  }
}

TEST(FaultPlanRoundtripTest, ReorderDelayWithoutProbabilityIsNormalized) {
  // The serialize() grammar has no clause for an unobservable reorder
  // delay; the builders normalize it away so structural round-trips hold.
  MessageFaults mf;
  mf.reorder_probability = 0.0;
  mf.reorder_delay_max = 5.0;
  FaultPlan plan;
  plan.crash_at(1.0, 0).with_message_faults(mf);
  EXPECT_EQ(plan.message_faults().reorder_delay_max, 0.0);
  EXPECT_EQ(FaultPlan::parse(plan.serialize()), plan);

  const FaultPlan rebuilt = FaultPlan::from_parts(plan.events(), mf);
  EXPECT_EQ(rebuilt.message_faults().reorder_delay_max, 0.0);
  EXPECT_EQ(rebuilt, plan);
}

TEST(FaultPlanRoundtripTest, KeyAddressedPlanRoundTrips) {
  // The key-addressed grammar (docs/SHARDING.md): `k<KEY>` in any node
  // position, including partition members.
  FaultPlan plan;
  plan.crash_key_at(10.0, 12)
      .recover_key_at(60.0, 12)
      .slow_key_at(5.0, 7, 2.5)
      .clear_slow_key_at(25.0, 7)
      .crash_at(15.0, 3);  // node- and key-addressed events mix freely
  MessageFaults mf;
  mf.drop_probability = 0.01;
  plan.with_message_faults(mf);
  ASSERT_TRUE(plan.has_key_targets());

  const std::string text = plan.serialize();
  EXPECT_NE(text.find("crash:k12@"), std::string::npos) << text;
  EXPECT_NE(text.find("slow:k7*2.5@5"), std::string::npos) << text;
  const FaultPlan parsed = FaultPlan::parse(text);
  EXPECT_EQ(parsed, plan);
  EXPECT_EQ(parsed.serialize(), text);
  EXPECT_TRUE(parsed.has_key_targets());
}

TEST(FaultPlanRoundtripTest, KeyAddressedPartitionMembersRoundTrip) {
  // `a-b` ranges are parse-side sugar; the canonical form lists members.
  const FaultPlan plan = FaultPlan::parse("partition:0-2,k7|3@9;heal@40");
  ASSERT_TRUE(plan.has_key_targets());
  const std::string text = plan.serialize();
  EXPECT_EQ(text.substr(0, 23), "partition:0,1,2,k7|3@9;") << text;
  EXPECT_EQ(FaultPlan::parse(text), plan);
  EXPECT_EQ(FaultPlan::parse(text).serialize(), text);
}

TEST(FaultPlanRoundtripTest, MutatedKeyAddressedPlansRoundTrip) {
  // With a keyspace the mutation operator also draws `k<KEY>` targets;
  // whatever it produces must survive the --replay file contract.
  util::Rng rng(20260807);
  bool saw_key_targets = false;
  for (int trial = 0; trial < 400; ++trial) {
    FaultPlan plan;
    const std::size_t edits = 1 + static_cast<std::size_t>(rng.below(10));
    for (std::size_t i = 0; i < edits; ++i) {
      plan.mutate(/*num_servers=*/8, /*horizon=*/100.0, rng, /*num_keys=*/32);
    }
    if (plan.empty()) continue;
    saw_key_targets |= plan.has_key_targets();
    const std::string text = plan.serialize();
    FaultPlan parsed;
    ASSERT_NO_THROW(parsed = FaultPlan::parse(text)) << text;
    EXPECT_EQ(parsed, plan) << text;
    EXPECT_EQ(parsed.serialize(), text) << text;
  }
  EXPECT_TRUE(saw_key_targets);
}

TEST(FaultPlanRoundtripTest, DurabilityVerbsRoundTrip) {
  // The durability grammar (docs/DURABILITY.md): tornwrite / fsyncloss /
  // nofsyncloss, node- and key-addressed, mixing freely with the rest.
  FaultPlan plan;
  plan.torn_write_at(12.0, 1)
      .torn_write_key_at(18.0, 9)
      .fsync_loss_at(22.0, 2)
      .clear_fsync_loss_at(45.0, 2)
      .fsync_loss_key_at(52.0, 9)
      .clear_fsync_loss_key_at(72.0, 9)
      .crash_at(21.0, 2);
  const std::string text = plan.serialize();
  EXPECT_NE(text.find("tornwrite:1@12"), std::string::npos) << text;
  EXPECT_NE(text.find("tornwrite:k9@18"), std::string::npos) << text;
  EXPECT_NE(text.find("fsyncloss:2@22"), std::string::npos) << text;
  EXPECT_NE(text.find("nofsyncloss:2@45"), std::string::npos) << text;
  const FaultPlan parsed = FaultPlan::parse(text);
  EXPECT_EQ(parsed, plan);
  EXPECT_EQ(parsed.serialize(), text);
}

TEST(FaultPlanRoundtripTest, FsyncLossWindowSugarParsesToThePair) {
  // `fsyncloss:N@T1-T2` is parse-side sugar for the open/close pair; the
  // canonical (serialized) form is the pair, which round-trips.
  const FaultPlan sugar = FaultPlan::parse("fsyncloss:4@20-60");
  FaultPlan pair;
  pair.fsync_loss_at(20.0, 4).clear_fsync_loss_at(60.0, 4);
  EXPECT_EQ(sugar, pair);
  EXPECT_EQ(FaultPlan::parse(sugar.serialize()), sugar);
  EXPECT_EQ(FaultPlan::parse(sugar.serialize()).serialize(),
            sugar.serialize());

  // Key-addressed windows desugar the same way.
  const FaultPlan key_sugar = FaultPlan::parse("fsyncloss:k3@5-15");
  FaultPlan key_pair;
  key_pair.fsync_loss_key_at(5.0, 3).clear_fsync_loss_key_at(15.0, 3);
  EXPECT_EQ(key_sugar, key_pair);
}

TEST(FaultPlanRoundtripTest, MutatedDurabilityPlansRoundTrip) {
  // With durability enabled the mutation operator also draws torn-write
  // events and fsync-loss windows; whatever it produces must survive the
  // --replay file contract.  The legacy draw sequence (durability=false)
  // is pinned unchanged by MutatedPlansRoundTripByteIdentically above
  // sharing its seed.
  util::Rng rng(20260807);
  bool saw_torn = false;
  bool saw_fsync_window = false;
  for (int trial = 0; trial < 400; ++trial) {
    FaultPlan plan;
    const std::size_t edits = 1 + static_cast<std::size_t>(rng.below(10));
    for (std::size_t i = 0; i < edits; ++i) {
      plan.mutate(/*num_servers=*/8, /*horizon=*/100.0, rng, /*num_keys=*/32,
                  /*durability=*/true);
    }
    if (plan.empty()) continue;
    for (const FaultPlan::Event& e : plan.events()) {
      saw_torn |= e.kind == FaultKind::kTornWrite;
      saw_fsync_window |= e.kind == FaultKind::kFsyncLoss;
      if (e.kind == FaultKind::kFsyncLoss ||
          e.kind == FaultKind::kClearFsyncLoss ||
          e.kind == FaultKind::kTornWrite) {
        ASSERT_GE(e.at, 0.0);
        ASSERT_LE(e.at, 100.0);
      }
    }
    const std::string text = plan.serialize();
    FaultPlan parsed;
    ASSERT_NO_THROW(parsed = FaultPlan::parse(text)) << text;
    EXPECT_EQ(parsed, plan) << text;
    EXPECT_EQ(parsed.serialize(), text) << text;
  }
  EXPECT_TRUE(saw_torn);
  EXPECT_TRUE(saw_fsync_window);
}

TEST(FaultPlanRoundtripTest, FromPartsPreservesEventOrderAndKnobs) {
  util::Rng rng(7);
  FaultPlan plan;
  for (int i = 0; i < 6; ++i) plan.mutate(5, 80.0, rng);
  const FaultPlan rebuilt =
      FaultPlan::from_parts(plan.events(), plan.message_faults());
  EXPECT_EQ(rebuilt, plan);
  EXPECT_EQ(rebuilt.serialize(), plan.serialize());
}

}  // namespace
}  // namespace pqra::net
