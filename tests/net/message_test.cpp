#include "net/message.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/flight_recorder.hpp"

namespace pqra {
namespace {

/// flight_recorder.cpp renders message types through a local name table so
/// obs stays below net in the layer order.  This is the sync check that
/// table's comment promises: every net::MsgType must render in a flight
/// dump under exactly the name net::msg_type_name gives it.
TEST(MessageTest, FlightRecorderNamesMatchMsgType) {
  for (std::size_t t = 0; t < net::kNumMsgTypes; ++t) {
    obs::FlightRecorder recorder(1);
    obs::FlightRecord rec;
    rec.event = obs::FlightEventKind::kSend;
    rec.msg_type = static_cast<std::uint8_t>(t);
    rec.from = 1;
    rec.to = 2;
    recorder.record(rec);
    std::ostringstream out;
    recorder.dump(out);
    const std::string expected =
        std::string("send ") +
        net::msg_type_name(static_cast<net::MsgType>(t)) + " 1->2";
    EXPECT_NE(out.str().find(expected), std::string::npos)
        << "MsgType " << t << " renders differently in obs: " << out.str();
  }
  // A type beyond the table renders as a placeholder instead of reading
  // out of bounds; this also trips if net grows a type obs does not know.
  obs::FlightRecorder recorder(1);
  obs::FlightRecord rec;
  rec.msg_type = static_cast<std::uint8_t>(net::kNumMsgTypes);
  recorder.record(rec);
  std::ostringstream out;
  recorder.dump(out);
  EXPECT_NE(out.str().find("send ? 0->0"), std::string::npos) << out.str();
}

/// The factory helpers must leave the causal headers untraced; transports
/// and clients copy them opaquely, so a nonzero default would make every
/// message look sampled.
TEST(MessageTest, FactoriesLeaveCausalHeadersUntraced) {
  net::Message msgs[] = {
      net::Message::read_req(1, 2),
      net::Message::read_ack(1, 2, 3, net::Value()),
      net::Message::write_req(1, 2, 3, net::Value()),
      net::Message::write_ack(1, 2, 3),
      net::Message::gossip(net::Value()),
  };
  for (const net::Message& m : msgs) {
    EXPECT_EQ(m.trace, 0u) << m.describe();
    EXPECT_EQ(m.span, 0u) << m.describe();
  }
  // And they survive a copy byte-for-byte once set.
  net::Message m = net::Message::read_req(1, 2);
  m.trace = 17;
  m.span = 23;
  net::Message copy = m;
  EXPECT_EQ(copy.trace, 17u);
  EXPECT_EQ(copy.span, 23u);
}

}  // namespace
}  // namespace pqra
