#include "net/thread_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pqra::net {
namespace {

TEST(ThreadTransportTest, SendThenTryRecv) {
  ThreadTransport t(2);
  t.send(0, 1, Message::read_req(5, 9));
  auto env = t.try_recv(1);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->from, 0u);
  EXPECT_EQ(env->msg.reg, 5u);
  EXPECT_FALSE(t.try_recv(1).has_value());
}

TEST(ThreadTransportTest, FifoPerMailbox) {
  ThreadTransport t(2);
  for (OpId i = 0; i < 10; ++i) t.send(0, 1, Message::read_req(0, i));
  for (OpId i = 0; i < 10; ++i) {
    auto env = t.try_recv(1);
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->msg.op, i);
  }
}

TEST(ThreadTransportTest, BlockingRecvWakesOnSend) {
  ThreadTransport t(2);
  std::atomic<bool> got{false};
  std::thread receiver([&] {
    auto env = t.recv(1);
    got = env.has_value() && env->msg.op == 42;
  });
  t.send(0, 1, Message::read_req(0, 42));
  receiver.join();
  EXPECT_TRUE(got);
}

TEST(ThreadTransportTest, CloseUnblocksReceivers) {
  ThreadTransport t(2);
  std::atomic<bool> returned_empty{false};
  std::thread receiver([&] {
    auto env = t.recv(1);
    returned_empty = !env.has_value();
  });
  t.close();
  receiver.join();
  EXPECT_TRUE(returned_empty);
}

TEST(ThreadTransportTest, RecvDrainsRemainingAfterClose) {
  ThreadTransport t(2);
  t.send(0, 1, Message::read_req(0, 1));
  t.close();
  EXPECT_TRUE(t.recv(1).has_value());
  EXPECT_FALSE(t.recv(1).has_value());
}

TEST(ThreadTransportTest, SendAfterCloseIsDropped) {
  ThreadTransport t(2);
  t.close();
  t.send(0, 1, Message::read_req(0, 1));
  EXPECT_EQ(t.stats().dropped, 1u);
  EXPECT_FALSE(t.try_recv(1).has_value());
}

TEST(ThreadTransportTest, StatsCountTotalsAndPerNode) {
  ThreadTransport t(3);
  t.send(0, 1, Message::read_req(0, 1));
  t.send(0, 2, Message::write_req(0, 2, 1, {}));
  t.send(1, 2, Message::write_ack(0, 2, 1));
  MessageStats stats = t.stats();
  EXPECT_EQ(stats.total, 3u);
  EXPECT_EQ(stats.received_by_node[1], 1u);
  EXPECT_EQ(stats.received_by_node[2], 2u);
}

TEST(ThreadTransportTest, ManyProducersOneConsumer) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  ThreadTransport t(kProducers + 1);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&t, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        t.send(static_cast<NodeId>(p), kProducers,
               Message::read_req(0, static_cast<OpId>(i)));
      }
    });
  }
  int received = 0;
  while (received < kProducers * kPerProducer) {
    if (t.recv(kProducers).has_value()) ++received;
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(t.stats().total,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

TEST(ThreadTransportTest, RejectsOutOfRangeNodes) {
  ThreadTransport t(2);
  EXPECT_THROW(t.send(0, 5, Message::read_req(0, 1)), std::logic_error);
  EXPECT_THROW(t.try_recv(5), std::logic_error);
}

}  // namespace
}  // namespace pqra::net
