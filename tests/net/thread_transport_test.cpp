#include "net/thread_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace pqra::net {
namespace {

TEST(ThreadTransportTest, SendThenTryRecv) {
  ThreadTransport t(2);
  t.send(0, 1, Message::read_req(5, 9));
  auto env = t.try_recv(1);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->from, 0u);
  EXPECT_EQ(env->msg.reg, 5u);
  EXPECT_FALSE(t.try_recv(1).has_value());
}

TEST(ThreadTransportTest, FifoPerMailbox) {
  ThreadTransport t(2);
  for (OpId i = 0; i < 10; ++i) t.send(0, 1, Message::read_req(0, i));
  for (OpId i = 0; i < 10; ++i) {
    auto env = t.try_recv(1);
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->msg.op, i);
  }
}

TEST(ThreadTransportTest, BlockingRecvWakesOnSend) {
  ThreadTransport t(2);
  std::atomic<bool> got{false};
  std::thread receiver([&] {
    auto env = t.recv(1);
    got = env.has_value() && env->msg.op == 42;
  });
  t.send(0, 1, Message::read_req(0, 42));
  receiver.join();
  EXPECT_TRUE(got);
}

TEST(ThreadTransportTest, CloseUnblocksReceivers) {
  ThreadTransport t(2);
  std::atomic<bool> returned_empty{false};
  std::thread receiver([&] {
    auto env = t.recv(1);
    returned_empty = !env.has_value();
  });
  t.close();
  receiver.join();
  EXPECT_TRUE(returned_empty);
}

TEST(ThreadTransportTest, RecvDrainsRemainingAfterClose) {
  ThreadTransport t(2);
  t.send(0, 1, Message::read_req(0, 1));
  t.close();
  EXPECT_TRUE(t.recv(1).has_value());
  EXPECT_FALSE(t.recv(1).has_value());
}

TEST(ThreadTransportTest, SendAfterCloseIsDropped) {
  ThreadTransport t(2);
  t.close();
  t.send(0, 1, Message::read_req(0, 1));
  EXPECT_EQ(t.stats().dropped, 1u);
  EXPECT_FALSE(t.try_recv(1).has_value());
}

TEST(ThreadTransportTest, StatsCountTotalsAndPerNode) {
  ThreadTransport t(3);
  t.send(0, 1, Message::read_req(0, 1));
  t.send(0, 2, Message::write_req(0, 2, 1, {}));
  t.send(1, 2, Message::write_ack(0, 2, 1));
  MessageStats stats = t.stats();
  EXPECT_EQ(stats.total, 3u);
  EXPECT_EQ(stats.received_by_node[1], 1u);
  EXPECT_EQ(stats.received_by_node[2], 2u);
}

TEST(ThreadTransportTest, ManyProducersOneConsumer) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  ThreadTransport t(kProducers + 1);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&t, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        t.send(static_cast<NodeId>(p), kProducers,
               Message::read_req(0, static_cast<OpId>(i)));
      }
    });
  }
  int received = 0;
  while (received < kProducers * kPerProducer) {
    if (t.recv(kProducers).has_value()) ++received;
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(t.stats().total,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

TEST(ThreadTransportTest, RejectsOutOfRangeNodes) {
  ThreadTransport t(2);
  EXPECT_THROW(t.send(0, 5, Message::read_req(0, 1)), std::logic_error);
  EXPECT_THROW(t.try_recv(5), std::logic_error);
}

TEST(ThreadTransportTest, CrashedNodeLosesTraffic) {
  ThreadTransport t(3);
  t.crash(1);
  t.send(0, 1, Message::read_req(0, 1));  // to the crashed node
  t.send(1, 2, Message::read_req(0, 2));  // from the crashed node
  EXPECT_FALSE(t.try_recv(1).has_value());
  EXPECT_FALSE(t.try_recv(2).has_value());
  EXPECT_EQ(t.stats().dropped, 2u);
  EXPECT_EQ(t.fault_counters().crash_drops, 2u);

  t.recover(1);
  t.send(0, 1, Message::read_req(0, 3));
  auto env = t.try_recv(1);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->msg.op, 3u);
}

TEST(ThreadTransportTest, PartitionAndHeal) {
  ThreadTransport t(4);
  t.partition({{0, 1}, {2, 3}});
  t.send(0, 2, Message::read_req(0, 1));
  EXPECT_FALSE(t.try_recv(2).has_value());
  t.send(0, 1, Message::read_req(0, 2));
  EXPECT_TRUE(t.try_recv(1).has_value());
  t.heal();
  t.send(0, 2, Message::read_req(0, 3));
  EXPECT_TRUE(t.try_recv(2).has_value());
}

TEST(ThreadTransportTest, ExtraDelayHoldsDeliveryBack) {
  ThreadTransport t(2);
  MessageFaults faults;
  faults.extra_delay = 0.05;  // seconds on this runtime
  t.set_message_faults(faults);
  t.send(0, 1, Message::read_req(0, 7));
  // Not ready yet; a deadline shorter than the delay must time out.
  EXPECT_FALSE(t.try_recv(1).has_value());
  auto env = t.recv_until(
      1, std::chrono::steady_clock::now() + std::chrono::seconds(5));
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->msg.op, 7u);
  EXPECT_EQ(t.fault_counters().delayed, 1u);
}

TEST(ThreadTransportTest, RecvUntilTimesOutOnAnEmptyMailbox) {
  ThreadTransport t(2);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_FALSE(t.recv_until(1, deadline).has_value());
  EXPECT_FALSE(t.closed());  // timeout, not shutdown
}

TEST(ThreadTransportTest, CloseDrainsDelayedMessagesImmediately) {
  ThreadTransport t(2);
  MessageFaults faults;
  faults.extra_delay = 30.0;  // far beyond the test's lifetime
  t.set_message_faults(faults);
  t.send(0, 1, Message::read_req(0, 9));
  t.close();
  // Drain ignores pending delays so teardown never waits on them.
  auto env = t.recv(1);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->msg.op, 9u);
}

TEST(ThreadTransportTest, DuplicateDeliversTwoCopies) {
  ThreadTransport t(2);
  MessageFaults faults;
  faults.duplicate_probability = 1.0;
  t.set_message_faults(faults);
  t.send(0, 1, Message::read_req(0, 4));
  auto first = t.try_recv(1);
  auto second = t.try_recv(1);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->msg.op, 4u);
  EXPECT_EQ(second->msg.op, 4u);
  EXPECT_EQ(t.fault_counters().duplicates, 1u);
}

}  // namespace
}  // namespace pqra::net
