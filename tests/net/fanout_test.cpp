/// \file fanout_test.cpp
/// Batched fan-out (SimTransport::send_fanout) against the reference send()
/// loop: with identical seeds the two must execute byte-identical event
/// schedules — same simulator fingerprint, same delivery order, same stats,
/// same flight records — under clean networks, drops, duplicates and
/// crash-in-flight.  This is the transport half of the calendar-queue PR's
/// "batching is invisible" acceptance bar.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/sim_transport.hpp"
#include "obs/flight_recorder.hpp"
#include "util/rng.hpp"

namespace pqra::net {
namespace {

/// Records everything delivered to it, with arrival times.
class Recorder final : public Receiver {
 public:
  explicit Recorder(sim::Simulator& sim) : sim_(&sim) {}

  void on_message(NodeId from, Message msg) override {
    senders.push_back(from);
    times.push_back(sim_->now());
    messages.push_back(std::move(msg));
  }

  sim::Simulator* sim_;
  std::vector<NodeId> senders;
  std::vector<sim::Time> times;
  std::vector<Message> messages;
};

constexpr NodeId kNodes = 12;

/// One independent simulated world; two of these with the same seed are the
/// loop-vs-batch comparison harness.
struct World {
  explicit World(std::uint64_t seed,
                 std::unique_ptr<sim::DelayModel> model = nullptr)
      : delay(model != nullptr ? std::move(model)
                               : sim::make_exponential_delay(1.0)),
        transport(sim, *delay, util::Rng(seed), kNodes),
        flight(256) {
    recorders.reserve(kNodes);
    for (NodeId i = 0; i < kNodes; ++i) {
      recorders.push_back(std::make_unique<Recorder>(sim));
      transport.register_receiver(i, recorders[i].get());
    }
    transport.bind_flight_recorder(&flight);
  }

  sim::Simulator sim;
  std::unique_ptr<sim::DelayModel> delay;
  SimTransport transport;
  obs::FlightRecorder flight;
  std::vector<std::unique_ptr<Recorder>> recorders;
};

std::vector<FanoutEntry> entries(std::initializer_list<NodeId> targets) {
  std::vector<FanoutEntry> out;
  for (NodeId t : targets) out.push_back(FanoutEntry{t, 0});
  return out;
}

void send_loop(World& w, NodeId from, const std::vector<FanoutEntry>& to,
               const Message& proto) {
  for (const FanoutEntry& e : to) w.transport.send(from, e.to, proto);
}

void expect_worlds_equal(World& a, World& b) {
  // Schedule identity: fingerprint + processed count is the repo's replay
  // equality check.
  EXPECT_EQ(a.sim.fingerprint(), b.sim.fingerprint());
  EXPECT_EQ(a.sim.events_processed(), b.sim.events_processed());
  // Transport accounting.
  MessageStats sa = a.transport.stats();
  MessageStats sb = b.transport.stats();
  EXPECT_EQ(sa.total, sb.total);
  EXPECT_EQ(sa.dropped, sb.dropped);
  EXPECT_EQ(sa.received_by_node, sb.received_by_node);
  for (std::size_t i = 0; i < sa.by_type.size(); ++i) {
    EXPECT_EQ(sa.by_type[i], sb.by_type[i]);
  }
  // Deliveries, in order, with times.
  for (NodeId n = 0; n < kNodes; ++n) {
    ASSERT_EQ(a.recorders[n]->messages.size(), b.recorders[n]->messages.size())
        << "node " << n;
    EXPECT_EQ(a.recorders[n]->senders, b.recorders[n]->senders);
    EXPECT_EQ(a.recorders[n]->times, b.recorders[n]->times);
    for (std::size_t i = 0; i < a.recorders[n]->messages.size(); ++i) {
      EXPECT_EQ(a.recorders[n]->messages[i].reg,
                b.recorders[n]->messages[i].reg);
      EXPECT_EQ(a.recorders[n]->messages[i].op,
                b.recorders[n]->messages[i].op);
    }
  }
  // Flight records: same count and same (time, kind, from, to) sequence.
  ASSERT_EQ(a.flight.recorded(), b.flight.recorded());
  std::vector<obs::FlightRecord> fa = a.flight.snapshot();
  std::vector<obs::FlightRecord> fb = b.flight.snapshot();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].time, fb[i].time);
    EXPECT_EQ(fa[i].event, fb[i].event);
    EXPECT_EQ(fa[i].from, fb[i].from);
    EXPECT_EQ(fa[i].to, fb[i].to);
    EXPECT_EQ(fa[i].span, fb[i].span);
  }
}

TEST(FanoutBatching, MatchesSendLoopCleanNetwork) {
  World loop(7);
  World batch(7);
  auto to = entries({1, 2, 3, 4});
  send_loop(loop, 0, to, Message::read_req(5, 11));
  batch.transport.send_fanout(0, to.data(), to.size(),
                              Message::read_req(5, 11));
  loop.sim.run();
  batch.sim.run();
  expect_worlds_equal(loop, batch);
  EXPECT_EQ(batch.transport.stats().total, 4u);
}

TEST(FanoutBatching, MatchesSendLoopUnderDropsAndDuplicates) {
  World loop(42);
  World batch(42);
  MessageFaults faults;
  faults.drop_probability = 0.3;
  faults.duplicate_probability = 0.3;
  loop.transport.faults().set_message_faults(faults);
  batch.transport.faults().set_message_faults(faults);
  auto to = entries({1, 2, 3, 4, 5, 6, 7, 8});
  // Several rounds so drops and duplicates both actually occur.
  for (std::uint64_t op = 0; op < 16; ++op) {
    send_loop(loop, 0, to, Message::read_req(1, op));
    batch.transport.send_fanout(0, to.data(), to.size(),
                                Message::read_req(1, op));
    loop.sim.run();
    batch.sim.run();
  }
  expect_worlds_equal(loop, batch);
  EXPECT_GT(loop.transport.faults().counters().random_drops, 0u);
  EXPECT_GT(loop.transport.faults().counters().duplicates, 0u);
}

TEST(FanoutBatching, CrashInFlightDropsAtFireTime) {
  World loop(3);
  World batch(3);
  auto to = entries({1, 2, 3});
  send_loop(loop, 0, to, Message::read_req(0, 1));
  batch.transport.send_fanout(0, to.data(), to.size(),
                              Message::read_req(0, 1));
  // Crash node 2 before any delivery fires: its entry must drop at fire
  // time in both worlds.
  loop.transport.crash(2);
  batch.transport.crash(2);
  loop.sim.run();
  batch.sim.run();
  expect_worlds_equal(loop, batch);
  EXPECT_EQ(batch.transport.stats().dropped, 1u);
  EXPECT_TRUE(batch.recorders[2]->messages.empty());
  EXPECT_EQ(batch.recorders[1]->messages.size(), 1u);
}

TEST(FanoutBatching, WideFanoutSpansMultipleBlocks) {
  // 11 targets > FanoutBlock capacity, so the fan-out splits into several
  // arena blocks; every entry must still deliver exactly once, in the same
  // schedule as the loop.
  World loop(9);
  World batch(9);
  std::vector<FanoutEntry> to;
  for (NodeId n = 1; n < kNodes; ++n) to.push_back(FanoutEntry{n, 0});
  send_loop(loop, 0, to, Message::write_req(2, 5, 77, {}));
  batch.transport.send_fanout(0, to.data(), to.size(),
                              Message::write_req(2, 5, 77, {}));
  loop.sim.run();
  batch.sim.run();
  expect_worlds_equal(loop, batch);
  std::size_t delivered = 0;
  for (NodeId n = 1; n < kNodes; ++n) {
    delivered += batch.recorders[n]->messages.size();
  }
  EXPECT_EQ(delivered, to.size());
}

TEST(FanoutBatching, EqualTimeEntriesDeliverInline) {
  // Constant delays collapse the whole fan-out onto one timestamp: the
  // batch delivers every entry inside a single queue pop, but the observed
  // schedule (fingerprint, processed count) still matches the loop.
  World loop(5, sim::make_constant_delay(1.0));
  World batch(5, sim::make_constant_delay(1.0));
  auto to = entries({1, 2, 3, 4});
  send_loop(loop, 0, to, Message::read_req(9, 1));
  batch.transport.send_fanout(0, to.data(), to.size(),
                              Message::read_req(9, 1));
  loop.sim.run();
  batch.sim.run();
  expect_worlds_equal(loop, batch);
  for (NodeId n = 1; n <= 4; ++n) {
    ASSERT_EQ(batch.recorders[n]->times.size(), 1u);
    EXPECT_DOUBLE_EQ(batch.recorders[n]->times[0], 1.0);
  }
}

TEST(FanoutBatching, KeepsArenaZeroHeapOnSteadyState) {
  // After a warm-up fan-out has grown the arena, further fan-outs must not
  // heap-allocate: blocks are recycled through the EventArena free list.
  World w(11);
  auto to = entries({1, 2, 3, 4, 5});
  w.transport.send_fanout(0, to.data(), to.size(), Message::read_req(0, 0));
  w.sim.run();
  const std::uint64_t warm = w.sim.alloc_stats().heap_allocations();
  for (std::uint64_t op = 1; op < 50; ++op) {
    w.transport.send_fanout(0, to.data(), to.size(),
                            Message::read_req(0, op));
    w.sim.run();
  }
  EXPECT_EQ(w.sim.alloc_stats().heap_allocations(), warm);
}

}  // namespace
}  // namespace pqra::net
