#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace pqra {
namespace {

obs::FlightRecord make_record(std::uint64_t op, double time) {
  obs::FlightRecord rec;
  rec.time = time;
  rec.event = obs::FlightEventKind::kDeliver;
  rec.msg_type = 2;  // WriteReq
  rec.from = 3;
  rec.to = 7;
  rec.reg = 2;
  rec.op = op;
  rec.ts = 5;
  return rec;
}

TEST(FlightRecorderTest, ZeroCapacityIsRejected) {
  EXPECT_THROW(obs::FlightRecorder(0), std::logic_error);
}

TEST(FlightRecorderTest, RingOverwritesOldestFirst) {
  obs::FlightRecorder recorder(4);
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());

  for (std::uint64_t op = 1; op <= 6; ++op) {
    recorder.record(make_record(op, static_cast<double>(op)));
  }
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.recorded(), 6u);

  // Records 1 and 2 were overwritten; the snapshot walks oldest-first.
  std::vector<obs::FlightRecord> held = recorder.snapshot();
  ASSERT_EQ(held.size(), 4u);
  for (std::size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i].op, i + 3);
  }
}

TEST(FlightRecorderTest, PartialRingSnapshotsInInsertionOrder) {
  obs::FlightRecorder recorder(8);
  for (std::uint64_t op = 1; op <= 3; ++op) {
    recorder.record(make_record(op, static_cast<double>(op)));
  }
  std::vector<obs::FlightRecord> held = recorder.snapshot();
  ASSERT_EQ(held.size(), 3u);
  for (std::size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i].op, i + 1);
  }
}

TEST(FlightRecorderTest, DumpFormatsHeaderAndRecords) {
  obs::FlightRecorder recorder(2);
  obs::FlightRecord plain = make_record(17, 12.5);
  recorder.record(plain);
  obs::FlightRecord traced = make_record(18, 13.0);
  traced.event = obs::FlightEventKind::kDrop;
  traced.trace = 4;
  traced.span = 6;
  recorder.record(traced);

  std::ostringstream out;
  recorder.dump(out);
  const std::string text = out.str();
  EXPECT_NE(
      text.find("# pqra flight recorder: capacity=2 held=2 overwritten=0"),
      std::string::npos)
      << text;
  // trace=/span= appear only on records that carry causal ids.
  EXPECT_NE(text.find("deliver WriteReq 3->7 reg=2 op=17 ts=5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("drop WriteReq 3->7 reg=2 op=18 ts=5 trace=4 span=6"),
            std::string::npos)
      << text;
}

TEST(FlightRecorderTest, PublishFoldsCountersIntoRegistry) {
  obs::FlightRecorder recorder(2);
  for (std::uint64_t op = 1; op <= 5; ++op) {
    recorder.record(make_record(op, static_cast<double>(op)));
  }
  obs::Registry registry(obs::Concurrency::kSingleThread);
  recorder.publish(registry);
  namespace n = obs::names;
  EXPECT_EQ(registry.counter(n::kFlightRecRecords).value(), 5u);
  EXPECT_EQ(registry.counter(n::kFlightRecOverwritten).value(), 3u);
  EXPECT_DOUBLE_EQ(registry.gauge(n::kFlightRecCapacity).value(), 2.0);
}

}  // namespace
}  // namespace pqra
