#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "core/spec/checker.hpp"
#include "core/spec/trace_bridge.hpp"
#include "iter/alg1_des.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "quorum/probabilistic.hpp"

namespace pqra {
namespace {

obs::OpTraceEvent sample_read() {
  obs::OpTraceEvent e;
  e.kind = obs::TraceOpKind::kRead;
  e.proc = 35;
  e.reg = 2;
  e.invoke = 4.0;
  e.response = 6.5;
  e.ts = 3;
  e.from_cache = true;
  e.attempts = 2;
  e.stale_depth = 1;
  e.quorum = {0, 7, 12};
  return e;
}

obs::OpTraceEvent sample_write() {
  obs::OpTraceEvent e;
  e.kind = obs::TraceOpKind::kWrite;
  e.proc = 40;
  e.reg = 0;
  e.invoke = 6.5;
  e.response = 8.0;
  e.ts = 4;
  e.quorum = {1, 2};
  return e;
}

TEST(OpTraceJsonlTest, RoundTripsExactly) {
  std::vector<obs::OpTraceEvent> events{sample_read(), sample_write()};
  std::ostringstream out;
  obs::write_jsonl(events, out);
  std::istringstream in(out.str());
  EXPECT_EQ(obs::parse_jsonl(in), events);
}

TEST(OpTraceJsonlTest, ParserIsFieldOrderInsensitive) {
  std::istringstream in(
      R"({"reg":2,"op":"read","ts":3,"proc":35,"response":6.5,"invoke":4,)"
      R"("quorum":[0,7,12],"stale":1,"attempts":2,"cache":true})");
  std::vector<obs::OpTraceEvent> events = obs::parse_jsonl(in);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], sample_read());
}

TEST(OpTraceJsonlTest, SkipsBlankLines) {
  std::ostringstream out;
  obs::write_jsonl({sample_read()}, out);
  std::istringstream in("\n" + out.str() + "\n\n");
  EXPECT_EQ(obs::parse_jsonl(in).size(), 1u);
}

TEST(OpTraceJsonlTest, RejectsMalformedInput) {
  std::istringstream unknown_key(
      R"({"op":"read","proc":0,"reg":0,"invoke":0,"response":0,"ts":0,)"
      R"("cache":false,"attempts":1,"stale":0,"quorum":[],"bogus":1})");
  EXPECT_THROW(obs::parse_jsonl(unknown_key), std::logic_error);
  std::istringstream not_json("reads=12");
  EXPECT_THROW(obs::parse_jsonl(not_json), std::logic_error);
  std::istringstream bad_kind(
      R"({"op":"scan","proc":0,"reg":0,"invoke":0,"response":0,"ts":0,)"
      R"("cache":false,"attempts":1,"stale":0,"quorum":[]})");
  EXPECT_THROW(obs::parse_jsonl(bad_kind), std::logic_error);
}

TEST(OpTraceJsonlTest, ErrorsCarryLineNumbers) {
  std::ostringstream out;
  obs::write_jsonl({sample_read(), sample_write()}, out);
  // Blank lines do not advance the record count but DO advance the line
  // number the error reports — it must match what an editor shows.
  std::istringstream in(out.str() + "\n{\"bogus\":1}\n");
  try {
    obs::parse_jsonl(in);
    FAIL() << "expected a parse error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("parse_jsonl: line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown key"), std::string::npos) << what;
  }
}

TEST(OpTraceJsonlTest, RejectsOutOfRangeNumbers) {
  std::istringstream overflow(R"({"invoke":1e999})");
  try {
    obs::parse_jsonl(overflow);
    FAIL() << "expected a range error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("number out of range"),
              std::string::npos)
        << e.what();
  }
}

TEST(OpTraceSinkTest, RecordInitialMatchesHistoryConvention) {
  obs::OpTraceSink sink;
  sink.record_initial(3);
  ASSERT_EQ(sink.size(), 1u);
  const obs::OpTraceEvent& e = sink.events()[0];
  EXPECT_EQ(e.kind, obs::TraceOpKind::kWrite);
  EXPECT_EQ(e.proc, 0u);
  EXPECT_EQ(e.reg, 3u);
  EXPECT_EQ(e.ts, 0u);
  EXPECT_DOUBLE_EQ(e.invoke, 0.0);
  EXPECT_DOUBLE_EQ(e.response, 0.0);
}

TEST(TraceBridgeTest, ConvertsBothDirections) {
  std::vector<obs::OpTraceEvent> events{sample_read(), sample_write()};
  std::vector<core::spec::OpRecord> records =
      core::spec::to_op_records(events);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, core::spec::OpKind::kRead);
  EXPECT_EQ(records[0].proc, 35u);
  EXPECT_EQ(records[0].reg, 2u);
  EXPECT_DOUBLE_EQ(records[0].invoke, 4.0);
  EXPECT_DOUBLE_EQ(records[0].response, 6.5);
  EXPECT_TRUE(records[0].responded);
  EXPECT_EQ(records[0].ts, 3u);
  EXPECT_EQ(records[1].kind, core::spec::OpKind::kWrite);

  std::vector<obs::OpTraceEvent> back = core::spec::to_trace_events(records);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].kind, obs::TraceOpKind::kRead);
  EXPECT_EQ(back[0].ts, 3u);
  // Protocol extras are not part of OpRecord and default away.
  EXPECT_TRUE(back[0].quorum.empty());
}

TEST(ChromeTraceTest, EmitsCompleteEventsPerProcess) {
  std::ostringstream out;
  obs::write_chrome_trace({sample_read(), sample_write()}, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  // One lane per proc: thread_name metadata for both 35 and 40.
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\":35"), std::string::npos);
  EXPECT_NE(text.find("\"tid\":40"), std::string::npos);
}

/// End-to-end: a DES run wired for metrics + tracing yields a trace the
/// register-spec checkers accept and nonzero instruments in every layer.
TEST(Alg1ObservabilityTest, TraceReplaysThroughSpecCheckers) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums quorums(8, 3);

  obs::Registry registry(obs::Concurrency::kSingleThread);
  obs::OpTraceSink trace;
  iter::Alg1Options options;
  options.quorums = &quorums;
  options.seed = 7;
  options.metrics = &registry;
  options.trace = &trace;
  iter::Alg1Result r = iter::run_alg1(op, options);
  ASSERT_TRUE(r.converged);

  core::spec::CheckResult check = core::spec::check_random_register(
      core::spec::to_op_records(trace.events()), /*monotone=*/true);
  EXPECT_TRUE(check.ok) << (check.violations.empty()
                                ? ""
                                : check.violations.front());

  namespace names = obs::names;
  EXPECT_GT(registry.counter(names::kClientReads).value(), 0u);
  EXPECT_GT(registry.counter(names::kClientWrites).value(), 0u);
  EXPECT_GT(registry.counter(names::kServerRequests).value(), 0u);
  EXPECT_GT(registry.counter(names::kTransportMessages).value(), 0u);
  EXPECT_GT(registry.counter(names::kSimEvents).value(), 0u);
  EXPECT_GT(registry.gauge(names::kSimHeapHighWater).value(), 0.0);
  EXPECT_GT(registry.histogram(names::kClientReadLatency).count(), 0u);

  // The trace and the registry agree on operation counts (minus the m
  // initial-value pseudo-writes the trace carries for the checkers).
  std::size_t reads = 0, writes = 0;
  for (const obs::OpTraceEvent& e : trace.events()) {
    (e.kind == obs::TraceOpKind::kRead ? reads : writes) += 1;
  }
  EXPECT_EQ(reads, registry.counter(names::kClientReads).value());
  EXPECT_EQ(writes, registry.counter(names::kClientWrites).value() +
                        op.num_components());
}

/// Instrumentation must not change what the DES does: the same seed gives
/// the identical execution with and without a registry attached.
TEST(Alg1ObservabilityTest, MetricsDoNotPerturbDeterminism) {
  apps::Graph g = apps::make_chain(5);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums quorums(8, 3);

  iter::Alg1Options plain;
  plain.quorums = &quorums;
  plain.seed = 11;
  plain.synchronous = false;  // exponential delays: orderings are fragile
  iter::Alg1Result bare = iter::run_alg1(op, plain);

  obs::Registry registry(obs::Concurrency::kSingleThread);
  obs::OpTraceSink trace1, trace2;
  iter::Alg1Options instrumented = plain;
  instrumented.metrics = &registry;
  instrumented.trace = &trace1;
  iter::Alg1Result with_metrics = iter::run_alg1(op, instrumented);

  EXPECT_EQ(bare.converged, with_metrics.converged);
  EXPECT_EQ(bare.rounds, with_metrics.rounds);
  EXPECT_EQ(bare.iterations, with_metrics.iterations);
  EXPECT_DOUBLE_EQ(bare.sim_time, with_metrics.sim_time);
  EXPECT_EQ(bare.messages.total, with_metrics.messages.total);

  // And the trace itself is reproducible event-for-event.
  obs::Registry registry2(obs::Concurrency::kSingleThread);
  iter::Alg1Options again = instrumented;
  again.metrics = &registry2;
  again.trace = &trace2;
  iter::run_alg1(op, again);
  EXPECT_EQ(trace1.events(), trace2.events());
}

}  // namespace
}  // namespace pqra
