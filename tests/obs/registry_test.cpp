#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/export.hpp"

namespace pqra::obs {
namespace {

TEST(CounterTest, IncrementsAndReads) {
  Registry reg(Concurrency::kSingleThread);
  Counter& c = reg.counter("pqra_test_total", "help");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAddRecordMax) {
  Registry reg(Concurrency::kSingleThread);
  Gauge& g = reg.gauge("pqra_test_gauge");
  g.set(5.0);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.record_max(3.0);  // below current value: no change
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.record_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(RegistryTest, RegistrationIsIdempotentByName) {
  Registry reg(Concurrency::kSingleThread);
  Counter& a = reg.counter("pqra_shared_total", "first help wins");
  Counter& b = reg.counter("pqra_shared_total", "ignored");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].help, "first help wins");
}

TEST(RegistryTest, KindConflictThrows) {
  Registry reg(Concurrency::kSingleThread);
  reg.counter("pqra_name");
  EXPECT_THROW(reg.gauge("pqra_name"), std::logic_error);
  EXPECT_THROW(reg.histogram("pqra_name"), std::logic_error);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  Registry reg(Concurrency::kSingleThread);
  reg.counter("pqra_zzz_total");
  reg.counter("pqra_aaa_total");
  reg.counter("pqra_mmm_total");
  RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "pqra_aaa_total");
  EXPECT_EQ(snap.counters[1].name, "pqra_mmm_total");
  EXPECT_EQ(snap.counters[2].name, "pqra_zzz_total");
}

TEST(RegistryTest, ConcurrentCounterIncrementsSumExactly) {
  Registry reg(Concurrency::kThreadSafe);
  Counter& c = reg.counter("pqra_contended_total");
  Histogram& h = reg.histogram("pqra_contended_latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(1.5);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), 1.5 * kThreads * kPerThread);
}

TEST(HistogramTest, BucketBoundaries) {
  Registry reg(Concurrency::kSingleThread);
  Histogram& h = reg.histogram("pqra_test_latency");

  // The frexp convention: x in [2^(e-1), 2^e) has exponent e, landing in
  // bucket e + kBias.  1.0 = 2^0 * 0.5 has exponent 1.
  h.observe(1.0);
  EXPECT_EQ(h.bucket_count(1 + Histogram::kBias), 1u);
  h.observe(0.999);  // exponent 0 — one bucket below 1.0
  EXPECT_EQ(h.bucket_count(0 + Histogram::kBias), 1u);
  h.observe(2.0);
  h.observe(3.999);  // same bucket as 2.0: [2, 4)
  EXPECT_EQ(h.bucket_count(2 + Histogram::kBias), 2u);

  // Bucket i covers [ub/2, ub): an exact power of two opens the next
  // bucket, like frexp's exponent convention.
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(1 + Histogram::kBias), 2.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(Histogram::kBias), 1.0);
}

TEST(HistogramTest, UnderflowOverflowAndNan) {
  Registry reg(Concurrency::kSingleThread);
  Histogram& h = reg.histogram("pqra_test_latency");
  h.observe(0.0);     // bucket 0 absorbs zero...
  h.observe(-5.0);    // ...and negatives...
  h.observe(1e-300);  // ...and underflow
  EXPECT_EQ(h.bucket_count(0), 3u);
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(1e300);
  EXPECT_EQ(h.bucket_count(Histogram::kNumBuckets - 1), 2u);
  h.observe(std::nan(""));
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_EQ(h.count(), 5u);  // NaN excluded
  EXPECT_TRUE(std::isinf(
      Histogram::bucket_upper_bound(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, MeanIsExact) {
  Registry reg(Concurrency::kSingleThread);
  Histogram& h = reg.histogram("pqra_test_latency");
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);  // sum/count, not bucket midpoints
}

TEST(PrometheusExportTest, GoldenOutput) {
  Registry reg(Concurrency::kSingleThread);
  reg.counter("pqra_ops_total", "Operations completed").inc(3);
  reg.gauge("pqra_depth", "Current depth").set(2.5);
  Histogram& h = reg.histogram("pqra_latency", "Op latency");
  h.observe(1.0);
  h.observe(1.5);
  h.observe(3.0);

  std::ostringstream out;
  write_prometheus(reg, out);
  // 1.0 and 1.5 share the [1, 2) bucket, 3.0 sits in [2, 4); empty buckets
  // outside the used range are elided, the +Inf bucket always appears.
  const std::string expected =
      "# HELP pqra_ops_total Operations completed\n"
      "# TYPE pqra_ops_total counter\n"
      "pqra_ops_total 3\n"
      "# HELP pqra_depth Current depth\n"
      "# TYPE pqra_depth gauge\n"
      "pqra_depth 2.5\n"
      "# HELP pqra_latency Op latency\n"
      "# TYPE pqra_latency histogram\n"
      "pqra_latency_bucket{le=\"2\"} 2\n"
      "pqra_latency_bucket{le=\"4\"} 3\n"
      "pqra_latency_bucket{le=\"+Inf\"} 3\n"
      "pqra_latency_sum 5.5\n"
      "pqra_latency_count 3\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(JsonExportTest, GoldenOutput) {
  Registry reg(Concurrency::kSingleThread);
  reg.counter("pqra_ops_total", "Operations completed").inc(7);
  reg.gauge("pqra_depth").set(1.0);
  reg.histogram("pqra_latency").observe(1.0);

  std::ostringstream out;
  write_json(reg, out);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"pqra_ops_total\": 7\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"pqra_depth\": 1\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"pqra_latency\": {\"count\": 1, \"sum\": 1, "
      "\"buckets\": [{\"le\": 2, \"count\": 1}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(FormatDoubleTest, ShortestRoundTrip) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(2.5), "2.5");
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "+Inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-Inf");
  EXPECT_EQ(format_double(std::nan("")), "NaN");
}

// merge_from is what makes per-run registry shards (sim::ParallelRunner)
// equivalent to the sequential everyone-shares-one-registry pattern: merging
// R shards in run order must yield the exact instrument values a single
// registry fed by the same runs in sequence would hold.

TEST(RegistryMergeTest, CountersAdd) {
  Registry total(Concurrency::kSingleThread);
  total.counter("pqra_ops_total").inc(10);
  Registry shard(Concurrency::kSingleThread);
  shard.counter("pqra_ops_total").inc(32);
  shard.counter("pqra_new_total").inc(5);  // not yet in the aggregate
  total.merge_from(shard);
  EXPECT_EQ(total.counter("pqra_ops_total").value(), 42u);
  EXPECT_EQ(total.counter("pqra_new_total").value(), 5u);
}

TEST(RegistryMergeTest, GaugePolicies) {
  Registry total(Concurrency::kSingleThread);
  total.gauge("pqra_last", "", GaugeMerge::kLast).set(7.0);
  total.gauge("pqra_max", "", GaugeMerge::kMax).set(7.0);
  total.gauge("pqra_sum", "", GaugeMerge::kSum).set(7.0);

  Registry shard(Concurrency::kSingleThread);
  shard.gauge("pqra_last").set(3.0);
  shard.gauge("pqra_max").set(3.0);
  shard.gauge("pqra_sum").set(3.0);

  total.merge_from(shard);
  EXPECT_DOUBLE_EQ(total.gauge("pqra_last").value(), 3.0);  // shard overwrites
  EXPECT_DOUBLE_EQ(total.gauge("pqra_max").value(), 7.0);   // kept the max
  EXPECT_DOUBLE_EQ(total.gauge("pqra_sum").value(), 10.0);  // accumulated
}

TEST(RegistryMergeTest, GaugePolicyCarriesOverFromShard) {
  // A gauge first seen via merge adopts the shard's policy, so later merges
  // keep behaving like first-registration-wins.
  Registry total(Concurrency::kSingleThread);
  Registry shard1(Concurrency::kSingleThread);
  shard1.gauge("pqra_hw", "", GaugeMerge::kMax).record_max(9.0);
  total.merge_from(shard1);
  Registry shard2(Concurrency::kSingleThread);
  shard2.gauge("pqra_hw", "", GaugeMerge::kMax).record_max(4.0);
  total.merge_from(shard2);
  EXPECT_DOUBLE_EQ(total.gauge("pqra_hw").value(), 9.0);
}

TEST(RegistryMergeTest, HistogramsMergeBucketWise) {
  Registry total(Concurrency::kSingleThread);
  Histogram& ht = total.histogram("pqra_lat");
  ht.observe(1.5);
  ht.observe(100.0);

  Registry shard(Concurrency::kSingleThread);
  Histogram& hs = shard.histogram("pqra_lat");
  hs.observe(1.5);
  hs.observe(0.25);
  hs.observe(std::nan(""));

  total.merge_from(shard);
  EXPECT_EQ(ht.count(), 4u);
  EXPECT_DOUBLE_EQ(ht.sum(), 1.5 + 100.0 + 1.5 + 0.25);
  EXPECT_EQ(ht.nan_count(), 1u);

  // Bucket-wise equality against a histogram fed all samples directly.
  Registry ref(Concurrency::kSingleThread);
  Histogram& hr = ref.histogram("pqra_lat");
  for (double x : {1.5, 100.0, 1.5, 0.25}) hr.observe(x);
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(ht.bucket_count(i), hr.bucket_count(i)) << "bucket " << i;
  }
}

TEST(RegistryMergeTest, ShardMergeEqualsSequentialSharedRegistry) {
  // Simulate 3 "runs", each reporting counters, a kLast gauge, a kMax gauge
  // and a histogram — once sequentially into one registry, once into
  // per-run shards merged in run order.  The snapshots must match exactly.
  auto report = [](Registry& reg, int run) {
    reg.counter("pqra_events_total").inc(100 + static_cast<std::uint64_t>(run));
    reg.gauge("pqra_sim_time").set(50.0 * (run + 1));
    reg.gauge("pqra_high_water", "", GaugeMerge::kMax)
        .record_max(10.0 * ((run % 2) + 1));
    reg.histogram("pqra_lat").observe(0.5 * (run + 1));
  };

  Registry sequential(Concurrency::kSingleThread);
  for (int run = 0; run < 3; ++run) report(sequential, run);

  Registry merged(Concurrency::kSingleThread);
  for (int run = 0; run < 3; ++run) {
    Registry shard(Concurrency::kSingleThread);
    report(shard, run);
    merged.merge_from(shard);
  }

  std::ostringstream seq_out, mrg_out;
  write_prometheus(sequential, seq_out);
  write_prometheus(merged, mrg_out);
  EXPECT_EQ(seq_out.str(), mrg_out.str());
}

TEST(RegistryMergeTest, SelfMergeThrows) {
  Registry reg(Concurrency::kSingleThread);
  reg.counter("pqra_x_total").inc();
  EXPECT_THROW(reg.merge_from(reg), std::exception);
}

}  // namespace
}  // namespace pqra::obs
