#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "iter/alg1_des.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "quorum/probabilistic.hpp"

namespace pqra {
namespace {

/// A small closed tree: one client op with two RPC attempts and a retry
/// wait, fully annotated the way the register client does it.
obs::SpanSink make_closed_tree() {
  obs::SpanSink sink;
  obs::SpanId root = sink.begin(obs::SpanKind::kClientOp, 0, /*proc=*/9, 1.0);
  sink.at(root).reg = 2;
  sink.at(root).op = 5;
  obs::SpanId rpc0 =
      sink.begin(obs::SpanKind::kRpcAttempt, root, /*proc=*/9, 1.0);
  sink.at(rpc0).server = 0;
  obs::SpanId rpc1 =
      sink.begin(obs::SpanKind::kRpcAttempt, root, /*proc=*/9, 1.0);
  sink.at(rpc1).server = 3;
  sink.finish(rpc0, obs::SpanStatus::kOk, 2.0);
  obs::SpanId wait =
      sink.begin(obs::SpanKind::kRetryWait, root, /*proc=*/9, 2.5);
  sink.finish(wait, obs::SpanStatus::kOk, 4.0);
  sink.finish(rpc1, obs::SpanStatus::kUnanswered, 4.5);
  sink.at(root).ts = 7;
  sink.at(root).quorum = {0, 3};
  sink.at(root).fresh = {0};
  sink.finish(root, obs::SpanStatus::kOk, 4.5);
  return sink;
}

TEST(SpanSinkTest, BuildsCausalTreeWithInheritedTraceIds) {
  obs::SpanSink sink = make_closed_tree();
  ASSERT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.open_spans(), 0u);
  const std::vector<obs::SpanRecord>& spans = sink.spans();
  // Root starts a trace named after itself; children inherit it.
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].trace, spans[0].id);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].parent, spans[0].id);
    EXPECT_EQ(spans[i].trace, spans[0].trace);
    EXPECT_LT(spans[i].parent, spans[i].id);  // parents precede children
  }
  EXPECT_NO_THROW(sink.check(/*require_closed=*/true));
}

TEST(SpanSinkTest, DoubleCloseThrows) {
  obs::SpanSink sink;
  obs::SpanId id = sink.begin(obs::SpanKind::kClientOp, 0, 0, 1.0);
  sink.finish(id, obs::SpanStatus::kOk, 2.0);
  EXPECT_THROW(sink.finish(id, obs::SpanStatus::kOk, 3.0), std::logic_error);
}

TEST(SpanSinkTest, EndBeforeStartThrows) {
  obs::SpanSink sink;
  obs::SpanId id = sink.begin(obs::SpanKind::kClientOp, 0, 0, 5.0);
  EXPECT_THROW(sink.finish(id, obs::SpanStatus::kOk, 4.0), std::logic_error);
}

TEST(SpanSinkTest, ClosingAsOpenThrows) {
  obs::SpanSink sink;
  obs::SpanId id = sink.begin(obs::SpanKind::kClientOp, 0, 0, 1.0);
  EXPECT_THROW(sink.finish(id, obs::SpanStatus::kOpen, 2.0),
               std::logic_error);
}

TEST(SpanSinkTest, ParentMustExist) {
  obs::SpanSink sink;
  EXPECT_THROW(sink.begin(obs::SpanKind::kRpcAttempt, /*parent=*/7, 0, 1.0),
               std::logic_error);
  EXPECT_THROW(sink.at(1), std::logic_error);
}

TEST(SpanSinkTest, CheckRequireClosedFlagsOpenSpans) {
  obs::SpanSink sink;
  sink.begin(obs::SpanKind::kClientOp, 0, 0, 1.0);
  EXPECT_EQ(sink.open_spans(), 1u);
  EXPECT_NO_THROW(sink.check(/*require_closed=*/false));
  EXPECT_THROW(sink.check(/*require_closed=*/true), std::logic_error);
}

TEST(SpanSinkTest, SamplingIsDeterministicInSeedProcOp) {
  obs::SpanSink::Options opts;
  opts.seed = 42;
  opts.sample_period = 4;
  obs::SpanSink a(opts), b(opts);
  std::size_t hits = 0;
  for (std::uint32_t proc = 0; proc < 8; ++proc) {
    for (std::uint64_t op = 0; op < 128; ++op) {
      EXPECT_EQ(a.sampled(proc, op), b.sampled(proc, op));
      hits += a.sampled(proc, op);
    }
  }
  // ~1/4 of 1024 decisions; loose bounds, the point is "neither all nor
  // none" while staying a pure function of the inputs.
  EXPECT_GT(hits, 1024u / 8);
  EXPECT_LT(hits, 1024u / 2);

  // Edge periods: 1 samples everything, 0 samples nothing.
  obs::SpanSink all(obs::SpanSink::Options{42, 1});
  obs::SpanSink none(obs::SpanSink::Options{42, 0});
  EXPECT_TRUE(all.sampled(3, 17));
  EXPECT_FALSE(none.sampled(3, 17));

  // A different seed picks a different subset (with overwhelming
  // probability over 1024 decisions).
  obs::SpanSink other(obs::SpanSink::Options{43, 4});
  bool differs = false;
  for (std::uint64_t op = 0; op < 1024 && !differs; ++op) {
    differs = a.sampled(0, op) != other.sampled(0, op);
  }
  EXPECT_TRUE(differs);
}

TEST(SpanSinkTest, PublishFoldsCountersIntoRegistry) {
  obs::SpanSink sink = make_closed_tree();
  sink.begin(obs::SpanKind::kClientOp, 0, 1, 9.0);  // one left open
  obs::Registry registry(obs::Concurrency::kSingleThread);
  sink.publish(registry);
  namespace n = obs::names;
  EXPECT_EQ(registry.counter(n::kSpanStarted).value(), 5u);
  EXPECT_EQ(registry.counter(n::kSpanCompleted).value(), 4u);
  EXPECT_DOUBLE_EQ(registry.gauge(n::kSpanOpen).value(), 1.0);
  EXPECT_EQ(registry.counter(n::kSpanByKind[0]).value(), 2u);  // client_op
  EXPECT_EQ(registry.counter(n::kSpanByKind[1]).value(), 2u);  // rpc_attempt
  EXPECT_EQ(registry.counter(n::kSpanByKind[2]).value(), 1u);  // retry_wait
  EXPECT_EQ(registry.counter(n::kSpanByKind[3]).value(), 0u);
}

TEST(SpanJsonlTest, RoundTripsExactly) {
  obs::SpanSink sink = make_closed_tree();
  std::ostringstream out;
  obs::write_spans_jsonl(sink.spans(), out);
  std::istringstream in(out.str());
  EXPECT_EQ(obs::parse_spans_jsonl(in), sink.spans());
}

TEST(SpanJsonlTest, SkipsBlankLines) {
  obs::SpanSink sink = make_closed_tree();
  std::ostringstream out;
  obs::write_spans_jsonl(sink.spans(), out);
  std::istringstream in("\n" + out.str() + "\n  \n");
  EXPECT_EQ(obs::parse_spans_jsonl(in).size(), sink.size());
}

/// Parse failures must name the 1-based line of the offending record.
TEST(SpanJsonlTest, ErrorsCarryLineNumbers) {
  obs::SpanSink sink = make_closed_tree();
  std::ostringstream out;
  obs::write_spans_jsonl(sink.spans(), out);
  std::istringstream in(out.str() + "{\"bogus\":1}\n");
  try {
    obs::parse_spans_jsonl(in);
    FAIL() << "expected a parse error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown key"), std::string::npos) << what;
  }
}

TEST(SpanJsonlTest, RejectsMalformedInput) {
  std::istringstream not_json("spans=12");
  EXPECT_THROW(obs::parse_spans_jsonl(not_json), std::logic_error);
  std::istringstream truncated(R"({"id":1,"parent":0)");
  EXPECT_THROW(obs::parse_spans_jsonl(truncated), std::logic_error);
  std::istringstream bad_kind(R"({"kind":"teleport"})");
  EXPECT_THROW(obs::parse_spans_jsonl(bad_kind), std::logic_error);
  std::istringstream bad_status(R"({"status":"maybe"})");
  EXPECT_THROW(obs::parse_spans_jsonl(bad_status), std::logic_error);
  std::istringstream overflow(R"({"start":1e999})");
  try {
    obs::parse_spans_jsonl(overflow);
    FAIL() << "expected a range error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
  std::istringstream trailing(R"({"id":1} tail)");
  EXPECT_THROW(obs::parse_spans_jsonl(trailing), std::logic_error);
}

TEST(SpanChromeTest, EmitsStableSortedBytesRegardlessOfInputOrder) {
  obs::SpanSink sink = make_closed_tree();
  std::vector<obs::SpanRecord> shuffled = sink.spans();
  std::swap(shuffled[0], shuffled[3]);
  std::swap(shuffled[1], shuffled[2]);
  std::ostringstream a, b;
  obs::write_spans_chrome(sink.spans(), a);
  obs::write_spans_chrome(shuffled, b);
  EXPECT_EQ(a.str(), b.str());

  const std::string text = a.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"read r2\""), std::string::npos);
  EXPECT_NE(text.find("\"rpc_attempt s3\""), std::string::npos);
  EXPECT_NE(text.find("\"retry_wait\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"quorum\":\"0 3\""), std::string::npos);
  EXPECT_NE(text.find("\"fresh\":\"0\""), std::string::npos);
}

TEST(SpanChromeTest, RejectsNonPositiveTimeScale) {
  obs::SpanSink sink = make_closed_tree();
  std::ostringstream out;
  EXPECT_THROW(obs::write_spans_chrome(sink.spans(), out, 0.0),
               std::logic_error);
  EXPECT_THROW(obs::write_spans_chrome(sink.spans(), out, -3.0),
               std::logic_error);
}

/// End-to-end: an Alg. 1 DES run with a span sink produces a structurally
/// valid forest whose roots/kinds line up with the client protocol, and is
/// reproducible record-for-record.
TEST(SpanAlg1Test, RunProducesValidReproducibleSpans) {
  apps::Graph g = apps::make_chain(5);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums quorums(8, 3);

  auto run = [&](obs::SpanSink& sink) {
    iter::Alg1Options options;
    options.quorums = &quorums;
    options.seed = 7;
    options.spans = &sink;
    iter::Alg1Result r = iter::run_alg1(op, options);
    ASSERT_TRUE(r.converged);
  };
  obs::SpanSink first, second;
  run(first);
  run(second);
  EXPECT_GT(first.size(), 0u);
  EXPECT_EQ(first.spans(), second.spans());
  // Convergence truncates the run with ops in flight, so open spans are
  // legal — but the structure must audit clean.
  EXPECT_NO_THROW(first.check(/*require_closed=*/false));

  std::size_t roots = 0, rpc = 0, handled = 0;
  for (const obs::SpanRecord& rec : first.spans()) {
    if (rec.kind == obs::SpanKind::kClientOp) {
      EXPECT_EQ(rec.parent, 0u);
      ++roots;
    } else {
      EXPECT_NE(rec.parent, 0u);
      rpc += rec.kind == obs::SpanKind::kRpcAttempt;
      handled += rec.kind == obs::SpanKind::kServerHandle;
    }
    if (rec.kind == obs::SpanKind::kServerHandle) {
      // Replica-side spans are parented on the RPC attempt that carried
      // the request, through the message headers.
      EXPECT_EQ(first.spans()[rec.parent - 1].kind,
                obs::SpanKind::kRpcAttempt);
    }
    if (!rec.open && rec.kind == obs::SpanKind::kClientOp &&
        rec.status == obs::SpanStatus::kOk) {
      EXPECT_FALSE(rec.quorum.empty());
    }
  }
  EXPECT_GT(roots, 0u);
  EXPECT_GT(rpc, 0u);
  EXPECT_GT(handled, 0u);
}

}  // namespace
}  // namespace pqra
