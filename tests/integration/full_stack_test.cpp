#include <gtest/gtest.h>

#include <memory>

#include "apps/approx_agreement.hpp"
#include "apps/apsp.hpp"
#include "apps/csp.hpp"
#include "apps/graph.hpp"
#include "apps/linear.hpp"
#include "apps/transitive_closure.hpp"
#include "core/server_process.hpp"
#include "core/spec/checker.hpp"
#include "iter/alg1_des.hpp"
#include "iter/update_sequence.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/hierarchical.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "quorum/rowa.hpp"
#include "quorum/singleton.hpp"

/// End-to-end sweeps: every application over every quorum system, with the
/// register specification checked on the recorded execution.  This is the
/// paper's whole pipeline exercised in one place.

namespace pqra {
namespace {

std::unique_ptr<iter::AcoOperator> make_operator(const std::string& app,
                                                 std::size_t m) {
  util::Rng rng(4242);
  if (app == "apsp") {
    return std::make_unique<apps::ApspOperator>(apps::make_chain(m));
  }
  if (app == "tc") {
    return std::make_unique<apps::TransitiveClosureOperator>(
        apps::make_cycle(m));
  }
  if (app == "csp") {
    return std::make_unique<apps::ArcConsistencyOperator>(
        apps::make_ordering_csp(m, m + 1));
  }
  if (app == "jacobi") {
    return std::make_unique<apps::JacobiOperator>(
        apps::make_dominant_system(m, 0.6, rng), 1e-7);
  }
  std::vector<double> inputs;
  for (std::size_t i = 0; i < m; ++i) inputs.push_back(rng.uniform01() * 50);
  return std::make_unique<apps::ApproxAgreementOperator>(std::move(inputs),
                                                         0.05);
}

std::unique_ptr<quorum::QuorumSystem> make_system(const std::string& kind) {
  if (kind == "prob3of12") {
    return std::make_unique<quorum::ProbabilisticQuorums>(12, 3);
  }
  if (kind == "prob7of12") {
    return std::make_unique<quorum::ProbabilisticQuorums>(12, 7);
  }
  if (kind == "majority") return std::make_unique<quorum::MajorityQuorums>(9);
  if (kind == "grid") return std::make_unique<quorum::GridQuorums>(3, 3);
  if (kind == "fpp") return std::make_unique<quorum::FppQuorums>(3);
  if (kind == "hier") return std::make_unique<quorum::HierarchicalQuorums>(2);
  if (kind == "rowa") return std::make_unique<quorum::ReadOneWriteAll>(7);
  return std::make_unique<quorum::SingletonQuorums>(5);
}

struct StackCase {
  const char* app;
  const char* system;
  bool synchronous;
};

class FullStackSweep : public ::testing::TestWithParam<StackCase> {};

TEST_P(FullStackSweep, ConvergesAndSatisfiesTheSpec) {
  auto [app, system, synchronous] = GetParam();
  auto op = make_operator(app, 7);
  auto qs = make_system(system);
  iter::Alg1Options options;
  options.quorums = qs.get();
  options.monotone = true;
  options.synchronous = synchronous;
  options.seed = 77;
  options.round_cap = 30000;
  options.record_history = true;
  iter::Alg1Result r = iter::run_alg1(*op, options);
  EXPECT_TRUE(r.converged) << app << " over " << qs->name();
  ASSERT_NE(r.history, nullptr);

  const auto& ops = r.history->ops();
  auto r2 = core::spec::check_r2(ops);
  EXPECT_TRUE(r2.ok) << r2.violations.front();
  auto sw = core::spec::check_single_writer(ops);
  EXPECT_TRUE(sw.ok) << sw.violations.front();
  auto r4 = core::spec::check_r4(ops);
  EXPECT_TRUE(r4.ok) << r4.violations.front();
  if (qs->is_strict() && synchronous) {
    auto reg = core::spec::check_regular(ops);
    EXPECT_TRUE(reg.ok) << reg.violations.front();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AppsTimesSystems, FullStackSweep,
    ::testing::Values(
        StackCase{"apsp", "prob3of12", true},
        StackCase{"apsp", "prob7of12", false},
        StackCase{"apsp", "majority", true},
        StackCase{"apsp", "grid", false},
        StackCase{"apsp", "fpp", true},
        StackCase{"apsp", "hier", true},
        StackCase{"apsp", "rowa", false},
        StackCase{"apsp", "singleton", true},
        StackCase{"tc", "prob3of12", false},
        StackCase{"tc", "grid", true},
        StackCase{"tc", "hier", false},
        StackCase{"csp", "prob3of12", true},
        StackCase{"csp", "fpp", false},
        StackCase{"csp", "majority", false},
        StackCase{"jacobi", "prob3of12", false},
        StackCase{"jacobi", "grid", true},
        StackCase{"jacobi", "rowa", true},
        StackCase{"agree", "prob3of12", true},
        StackCase{"agree", "majority", false},
        StackCase{"agree", "singleton", false}),
    [](const auto& info) {
      return std::string(info.param.app) + "_" + info.param.system +
             (info.param.synchronous ? "_sync" : "_async");
    });

TEST(FullStackTest, LossyNetworkWithRetriesStillConvergesAndSatisfiesR2) {
  // 10% message loss everywhere; retries provide liveness, and the
  // specification must still hold (drops never corrupt, only delay).
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(10, 3);

  util::Rng master(5);
  sim::Simulator sim;
  auto delays = sim::make_exponential_delay(1.0);
  net::SimTransport transport(sim, *delays, master.fork(1), 16);
  transport.set_drop_probability(0.10);

  // run_alg1 owns its transport (no drop-probability knob), so the register
  // layer is driven directly here.
  std::vector<std::unique_ptr<core::ServerProcess>> servers;
  for (net::NodeId s = 0; s < 10; ++s) {
    servers.push_back(std::make_unique<core::ServerProcess>(transport, s));
    servers.back()->replica().preload(0, util::encode<std::int64_t>(0));
  }
  core::spec::HistoryRecorder history;
  history.record_initial(0);
  core::ClientOptions copts;
  copts.monotone = true;
  copts.retry = core::RetryPolicy::fixed(6.0);
  core::QuorumRegisterClient writer(sim, transport, 10, qs, 0,
                                    master.fork(2), copts, &history);
  core::QuorumRegisterClient reader(sim, transport, 11, qs, 0,
                                    master.fork(3), copts, &history);

  int completed = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    writer.write(0, util::encode<std::int64_t>(remaining),
                 [&, remaining](core::Timestamp) {
                   reader.read(0, [&, remaining](core::ReadResult) {
                     ++completed;
                     loop(remaining - 1);
                   });
                 });
  };
  loop(40);
  sim.run();
  EXPECT_EQ(completed, 40);
  EXPECT_GT(writer.counters().retries + reader.counters().retries, 0u);
  auto verdict = core::spec::check_random_register(history.ops(), true);
  EXPECT_TRUE(verdict.ok) << verdict.violations.front();
}

class LossSweep : public ::testing::TestWithParam<int> {};

TEST_P(LossSweep, RegisterSurvivesMessageLossWithRetries) {
  const double drop = GetParam() / 100.0;
  quorum::ProbabilisticQuorums qs(10, 3);
  util::Rng master(31 + GetParam());
  sim::Simulator sim;
  auto delays = sim::make_exponential_delay(1.0);
  net::SimTransport transport(sim, *delays, master.fork(1), 12);
  transport.set_drop_probability(drop);
  std::vector<std::unique_ptr<core::ServerProcess>> servers;
  for (net::NodeId s = 0; s < 10; ++s) {
    servers.push_back(std::make_unique<core::ServerProcess>(transport, s));
    servers.back()->replica().preload(0, util::encode<std::int64_t>(0));
  }
  core::spec::HistoryRecorder history;
  history.record_initial(0);
  core::ClientOptions copts;
  copts.monotone = true;
  copts.retry = core::RetryPolicy::fixed(8.0);
  core::QuorumRegisterClient client(sim, transport, 10, qs, 0,
                                    master.fork(2), copts, &history);
  int completed = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    client.write(0, util::encode<std::int64_t>(remaining),
                 [&, remaining](core::Timestamp) {
                   client.read(0, [&, remaining](core::ReadResult) {
                     ++completed;
                     loop(remaining - 1);
                   });
                 });
  };
  loop(25);
  sim.run();
  EXPECT_EQ(completed, 25) << "drop probability " << drop;
  auto verdict = core::spec::check_random_register(history.ops(), true);
  EXPECT_TRUE(verdict.ok) << verdict.violations.front();
}

INSTANTIATE_TEST_SUITE_P(DropRates, LossSweep,
                         ::testing::Values(5, 15, 30, 50),
                         [](const auto& info) {
                           return "drop" + std::to_string(info.param) + "pct";
                         });

TEST(FullStackTest, AllAppsAgreeAcrossRuntimesOnTheResult) {
  // The DES and the sequential runner must land on identical fixed points.
  apps::Graph g = apps::make_chain(8);
  apps::ApspOperator op(g);
  quorum::MajorityQuorums qs(8);
  iter::Alg1Options options;
  options.quorums = &qs;
  auto des = iter::run_alg1(op, options);
  ASSERT_TRUE(des.converged);
  auto schedule = iter::make_synchronous_schedule();
  auto seq = iter::run_update_sequence(op, *schedule, 100);
  ASSERT_TRUE(seq.converged);
  for (std::size_t i = 0; i < op.num_components(); ++i) {
    EXPECT_EQ(seq.final_x[i], op.fixed_point(i));
  }
}

}  // namespace
}  // namespace pqra
