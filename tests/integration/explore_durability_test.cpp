/// Explore-layer coverage for the durability dimensions (docs/DURABILITY.md
/// + docs/EXPLORATION.md): the durability knobs serialize/parse
/// byte-identically and default correctly on pre-durability replay files,
/// from_seed never draws them (existing seeds keep their schedules),
/// FaultPlan::mutate draws durability verbs only when asked, the fsync-loss
/// window sugar desugars to a pair, and — the drill the planted CRC-skip
/// bug exists for — the crash-replay-compare oracle catches a recovery that
/// surfaces torn garbage and the shrinker reduces it to a minimal durable
/// repro without losing the rule.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "explore/profile.hpp"
#include "explore/runner.hpp"
#include "explore/shrink.hpp"
#include "net/fault_plan.hpp"
#include "util/rng.hpp"

namespace pqra::explore {
namespace {

bool is_durability_kind(net::FaultKind kind) {
  return kind == net::FaultKind::kTornWrite ||
         kind == net::FaultKind::kFsyncLoss ||
         kind == net::FaultKind::kClearFsyncLoss;
}

bool has_durability_events(const net::FaultPlan& plan) {
  for (const net::FaultPlan::Event& e : plan.events()) {
    if (is_durability_kind(e.kind)) return true;
  }
  return false;
}

/// A durable schedule with the planted CRC-skip recovery bug
/// (DurableStore::set_test_skip_crc_bug) armed: a torn WAL sync right
/// before a crash leaves garbage as the durable tail, the buggy recovery
/// replays it as if it were real state, and the crash-replay-compare
/// oracle must flag the divergence from an honest replay of the same
/// durable bytes.  snapshot_every 0 keeps the whole history in one log so
/// the torn record is never absorbed into a snapshot.
ScheduleProfile skip_crc_bug_profile() {
  ScheduleProfile p;
  p.seed = 17;
  p.num_servers = 4;
  p.quorum_size = 2;
  p.num_clients = 2;
  p.ops_per_client = 40;
  p.delay = {sim::DelaySpec::Kind::kExponential, 1.0};
  p.horizon = 120.0;
  p.durable = true;
  p.snapshot_every = 0;
  p.bug_skip_crc = true;
  const sim::Time t = 35.0;
  p.faults.torn_write_at(t, 0);      // tear the next WAL sync on server 0
  p.faults.crash_at(t + 0.4, 0);     // crash while the tear is the tail
  p.faults.recover_at(t + 30.0, 0);  // recovery replays the torn garbage
  return p;
}

TEST(ExploreDurabilityTest, DurabilityKnobsRoundTripByteIdentically) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const ScheduleProfile p = ScheduleProfile::from_seed(seed);
    // from_seed never draws durability: every existing seed keeps its
    // byte-identical schedule (the PR's acceptance bar).
    EXPECT_FALSE(p.durable) << "seed " << seed;
    EXPECT_FALSE(p.bug_skip_crc) << "seed " << seed;

    ScheduleProfile d = p;
    if (!d.alg1) {
      d.durable = true;
      d.snapshot_every = (seed % 2 == 0) ? 0 : 8;
    }
    const std::string text = d.serialize();
    EXPECT_EQ(ScheduleProfile::parse(text), d) << text;
    EXPECT_EQ(ScheduleProfile::parse(text).serialize(), text) << text;
  }
}

// Replay files written before the durability knobs existed carry none of
// the durability lines; they must parse to the legacy defaults (and thus
// replay the exact pre-durability schedule).
TEST(ExploreDurabilityTest, PreDurabilityProfileTextParsesToDefaults) {
  ScheduleProfile p = ScheduleProfile::from_seed(3);
  p.durable = false;
  p.snapshot_every = 64;
  p.bug_skip_crc = false;

  std::istringstream in(p.serialize());
  std::ostringstream legacy;
  std::string line;
  while (std::getline(in, line)) {
    const std::string key = line.substr(0, line.find(' '));
    if (key == "durable" || key == "snapshot-every" || key == "bug-skip-crc") {
      continue;
    }
    legacy << line << "\n";
  }
  EXPECT_EQ(ScheduleProfile::parse(legacy.str()), p);
}

TEST(ExploreDurabilityTest, InvalidDurabilityCombinationsAreRejected) {
  // The CRC-skip bug needs a durable layer to express itself, and alg1
  // owns its replica layout: both combinations are profile validation
  // errors, caught at parse time so replay files can't smuggle them in.
  ScheduleProfile bug_without_durable = ScheduleProfile::from_seed(0);
  bug_without_durable.durable = false;
  bug_without_durable.bug_skip_crc = true;
  EXPECT_THROW(ScheduleProfile::parse(bug_without_durable.serialize()),
               std::logic_error);

  ScheduleProfile durable_alg1;
  durable_alg1.alg1 = true;
  durable_alg1.durable = true;
  EXPECT_THROW(ScheduleProfile::parse(durable_alg1.serialize()),
               std::logic_error);
}

// With durability enabled the FaultPlan mutation operator draws torn-write
// and fsync-loss events; without it the legacy draw sequence is unchanged.
TEST(ExploreDurabilityTest, FaultMutateDrawsDurabilityVerbsOnlyWhenEnabled) {
  util::Rng rng(41);
  net::FaultPlan plan;
  bool saw_durability = false;
  for (int i = 0; i < 200 && !saw_durability; ++i) {
    plan.mutate(/*num_servers=*/5, /*horizon=*/100.0, rng, /*num_keys=*/0,
                /*durability=*/true);
    saw_durability = has_durability_events(plan);
  }
  ASSERT_TRUE(saw_durability)
      << "200 mutations with durability never drew a durability verb";

  // Durability plans round-trip through the grammar.
  const std::string text = plan.serialize();
  EXPECT_EQ(net::FaultPlan::parse(text), plan) << text;
  EXPECT_EQ(net::FaultPlan::parse(text).serialize(), text) << text;

  // Without the flag, mutate never draws them (legacy call sites are
  // draw-compatible).
  net::FaultPlan legacy;
  util::Rng legacy_rng(41);
  for (int i = 0; i < 200; ++i) {
    legacy.mutate(5, 100.0, legacy_rng);
    ASSERT_FALSE(has_durability_events(legacy));
  }
}

// Durability verbs compose with key addressing: a `tornwrite:k3@T` targets
// whatever node owns key 3 at resolve time.
TEST(ExploreDurabilityTest, DurabilityVerbsAcceptKeyTargets) {
  net::FaultPlan plan;
  plan.torn_write_key_at(10.0, 3);
  plan.fsync_loss_key_at(20.0, 5);
  plan.clear_fsync_loss_key_at(60.0, 5);
  EXPECT_TRUE(plan.has_key_targets());
  EXPECT_EQ(net::FaultPlan::parse(plan.serialize()), plan);

  const net::FaultPlan resolved = plan.resolve_keys(
      [](net::KeyId key) { return static_cast<net::NodeId>(key % 4); });
  EXPECT_FALSE(resolved.has_key_targets());
  ASSERT_EQ(resolved.events().size(), 3u);
  EXPECT_EQ(resolved.events()[0].node, 3u);
  EXPECT_EQ(resolved.events()[1].node, 1u);
}

TEST(ExploreDurabilityTest, FsyncLossWindowSugarDesugarsToAPair) {
  const net::FaultPlan plan = net::FaultPlan::parse("fsyncloss:2@20-60");
  ASSERT_EQ(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, net::FaultKind::kFsyncLoss);
  EXPECT_EQ(plan.events()[0].at, 20.0);
  EXPECT_EQ(plan.events()[0].node, 2u);
  EXPECT_EQ(plan.events()[1].kind, net::FaultKind::kClearFsyncLoss);
  EXPECT_EQ(plan.events()[1].at, 60.0);
  EXPECT_EQ(plan.events()[1].node, 2u);

  // The canonical form is the desugared pair, and it round-trips.
  net::FaultPlan explicit_pair;
  explicit_pair.fsync_loss_at(20.0, 2).clear_fsync_loss_at(60.0, 2);
  EXPECT_EQ(plan, explicit_pair);
  EXPECT_EQ(net::FaultPlan::parse(plan.serialize()), plan);
}

// The drill: arm the planted CRC-skip recovery bug under a torn-write +
// crash schedule, catch it with the crash-replay-compare oracle, and
// shrink the schedule without losing the rule.  This is the end-to-end
// proof that a real recovery regression in the durable layer would be
// found and minimized.
TEST(ExploreDurabilityTest, SkipCrcRecoveryBugIsCaughtAndShrunk) {
  const ScheduleProfile original = skip_crc_bug_profile();
  const RunOutcome outcome = run_profile(original);
  ASSERT_TRUE(outcome.violation)
      << "the armed CRC-skip bug produced a clean run";
  EXPECT_EQ(outcome.rule, "probe:durable-recovery") << outcome.detail;

  // The honest twin — identical schedule, bug disarmed — must run clean:
  // the oracle flags the bug, not the fault schedule.
  ScheduleProfile honest = original;
  honest.bug_skip_crc = false;
  const RunOutcome honest_outcome = run_profile(honest);
  EXPECT_FALSE(honest_outcome.violation) << honest_outcome.detail;

  const ShrinkResult shrunk = shrink(original, outcome, /*max_runs=*/300);
  EXPECT_TRUE(shrunk.outcome.violation);
  EXPECT_EQ(shrunk.outcome.rule, outcome.rule);
  EXPECT_LE(shrunk.profile.cost(), original.cost());
  // Shrinking never disarms the bug (it is not a schedule dimension), and
  // the repro keeps the durable layer the bug lives in.
  EXPECT_TRUE(shrunk.profile.bug_skip_crc);
  EXPECT_TRUE(shrunk.profile.durable);

  // The minimal repro survives the replay-file round trip.
  const std::string text = shrunk.profile.serialize();
  EXPECT_EQ(ScheduleProfile::parse(text), shrunk.profile);
  EXPECT_EQ(ScheduleProfile::parse(text).serialize(), text);
}

}  // namespace
}  // namespace pqra::explore
