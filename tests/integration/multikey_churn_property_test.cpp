/// Mixed-key churn property suite (docs/SHARDING.md): 64 keys spread over
/// consistent-hash replica groups, four clients running a Zipf-skewed
/// get/put workload through ShardedStoreClient while servers churn and the
/// network drops/duplicates/reorders — and the recorded history must pass
/// the key-partitioned spec checkers ([R1] after horizon recovery, [R2],
/// [R4], single-writer per key), with every causal span tree staying
/// key-consistent (a tree never mixes keys, and every RPC lands inside the
/// key's replica group).
///
/// Each case is parameterized by its seed, which appears in the test name,
/// so a violation reproduces with one --gtest_filter invocation.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "core/keyspace/hash_ring.hpp"
#include "core/keyspace/sharded_store.hpp"
#include "core/server_process.hpp"
#include "core/spec/batch.hpp"
#include "core/spec/history.hpp"
#include "net/fault_plan.hpp"
#include "net/sim_transport.hpp"
#include "obs/span.hpp"
#include "quorum/probabilistic.hpp"
#include "sim/delay_model.hpp"
#include "sim/simulator.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace pqra {
namespace {

constexpr std::size_t kServers = 10;
constexpr std::size_t kReplicas = 3;
constexpr std::size_t kQuorum = 2;
constexpr std::size_t kClients = 4;
constexpr std::size_t kKeysPerClient = 16;  // 64 keys total
constexpr std::size_t kTotalKeys = kClients * kKeysPerClient;
constexpr std::size_t kOpsPerClient = 25;
constexpr double kHorizon = 60.0;

/// One client's seeded op sequence over the shared keyspace: puts on its
/// own keys (key = slot * clients + owner), Zipf-skewed gets on any key.
struct Driver {
  sim::Simulator* sim = nullptr;
  core::keyspace::ShardedStoreClient* client = nullptr;
  util::Rng rng;
  std::size_t remaining = 0;
  std::size_t own_index = 0;
  const util::Zipfian* zipf = nullptr;
  std::int64_t next_value = 0;
  std::size_t* completed = nullptr;

  void step() {
    if (remaining == 0) return;
    --remaining;
    sim->schedule_in(rng.uniform01() * 2.0, [this] { issue(); });
  }

  void issue() {
    if (rng.bernoulli(0.4)) {
      const auto slot = static_cast<std::size_t>(rng.below(kKeysPerClient));
      const auto key = static_cast<net::KeyId>(slot * kClients + own_index);
      client->put(key, util::encode(++next_value), [this](core::Timestamp) {
        ++*completed;
        step();
      });
    } else {
      const auto key = static_cast<net::KeyId>(zipf->draw(rng));
      client->get(key, [this](core::ReadResult) {
        ++*completed;
        step();
      });
    }
  }
};

struct RunResult {
  std::size_t completed = 0;
  core::spec::KeyedBatchResult batch;
};

RunResult run_workload(std::uint64_t seed, obs::SpanSink* sink,
                       const core::keyspace::HashRing& ring) {
  util::Rng master(seed);
  sim::Simulator sim;
  auto delay = sim::make_exponential_delay(1.0);
  net::SimTransport transport(sim, *delay, master.fork(10),
                              static_cast<net::NodeId>(kServers + kClients));

  std::deque<core::ServerProcess> servers;
  for (net::NodeId s = 0; s < static_cast<net::NodeId>(kServers); ++s) {
    servers.emplace_back(transport, s);
    if (sink != nullptr) servers.back().bind_spans(sink, sim);
  }

  // Preload each key on its replica group so reads before the first put
  // are well-defined for [R2].
  core::spec::HistoryRecorder history;
  std::vector<net::NodeId> group;
  for (std::size_t k = 0; k < kTotalKeys; ++k) {
    const auto key = static_cast<net::KeyId>(k);
    ring.replica_group(key, kReplicas, group);
    for (net::NodeId owner : group) {
      servers[owner].replica().preload(key, util::encode<std::int64_t>(0));
    }
    history.record_initial(key);
  }

  // Seeded churn plus message drop/duplicate/reorder — the fault mix the
  // property quantifies over.
  util::Rng churn_rng = master.fork(20);
  net::FaultPlan plan = net::FaultPlan::random_churn(
      kServers, kHorizon, /*mean_uptime=*/15.0, /*mean_downtime=*/5.0,
      churn_rng);
  net::MessageFaults faults;
  faults.drop_probability = 0.04;
  faults.duplicate_probability = 0.04;
  faults.reorder_probability = 0.12;
  faults.reorder_delay_max = 3.0;
  plan.with_message_faults(faults);

  quorum::ProbabilisticQuorums quorums(kReplicas, kQuorum);
  core::keyspace::ShardedStoreOptions sopts;
  sopts.client.monotone = true;
  sopts.client.retry.rpc_timeout = 6.0;  // no deadline: every op retries to
  sopts.client.retry.backoff_factor = 1.5;  // completion once the horizon
  sopts.client.retry.max_backoff = 24.0;    // heals, so [R1] is checkable
  sopts.client.retry.jitter = 0.1;
  sopts.client.spans = sink;

  const util::Zipfian zipf(kTotalKeys, 0.7);
  std::deque<core::keyspace::ShardedStoreClient> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back(sim, transport,
                         static_cast<net::NodeId>(kServers + i), ring, quorums,
                         master.fork(500 + i), sopts, &history);
  }

  plan.install(sim, transport);
  // Horizon recovery, after the plan so its events at the horizon fire
  // first: every fault clears and every retrying op completes.
  sim.schedule_at(kHorizon, [&transport] {
    net::FaultInjector& inj = transport.faults();
    for (net::NodeId s = 0; s < static_cast<net::NodeId>(kServers); ++s) {
      inj.recover(s);
      inj.clear_slow(s);
    }
    inj.heal();
    inj.set_message_faults(net::MessageFaults{});
  });

  RunResult result;
  std::deque<Driver> drivers;
  for (std::size_t i = 0; i < kClients; ++i) {
    Driver d;
    d.sim = &sim;
    d.client = &clients[i];
    d.rng = master.fork(900 + i);
    d.remaining = kOpsPerClient;
    d.own_index = i;
    d.zipf = &zipf;
    d.completed = &result.completed;
    drivers.push_back(d);
    drivers.back().step();
  }

  sim.run_until(kHorizon + 1000.0 + 60.0 * kOpsPerClient);

  core::spec::BatchOptions bo;
  bo.r4 = true;  // monotone clients
  result.batch = core::spec::check_batch_by_key(history.ops(), bo);
  return result;
}

class MultiKeyChurnProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MultiKeyChurnProperty, KeyPartitionedSpecHoldsUnderChurn) {
  const std::uint64_t seed = GetParam();
  core::keyspace::HashRing ring(8);
  for (net::NodeId s = 0; s < static_cast<net::NodeId>(kServers); ++s) {
    ring.add_node(s);
  }

  obs::SpanSink sink(obs::SpanSink::Options{seed, /*sample_period=*/1});
  const RunResult r = run_workload(seed, &sink, ring);

  ASSERT_EQ(r.completed, kClients * kOpsPerClient) << "seed " << seed;
  EXPECT_TRUE(r.batch.ok()) << "seed " << seed << "\n  "
                            << r.batch.summary();
  // Every key was checked (the preloaded initial guarantees presence).
  EXPECT_EQ(r.batch.keys_checked, kTotalKeys) << "seed " << seed;

  // Span trees stay key-consistent: no orphans or leaks, a tree never
  // mixes keys, and every RPC attempt lands inside the key's replica
  // group.
  EXPECT_NO_THROW(sink.check(/*require_closed=*/true)) << "seed " << seed;
  std::vector<net::NodeId> group;
  const std::vector<obs::SpanRecord>& spans = sink.spans();
  std::size_t rpc_attempts = 0;
  for (const obs::SpanRecord& rec : spans) {
    if (rec.parent != 0) {
      ASSERT_LT(rec.parent, rec.id);
      EXPECT_EQ(rec.reg, spans[rec.parent - 1].reg)
          << "seed " << seed << ": span tree mixes keys";
    }
    if (rec.kind == obs::SpanKind::kRpcAttempt) {
      ++rpc_attempts;
      ring.replica_group(rec.reg, kReplicas, group);
      EXPECT_NE(std::find(group.begin(), group.end(),
                          static_cast<net::NodeId>(rec.server)),
                group.end())
          << "seed " << seed << ": RPC for key " << rec.reg
          << " left its replica group (server " << rec.server << ")";
    }
  }
  EXPECT_GT(rpc_attempts, 0u) << "seed " << seed;
}

TEST(MultiKeyChurnTest, HistoryAndSpansAreReproducible) {
  core::keyspace::HashRing ring(8);
  for (net::NodeId s = 0; s < static_cast<net::NodeId>(kServers); ++s) {
    ring.add_node(s);
  }
  obs::SpanSink a(obs::SpanSink::Options{11, 1});
  obs::SpanSink b(obs::SpanSink::Options{11, 1});
  const RunResult ra = run_workload(11, &a, ring);
  const RunResult rb = run_workload(11, &b, ring);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(a.spans(), b.spans());
  EXPECT_GT(a.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiKeyChurnProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pqra
