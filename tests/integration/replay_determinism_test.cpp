#include <gtest/gtest.h>

#include <sstream>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "iter/alg1_des.hpp"
#include "net/fault_plan.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quorum/probabilistic.hpp"

/// Deterministic replay (ISSUE satellite): the same fault-plan + seed must
/// reproduce the execution byte for byte.  Two independent runs with
/// identical options each fill their own metrics registry and op-trace sink;
/// the exported JSON snapshots and JSONL traces must compare equal as
/// strings.  (The CLI-level twin of this test is cli_fault_replay in
/// tests/CMakeLists.txt, which diffs two experiment_cli metrics files.)

namespace pqra {
namespace {

struct RunArtifacts {
  std::string metrics_json;
  std::string trace_jsonl;
  iter::Alg1Result result;
};

RunArtifacts run_once(std::uint64_t seed) {
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(8, 3);

  net::FaultPlan plan = net::FaultPlan::parse(
      "outage:2@5-60; outage:5@40-120; slow:1*4@10; noslow:1@80; "
      "drop=0.03; dup=0.02; reorder=0.1:3");

  core::RetryPolicy retry;
  retry.rpc_timeout = 6.0;
  retry.backoff_factor = 1.5;
  retry.max_backoff = 20.0;
  retry.jitter = 0.1;

  obs::Registry registry(obs::Concurrency::kSingleThread);
  obs::OpTraceSink trace;
  iter::Alg1Options options;
  options.quorums = &qs;
  options.monotone = true;
  options.seed = seed;
  options.round_cap = 5000;
  options.fault_plan = &plan;
  options.retry = retry;
  options.max_sim_time = 50000.0;
  options.metrics = &registry;
  options.trace = &trace;

  RunArtifacts a;
  a.result = iter::run_alg1(op, options);
  std::ostringstream metrics_out;
  obs::write_json(registry, metrics_out);
  a.metrics_json = metrics_out.str();
  std::ostringstream trace_out;
  obs::write_jsonl(trace.events(), trace_out);
  a.trace_jsonl = trace_out.str();
  return a;
}

TEST(ReplayDeterminismTest, SameFaultPlanAndSeedGiveByteIdenticalArtifacts) {
  RunArtifacts first = run_once(42);
  RunArtifacts second = run_once(42);

  ASSERT_TRUE(first.result.converged);
  EXPECT_GT(first.result.retries, 0u) << "fault plan injected nothing";
  EXPECT_EQ(first.result.rounds, second.result.rounds);
  EXPECT_EQ(first.result.retries, second.result.retries);
  EXPECT_EQ(first.result.sim_time, second.result.sim_time);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);
  EXPECT_FALSE(first.metrics_json.empty());
  EXPECT_FALSE(first.trace_jsonl.empty());
}

TEST(ReplayDeterminismTest, DifferentSeedsActuallyDiverge) {
  // Guards the test above against vacuous equality (e.g. everything-empty
  // artifacts would also compare equal).
  RunArtifacts a = run_once(42);
  RunArtifacts b = run_once(43);
  EXPECT_NE(a.trace_jsonl, b.trace_jsonl);
}

}  // namespace
}  // namespace pqra
