#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "explore/profile.hpp"
#include "explore/runner.hpp"
#include "explore/shrink.hpp"

namespace pqra::explore {
namespace {

/// Non-monotone clients over tiny quorums on a wide cluster: reads go
/// backwards with near-certainty (the registered failure mode of
/// tests/core/register_des_test.cpp's NonMonotoneClientDoesGoBackwards).
/// check_monotone stays on, so the [R4] checker flags it — the stand-in for
/// a real monotone-cache regression.
ScheduleProfile non_monotone_profile() {
  ScheduleProfile p;
  p.seed = 1;
  p.num_servers = 30;
  p.quorum_size = 2;
  p.num_clients = 2;
  p.ops_per_client = 40;
  p.monotone = false;
  p.check_monotone = true;
  p.alg1 = false;
  p.delay = {sim::DelaySpec::Kind::kExponential, 1.0};
  p.horizon = 60.0;
  return p;
}

TEST(ExploreShrinkTest, NonMonotoneScheduleViolatesR4) {
  const RunOutcome out = run_profile(non_monotone_profile());
  ASSERT_TRUE(out.violation) << "expected a stale backwards read";
  EXPECT_EQ(out.rule, "R4") << out.detail;
  EXPECT_GT(out.ops_checked, 0u);
}

/// The flight recorder a --flightrec re-run binds to the transport must be
/// a pure observer: same fingerprint, events and outcome as the bare run,
/// with the message tail of the violating execution captured.
TEST(ExploreShrinkTest, FlightRecorderObservesWithoutPerturbing) {
  const ScheduleProfile p = non_monotone_profile();
  const RunOutcome bare = run_profile(p);
  ASSERT_TRUE(bare.violation);

  obs::FlightRecorder recorder(256);
  const RunOutcome observed = run_profile(p, &recorder);
  EXPECT_EQ(observed.fingerprint, bare.fingerprint);
  EXPECT_EQ(observed.events_processed, bare.events_processed);
  EXPECT_EQ(observed.violation, bare.violation);
  EXPECT_EQ(observed.rule, bare.rule);

  EXPECT_GT(recorder.recorded(), recorder.size());  // the ring wrapped
  EXPECT_EQ(recorder.size(), 256u);
  std::ostringstream dump;
  recorder.dump(dump);
  EXPECT_NE(dump.str().find("deliver"), std::string::npos);
}

TEST(ExploreShrinkTest, ShrinkerPreservesRuleAndNeverGrows) {
  const ScheduleProfile original = non_monotone_profile();
  const RunOutcome original_outcome = run_profile(original);
  ASSERT_TRUE(original_outcome.violation);

  const ShrinkResult shrunk = shrink(original, original_outcome,
                                     /*max_runs=*/300);
  // Still violating, same rule, and no longer than what we started with.
  EXPECT_TRUE(shrunk.outcome.violation);
  EXPECT_EQ(shrunk.outcome.rule, original_outcome.rule);
  EXPECT_LE(shrunk.profile.cost(), original.cost());
  // The shrinker had something to remove here (workload + horizon), so it
  // must actually have made progress, not just returned the input.
  EXPECT_GT(shrunk.stats.accepted, 0u);
  EXPECT_LT(shrunk.profile.cost(), original.cost());
  EXPECT_GE(shrunk.stats.attempts, shrunk.stats.accepted);

  // The minimal profile is what lands in a --replay file: it must survive
  // the serialization round-trip bit-identically.
  const std::string text = shrunk.profile.serialize();
  EXPECT_EQ(ScheduleProfile::parse(text), shrunk.profile);
  EXPECT_EQ(ScheduleProfile::parse(text).serialize(), text);
}

TEST(ExploreShrinkTest, ShrunkProfileReplaysByteIdentically) {
  const ScheduleProfile original = non_monotone_profile();
  const RunOutcome original_outcome = run_profile(original);
  ASSERT_TRUE(original_outcome.violation);
  const ShrinkResult shrunk = shrink(original, original_outcome,
                                     /*max_runs=*/300);

  const RunOutcome a = run_profile(shrunk.profile);
  const RunOutcome b = run_profile(shrunk.profile);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.ops_checked, b.ops_checked);
  EXPECT_EQ(a.rule, b.rule);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_TRUE(a.violation);
  EXPECT_EQ(a.rule, original_outcome.rule);
}

TEST(ExploreShrinkTest, GeneratedProfilesRoundTripAndReplay) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const ScheduleProfile p = ScheduleProfile::from_seed(seed);
    const std::string text = p.serialize();
    EXPECT_EQ(ScheduleProfile::parse(text), p) << text;
    EXPECT_EQ(ScheduleProfile::parse(text).serialize(), text) << text;
  }
  // Spot-check execution determinism on a few seeds (the full sweep is the
  // explore_smoke ctest).
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const ScheduleProfile p = ScheduleProfile::from_seed(seed);
    const RunOutcome a = run_profile(p);
    const RunOutcome b = run_profile(p);
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "seed " << seed;
    EXPECT_EQ(a.events_processed, b.events_processed) << "seed " << seed;
    EXPECT_EQ(a.rule, b.rule) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pqra::explore
