/// Property: span propagation survives faulty schedules.  Under a FaultPlan
/// that drops, duplicates and reorders messages while servers churn, a
/// workload whose operations all eventually settle must produce a span
/// forest with no orphans (every child's parent exists and precedes it),
/// no double-closes (the sink throws on those the moment they happen) and
/// no span left open once the last operation completes —
/// `SpanSink::check(/*require_closed=*/true)` is the whole theorem.
///
/// The workload mirrors tools/explore's direct-register scenario: finite
/// seeded op sequences, horizon recovery so churn cannot strand an op, and
/// a retry policy without a deadline so every operation retries to
/// completion.  (The Alg. 1 scenario would not do: it truncates at
/// convergence with ops legitimately in flight.)

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "core/quorum_register_client.hpp"
#include "core/server_process.hpp"
#include "net/fault_plan.hpp"
#include "net/sim_transport.hpp"
#include "obs/span.hpp"
#include "quorum/probabilistic.hpp"
#include "sim/delay_model.hpp"
#include "sim/simulator.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace pqra {
namespace {

constexpr std::size_t kServers = 8;
constexpr std::size_t kQuorum = 3;
constexpr std::size_t kClients = 2;
constexpr std::size_t kOpsPerClient = 12;
constexpr double kHorizon = 40.0;

/// One client's seeded op sequence, one op at a time.
struct Driver {
  sim::Simulator* sim = nullptr;
  core::QuorumRegisterClient* client = nullptr;
  util::Rng rng;
  std::size_t remaining = 0;
  core::RegisterId own_reg = 0;
  std::int64_t next_value = 0;
  std::size_t* completed = nullptr;

  void step() {
    if (remaining == 0) return;
    --remaining;
    sim->schedule_in(rng.uniform01() * 2.0, [this] { issue(); });
  }

  void issue() {
    if (rng.bernoulli(0.5)) {
      ++next_value;
      client->write(own_reg, util::encode(next_value),
                    [this](core::Timestamp) {
                      ++*completed;
                      step();
                    });
    } else {
      const auto reg = static_cast<core::RegisterId>(rng.below(kClients));
      client->read(reg, [this](core::ReadResult) {
        ++*completed;
        step();
      });
    }
  }
};

/// Runs the faulty workload against \p sink; returns ops completed.
std::size_t run_workload(std::uint64_t seed, obs::SpanSink& sink) {
  util::Rng master(seed);
  sim::Simulator sim;
  auto delay = sim::make_exponential_delay(1.0);
  net::SimTransport transport(
      sim, *delay, master.fork(10),
      static_cast<net::NodeId>(kServers + kClients));

  std::deque<core::ServerProcess> servers;
  for (net::NodeId s = 0; s < static_cast<net::NodeId>(kServers); ++s) {
    servers.emplace_back(transport, s);
    servers.back().bind_spans(&sink, sim);
  }

  // Seeded churn plus message-level drop/duplicate/reorder — the fault mix
  // the property quantifies over.
  util::Rng churn_rng = master.fork(20);
  net::FaultPlan plan = net::FaultPlan::random_churn(
      kServers, kHorizon, /*mean_uptime=*/15.0, /*mean_downtime=*/5.0,
      churn_rng);
  net::MessageFaults faults;
  faults.drop_probability = 0.05;
  faults.duplicate_probability = 0.05;
  faults.reorder_probability = 0.15;
  faults.reorder_delay_max = 3.0;
  plan.with_message_faults(faults);

  quorum::ProbabilisticQuorums quorums(kServers, kQuorum);
  core::ClientOptions options;
  options.monotone = true;
  options.retry.rpc_timeout = 6.0;  // retry without a deadline: ops always
  options.retry.backoff_factor = 1.5;  // settle once the horizon heals
  options.retry.max_backoff = 24.0;
  options.retry.jitter = 0.1;
  options.spans = &sink;

  std::deque<core::QuorumRegisterClient> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back(sim, transport,
                         static_cast<net::NodeId>(kServers + i), quorums,
                         /*server_base=*/0, master.fork(500 + i), options);
  }

  plan.install(sim, transport);
  // Horizon recovery, after the plan so its events at the horizon fire
  // first: every fault clears, so every retrying op completes.
  sim.schedule_at(kHorizon, [&transport] {
    net::FaultInjector& inj = transport.faults();
    for (net::NodeId s = 0; s < static_cast<net::NodeId>(kServers); ++s) {
      inj.recover(s);
      inj.clear_slow(s);
    }
    inj.heal();
    inj.set_message_faults(net::MessageFaults{});
  });

  std::size_t completed = 0;
  std::deque<Driver> drivers;
  for (std::size_t i = 0; i < kClients; ++i) {
    Driver d;
    d.sim = &sim;
    d.client = &clients[i];
    d.rng = master.fork(900 + i);
    d.remaining = kOpsPerClient;
    d.own_reg = static_cast<core::RegisterId>(i);
    d.completed = &completed;
    drivers.push_back(d);
    drivers.back().step();
  }

  sim.run_until(kHorizon + 1000.0 + 60.0 * kOpsPerClient);
  return completed;
}

TEST(SpanFaultPropertyTest, ChurnNeverOrphansOrLeaksSpans) {
  for (std::uint64_t seed : {1u, 7u, 23u, 91u, 402u}) {
    obs::SpanSink sink(obs::SpanSink::Options{seed, /*sample_period=*/1});
    const std::size_t completed = run_workload(seed, sink);
    ASSERT_EQ(completed, kClients * kOpsPerClient) << "seed " << seed;

    // The property: nothing orphaned, nothing open, nothing double-closed
    // (a double-close would already have thrown inside the run).
    EXPECT_NO_THROW(sink.check(/*require_closed=*/true)) << "seed " << seed;

    // Every completed operation has exactly one root span, and the tree
    // hangs together kind-wise even when replies were dropped/duplicated.
    std::size_t roots = 0;
    const std::vector<obs::SpanRecord>& spans = sink.spans();
    for (const obs::SpanRecord& rec : spans) {
      if (rec.kind == obs::SpanKind::kClientOp) {
        EXPECT_EQ(rec.parent, 0u);
        ++roots;
        continue;
      }
      ASSERT_GE(rec.parent, 1u);
      ASSERT_LT(rec.parent, rec.id);
      const obs::SpanRecord& parent = spans[rec.parent - 1];
      EXPECT_EQ(rec.trace, parent.trace) << "seed " << seed;
      if (rec.kind == obs::SpanKind::kServerHandle) {
        EXPECT_EQ(parent.kind, obs::SpanKind::kRpcAttempt);
      } else {
        EXPECT_EQ(parent.kind, obs::SpanKind::kClientOp);
      }
    }
    EXPECT_EQ(roots, kClients * kOpsPerClient) << "seed " << seed;
  }
}

TEST(SpanFaultPropertyTest, FaultySpanSetIsReproducible) {
  obs::SpanSink a(obs::SpanSink::Options{7, 1});
  obs::SpanSink b(obs::SpanSink::Options{7, 1});
  run_workload(7, a);
  run_workload(7, b);
  EXPECT_EQ(a.spans(), b.spans());
  EXPECT_GT(a.size(), 0u);
}

TEST(SpanFaultPropertyTest, SamplingOffRecordsNothingUnderFaults) {
  obs::SpanSink sink(obs::SpanSink::Options{7, /*sample_period=*/0});
  const std::size_t completed = run_workload(7, sink);
  EXPECT_EQ(completed, kClients * kOpsPerClient);
  EXPECT_EQ(sink.size(), 0u);
}

}  // namespace
}  // namespace pqra
