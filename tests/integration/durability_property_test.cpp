/// Crash-replay-compare property suite (docs/DURABILITY.md): seeded DES
/// schedules — single-key and multi-key, under churn, message faults and
/// injected storage faults — run with every server on a MemDisk-backed
/// DurableStore, and every recovery is cross-checked by the explore
/// runner's crash-replay-compare oracle against an independent replay of
/// the durable bytes.  The suite also pins the pre-durability fingerprints
/// of the first five explore seeds: with durability off (the from_seed
/// default), the durable layer must not perturb a single event — and with
/// durability ON but no storage faults, a run must stay byte-identical to
/// its non-durable twin (appends and checkpoints happen inside existing
/// events and draw nothing from the schedule's RNG streams).
///
/// Each property case is parameterized by its seed, which appears in the
/// test name, so a violation reproduces with one --gtest_filter invocation.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "explore/profile.hpp"
#include "explore/runner.hpp"
#include "net/fault_plan.hpp"
#include "util/rng.hpp"

namespace pqra::explore {
namespace {

/// A durable schedule under combined fault pressure: seeded server churn,
/// message drop/duplicate/reorder, a torn WAL sync and an fsync-loss
/// window.  Every churn recovery replays the durable prefix and is
/// verified by the oracle.
ScheduleProfile durable_churn_profile(std::uint64_t seed, bool multikey) {
  ScheduleProfile p;
  p.seed = seed;
  p.num_servers = 5;
  p.quorum_size = 2;
  p.num_clients = 3;
  p.ops_per_client = 30;
  p.delay = {sim::DelaySpec::Kind::kExponential, 1.0};
  p.horizon = 100.0;
  p.durable = true;
  p.snapshot_every = seed % 3 == 0 ? 0 : 8;  // cover both log regimes
  if (multikey) {
    p.keys_per_client = 4;
    p.key_skew = 0.6;
  }

  util::Rng churn_rng(seed ^ 0xD00DULL);
  p.faults = net::FaultPlan::random_churn(p.num_servers, p.horizon,
                                          /*mean_uptime=*/20.0,
                                          /*mean_downtime=*/8.0, churn_rng);
  p.faults.torn_write_at(30.0, 1);
  p.faults.fsync_loss_at(40.0, 2).clear_fsync_loss_at(55.0, 2);
  net::MessageFaults mf;
  mf.drop_probability = 0.02;
  mf.duplicate_probability = 0.02;
  mf.reorder_probability = 0.1;
  mf.reorder_delay_max = 2.0;
  p.faults.with_message_faults(mf);
  return p;
}

class DurabilityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DurabilityProperty, RecoveriesMatchTheDurablePrefixUnderChurn) {
  const std::uint64_t seed = GetParam();
  for (const bool multikey : {false, true}) {
    const ScheduleProfile p = durable_churn_profile(seed, multikey);
    const RunOutcome a = run_profile(p);
    EXPECT_FALSE(a.violation)
        << "seed " << seed << (multikey ? " multikey" : " single-key")
        << ": " << a.rule << " — " << a.detail;
    EXPECT_GT(a.ops_checked, 0u) << "seed " << seed;

    // Fingerprint reproducibility: the whole durable machinery (MemDisk
    // fault draws included) is a pure function of the profile.
    const RunOutcome b = run_profile(p);
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "seed " << seed;
    EXPECT_EQ(a.events_processed, b.events_processed) << "seed " << seed;
    EXPECT_EQ(a.ops_checked, b.ops_checked) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DurabilityProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param);
                         });

// The PR's acceptance bar, pinned: the first five explore seeds produce
// the exact fingerprints they produced before the durability layer
// existed.  If attaching the (disabled) durable path perturbs one event,
// these literals catch it.
TEST(DurabilityBaselineTest, PreDurabilityFingerprintsAreUnchanged) {
  struct Pin {
    std::uint64_t seed;
    std::uint64_t fingerprint;
    std::uint64_t events;
    std::uint64_t ops;
  };
  const Pin pins[] = {
      {0, 15431178167941431951ULL, 1454, 128},
      {1, 9556332026587393316ULL, 715, 93},
      {2, 12543841290810932016ULL, 13740, 52},
      {3, 9317799082449797467ULL, 181, 48},
      {4, 7740429695388118119ULL, 372, 37},
  };
  for (const Pin& pin : pins) {
    const ScheduleProfile p = ScheduleProfile::from_seed(pin.seed);
    ASSERT_FALSE(p.durable) << "seed " << pin.seed;
    const RunOutcome out = run_profile(p);
    EXPECT_FALSE(out.violation) << "seed " << pin.seed << ": " << out.detail;
    EXPECT_EQ(out.fingerprint, pin.fingerprint) << "seed " << pin.seed;
    EXPECT_EQ(out.events_processed, pin.events) << "seed " << pin.seed;
    EXPECT_EQ(out.ops_checked, pin.ops) << "seed " << pin.seed;
  }
}

// With durability ON but no storage faults, the durable layer adds zero
// simulator events and draws nothing: the run is byte-identical to its
// non-durable twin.  (Seeds 2–4 are direct-workload seeds; alg1 profiles
// don't take the durable layer.)
TEST(DurabilityBaselineTest, DurableTwinIsByteIdenticalWithoutStorageFaults) {
  for (const std::uint64_t seed : {2u, 3u, 4u}) {
    const ScheduleProfile p = ScheduleProfile::from_seed(seed);
    ASSERT_FALSE(p.alg1) << "seed " << seed;
    ScheduleProfile twin = p;
    twin.durable = true;
    twin.snapshot_every = 8;

    const RunOutcome plain = run_profile(p);
    const RunOutcome durable = run_profile(twin);
    EXPECT_EQ(plain.fingerprint, durable.fingerprint) << "seed " << seed;
    EXPECT_EQ(plain.events_processed, durable.events_processed)
        << "seed " << seed;
    EXPECT_EQ(plain.ops_checked, durable.ops_checked) << "seed " << seed;
    EXPECT_FALSE(durable.violation) << "seed " << seed << ": "
                                    << durable.detail;
  }
}

}  // namespace
}  // namespace pqra::explore
