/// Explore-layer coverage for the keyspace dimensions (docs/SHARDING.md +
/// docs/EXPLORATION.md): the keyspace knobs serialize/parse byte-identically
/// and default correctly on pre-sharding replay files, mutate_keyspace
/// reaches every knob, FaultPlan::mutate draws key-addressed targets when
/// given a keyspace, multi-key profiles replay deterministically, and — the
/// drill the seeded Replica cross-key bug exists for — the key-partitioned
/// [R2] checker catches cross-key contamination and the shrinker reduces it
/// to a minimal multi-key repro without losing the rule.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "explore/profile.hpp"
#include "explore/runner.hpp"
#include "explore/shrink.hpp"
#include "net/fault_plan.hpp"
#include "util/rng.hpp"

namespace pqra::explore {
namespace {

/// A small sharded multi-key schedule with the seeded cross-key probe bug
/// (Replica::set_test_cross_key_probe_bug) armed: reads of key k can leak
/// key k^1's newer entry, which the per-key [R2] checker must flag as a
/// never-written (or future) timestamp for k.
ScheduleProfile cross_key_bug_profile() {
  ScheduleProfile p;
  p.seed = 5;
  p.num_servers = 4;
  p.quorum_size = 2;
  p.num_clients = 2;
  p.ops_per_client = 40;
  p.keys_per_client = 2;  // keys {0, 1, 2, 3}: contamination pairs (0,1), (2,3)
  p.bug_cross_key = true;
  p.delay = {sim::DelaySpec::Kind::kExponential, 1.0};
  p.horizon = 120.0;
  return p;
}

TEST(ExploreMultiKeyTest, KeyspaceKnobsRoundTripByteIdentically) {
  bool saw_multikey = false;
  bool saw_skew = false;
  bool saw_contended = false;
  bool saw_sharded = false;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const ScheduleProfile p = ScheduleProfile::from_seed(seed);
    const std::string text = p.serialize();
    EXPECT_EQ(ScheduleProfile::parse(text), p) << text;
    EXPECT_EQ(ScheduleProfile::parse(text).serialize(), text) << text;
    saw_multikey |= p.keys_per_client > 1;
    saw_skew |= p.key_skew > 0.0;
    saw_contended |= p.writers_per_key > 1;
    saw_sharded |= p.replicas > 0;
    if (p.replicas > 0) {
      EXPECT_GE(p.replicas, p.quorum_size) << "seed " << seed;
      EXPECT_LE(p.replicas, p.num_servers) << "seed " << seed;
      EXPECT_FALSE(p.snapshot_reads) << "seed " << seed;
    }
    if (p.alg1) {
      // The iterative scenario owns its register layout: no keyspace draws.
      EXPECT_EQ(p.keys_per_client, 1u) << "seed " << seed;
      EXPECT_EQ(p.replicas, 0u) << "seed " << seed;
    }
    EXPECT_FALSE(p.bug_cross_key) << "seed " << seed
                                  << ": from_seed must never arm the bug";
  }
  // The generator actually explores the keyspace dimensions.
  EXPECT_TRUE(saw_multikey);
  EXPECT_TRUE(saw_skew);
  EXPECT_TRUE(saw_contended);
  EXPECT_TRUE(saw_sharded);
}

// Replay files written before the keyspace knobs existed carry none of the
// keyspace lines; they must parse to the legacy defaults (and thus replay
// the exact pre-sharding schedule).
TEST(ExploreMultiKeyTest, PreShardingProfileTextParsesToDefaultKeyspace) {
  ScheduleProfile p = ScheduleProfile::from_seed(3);
  p.keys_per_client = 1;
  p.key_skew = 0.0;
  p.writers_per_key = 1;
  p.replicas = 0;
  p.ring_vnodes = 8;
  p.bug_cross_key = false;

  std::istringstream in(p.serialize());
  std::ostringstream legacy;
  std::string line;
  while (std::getline(in, line)) {
    const std::string key = line.substr(0, line.find(' '));
    if (key == "keys" || key == "key-skew" || key == "writers-per-key" ||
        key == "replicas" || key == "vnodes" || key == "bug-cross-key") {
      continue;
    }
    legacy << line << "\n";
  }
  EXPECT_EQ(ScheduleProfile::parse(legacy.str()), p);
}

TEST(ExploreMultiKeyTest, MutateKeyspaceReachesEveryKnobAndStaysValid) {
  util::Rng rng(97);
  ScheduleProfile p = ScheduleProfile::from_seed(0);
  p.keys_per_client = 1;
  p.key_skew = 0.0;
  p.writers_per_key = 1;
  p.replicas = 0;
  p.ring_vnodes = 8;
  p.snapshot_reads = false;
  p.alg1 = false;

  bool moved_keys = false;
  bool moved_skew = false;
  bool moved_writers = false;
  bool moved_replicas = false;
  bool moved_vnodes = false;
  for (int i = 0; i < 400; ++i) {
    const ScheduleProfile before = p;
    p.mutate_keyspace(rng);
    moved_keys |= p.keys_per_client != before.keys_per_client;
    moved_skew |= p.key_skew != before.key_skew;
    moved_writers |= p.writers_per_key != before.writers_per_key;
    moved_replicas |= p.replicas != before.replicas;
    moved_vnodes |= p.ring_vnodes != before.ring_vnodes;

    // Every mutant is a valid profile: parse() revalidates the lot.
    ASSERT_GE(p.keys_per_client, 1u);
    ASSERT_LE(p.writers_per_key, p.num_clients);
    ASSERT_TRUE(p.key_skew >= 0.0 && p.key_skew < 1.0);
    if (p.replicas > 0) {
      ASSERT_GE(p.replicas, p.quorum_size);
      ASSERT_LE(p.replicas, p.num_servers);
      ASSERT_FALSE(p.snapshot_reads);
    }
    ASSERT_NO_THROW(ScheduleProfile::parse(p.serialize())) << p.serialize();
  }
  EXPECT_TRUE(moved_keys);
  EXPECT_TRUE(moved_skew);
  EXPECT_TRUE(moved_writers);
  EXPECT_TRUE(moved_replicas);
  EXPECT_TRUE(moved_vnodes);
}

// With num_keys > 0 the FaultPlan mutation operator draws key-addressed
// targets (`crash:k3@...`), which resolve to primaries and then install.
TEST(ExploreMultiKeyTest, FaultMutateDrawsKeyAddressedTargets) {
  util::Rng rng(31);
  net::FaultPlan plan;
  bool saw_key_target = false;
  for (int i = 0; i < 200 && !saw_key_target; ++i) {
    plan.mutate(/*num_servers=*/5, /*horizon=*/100.0, rng, /*num_keys=*/8);
    saw_key_target = plan.has_key_targets();
  }
  ASSERT_TRUE(saw_key_target)
      << "200 mutations with a keyspace never drew a key target";

  // Key-addressed plans round-trip through the grammar...
  const std::string text = plan.serialize();
  EXPECT_EQ(net::FaultPlan::parse(text), plan) << text;
  // ...and resolve to a pure node-addressed plan.
  const net::FaultPlan resolved = plan.resolve_keys(
      [](net::KeyId key) { return static_cast<net::NodeId>(key % 5); });
  EXPECT_FALSE(resolved.has_key_targets());
  EXPECT_EQ(resolved.events().size(), plan.events().size());

  // Without a keyspace, mutate never draws key targets (pre-sharding
  // call sites are draw-compatible).
  net::FaultPlan legacy;
  util::Rng legacy_rng(31);
  for (int i = 0; i < 200; ++i) {
    legacy.mutate(5, 100.0, legacy_rng);
    ASSERT_FALSE(legacy.has_key_targets());
  }
}

// The drill: arm the seeded cross-key contamination bug, catch it with the
// key-partitioned [R2] checker, and shrink the schedule without losing the
// rule.  This is the end-to-end proof that a real cross-key regression in
// the replica store would be found and minimized.
TEST(ExploreMultiKeyTest, CrossKeyContaminationIsCaughtAndShrunk) {
  const ScheduleProfile original = cross_key_bug_profile();
  const RunOutcome outcome = run_profile(original);
  ASSERT_TRUE(outcome.violation)
      << "the armed cross-key bug produced a clean run";
  EXPECT_EQ(outcome.rule, "R2") << outcome.detail;

  const ShrinkResult shrunk = shrink(original, outcome, /*max_runs=*/300);
  EXPECT_TRUE(shrunk.outcome.violation);
  EXPECT_EQ(shrunk.outcome.rule, outcome.rule);
  EXPECT_LE(shrunk.profile.cost(), original.cost());
  // Shrinking never disarms the bug (it is not a schedule dimension), and
  // the repro keeps at least one contamination pair to express it.
  EXPECT_TRUE(shrunk.profile.bug_cross_key);
  EXPECT_GE(shrunk.profile.num_keys(), 2u);
  EXPECT_LE(shrunk.profile.num_keys(), original.num_keys());

  // The minimal repro survives the replay-file round trip.
  const std::string text = shrunk.profile.serialize();
  EXPECT_EQ(ScheduleProfile::parse(text), shrunk.profile);
  EXPECT_EQ(ScheduleProfile::parse(text).serialize(), text);
}

TEST(ExploreMultiKeyTest, MultiKeyProfilesReplayByteIdentically) {
  ScheduleProfile p = ScheduleProfile::from_seed(12);
  p.alg1 = false;
  p.keys_per_client = 6;
  p.key_skew = 0.8;
  p.writers_per_key = p.num_clients >= 2 ? 2 : 1;
  p.replicas = std::min(p.num_servers, p.quorum_size + 1);
  p.ring_vnodes = 4;
  p.snapshot_reads = false;

  const RunOutcome a = run_profile(p);
  const RunOutcome b = run_profile(p);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.ops_checked, b.ops_checked);
  EXPECT_EQ(a.rule, b.rule);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_GT(a.ops_checked, 0u);
}

}  // namespace
}  // namespace pqra::explore
