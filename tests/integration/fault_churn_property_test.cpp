#include <gtest/gtest.h>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "core/spec/checker.hpp"
#include "core/spec/history.hpp"
#include "iter/alg1_des.hpp"
#include "net/fault_plan.hpp"
#include "quorum/probabilistic.hpp"

/// Seeded-churn property suite (ISSUE satellite): random crash/recover
/// schedules plus message drops/duplicates/reorders through the full DES
/// stack, with the recorded operation history replayed through the spec
/// checkers ([R2], [R4], single-writer; [R1]'s liveness shows up as
/// convergence).  Each case is parameterized by its seed and the seed
/// appears in the test name, so a violation reproduces with a single
/// --gtest_filter invocation.

namespace pqra {
namespace {

class FaultChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultChurnProperty, SpecHoldsUnderSeededChurnAndMessageFaults) {
  const std::uint64_t seed = GetParam();
  apps::Graph g = apps::make_chain(6);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(10, 3);

  util::Rng churn_rng(seed);
  net::FaultPlan plan =
      net::FaultPlan::random_churn(10, /*horizon=*/600.0, /*mean_uptime=*/50.0,
                                   /*mean_downtime=*/12.0, churn_rng);
  net::MessageFaults message;
  message.drop_probability = 0.03;
  message.duplicate_probability = 0.02;
  message.reorder_probability = 0.1;
  message.reorder_delay_max = 3.0;
  plan.with_message_faults(message);

  core::RetryPolicy retry;
  retry.rpc_timeout = 6.0;
  retry.backoff_factor = 1.5;
  retry.max_backoff = 20.0;
  retry.jitter = 0.1;
  // No deadline: every operation keeps retrying until it completes, so the
  // history has no failed ops, only (possibly) ones still in flight at the
  // end of the run.

  iter::Alg1Options options;
  options.quorums = &qs;
  options.monotone = true;
  options.seed = seed;
  options.round_cap = 5000;
  options.fault_plan = &plan;
  options.retry = retry;
  options.max_sim_time = 50000.0;
  // The history (unlike the op trace) records writes at invocation, so a
  // write that is still in flight when the run ends is visible to [R2] even
  // though reads may already have observed it.
  options.record_history = true;

  iter::Alg1Result r = iter::run_alg1(op, options);
  EXPECT_TRUE(r.converged) << "failing seed=" << seed;
  EXPECT_GT(r.retries, 0u) << "churn plan injected nothing; seed=" << seed;

  ASSERT_NE(r.history, nullptr);
  // The execution is truncated at convergence, so ops can legitimately still
  // be in flight at the end and [R1] (completeness) is not applicable; the
  // liveness it expresses is witnessed by r.converged above.  The safety
  // conditions hold on the truncated history as-is: check_r2 indexes
  // unresponded writes, so a read that observed an in-flight write still
  // finds its record.
  const auto& ops = r.history->ops();
  core::spec::CheckResult check = core::spec::check_r2(ops);
  for (core::spec::CheckResult part :
       {core::spec::check_single_writer(ops), core::spec::check_r4(ops)}) {
    if (!part.ok) {
      check.ok = false;
      check.violations.insert(check.violations.end(),
                              part.violations.begin(), part.violations.end());
    }
  }
  EXPECT_TRUE(check.ok) << "failing seed=" << seed << "\n  "
                        << (check.violations.empty()
                                ? std::string("(no detail)")
                                : check.violations.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultChurnProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pqra
