#include "sim/delay_model.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace pqra::sim {
namespace {

TEST(DelayModelTest, ConstantIsConstant) {
  auto d = make_constant_delay(1.5);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(d->sample(rng), 1.5);
}

TEST(DelayModelTest, ConstantRejectsNegative) {
  EXPECT_THROW(make_constant_delay(-1.0), std::logic_error);
}

TEST(DelayModelTest, ExponentialMeanAndPositivity) {
  auto d = make_exponential_delay(2.0);
  util::Rng rng(7);
  util::OnlineStats stats;
  for (int i = 0; i < 100000; ++i) {
    double s = d->sample(rng);
    EXPECT_GT(s, 0.0);
    stats.add(s);
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  // Exponential: stddev == mean.
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(DelayModelTest, UniformStaysInRange) {
  auto d = make_uniform_delay(0.5, 1.5);
  util::Rng rng(3);
  util::OnlineStats stats;
  for (int i = 0; i < 10000; ++i) {
    double s = d->sample(rng);
    EXPECT_GE(s, 0.5);
    EXPECT_LE(s, 1.5);
    stats.add(s);
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.02);
}

TEST(DelayModelTest, LognormalRespectsMinimum) {
  auto d = make_lognormal_delay(0.25, 0.0, 1.0);
  util::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(d->sample(rng), 0.25);
  }
}

TEST(DelayModelTest, DescribeNamesTheDistribution) {
  util::Rng rng(1);
  EXPECT_NE(make_constant_delay(1.0)->describe().find("constant"),
            std::string::npos);
  EXPECT_NE(make_exponential_delay(1.0)->describe().find("exponential"),
            std::string::npos);
  EXPECT_NE(make_uniform_delay(0, 1)->describe().find("uniform"),
            std::string::npos);
  EXPECT_NE(make_lognormal_delay(0, 0, 1)->describe().find("lognormal"),
            std::string::npos);
}

TEST(DelayModelTest, SamplingIsDeterministicGivenRngState) {
  auto d = make_exponential_delay(1.0);
  util::Rng a(11), b(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(d->sample(a), d->sample(b));
  }
}

}  // namespace
}  // namespace pqra::sim
