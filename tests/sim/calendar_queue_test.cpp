#include "sim/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace pqra::sim {
namespace {

EventFn noop(EventArena& arena) {
  return EventFn([] {}, arena);
}

/// Same-timestamp events must pop in seq order even when the run of equal
/// timestamps spans bucket-array reorganizations: the pushes interleave
/// spread-out timestamps (forcing grows and width retunes) with a block of
/// identical ones.
TEST(CalendarQueue, SameTimestampFifoAcrossBucketBoundaries) {
  EventQueue queue(QueueMode::kCalendar);
  EventArena arena;
  std::uint64_t seq = 0;
  for (int i = 0; i < 256; ++i) {
    queue.push(static_cast<Time>(i), seq++, EventTag::kGeneric, noop(arena));
  }
  // A same-timestamp block in the middle of the horizon, pushed after the
  // spread — by FIFO it must still come out in push order.
  std::vector<std::uint64_t> block_seqs;
  for (int i = 0; i < 64; ++i) {
    block_seqs.push_back(seq);
    queue.push(100.5, seq++, EventTag::kGeneric, noop(arena));
  }
  EXPECT_GT(queue.bucket_resizes(), 0u);

  Time last_t = -1.0;
  std::uint64_t last_seq = 0;
  std::vector<std::uint64_t> popped_block;
  while (!queue.empty()) {
    EventQueue::Item item = queue.pop();
    if (item.t == last_t) {
      EXPECT_GT(item.seq, last_seq);
    } else {
      EXPECT_GT(item.t, last_t);
    }
    if (item.t == 100.5) popped_block.push_back(item.seq);
    last_t = item.t;
    last_seq = item.seq;
  }
  EXPECT_EQ(popped_block, block_seqs);
}

/// An event firing at the queue's current cursor position may schedule new
/// work at the current time (same day) or earlier than the located minimum;
/// the calendar must honor both without missing events.
TEST(CalendarQueue, ScheduleDuringFireReentrancy) {
  Simulator sim{QueueMode::kCalendar};
  std::vector<int> order;
  sim.schedule_at(10.0, [&] {
    order.push_back(0);
    // Equal-time reentrant schedule: fires after this event, before 11.0.
    sim.schedule_at(10.0, [&] { order.push_back(1); });
    // Before the next located minimum (11.0) but after now.
    sim.schedule_at(10.5, [&] { order.push_back(2); });
  });
  sim.schedule_at(11.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 4u);
}

/// Events far beyond the calendar's day window land on the overflow list
/// and must drain back into buckets as the cursor advances.
TEST(CalendarQueue, FarFutureOverflowDrains) {
  EventQueue queue(QueueMode::kCalendar);
  EventArena arena;
  std::uint64_t seq = 0;
  // Near-term events establish a small day width...
  for (int i = 0; i < 128; ++i) {
    queue.push(static_cast<Time>(i) * 0.01, seq++, EventTag::kGeneric,
               noop(arena));
  }
  // ...then far-future events beyond any 128-bucket window of that width.
  std::vector<Time> far_times;
  for (int i = 0; i < 32; ++i) {
    Time t = 1e6 + static_cast<Time>(32 - i);  // pushed in reverse order
    far_times.push_back(t);
    queue.push(t, seq++, EventTag::kGeneric, noop(arena));
  }
  Time last = -1.0;
  std::size_t popped = 0;
  while (!queue.empty()) {
    EventQueue::Item item = queue.pop();
    EXPECT_GE(item.t, last);
    last = item.t;
    ++popped;
  }
  EXPECT_EQ(popped, 128u + 32u);
  EXPECT_EQ(last, 1e6 + 32.0);
}

TEST(CalendarQueue, ScheduleInThePastThrows) {
  Simulator sim{QueueMode::kCalendar};
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::logic_error);
}

TEST(CalendarQueue, BatchSeqOutsideReservationThrows) {
  Simulator sim{QueueMode::kCalendar};
  // seq 100 was never handed out by reserve_seqs().
  EXPECT_THROW(sim.schedule_batch(1.0, 100, EventTag::kGeneric, [] {}),
               std::logic_error);
}

/// The acceptance bar for the calendar queue: a randomized mixed workload
/// (uniform, bimodal and heavy-tail delays; bursts of equal timestamps;
/// interleaved pushes and pops) produces byte-identical pop sequences from
/// the calendar and the reference binary heap.
TEST(CalendarQueue, DifferentialVsHeapMillionOps) {
  EventQueue calendar(QueueMode::kCalendar);
  EventQueue heap(QueueMode::kHeap);
  EventArena arena_c;
  EventArena arena_h;
  util::Rng rng(20260807);

  constexpr std::size_t kOps = 1000000;
  std::uint64_t seq = 0;
  Time now = 0.0;  // both queues share one virtual clock (max popped t)
  std::size_t compared = 0;
  for (std::size_t i = 0; i < kOps; ++i) {
    const bool push = calendar.empty() || rng.uniform01() < 0.55;
    if (push) {
      double u = rng.uniform01();
      Time delay;
      if (u < 0.4) {
        delay = rng.uniform01();  // uniform mix
      } else if (u < 0.6) {
        delay = rng.uniform01() < 0.9 ? 0.125 : 64.0;  // two-point mix
      } else if (u < 0.8) {
        double e = rng.exponential(1.0);
        delay = e * e * e;  // heavy tail, exercises the overflow list
      } else {
        delay = 0.0;  // equal-timestamp burst
      }
      calendar.push(now + delay, seq, EventTag::kGeneric, noop(arena_c));
      heap.push(now + delay, seq, EventTag::kGeneric, noop(arena_h));
      ++seq;
    } else {
      EventQueue::Item a = calendar.pop();
      EventQueue::Item b = heap.pop();
      ASSERT_EQ(a.t, b.t) << "divergence at op " << i;
      ASSERT_EQ(a.seq, b.seq) << "divergence at op " << i;
      now = a.t;
      ++compared;
    }
  }
  while (!calendar.empty()) {
    ASSERT_FALSE(heap.empty());
    EventQueue::Item a = calendar.pop();
    EventQueue::Item b = heap.pop();
    ASSERT_EQ(a.t, b.t);
    ASSERT_EQ(a.seq, b.seq);
    ++compared;
  }
  EXPECT_TRUE(heap.empty());
  EXPECT_GT(compared, kOps / 3);
  EXPECT_GT(calendar.bucket_resizes(), 0u);
}

}  // namespace
}  // namespace pqra::sim
