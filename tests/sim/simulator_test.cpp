#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pqra::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(3.0, [&] { order.push_back(3); });
  sim.schedule_in(1.0, [&] { order.push_back(1); });
  sim.schedule_in(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_in(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_in(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(1.5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
}

TEST(SimulatorTest, ZeroDelaySelfSchedulingAtSameTime) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) sim.schedule_in(0.0, tick);
  };
  sim.schedule_in(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_in(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.run_until(5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulatorTest, RequestStopHaltsRun) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_in(static_cast<Time>(i + 1), [&] {
      if (++fired == 3) sim.request_stop();
    });
  }
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending_events(), 7u);
  sim.clear_stop();
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, CannotScheduleIntoThePast) {
  Simulator sim;
  sim.schedule_in(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), std::logic_error);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::logic_error);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_in(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_in(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

}  // namespace
}  // namespace pqra::sim
