/// \file event_fn_test.cpp
/// The storage contract of sim/event_fn.hpp: small captures live inline
/// (zero heap traffic), medium ones recycle arena blocks, oversize ones fall
/// back to the heap — and the tallies in EventArena::Stats prove it, both at
/// the EventFn level and end-to-end through Simulator::alloc_stats().

#include "sim/event_fn.hpp"

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace pqra::sim {
namespace {

TEST(EventFn, SmallCaptureStoresInlineAndInvokes) {
  EventArena arena;
  int hits = 0;
  EventFn fn([&hits] { ++hits; }, arena);
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(arena.stats().inline_events, 1u);
  EXPECT_EQ(arena.stats().arena_events, 0u);
  EXPECT_EQ(arena.stats().heap_allocations(), 0u);
}

TEST(EventFn, DefaultConstructedIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, MoveTransfersOwnershipForNonTrivialCapture) {
  EventArena arena;
  auto shared = std::make_shared<int>(0);
  EventFn a([shared] { ++*shared; }, arena);
  EXPECT_EQ(shared.use_count(), 2);

  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(shared.use_count(), 2) << "move must not duplicate the capture";
  b();
  EXPECT_EQ(*shared, 1);

  EventFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(*shared, 2);
}

TEST(EventFn, DestructionReleasesCapture) {
  EventArena arena;
  auto shared = std::make_shared<int>(0);
  {
    EventFn fn([shared] { ++*shared; }, arena);
    EXPECT_EQ(shared.use_count(), 2);
  }
  EXPECT_EQ(shared.use_count(), 1);
}

TEST(EventFn, MediumCaptureUsesArenaBlockAndRecycles) {
  EventArena arena;
  // > kInlineBytes, <= kBlockBytes: must take exactly one slab block.
  struct Medium {
    std::array<std::byte, EventFn::kInlineBytes + 8> payload{};
    int* counter = nullptr;
    void operator()() { ++*counter; }
  };
  static_assert(sizeof(Medium) > EventFn::kInlineBytes);
  static_assert(sizeof(Medium) <= EventArena::kBlockBytes);

  int hits = 0;
  {
    Medium m;
    m.counter = &hits;
    EventFn fn(m, arena);
    fn();
    EXPECT_EQ(arena.stats().arena_events, 1u);
    EXPECT_EQ(arena.stats().blocks_live, 1u);
    EXPECT_EQ(arena.stats().chunks_allocated, 1u);
  }
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(arena.stats().blocks_live, 0u) << "destruction must free the block";

  // The freed block is recycled: many sequential medium events never grow
  // the slab past its first chunk.
  for (int i = 0; i < 1000; ++i) {
    Medium m;
    m.counter = &hits;
    EventFn fn(m, arena);
    fn();
  }
  EXPECT_EQ(arena.stats().chunks_allocated, 1u)
      << "steady-state schedule/fire must not allocate";
  EXPECT_EQ(arena.stats().blocks_high_water, 1u);
  EXPECT_EQ(arena.stats().heap_allocations(), 1u);  // the one chunk
}

TEST(EventFn, OversizeCaptureFallsBackToHeapAndIsCounted) {
  EventArena arena;
  struct Huge {
    std::array<std::byte, EventArena::kBlockBytes + 1> payload{};
    int* counter = nullptr;
    void operator()() { ++*counter; }
  };
  int hits = 0;
  {
    Huge h;
    h.counter = &hits;
    EventFn fn(h, arena);
    fn();
  }
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(arena.stats().oversize_events, 1u);
  EXPECT_EQ(arena.stats().blocks_live, 0u);
}

TEST(EventFn, ExternalStorageMovesByPointerSwap) {
  EventArena arena;
  struct Medium {
    std::array<std::byte, EventFn::kInlineBytes + 8> payload{};
    int* counter = nullptr;
    void operator()() { ++*counter; }
  };
  int hits = 0;
  Medium m;
  m.counter = &hits;
  EventFn a(m, arena);
  EXPECT_EQ(arena.stats().blocks_live, 1u);
  EventFn b(std::move(a));
  EXPECT_EQ(arena.stats().blocks_live, 1u)
      << "relocating an external event must not touch the arena";
  b();
  EXPECT_EQ(hits, 1);
}

// End-to-end: a workload of typical simulator closures performs zero heap
// allocations on the event path.  This is the PR's headline claim, asserted
// against the arena tallies exposed through Simulator::alloc_stats().
TEST(SimulatorAllocation, ScheduleFireLoopIsAllocationFree) {
  Simulator simulator;
  std::uint64_t fired = 0;
  // A self-rescheduling closure comparable to a transport delivery: a couple
  // of pointers and some inline payload, well under kInlineBytes.
  struct Payload {
    std::uint64_t a = 0, b = 0, c = 0;
  };
  std::function<void()> tick;  // assembled once, captured by reference
  Payload payload;
  tick = [&] {
    ++fired;
    payload.a = fired;
    if (fired < 10000) simulator.schedule_in(1.0, [&] { tick(); });
  };
  simulator.schedule_at(0.0, [&] { tick(); });
  simulator.run();
  EXPECT_EQ(fired, 10000u);
  EXPECT_EQ(simulator.alloc_stats().heap_allocations(), 0u)
      << "every capture here fits inline; the event path must not allocate";
  EXPECT_EQ(simulator.alloc_stats().inline_events, 10000u);
}

TEST(SimulatorAllocation, StatsVisibleNextToQueueHighWater) {
  Simulator simulator;
  for (int i = 0; i < 8; ++i) {
    simulator.schedule_at(static_cast<Time>(i), [] {});
  }
  simulator.run();
  EXPECT_EQ(simulator.queue_high_water(), 8u);
  EXPECT_EQ(simulator.max_pending_events(), 8u);  // deprecated alias agrees
  EXPECT_EQ(simulator.alloc_stats().inline_events, 8u);
  EXPECT_EQ(simulator.alloc_stats().heap_allocations(), 0u);
}

}  // namespace
}  // namespace pqra::sim
