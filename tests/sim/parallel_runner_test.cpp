/// \file parallel_runner_test.cpp
/// sim::ParallelRunner: results come back in index order no matter the job
/// count or completion order, every index runs exactly once, errors are
/// reported deterministically (lowest failing index), and the pool is
/// reusable batch after batch.  Runs under TSan in CI (the workers and the
/// submitting thread share the batch state).

#include "sim/parallel_runner.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pqra::sim {
namespace {

TEST(ParallelRunner, MapReturnsResultsInIndexOrder) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ParallelRunner pool(jobs);
    std::vector<int> out = pool.map<int>(
        37, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 37u) << "jobs=" << jobs;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * i)) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelRunner, SlowItemsDoNotPerturbResultOrder) {
  ParallelRunner pool(4);
  // Early indices sleep, late ones finish instantly: completion order is
  // roughly reversed, result order must not be.
  std::vector<std::size_t> out =
      pool.map<std::size_t>(16, [](std::size_t i) {
        if (i < 4) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        return i;
      });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(out, expected);
}

TEST(ParallelRunner, EachIndexRunsExactlyOnce) {
  ParallelRunner pool(8);
  constexpr std::size_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_each_index(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelRunner, ZeroCountIsANoOp) {
  ParallelRunner pool(4);
  pool.for_each_index(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelRunner, ZeroJobsMeansHardwareDefault) {
  ParallelRunner pool(0);
  EXPECT_GE(pool.jobs(), 1u);
  EXPECT_EQ(pool.jobs(), default_jobs());
}

TEST(ParallelRunner, LowestFailingIndexWins) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    ParallelRunner pool(jobs);
    try {
      pool.for_each_index(64, [](std::size_t i) {
        if (i % 10 == 7) {  // 7, 17, 27, ... all fail
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 7") << "jobs=" << jobs;
    }
  }
}

TEST(ParallelRunner, PoolIsReusableAcrossBatches) {
  ParallelRunner pool(4);
  std::uint64_t total = 0;
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<std::uint64_t> out = pool.map<std::uint64_t>(
        25, [&](std::size_t i) { return static_cast<std::uint64_t>(i) + 1; });
    for (std::uint64_t v : out) total += v;
  }
  EXPECT_EQ(total, 20u * (25u * 26u / 2u));
}

TEST(ParallelRunner, BatchAfterFailureStillWorks) {
  ParallelRunner pool(4);
  EXPECT_THROW(pool.for_each_index(
                   8, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::vector<int> out = pool.map<int>(8, [](std::size_t i) {
    return static_cast<int>(i);
  });
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(out[7], 7);
}

TEST(ParallelRunner, WorkActuallyRunsConcurrently) {
  ParallelRunner pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  pool.for_each_index(8, [&](std::size_t) {
    int now = inside.fetch_add(1, std::memory_order_relaxed) + 1;
    int seen = peak.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    inside.fetch_sub(1, std::memory_order_relaxed);
  });
  // On a single-core host the scheduler may still serialise the sleeps, but
  // more than one worker must have been alive inside fn at some point.
  EXPECT_GE(peak.load(), 1);
  EXPECT_EQ(inside.load(), 0);
}

}  // namespace
}  // namespace pqra::sim
