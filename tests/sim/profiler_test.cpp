#include "sim/profiler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace pqra {
namespace {

TEST(ProfilerTest, AttributesFiresToTags) {
  sim::Profiler profiler;
  profiler.on_event(sim::EventTag::kMsgDeliver, 100, 0.5);
  profiler.on_event(sim::EventTag::kMsgDeliver, 300, 1.5);
  profiler.on_event(sim::EventTag::kRetryTimer, 50, 0.0);

  const sim::Profiler::TagStats& deliver =
      profiler.tag_stats(sim::EventTag::kMsgDeliver);
  EXPECT_EQ(deliver.fires, 2u);
  EXPECT_EQ(deliver.wall_ns, 400u);
  EXPECT_DOUBLE_EQ(deliver.sim_advance, 2.0);
  const sim::Profiler::TagStats& retry =
      profiler.tag_stats(sim::EventTag::kRetryTimer);
  EXPECT_EQ(retry.fires, 1u);
  EXPECT_EQ(profiler.tag_stats(sim::EventTag::kGossip).fires, 0u);
  EXPECT_EQ(profiler.total_fires(), 3u);
  EXPECT_EQ(profiler.total_wall_ns(), 450u);
}

TEST(ProfilerTest, TagNamesMatchEnumerators) {
  EXPECT_STREQ(sim::event_tag_name(sim::EventTag::kGeneric), "generic");
  EXPECT_STREQ(sim::event_tag_name(sim::EventTag::kMsgDeliver),
               "msg_deliver");
  EXPECT_STREQ(sim::event_tag_name(sim::EventTag::kProbe), "probe");
}

/// profiler.hpp promises its locally reimplemented histogram layout is
/// numerically identical to obs::Histogram's (sim cannot link obs).  Pin
/// bucket placement and bounds against the real thing.
TEST(ProfilerTest, HistogramLayoutMatchesObsHistogram) {
  for (std::size_t i = 0; i < sim::Profiler::kNumBuckets; ++i) {
    EXPECT_EQ(sim::Profiler::bucket_upper_bound(i),
              obs::Histogram::bucket_upper_bound(i))
        << "bucket " << i;
  }
  EXPECT_TRUE(std::isinf(
      sim::Profiler::bucket_upper_bound(sim::Profiler::kNumBuckets - 1)));

  // Feed identical samples through both; every bucket count must agree.
  // Samples straddle the whole range: subnormal-ish, fractional, integral,
  // huge, and the zero/negative clamp.
  const std::vector<double> samples = {0.0,    1e-9,  0.0001, 0.125, 0.5,
                                       0.9999, 1.0,   1.5,    2.0,   3.75,
                                       17.0,   1024.0, 123456.789, 1e12,
                                       1e30,   -4.0};
  sim::Profiler profiler;
  obs::Registry registry(obs::Concurrency::kSingleThread);
  obs::Histogram& hist = registry.histogram("test_profiler_equivalence");
  for (double s : samples) {
    profiler.on_event(sim::EventTag::kGeneric, 0, s);
    hist.observe(s);
  }
  for (std::size_t i = 0; i < sim::Profiler::kNumBuckets; ++i) {
    EXPECT_EQ(profiler.advance_bucket(i), hist.bucket_count(i))
        << "bucket " << i;
  }
}

TEST(ProfilerTest, WriteJsonEmitsTotalsAndTags) {
  sim::Profiler profiler;
  profiler.on_event(sim::EventTag::kMsgDeliver, 128, 1.0);
  profiler.on_event(sim::EventTag::kFault, 64, 4.0);
  std::ostringstream out;
  profiler.write_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"fires\": 2"), std::string::npos) << text;
  EXPECT_NE(text.find("\"msg_deliver\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"fault\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"wall_ns_per_fire\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"sim_advance_per_fire\""), std::string::npos) << text;
}

TEST(ProfilerSimulatorTest, TaggedSchedulingAttributesPerTag) {
  sim::Simulator simulator;
  sim::Profiler profiler;
  simulator.set_profiler(&profiler);
  ASSERT_EQ(simulator.profiler(), &profiler);

  int fired = 0;
  simulator.schedule_in(1.0, sim::EventTag::kMsgDeliver, [&] { ++fired; });
  simulator.schedule_in(2.0, sim::EventTag::kMsgDeliver, [&] { ++fired; });
  simulator.schedule_at(3.0, sim::EventTag::kGossip, [&] { ++fired; });
  simulator.schedule_in(4.0, [&] { ++fired; });  // untagged -> kGeneric
  simulator.run();

  EXPECT_EQ(fired, 4);
  EXPECT_EQ(profiler.total_fires(), 4u);
  EXPECT_EQ(profiler.tag_stats(sim::EventTag::kMsgDeliver).fires, 2u);
  EXPECT_EQ(profiler.tag_stats(sim::EventTag::kGossip).fires, 1u);
  EXPECT_EQ(profiler.tag_stats(sim::EventTag::kGeneric).fires, 1u);
  // Virtual-time advance is deterministic even though wall time is not:
  // fires advanced the clock 0->1->2->3->4.
  double advance = 0.0;
  for (std::size_t t = 0; t < sim::kNumEventTags; ++t) {
    advance += profiler.tag_stats(static_cast<sim::EventTag>(t)).sim_advance;
  }
  EXPECT_DOUBLE_EQ(advance, 4.0);
}

/// The profiler is a pure observer: attaching one must not change what the
/// simulation does, only record it.
TEST(ProfilerSimulatorTest, AttachingProfilerPreservesFingerprint) {
  auto run = [](sim::Profiler* profiler) {
    sim::Simulator simulator;
    if (profiler != nullptr) simulator.set_profiler(profiler);
    // A little event cascade with ties to exercise ordering.
    for (int i = 0; i < 8; ++i) {
      simulator.schedule_in(
          1.0 + i % 3, sim::EventTag::kWorkload, [&simulator, i] {
            simulator.schedule_in(0.5 * i, sim::EventTag::kMsgDeliver,
                                  [] {});
          });
    }
    simulator.run();
    return std::pair<std::uint64_t, std::uint64_t>(
        simulator.fingerprint(), simulator.events_processed());
  };
  sim::Profiler profiler;
  auto bare = run(nullptr);
  auto profiled = run(&profiler);
  EXPECT_EQ(bare, profiled);
  EXPECT_EQ(profiler.total_fires(), profiled.second);
}

}  // namespace
}  // namespace pqra
