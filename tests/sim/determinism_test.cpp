#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

/// Property tests: a simulation's event order is a pure function of the
/// seed, under randomized schedules including ties and nested scheduling.

namespace pqra::sim {
namespace {

/// Runs a randomized workload and records the firing order.
std::vector<int> run_workload(std::uint64_t seed) {
  Simulator sim;
  util::Rng rng(seed);
  std::vector<int> order;
  int next_id = 0;
  // Seed events; a third of them spawn follow-ups when they fire.
  std::function<void(int, int)> spawn = [&](int id, int depth) {
    order.push_back(id);
    if (depth > 0 && rng.bernoulli(0.4)) {
      // Quantized delays make timestamp ties frequent.
      double delay = static_cast<double>(rng.below(4));
      int child = ++next_id;
      sim.schedule_in(delay, [&spawn, child, depth] { spawn(child, depth - 1); });
    }
  };
  for (int i = 0; i < 50; ++i) {
    double t = static_cast<double>(rng.below(10));
    int id = ++next_id;
    sim.schedule_at(t, [&spawn, id] { spawn(id, 3); });
  }
  sim.run();
  return order;
}

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, IdenticalSeedsReplayIdentically) {
  auto a = run_workload(GetParam());
  auto b = run_workload(GetParam());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST_P(DeterminismSweep, DifferentSeedsDiverge) {
  auto a = run_workload(GetParam());
  auto b = run_workload(GetParam() + 1000003);
  EXPECT_NE(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

TEST(DeterminismTest, InterleavedRunUntilPreservesOrder) {
  // Driving the clock in arbitrary chunks must not change the event order.
  auto chunked = [](std::uint64_t seed, double step) {
    Simulator sim;
    util::Rng rng(seed);
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      double t = rng.uniform01() * 20.0;
      sim.schedule_at(t, [&order, i] { order.push_back(i); });
    }
    if (step <= 0) {
      sim.run();
    } else {
      for (double t = step; t < 25.0; t += step) sim.run_until(t);
      sim.run();
    }
    return order;
  };
  auto whole = chunked(7, 0.0);
  EXPECT_EQ(chunked(7, 0.3), whole);
  EXPECT_EQ(chunked(7, 1.7), whole);
  EXPECT_EQ(chunked(7, 11.0), whole);
}

}  // namespace
}  // namespace pqra::sim
