#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pqra::util {
namespace {

TEST(LogLevelTest, ParsesCanonicalNames) {
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
}

TEST(LogLevelTest, ParsesAliases) {
  EXPECT_EQ(parse_log_level("err"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::kInfo);
  // trace maps to the finest level we have.
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kDebug);
}

TEST(LogLevelTest, IsCaseInsensitive) {
  EXPECT_EQ(parse_log_level("ERROR"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("InFo"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("TRACE"), LogLevel::kDebug);
}

TEST(LogLevelTest, UnknownFallsBack) {
  EXPECT_EQ(parse_log_level("nope"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level(""), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("nope", LogLevel::kDebug), LogLevel::kDebug);
}

TEST(LogLevelTest, NamesRoundTrip) {
  for (LogLevel level : {LogLevel::kError, LogLevel::kWarn, LogLevel::kInfo,
                         LogLevel::kDebug}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

class LogSinkTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = log_level(); }

  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(saved_level_);
  }

  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LogSinkTest, SinkReceivesMessages) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  set_log_level(LogLevel::kInfo);
  PQRA_LOG_INFO("value is " << 42);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "value is 42");
}

TEST_F(LogSinkTest, LevelGateFiltersBeforeSink) {
  std::vector<std::string> captured;
  set_log_sink([&captured](LogLevel, const std::string& message) {
    captured.push_back(message);
  });
  set_log_level(LogLevel::kError);
  PQRA_LOG_DEBUG("suppressed");
  PQRA_LOG_WARN("also suppressed");
  PQRA_LOG_ERROR("kept");
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "kept");
}

TEST_F(LogSinkTest, NullSinkRestoresStderrPath) {
  set_log_sink(nullptr);
  // Nothing to assert beyond "does not crash": the default path writes to
  // stderr, which the harness leaves alone.
  set_log_level(LogLevel::kError);
  PQRA_LOG_ERROR("stderr path exercised");
}

}  // namespace
}  // namespace pqra::util
