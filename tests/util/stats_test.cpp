#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace pqra::util {
namespace {

TEST(OnlineStatsTest, EmptyIsZeroed) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(OnlineStatsTest, SingleSample) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, CiShrinksWithSamples) {
  OnlineStats small, big;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) big.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), big.ci95_halfwidth());
}

TEST(OnlineStatsTest, MergeMatchesSingleAccumulator) {
  OnlineStats a, b, whole;
  for (int i = 0; i < 10; ++i) {
    a.add(i * 1.5);
    whole.add(i * 1.5);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * -0.5 + 3.0);
    whole.add(i * -0.5 + 3.0);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStatsTest, MergeWithEmptySides) {
  OnlineStats empty, filled;
  filled.add(1.0);
  filled.add(3.0);
  OnlineStats target = filled;
  target.merge(empty);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  empty.merge(filled);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SummarizeTest, EmptyInput) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(SummarizeTest, BasicFields) {
  Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50.0), 7.0);
}

TEST(PercentileTest, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), std::logic_error);
  EXPECT_THROW(percentile({1.0}, 101.0), std::logic_error);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 4
  h.add(-3.0);   // clamped into bin 0
  h.add(100.0);  // clamped into bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(HistogramTest, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::logic_error);
  EXPECT_THROW(Histogram(0.5, 0.4, 3), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

TEST(HistogramTest, ExactBoundaries) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // lo lands in bin 0
  h.add(2.0);   // first interior edge opens bin 1
  h.add(10.0);  // hi (outside the half-open range) clamps into the last bin
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, ExtremeValuesClampWithoutOverflow) {
  // Far-out finite values and infinities used to scale to indices beyond
  // the integer range (an undefined cast); they must clamp like any other
  // out-of-range sample.
  Histogram h(0.0, 1.0, 4);
  h.add(1e308);
  h.add(-1e308);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(3), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, NanIsCountedNotBinned) {
  Histogram h(0.0, 1.0, 2);
  h.add(std::nan(""));
  h.add(0.25);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 0u);
}

TEST(HistogramTest, SingleBinTakesEverything) {
  Histogram h(-1.0, 1.0, 1);
  h.add(-50.0);
  h.add(0.0);
  h.add(50.0);
  EXPECT_EQ(h.bin_count(0), 3u);
}

}  // namespace
}  // namespace pqra::util
