#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pqra::util {
namespace {

TEST(ChooseTest, SmallExactValues) {
  EXPECT_DOUBLE_EQ(choose(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(choose(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(choose(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(choose(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(choose(10, 3), 120.0);
  EXPECT_DOUBLE_EQ(choose(34, 17), 2333606220.0);
}

TEST(ChooseTest, OutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(choose(3, 4), 0.0);
}

TEST(ChooseTest, LogChooseMatchesChoose) {
  for (std::uint64_t n = 1; n <= 40; ++n) {
    for (std::uint64_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(std::exp(log_choose(n, k)), choose(n, k),
                  1e-6 * choose(n, k) + 1e-9);
    }
  }
}

TEST(NonoverlapTest, MatchesBinomialRatio) {
  // C(n-k, k) / C(n, k) for values small enough to compute directly.
  for (std::uint64_t n : {4ULL, 10ULL, 34ULL}) {
    for (std::uint64_t k = 1; 2 * k <= n; ++k) {
      double expected = choose(n - k, k) / choose(n, k);
      EXPECT_NEAR(quorum_nonoverlap_probability(n, k), expected, 1e-12);
    }
  }
}

TEST(NonoverlapTest, ZeroWhenQuorumsMustIntersect) {
  EXPECT_DOUBLE_EQ(quorum_nonoverlap_probability(34, 18), 0.0);
  EXPECT_DOUBLE_EQ(quorum_nonoverlap_probability(10, 6), 0.0);
  EXPECT_DOUBLE_EQ(quorum_nonoverlap_probability(3, 2), 0.0);
}

TEST(NonoverlapTest, PaperCaseK1) {
  // n = 34, k = 1: two singletons are disjoint with probability 33/34.
  EXPECT_NEAR(quorum_nonoverlap_probability(34, 1), 33.0 / 34.0, 1e-12);
  EXPECT_NEAR(quorum_overlap_probability(34, 1), 1.0 / 34.0, 1e-12);
}

TEST(NonoverlapTest, DominatedByUpperBound) {
  // Prop. 3.2 of Malkhi et al.: C(n-k,k)/C(n,k) <= ((n-k)/n)^k.
  for (std::uint64_t n : {10ULL, 34ULL, 100ULL}) {
    for (std::uint64_t k = 1; k <= n; ++k) {
      EXPECT_LE(quorum_nonoverlap_probability(n, k),
                nonoverlap_upper_bound(n, k) + 1e-12)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(NonoverlapTest, DecreasesWithQuorumSize) {
  double prev = 1.0;
  for (std::uint64_t k = 1; k <= 17; ++k) {
    double p = quorum_nonoverlap_probability(34, k);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(NonoverlapTest, RejectsBadQuorumSize) {
  EXPECT_THROW(quorum_nonoverlap_probability(10, 0), std::logic_error);
  EXPECT_THROW(quorum_nonoverlap_probability(10, 11), std::logic_error);
}

TEST(Corollary7Test, PaperValueAtK1) {
  // n = 34, k = 1: bound is 1/(1 - (33/34)^1) = 34; times M = 6 gives the
  // paper's 204.
  EXPECT_NEAR(corollary7_rounds_per_pseudocycle(34, 1), 34.0, 1e-9);
  EXPECT_NEAR(6.0 * corollary7_rounds_per_pseudocycle(34, 1), 204.0, 1e-6);
}

TEST(Corollary7Test, ApproachesOneForLargeQuorums) {
  EXPECT_NEAR(corollary7_rounds_per_pseudocycle(34, 34), 1.0, 1e-12);
  EXPECT_LT(corollary7_rounds_per_pseudocycle(34, 17), 1.001);
}

TEST(Corollary7Test, MonotoneDecreasingInK) {
  double prev = 1e18;
  for (std::uint64_t k = 1; k <= 34; ++k) {
    double c = corollary7_rounds_per_pseudocycle(34, k);
    EXPECT_LE(c, prev);
    prev = c;
  }
}

TEST(Corollary7Test, SqrtNQuorumIsBetweenOneAndTwo) {
  // §6.4: 1 < c_n < 2 when k = sqrt(n).
  for (std::uint64_t n : {16ULL, 25ULL, 64ULL, 100ULL, 400ULL, 10000ULL}) {
    auto k = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(n)));
    double c = corollary7_rounds_per_pseudocycle(n, k);
    EXPECT_GT(c, 1.0) << n;
    EXPECT_LT(c, 2.0) << n;
  }
}

TEST(R3BoundTest, DecaysGeometrically) {
  double prev = 1.0;
  for (std::uint64_t l = 1; l <= 50; ++l) {
    double b = r3_survival_bound(34, 6, l);
    EXPECT_LE(b, prev + 1e-15);
    prev = b;
  }
  EXPECT_LT(r3_survival_bound(34, 6, 50), 1e-3);
}

TEST(R3BoundTest, ClampedToOne) {
  EXPECT_DOUBLE_EQ(r3_survival_bound(34, 6, 0), 1.0);
}

TEST(ExpectedReadsTest, InverseOfQ) {
  EXPECT_NEAR(expected_reads_until_overlap(34, 1), 34.0, 1e-9);
  EXPECT_NEAR(expected_reads_until_overlap(34, 17), 1.0, 1e-6);
}

TEST(IsPrimeTest, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_TRUE(is_prime(7));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(11));
  EXPECT_TRUE(is_prime(13));
  EXPECT_FALSE(is_prime(15));
  EXPECT_TRUE(is_prime(101));
  EXPECT_FALSE(is_prime(1001));
}

TEST(SaturatingAddTest, NormalAndInfinite) {
  EXPECT_EQ(saturating_add(2, 3), 5);
  EXPECT_EQ(saturating_add(kPathInf, 3), kPathInf);
  EXPECT_EQ(saturating_add(3, kPathInf), kPathInf);
  EXPECT_EQ(saturating_add(kPathInf, kPathInf), kPathInf);
  EXPECT_EQ(saturating_add(kPathInf - 1, kPathInf - 1), kPathInf);
}

}  // namespace
}  // namespace pqra::util
