#include "util/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace pqra::util {
namespace {

TEST(CodecTest, ScalarRoundTrip) {
  EXPECT_EQ(decode<std::int64_t>(encode<std::int64_t>(-42)), -42);
  EXPECT_EQ(decode<std::uint64_t>(encode<std::uint64_t>(~0ULL)), ~0ULL);
  EXPECT_DOUBLE_EQ(decode<double>(encode(3.14159)), 3.14159);
}

TEST(CodecTest, VectorRoundTrip) {
  std::vector<std::int64_t> v{1, -2, 3, 1LL << 60};
  EXPECT_EQ(decode<std::vector<std::int64_t>>(encode(v)), v);
}

TEST(CodecTest, EmptyVectorRoundTrip) {
  std::vector<std::int64_t> v;
  EXPECT_EQ(decode<std::vector<std::int64_t>>(encode(v)), v);
}

TEST(CodecTest, DoubleVectorRoundTrip) {
  std::vector<double> v{0.0, -1.5, 1e300};
  EXPECT_EQ(decode<std::vector<double>>(encode(v)), v);
}

TEST(CodecTest, StringRoundTrip) {
  std::string s = "hello quorum";
  EXPECT_EQ(decode<std::string>(encode(s)), s);
  EXPECT_EQ(decode<std::string>(encode(std::string{})), "");
}

TEST(CodecTest, TruncatedScalarThrows) {
  Bytes b = encode<std::int64_t>(7);
  b.pop_back();
  EXPECT_THROW(decode<std::int64_t>(b), std::logic_error);
}

TEST(CodecTest, TrailingBytesThrow) {
  Bytes b = encode<std::int64_t>(7);
  b.push_back(std::byte{0});
  EXPECT_THROW(decode<std::int64_t>(b), std::logic_error);
}

TEST(CodecTest, CorruptedVectorLengthThrows) {
  std::vector<std::int64_t> v{1, 2, 3};
  Bytes b = encode(v);
  b.pop_back();
  EXPECT_THROW(decode<std::vector<std::int64_t>>(b), std::logic_error);
}

TEST(CodecTest, EncodingIsDeterministic) {
  std::vector<std::int64_t> v{5, 6, 7};
  EXPECT_EQ(encode(v), encode(v));
}

}  // namespace
}  // namespace pqra::util
