#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace pqra::util {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkIsDeterministicAndDecorrelated) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c1_again = Rng(7).fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_EQ(c1(), c1_again());
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1() == c2()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkDoesNotPerturbParent) {
  Rng a(9);
  Rng b(9);
  (void)a.fork(5);
  EXPECT_EQ(a(), b());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000'007ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowRejectsZeroBound) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), std::logic_error);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 2.0, 0.05);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(0.5), 0.0);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, SampleWithoutReplacementBasicProperties) {
  Rng rng(29);
  for (std::uint32_t n : {1u, 5u, 34u, 100u}) {
    for (std::uint32_t k = 1; k <= n; k = k * 2 + 1) {
      auto sample = rng.sample_without_replacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<std::uint32_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k) << "duplicates in sample";
      for (std::uint32_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementRejectsOversample) {
  Rng rng(31);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::logic_error);
}

TEST(RngTest, SampleWithoutReplacementIsUniformOverElements) {
  // Each element of {0..9} should appear in a 3-subset with prob 3/10.
  Rng rng(37);
  constexpr int kDraws = 60000;
  std::vector<int> counts(10, 0);
  for (int i = 0; i < kDraws; ++i) {
    for (std::uint32_t v : rng.sample_without_replacement(10, 3)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.3, 0.02);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(SplitMixTest, KnownSequenceIsStable) {
  std::uint64_t s1 = 0, s2 = 0;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64(s1), splitmix64(s1));
}

}  // namespace
}  // namespace pqra::util
