# Negative test (driven by the lint_config_error ctest entry): a malformed
# config must make pqra_lint exit 2 — not 0 (silently unprotected) and not 1
# (mistaken for real findings) — with a file:line TOML diagnostic on stderr.
#
# Inputs: -DLINT=<pqra_lint binary> -DSRC_DIR=<tests/lint source dir>
#         -DWORK_DIR=<scratch dir>

if(NOT LINT OR NOT SRC_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR
    "lint_config_error.cmake needs -DLINT=... -DSRC_DIR=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(expect_config_error toml_text pattern)
  file(WRITE "${WORK_DIR}/bad.toml" "${toml_text}")
  execute_process(
    COMMAND "${LINT}" --config "${WORK_DIR}/bad.toml" fixtures/bad_rng.cpp
    WORKING_DIRECTORY "${SRC_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR
      "malformed config exited ${rc}, expected 2\nconfig:\n${toml_text}\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  if(NOT err MATCHES "${pattern}")
    message(FATAL_ERROR
      "stderr did not carry the expected file:line diagnostic\n"
      "config:\n${toml_text}\nwanted match: ${pattern}\nstderr:\n${err}")
  endif()
endfunction()

# Unknown rule name: the section header is line 2.
expect_config_error("# comment\n[rule.no-such-rule]\nallow = []\n"
                    "bad\\.toml:2: unknown rule")
# Unterminated array: the opening line is named.
expect_config_error("[lint]\nextensions = [\".cpp\"\n"
                    "bad\\.toml:2: ")
# Key outside any section.
expect_config_error("allow = []\n"
                    "bad\\.toml:1: ")
# Missing file entirely.
execute_process(
  COMMAND "${LINT}" --config "${WORK_DIR}/no_such_file.toml"
          fixtures/bad_rng.cpp
  WORKING_DIRECTORY "${SRC_DIR}"
  RESULT_VARIABLE rc
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "missing config exited ${rc}, expected 2\n${err}")
endif()
