# SARIF writer check (driven by the lint_sarif ctest entry): --sarif must
# produce structurally valid SARIF 2.1.0 — parseable JSON, the right schema
# and driver identity, one result per diagnostic, and every result's
# ruleId/ruleIndex resolving into the driver's rules array.  (CI additionally
# validates against the published 2.1.0 JSON schema; this test keeps the
# invariants enforced in dependency-free local builds.)
#
# Inputs: -DLINT=<pqra_lint binary> -DSRC_DIR=<tests/lint source dir>
#         -DWORK_DIR=<scratch dir>

if(NOT LINT OR NOT SRC_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR
    "lint_sarif.cmake needs -DLINT=... -DSRC_DIR=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(sarif "${WORK_DIR}/lint.sarif")

execute_process(
  COMMAND "${LINT}" --config fixtures/lint.toml --sarif "${sarif}" fixtures
  WORKING_DIRECTORY "${SRC_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "expected exit 1 over the fixture corpus, got ${rc}\n${out}\n${err}")
endif()
if(NOT out MATCHES "pqra_lint: ([0-9]+) violations")
  message(FATAL_ERROR "could not parse the violation count\n${out}")
endif()
set(expected_count "${CMAKE_MATCH_1}")

file(READ "${sarif}" doc)

# Top-level shape.
string(JSON version GET "${doc}" "version")
if(NOT version STREQUAL "2.1.0")
  message(FATAL_ERROR "SARIF version is '${version}', expected 2.1.0")
endif()
string(JSON schema GET "${doc}" "\$schema")
if(NOT schema MATCHES "sarif-2\\.1\\.0")
  message(FATAL_ERROR "\$schema does not name sarif-2.1.0: ${schema}")
endif()
string(JSON driver_name GET "${doc}" "runs" 0 "tool" "driver" "name")
if(NOT driver_name STREQUAL "pqra-lint")
  message(FATAL_ERROR "driver name is '${driver_name}', expected pqra-lint")
endif()

# Rules array: collect ids for the ruleIndex cross-check.
string(JSON nrules LENGTH "${doc}" "runs" 0 "tool" "driver" "rules")
set(rule_ids "")
math(EXPR last_rule "${nrules} - 1")
foreach(i RANGE ${last_rule})
  string(JSON id GET "${doc}" "runs" 0 "tool" "driver" "rules" ${i} "id")
  list(APPEND rule_ids "${id}")
endforeach()

# Results: count matches stdout, and each one is fully located.
string(JSON nresults LENGTH "${doc}" "runs" 0 "results")
if(NOT nresults EQUAL expected_count)
  message(FATAL_ERROR
    "SARIF has ${nresults} results but stdout reported ${expected_count}")
endif()
math(EXPR last_result "${nresults} - 1")
foreach(i RANGE ${last_result})
  string(JSON rule_id GET "${doc}" "runs" 0 "results" ${i} "ruleId")
  string(JSON rule_idx GET "${doc}" "runs" 0 "results" ${i} "ruleIndex")
  list(GET rule_ids ${rule_idx} indexed_id)
  if(NOT rule_id STREQUAL indexed_id)
    message(FATAL_ERROR
      "result ${i}: ruleId '${rule_id}' but ruleIndex ${rule_idx} points at "
      "'${indexed_id}'")
  endif()
  string(JSON msg GET "${doc}" "runs" 0 "results" ${i} "message" "text")
  if(msg STREQUAL "")
    message(FATAL_ERROR "result ${i} has an empty message")
  endif()
  string(JSON uri GET "${doc}" "runs" 0 "results" ${i} "locations" 0
         "physicalLocation" "artifactLocation" "uri")
  string(JSON line GET "${doc}" "runs" 0 "results" ${i} "locations" 0
         "physicalLocation" "region" "startLine")
  if(NOT uri MATCHES "^fixtures/" OR line LESS 1)
    message(FATAL_ERROR "result ${i} has a bad location: ${uri}:${line}")
  endif()
endforeach()
