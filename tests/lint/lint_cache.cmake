# Cache-correctness check (driven by the lint_cache ctest entry):
#   1. cold and warm runs over the same tree are byte-identical, and the
#      warm run leaves the cache file byte-identical too;
#   2. editing one file changes that file's diagnostics and nothing else
#      (a stale per-file cache entry would swallow the new diagnostic, a
#      spurious invalidation would reorder or re-derive the rest).
#
# Inputs: -DLINT=<pqra_lint binary> -DSRC_DIR=<tests/lint source dir>
#         -DWORK_DIR=<scratch dir>

if(NOT LINT OR NOT SRC_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR
    "lint_cache.cmake needs -DLINT=... -DSRC_DIR=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
file(COPY "${SRC_DIR}/fixtures" DESTINATION "${WORK_DIR}")

function(run_lint out_var)
  execute_process(
    COMMAND "${LINT}" --config fixtures/lint.toml --cache cache.txt fixtures
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "expected exit 1 (fixtures contain violations), got ${rc}\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Keeps only the diagnostic header lines ("path:line: [rule] ...") that do
# NOT belong to \p path — hint continuations and the trailing summary line
# are dropped — leaving the diagnostics of all *other* files.  (Hint text
# contains semicolons, so element-wise filtering of the raw output would be
# mangled by CMake's list splitting.)
function(strip_file_diags text path out_var)
  string(REPLACE ";" "<semi>" escaped "${text}")
  string(REPLACE "\n" ";" lines "${escaped}")
  set(kept "")
  foreach(line IN LISTS lines)
    if(line MATCHES "^[^ ].*:[0-9]+: \\[" AND NOT line MATCHES "^${path}:")
      list(APPEND kept "${line}")
    endif()
  endforeach()
  set(${out_var} "${kept}" PARENT_SCOPE)
endfunction()

run_lint(cold)
if(NOT EXISTS "${WORK_DIR}/cache.txt")
  message(FATAL_ERROR "cold run did not write cache.txt")
endif()
file(SHA256 "${WORK_DIR}/cache.txt" cache_cold)

run_lint(warm)
if(NOT warm STREQUAL cold)
  message(FATAL_ERROR
    "warm (cached) run diverged from the cold run\n--- cold ---\n${cold}\n"
    "--- warm ---\n${warm}")
endif()
file(SHA256 "${WORK_DIR}/cache.txt" cache_warm)
if(NOT cache_cold STREQUAL cache_warm)
  message(FATAL_ERROR "warm run rewrote the cache with different contents")
endif()

# Edit one file: a fresh violation must surface, everything else must stay.
file(APPEND "${WORK_DIR}/fixtures/bad_rng.cpp"
  "\nint extra_entropy() { return rand(); }\n")
run_lint(edited)
if(edited STREQUAL warm)
  message(FATAL_ERROR
    "editing bad_rng.cpp changed nothing — stale cache entry served")
endif()
if(NOT edited MATCHES "bad_rng\\.cpp:[0-9]+: \\[determinism-rng\\] libc RNG `rand\\(\\)`")
  message(FATAL_ERROR
    "the appended rand() call was not flagged after the edit\n${edited}")
endif()
strip_file_diags("${warm}" "fixtures/bad_rng.cpp" warm_rest)
strip_file_diags("${edited}" "fixtures/bad_rng.cpp" edited_rest)
if(NOT warm_rest STREQUAL edited_rest)
  message(FATAL_ERROR
    "editing bad_rng.cpp changed diagnostics of other files\n"
    "--- before ---\n${warm_rest}\n--- after ---\n${edited_rest}")
endif()
