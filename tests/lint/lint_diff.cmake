# Differential check (driven by the lint_diff ctest entry): the v2 analyzer
# run with the v1-shaped config (fixtures/lint_v1.toml — no [callgraph],
# taint rules allowlisted away) must reproduce every v1-era golden
# byte-for-byte.  Together with the per-fixture golden tests (which run the
# full v2 config) this pins the superset property: the new passes only add
# diagnostics, they never change or drop a v1 diagnostic.
#
# Inputs: -DLINT=<pqra_lint binary> -DSRC_DIR=<tests/lint source dir>

if(NOT LINT OR NOT SRC_DIR)
  message(FATAL_ERROR "lint_diff.cmake needs -DLINT=... -DSRC_DIR=...")
endif()

set(v1_fixtures
  bad_rng bad_clock bad_unordered bad_hotpath bad_explore bad_flightrec
  bad_metric bad_keyspace bad_calendar_queue escapes_ok allowlist_ok)

foreach(fixture IN LISTS v1_fixtures)
  execute_process(
    COMMAND "${LINT}" --config fixtures/lint_v1.toml
            "fixtures/${fixture}.cpp"
    WORKING_DIRECTORY "${SRC_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  file(READ "${SRC_DIR}/golden/${fixture}.txt" expected)
  if(NOT out STREQUAL expected)
    message(FATAL_ERROR
      "v1-config run on ${fixture}.cpp diverged from the v1 golden — the "
      "v2 analyzer changed or dropped a v1 diagnostic.\n--- expected ---\n"
      "${expected}\n--- actual ---\n${out}\nstderr:\n${err}")
  endif()
endforeach()
