// Fixture header: declares an unordered member that bad_unordered.cpp
// iterates, exercising the cross-file (direct-include) member lookup.
#pragma once
#include <string>
#include <unordered_map>

struct Store {
  void emit() const;
  std::unordered_map<int, std::string> entries_;
};
