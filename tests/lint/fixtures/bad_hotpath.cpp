// Fixture: DES hot-path hygiene violations (the fixture config puts
// fixtures/ in hot-path scope the way .pqra-lint.toml puts src/sim/ there).
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

struct Event {
  std::function<void()> fn;           // heap-allocating callable storage
};

void schedule(Event& e) {
  auto* leaked = new Event();         // raw allocation in event code
  auto owned = std::make_unique<Event>();
  std::mutex m;                       // blocking primitive in DES code
  std::lock_guard<std::mutex> lock(m);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  e.fn = [leaked, &owned] { (void)leaked; (void)owned; };
}

struct Arena {
  // The sanctioned forms never trip the rule: placement new targets arena
  // storage, and operator new is the arena's own counted fallback.
  void* grow(std::size_t bytes) { return ::operator new(bytes); }
  template <typename T>
  T* construct(void* at) {
    return ::new (at) T();
  }
};
