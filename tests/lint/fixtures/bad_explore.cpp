// Fixture: a schedule-exploration runner written the *wrong* way.  The
// fuzzer's per-run code (tools/explore/runner.*) sits inside hot-path lint
// scope in the real .pqra-lint.toml — thousands of simulations per fuzzing
// minute make it event-path code — and it must draw every random bit from
// util::Rng so a repro file replays byte-identically.
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <functional>
#include <memory>
#include <random>

struct Profile {
  unsigned seed;
};

struct Runner {
  std::mt19937 engine;                // unsanctioned generator: replay breaks
  std::function<void()> on_violation; // heap-allocating callable storage
};

void fuzz_one(Runner& r, Profile& p) {
  std::random_device entropy;         // nondeterministic seed source
  p.seed = entropy();
  auto driver = std::make_shared<Runner>();  // allocation per fuzz run
  driver->engine.seed(p.seed);
  r.on_violation = [driver] { (void)driver; };
}
