// Fixture: a naive multi-key store written the way core/keyspace must NOT
// be (docs/SHARDING.md).  The real layer keeps replica state in a
// deterministic FlatTable and ring lookups allocation-free; this version
// hashes into std::unordered_map and leaks its iteration order into the
// serialized snapshot, heap-allocates per lookup, and stores callbacks in
// std::function — all inside hot-path scope.
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

struct Entry {
  std::uint64_t ts = 0;
  std::function<void(std::uint64_t)> on_update;  // per-key callable storage
};

struct NaiveStore {
  std::unordered_map<std::uint32_t, Entry> table;

  Entry* lookup(std::uint32_t key) {
    auto it = table.find(key);
    if (it == table.end()) {
      auto* fresh = new Entry();  // per-miss allocation in event code
      (void)fresh;
      return nullptr;
    }
    return &it->second;
  }

  // Hash order reaches bytes: two replicas with the same contents can
  // serialize different snapshots.
  std::string snapshot() const {
    std::string out;
    for (const auto& [key, entry] : table) {
      out += std::to_string(key) + ":" + std::to_string(entry.ts) + ";";
    }
    return out;
  }
};
