// Fixture: hash-order iteration the unordered-iter rule must reject.
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include "unordered_member.hpp"

#include <map>
#include <unordered_set>
#include <vector>

void Store::emit() const {
  for (const auto& [k, v] : entries_) {  // member declared in the header
    (void)k;
    (void)v;
  }
}

int local_iteration() {
  std::unordered_set<int> seen;
  seen.insert(3);
  int sum = 0;
  for (int v : seen) sum += v;            // range-for over a local
  auto it = seen.begin();                 // explicit iterator walk
  sum += *it;
  // Ordered containers never trip the rule.
  std::map<int, int> sorted;
  for (const auto& [k, v] : sorted) sum += k + v;
  return sum;
}
