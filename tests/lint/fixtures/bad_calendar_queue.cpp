// Fixture: a calendar-queue implementation written the way the lint must
// forbid — heap-allocating buckets per push, std::function items, and a
// wall clock feeding the day-width estimate.  The real queue
// (src/sim/calendar_queue.*) sits in hot-path scope exactly like this file
// does under the fixture config.  Never compiled — linted only.
#include <chrono>
#include <functional>
#include <vector>

struct BadItem {
  double t = 0.0;
  std::function<void()> fn;  // heap-allocating callable storage per event
};

struct BadCalendarQueue {
  std::vector<BadItem*> buckets;

  void push(double t, std::function<void()> fn) {
    auto* item = new BadItem{t, fn};  // per-push allocation in event code
    buckets.push_back(item);
  }

  double tune_width() {
    // Identity-revealing wall clock in the width estimate: two runs of the
    // same seed would build different calendars.
    auto now = std::chrono::system_clock::now();
    return static_cast<double>(now.time_since_epoch().count() % 1024);
  }
};
