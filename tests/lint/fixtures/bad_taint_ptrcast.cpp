// Fixture: pointer-identity nondeterminism (ASLR) flowing into metrics,
// stdout and ostream sinks.  The taint pass must flag each source form:
// reinterpret_cast to integer, %p formatting, and void* stream insertion.
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <cstdint>
#include <cstdio>
#include <iostream>

struct Node {
  int id;
};

namespace obs {
void emit(const char* name, std::uint64_t value);
}  // namespace obs

// reinterpret_cast to integer: the address becomes a metric value.
void count_node(const Node* n) {
  std::uint64_t key = reinterpret_cast<std::uint64_t>(n);
  obs::emit("node_touch", key);
}

// %p formatting prints the raw address.
void log_node(const Node* n) {
  std::printf("node at %p\n", static_cast<const void*>(n));
}

// void* stream insertion.
void trace_node(std::ostream& os, const Node* n) {
  os << "node@" << static_cast<const void*>(n) << "\n";
}

// Stable-id indirection is the sanctioned fix; this escape documents a
// debugging-only pointer print kept on purpose, so it must NOT be flagged.
void debug_node(const Node* n) {
  // pqra-lint: allow(taint-ptr-identity) — debug aid, never in replay output
  std::printf("dbg %p\n", static_cast<const void*>(n));
}
