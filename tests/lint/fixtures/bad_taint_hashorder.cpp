// Fixture: hash-iteration-order nondeterminism flowing into replay-critical
// sinks.  The taint pass must name the full source -> sink chain, including
// one-call-depth propagation through a return value.
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

std::uint64_t fnv1a(std::uint64_t h, int v);
void encode(std::size_t v, std::vector<unsigned char>& out);

// Direct chain: iteration order of an unordered container folds into a
// fingerprint through the loop variable.
std::uint64_t digest() {
  std::unordered_map<int, int> table;
  std::uint64_t fp = 1469598103934665603ull;
  for (const auto& kv : table) {
    fp = fnv1a(fp, kv.second);
  }
  return fp;
}

// One call-depth: digest()'s return taint reaches this ostream sink.
void publish_digest() {
  std::cout << "digest=" << digest() << "\n";
}

// std::hash is salted per process: its value must never reach encoded bytes.
void key_bytes(const std::string& key, std::vector<unsigned char>& out) {
  std::size_t h = std::hash<std::string>{}(key);
  encode(h, out);
}

// Sanctioned fix: a sorted snapshot severs the order dependence, so the
// fingerprint below must NOT be flagged by the taint pass.
std::uint64_t digest_sorted() {
  std::unordered_map<int, int> table;
  std::vector<int> keys;
  for (const auto& kv : table) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  std::uint64_t fp = 1469598103934665603ull;
  for (int k : keys) fp = fnv1a(fp, k);
  return fp;
}
