// Fixture: this file appears on determinism-rng's allow list in lint.toml
// (the way src/util/rng.* is allowlisted in the real config), so its raw
// engine must not be reported.  Its clock use is NOT allowlisted and the
// golden expects exactly that one diagnostic.
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <ctime>
#include <random>

long allowlisted_engine() {
  std::mt19937 gen(7);            // allowlisted: not reported
  return static_cast<long>(gen()) + time(nullptr);  // still reported
}
