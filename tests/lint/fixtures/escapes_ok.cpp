// Fixture: inline escapes silence a diagnostic on their own line and the
// line below — this file must lint clean despite containing violations.
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <cstdlib>
#include <unordered_map>

int escaped_rng() {
  return rand();  // pqra-lint: allow(determinism-rng)
}

int escaped_next_line() {
  // pqra-lint: allow(determinism-rng) — next-line form, with justification
  return rand();
}

int escaped_multiple() {
  std::unordered_map<int, int> m{{1, 2}};
  int sum = 0;
  // pqra-lint: allow(unordered-iter, determinism-rng) — commutative fold
  for (const auto& [k, v] : m) sum += k + v + rand();
  return sum;
}
