// Fixture: wall-clock reads the determinism-clock rule must reject.
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <chrono>
#include <ctime>

long bad_clock() {
  auto wall = std::chrono::system_clock::now();   // identity-revealing clock
  std::time_t t = time(nullptr);                  // libc wall clock
  // steady_clock is fine: monotonic, used for threaded-runtime timeouts.
  auto mono = std::chrono::steady_clock::now();
  return static_cast<long>(t) + wall.time_since_epoch().count() +
         mono.time_since_epoch().count();
}
