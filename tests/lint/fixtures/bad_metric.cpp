// Fixture: metric-name literals outside src/obs/names.hpp (string drift
// between emitters, exporters and dashboards).
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <string>

std::string bad_metric() {
  std::string name = "pqra_client_reads_total";   // must come from names.hpp
  std::string hist = "pqra_client_read_latency";
  // Non-name-shaped strings that merely mention the prefix are fine:
  std::string prose = "pqra_… metrics are documented in OBSERVABILITY.md";
  return name + hist + prose;
}
