// Fixture: a naive flight recorder that breaks every hot-path rule the
// real obs::FlightRecorder is designed around — per-record heap
// allocation, a std::function drain callback, a "thread safety" mutex in
// single-threaded DES code and wall-clock timestamps.  Never compiled —
// linted only (tests/lint/lint_golden.cmake).
#include <chrono>
#include <functional>
#include <mutex>

struct Record {
  double wall = 0.0;
  Record* next = nullptr;
};

struct BadFlightRecorder {
  std::function<void(const Record&)> on_record;  // heap-allocating callable
  Record* head = nullptr;
  std::mutex guard;                              // DES code is single-threaded

  void record() {
    std::lock_guard<std::mutex> lock(guard);
    auto* rec = new Record();                    // allocation per record
    rec->wall = static_cast<double>(
        std::chrono::system_clock::now().time_since_epoch().count());
    rec->next = head;
    head = rec;
    if (on_record) on_record(*rec);
  }
};
