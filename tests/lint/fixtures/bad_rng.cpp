// Fixture: every construct the determinism-rng rule must reject.
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <cstdlib>
#include <random>

int bad_rng() {
  std::random_device rd;            // seeding from hardware entropy
  std::mt19937 gen(rd());           // raw standard-library engine
  std::mt19937_64 gen64(1234);      // 64-bit variant
  srand(42);                        // libc seeding
  int x = rand();                   // libc draw
  return static_cast<int>(gen() + gen64()) + x;
}

struct Sampler {
  // Member access spelled like the banned call is legal: only free calls
  // count, so a class may expose its own rand() without tripping the rule.
  int rand() const { return 4; }
};

int ok_member_call(const Sampler& s) { return s.rand(); }
