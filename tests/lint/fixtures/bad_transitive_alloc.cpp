// Fixture: hot-path violations OUTSIDE the lexically configured hot-path
// files, caught only by the call-graph reachability pass.  fire_loop is a
// [callgraph] root in fixtures/lint.toml; everything it reaches is
// DES-reachable and the diagnostics must pin the full call chain.
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>

struct Message {
  int payload;
};

// Bottom of the chain: the violations live three hops from the root.
Message* fresh_message() {
  return new Message();
}

std::unique_ptr<Message> owned_message() {
  return std::make_unique<Message>();
}

void wait_for_io() {
  std::mutex gate;
  std::lock_guard lock(gate);
}

// Middle layers.
void dispatch(int n) {
  for (int i = 0; i < n; ++i) {
    Message* m = fresh_message();
    auto o = owned_message();
    (void)m;
    (void)o;
  }
  wait_for_io();
}

// A reachable class: a std::function member counts against every path that
// reaches any of the class's member functions.
struct Callbacks {
  std::function<void(Message*)> on_deliver;
  void run() { on_deliver(fresh_message()); }
};

void pump(Callbacks& cb) { cb.run(); }

void tick(int n) {
  dispatch(n);
  Callbacks cb;
  pump(cb);
}

// Root: named in the fixture config's [callgraph] roots.
void fire_loop() { tick(8); }

// NOT reachable from fire_loop: the reachability pass must stay silent here
// even though the allocation is identical to fresh_message's.
void offline_tool() {
  Message* scratch = new Message();
  (void)scratch;
}
