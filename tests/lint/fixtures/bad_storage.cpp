// Fixture: storage-backend hot-path hygiene violations (the fixture config
// puts this file in hot-path scope the way .pqra-lint.toml puts the
// MemDisk/DurableStore apply path there: WAL appends run inside DES
// events, so they must not allocate, block, or store heap callables).
// Never compiled — linted only (tests/lint/lint_golden.cmake).
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

struct WalRecord {
  std::vector<unsigned char> payload;
  std::function<void()> on_durable;   // heap-allocating callable per record
};

struct BadDisk {
  std::vector<unsigned char> log;
  std::mutex sync_mutex;              // blocking primitive in DES storage

  void append(const WalRecord& record) {
    auto* staged = new WalRecord(record);  // raw allocation per append
    auto scratch = std::make_unique<std::vector<unsigned char>>();
    (void)scratch;
    log.insert(log.end(), staged->payload.begin(), staged->payload.end());
  }

  void sync() {
    std::lock_guard<std::mutex> lock(sync_mutex);
    // Simulated fsync latency: wall-clock sleep inside an event handler.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
};
