# Golden-file check for pqra_lint (driven by the lint_golden_* ctest
# entries): lint one known-bad fixture and require the diagnostics to match
# the expected output byte-for-byte, and the exit status to match.
#
# Inputs: -DLINT=<pqra_lint binary> -DFIXTURE=<name, e.g. bad_rng>
#         -DSRC_DIR=<tests/lint source dir> -DEXPECT_RC=<0 or 1>

if(NOT LINT OR NOT FIXTURE OR NOT SRC_DIR OR NOT DEFINED EXPECT_RC)
  message(FATAL_ERROR
    "lint_golden.cmake needs -DLINT=... -DFIXTURE=... -DSRC_DIR=... "
    "-DEXPECT_RC=...")
endif()

execute_process(
  COMMAND "${LINT}" --config fixtures/lint.toml "fixtures/${FIXTURE}.cpp"
  WORKING_DIRECTORY "${SRC_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc EQUAL EXPECT_RC)
  message(FATAL_ERROR
    "pqra_lint on ${FIXTURE}.cpp exited ${rc}, expected ${EXPECT_RC}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()

file(READ "${SRC_DIR}/golden/${FIXTURE}.txt" expected)
if(NOT out STREQUAL expected)
  message(FATAL_ERROR
    "pqra_lint diagnostics for ${FIXTURE}.cpp diverged from the golden "
    "(tests/lint/golden/${FIXTURE}.txt).\n--- expected ---\n${expected}\n"
    "--- actual ---\n${out}")
endif()
