#include "core/spec/probabilistic_checks.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"

namespace pqra::core::spec {
namespace {

TEST(R3SurvivalTest, RespectsTheTheorem1Bound) {
  // Theorem 1: P[some replica of W's quorum survives l writes]
  //            <= k ((n-k)/n)^l.
  util::Rng rng(1);
  quorum::ProbabilisticQuorums qs(34, 4);
  for (std::size_t l : {5u, 10u, 20u, 40u}) {
    double rate = r3_survival_rate(qs, l, 4000, rng);
    double bound = util::r3_survival_bound(34, 4, l);
    EXPECT_LE(rate, bound + 0.02) << "l=" << l;
  }
}

TEST(R3SurvivalTest, DecaysTowardsZero) {
  util::Rng rng(2);
  quorum::ProbabilisticQuorums qs(34, 6);
  double early = r3_survival_rate(qs, 2, 4000, rng);
  double late = r3_survival_rate(qs, 40, 4000, rng);
  EXPECT_GT(early, late);
  EXPECT_LT(late, 0.02);
}

TEST(R3SurvivalTest, StrictSystemNeverDecaysBelowCoverage) {
  // With majority quorums every subsequent write overwrites a majority, so a
  // write's quorum can be fully overwritten quickly; this just sanity-checks
  // the harness on a strict system (survival still well-defined).
  util::Rng rng(3);
  quorum::MajorityQuorums qs(9);
  double rate = r3_survival_rate(qs, 1, 2000, rng);
  EXPECT_GT(rate, 0.0);
}

TEST(R5GeometricTest, MeanMatchesOneOverQ) {
  util::Rng rng(5);
  for (std::size_t k : {1u, 2u, 4u, 6u}) {
    quorum::ProbabilisticQuorums qs(34, k);
    auto samples = r5_y_samples(qs, 20000, rng);
    double mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
                  static_cast<double>(samples.size());
    double expected = util::expected_reads_until_overlap(34, k);
    EXPECT_NEAR(mean, expected, 0.05 * expected + 0.05) << "k=" << k;
  }
}

TEST(R5GeometricTest, TailIsGeometric) {
  // [R5]: P(Y = r) <= (1-q)^{r-1} q.  Equivalent and easier to test
  // empirically: P(Y > r) <= (1-q)^r.
  util::Rng rng(7);
  quorum::ProbabilisticQuorums qs(34, 3);
  double q = util::quorum_overlap_probability(34, 3);
  auto samples = r5_y_samples(qs, 30000, rng);
  for (std::size_t r : {1u, 2u, 5u, 10u}) {
    double tail = 0;
    for (auto y : samples) {
      if (y > r) ++tail;
    }
    tail /= static_cast<double>(samples.size());
    double bound = std::pow(1.0 - q, static_cast<double>(r));
    EXPECT_LE(tail, bound + 0.02) << "r=" << r;
  }
}

TEST(R5GeometricTest, StrictQuorumsAlwaysHitFirstRead) {
  util::Rng rng(9);
  quorum::ProbabilisticQuorums qs(10, 6);  // 2k > n: strict
  auto samples = r5_y_samples(qs, 1000, rng);
  for (auto y : samples) EXPECT_EQ(y, 1u);
}

TEST(YFromHistoryTest, CountsReadsUntilCatchUp) {
  HistoryRecorder rec;
  rec.record_initial(0);
  // Write ts 1 completes at t=2.
  auto w = rec.begin_write(0, 0, 1.0, 1);
  rec.end_write(w, 2.0);
  // Process 1 then reads stale, stale, fresh.
  for (int i = 0; i < 2; ++i) {
    auto r = rec.begin_read(1, 0, 3.0 + i);
    rec.end_read(r, 3.5 + i, 0);
  }
  auto r = rec.begin_read(1, 0, 6.0);
  rec.end_read(r, 6.5, 1);
  auto samples = y_samples_from_history(rec.ops(), 0, 1);
  // Initial write (ts 0) is seen by the very first read: Y = 1.
  // Write ts 1 needs 3 reads: Y = 3.
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], 1u);
  EXPECT_EQ(samples[1], 3u);
}

TEST(YFromHistoryTest, CensoredWritesAreDropped) {
  HistoryRecorder rec;
  auto w = rec.begin_write(0, 0, 1.0, 1);
  rec.end_write(w, 2.0);
  auto r = rec.begin_read(1, 0, 3.0);
  rec.end_read(r, 3.5, 0);  // never catches up before the history ends
  EXPECT_TRUE(y_samples_from_history(rec.ops(), 0, 1).empty());
}

TEST(YFromHistoryTest, ReadsBeforeTheWriteDoNotCount) {
  HistoryRecorder rec;
  rec.record_initial(0);
  auto r0 = rec.begin_read(1, 0, 0.5);
  rec.end_read(r0, 0.9, 0);
  auto w = rec.begin_write(0, 0, 1.0, 1);
  rec.end_write(w, 2.0);
  auto r1 = rec.begin_read(1, 0, 3.0);
  rec.end_read(r1, 3.5, 1);
  auto samples = y_samples_from_history(rec.ops(), 0, 1);
  // For write ts 1, only the read invoked after its completion counts.
  ASSERT_EQ(samples.size(), 2u);  // initial write + write 1
  EXPECT_EQ(samples[1], 1u);
}

}  // namespace
}  // namespace pqra::core::spec
