/// \file keyspace_test.cpp
/// Property tests for the core/keyspace layer (docs/SHARDING.md): the
/// consistent-hash ring's balance / determinism / minimal-movement
/// guarantees, the flat open-addressing key table, and the Zipfian sampler
/// the mixed-key workloads draw from.

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/keyspace/flat_table.hpp"
#include "core/keyspace/hash_ring.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace pqra::core::keyspace {
namespace {

HashRing make_ring(std::size_t nodes, std::size_t vnodes) {
  HashRing ring(vnodes);
  for (net::NodeId s = 0; s < nodes; ++s) ring.add_node(s);
  return ring;
}

// Balance: with v virtual nodes per member the per-node key share
// concentrates around 1/n (stddev ~ 1/sqrt(v)), so a chi-square-style
// bound on the per-node counts must tighten as v grows.  The bound is
// pinned per vnode count on a fixed keyset, so this is deterministic.
TEST(HashRingTest, VirtualNodesFlattenTheLoad) {
  constexpr std::size_t kNodes = 10;
  constexpr std::size_t kKeys = 40000;
  const double expected = static_cast<double>(kKeys) / kNodes;

  // (vnodes, allowed chi-square per degree of freedom).  The statistic is
  //   sum_nodes (count - expected)^2 / expected / (n - 1),
  // ~1 for a uniform multinomial; imbalance inflates it quadratically.
  const std::vector<std::pair<std::size_t, double>> cases = {
      {1, 8000.0}, {4, 1500.0}, {16, 900.0}, {64, 150.0}};
  double previous = 1e18;
  for (const auto& [vnodes, bound] : cases) {
    const HashRing ring = make_ring(kNodes, vnodes);
    std::map<net::NodeId, std::size_t> counts;
    for (std::size_t k = 0; k < kKeys; ++k) {
      counts[ring.primary(static_cast<net::KeyId>(k))]++;
    }
    double chi2 = 0.0;
    for (net::NodeId s = 0; s < kNodes; ++s) {
      const double diff = static_cast<double>(counts[s]) - expected;
      chi2 += diff * diff / expected;
    }
    chi2 /= static_cast<double>(kNodes - 1);
    EXPECT_LT(chi2, bound) << "vnodes=" << vnodes;
    // More virtual nodes must not make the balance dramatically worse.
    EXPECT_LT(chi2, previous * 4.0) << "vnodes=" << vnodes;
    previous = chi2;
  }
}

// Determinism: the group is a pure function of (membership, vnodes, key) —
// insertion order must not matter, and repeated lookups agree.
TEST(HashRingTest, LookupIsInsertionOrderIndependent) {
  HashRing forward(8);
  HashRing backward(8);
  for (net::NodeId s = 0; s < 12; ++s) forward.add_node(s);
  for (net::NodeId s = 12; s > 0; --s) backward.add_node(s - 1);

  std::vector<net::NodeId> a;
  std::vector<net::NodeId> b;
  for (net::KeyId key = 0; key < 2000; ++key) {
    EXPECT_EQ(forward.primary(key), backward.primary(key)) << "key " << key;
    forward.replica_group(key, 3, a);
    backward.replica_group(key, 3, b);
    EXPECT_EQ(a, b) << "key " << key;
  }
}

TEST(HashRingTest, ReplicaGroupIsDistinctAndLedByThePrimary) {
  const HashRing ring = make_ring(7, 16);
  std::vector<net::NodeId> group;
  for (net::KeyId key = 0; key < 1000; ++key) {
    ring.replica_group(key, 3, group);
    ASSERT_EQ(group.size(), 3u);
    EXPECT_EQ(group[0], ring.primary(key));
    const std::set<net::NodeId> distinct(group.begin(), group.end());
    EXPECT_EQ(distinct.size(), 3u) << "key " << key;
  }
  // The whole membership, when n == num_nodes.
  ring.replica_group(0, 7, group);
  EXPECT_EQ(std::set<net::NodeId>(group.begin(), group.end()).size(), 7u);
}

// Minimal movement: adding a node only moves keys TO the new node; every
// other key keeps its primary.  Removing it restores the original mapping
// exactly.
TEST(HashRingTest, MembershipChangeMovesOnlyTheNecessaryKeys) {
  constexpr std::size_t kKeys = 8000;
  const HashRing before = make_ring(9, 16);
  HashRing after = make_ring(9, 16);
  after.add_node(9);

  std::size_t moved = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    const auto key = static_cast<net::KeyId>(k);
    if (after.primary(key) != before.primary(key)) {
      EXPECT_EQ(after.primary(key), 9u) << "key " << k
          << " moved between two old nodes";
      ++moved;
    }
  }
  // The new node takes ~1/10 of the keyspace — and not (almost) nothing.
  EXPECT_GT(moved, kKeys / 40);
  EXPECT_LT(moved, kKeys / 4);

  after.remove_node(9);
  EXPECT_FALSE(after.contains(9));
  for (std::size_t k = 0; k < kKeys; ++k) {
    const auto key = static_cast<net::KeyId>(k);
    EXPECT_EQ(after.primary(key), before.primary(key));
  }
}

TEST(FlatTableTest, FindEntryAndGrowthKeepEveryEntry) {
  FlatTable<std::uint64_t> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(3), nullptr);  // empty-table probe is well-defined

  // Far more keys than the initial capacity, with awkward bit patterns.
  std::vector<net::KeyId> keys;
  for (std::uint32_t i = 0; i < 500; ++i) keys.push_back(i * 0x10001u + 7u);
  for (net::KeyId k : keys) table.entry(k) = static_cast<std::uint64_t>(k) * 3;
  EXPECT_EQ(table.size(), keys.size());

  for (net::KeyId k : keys) {
    const std::uint64_t* v = table.find(k);
    ASSERT_NE(v, nullptr) << "key " << k;
    EXPECT_EQ(*v, static_cast<std::uint64_t>(k) * 3);
  }
  EXPECT_EQ(table.find(1), nullptr);

  // entry() on an existing key updates in place (no size change).
  table.entry(keys[0]) = 42;
  EXPECT_EQ(table.size(), keys.size());
  EXPECT_EQ(*table.find(keys[0]), 42u);

  // for_each visits each live entry exactly once.
  std::set<net::KeyId> seen;
  table.for_each([&](net::KeyId k, const std::uint64_t&) {
    EXPECT_TRUE(seen.insert(k).second) << "duplicate key " << k;
  });
  EXPECT_EQ(seen.size(), keys.size());
}

TEST(FlatTableTest, IterationOrderIsAPureFunctionOfTheInsertionSequence) {
  auto build = [] {
    FlatTable<int> t;
    for (std::uint32_t i = 0; i < 200; ++i) t.entry(i * 31u) = 1;
    return t;
  };
  FlatTable<int> a = build();
  FlatTable<int> b = build();
  std::vector<net::KeyId> oa;
  std::vector<net::KeyId> ob;
  a.for_each([&](net::KeyId k, const int&) { oa.push_back(k); });
  b.for_each([&](net::KeyId k, const int&) { ob.push_back(k); });
  EXPECT_EQ(oa, ob);
}

TEST(ZipfianTest, ThetaZeroIsUniformAndDrawsStayInRange) {
  util::Rng rng(7);
  util::Zipfian uniform(100, 0.0);
  std::vector<std::size_t> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t draw = uniform.draw(rng);
    ASSERT_LT(draw, 100u);
    counts[static_cast<std::size_t>(draw)]++;
  }
  // Uniform: every slot within 3x of the mean (loose; deterministic seed).
  for (std::size_t s = 0; s < 100; ++s) {
    EXPECT_GT(counts[s], 200u / 3) << "slot " << s;
    EXPECT_LT(counts[s], 200u * 3) << "slot " << s;
  }
}

TEST(ZipfianTest, SkewConcentratesMassOnLowRanks) {
  util::Rng rng(11);
  util::Zipfian zipf(1000, 0.9);
  std::size_t top10 = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.draw(rng) < 10) ++top10;
  }
  // Uniform would put ~1% in the top 10 ranks; theta=0.9 puts >25% there.
  EXPECT_GT(top10, kDraws / 4);
}

// Replay alignment: every draw consumes exactly one uniform from the
// caller's stream, for any theta and any n (including n == 1), so schedules
// that swap a uniform read for a Zipf read keep all later draws aligned.
TEST(ZipfianTest, EveryDrawConsumesExactlyOneUniform) {
  for (const double theta : {0.0, 0.5, 0.99}) {
    for (const std::uint64_t n : {std::uint64_t{1}, std::uint64_t{64}}) {
      util::Rng a(123);
      util::Rng b(123);
      util::Zipfian zipf(n, theta);
      for (int i = 0; i < 50; ++i) {
        zipf.draw(a);
        b.uniform01();
      }
      EXPECT_EQ(a.below(1u << 30), b.below(1u << 30))
          << "theta=" << theta << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace pqra::core::keyspace
