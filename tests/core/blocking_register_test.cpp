#include "core/blocking_register.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/threaded_server.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"

namespace pqra::core {
namespace {

/// n threaded servers + a transport sized for extra client nodes.
struct ThreadedCluster {
  ThreadedCluster(std::size_t n, std::size_t num_clients,
                  std::size_t preload_registers = 0)
      : transport(static_cast<net::NodeId>(n + num_clients)) {
    for (std::size_t s = 0; s < n; ++s) {
      Replica replica;
      for (std::size_t reg = 0; reg < preload_registers; ++reg) {
        replica.preload(static_cast<net::RegisterId>(reg),
                        util::encode<std::int64_t>(0));
      }
      servers.push_back(std::make_unique<ThreadedServer>(
          transport, static_cast<net::NodeId>(s), std::move(replica)));
    }
  }

  ~ThreadedCluster() {
    transport.close();
    servers.clear();
  }

  net::ThreadTransport transport;
  std::vector<std::unique_ptr<ThreadedServer>> servers;
};

TEST(BlockingRegisterTest, WriteThenReadFullQuorum) {
  quorum::ProbabilisticQuorums qs(4, 4);
  ThreadedCluster cluster(4, 1);
  BlockingRegisterClient client(cluster.transport, 4, qs, 0, util::Rng(1));
  auto ts = client.write(0, util::encode<std::int64_t>(77));
  ASSERT_TRUE(ts.has_value());
  EXPECT_EQ(*ts, 1u);
  auto r = client.read(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ts, 1u);
  EXPECT_EQ(util::decode<std::int64_t>(r->value), 77);
}

TEST(BlockingRegisterTest, MajorityQuorumsSeeEveryWrite) {
  quorum::MajorityQuorums qs(5);
  ThreadedCluster cluster(5, 2);
  BlockingRegisterClient writer(cluster.transport, 5, qs, 0, util::Rng(1));
  BlockingRegisterClient reader(cluster.transport, 6, qs, 0, util::Rng(2));
  for (std::int64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(writer.write(0, util::encode(i)).has_value());
    auto r = reader.read(0);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->ts, static_cast<Timestamp>(i));
    EXPECT_EQ(util::decode<std::int64_t>(r->value), i);
  }
}

TEST(BlockingRegisterTest, MonotoneReadsNeverRegress) {
  quorum::ProbabilisticQuorums qs(12, 2);
  ThreadedCluster cluster(12, 2, /*preload_registers=*/1);
  std::atomic<bool> done{false};
  std::thread writer_thread([&] {
    BlockingRegisterClient writer(cluster.transport, 12, qs, 0, util::Rng(1));
    for (std::int64_t i = 1; i <= 200; ++i) {
      if (!writer.write(0, util::encode(i)).has_value()) return;
    }
    done = true;
  });
  BlockingRegisterClient reader(cluster.transport, 13, qs, 0, util::Rng(2),
                                /*monotone=*/true);
  Timestamp last = 0;
  while (!done.load()) {
    auto r = reader.read(0);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(r->ts, last);
    last = r->ts;
  }
  writer_thread.join();
}

TEST(BlockingRegisterTest, ConcurrentReadersAndOneWriter) {
  quorum::MajorityQuorums qs(7);
  constexpr int kReaders = 4;
  ThreadedCluster cluster(7, kReaders + 1, /*preload_registers=*/1);
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&cluster, &qs, &stop, &violations, i] {
      // Monotone readers: plain regular reads may legitimately regress when
      // read 1 catches a write still in flight (the new/old inversion that
      // atomic write-back or the §6.2 cache removes).
      BlockingRegisterClient reader(cluster.transport,
                                    static_cast<net::NodeId>(8 + i), qs, 0,
                                    util::Rng(10 + i), /*monotone=*/true);
      Timestamp last = 0;
      while (!stop.load()) {
        auto r = reader.read(0);
        if (!r.has_value()) return;
        if (r->ts < last) ++violations;
        last = r->ts;
      }
    });
  }
  BlockingRegisterClient writer(cluster.transport, 7, qs, 0, util::Rng(1));
  for (std::int64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(writer.write(0, util::encode(i)).has_value());
  }
  stop = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(BlockingRegisterTest, ShutdownUnblocksClient) {
  quorum::ProbabilisticQuorums qs(4, 4);
  auto cluster = std::make_unique<ThreadedCluster>(4, 1);
  std::atomic<bool> got_nullopt{false};
  std::thread t([&] {
    BlockingRegisterClient client(cluster->transport, 4, qs, 0, util::Rng(1));
    // Consume the 4 acks of a normal write, then block on a second op that
    // will never finish because the transport closes.
    (void)client.write(0, util::encode<std::int64_t>(1));
    cluster->transport.close();
    got_nullopt = !client.read(0).has_value();
  });
  t.join();
  EXPECT_TRUE(got_nullopt);
}

}  // namespace
}  // namespace pqra::core
