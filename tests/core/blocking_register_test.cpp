#include "core/blocking_register.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/threaded_server.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"

namespace pqra::core {
namespace {

/// n threaded servers + a transport sized for extra client nodes.
struct ThreadedCluster {
  ThreadedCluster(std::size_t n, std::size_t num_clients,
                  std::size_t preload_registers = 0)
      : transport(static_cast<net::NodeId>(n + num_clients)) {
    for (std::size_t s = 0; s < n; ++s) {
      Replica replica;
      for (std::size_t reg = 0; reg < preload_registers; ++reg) {
        replica.preload(static_cast<net::RegisterId>(reg),
                        util::encode<std::int64_t>(0));
      }
      servers.push_back(std::make_unique<ThreadedServer>(
          transport, static_cast<net::NodeId>(s), std::move(replica)));
    }
  }

  ~ThreadedCluster() {
    transport.close();
    servers.clear();
  }

  net::ThreadTransport transport;
  std::vector<std::unique_ptr<ThreadedServer>> servers;
};

TEST(BlockingRegisterTest, WriteThenReadFullQuorum) {
  quorum::ProbabilisticQuorums qs(4, 4);
  ThreadedCluster cluster(4, 1);
  BlockingRegisterClient client(cluster.transport, 4, qs, 0, util::Rng(1));
  auto ts = client.write(0, util::encode<std::int64_t>(77));
  ASSERT_TRUE(ts.has_value());
  EXPECT_EQ(*ts, 1u);
  auto r = client.read(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ts, 1u);
  EXPECT_EQ(util::decode<std::int64_t>(r->value), 77);
}

TEST(BlockingRegisterTest, MajorityQuorumsSeeEveryWrite) {
  quorum::MajorityQuorums qs(5);
  ThreadedCluster cluster(5, 2);
  BlockingRegisterClient writer(cluster.transport, 5, qs, 0, util::Rng(1));
  BlockingRegisterClient reader(cluster.transport, 6, qs, 0, util::Rng(2));
  for (std::int64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(writer.write(0, util::encode(i)).has_value());
    auto r = reader.read(0);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->ts, static_cast<Timestamp>(i));
    EXPECT_EQ(util::decode<std::int64_t>(r->value), i);
  }
}

TEST(BlockingRegisterTest, MonotoneReadsNeverRegress) {
  quorum::ProbabilisticQuorums qs(12, 2);
  ThreadedCluster cluster(12, 2, /*preload_registers=*/1);
  std::atomic<bool> done{false};
  std::thread writer_thread([&] {
    BlockingRegisterClient writer(cluster.transport, 12, qs, 0, util::Rng(1));
    for (std::int64_t i = 1; i <= 200; ++i) {
      if (!writer.write(0, util::encode(i)).has_value()) return;
    }
    done = true;
  });
  BlockingRegisterClient reader(cluster.transport, 13, qs, 0, util::Rng(2),
                                /*monotone=*/true);
  Timestamp last = 0;
  while (!done.load()) {
    auto r = reader.read(0);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(r->ts, last);
    last = r->ts;
  }
  writer_thread.join();
}

TEST(BlockingRegisterTest, ConcurrentReadersAndOneWriter) {
  quorum::MajorityQuorums qs(7);
  constexpr int kReaders = 4;
  ThreadedCluster cluster(7, kReaders + 1, /*preload_registers=*/1);
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&cluster, &qs, &stop, &violations, i] {
      // Monotone readers: plain regular reads may legitimately regress when
      // read 1 catches a write still in flight (the new/old inversion that
      // atomic write-back or the §6.2 cache removes).
      BlockingRegisterClient reader(cluster.transport,
                                    static_cast<net::NodeId>(8 + i), qs, 0,
                                    util::Rng(10 + i), /*monotone=*/true);
      Timestamp last = 0;
      while (!stop.load()) {
        auto r = reader.read(0);
        if (!r.has_value()) return;
        if (r->ts < last) ++violations;
        last = r->ts;
      }
    });
  }
  BlockingRegisterClient writer(cluster.transport, 7, qs, 0, util::Rng(1));
  for (std::int64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(writer.write(0, util::encode(i)).has_value());
  }
  stop = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(BlockingRegisterTest, ShutdownUnblocksClient) {
  quorum::ProbabilisticQuorums qs(4, 4);
  auto cluster = std::make_unique<ThreadedCluster>(4, 1);
  std::atomic<bool> got_nullopt{false};
  std::thread t([&] {
    BlockingRegisterClient client(cluster->transport, 4, qs, 0, util::Rng(1));
    // Consume the 4 acks of a normal write, then block on a second op that
    // will never finish because the transport closes.
    (void)client.write(0, util::encode<std::int64_t>(1));
    cluster->transport.close();
    got_nullopt = !client.read(0).has_value();
  });
  t.join();
  EXPECT_TRUE(got_nullopt);
}

TEST(BlockingRegisterTest, TimesOutInsteadOfBlockingOnACrashedQuorum) {
  // Regression for the fault-injection ISSUE: with every server crashed an
  // operation used to block forever; under a deadline policy it must return
  // nullopt with last_status() == kTimedOut.
  quorum::ProbabilisticQuorums qs(4, 2);
  ThreadedCluster cluster(4, 1, /*preload_registers=*/1);
  for (net::NodeId s = 0; s < 4; ++s) cluster.transport.crash(s);

  RetryPolicy retry;
  retry.rpc_timeout = 0.01;
  retry.deadline = 0.05;
  BlockingRegisterClient client(cluster.transport, 4, qs, 0, util::Rng(1),
                                /*monotone=*/false, /*metrics=*/nullptr,
                                retry);
  EXPECT_FALSE(client.read(0).has_value());
  EXPECT_EQ(client.last_status(), OpStatus::kTimedOut);
  EXPECT_FALSE(client.write(0, util::encode<std::int64_t>(1)).has_value());
  EXPECT_EQ(client.last_status(), OpStatus::kTimedOut);
  EXPECT_EQ(client.op_failures(), 2u);
  EXPECT_GT(client.retries(), 0u);
}

TEST(BlockingRegisterTest, RetriesThroughATransientCrash) {
  quorum::ProbabilisticQuorums qs(3, 3);
  ThreadedCluster cluster(3, 1, /*preload_registers=*/1);
  cluster.transport.crash(0);

  RetryPolicy retry;
  retry.rpc_timeout = 0.02;
  retry.backoff_factor = 1.0;
  BlockingRegisterClient client(cluster.transport, 3, qs, 0, util::Rng(1),
                                /*monotone=*/false, /*metrics=*/nullptr,
                                retry);
  std::thread healer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cluster.transport.recover(0);
  });
  // No deadline: the read keeps retrying and completes once node 0 is back.
  auto r = client.read(0);
  healer.join();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, OpStatus::kOk);
  EXPECT_EQ(r->acks, 3u);
  EXPECT_GT(client.retries(), 0u);
}

TEST(BlockingRegisterTest, DegradedReadReportsPartialAccessSet) {
  // Only server 0 is alive; a degraded-ok policy settles at the deadline
  // with however many acks accumulated and a nonzero staleness bound.
  quorum::ProbabilisticQuorums qs(4, 3);
  ThreadedCluster cluster(4, 1, /*preload_registers=*/1);
  for (net::NodeId s = 1; s < 4; ++s) cluster.transport.crash(s);

  RetryPolicy retry;
  retry.rpc_timeout = 0.02;
  retry.backoff_factor = 1.0;
  retry.deadline = 0.4;
  retry.degraded_ok = true;
  retry.min_degraded_acks = 1;
  BlockingRegisterClient client(cluster.transport, 4, qs, 0, util::Rng(1),
                                /*monotone=*/false, /*metrics=*/nullptr,
                                retry);
  auto r = client.read(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, OpStatus::kDegraded);
  EXPECT_EQ(client.last_status(), OpStatus::kDegraded);
  EXPECT_GE(r->acks, 1u);
  EXPECT_LT(r->acks, 3u);
  EXPECT_GT(r->staleness_bound, 0.0);
  EXPECT_LE(r->staleness_bound, 1.0);
}

}  // namespace
}  // namespace pqra::core
