#include "core/replica.hpp"

#include <gtest/gtest.h>

#include "util/codec.hpp"

namespace pqra::core {
namespace {

Value val(std::int64_t x) { return util::encode(x); }

TEST(ReplicaTest, ReadOfUnknownRegisterReturnsTimestampZero) {
  Replica r;
  net::Message ack = r.handle(net::Message::read_req(3, 1));
  EXPECT_EQ(ack.type, net::MsgType::kReadAck);
  EXPECT_EQ(ack.reg, 3u);
  EXPECT_EQ(ack.op, 1u);
  EXPECT_EQ(ack.ts, 0u);
  EXPECT_TRUE(ack.value.empty());
}

TEST(ReplicaTest, WriteThenReadReturnsValue) {
  Replica r;
  net::Message wack = r.handle(net::Message::write_req(0, 1, 1, val(42)));
  EXPECT_EQ(wack.type, net::MsgType::kWriteAck);
  EXPECT_EQ(wack.ts, 1u);
  net::Message rack = r.handle(net::Message::read_req(0, 2));
  EXPECT_EQ(rack.ts, 1u);
  EXPECT_EQ(util::decode<std::int64_t>(rack.value), 42);
}

TEST(ReplicaTest, StaleWriteIsAckedButIgnored) {
  Replica r;
  r.handle(net::Message::write_req(0, 1, 5, val(5)));
  net::Message ack = r.handle(net::Message::write_req(0, 2, 3, val(3)));
  EXPECT_EQ(ack.type, net::MsgType::kWriteAck);  // still acknowledged
  EXPECT_EQ(r.get(0)->ts, 5u);
  EXPECT_EQ(util::decode<std::int64_t>(r.get(0)->value), 5);
  EXPECT_EQ(r.writes_applied(), 1u);
}

TEST(ReplicaTest, EqualTimestampWriteIgnored) {
  Replica r;
  r.handle(net::Message::write_req(0, 1, 2, val(1)));
  r.handle(net::Message::write_req(0, 2, 2, val(99)));
  EXPECT_EQ(util::decode<std::int64_t>(r.get(0)->value), 1);
}

TEST(ReplicaTest, RegistersAreIndependent) {
  Replica r;
  r.handle(net::Message::write_req(0, 1, 1, val(10)));
  r.handle(net::Message::write_req(1, 2, 7, val(20)));
  EXPECT_EQ(r.get(0)->ts, 1u);
  EXPECT_EQ(r.get(1)->ts, 7u);
  EXPECT_EQ(r.num_registers(), 2u);
}

TEST(ReplicaTest, PreloadInstallsTimestampZero) {
  Replica r;
  r.preload(4, val(8));
  EXPECT_EQ(r.get(4)->ts, 0u);
  net::Message ack = r.handle(net::Message::read_req(4, 1));
  EXPECT_EQ(util::decode<std::int64_t>(ack.value), 8);
  // Any real write supersedes the preload.
  r.handle(net::Message::write_req(4, 2, 1, val(9)));
  EXPECT_EQ(r.get(4)->ts, 1u);
}

TEST(ReplicaTest, PreloadAfterWriteIsRejected) {
  Replica r;
  r.handle(net::Message::write_req(0, 1, 1, val(1)));
  EXPECT_THROW(r.preload(0, val(2)), std::logic_error);
}

TEST(ReplicaTest, RejectsAckMessages) {
  Replica r;
  EXPECT_THROW(r.handle(net::Message::read_ack(0, 1, 0, {})),
               std::logic_error);
  EXPECT_THROW(r.handle(net::Message::write_ack(0, 1, 0)), std::logic_error);
}

}  // namespace
}  // namespace pqra::core
