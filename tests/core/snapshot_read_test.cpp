#include <gtest/gtest.h>

#include <memory>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "core/quorum_register_client.hpp"
#include "core/server_process.hpp"
#include "core/spec/checker.hpp"
#include "iter/alg1_des.hpp"
#include "net/sim_transport.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"

namespace pqra::core {
namespace {

struct SnapCluster {
  SnapCluster(std::size_t n, const quorum::QuorumSystem& qs,
              ClientOptions options = {}, std::uint64_t seed = 1)
      : delay(sim::make_constant_delay(1.0)),
        transport(sim, *delay, util::Rng(seed),
                  static_cast<net::NodeId>(n + 1)),
        client(std::make_unique<QuorumRegisterClient>(
            sim, transport, static_cast<net::NodeId>(n), qs, 0,
            util::Rng(seed).fork(60), options, &history)) {
    for (std::size_t s = 0; s < n; ++s) {
      servers.push_back(std::make_unique<ServerProcess>(
          transport, static_cast<net::NodeId>(s)));
      for (net::RegisterId reg = 0; reg < 4; ++reg) {
        servers.back()->replica().preload(
            reg, util::encode<std::int64_t>(reg * 100));
      }
    }
    for (net::RegisterId reg = 0; reg < 4; ++reg) {
      history.record_initial(reg);
    }
  }

  sim::Simulator sim;
  std::unique_ptr<sim::DelayModel> delay;
  net::SimTransport transport;
  std::vector<std::unique_ptr<ServerProcess>> servers;
  spec::HistoryRecorder history;
  std::unique_ptr<QuorumRegisterClient> client;
};

TEST(SnapshotReadTest, ReturnsAllRegistersInOrder) {
  quorum::MajorityQuorums qs(5);
  SnapCluster c(5, qs);
  bool done = false;
  c.client->read_snapshot({0, 1, 2, 3}, [&](std::vector<ReadResult> results) {
    ASSERT_EQ(results.size(), 4u);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(results[j].ts, 0u);
      EXPECT_EQ(util::decode<std::int64_t>(results[j].value),
                static_cast<std::int64_t>(j) * 100);
    }
    done = true;
  });
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(SnapshotReadTest, CostsOneQuorumExchangeRegardlessOfRegisterCount) {
  quorum::MajorityQuorums qs(5);  // quorums of 3
  SnapCluster c(5, qs);
  c.client->read_snapshot({0, 1, 2, 3},
                          [](std::vector<ReadResult>) {});
  c.sim.run();
  // 3 requests + 3 acks, not 4 * (3 + 3).
  EXPECT_EQ(c.transport.stats().total, 6u);
}

TEST(SnapshotReadTest, SeesCompletedWritesThroughStrictQuorums) {
  quorum::MajorityQuorums qs(5);
  SnapCluster c(5, qs);
  bool done = false;
  c.client->write(2, util::encode<std::int64_t>(77), [&](Timestamp) {
    c.client->read_snapshot({0, 2}, [&](std::vector<ReadResult> results) {
      EXPECT_EQ(results[0].ts, 0u);
      EXPECT_EQ(results[1].ts, 1u);
      EXPECT_EQ(util::decode<std::int64_t>(results[1].value), 77);
      done = true;
    });
  });
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(SnapshotReadTest, MonotoneCacheAppliesPerRegister) {
  quorum::ProbabilisticQuorums qs(30, 2);
  ClientOptions options;
  options.monotone = true;
  SnapCluster c(30, qs, options, 9);
  Timestamp last_seen = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    c.client->write(1, util::encode<std::int64_t>(remaining),
                    [&, remaining](Timestamp) {
                      c.client->read_snapshot(
                          {0, 1, 2, 3},
                          [&, remaining](std::vector<ReadResult> results) {
                            EXPECT_GE(results[1].ts, last_seen);
                            last_seen = results[1].ts;
                            loop(remaining - 1);
                          });
                    });
  };
  loop(40);
  c.sim.run();
  auto r4 = spec::check_r4(c.history.ops());
  EXPECT_TRUE(r4.ok) << r4.violations.front();
  auto r2 = spec::check_r2(c.history.ops());
  EXPECT_TRUE(r2.ok) << r2.violations.front();
}

TEST(SnapshotReadTest, RejectsWriteBackCombination) {
  quorum::MajorityQuorums qs(5);
  ClientOptions options;
  options.write_back = true;
  SnapCluster c(5, qs, options);
  EXPECT_THROW(c.client->read_snapshot({0}, [](std::vector<ReadResult>) {}),
               std::logic_error);
}

TEST(SnapshotReadTest, Alg1ConvergesWithFarFewerMessages) {
  apps::Graph g = apps::make_chain(10);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(10, 4);
  iter::Alg1Options options;
  options.quorums = &qs;
  options.seed = 3;
  iter::Alg1Result per_register = iter::run_alg1(op, options);
  options.snapshot_reads = true;
  iter::Alg1Result snapshot = iter::run_alg1(op, options);
  ASSERT_TRUE(per_register.converged);
  ASSERT_TRUE(snapshot.converged);
  EXPECT_LT(snapshot.messages.total, per_register.messages.total / 3)
      << "snapshot reads must collapse the per-register read fan-out";
  // Correlated staleness may cost some rounds but not an order of magnitude.
  EXPECT_LE(snapshot.rounds, per_register.rounds * 3);
}

TEST(SnapshotReadTest, Alg1SpecStillHoldsWithSnapshots) {
  apps::Graph g = apps::make_chain(8);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(8, 3);
  iter::Alg1Options options;
  options.quorums = &qs;
  options.snapshot_reads = true;
  options.record_history = true;
  options.seed = 11;
  iter::Alg1Result r = iter::run_alg1(op, options);
  ASSERT_TRUE(r.converged);
  auto r2 = spec::check_r2(r.history->ops());
  EXPECT_TRUE(r2.ok) << r2.violations.front();
  auto r4 = spec::check_r4(r.history->ops());
  EXPECT_TRUE(r4.ok) << r4.violations.front();
}

}  // namespace
}  // namespace pqra::core
