#include <gtest/gtest.h>

#include <memory>

#include "apps/apsp.hpp"
#include "apps/graph.hpp"
#include "core/quorum_register_client.hpp"
#include "core/server_process.hpp"
#include "iter/alg1_des.hpp"
#include "net/sim_transport.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"

namespace pqra::core {
namespace {

Value val(std::int64_t x) { return util::encode(x); }

TEST(ReplicaStoreTest, EncodeMergeRoundTrip) {
  Replica a;
  a.handle(net::Message::write_req(0, 1, 3, val(30)));
  a.handle(net::Message::write_req(5, 2, 7, val(70)));
  Replica b;
  EXPECT_EQ(b.merge_store(a.encode_store()), 2u);
  EXPECT_EQ(b.get(0)->ts, 3u);
  EXPECT_EQ(util::decode<std::int64_t>(b.get(5)->value), 70);
  // Merging again changes nothing.
  EXPECT_EQ(b.merge_store(a.encode_store()), 0u);
}

TEST(ReplicaStoreTest, MergeKeepsNewerLocalState) {
  Replica a, b;
  a.handle(net::Message::write_req(0, 1, 2, val(2)));
  b.handle(net::Message::write_req(0, 1, 5, val(5)));
  EXPECT_EQ(b.merge_store(a.encode_store()), 0u);
  EXPECT_EQ(b.get(0)->ts, 5u);
  EXPECT_EQ(a.merge_store(b.encode_store()), 1u);
  EXPECT_EQ(a.get(0)->ts, 5u);
}

TEST(ReplicaStoreTest, MergeRejectsCorruptedPayload) {
  Replica a;
  a.handle(net::Message::write_req(0, 1, 1, val(1)));
  Value enc = a.encode_store();
  enc.mutable_bytes().pop_back();
  Replica b;
  EXPECT_THROW(b.merge_store(enc), std::logic_error);
}

TEST(GossipTest, SpreadsAWriteToEveryReplicaWithoutReads) {
  const std::size_t n = 12;
  sim::Simulator sim;
  auto delay = sim::make_constant_delay(1.0);
  net::SimTransport transport(sim, *delay, util::Rng(1),
                              static_cast<net::NodeId>(n + 1));
  GossipOptions gossip;
  gossip.interval = 2.0;
  gossip.group_base = 0;
  gossip.group_size = n;
  std::vector<std::unique_ptr<ServerProcess>> servers;
  for (std::size_t s = 0; s < n; ++s) {
    servers.push_back(std::make_unique<ServerProcess>(
        transport, static_cast<net::NodeId>(s), sim, gossip, util::Rng(7)));
  }
  quorum::ProbabilisticQuorums qs(n, 1);  // the write touches ONE replica
  QuorumRegisterClient writer(sim, transport, n, qs, 0, util::Rng(3));
  writer.write(0, val(42), [](Timestamp) {});
  // Push-gossip doubles coverage roughly every interval: by t=60 all 12
  // replicas should hold the value.
  sim.run_until(60.0);
  std::size_t holders = 0;
  for (const auto& s : servers) {
    const TimestampedValue* tv = s->replica().get(0);
    if (tv != nullptr && tv->ts == 1) ++holders;
  }
  EXPECT_EQ(holders, n);
  std::uint64_t merges = 0;
  for (const auto& s : servers) merges += s->gossip_merges();
  EXPECT_GE(merges, n - 1);
}

TEST(GossipTest, GossipMessagesAreCountedSeparately) {
  const std::size_t n = 4;
  sim::Simulator sim;
  auto delay = sim::make_constant_delay(1.0);
  net::SimTransport transport(sim, *delay, util::Rng(1),
                              static_cast<net::NodeId>(n));
  GossipOptions gossip;
  gossip.interval = 1.0;
  gossip.group_size = n;
  std::vector<std::unique_ptr<ServerProcess>> servers;
  for (std::size_t s = 0; s < n; ++s) {
    servers.push_back(std::make_unique<ServerProcess>(
        transport, static_cast<net::NodeId>(s), sim, gossip, util::Rng(5)));
  }
  sim.run_until(10.0);
  auto stats = transport.stats();
  EXPECT_GT(stats.by_type[static_cast<int>(net::MsgType::kGossip)], 0u);
  EXPECT_EQ(stats.by_type[static_cast<int>(net::MsgType::kReadReq)], 0u);
}

TEST(GossipTest, AcceleratesTinyQuorumConvergence) {
  apps::Graph g = apps::make_chain(10);
  apps::ApspOperator op(g);
  quorum::ProbabilisticQuorums qs(10, 1);
  iter::Alg1Options options;
  options.quorums = &qs;
  options.seed = 5;
  options.round_cap = 5000;
  iter::Alg1Result plain = iter::run_alg1(op, options);
  options.gossip_interval = 2.0;
  iter::Alg1Result gossip = iter::run_alg1(op, options);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(gossip.converged);
  EXPECT_LT(gossip.rounds, plain.rounds)
      << "anti-entropy should rescue k=1 quorums";
}

TEST(GossipTest, RequiresSaneGroup) {
  sim::Simulator sim;
  auto delay = sim::make_constant_delay(1.0);
  net::SimTransport transport(sim, *delay, util::Rng(1), 2);
  GossipOptions gossip;
  gossip.interval = 1.0;
  gossip.group_size = 1;  // nobody to talk to
  EXPECT_THROW(ServerProcess(transport, 0, sim, gossip, util::Rng(1)),
               std::logic_error);
}

}  // namespace
}  // namespace pqra::core
