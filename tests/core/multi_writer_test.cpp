#include "core/multi_writer_client.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/server_process.hpp"
#include "net/sim_transport.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"

namespace pqra::core {
namespace {

struct MwCluster {
  MwCluster(std::size_t n, std::size_t num_clients,
            const quorum::QuorumSystem& qs, bool monotone = false,
            std::uint64_t seed = 1)
      : delay(sim::make_exponential_delay(1.0)),
        transport(sim, *delay, util::Rng(seed),
                  static_cast<net::NodeId>(n + num_clients)) {
    for (std::size_t s = 0; s < n; ++s) {
      servers.push_back(std::make_unique<ServerProcess>(
          transport, static_cast<net::NodeId>(s)));
      servers.back()->replica().preload(0, util::encode<std::int64_t>(0));
    }
    for (std::size_t c = 0; c < num_clients; ++c) {
      clients.push_back(std::make_unique<MultiWriterRegisterClient>(
          sim, transport, static_cast<net::NodeId>(n + c),
          static_cast<std::uint32_t>(c + 1), qs, 0,
          util::Rng(seed).fork(900 + c), monotone));
    }
  }

  sim::Simulator sim;
  std::unique_ptr<sim::DelayModel> delay;
  net::SimTransport transport;
  std::vector<std::unique_ptr<ServerProcess>> servers;
  std::vector<std::unique_ptr<MultiWriterRegisterClient>> clients;
};

TEST(TagTest, PackUnpackRoundTrip) {
  for (Tag t : {Tag{0, 0}, Tag{1, 7}, Tag{12345678, 65535},
                Tag{(1ULL << 48) - 1, 42}}) {
    EXPECT_EQ(unpack_tag(pack_tag(t)), t);
  }
}

TEST(TagTest, PackingPreservesOrder) {
  EXPECT_LT(pack_tag({1, 9}), pack_tag({2, 1}));  // counter dominates
  EXPECT_LT(pack_tag({3, 1}), pack_tag({3, 2}));  // writer breaks ties
}

TEST(TagTest, OverflowRejected) {
  EXPECT_THROW(pack_tag({1ULL << 48, 0}), std::logic_error);
  EXPECT_THROW(pack_tag({0, 1u << 16}), std::logic_error);
}

TEST(MultiWriterTest, SingleWriterRoundTrip) {
  quorum::MajorityQuorums qs(5);
  MwCluster c(5, 1, qs);
  bool done = false;
  c.clients[0]->write(0, util::encode<std::int64_t>(10), [&](Tag tag) {
    EXPECT_EQ(tag.counter, 1u);
    EXPECT_EQ(tag.writer, 1u);
    c.clients[0]->read(0, [&](MwReadResult r) {
      EXPECT_EQ(r.tag, (Tag{1, 1}));
      EXPECT_EQ(util::decode<std::int64_t>(r.value), 10);
      done = true;
    });
  });
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(MultiWriterTest, SequentialWritersSeeEachOther) {
  // With strict quorums: writer 2's phase-1 read must see writer 1's write,
  // so counters strictly increase across writers.
  quorum::MajorityQuorums qs(7);
  MwCluster c(7, 2, qs);
  bool done = false;
  c.clients[0]->write(0, util::encode<std::int64_t>(1), [&](Tag t1) {
    c.clients[1]->write(0, util::encode<std::int64_t>(2), [&, t1](Tag t2) {
      EXPECT_GT(t2, t1);
      c.clients[0]->read(0, [&, t2](MwReadResult r) {
        EXPECT_EQ(r.tag, t2);
        EXPECT_EQ(util::decode<std::int64_t>(r.value), 2);
        done = true;
      });
    });
  });
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(MultiWriterTest, ConcurrentWritersGetDistinctTags) {
  quorum::MajorityQuorums qs(7);
  MwCluster c(7, 4, qs);
  std::set<Timestamp> tags;
  int pending = 0;
  for (int round = 0; round < 10; ++round) {
    for (auto& client : c.clients) {
      ++pending;
      client->write(0, util::encode<std::int64_t>(round), [&](Tag tag) {
        EXPECT_TRUE(tags.insert(pack_tag(tag)).second)
            << "duplicate tag " << tag.counter << "/" << tag.writer;
        --pending;
      });
    }
  }
  c.sim.run();
  EXPECT_EQ(pending, 0);
  EXPECT_EQ(tags.size(), 40u);
}

TEST(MultiWriterTest, TagsUniqueEvenOnProbabilisticQuorums) {
  // Tiny quorums: phase-1 reads miss constantly, counters collide across
  // writers — the writer-id component must keep tags unique.
  quorum::ProbabilisticQuorums qs(20, 2);
  MwCluster c(20, 3, qs, false, 7);
  std::set<Timestamp> tags;
  int completed = 0;
  std::function<void(std::size_t, int)> chain = [&](std::size_t who,
                                                    int remaining) {
    if (remaining == 0) return;
    c.clients[who]->write(
        0, util::encode<std::int64_t>(remaining), [&, who, remaining](Tag t) {
          EXPECT_TRUE(tags.insert(pack_tag(t)).second);
          ++completed;
          chain(who, remaining - 1);
        });
  };
  for (std::size_t who = 0; who < 3; ++who) chain(who, 25);
  c.sim.run();
  EXPECT_EQ(completed, 75);
  EXPECT_EQ(tags.size(), 75u);
}

TEST(MultiWriterTest, OwnWritesAlwaysAdvance) {
  // Even when the phase-1 read misses this writer's own previous write
  // (probabilistic quorums), its next tag must still be larger.
  quorum::ProbabilisticQuorums qs(20, 1);
  MwCluster c(20, 1, qs, false, 3);
  Tag last{0, 0};
  bool ordered = true;
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) return;
    c.clients[0]->write(0, util::encode<std::int64_t>(remaining),
                        [&, remaining](Tag t) {
                          if (!(last < t)) ordered = false;
                          last = t;
                          chain(remaining - 1);
                        });
  };
  chain(50);
  c.sim.run();
  EXPECT_TRUE(ordered);
}

TEST(MultiWriterTest, ReadsReturnSomeWrittenValueOrInitial) {
  quorum::ProbabilisticQuorums qs(12, 3);
  MwCluster c(12, 2, qs, false, 11);
  std::map<Timestamp, std::int64_t> written{{0, 0}};  // initial
  int reads = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    c.clients[0]->write(0, util::encode<std::int64_t>(remaining),
                        [&, remaining](Tag t) {
                          written[pack_tag(t)] = remaining;
                          c.clients[1]->read(0, [&, remaining](MwReadResult r) {
                            auto it = written.find(pack_tag(r.tag));
                            ASSERT_NE(it, written.end())
                                << "read returned a never-written tag";
                            EXPECT_EQ(util::decode<std::int64_t>(r.value),
                                      it->second);
                            ++reads;
                            loop(remaining - 1);
                          });
                        });
  };
  loop(30);
  c.sim.run();
  EXPECT_EQ(reads, 30);
}

TEST(MultiWriterTest, MonotoneModeNeverRegresses) {
  quorum::ProbabilisticQuorums qs(20, 2);
  MwCluster c(20, 2, qs, /*monotone=*/true, 13);
  Tag last{0, 0};
  bool regressed = false;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    c.clients[0]->write(0, util::encode<std::int64_t>(remaining),
                        [&, remaining](Tag) {
                          c.clients[1]->read(0, [&, remaining](MwReadResult r) {
                            if (r.tag < last) regressed = true;
                            last = r.tag;
                            loop(remaining - 1);
                          });
                        });
  };
  loop(60);
  c.sim.run();
  EXPECT_FALSE(regressed);
}

}  // namespace
}  // namespace pqra::core
