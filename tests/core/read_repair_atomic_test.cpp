#include <gtest/gtest.h>

#include <memory>

#include "core/quorum_register_client.hpp"
#include "core/server_process.hpp"
#include "core/spec/checker.hpp"
#include "net/sim_transport.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"

/// Read repair and the atomic (write-back) read mode.

namespace pqra::core {
namespace {

struct Cluster {
  Cluster(std::size_t n, std::size_t num_clients,
          const quorum::QuorumSystem& qs, ClientOptions options,
          std::uint64_t seed = 1, bool synchronous = true)
      : delay(synchronous ? sim::make_constant_delay(1.0)
                          : sim::make_exponential_delay(1.0)),
        transport(sim, *delay, util::Rng(seed),
                  static_cast<net::NodeId>(n + num_clients)) {
    for (std::size_t s = 0; s < n; ++s) {
      servers.push_back(std::make_unique<ServerProcess>(
          transport, static_cast<net::NodeId>(s)));
      servers.back()->replica().preload(0, util::encode<std::int64_t>(0));
    }
    history.record_initial(0);
    for (std::size_t c = 0; c < num_clients; ++c) {
      clients.push_back(std::make_unique<QuorumRegisterClient>(
          sim, transport, static_cast<net::NodeId>(n + c), qs, 0,
          util::Rng(seed).fork(700 + c), options, &history));
    }
  }

  std::size_t replicas_at_ts(Timestamp ts) const {
    std::size_t count = 0;
    for (const auto& s : servers) {
      const TimestampedValue* tv = s->replica().get(0);
      if (tv != nullptr && tv->ts == ts) ++count;
    }
    return count;
  }

  sim::Simulator sim;
  std::unique_ptr<sim::DelayModel> delay;
  net::SimTransport transport;
  std::vector<std::unique_ptr<ServerProcess>> servers;
  std::vector<std::unique_ptr<QuorumRegisterClient>> clients;
  spec::HistoryRecorder history;
};

TEST(ReadRepairTest, RepairsSpreadTheLatestValue) {
  quorum::ProbabilisticQuorums qs(20, 8);
  ClientOptions options;
  options.read_repair = true;
  Cluster c(20, 2, qs, options);
  // One write reaches 8 replicas; then a series of reads (quorums of 8,
  // usually overlapping the write) repairs stale responders.
  std::size_t after_write = 0;
  std::function<void(int)> reads = [&](int remaining) {
    if (remaining == 0) return;
    c.clients[1]->read(0, [&, remaining](ReadResult) {
      reads(remaining - 1);
    });
  };
  c.clients[0]->write(0, util::encode<std::int64_t>(7), [&](Timestamp) {
    after_write = c.replicas_at_ts(1);
    reads(12);
  });
  c.sim.run();
  EXPECT_EQ(after_write, 8u);
  EXPECT_GT(c.replicas_at_ts(1), after_write)
      << "read repair should have installed ts 1 on extra replicas";
  EXPECT_GT(c.clients[1]->counters().repairs_sent, 0u);
}

TEST(ReadRepairTest, NoRepairTrafficWhenEveryoneIsFresh) {
  quorum::MajorityQuorums qs(5);
  ClientOptions options;
  options.read_repair = true;
  Cluster c(5, 1, qs, options);
  bool done = false;
  // Reading the preloaded initial value: nothing newer to push.
  c.clients[0]->read(0, [&](ReadResult r) {
    EXPECT_EQ(r.ts, 0u);
    done = true;
  });
  c.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(c.clients[0]->counters().repairs_sent, 0u);
}

TEST(ReadRepairTest, AcceleratesConvergenceOfStaleReplicas) {
  // Without repair, a k=4-of-20 write leaves 16 replicas stale forever
  // (single write).  With repair, repeated reads converge the cluster.
  quorum::ProbabilisticQuorums qs(20, 4);
  for (bool repair : {false, true}) {
    ClientOptions options;
    options.read_repair = repair;
    Cluster c(20, 2, qs, options, /*seed=*/9);
    std::function<void(int)> reads = [&](int remaining) {
      if (remaining == 0) return;
      c.clients[1]->read(0, [&, remaining](ReadResult) {
        reads(remaining - 1);
      });
    };
    c.clients[0]->write(0, util::encode<std::int64_t>(5), [&](Timestamp) {
      reads(40);
    });
    c.sim.run();
    if (repair) {
      EXPECT_GT(c.replicas_at_ts(1), 10u);
    } else {
      EXPECT_EQ(c.replicas_at_ts(1), 4u);
    }
  }
}

TEST(AtomicModeTest, WriteBackHappensBeforeTheReadReturns) {
  quorum::ProbabilisticQuorums qs(12, 4);
  ClientOptions options;
  options.write_back = true;
  Cluster c(12, 2, qs, options);
  bool done = false;
  c.clients[0]->write(0, util::encode<std::int64_t>(3), [&](Timestamp) {
    c.clients[1]->read(0, [&](ReadResult r) {
      // At response time, the returned value must already sit on a full
      // write quorum beyond the writer's own: the reader pushed it.
      if (r.ts == 1) {
        EXPECT_GE(c.replicas_at_ts(1), 4u);
      }
      done = true;
    });
  });
  c.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(c.clients[1]->counters().write_backs, 1u);
}

TEST(AtomicModeTest, ReadsTakeTwoRoundTripsSynchronously) {
  quorum::MajorityQuorums qs(5);
  ClientOptions plain;
  Cluster c1(5, 1, qs, plain);
  ClientOptions atomic;
  atomic.write_back = true;
  Cluster c2(5, 1, qs, atomic);
  for (Cluster* c : {&c1, &c2}) {
    c->clients[0]->read(0, [](ReadResult) {});
    c->sim.run();
  }
  EXPECT_DOUBLE_EQ(c1.clients[0]->read_latency().mean(), 2.0);
  EXPECT_DOUBLE_EQ(c2.clients[0]->read_latency().mean(), 4.0);
}

TEST(AtomicModeTest, StrictQuorumsWithWriteBackPassTheAtomicChecker) {
  quorum::MajorityQuorums qs(7);
  ClientOptions options;
  options.write_back = true;
  Cluster c(7, 3, qs, options, /*seed=*/3, /*synchronous=*/false);
  // Writer streams values; two readers race each other.
  std::function<void(int)> writes = [&](int remaining) {
    if (remaining == 0) return;
    c.clients[0]->write(0, util::encode<std::int64_t>(remaining),
                        [&, remaining](Timestamp) { writes(remaining - 1); });
  };
  std::function<void(std::size_t, int)> reads = [&](std::size_t who,
                                                    int remaining) {
    if (remaining == 0) return;
    c.clients[who]->read(0, [&, who, remaining](ReadResult) {
      reads(who, remaining - 1);
    });
  };
  writes(25);
  reads(1, 40);
  reads(2, 40);
  c.sim.run();
  auto verdict = spec::check_atomic(c.history.ops());
  EXPECT_TRUE(verdict.ok) << verdict.violations.front();
}

TEST(AtomicCheckerTest, DetectsNewOldInversion) {
  spec::HistoryRecorder rec;
  rec.record_initial(0);
  auto w = rec.begin_write(0, 0, 1.0, 1);
  rec.end_write(w, 10.0);  // long write, concurrent with both reads
  auto r1 = rec.begin_read(1, 0, 2.0);
  rec.end_read(r1, 3.0, 1);  // sees the new value...
  auto r2 = rec.begin_read(2, 0, 4.0);
  rec.end_read(r2, 5.0, 0);  // ...but a later read sees the old one
  auto verdict = spec::check_atomic(rec.ops());
  ASSERT_FALSE(verdict.ok);
  bool found = false;
  for (const auto& v : verdict.violations) {
    if (v.find("[ATOMIC]") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AtomicCheckerTest, OverlappingReadsMayDisagree) {
  spec::HistoryRecorder rec;
  rec.record_initial(0);
  auto w = rec.begin_write(0, 0, 1.0, 1);
  rec.end_write(w, 10.0);
  auto r1 = rec.begin_read(1, 0, 2.0);
  auto r2 = rec.begin_read(2, 0, 2.5);  // overlaps r1
  rec.end_read(r1, 6.0, 1);
  rec.end_read(r2, 6.5, 0);  // fine: concurrent reads may order freely
  EXPECT_TRUE(spec::check_atomic(rec.ops()).ok);
}

}  // namespace
}  // namespace pqra::core
