#include "core/byzantine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/server_process.hpp"
#include "net/sim_transport.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"
#include "util/math.hpp"

namespace pqra::core {
namespace {

/// n servers, the first \p byzantine of which lie in the given mode.
struct ByzCluster {
  ByzCluster(std::size_t n, std::size_t byzantine, ByzantineMode mode,
             std::size_t fault_bound, const quorum::QuorumSystem& qs,
             std::uint64_t seed = 1)
      : delay(sim::make_constant_delay(1.0)),
        transport(sim, *delay, util::Rng(seed),
                  static_cast<net::NodeId>(n + 1)),
        client(sim, transport, static_cast<net::NodeId>(n), qs, 0,
               util::Rng(seed).fork(55), fault_bound) {
    for (std::size_t s = 0; s < n; ++s) {
      if (s < byzantine) {
        liars.push_back(std::make_unique<ByzantineServerProcess>(
            transport, static_cast<net::NodeId>(s), mode));
      } else {
        honest.push_back(std::make_unique<ServerProcess>(
            transport, static_cast<net::NodeId>(s)));
        honest.back()->replica().preload(0, util::encode<std::int64_t>(0));
      }
    }
  }

  sim::Simulator sim;
  std::unique_ptr<sim::DelayModel> delay;
  net::SimTransport transport;
  std::vector<std::unique_ptr<ByzantineServerProcess>> liars;
  std::vector<std::unique_ptr<ServerProcess>> honest;
  MaskingRegisterClient client;
};

constexpr Timestamp kFabricatedTs = 1ULL << 40;

TEST(MaskingMathTest, HypergeometricPmfSmallCases) {
  // Population 5, 2 marked, draw 2: P[0]=3/10, P[1]=6/10, P[2]=1/10.
  EXPECT_NEAR(util::hypergeometric_pmf(5, 2, 2, 0), 0.3, 1e-12);
  EXPECT_NEAR(util::hypergeometric_pmf(5, 2, 2, 1), 0.6, 1e-12);
  EXPECT_NEAR(util::hypergeometric_pmf(5, 2, 2, 2), 0.1, 1e-12);
  EXPECT_NEAR(util::hypergeometric_cdf(5, 2, 2, 2), 1.0, 1e-12);
}

TEST(MaskingMathTest, ErrorProbabilityDecreasesWithK) {
  double prev = 1.0;
  for (std::uint64_t k = 5; k <= 50; k += 5) {
    double e = util::masking_error_probability(100, k, 2);
    EXPECT_LE(e, prev + 1e-12) << "k=" << k;
    prev = e;
  }
  EXPECT_LT(util::masking_error_probability(100, 40, 2), 1e-6);
}

TEST(MaskingMathTest, ZeroFaultBoundReducesToPlainOverlap) {
  // b = 0: error = P[|R ∩ W| = 0] = the §4 nonoverlap probability.
  for (std::uint64_t k : {1u, 3u, 6u}) {
    EXPECT_NEAR(util::masking_error_probability(34, k, 0),
                util::quorum_nonoverlap_probability(34, k), 1e-12);
  }
}

TEST(ByzantineTest, CleanClusterBehavesLikeARegister) {
  quorum::ProbabilisticQuorums qs(10, 6);
  ByzCluster c(10, 0, ByzantineMode::kStaleLie, 1, qs);
  bool done = false;
  c.client.write(0, util::encode<std::int64_t>(9), [&](Timestamp ts) {
    EXPECT_EQ(ts, 1u);
    c.client.read(0, [&](MaskedReadResult r) {
      EXPECT_TRUE(r.vouched);
      EXPECT_EQ(r.ts, 1u);
      EXPECT_EQ(util::decode<std::int64_t>(r.value), 9);
      done = true;
    });
  });
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(ByzantineTest, FabricatedValuesNeverAcceptedWithinTheFaultBound) {
  // b = 2 colluding fabricators, fault bound 2: they can never assemble the
  // required 3 vouchers, so across many reads the fabricated timestamp must
  // never be returned.
  quorum::ProbabilisticQuorums qs(12, 8);
  ByzCluster c(12, 2, ByzantineMode::kFabricateHighTs, 2, qs, 7);
  int fabricated = 0;
  int vouched_reads = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    c.client.write(0, util::encode<std::int64_t>(remaining),
                   [&, remaining](Timestamp) {
                     c.client.read(0, [&, remaining](MaskedReadResult r) {
                       if (r.vouched) {
                         ++vouched_reads;
                         if (r.ts >= kFabricatedTs) ++fabricated;
                       }
                       loop(remaining - 1);
                     });
                   });
  };
  loop(50);
  c.sim.run();
  EXPECT_GT(vouched_reads, 25);
  EXPECT_EQ(fabricated, 0);
}

TEST(ByzantineTest, ExceedingTheFaultBoundAllowsDeception) {
  // 4 colluders against a client masking only b = 2: quorums of 8 of 12
  // usually include >= 3 colluders, whose identical lie now has enough
  // vouchers and the giant timestamp wins.
  quorum::ProbabilisticQuorums qs(12, 8);
  ByzCluster c(12, 4, ByzantineMode::kFabricateHighTs, 2, qs, 7);
  int fabricated = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    c.client.write(0, util::encode<std::int64_t>(remaining),
                   [&, remaining](Timestamp) {
                     c.client.read(0, [&, remaining](MaskedReadResult r) {
                       if (r.vouched && r.ts >= kFabricatedTs) ++fabricated;
                       loop(remaining - 1);
                     });
                   });
  };
  loop(30);
  c.sim.run();
  EXPECT_GT(fabricated, 0) << "beyond the bound, collusion must win sometimes";
}

TEST(ByzantineTest, StaleLiarsCostFreshnessNotSafety) {
  quorum::ProbabilisticQuorums qs(12, 8);
  ByzCluster c(12, 3, ByzantineMode::kStaleLie, 3, qs, 5);
  bool done = false;
  c.client.write(0, util::encode<std::int64_t>(4), [&](Timestamp) {
    c.client.read(0, [&](MaskedReadResult r) {
      ASSERT_TRUE(r.vouched);
      // Either the fresh value (ts 1) or the initial (ts 0) — never junk.
      EXPECT_LE(r.ts, 1u);
      if (r.ts == 1) {
        EXPECT_EQ(util::decode<std::int64_t>(r.value), 4);
      }
      done = true;
    });
  });
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(ByzantineTest, CorruptedValuesAreOutvoted) {
  quorum::ProbabilisticQuorums qs(10, 7);
  ByzCluster c(10, 2, ByzantineMode::kCorruptValue, 2, qs, 3);
  int bad_payload = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    c.client.write(0, util::encode<std::int64_t>(remaining),
                   [&, remaining](Timestamp ts) {
                     c.client.read(0, [&, remaining, ts](MaskedReadResult r) {
                       if (r.vouched && r.ts == ts &&
                           util::decode<std::int64_t>(r.value) != remaining) {
                         ++bad_payload;
                       }
                       loop(remaining - 1);
                     });
                   });
  };
  loop(40);
  c.sim.run();
  EXPECT_EQ(bad_payload, 0);
}

TEST(ByzantineTest, TooSmallQuorumsReportUnvouchedInsteadOfLying) {
  // k = 2 with fault bound 2 can never produce 3 vouchers: every read must
  // come back unvouched — the client refuses to guess.
  quorum::ProbabilisticQuorums qs(10, 2);
  ByzCluster c(10, 2, ByzantineMode::kFabricateHighTs, 2, qs, 11);
  int vouched = 0;
  int total = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    c.client.read(0, [&, remaining](MaskedReadResult r) {
      ++total;
      if (r.vouched) ++vouched;
      loop(remaining - 1);
    });
  };
  loop(20);
  c.sim.run();
  EXPECT_EQ(total, 20);
  EXPECT_EQ(vouched, 0);
  EXPECT_EQ(c.client.unvouched_reads(), 20u);
}

}  // namespace
}  // namespace pqra::core
