#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/quorum_register_client.hpp"
#include "core/server_process.hpp"
#include "core/spec/checker.hpp"
#include "core/typed_register.hpp"
#include "net/sim_transport.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"

namespace pqra::core {
namespace {

/// A small simulated cluster: n servers at NodeIds [0, n), clients above.
struct Cluster {
  Cluster(std::size_t n, std::size_t num_clients,
          const quorum::QuorumSystem& qs, ClientOptions options = {},
          bool synchronous = true, std::uint64_t seed = 1)
      : quorums(qs),
        delay(synchronous ? sim::make_constant_delay(1.0)
                          : sim::make_exponential_delay(1.0)),
        transport(sim, *delay, util::Rng(seed),
                  static_cast<net::NodeId>(n + num_clients)) {
    for (std::size_t s = 0; s < n; ++s) {
      servers.push_back(std::make_unique<ServerProcess>(
          transport, static_cast<net::NodeId>(s)));
    }
    for (std::size_t c = 0; c < num_clients; ++c) {
      clients.push_back(std::make_unique<QuorumRegisterClient>(
          sim, transport, static_cast<net::NodeId>(n + c), quorums,
          /*server_base=*/0, util::Rng(seed).fork(500 + c), options,
          &history));
    }
  }

  const quorum::QuorumSystem& quorums;
  sim::Simulator sim;
  std::unique_ptr<sim::DelayModel> delay;
  net::SimTransport transport;
  std::vector<std::unique_ptr<ServerProcess>> servers;
  std::vector<std::unique_ptr<QuorumRegisterClient>> clients;
  spec::HistoryRecorder history;
};

Value val(std::int64_t x) { return util::encode(x); }

TEST(RegisterDesTest, WriteThenReadWithFullQuorumReturnsValue) {
  quorum::ProbabilisticQuorums qs(5, 5);  // quorum = everyone: no staleness
  Cluster c(5, 1, qs);
  bool write_done = false;
  bool read_done = false;
  c.clients[0]->write(0, val(11), [&](Timestamp ts) {
    EXPECT_EQ(ts, 1u);
    write_done = true;
    c.clients[0]->read(0, [&](ReadResult r) {
      EXPECT_EQ(r.ts, 1u);
      EXPECT_EQ(util::decode<std::int64_t>(r.value), 11);
      read_done = true;
    });
  });
  c.sim.run();
  EXPECT_TRUE(write_done);
  EXPECT_TRUE(read_done);
}

TEST(RegisterDesTest, TimestampsIncreasePerRegister) {
  quorum::ProbabilisticQuorums qs(5, 3);
  Cluster c(5, 1, qs);
  std::vector<Timestamp> seen;
  std::function<void(int)> write_next = [&](int remaining) {
    if (remaining == 0) return;
    c.clients[0]->write(0, val(remaining), [&, remaining](Timestamp ts) {
      seen.push_back(ts);
      write_next(remaining - 1);
    });
  };
  write_next(5);
  c.sim.run();
  EXPECT_EQ(seen, (std::vector<Timestamp>{1, 2, 3, 4, 5}));
  EXPECT_EQ(c.clients[0]->last_written_ts(0), 5u);
}

TEST(RegisterDesTest, ReadSeesPreloadedInitialValue) {
  quorum::ProbabilisticQuorums qs(4, 2);
  Cluster c(4, 1, qs);
  for (auto& s : c.servers) s->replica().preload(7, val(70));
  c.history.record_initial(7);
  bool done = false;
  c.clients[0]->read(7, [&](ReadResult r) {
    EXPECT_EQ(r.ts, 0u);
    EXPECT_EQ(util::decode<std::int64_t>(r.value), 70);
    done = true;
  });
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(RegisterDesTest, StrictQuorumsAreRegular) {
  // With a majority system, a completed write is always visible.
  quorum::MajorityQuorums qs(7);
  Cluster c(7, 2, qs);
  bool done = false;
  c.clients[0]->write(0, val(5), [&](Timestamp) {
    c.clients[1]->read(0, [&](ReadResult r) {
      EXPECT_EQ(r.ts, 1u);
      EXPECT_EQ(util::decode<std::int64_t>(r.value), 5);
      done = true;
    });
  });
  c.sim.run();
  EXPECT_TRUE(done);
  auto result = spec::check_regular(c.history.ops());
  EXPECT_TRUE(result.ok) << result.violations.front();
}

TEST(RegisterDesTest, TinyQuorumsCanReturnStaleValues) {
  // k = 1 on 30 servers: a reader right after a write almost surely misses.
  quorum::ProbabilisticQuorums qs(30, 1);
  Cluster c(30, 2, qs);
  for (auto& s : c.servers) s->replica().preload(0, val(0));
  c.history.record_initial(0);
  int stale_reads = 0;
  int total_reads = 0;
  std::function<void(int)> rounds = [&](int remaining) {
    if (remaining == 0) return;
    c.clients[0]->write(0, val(remaining), [&, remaining](Timestamp ts) {
      c.clients[1]->read(0, [&, ts, remaining](ReadResult r) {
        ++total_reads;
        if (r.ts < ts) ++stale_reads;
        rounds(remaining - 1);
      });
    });
  };
  rounds(40);
  c.sim.run();
  EXPECT_EQ(total_reads, 40);
  EXPECT_GT(stale_reads, 20) << "k=1 should miss most of the time";
  // ...but [R2] still holds: stale values were genuinely written.
  auto r2 = spec::check_r2(c.history.ops());
  EXPECT_TRUE(r2.ok) << r2.violations.front();
}

TEST(RegisterDesTest, MonotoneClientNeverGoesBackwards) {
  quorum::ProbabilisticQuorums qs(30, 2);
  ClientOptions options;
  options.monotone = true;
  Cluster c(30, 2, qs, options, /*synchronous=*/false, /*seed=*/7);
  for (auto& s : c.servers) s->replica().preload(0, val(0));
  c.history.record_initial(0);
  Timestamp last_seen = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    c.clients[0]->write(0, val(remaining), [&, remaining](Timestamp) {
      c.clients[1]->read(0, [&, remaining](ReadResult r) {
        EXPECT_GE(r.ts, last_seen) << "[R4] violated";
        last_seen = r.ts;
        loop(remaining - 1);
      });
    });
  };
  loop(60);
  c.sim.run();
  auto result = spec::check_random_register(c.history.ops(), true);
  EXPECT_TRUE(result.ok) << result.violations.front();
  EXPECT_GT(c.clients[1]->counters().monotone_cache_hits, 0u);
}

TEST(RegisterDesTest, NonMonotoneClientDoesGoBackwards) {
  quorum::ProbabilisticQuorums qs(30, 2);
  Cluster c(30, 2, qs, {}, /*synchronous=*/false, /*seed=*/7);
  for (auto& s : c.servers) s->replica().preload(0, val(0));
  c.history.record_initial(0);
  bool went_backwards = false;
  Timestamp last_seen = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    c.clients[0]->write(0, val(remaining), [&, remaining](Timestamp) {
      c.clients[1]->read(0, [&, remaining](ReadResult r) {
        if (r.ts < last_seen) went_backwards = true;
        last_seen = r.ts;
        loop(remaining - 1);
      });
    });
  };
  loop(60);
  c.sim.run();
  EXPECT_TRUE(went_backwards)
      << "without the monotone cache, k=2 of 30 must regress eventually";
  auto r4 = spec::check_r4(c.history.ops());
  EXPECT_FALSE(r4.ok);
}

TEST(RegisterDesTest, ParallelReadsOfDistinctRegistersComplete) {
  quorum::ProbabilisticQuorums qs(10, 3);
  Cluster c(10, 1, qs);
  for (RegisterId reg = 0; reg < 8; ++reg) {
    for (auto& s : c.servers) s->replica().preload(reg, val(reg * 10));
    c.history.record_initial(reg);
  }
  int completed = 0;
  for (RegisterId reg = 0; reg < 8; ++reg) {
    c.clients[0]->read(reg, [&completed, reg](ReadResult r) {
      EXPECT_EQ(util::decode<std::int64_t>(r.value),
                static_cast<std::int64_t>(reg) * 10);
      ++completed;
    });
  }
  c.sim.run();
  EXPECT_EQ(completed, 8);
  auto r1 = spec::check_r1(c.history.ops());
  EXPECT_TRUE(r1.ok) << r1.violations.front();
}

TEST(RegisterDesTest, RetryRecoversFromCrashedServers) {
  quorum::ProbabilisticQuorums qs(10, 3);
  ClientOptions options;
  options.retry = RetryPolicy::fixed(10.0);
  Cluster c(10, 1, qs, options);
  // Crash 6 of 10 servers; 4 alive >= k = 3, so retries eventually find a
  // live quorum.
  for (net::NodeId s = 0; s < 6; ++s) c.transport.crash(s);
  bool done = false;
  c.clients[0]->write(0, val(1), [&](Timestamp) {
    c.clients[0]->read(0, [&](ReadResult r) {
      EXPECT_EQ(r.ts, 1u);
      done = true;
    });
  });
  c.sim.run();
  EXPECT_TRUE(done);
  EXPECT_GT(c.clients[0]->counters().retries, 0u);
}

TEST(RegisterDesTest, WithoutRetriesCrashedQuorumStalls) {
  quorum::ProbabilisticQuorums qs(10, 3);
  Cluster c(10, 1, qs);
  for (net::NodeId s = 0; s < 8; ++s) c.transport.crash(s);
  bool done = false;
  c.clients[0]->write(0, val(1), [&](Timestamp) { done = true; });
  c.sim.run();
  EXPECT_FALSE(done) << "2 live servers cannot form a 3-quorum";
  auto r1 = spec::check_r1(c.history.ops());
  EXPECT_FALSE(r1.ok);  // the incomplete execution shows up in [R1]
}

TEST(RegisterDesTest, TypedRegisterRoundTrip) {
  quorum::ProbabilisticQuorums qs(5, 5);
  Cluster c(5, 1, qs);
  TypedRegister<std::vector<std::int64_t>> row(*c.clients[0], 3);
  std::vector<std::int64_t> data{1, 2, 3};
  bool done = false;
  row.write(data, [&](Timestamp) {
    row.read([&](Timestamp ts, std::vector<std::int64_t> v) {
      EXPECT_EQ(ts, 1u);
      EXPECT_EQ(v, data);
      done = true;
    });
  });
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(RegisterDesTest, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    quorum::ProbabilisticQuorums qs(20, 4);
    Cluster c(20, 2, qs, {}, /*synchronous=*/false, seed);
    for (auto& s : c.servers) s->replica().preload(0, val(0));
    std::vector<Timestamp> observed;
    std::function<void(int)> loop = [&](int remaining) {
      if (remaining == 0) return;
      c.clients[0]->write(0, val(remaining), [&, remaining](Timestamp) {
        c.clients[1]->read(0, [&, remaining](ReadResult r) {
          observed.push_back(r.ts);
          loop(remaining - 1);
        });
      });
    };
    loop(30);
    c.sim.run();
    return observed;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace pqra::core
