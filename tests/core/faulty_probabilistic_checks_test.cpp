#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/spec/probabilistic_checks.hpp"
#include "quorum/probabilistic.hpp"
#include "util/math.hpp"

/// Statistical [R3]/[R5] validation under server crashes (ISSUE satellite:
/// the geometric stale-read tail survives faults).  With f servers crashed
/// and clients retrying until their access set is fully live, every quorum
/// is a uniform k-subset of the n' = n - f live servers — so Theorems 1 and
/// 4 hold verbatim with n replaced by n'.

namespace pqra::core::spec {
namespace {

std::vector<quorum::ServerId> first_f(std::size_t f) {
  std::vector<quorum::ServerId> crashed;
  for (std::size_t s = 0; s < f; ++s) {
    crashed.push_back(static_cast<quorum::ServerId>(s));
  }
  return crashed;
}

TEST(FaultyR5Test, NoCrashesMatchesTheUnfaultedSampler) {
  util::Rng rng_a(11), rng_b(11);
  quorum::ProbabilisticQuorums qs(34, 4);
  auto plain = r5_y_samples(qs, 2000, rng_a);
  auto faulted = r5_y_samples_under_crashes(qs, 2000, rng_b, {});
  EXPECT_EQ(plain, faulted);  // no crashes => rejection never triggers
}

TEST(FaultyR5Test, MeanMatchesLiveServerCount) {
  // E[Y] = 1/q' with q' computed at n' = n - f.
  util::Rng rng(13);
  quorum::ProbabilisticQuorums qs(34, 4);
  for (std::size_t f : {5u, 10u, 17u}) {
    auto samples = r5_y_samples_under_crashes(qs, 20000, rng, first_f(f));
    double mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
                  static_cast<double>(samples.size());
    double expected = util::expected_reads_until_overlap(34 - f, 4);
    EXPECT_NEAR(mean, expected, 0.05 * expected + 0.05) << "f=" << f;
  }
}

TEST(FaultyR5Test, TailStaysGeometricUnderCrashes) {
  // [R5] with n' live servers: P(Y > r) <= (1-q')^r.
  util::Rng rng(17);
  quorum::ProbabilisticQuorums qs(34, 3);
  const std::size_t f = 10;
  double q = util::quorum_overlap_probability(34 - f, 3);
  auto samples = r5_y_samples_under_crashes(qs, 30000, rng, first_f(f));
  for (std::size_t r : {1u, 2u, 5u, 10u}) {
    double tail = 0;
    for (auto y : samples) {
      if (y > r) ++tail;
    }
    tail /= static_cast<double>(samples.size());
    double bound = std::pow(1.0 - q, static_cast<double>(r));
    EXPECT_LE(tail, bound + 0.02) << "r=" << r;
  }
}

TEST(FaultyR5Test, CrashesShortenTheTail) {
  // Fewer live servers => denser overlap => stochastically smaller Y.
  util::Rng rng(19);
  quorum::ProbabilisticQuorums qs(34, 4);
  auto healthy = r5_y_samples(qs, 20000, rng);
  auto faulted = r5_y_samples_under_crashes(qs, 20000, rng, first_f(17));
  auto mean = [](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
  };
  EXPECT_LT(mean(faulted), mean(healthy));
}

TEST(FaultyR3Test, SurvivalBoundHoldsAtTheLiveServerCount) {
  // Theorem 1 at n': P[W's quorum survives l writes] <= k ((n'-k)/n')^l.
  util::Rng rng(23);
  quorum::ProbabilisticQuorums qs(34, 4);
  const std::size_t f = 10;
  for (std::size_t l : {5u, 10u, 20u, 40u}) {
    double rate = r3_survival_rate_under_crashes(qs, l, 4000, rng, first_f(f));
    double bound = util::r3_survival_bound(34 - f, 4, l);
    EXPECT_LE(rate, bound + 0.02) << "l=" << l;
  }
}

TEST(FaultyR3Test, CrashesAccelerateOverwriting) {
  // With fewer live servers each subsequent write covers a larger fraction
  // of them, so the target quorum is overwritten sooner.
  util::Rng rng(29);
  quorum::ProbabilisticQuorums qs(34, 4);
  const std::size_t l = 10;
  double healthy = r3_survival_rate(qs, l, 4000, rng);
  double faulted = r3_survival_rate_under_crashes(qs, l, 4000, rng,
                                                  first_f(17));
  EXPECT_LT(faulted, healthy);
}

}  // namespace
}  // namespace pqra::core::spec
