#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/spec/batch.hpp"

namespace pqra::core::spec {
namespace {

OpRecord write_op(NodeId proc, RegisterId reg, Timestamp ts, sim::Time t0,
                  sim::Time t1, bool responded = true) {
  return OpRecord{OpKind::kWrite, proc, reg, t0, t1, responded, ts};
}

OpRecord read_op(NodeId proc, RegisterId reg, Timestamp ts, sim::Time t0,
                 sim::Time t1, bool responded = true) {
  return OpRecord{OpKind::kRead, proc, reg, t0, t1, responded, ts};
}

/// Clean single-writer history: initial, one write, one fresh read.
std::vector<OpRecord> clean_history() {
  return {
      write_op(/*proc=*/0, /*reg=*/0, /*ts=*/0, 0.0, 0.0),  // initial
      write_op(/*proc=*/1, /*reg=*/0, /*ts=*/1, 1.0, 2.0),
      read_op(/*proc=*/2, /*reg=*/0, /*ts=*/1, 3.0, 4.0),
  };
}

BatchOptions all_rules() {
  BatchOptions o;
  o.r1 = o.r2 = o.r4 = o.single_writer = true;
  return o;
}

TEST(SpecBatchTest, RuleIdsRoundTrip) {
  const Rule rules[] = {Rule::kR1,           Rule::kR2,      Rule::kR4,
                        Rule::kSingleWriter, Rule::kRegular, Rule::kAtomic};
  for (Rule r : rules) {
    const auto back = parse_rule(rule_id(r));
    ASSERT_TRUE(back.has_value()) << rule_id(r);
    EXPECT_EQ(*back, r);
  }
  EXPECT_EQ(std::string(rule_id(Rule::kR4)), "R4");
  EXPECT_EQ(std::string(rule_id(Rule::kSingleWriter)), "single-writer");
  EXPECT_FALSE(parse_rule("R9").has_value());
  EXPECT_FALSE(parse_rule("").has_value());
}

TEST(SpecBatchTest, CleanHistoryPassesEveryRule) {
  const BatchResult r = check_batch(clean_history(), all_rules());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.first_failure(), nullptr);
  EXPECT_EQ(r.summary(), "ok");
  EXPECT_EQ(r.num_violations(), 0u);
  EXPECT_EQ(r.outcomes.size(), 4u);  // R1, R2, R4, single-writer selected
}

// Each of the following histories violates exactly ONE rule; the batch
// checker must attribute it to exactly that rule id.

TEST(SpecBatchTest, UnrespondedReadFlagsOnlyR1) {
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(read_op(3, 0, 0, 5.0, 0.0, /*responded=*/false));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_FALSE(r.ok());
  ASSERT_NE(r.first_failure(), nullptr);
  EXPECT_EQ(r.first_failure()->rule, Rule::kR1);
  EXPECT_EQ(r.num_violations(), 1u);
  EXPECT_EQ(r.summary().substr(0, 4), "R1: ");
}

TEST(SpecBatchTest, NeverWrittenTimestampFlagsOnlyR2) {
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(read_op(3, 0, /*ts=*/7, 5.0, 6.0));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_FALSE(r.ok());
  ASSERT_NE(r.first_failure(), nullptr);
  EXPECT_EQ(r.first_failure()->rule, Rule::kR2);
  EXPECT_EQ(r.num_violations(), 1u);
  EXPECT_EQ(r.summary().substr(0, 4), "R2: ");
}

TEST(SpecBatchTest, BackwardsReadFlagsOnlyR4) {
  std::vector<OpRecord> ops = clean_history();
  // Same process reads ts 1 then ts 0: legal for [R2] (both were written)
  // but monotone reads are violated.
  ops.push_back(read_op(2, 0, /*ts=*/0, 5.0, 6.0));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_FALSE(r.ok());
  ASSERT_NE(r.first_failure(), nullptr);
  EXPECT_EQ(r.first_failure()->rule, Rule::kR4);
  EXPECT_EQ(r.num_violations(), 1u);
  EXPECT_EQ(r.summary().substr(0, 4), "R4: ");
}

TEST(SpecBatchTest, SecondWriterFlagsOnlySingleWriter) {
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(write_op(/*proc=*/5, /*reg=*/0, /*ts=*/2, 5.0, 6.0));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_FALSE(r.ok());
  ASSERT_NE(r.first_failure(), nullptr);
  EXPECT_EQ(r.first_failure()->rule, Rule::kSingleWriter);
  EXPECT_EQ(r.num_violations(), 1u);
}

TEST(SpecBatchTest, DeselectedRuleIsNotRun) {
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(read_op(2, 0, 0, 5.0, 6.0));  // [R4] violation
  BatchOptions o = all_rules();
  o.r4 = false;
  const BatchResult r = check_batch(ops, o);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.outcomes.size(), 3u);
}

TEST(SpecBatchTest, FirstFailureFollowsRuleOrder) {
  // Violates both [R1] (unresponded read) and single-writer (second
  // writer); attribution must deterministically pick the first rule in
  // declaration order, R1.
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(read_op(3, 0, 0, 5.0, 0.0, /*responded=*/false));
  ops.push_back(write_op(5, 0, 2, 5.0, 6.0));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_NE(r.first_failure(), nullptr);
  EXPECT_EQ(r.first_failure()->rule, Rule::kR1);
  EXPECT_EQ(r.num_violations(), 2u);
}

TEST(SpecBatchTest, SummaryCountsExtraViolations) {
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(read_op(3, 0, 7, 5.0, 6.0));
  ops.push_back(read_op(3, 0, 9, 7.0, 8.0));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_FALSE(r.ok());
  // Two [R2] violations -> "R2: <first> (+1 more)".
  EXPECT_NE(r.summary().find("(+1 more)"), std::string::npos) << r.summary();
}

}  // namespace
}  // namespace pqra::core::spec
