#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/spec/batch.hpp"

namespace pqra::core::spec {
namespace {

OpRecord write_op(NodeId proc, RegisterId reg, Timestamp ts, sim::Time t0,
                  sim::Time t1, bool responded = true) {
  return OpRecord{OpKind::kWrite, proc, reg, t0, t1, responded, ts};
}

OpRecord read_op(NodeId proc, RegisterId reg, Timestamp ts, sim::Time t0,
                 sim::Time t1, bool responded = true) {
  return OpRecord{OpKind::kRead, proc, reg, t0, t1, responded, ts};
}

/// Clean single-writer history: initial, one write, one fresh read.
std::vector<OpRecord> clean_history() {
  return {
      write_op(/*proc=*/0, /*reg=*/0, /*ts=*/0, 0.0, 0.0),  // initial
      write_op(/*proc=*/1, /*reg=*/0, /*ts=*/1, 1.0, 2.0),
      read_op(/*proc=*/2, /*reg=*/0, /*ts=*/1, 3.0, 4.0),
  };
}

BatchOptions all_rules() {
  BatchOptions o;
  o.r1 = o.r2 = o.r4 = o.single_writer = true;
  return o;
}

TEST(SpecBatchTest, RuleIdsRoundTrip) {
  const Rule rules[] = {Rule::kR1,           Rule::kR2,      Rule::kR4,
                        Rule::kSingleWriter, Rule::kRegular, Rule::kAtomic};
  for (Rule r : rules) {
    const auto back = parse_rule(rule_id(r));
    ASSERT_TRUE(back.has_value()) << rule_id(r);
    EXPECT_EQ(*back, r);
  }
  EXPECT_EQ(std::string(rule_id(Rule::kR4)), "R4");
  EXPECT_EQ(std::string(rule_id(Rule::kSingleWriter)), "single-writer");
  EXPECT_FALSE(parse_rule("R9").has_value());
  EXPECT_FALSE(parse_rule("").has_value());
}

TEST(SpecBatchTest, CleanHistoryPassesEveryRule) {
  const BatchResult r = check_batch(clean_history(), all_rules());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.first_failure(), nullptr);
  EXPECT_EQ(r.summary(), "ok");
  EXPECT_EQ(r.num_violations(), 0u);
  EXPECT_EQ(r.outcomes.size(), 4u);  // R1, R2, R4, single-writer selected
}

// Each of the following histories violates exactly ONE rule; the batch
// checker must attribute it to exactly that rule id.

TEST(SpecBatchTest, UnrespondedReadFlagsOnlyR1) {
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(read_op(3, 0, 0, 5.0, 0.0, /*responded=*/false));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_FALSE(r.ok());
  ASSERT_NE(r.first_failure(), nullptr);
  EXPECT_EQ(r.first_failure()->rule, Rule::kR1);
  EXPECT_EQ(r.num_violations(), 1u);
  EXPECT_EQ(r.summary().substr(0, 4), "R1: ");
}

TEST(SpecBatchTest, NeverWrittenTimestampFlagsOnlyR2) {
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(read_op(3, 0, /*ts=*/7, 5.0, 6.0));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_FALSE(r.ok());
  ASSERT_NE(r.first_failure(), nullptr);
  EXPECT_EQ(r.first_failure()->rule, Rule::kR2);
  EXPECT_EQ(r.num_violations(), 1u);
  EXPECT_EQ(r.summary().substr(0, 4), "R2: ");
}

TEST(SpecBatchTest, BackwardsReadFlagsOnlyR4) {
  std::vector<OpRecord> ops = clean_history();
  // Same process reads ts 1 then ts 0: legal for [R2] (both were written)
  // but monotone reads are violated.
  ops.push_back(read_op(2, 0, /*ts=*/0, 5.0, 6.0));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_FALSE(r.ok());
  ASSERT_NE(r.first_failure(), nullptr);
  EXPECT_EQ(r.first_failure()->rule, Rule::kR4);
  EXPECT_EQ(r.num_violations(), 1u);
  EXPECT_EQ(r.summary().substr(0, 4), "R4: ");
}

TEST(SpecBatchTest, SecondWriterFlagsOnlySingleWriter) {
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(write_op(/*proc=*/5, /*reg=*/0, /*ts=*/2, 5.0, 6.0));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_FALSE(r.ok());
  ASSERT_NE(r.first_failure(), nullptr);
  EXPECT_EQ(r.first_failure()->rule, Rule::kSingleWriter);
  EXPECT_EQ(r.num_violations(), 1u);
}

TEST(SpecBatchTest, DeselectedRuleIsNotRun) {
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(read_op(2, 0, 0, 5.0, 6.0));  // [R4] violation
  BatchOptions o = all_rules();
  o.r4 = false;
  const BatchResult r = check_batch(ops, o);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.outcomes.size(), 3u);
}

TEST(SpecBatchTest, FirstFailureFollowsRuleOrder) {
  // Violates both [R1] (unresponded read) and single-writer (second
  // writer); attribution must deterministically pick the first rule in
  // declaration order, R1.
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(read_op(3, 0, 0, 5.0, 0.0, /*responded=*/false));
  ops.push_back(write_op(5, 0, 2, 5.0, 6.0));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_NE(r.first_failure(), nullptr);
  EXPECT_EQ(r.first_failure()->rule, Rule::kR1);
  EXPECT_EQ(r.num_violations(), 2u);
}

TEST(SpecBatchTest, SummaryCountsExtraViolations) {
  std::vector<OpRecord> ops = clean_history();
  ops.push_back(read_op(3, 0, 7, 5.0, 6.0));
  ops.push_back(read_op(3, 0, 9, 7.0, 8.0));
  const BatchResult r = check_batch(ops, all_rules());
  ASSERT_FALSE(r.ok());
  // Two [R2] violations -> "R2: <first> (+1 more)".
  EXPECT_NE(r.summary().find("(+1 more)"), std::string::npos) << r.summary();
}

// Contended keys (writers-per-key > 1) have independent per-writer
// timestamp counters, so several writes may share (reg, ts).  A read is
// justified if ANY of them could be its source; [R2] must not attribute it
// to an arbitrary one.
TEST(SpecBatchTest, DuplicateTimestampsAcrossWritersJustifyReads) {
  BatchOptions o;
  o.single_writer = false;  // two writers on one register, by design
  std::vector<OpRecord> ops = {
      write_op(/*proc=*/1, /*reg=*/0, /*ts=*/1, 1.0, 2.0),
      read_op(/*proc=*/3, /*reg=*/0, /*ts=*/1, 3.0, 4.0),
      // A second writer's independent counter re-issues ts=1 AFTER the read
      // completed; the read is still justified by proc 1's write.
      write_op(/*proc=*/2, /*reg=*/0, /*ts=*/1, 10.0, 11.0),
  };
  EXPECT_TRUE(check_batch(ops, o).ok()) << check_batch(ops, o).summary();

  // When EVERY candidate began after the read ended, [R2] still fires.
  std::vector<OpRecord> bad = {
      read_op(/*proc=*/3, /*reg=*/0, /*ts=*/1, 3.0, 4.0),
      write_op(/*proc=*/1, /*reg=*/0, /*ts=*/1, 8.0, 9.0),
      write_op(/*proc=*/2, /*reg=*/0, /*ts=*/1, 10.0, 11.0),
  };
  const BatchResult r = check_batch(bad, o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.first_failure()->rule, Rule::kR2);
}

// ---- key-partitioned batch checking (check_batch_by_key) ----

/// Three-key history: key 0 and key 2 are clean, key 1's cleanliness is up
/// to the caller (append violations there to test attribution).
std::vector<OpRecord> three_key_history() {
  std::vector<OpRecord> ops;
  for (RegisterId reg = 0; reg < 3; ++reg) {
    ops.push_back(write_op(/*proc=*/0, reg, /*ts=*/0, 0.0, 0.0));  // initial
    ops.push_back(write_op(/*proc=*/1, reg, /*ts=*/1, 1.0, 2.0));
    ops.push_back(read_op(/*proc=*/2, reg, /*ts=*/1, 3.0, 4.0));
  }
  return ops;
}

TEST(SpecBatchByKeyTest, CleanHistoryReportsEveryKeyChecked) {
  const KeyedBatchResult r =
      check_batch_by_key(three_key_history(), all_rules());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.keys_checked, 3u);
  EXPECT_EQ(r.num_violations, 0u);
  EXPECT_FALSE(r.first.has_value());
  EXPECT_EQ(r.summary(), "ok over 3 keys");
}

// Partitioning by key never changes the verdict (every rule is per-key
// independent): same ok() and violation count as the unkeyed batch.
TEST(SpecBatchByKeyTest, AgreesWithUnkeyedBatchOnMixedKeyHistories) {
  std::vector<OpRecord> clean = three_key_history();
  std::vector<OpRecord> dirty = three_key_history();
  dirty.push_back(read_op(3, 1, /*ts=*/7, 5.0, 6.0));   // [R2] on key 1
  dirty.push_back(write_op(5, 2, /*ts=*/2, 5.0, 6.0));  // [SW] on key 2

  for (const auto& ops : {clean, dirty}) {
    const BatchResult flat = check_batch(ops, all_rules());
    const KeyedBatchResult keyed = check_batch_by_key(ops, all_rules());
    EXPECT_EQ(keyed.ok(), flat.ok());
    EXPECT_EQ(keyed.num_violations, flat.num_violations());
    EXPECT_EQ(keyed.keys_checked, 3u);
  }
}

TEST(SpecBatchByKeyTest, AttributionPicksTheLowestViolatingKey) {
  std::vector<OpRecord> ops = three_key_history();
  // Violations on keys 2 and 1 (in that record order): attribution must
  // pick key 1, and within it the first rule in declaration order.
  ops.push_back(read_op(3, 2, /*ts=*/9, 5.0, 6.0));                   // R2 @ 2
  ops.push_back(read_op(3, 1, /*ts=*/0, 5.0, 0.0, /*resp=*/false));  // R1 @ 1
  ops.push_back(read_op(3, 1, /*ts=*/7, 5.0, 6.0));                  // R2 @ 1

  const KeyedBatchResult r = check_batch_by_key(ops, all_rules());
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(r.first.has_value());
  EXPECT_EQ(r.first->key, 1u);
  EXPECT_EQ(r.first->rule, Rule::kR1);
  EXPECT_EQ(r.num_violations, 3u);
}

TEST(SpecBatchByKeyTest, SummaryNamesRuleAndKeyAndExtraCount) {
  std::vector<OpRecord> ops = three_key_history();
  ops.push_back(read_op(3, 1, /*ts=*/7, 5.0, 6.0));
  ops.push_back(read_op(3, 2, /*ts=*/9, 5.0, 6.0));
  const KeyedBatchResult r = check_batch_by_key(ops, all_rules());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.summary().substr(0, 10), "R2 key=1: ") << r.summary();
  EXPECT_NE(r.summary().find("(+1 more)"), std::string::npos) << r.summary();
}

TEST(SpecBatchByKeyTest, DeselectedRulesStayDeselectedPerKey) {
  std::vector<OpRecord> ops = three_key_history();
  ops.push_back(read_op(2, 1, /*ts=*/0, 5.0, 6.0));  // backwards: [R4] only
  BatchOptions o = all_rules();
  o.r4 = false;
  EXPECT_TRUE(check_batch_by_key(ops, o).ok());
  o.r4 = true;
  const KeyedBatchResult r = check_batch_by_key(ops, o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.first->rule, Rule::kR4);
  EXPECT_EQ(r.first->key, 1u);
}

}  // namespace
}  // namespace pqra::core::spec
