#include <gtest/gtest.h>

#include <memory>

#include "core/quorum_register_client.hpp"
#include "core/server_process.hpp"
#include "net/sim_transport.hpp"
#include "quorum/majority.hpp"
#include "quorum/probabilistic.hpp"
#include "util/codec.hpp"
#include "util/math.hpp"

/// Edge cases of the register client: concurrent operations, spurious and
/// mismatched acks, oversized values, many registers.

namespace pqra::core {
namespace {

struct EdgeCluster {
  explicit EdgeCluster(std::size_t n, ClientOptions options = {},
                       std::uint64_t seed = 1)
      : qs(n),
        delay(sim::make_exponential_delay(1.0)),
        transport(sim, *delay, util::Rng(seed),
                  static_cast<net::NodeId>(n + 1)),
        client(std::make_unique<QuorumRegisterClient>(
            sim, transport, static_cast<net::NodeId>(n), qs, 0,
            util::Rng(seed).fork(44), options, nullptr)) {
    for (std::size_t s = 0; s < n; ++s) {
      servers.push_back(std::make_unique<ServerProcess>(
          transport, static_cast<net::NodeId>(s)));
    }
  }

  quorum::MajorityQuorums qs;
  sim::Simulator sim;
  std::unique_ptr<sim::DelayModel> delay;
  net::SimTransport transport;
  std::vector<std::unique_ptr<ServerProcess>> servers;
  std::unique_ptr<QuorumRegisterClient> client;
};

TEST(ClientEdgeTest, ConcurrentReadsOfTheSameRegisterBothComplete) {
  EdgeCluster c(5);
  for (auto& s : c.servers) s->replica().preload(0, util::encode<std::int64_t>(1));
  int completed = 0;
  c.client->read(0, [&](ReadResult) { ++completed; });
  c.client->read(0, [&](ReadResult) { ++completed; });
  c.sim.run();
  EXPECT_EQ(completed, 2);
}

TEST(ClientEdgeTest, InterleavedWritesToManyRegisters) {
  EdgeCluster c(7);
  constexpr int kRegs = 32;
  int acked = 0;
  for (net::RegisterId reg = 0; reg < kRegs; ++reg) {
    c.client->write(reg, util::encode<std::int64_t>(reg), [&](Timestamp ts) {
      EXPECT_EQ(ts, 1u);
      ++acked;
    });
  }
  c.sim.run();
  EXPECT_EQ(acked, kRegs);
  // Every register is independently versioned.
  EXPECT_EQ(c.client->last_written_ts(0), 1u);
  EXPECT_EQ(c.client->last_written_ts(kRegs - 1), 1u);
  EXPECT_EQ(c.client->last_written_ts(kRegs), 0u);
}

TEST(ClientEdgeTest, SpuriousAcksForUnknownOpsAreIgnored) {
  EdgeCluster c(5);
  // Inject acks the client never asked for.
  c.transport.send(0, 5, net::Message::read_ack(0, 424242, 9, {}));
  c.transport.send(1, 5, net::Message::write_ack(0, 424243, 9));
  bool done = false;
  c.client->read(0, [&](ReadResult) { done = true; });
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(ClientEdgeTest, MismatchedAckTypeForPendingOpIsDropped) {
  EdgeCluster c(5);
  bool done = false;
  c.client->read(0, [&](ReadResult) { done = true; });
  // A write ack aimed at the read's op id (op ids start at 1).
  c.transport.send(0, 5, net::Message::write_ack(0, 1, 3));
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(ClientEdgeTest, LargeValuesRoundTrip) {
  EdgeCluster c(5);
  std::vector<std::int64_t> big(4096);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::int64_t>(i * i);
  }
  bool done = false;
  c.client->write(0, util::encode(big), [&](Timestamp) {
    c.client->read(0, [&](ReadResult r) {
      EXPECT_EQ(util::decode<std::vector<std::int64_t>>(r.value), big);
      done = true;
    });
  });
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(ClientEdgeTest, EmptyValueIsAValidValue) {
  EdgeCluster c(5);
  bool done = false;
  c.client->write(0, Value{}, [&](Timestamp ts) {
    EXPECT_EQ(ts, 1u);
    c.client->read(0, [&](ReadResult r) {
      EXPECT_EQ(r.ts, 1u);
      EXPECT_TRUE(r.value.empty());
      done = true;
    });
  });
  c.sim.run();
  EXPECT_TRUE(done);
}

TEST(ClientEdgeTest, CallbacksAreRequired) {
  EdgeCluster c(5);
  EXPECT_THROW(c.client->read(0, nullptr), std::logic_error);
  EXPECT_THROW(c.client->write(0, Value{}, nullptr), std::logic_error);
}

TEST(ClientEdgeTest, RetryTimersOnCompletedOpsAreHarmless) {
  ClientOptions options;
  options.retry = RetryPolicy::fixed(0.5);  // much shorter than round trips: several
                                // retries fire for every op
  EdgeCluster c(9, options, 3);
  int completed = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    c.client->write(0, util::encode<std::int64_t>(remaining),
                    [&, remaining](Timestamp) {
                      c.client->read(0, [&, remaining](ReadResult) {
                        ++completed;
                        loop(remaining - 1);
                      });
                    });
  };
  loop(20);
  c.sim.run();
  EXPECT_EQ(completed, 20);
  EXPECT_GT(c.client->counters().retries, 0u);
}

TEST(ClientEdgeTest, RepairAndWriteBackCompose) {
  ClientOptions options;
  options.monotone = true;
  options.read_repair = true;
  options.write_back = true;
  EdgeCluster c(9, options, 5);
  for (auto& s : c.servers) s->replica().preload(0, util::encode<std::int64_t>(0));
  int completed = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    c.client->write(0, util::encode<std::int64_t>(remaining),
                    [&, remaining](Timestamp) {
                      c.client->read(0, [&, remaining](ReadResult) {
                        ++completed;
                        loop(remaining - 1);
                      });
                    });
  };
  loop(15);
  c.sim.run();
  EXPECT_EQ(completed, 15);
  EXPECT_EQ(c.client->counters().write_backs, 15u);
}

/// DES cluster with probabilistic quorums for the deadline/degradation
/// tests; servers can be crashed through the transport's fault injector.
struct FaultableCluster {
  explicit FaultableCluster(std::size_t n, std::size_t k,
                            ClientOptions options = {}, std::uint64_t seed = 1)
      : qs(n, k),
        delay(sim::make_exponential_delay(1.0)),
        transport(sim, *delay, util::Rng(seed),
                  static_cast<net::NodeId>(n + 1)),
        client(std::make_unique<QuorumRegisterClient>(
            sim, transport, static_cast<net::NodeId>(n), qs, 0,
            util::Rng(seed).fork(44), options, nullptr)) {
    for (std::size_t s = 0; s < n; ++s) {
      servers.push_back(std::make_unique<ServerProcess>(
          transport, static_cast<net::NodeId>(s)));
      servers.back()->replica().preload(0, util::encode<std::int64_t>(7));
    }
  }

  quorum::ProbabilisticQuorums qs;
  sim::Simulator sim;
  std::unique_ptr<sim::DelayModel> delay;
  net::SimTransport transport;
  std::vector<std::unique_ptr<ServerProcess>> servers;
  std::unique_ptr<QuorumRegisterClient> client;
};

TEST(ClientDeadlineTest, ReadFailsOutrightWhenNoServerAnswers) {
  ClientOptions options;
  options.retry.rpc_timeout = 2.0;
  options.retry.deadline = 10.0;
  FaultableCluster c(5, 3, options);
  for (net::NodeId s = 0; s < 5; ++s) c.transport.crash(s);

  bool called = false;
  c.client->read(0, [&](ReadResult r) {
    called = true;
    EXPECT_EQ(r.status, OpStatus::kTimedOut);
    EXPECT_EQ(r.acks, 0u);
  });
  c.sim.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(c.client->counters().op_failures, 1u);
  EXPECT_EQ(c.client->counters().reads_completed, 0u);
  EXPECT_GT(c.client->counters().retries, 0u);
}

TEST(ClientDeadlineTest, DegradedReadReportsStalenessBound) {
  ClientOptions options;
  options.retry.rpc_timeout = 2.0;
  options.retry.backoff_factor = 1.0;  // steady attempts: more live draws
  options.retry.deadline = 30.0;
  options.retry.degraded_ok = true;
  options.retry.min_degraded_acks = 1;
  FaultableCluster c(5, 3, options);
  for (net::NodeId s = 1; s < 5; ++s) c.transport.crash(s);  // only 0 lives

  bool called = false;
  c.client->read(0, [&](ReadResult r) {
    called = true;
    EXPECT_EQ(r.status, OpStatus::kDegraded);
    EXPECT_EQ(r.acks, 1u);
    // epsilon-intersection: P(this 1-server access set missed the latest
    // write's 3-server quorum) = C(5-3,1)/C(5,1) = 0.4.
    EXPECT_NEAR(r.staleness_bound,
                util::asymmetric_nonoverlap_probability(5, 3, 1), 1e-12);
  });
  c.sim.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(c.client->counters().degraded_reads, 1u);
  EXPECT_EQ(c.client->counters().op_failures, 0u);
}

TEST(ClientDeadlineTest, DegradedWriteReportsEffectiveAccessSet) {
  ClientOptions options;
  options.retry.rpc_timeout = 2.0;
  options.retry.backoff_factor = 1.0;  // steady attempts: more live draws
  options.retry.deadline = 30.0;
  options.retry.degraded_ok = true;
  FaultableCluster c(5, 3, options);
  for (net::NodeId s = 2; s < 5; ++s) c.transport.crash(s);  // 0 and 1 live

  bool called = false;
  c.client->write(0, util::encode<std::int64_t>(9), [&](WriteResult w) {
    called = true;
    EXPECT_EQ(w.status, OpStatus::kDegraded);
    EXPECT_EQ(w.acks, 2u);
    // P(a future 3-server read misses this 2-server write set).
    EXPECT_NEAR(w.staleness_bound,
                util::asymmetric_nonoverlap_probability(5, 2, 3), 1e-12);
  });
  c.sim.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(c.client->counters().degraded_writes, 1u);
}

TEST(ClientDeadlineTest, HealthyClusterNeverDegrades) {
  ClientOptions options;
  options.retry.rpc_timeout = 2.0;
  options.retry.deadline = 50.0;
  options.retry.degraded_ok = true;
  FaultableCluster c(5, 3, options);

  int ok = 0;
  c.client->write(0, util::encode<std::int64_t>(1), [&](WriteResult w) {
    EXPECT_EQ(w.status, OpStatus::kOk);
    ++ok;
    c.client->read(0, [&](ReadResult r) {
      EXPECT_EQ(r.status, OpStatus::kOk);
      EXPECT_EQ(r.acks, 3u);
      ++ok;
    });
  });
  c.sim.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(c.client->counters().degraded_reads, 0u);
  EXPECT_EQ(c.client->counters().degraded_writes, 0u);
  EXPECT_EQ(c.client->counters().op_failures, 0u);
}

}  // namespace
}  // namespace pqra::core
