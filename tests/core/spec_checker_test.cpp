#include "core/spec/checker.hpp"

#include <gtest/gtest.h>

namespace pqra::core::spec {
namespace {

TEST(SpecCheckerTest, CleanHistoryPassesEverything) {
  HistoryRecorder rec;
  rec.record_initial(0);
  auto w1 = rec.begin_write(0, 0, 1.0, 1);
  rec.end_write(w1, 2.0);
  auto r1 = rec.begin_read(1, 0, 3.0);
  rec.end_read(r1, 4.0, 1);
  auto result = check_random_register(rec.ops(), true);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(check_regular(rec.ops()).ok);
}

TEST(SpecCheckerTest, R1CatchesUnrespondedOps) {
  HistoryRecorder rec;
  rec.begin_read(0, 0, 1.0);
  auto result = check_r1(rec.ops());
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations[0].find("[R1]"), std::string::npos);
}

TEST(SpecCheckerTest, R2CatchesInventedTimestamp) {
  HistoryRecorder rec;
  rec.record_initial(0);
  auto r = rec.begin_read(1, 0, 1.0);
  rec.end_read(r, 2.0, 7);  // ts 7 was never written
  auto result = check_r2(rec.ops());
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations[0].find("never-written"), std::string::npos);
}

TEST(SpecCheckerTest, R2CatchesReadFromTheFuture) {
  HistoryRecorder rec;
  rec.record_initial(0);
  auto r = rec.begin_read(1, 0, 1.0);
  rec.end_read(r, 2.0, 1);  // returns ts 1 ...
  auto w = rec.begin_write(0, 0, 5.0, 1);  // ... written only later
  rec.end_write(w, 6.0);
  auto result = check_r2(rec.ops());
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations[0].find("began after"), std::string::npos);
}

TEST(SpecCheckerTest, R2AllowsReadingConcurrentWrite) {
  HistoryRecorder rec;
  auto w = rec.begin_write(0, 0, 1.0, 1);
  auto r = rec.begin_read(1, 0, 1.5);  // overlaps the write
  rec.end_read(r, 2.0, 1);
  rec.end_write(w, 3.0);
  EXPECT_TRUE(check_r2(rec.ops()).ok);
}

TEST(SpecCheckerTest, R4CatchesBackwardReads) {
  HistoryRecorder rec;
  rec.record_initial(0);
  for (Timestamp ts = 1; ts <= 2; ++ts) {
    auto w = rec.begin_write(0, 0, ts * 10.0, ts);
    rec.end_write(w, ts * 10.0 + 1);
  }
  auto r1 = rec.begin_read(1, 0, 30.0);
  rec.end_read(r1, 31.0, 2);
  auto r2 = rec.begin_read(1, 0, 32.0);
  rec.end_read(r2, 33.0, 1);  // older than the previous read
  auto result = check_r4(rec.ops());
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations[0].find("[R4]"), std::string::npos);
}

TEST(SpecCheckerTest, R4IsPerProcess) {
  HistoryRecorder rec;
  rec.record_initial(0);
  for (Timestamp ts = 1; ts <= 2; ++ts) {
    auto w = rec.begin_write(0, 0, ts * 10.0, ts);
    rec.end_write(w, ts * 10.0 + 1);
  }
  auto r1 = rec.begin_read(1, 0, 30.0);
  rec.end_read(r1, 31.0, 2);
  auto r2 = rec.begin_read(2, 0, 32.0);  // *different* process
  rec.end_read(r2, 33.0, 1);
  EXPECT_TRUE(check_r4(rec.ops()).ok);
}

TEST(SpecCheckerTest, R4IsPerRegister) {
  HistoryRecorder rec;
  rec.record_initial(0);
  rec.record_initial(1);
  auto w = rec.begin_write(0, 0, 1.0, 1);
  rec.end_write(w, 2.0);
  auto r1 = rec.begin_read(1, 0, 3.0);
  rec.end_read(r1, 4.0, 1);
  auto r2 = rec.begin_read(1, 1, 5.0);
  rec.end_read(r2, 6.0, 0);  // register 1 still at its initial version
  EXPECT_TRUE(check_r4(rec.ops()).ok);
}

TEST(SpecCheckerTest, SingleWriterCatchesSecondWriter) {
  HistoryRecorder rec;
  auto w1 = rec.begin_write(0, 0, 1.0, 1);
  rec.end_write(w1, 2.0);
  auto w2 = rec.begin_write(1, 0, 3.0, 2);
  rec.end_write(w2, 4.0);
  auto result = check_single_writer(rec.ops());
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations[0].find("second writer"), std::string::npos);
}

TEST(SpecCheckerTest, SingleWriterCatchesTimestampReuse) {
  HistoryRecorder rec;
  auto w1 = rec.begin_write(0, 0, 1.0, 1);
  rec.end_write(w1, 2.0);
  auto w2 = rec.begin_write(0, 0, 3.0, 1);
  rec.end_write(w2, 4.0);
  EXPECT_FALSE(check_single_writer(rec.ops()).ok);
}

TEST(SpecCheckerTest, RegularityCatchesStaleRead) {
  HistoryRecorder rec;
  rec.record_initial(0);
  auto w = rec.begin_write(0, 0, 1.0, 1);
  rec.end_write(w, 2.0);
  auto r = rec.begin_read(1, 0, 5.0);  // invoked well after the write ended
  rec.end_read(r, 6.0, 0);             // ...but returns the initial value
  auto result = check_regular(rec.ops());
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations[0].find("[REG]"), std::string::npos);
  // The same history is a perfectly fine *random* register execution.
  EXPECT_TRUE(check_random_register(rec.ops(), false).ok);
}

TEST(SpecCheckerTest, FigureOneScenario) {
  // Figure 1 of the paper: several writes, a read overlapping some of them.
  // W1 writes a (ts 1), W4 writes b (ts 4) concurrent with R, W6 writes c
  // (ts 6) also concurrent.  R may return a, b, or c — all pass [R2]; a
  // value never written (ts 9) fails.
  for (Timestamp returned : {1u, 4u, 6u}) {
    HistoryRecorder rec;
    for (Timestamp ts = 1; ts <= 3; ++ts) {
      auto w = rec.begin_write(0, 0, static_cast<double>(ts), ts);
      rec.end_write(w, ts + 0.5);
    }
    auto r = rec.begin_read(1, 0, 3.8);
    auto w4 = rec.begin_write(0, 0, 4.0, 4);
    rec.end_write(w4, 4.5);
    auto w5 = rec.begin_write(0, 0, 5.0, 5);
    rec.end_write(w5, 5.5);
    auto w6 = rec.begin_write(0, 0, 6.0, 6);
    rec.end_read(r, 6.5, returned);
    rec.end_write(w6, 7.0);
    EXPECT_TRUE(check_r2(rec.ops()).ok) << "returned ts " << returned;
  }
}

TEST(SpecCheckerTest, MergedCheckAggregatesViolations) {
  HistoryRecorder rec;
  rec.begin_read(0, 0, 1.0);  // unresponded -> R1
  auto r = rec.begin_read(1, 0, 2.0);
  rec.end_read(r, 3.0, 9);  // invented ts -> R2
  auto result = check_random_register(rec.ops(), false);
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.violations.size(), 2u);
}

}  // namespace
}  // namespace pqra::core::spec
