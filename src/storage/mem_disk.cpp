#include "storage/mem_disk.hpp"

#include <algorithm>

namespace pqra::storage {

void MemDisk::wal_append(const util::Bytes& record) {
  volatile_wal_.insert(volatile_wal_.end(), record.begin(), record.end());
  last_record_bytes_ = record.size();
  ++counters_.appends;
  counters_.append_bytes += record.size();
}

void MemDisk::wal_sync() {
  ++counters_.syncs;
  if (injector_ != nullptr && injector_->consume_fsync_loss(node_)) {
    ++counters_.lost_syncs;
    return;  // the lying fsync: durable image unchanged
  }
  durable_wal_.assign(volatile_wal_.begin(), volatile_wal_.end());
  if (injector_ != nullptr && injector_->consume_torn_write(node_) &&
      last_record_bytes_ > 0 && durable_wal_.size() >= last_record_bytes_) {
    // Zero a random non-empty suffix of the final record in the durable
    // image only — the volatile image (what the process sees while alive)
    // is intact, so the tear is observable exactly after a crash.
    const std::size_t tear =
        1 + static_cast<std::size_t>(rng_.below(last_record_bytes_));
    std::fill(durable_wal_.end() - static_cast<std::ptrdiff_t>(tear),
              durable_wal_.end(), std::byte{0});
    ++counters_.torn_syncs;
  }
}

void MemDisk::wal_truncate() {
  volatile_wal_.clear();
  durable_wal_.clear();
  last_record_bytes_ = 0;
}

void MemDisk::wal_truncate_to(std::size_t bytes) {
  if (volatile_wal_.size() > bytes) volatile_wal_.resize(bytes);
  if (durable_wal_.size() > bytes) durable_wal_.resize(bytes);
}

void MemDisk::install_snapshot(const util::Bytes& encoded) {
  // Rename semantics: both images flip together, whole or not at all, and
  // neither storage fault applies (see mem_disk.hpp).
  volatile_snapshot_.assign(encoded.begin(), encoded.end());
  durable_snapshot_.assign(encoded.begin(), encoded.end());
  ++counters_.snapshot_installs;
}

void MemDisk::drop_volatile() {
  volatile_wal_.assign(durable_wal_.begin(), durable_wal_.end());
  volatile_snapshot_.assign(durable_snapshot_.begin(),
                            durable_snapshot_.end());
  last_record_bytes_ = 0;
}

}  // namespace pqra::storage
