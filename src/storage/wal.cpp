#include "storage/wal.hpp"

#include <algorithm>
#include <array>

namespace pqra::storage::wal {

namespace {

/// CRC-32 lookup table for the reflected IEEE polynomial 0xEDB88320,
/// computed once at static-init time (no dependency beyond <array>).
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

std::uint32_t read_u32(const util::Bytes& in, std::size_t off) {
  std::size_t o = off;
  return util::detail::read_raw<std::uint32_t>(in, o);
}

}  // namespace

std::uint32_t crc32(const std::byte* data, std::size_t size) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<std::uint32_t>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void encode_record(util::Bytes& out, core::RegisterId reg, core::Timestamp ts,
                   const core::Value& value) {
  out.clear();
  const auto vlen = static_cast<std::uint32_t>(value.size());
  const auto len = static_cast<std::uint32_t>(kMinPayloadBytes + vlen);
  util::detail::append_raw(out, len);
  util::detail::append_raw(out, std::uint32_t{0});  // crc placeholder
  util::detail::append_raw(out, reg);
  util::detail::append_raw(out, ts);
  util::detail::append_raw(out, vlen);
  out.insert(out.end(), value.begin(), value.end());
  const std::uint32_t crc = crc32(out.data() + kHeaderBytes, len);
  // Patch the placeholder in place (append_raw only appends).
  util::Bytes crc_bytes;
  util::detail::append_raw(crc_bytes, crc);
  std::copy(crc_bytes.begin(), crc_bytes.end(),
            out.begin() + static_cast<std::ptrdiff_t>(sizeof(std::uint32_t)));
}

ReplayResult replay_log(const util::Bytes& log, bool skip_crc_bug) {
  ReplayResult result;
  std::size_t off = 0;
  while (off + kHeaderBytes <= log.size()) {
    const std::uint32_t len = read_u32(log, off);
    // Structural rejections: a length that cannot name a record in the
    // remaining bytes ends the valid prefix.  len < kMinPayloadBytes covers
    // the all-zero headers a torn write fabricates (CRC32("") == 0 would
    // otherwise validate a zero-length record).
    if (len < kMinPayloadBytes || off + kHeaderBytes + len > log.size()) {
      break;
    }
    const std::uint32_t crc = read_u32(log, off + sizeof(std::uint32_t));
    const std::byte* payload = log.data() + off + kHeaderBytes;
    if (crc32(payload, len) != crc && !skip_crc_bug) break;

    Record record;
    std::size_t p = off + kHeaderBytes;
    record.reg = util::detail::read_raw<core::RegisterId>(log, p);
    record.ts = util::detail::read_raw<core::Timestamp>(log, p);
    std::uint32_t vlen = util::detail::read_raw<std::uint32_t>(log, p);
    // With the CRC verified, vlen == len - 16 by construction; the buggy
    // skip-crc path decodes garbage best-effort (clamped, never out of
    // bounds) instead of crashing — the drill wants wrong state surfaced,
    // not an exception.
    vlen = std::min(vlen, static_cast<std::uint32_t>(len - kMinPayloadBytes));
    record.value = util::Bytes(
        log.begin() + static_cast<std::ptrdiff_t>(p),
        log.begin() + static_cast<std::ptrdiff_t>(p + vlen));
    result.records.push_back(std::move(record));
    off += kHeaderBytes + len;
  }
  result.valid_bytes = off;
  result.torn = off < log.size();
  return result;
}

}  // namespace pqra::storage::wal
