#pragma once

/// \file file_backend.hpp
/// Real-file StorageBackend for threaded/CLI runs (docs/DURABILITY.md).
///
/// One data directory per node, two files: `<prefix>.wal` (append-only
/// record log) and `<prefix>.snap` (snapshot image, replaced via
/// write-temp + rename so a crash mid-install leaves the old snapshot
/// intact).  wal_sync flushes and fsyncs the log fd.
///
/// This backend does real blocking I/O and therefore NEVER runs inside the
/// DES event loop — DES runs use MemDisk (mem_disk.hpp), whose fault model
/// the explore fuzzer drives.  It exists so experiment_cli and the threaded
/// runtime can exercise the same DurableStore logic against an actual
/// filesystem, and so the WAL format on disk is the byte-identical format
/// the unit tests pin.

#include <cstdio>
#include <string>

#include "storage/backend.hpp"

namespace pqra::storage {

class FileBackend final : public StorageBackend {
 public:
  /// Opens (creates) `<prefix>.wal` and adopts any existing files — a
  /// pre-existing log/snapshot is a restart, exactly what recover() reads.
  explicit FileBackend(std::string prefix);
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  void wal_append(const util::Bytes& record) override;
  void wal_sync() override;
  util::Bytes wal_contents() const override;
  void wal_truncate() override;
  void wal_truncate_to(std::size_t bytes) override;
  void install_snapshot(const util::Bytes& encoded) override;
  util::Bytes snapshot_contents() const override;

  const std::string& wal_path() const { return wal_path_; }
  const std::string& snapshot_path() const { return snap_path_; }

 private:
  void reopen_wal(const char* mode);

  std::string wal_path_;
  std::string snap_path_;
  std::FILE* wal_ = nullptr;
};

}  // namespace pqra::storage
