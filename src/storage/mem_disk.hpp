#pragma once

/// \file mem_disk.hpp
/// Deterministic in-memory "disk" for DES runs (docs/DURABILITY.md).
///
/// Models one node's data directory as volatile/durable byte-pair images of
/// the WAL and the snapshot.  Appends land in the volatile image; wal_sync
/// copies volatile -> durable — unless a storage fault armed on this node
/// in the FaultInjector intervenes:
///
///   - fsync loss (`fsyncloss:N@T1-T2`): the sync silently does nothing;
///     the durable image stays behind until a later sync succeeds.  Models
///     a lying fsync / dropped disk-cache flush.
///   - torn write (`tornwrite:N@T`): one-shot; the sync copies, then zeroes
///     a random non-empty suffix of the final record in the durable image.
///     Models a crash-adjacent partial sector write.  A later successful
///     sync rewrites the durable image in full and legitimately repairs the
///     tear — only a crash while the tear is the durable tail surfaces it,
///     and then wal.hpp's CRC replay discards exactly the torn record.
///
/// Snapshot install and log truncation are rename-semantics atomic and
/// exempt from both faults (see backend.hpp).
///
/// drop_volatile() is the crash: volatile images reset to the durable ones.
/// The tear-length draw comes from this disk's own forked RNG stream, so
/// fault schedules stay byte-reproducible and --jobs-invariant.

#include <cstdint>

#include "net/faults.hpp"
#include "storage/backend.hpp"
#include "util/rng.hpp"

namespace pqra::storage {

class MemDisk final : public StorageBackend {
 public:
  /// \p injector may be null (no storage faults, e.g. unit tests).
  MemDisk(net::NodeId node, net::FaultInjector* injector, util::Rng rng)
      : node_(node), injector_(injector), rng_(rng) {}

  void wal_append(const util::Bytes& record) override;
  void wal_sync() override;
  util::Bytes wal_contents() const override { return durable_wal_; }
  void wal_truncate() override;
  void wal_truncate_to(std::size_t bytes) override;
  void install_snapshot(const util::Bytes& encoded) override;
  util::Bytes snapshot_contents() const override { return durable_snapshot_; }

  /// Crash semantics: everything not synced is gone.
  void drop_volatile();

  /// Direct durable views for the crash-replay-compare oracle (no copy).
  const util::Bytes& durable_wal() const { return durable_wal_; }
  const util::Bytes& durable_snapshot() const { return durable_snapshot_; }

  struct Counters {
    std::uint64_t appends = 0;
    std::uint64_t append_bytes = 0;
    std::uint64_t syncs = 0;
    std::uint64_t lost_syncs = 0;
    std::uint64_t torn_syncs = 0;
    std::uint64_t snapshot_installs = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  net::NodeId node_;
  net::FaultInjector* injector_;
  util::Rng rng_;
  util::Bytes volatile_wal_;
  util::Bytes durable_wal_;
  util::Bytes volatile_snapshot_;
  util::Bytes durable_snapshot_;
  /// Size of the most recent append: the torn-write fault tears within the
  /// final record, which is the only part of the image a real partial
  /// sector write could corrupt mid-sync.
  std::size_t last_record_bytes_ = 0;
  Counters counters_;
};

}  // namespace pqra::storage
