#include "storage/file_backend.hpp"

#include <cstdio>
#include <utility>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define PQRA_HAVE_FSYNC 1
#endif

namespace pqra::storage {

namespace {

util::Bytes read_file(const std::string& path) {
  util::Bytes bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return bytes;  // absent file == empty artifact
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size > 0) {
    bytes.resize(static_cast<std::size_t>(size));
    const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    bytes.resize(got);
  }
  std::fclose(f);
  return bytes;
}

void write_file(const std::string& path, const util::Bytes& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  PQRA_CHECK(f != nullptr, "storage: cannot open file for writing");
  if (!bytes.empty()) {
    const std::size_t put = std::fwrite(bytes.data(), 1, bytes.size(), f);
    PQRA_CHECK(put == bytes.size(), "storage: short write");
  }
  std::fflush(f);
#ifdef PQRA_HAVE_FSYNC
  ::fsync(::fileno(f));
#endif
  std::fclose(f);
}

}  // namespace

FileBackend::FileBackend(std::string prefix)
    : wal_path_(prefix + ".wal"), snap_path_(std::move(prefix) + ".snap") {
  reopen_wal("ab");  // adopt an existing log: a restart replays it
}

FileBackend::~FileBackend() {
  if (wal_ != nullptr) std::fclose(wal_);
}

void FileBackend::reopen_wal(const char* mode) {
  if (wal_ != nullptr) std::fclose(wal_);
  wal_ = std::fopen(wal_path_.c_str(), mode);
  PQRA_CHECK(wal_ != nullptr, "storage: cannot open WAL file");
}

void FileBackend::wal_append(const util::Bytes& record) {
  const std::size_t put =
      std::fwrite(record.data(), 1, record.size(), wal_);
  PQRA_CHECK(put == record.size(), "storage: short WAL append");
}

void FileBackend::wal_sync() {
  std::fflush(wal_);
#ifdef PQRA_HAVE_FSYNC
  ::fsync(::fileno(wal_));
#endif
}

util::Bytes FileBackend::wal_contents() const {
  std::fflush(wal_);
  return read_file(wal_path_);
}

void FileBackend::wal_truncate() { reopen_wal("wb"); }

void FileBackend::wal_truncate_to(std::size_t bytes) {
  std::fflush(wal_);
  util::Bytes kept = read_file(wal_path_);
  if (kept.size() > bytes) kept.resize(bytes);
  // Rewrite-prefix truncation: simple and portable; the kept prefix is
  // small (everything past the last snapshot).
  write_file(wal_path_, kept);
  reopen_wal("ab");
}

void FileBackend::install_snapshot(const util::Bytes& encoded) {
  // Write-temp + rename: a crash mid-install leaves the old snapshot.
  const std::string tmp = snap_path_ + ".tmp";
  write_file(tmp, encoded);
  PQRA_CHECK(std::rename(tmp.c_str(), snap_path_.c_str()) == 0,
             "storage: snapshot rename failed");
}

util::Bytes FileBackend::snapshot_contents() const {
  return read_file(snap_path_);
}

}  // namespace pqra::storage
