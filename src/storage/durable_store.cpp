#include "storage/durable_store.hpp"

#include <utility>

#include "util/check.hpp"

namespace pqra::storage {

void DurableStore::on_apply(core::RegisterId reg, core::Timestamp ts,
                            const core::Value& value) {
  wal::encode_record(scratch_, reg, ts, value);
  backend_.wal_append(scratch_);
  // Sync-per-record: the durability contract is "acked writes survive a
  // crash" (modulo injected fsync loss), so the record is flushed before
  // the apply event returns.
  backend_.wal_sync();
  ++counters_.appends;
  counters_.append_bytes += scratch_.size();
  if (options_.snapshot_every > 0 &&
      ++appends_since_checkpoint_ >= options_.snapshot_every) {
    checkpoint();
  }
}

void DurableStore::checkpoint() {
  PQRA_REQUIRE(replica_ != nullptr, "DurableStore: attach() before use");
  backend_.install_snapshot(replica_->encode_store());
  backend_.wal_truncate();
  appends_since_checkpoint_ = 0;
  ++counters_.checkpoints;
}

void DurableStore::recover() {
  PQRA_REQUIRE(replica_ != nullptr, "DurableStore: attach() before use");
  ++counters_.recoveries;
  replica_->reset_store();

  const util::Bytes snapshot = backend_.snapshot_contents();
  if (!snapshot.empty()) {
    for (core::Replica::StoreEntry& entry :
         core::Replica::decode_store(snapshot)) {
      replica_->restore_entry(entry.reg, entry.ts, std::move(entry.value));
    }
    ++counters_.snapshot_loads;
  }

  wal::ReplayResult replay =
      wal::replay_log(backend_.wal_contents(), skip_crc_bug_);
  for (wal::Record& record : replay.records) {
    replica_->restore_entry(record.reg, record.ts, std::move(record.value));
  }
  counters_.replayed_records += replay.records.size();
  if (replay.torn) ++counters_.torn_tails_dropped;
  // Repair: drop the torn tail for good, so appends after recovery extend
  // the valid prefix instead of hiding behind garbage that would swallow
  // them on the next replay.
  backend_.wal_truncate_to(replay.valid_bytes);
  appends_since_checkpoint_ = replay.records.size();
}

}  // namespace pqra::storage
