#pragma once

/// \file backend.hpp
/// Pluggable persistence surface beneath a replica (docs/DURABILITY.md).
///
/// A StorageBackend owns two artifacts: an append-only write-ahead log of
/// wal.hpp records and a single snapshot image (Replica::encode_store
/// bytes).  The semantics mirror a POSIX data directory:
///
///   - wal_append buffers a record; nothing is durable until wal_sync
///     (fsync).  A crash between the two loses the unsynced suffix.
///   - install_snapshot is atomic rename-style: after it returns the new
///     snapshot is durable in full or the old one survives — never a torn
///     mix.  wal_truncate (log reset after a snapshot) carries the same
///     all-or-nothing contract.
///   - wal_truncate_to keeps only the first \p bytes of the log: recovery's
///     repair step after replay stopped at a torn tail, so later appends
///     extend a well-formed log instead of hiding behind garbage.
///
/// Two implementations: MemDisk (mem_disk.hpp), the deterministic in-memory
/// disk model the DES runs on, with injectable fsync-loss and torn-write
/// faults; and FileBackend (file_backend.hpp) for threaded/CLI runs against
/// real files.

#include "util/codec.hpp"

namespace pqra::storage {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Appends one encoded WAL record to the (volatile) log buffer.
  virtual void wal_append(const util::Bytes& record) = 0;

  /// Makes everything appended so far durable (fsync).
  virtual void wal_sync() = 0;

  /// The durable log image, as a crash now would leave it.
  virtual util::Bytes wal_contents() const = 0;

  /// Discards the whole log, durably (runs after install_snapshot).
  virtual void wal_truncate() = 0;

  /// Keeps only the first \p bytes of the log, durably (recovery repair).
  virtual void wal_truncate_to(std::size_t bytes) = 0;

  /// Atomically replaces the snapshot image, durably.
  virtual void install_snapshot(const util::Bytes& encoded) = 0;

  /// The durable snapshot image; empty if none was ever installed.
  virtual util::Bytes snapshot_contents() const = 0;
};

}  // namespace pqra::storage
