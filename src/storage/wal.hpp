#pragma once

/// \file wal.hpp
/// Checksummed, length-prefixed write-ahead-log record format
/// (docs/DURABILITY.md).
///
/// Every store mutation a replica applies appends one record:
///
///   [u32 len][u32 crc][payload]       len = payload bytes, crc = CRC32(payload)
///   payload = [u32 reg][u64 ts][u32 vlen][vlen value bytes]
///
/// The format is self-delimiting and truncation-tolerant: replay walks
/// records from the front and stops at the first one whose header cannot be
/// satisfied (len impossible for the remaining bytes) or whose CRC does not
/// match — a torn tail from a crash mid-sync.  The valid prefix before that
/// point is exactly what recovery may surface; the tail is discarded, never
/// propagated (DurableStore truncates it away so post-recovery appends land
/// on a well-formed log).
///
/// Free functions over util::Bytes, no I/O: both StorageBackend
/// implementations (mem_disk.hpp, file_backend.hpp) persist the bytes this
/// module produces, and the crash-replay-compare oracle in the explore
/// runner replays durable bytes independently of the store under test.

#include <cstdint>
#include <vector>

#include "core/register_types.hpp"
#include "util/codec.hpp"

namespace pqra::storage::wal {

/// [u32 len][u32 crc] before every payload.
inline constexpr std::size_t kHeaderBytes = 8;
/// [u32 reg][u64 ts][u32 vlen] before the value bytes.  A record below this
/// is structurally impossible, which is what lets replay reject the
/// fully-zeroed headers a torn write can fabricate (len 0 never validates).
inline constexpr std::size_t kMinPayloadBytes = 16;

/// CRC-32 (IEEE 802.3, reflected), the checksum in every record header.
std::uint32_t crc32(const std::byte* data, std::size_t size);

/// One decoded record.
struct Record {
  core::RegisterId reg = 0;
  core::Timestamp ts = 0;
  core::Value value;
};

/// Encodes one record into \p out.  \p out is cleared first but keeps its
/// capacity, so the per-apply path reuses one scratch buffer instead of
/// allocating per record.
void encode_record(util::Bytes& out, core::RegisterId reg, core::Timestamp ts,
                   const core::Value& value);

/// What replay_log recovered from a log image.
struct ReplayResult {
  std::vector<Record> records;
  /// Byte length of the valid prefix: every record in `records` lives in
  /// [0, valid_bytes); recovery truncates the log here.
  std::size_t valid_bytes = 0;
  /// True when bytes past the valid prefix were discarded (torn tail).
  bool torn = false;
};

/// Walks \p log from the front, decoding records until the first torn or
/// corrupt one (see file comment), and returns the valid prefix.
///
/// \p skip_crc_bug is the planted-bug hook of the explore durability drill
/// (docs/EXPLORATION.md): when set, a CRC mismatch is NOT treated as a torn
/// tail — the corrupt payload is decoded best-effort and surfaced as if it
/// were durable, which is precisely the recovery bug the
/// crash-replay-compare probe must catch.  Never set outside that drill.
ReplayResult replay_log(const util::Bytes& log, bool skip_crc_bug = false);

}  // namespace pqra::storage::wal
