#pragma once

/// \file durable_store.hpp
/// WAL + snapshot durability layer beneath one core::Replica
/// (docs/DURABILITY.md).
///
/// Attached as the replica's StoreListener, a DurableStore appends one
/// wal.hpp record per applied store mutation (write or gossip advance) and
/// syncs it, checkpoints the whole store into the backend's snapshot every
/// `snapshot_every` appends (then truncates the log — the log never grows
/// unbounded), and on recover() rebuilds the replica from durable state:
///
///   recovered store == snapshot ⊔ valid WAL prefix       (ts-max merge)
///
/// That right-hand side is the *durable prefix*, the exact invariant the
/// explore runner's crash-replay-compare probe checks against an
/// independent replay of the same durable bytes.  Torn tails stop the
/// replay (wal.hpp) and are truncated away so post-recovery appends extend
/// a well-formed log.
///
/// The apply path (on_apply) is DES hot-path code when backed by MemDisk:
/// it reuses one scratch buffer and draws nothing from any RNG, so durable
/// runs execute the byte-identical event schedule of their non-durable
/// twins (fingerprint equality, the acceptance bar of the durability PR).

#include <cstdint>

#include "core/replica.hpp"
#include "storage/backend.hpp"
#include "storage/wal.hpp"

namespace pqra::storage {

class DurableStore final : public core::Replica::StoreListener {
 public:
  struct Options {
    /// Appends between automatic checkpoints; 0 = never checkpoint
    /// automatically (the log only resets via explicit checkpoint()).
    std::size_t snapshot_every = 64;
  };

  DurableStore(StorageBackend& backend, Options options)
      : backend_(backend), options_(options) {}
  explicit DurableStore(StorageBackend& backend)
      : DurableStore(backend, Options{}) {}

  /// Binds this store as \p replica's listener.  Callers that want the
  /// pre-attach state durable (e.g. preloaded initials) follow up with
  /// checkpoint().
  void attach(core::Replica& replica) {
    replica_ = &replica;
    replica.bind_storage(this);
  }

  /// StoreListener: called by the replica once per applied mutation.
  void on_apply(core::RegisterId reg, core::Timestamp ts,
                const core::Value& value) override;

  /// Snapshots the replica's entire store into the backend and truncates
  /// the log (install is atomic; see backend.hpp).
  void checkpoint();

  /// Rebuilds the replica from durable state: clear, load snapshot, replay
  /// the valid WAL prefix, truncate any torn tail away.  The caller models
  /// the crash itself (MemDisk::drop_volatile) before recovering.
  void recover();

  /// Planted-bug hook for the explore durability drill
  /// (docs/EXPLORATION.md): recovery replays the WAL without CRC checking,
  /// surfacing torn garbage as durable state.  Never enabled outside the
  /// drill.
  void set_test_skip_crc_bug(bool on) { skip_crc_bug_ = on; }

  struct Counters {
    std::uint64_t appends = 0;
    std::uint64_t append_bytes = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t snapshot_loads = 0;
    std::uint64_t replayed_records = 0;
    std::uint64_t torn_tails_dropped = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  StorageBackend& backend_;
  core::Replica* replica_ = nullptr;
  Options options_;
  util::Bytes scratch_;  // reused record buffer: no per-apply allocation
  std::size_t appends_since_checkpoint_ = 0;
  bool skip_crc_bug_ = false;
  Counters counters_;
};

}  // namespace pqra::storage
