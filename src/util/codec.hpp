#pragma once

/// \file codec.hpp
/// Byte-blob encoding of register values.
///
/// Registers transport opaque byte vectors; applications encode their
/// component types (rows of int64 distances, bitset words, doubles, ...)
/// through Codec<T>.  Decoding validates sizes and throws on malformed
/// input — a register never hands back a partially decoded value.

#include <cstddef>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace pqra::util {

/// The wire/storage representation of one register value.
using Bytes = std::vector<std::byte>;

namespace detail {

template <typename T>
inline void append_raw(Bytes& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::size_t off = out.size();
  out.resize(off + sizeof(T));
  std::memcpy(out.data() + off, &v, sizeof(T));
}

template <typename T>
inline T read_raw(const Bytes& in, std::size_t& off) {
  static_assert(std::is_trivially_copyable_v<T>);
  PQRA_CHECK(off + sizeof(T) <= in.size(), "codec: truncated value");
  T v;
  std::memcpy(&v, in.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

}  // namespace detail

/// Primary template: trivially copyable scalars.
template <typename T, typename Enable = void>
struct Codec {
  static_assert(std::is_trivially_copyable_v<T>,
                "provide a Codec specialization for non-trivial types");

  static Bytes encode(const T& v) {
    Bytes out;
    out.reserve(sizeof(T));
    detail::append_raw(out, v);
    return out;
  }

  static T decode(const Bytes& in) {
    std::size_t off = 0;
    T v = detail::read_raw<T>(in, off);
    PQRA_CHECK(off == in.size(), "codec: trailing bytes");
    return v;
  }
};

/// Vectors of trivially copyable elements (rows of distances, bitset words).
template <typename E>
struct Codec<std::vector<E>, std::enable_if_t<std::is_trivially_copyable_v<E>>> {
  static Bytes encode(const std::vector<E>& v) {
    Bytes out;
    out.reserve(sizeof(std::uint64_t) + v.size() * sizeof(E));
    detail::append_raw(out, static_cast<std::uint64_t>(v.size()));
    for (const E& e : v) detail::append_raw(out, e);
    return out;
  }

  static std::vector<E> decode(const Bytes& in) {
    std::size_t off = 0;
    auto n = detail::read_raw<std::uint64_t>(in, off);
    PQRA_CHECK(in.size() - off == n * sizeof(E), "codec: vector size mismatch");
    std::vector<E> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(detail::read_raw<E>(in, off));
    return v;
  }
};

/// Strings (handy for examples and debugging).
template <>
struct Codec<std::string> {
  static Bytes encode(const std::string& s) {
    // memcpy with a null source is UB even for zero bytes, and an empty
    // vector's data() may be null — guard the empty case.
    Bytes out(s.size());
    if (!s.empty()) std::memcpy(out.data(), s.data(), s.size());
    return out;
  }

  static std::string decode(const Bytes& in) {
    if (in.empty()) return std::string();
    return std::string(reinterpret_cast<const char*>(in.data()), in.size());
  }
};

/// Convenience free functions.
template <typename T>
Bytes encode(const T& v) {
  return Codec<T>::encode(v);
}

template <typename T>
T decode(const Bytes& in) {
  return Codec<T>::decode(in);
}

}  // namespace pqra::util
