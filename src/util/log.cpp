#include "util/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace pqra::util {

namespace {

LogLevel resolve_env_level() {
  // Read once at static init, before any thread spawns.
  const char* env = std::getenv("PQRA_LOG");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return LogLevel::kWarn;
  return parse_log_level(env);
}

LogLevel& level_slot() {
  static LogLevel level = resolve_env_level();
  return level;
}

LogSink& sink_slot() {
  static LogSink sink;
  return sink;
}

}  // namespace

LogLevel parse_log_level(std::string_view name, LogLevel fallback) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "error" || lower == "err") return LogLevel::kError;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "info" || lower == "verbose") return LogLevel::kInfo;
  if (lower == "debug" || lower == "trace") return LogLevel::kDebug;
  return fallback;
}

LogLevel log_level() { return level_slot(); }

void set_log_level(LogLevel level) { level_slot() = level; }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

void set_log_sink(LogSink sink) { sink_slot() = std::move(sink); }

void log_line(LogLevel level, const std::string& message) {
  if (sink_slot()) {
    sink_slot()(level, message);
    return;
  }
  std::fprintf(stderr, "[pqra %s] %s\n", log_level_name(level),
               message.c_str());
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}

}  // namespace pqra::util
