#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pqra::util {

namespace {

LogLevel resolve_level() {
  const char* env = std::getenv("PQRA_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  static const LogLevel level = resolve_level();
  return level;
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

void log_line(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[pqra %s] %s\n", level_name(level), message.c_str());
}

}  // namespace pqra::util
