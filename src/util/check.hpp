#pragma once

/// \file check.hpp
/// Precondition / invariant checking macros.
///
/// PQRA_CHECK throws std::logic_error on violation; it is always on (the cost
/// is negligible next to simulation work) so that library misuse fails loudly
/// in release builds too.

#include <sstream>
#include <stdexcept>
#include <string>

namespace pqra::util {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "PQRA_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace pqra::util

/// Throws std::logic_error when \p cond is false.
#define PQRA_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::pqra::util::throw_check_failure(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                      \
  } while (0)

/// Argument-validation flavour: identical behaviour, documents intent.
#define PQRA_REQUIRE(cond, msg) PQRA_CHECK(cond, msg)
