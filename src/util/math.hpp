#pragma once

/// \file math.hpp
/// The combinatorial and probability formulas the paper relies on.
///
/// Everything is computed in a numerically safe way: ratios of binomial
/// coefficients are evaluated as telescoping products of factors < 1, never
/// by forming the (astronomically large) coefficients themselves.

#include <cstdint>
#include <string>

namespace pqra::util {

/// Shortest round-trip decimal rendering of a finite double ("1", "0.25",
/// "1e-09"), "inf"/"-inf"/"nan" otherwise.  This is the canonical number
/// format of every serialized schedule artifact (sim::DelaySpec,
/// net::FaultPlan::serialize, the pqra_explore replay files): strtod parses
/// it back to the identical bits, so serialize→parse→serialize is
/// byte-stable.
std::string format_double(double x);

/// ln C(n, k).  Returns -inf when k > n (an empty selection set).
double log_choose(std::uint64_t n, std::uint64_t k);

/// C(n, k) as a double (exact for small arguments, may overflow to inf for
/// very large ones — callers wanting ratios should use the *_probability
/// helpers below instead).
double choose(std::uint64_t n, std::uint64_t k);

/// Probability that two independently and uniformly chosen k-subsets of an
/// n-set are disjoint: C(n-k, k) / C(n, k).  This is the per-read "miss"
/// probability of the probabilistic quorum system (Theorem 4).
/// Returns 0 when 2k > n (every pair of quorums must intersect — the system
/// degenerates to a strict one).
double quorum_nonoverlap_probability(std::uint64_t n, std::uint64_t k);

/// Theorem 4's q: probability that a uniformly random read quorum intersects
/// a fixed write quorum, q = 1 - C(n-k,k)/C(n,k).
double quorum_overlap_probability(std::uint64_t n, std::uint64_t k);

/// Asymmetric variant: probability that a uniformly chosen k2-subset misses
/// a fixed k1-subset of an n-set, C(n-k1, k2) / C(n, k2).  Used for the
/// degraded-mode staleness bound where a retrying client settles for an
/// access set smaller than the configured quorum (docs/FAULTS.md).
double asymmetric_nonoverlap_probability(std::uint64_t n, std::uint64_t k1,
                                         std::uint64_t k2);

/// The upper bound on the nonoverlap probability used in Corollary 7:
/// ((n-k)/n)^k, which dominates C(n-k,k)/C(n,k) (Prop. 3.2 of Malkhi et al.).
double nonoverlap_upper_bound(std::uint64_t n, std::uint64_t k);

/// Corollary 7: upper bound on the expected number of rounds per pseudocycle
/// of the monotone probabilistic quorum algorithm, 1 / (1 - ((n-k)/n)^k).
double corollary7_rounds_per_pseudocycle(std::uint64_t n, std::uint64_t k);

/// Theorem 1's decay bound: probability that at least one replica of a
/// write's quorum still holds that write after l subsequent writes is at
/// most k * ((n-k)/n)^l.  (Clamped to [0, 1].)
double r3_survival_bound(std::uint64_t n, std::uint64_t k, std::uint64_t l);

/// Expected value 1/q of the geometric distribution from [R5].
double expected_reads_until_overlap(std::uint64_t n, std::uint64_t k);

/// Hypergeometric pmf: drawing \p draws from a population of \p population
/// containing \p marked marked elements, P[exactly i marked drawn].
double hypergeometric_pmf(std::uint64_t population, std::uint64_t marked,
                          std::uint64_t draws, std::uint64_t i);

/// P[at most i marked drawn] (hypergeometric CDF).
double hypergeometric_cdf(std::uint64_t population, std::uint64_t marked,
                          std::uint64_t draws, std::uint64_t i);

/// Masking-quorum error probability (Malkhi–Reiter–Wright): with b Byzantine
/// servers, a read is safe when its quorum intersects the write's quorum in
/// at least 2b+1 servers (>= b+1 correct vouchers beat <= b liars).  Both
/// quorums are uniform k-subsets of n, so |R ∩ W| is hypergeometric and the
/// error probability is P[|R ∩ W| <= 2b].
double masking_error_probability(std::uint64_t n, std::uint64_t k,
                                 std::uint64_t b);

/// True if \p v is prime (trial division; intended for FPP orders, so small).
bool is_prime(std::uint64_t v);

/// Saturating addition for shortest-path arithmetic: a + b, clamped so that
/// "infinity" (kPathInf) absorbs.
std::int64_t saturating_add(std::int64_t a, std::int64_t b);

/// Sentinel used as +infinity by the graph/APSP code.
inline constexpr std::int64_t kPathInf = (1LL << 62);

}  // namespace pqra::util
