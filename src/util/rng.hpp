#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// The whole repository draws randomness through Rng (xoshiro256**) so that
/// every simulation is reproducible from a single seed.  Independent logical
/// streams (one per process, per transport, per experiment run) are derived
/// with Rng::fork(stream_id), which hashes the parent seed with the stream id
/// through splitmix64 — streams are decorrelated without sharing state.

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace pqra::util {

/// splitmix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by running splitmix64 on \p seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Derives an independent child generator for logical stream \p stream_id.
  /// Deterministic: same parent seed + stream id => same child sequence.
  Rng fork(std::uint64_t stream_id) const;

  /// Uniform integer in [0, bound).  \p bound must be positive.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with success probability \p p.
  bool bernoulli(double p);

  /// Samples \p k distinct values from {0, .., n-1} using Robert Floyd's
  /// algorithm; O(k) expected time, output unsorted.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// In-place variant: clears \p out and fills it with the sample, reusing
  /// its capacity.  This is the hot-path form — every quorum access draws
  /// one sample, so the per-access allocation matters (quorum systems pass
  /// the client's scratch vector through pick()).  Draws the same values as
  /// the returning overload for the same RNG state.
  void sample_without_replacement(std::uint32_t n, std::uint32_t k,
                                  std::vector<std::uint32_t>& out);

  /// Fisher–Yates shuffle of \p v.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// The seed this generator was constructed from (for logging/repro).
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace pqra::util
