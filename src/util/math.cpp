#include "util/math.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/check.hpp"

namespace pqra::util {

std::string format_double(double x) {
  if (std::isnan(x)) return "nan";
  if (std::isinf(x)) return x > 0 ? "inf" : "-inf";
  char buf[64];
  // %.17g always round-trips; shorter precisions are preferred when they
  // already parse back to the identical bits (readable serialized plans).
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, x);
    if (std::strtod(buf, nullptr) == x) break;
  }
  return buf;
}

double log_choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (std::uint64_t i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i);
    result /= static_cast<double>(i + 1);
  }
  return result;
}

double quorum_nonoverlap_probability(std::uint64_t n, std::uint64_t k) {
  PQRA_REQUIRE(k >= 1 && k <= n, "quorum size must be in [1, n]");
  if (2 * k > n) return 0.0;
  // C(n-k, k) / C(n, k) = prod_{i=0}^{k-1} (n - k - i) / (n - i).
  double p = 1.0;
  for (std::uint64_t i = 0; i < k; ++i) {
    p *= static_cast<double>(n - k - i) / static_cast<double>(n - i);
  }
  return p;
}

double quorum_overlap_probability(std::uint64_t n, std::uint64_t k) {
  return 1.0 - quorum_nonoverlap_probability(n, k);
}

double asymmetric_nonoverlap_probability(std::uint64_t n, std::uint64_t k1,
                                         std::uint64_t k2) {
  PQRA_REQUIRE(k1 >= 1 && k1 <= n, "fixed subset size must be in [1, n]");
  PQRA_REQUIRE(k2 >= 1 && k2 <= n, "chosen subset size must be in [1, n]");
  if (k1 + k2 > n) return 0.0;
  // C(n-k1, k2) / C(n, k2) = prod_{i=0}^{k2-1} (n - k1 - i) / (n - i).
  double p = 1.0;
  for (std::uint64_t i = 0; i < k2; ++i) {
    p *= static_cast<double>(n - k1 - i) / static_cast<double>(n - i);
  }
  return p;
}

double nonoverlap_upper_bound(std::uint64_t n, std::uint64_t k) {
  PQRA_REQUIRE(k >= 1 && k <= n, "quorum size must be in [1, n]");
  return std::pow(static_cast<double>(n - k) / static_cast<double>(n),
                  static_cast<double>(k));
}

double corollary7_rounds_per_pseudocycle(std::uint64_t n, std::uint64_t k) {
  double bound = nonoverlap_upper_bound(n, k);
  return 1.0 / (1.0 - bound);
}

double r3_survival_bound(std::uint64_t n, std::uint64_t k, std::uint64_t l) {
  double b = static_cast<double>(k) *
             std::pow(static_cast<double>(n - k) / static_cast<double>(n),
                      static_cast<double>(l));
  return b > 1.0 ? 1.0 : b;
}

double expected_reads_until_overlap(std::uint64_t n, std::uint64_t k) {
  return 1.0 / quorum_overlap_probability(n, k);
}

double hypergeometric_pmf(std::uint64_t population, std::uint64_t marked,
                          std::uint64_t draws, std::uint64_t i) {
  PQRA_REQUIRE(marked <= population && draws <= population,
               "invalid hypergeometric parameters");
  if (i > draws || i > marked) return 0.0;
  if (draws - i > population - marked) return 0.0;
  double log_p = log_choose(marked, i) +
                 log_choose(population - marked, draws - i) -
                 log_choose(population, draws);
  return std::exp(log_p);
}

double hypergeometric_cdf(std::uint64_t population, std::uint64_t marked,
                          std::uint64_t draws, std::uint64_t i) {
  double acc = 0.0;
  for (std::uint64_t j = 0; j <= i; ++j) {
    acc += hypergeometric_pmf(population, marked, draws, j);
  }
  return acc > 1.0 ? 1.0 : acc;
}

double masking_error_probability(std::uint64_t n, std::uint64_t k,
                                 std::uint64_t b) {
  PQRA_REQUIRE(k >= 1 && k <= n, "quorum size must be in [1, n]");
  return hypergeometric_cdf(n, k, k, 2 * b);
}

bool is_prime(std::uint64_t v) {
  if (v < 2) return false;
  for (std::uint64_t d = 2; d * d <= v; ++d) {
    if (v % d == 0) return false;
  }
  return true;
}

std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  if (a >= kPathInf || b >= kPathInf) return kPathInf;
  std::int64_t s = a + b;
  return s >= kPathInf ? kPathInf : s;
}

}  // namespace pqra::util
