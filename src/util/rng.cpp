#include "util/rng.hpp"

#include <cmath>

namespace pqra::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  std::uint64_t sm = seed_ ^ (0xd1b54a32d192ed03ULL * (stream_id + 1));
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::below(std::uint64_t bound) {
  PQRA_REQUIRE(bound > 0, "bound must be positive");
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    std::uint64_t r = (*this)();
    __uint128_t m = static_cast<__uint128_t>(r) * bound;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PQRA_REQUIRE(lo <= hi, "empty range");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  PQRA_REQUIRE(mean > 0.0, "mean must be positive");
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  std::vector<std::uint32_t> out;
  sample_without_replacement(n, k, out);
  return out;
}

void Rng::sample_without_replacement(std::uint32_t n, std::uint32_t k,
                                     std::vector<std::uint32_t>& out) {
  PQRA_REQUIRE(k <= n, "cannot sample more elements than the population");
  // Robert Floyd's algorithm: for j = n-k .. n-1, draw t in [0, j]; insert t
  // unless already chosen, in which case insert j.
  out.clear();
  out.reserve(k);
  auto contains = [&out](std::uint32_t x) {
    for (std::uint32_t y : out) {
      if (y == x) return true;
    }
    return false;
  };
  for (std::uint32_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(below(j + 1));
    out.push_back(contains(t) ? j : t);
  }
}

}  // namespace pqra::util
