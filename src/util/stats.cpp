#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pqra::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::size_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double OnlineStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return n_ == 0 ? 0.0 : min_; }

double OnlineStats::max() const { return n_ == 0 ? 0.0 : max_; }

double OnlineStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  OnlineStats acc;
  for (double x : samples) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = percentile(samples, 50.0);
  return s;
}

double percentile(std::vector<double> samples, double p) {
  PQRA_REQUIRE(!samples.empty(), "percentile of empty sample set");
  PQRA_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PQRA_REQUIRE(bins > 0, "histogram needs at least one bin");
  PQRA_REQUIRE(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) {
  if (std::isnan(x)) {
    // A NaN belongs to no bin; silently clamping it anywhere would invent a
    // sample.  Tally it so callers can detect polluted inputs.
    ++nan_count_;
    return;
  }
  // Clamp in floating point BEFORE the integer conversion: for values far
  // outside [lo, hi) — including ±inf — the scaled index exceeds the
  // integer's range and the cast itself would be undefined behaviour.
  if (x < lo_) x = lo_;
  double scaled = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  double max_index = static_cast<double>(counts_.size() - 1);
  if (!(scaled < max_index)) scaled = max_index;
  ++counts_[static_cast<std::size_t>(scaled)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  PQRA_REQUIRE(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace pqra::util
