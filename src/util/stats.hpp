#pragma once

/// \file stats.hpp
/// Streaming and batch statistics used by the experiment harnesses.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pqra::util {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  /// Folds another accumulator into this one (Chan et al. parallel merge).
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Half-width of a normal-approximation 95% confidence interval on the
  /// mean; 0 for fewer than two samples.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

/// Computes the batch Summary of \p samples (empty input => zeroed summary).
Summary summarize(const std::vector<double>& samples);

/// p-th percentile (0 <= p <= 100) with linear interpolation; \p samples need
/// not be sorted (a copy is sorted internally).
double percentile(std::vector<double> samples, double p);

/// Fixed-width histogram over [lo, hi); samples outside (including ±inf)
/// are clamped into the boundary bins.  NaN samples are not binned — they
/// are tallied separately (nan_count) and excluded from total().  Used by
/// the statistical register-spec validators.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t total() const { return total_; }
  std::size_t nan_count() const { return nan_count_; }
  std::size_t num_bins() const { return counts_.size(); }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_count_ = 0;
};

}  // namespace pqra::util
