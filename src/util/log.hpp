#pragma once

/// \file log.hpp
/// Minimal leveled logger.  Level comes from the PQRA_LOG environment
/// variable (error|warn|info|debug plus common aliases, case-insensitive,
/// default warn); output goes to stderr unless a sink is installed.

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace pqra::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Parses a PQRA_LOG-style level name.  Case-insensitive; accepts the
/// canonical names plus common aliases: err, warning, verbose and trace
/// (mapped to kDebug — there is no finer level).  Unknown names fall back
/// to \p fallback.  Pure function, exposed for tests.
LogLevel parse_log_level(std::string_view name,
                         LogLevel fallback = LogLevel::kWarn);

/// Global log level: resolved from the environment on first use, or
/// whatever set_log_level() installed last.
LogLevel log_level();

/// Overrides the global level (tests, embedders).
void set_log_level(LogLevel level);

/// True when messages at \p level should be emitted.
bool log_enabled(LogLevel level);

/// Redirects log output; pass nullptr to restore the stderr default.  The
/// sink receives the raw message without the "[pqra level]" prefix.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Writes one formatted line ("[pqra level] message") to stderr, or hands
/// the message to the installed sink.
void log_line(LogLevel level, const std::string& message);

/// Canonical lowercase name of \p level.
const char* log_level_name(LogLevel level);

}  // namespace pqra::util

#define PQRA_LOG(level, expr)                                      \
  do {                                                             \
    if (::pqra::util::log_enabled(level)) {                        \
      std::ostringstream pqra_log_os_;                             \
      pqra_log_os_ << expr;                                        \
      ::pqra::util::log_line(level, pqra_log_os_.str());           \
    }                                                              \
  } while (0)

#define PQRA_LOG_ERROR(expr) PQRA_LOG(::pqra::util::LogLevel::kError, expr)
#define PQRA_LOG_WARN(expr) PQRA_LOG(::pqra::util::LogLevel::kWarn, expr)
#define PQRA_LOG_INFO(expr) PQRA_LOG(::pqra::util::LogLevel::kInfo, expr)
#define PQRA_LOG_DEBUG(expr) PQRA_LOG(::pqra::util::LogLevel::kDebug, expr)
