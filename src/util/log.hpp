#pragma once

/// \file log.hpp
/// Minimal leveled logger.  Level comes from the PQRA_LOG environment
/// variable (error|warn|info|debug, default warn); output goes to stderr.

#include <sstream>
#include <string>

namespace pqra::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log level, resolved once from the environment.
LogLevel log_level();

/// True when messages at \p level should be emitted.
bool log_enabled(LogLevel level);

/// Writes one formatted line ("[pqra level] message") to stderr.
void log_line(LogLevel level, const std::string& message);

}  // namespace pqra::util

#define PQRA_LOG(level, expr)                                      \
  do {                                                             \
    if (::pqra::util::log_enabled(level)) {                        \
      std::ostringstream pqra_log_os_;                             \
      pqra_log_os_ << expr;                                        \
      ::pqra::util::log_line(level, pqra_log_os_.str());           \
    }                                                              \
  } while (0)

#define PQRA_LOG_ERROR(expr) PQRA_LOG(::pqra::util::LogLevel::kError, expr)
#define PQRA_LOG_WARN(expr) PQRA_LOG(::pqra::util::LogLevel::kWarn, expr)
#define PQRA_LOG_INFO(expr) PQRA_LOG(::pqra::util::LogLevel::kInfo, expr)
#define PQRA_LOG_DEBUG(expr) PQRA_LOG(::pqra::util::LogLevel::kDebug, expr)
