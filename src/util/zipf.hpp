#pragma once

/// \file zipf.hpp
/// Zipfian rank sampler for skewed key-choice workloads.
///
/// draw() returns a rank r in [0, n) with P(r) proportional to
/// 1/(r+1)^theta — rank 0 is the hottest key.  Implementation follows the
/// classic rejection-free inversion of Gray et al. ("Quickly generating
/// billion-record synthetic databases", SIGMOD '94): O(n) constants at
/// construction, O(1) per draw, and every draw consumes exactly one
/// uniform01() from the caller's Rng — so adding skew to a workload changes
/// the draw *values*, never the draw *count*, and replays stay aligned.
///
/// theta = 0 degenerates to the uniform distribution; theta must be < 1
/// (the harmonic normalization diverges at 1, and the store workloads only
/// need the YCSB-style 0.6–0.99 range).

#include <cstdint>

#include "util/rng.hpp"

namespace pqra::util {

class Zipfian {
 public:
  /// \p n: number of ranks; \p theta in [0, 1).
  Zipfian(std::uint64_t n, double theta);

  /// One rank in [0, n), hottest first.  Deterministic given the Rng state.
  std::uint64_t draw(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_ = 0.0;
  double zetan_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace pqra::util
