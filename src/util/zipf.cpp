#include "util/zipf.hpp"

#include <cmath>

#include "util/check.hpp"

namespace pqra::util {

namespace {

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

Zipfian::Zipfian(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  PQRA_REQUIRE(n_ >= 1, "Zipfian needs at least one rank");
  PQRA_REQUIRE(theta_ >= 0.0 && theta_ < 1.0, "theta must be in [0, 1)");
  if (theta_ == 0.0) return;  // uniform: draw() bypasses the constants
  zetan_ = zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta(2, theta_) / zetan_);
}

std::uint64_t Zipfian::draw(Rng& rng) const {
  const double u = rng.uniform01();
  if (n_ == 1) return 0;  // the draw still consumes its one uniform01()
  if (theta_ == 0.0) {
    std::uint64_t r = static_cast<std::uint64_t>(u * static_cast<double>(n_));
    return r >= n_ ? n_ - 1 : r;
  }
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double r = static_cast<double>(n_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_);
  auto rank = static_cast<std::uint64_t>(r);
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace pqra::util
