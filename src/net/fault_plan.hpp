#pragma once

/// \file fault_plan.hpp
/// Deterministic fault schedules for both runtimes.
///
/// A FaultPlan is a list of timed fault events — crash/recover, slow-node,
/// partition/heal — plus an optional message-fault configuration, applied to
/// a FaultInjector.  On the DES the plan is installed onto the simulator
/// (bit-reproducible from the seed); on the threaded runtime a
/// LiveFaultDriver (net/faults.hpp + alg1_threads) replays it in scaled
/// wall-clock time.  Combined with the register clients' retry policy this
/// drives the dynamic-availability experiments: probabilistic quorums keep
/// making progress through churn that stalls strict systems.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/faults.hpp"
#include "net/sim_transport.hpp"
#include "net/thread_transport.hpp"

namespace pqra::net {

enum class FaultKind : std::uint8_t {
  kCrash,
  kRecover,
  kSlow,       ///< multiply the node's message delays by `factor`
  kClearSlow,
  kPartition,  ///< split the listed nodes into isolated groups
  kHeal,       ///< remove the partition
  // Storage-level durability faults (docs/DURABILITY.md); consumed by
  // MemDisk-backed replicas, no-ops on runs without durable storage.
  kTornWrite,       ///< arm a one-shot torn WAL sync on the node
  kFsyncLoss,       ///< open an fsync-loss window on the node
  kClearFsyncLoss,  ///< close the node's fsync-loss window
};

const char* fault_kind_name(FaultKind kind);

class FaultPlan {
 public:
  struct Event {
    sim::Time at = 0.0;
    FaultKind kind = FaultKind::kCrash;
    NodeId node = 0;      ///< crash/recover/slow/clear-slow
    /// Key-addressed target (docs/SHARDING.md): `node` holds a KeyId, not a
    /// NodeId, and resolve_keys() must map it to the key's primary replica
    /// before the plan can be installed.  Grammar form `crash:k12@10`.
    bool node_is_key = false;
    double factor = 1.0;  ///< slow only
    std::vector<std::vector<NodeId>> groups;  ///< partition only
    /// Key-addressed partition members, parallel to `groups` when any are
    /// present (same group count): resolve_keys() folds each group's key
    /// primaries into the node group.  Grammar form `partition:0-2,k7|3@9`.
    std::vector<std::vector<KeyId>> group_keys;

    friend bool operator==(const Event& a, const Event& b) {
      return a.at == b.at && a.kind == b.kind && a.node == b.node &&
             a.node_is_key == b.node_is_key && a.factor == b.factor &&
             a.groups == b.groups && a.group_keys == b.group_keys;
    }
    friend bool operator!=(const Event& a, const Event& b) {
      return !(a == b);
    }
  };

  FaultPlan& crash_at(sim::Time at, NodeId node);
  FaultPlan& recover_at(sim::Time at, NodeId node);

  /// Key-addressed variants (docs/SHARDING.md): the event targets whatever
  /// node is the key's primary replica at resolve_keys() time, so one plan
  /// applies uniformly to any cluster shape — "crash the server holding the
  /// hot key" instead of a hard-coded process id.
  FaultPlan& crash_key_at(sim::Time at, KeyId key);
  FaultPlan& recover_key_at(sim::Time at, KeyId key);
  FaultPlan& slow_key_at(sim::Time at, KeyId key, double factor);
  FaultPlan& clear_slow_key_at(sim::Time at, KeyId key);

  /// True if any event carries a key-addressed target (node or partition
  /// member); such a plan must go through resolve_keys() before install().
  bool has_key_targets() const;

  /// Returns a copy with every key target replaced by
  /// \p primary(key) — typically HashRing::primary, or `key % num_servers`
  /// for unsharded full-replication runs.  Key-addressed partition members
  /// are folded into their node groups (first occurrence wins on
  /// duplicates).  The result has no key targets.
  FaultPlan resolve_keys(
      // pqra-lint: allow(hotpath-function) — config-time rewrite, not events
      const std::function<NodeId(KeyId)>& primary) const;

  /// Crash + recover pair: node is down during [from, from + duration).
  FaultPlan& outage(NodeId node, sim::Time from, sim::Time duration);

  /// Node is slow (delay factor \p factor >= 1) during [from, from+duration),
  /// or from \p from onwards when duration is 0.
  FaultPlan& slow_at(sim::Time at, NodeId node, double factor);
  FaultPlan& clear_slow_at(sim::Time at, NodeId node);

  /// Durability faults (docs/DURABILITY.md).  torn_write_at arms a one-shot
  /// torn sync: the node's next WAL sync persists only a random prefix of
  /// its final record.  fsync_loss_at opens a window in which every WAL
  /// sync on the node is silently lost; clear_fsync_loss_at closes it
  /// (grammar sugar `fsyncloss:N@T1-T2` emits the pair).
  FaultPlan& torn_write_at(sim::Time at, NodeId node);
  FaultPlan& torn_write_key_at(sim::Time at, KeyId key);
  FaultPlan& fsync_loss_at(sim::Time at, NodeId node);
  FaultPlan& fsync_loss_key_at(sim::Time at, KeyId key);
  FaultPlan& clear_fsync_loss_at(sim::Time at, NodeId node);
  FaultPlan& clear_fsync_loss_key_at(sim::Time at, KeyId key);

  /// Partition the listed nodes into isolated groups at \p at; heal_at ends
  /// it.  Unlisted nodes keep talking to everyone (see FaultInjector).
  FaultPlan& partition_at(sim::Time at,
                          std::vector<std::vector<NodeId>> groups);
  FaultPlan& heal_at(sim::Time at);

  /// Message-level faults applied for the whole run (install time 0).
  FaultPlan& with_message_faults(const MessageFaults& faults);
  const MessageFaults& message_faults() const { return message_faults_; }

  /// Random churn over servers [0, n): each server suffers independent
  /// outages with exponential up-time (mean \p mean_uptime) and down-time
  /// (mean \p mean_downtime) until \p horizon.
  static FaultPlan random_churn(std::size_t num_servers, sim::Time horizon,
                                sim::Time mean_uptime, sim::Time mean_downtime,
                                util::Rng& rng);

  /// Parses the experiment_cli `--fault-plan` grammar: `;`-separated
  /// clauses, each either a timed event or a message-fault knob:
  ///
  ///   crash:N@T       recover:N@T      outage:N@T1-T2
  ///   slow:N*F@T      noslow:N@T
  ///   partition:0-3|4-9@T   (groups of `,`-lists and `a-b` ranges)
  ///   heal@T
  ///   tornwrite:N@T   fsyncloss:N@T    nofsyncloss:N@T
  ///   fsyncloss:N@T1-T2     (window sugar: fsyncloss@T1 + nofsyncloss@T2)
  ///   drop=P   dup=P   delay=D   reorder=P:MAXDELAY
  ///
  /// Node positions also accept a key-addressed form `k<KEY>` — e.g.
  /// `crash:k12@10`, `outage:k7@20-60`, `partition:0-2,k7|3@9` — meaning
  /// "the node owning key KEY" (resolved via resolve_keys; key ranges are
  /// not supported).
  ///
  /// e.g. "crash:2@10;recover:2@50;drop=0.02;reorder=0.1:3".
  /// Throws std::logic_error (with the offending clause) on bad input.
  static FaultPlan parse(const std::string& spec);

  /// Canonical text form in the parse() grammar: one clause per event in
  /// stored order, then the message-fault knobs that are set.  Numbers use
  /// util::format_double (shortest round-trip), so
  /// serialize→parse→serialize is byte-identical — the contract the
  /// pqra_explore `--replay` files and tests/net/fault_plan_roundtrip_test
  /// depend on.  Note outage() pairs serialize as their underlying
  /// crash/recover clauses.
  std::string serialize() const;

  /// Rebuilds a plan from raw parts (shrinker use: event-subset candidates).
  static FaultPlan from_parts(std::vector<Event> events,
                              const MessageFaults& faults);

  /// One random schedule edit drawn entirely from \p rng: add a
  /// crash/recover/outage/slow-window/partition-window, remove an event,
  /// perturb an event's time, or jiggle a message-fault knob.  Event times
  /// stay within [0, horizon]; node ids within [0, num_servers).  This is
  /// the fuzzer's FaultPlan-churn mutation operator (docs/EXPLORATION.md).
  /// With \p num_keys > 0, node-targeted additions sometimes draw a
  /// key-addressed target (`k<KEY>`, KEY < num_keys) instead of a node;
  /// the default 0 never does, so pre-sharding call sites are unchanged.
  /// With \p durability true, one extra edit kind adds a torn-write event
  /// or an fsync-loss window; the default false keeps the legacy draw
  /// sequence byte-identical (tests/net/fault_plan_roundtrip_test.cpp).
  void mutate(std::size_t num_servers, sim::Time horizon, util::Rng& rng,
              std::size_t num_keys = 0, bool durability = false);

  /// Schedules every event on the simulator against \p injector, and applies
  /// the message faults immediately.  Requires !has_key_targets(): key
  /// addressing is a naming layer, resolved before install.
  void install(sim::Simulator& simulator, FaultInjector& injector) const;

  /// Convenience: installs onto the transport's own injector.
  void install(sim::Simulator& simulator, SimTransport& transport) const;

  const std::vector<Event>& events() const { return events_; }
  bool empty() const { return events_.empty() && !message_faults_.any(); }

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) {
    return a.events_ == b.events_ && a.message_faults_ == b.message_faults_;
  }
  friend bool operator!=(const FaultPlan& a, const FaultPlan& b) {
    return !(a == b);
  }

  /// Largest number of servers in [0, num_servers) simultaneously down.
  std::size_t max_concurrent_down(std::size_t num_servers) const;

 private:
  std::vector<Event> events_;
  MessageFaults message_faults_;
};

/// Replays a FaultPlan against a live ThreadTransport: a driver thread
/// sleeps until each event's scaled wall-clock time and applies it through
/// the transport's thread-safe fault wrappers.  Plan times (and message-
/// fault delays) are multiplied by \p seconds_per_time_unit.  The driver
/// starts in the constructor; stop() (or destruction) cancels any remaining
/// events and joins.
class LiveFaultDriver {
 public:
  LiveFaultDriver(const FaultPlan& plan, ThreadTransport& transport,
                  double seconds_per_time_unit);
  ~LiveFaultDriver();

  LiveFaultDriver(const LiveFaultDriver&) = delete;
  LiveFaultDriver& operator=(const LiveFaultDriver&) = delete;

  /// Cancels remaining events and joins the driver thread.  Idempotent.
  void stop();

 private:
  void run(FaultPlan plan, double scale);

  ThreadTransport& transport_;
  // pqra-lint: allow(hotpath-blocking) — LiveFaultDriver runs its own thread
  std::mutex mutex_;
  // pqra-lint: allow(hotpath-blocking) — threaded-runtime driver, not DES
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace pqra::net
