#pragma once

/// \file fault_plan.hpp
/// Deterministic crash/recovery schedules for the simulated network.
///
/// A FaultPlan is a list of timed crash and recover events installed onto a
/// SimTransport before a run.  Combined with the register client's retry
/// timeout, this drives the dynamic-availability experiments: probabilistic
/// quorums keep making progress through churn that stalls strict systems.

#include <vector>

#include "net/sim_transport.hpp"

namespace pqra::net {

class FaultPlan {
 public:
  struct Event {
    sim::Time at = 0.0;
    NodeId node = 0;
    bool crash = true;  ///< false = recover
  };

  FaultPlan& crash_at(sim::Time at, NodeId node);
  FaultPlan& recover_at(sim::Time at, NodeId node);

  /// Crash + recover pair: node is down during [from, from + duration).
  FaultPlan& outage(NodeId node, sim::Time from, sim::Time duration);

  /// Random churn over servers [0, n): each server suffers independent
  /// outages with exponential up-time (mean \p mean_uptime) and down-time
  /// (mean \p mean_downtime) until \p horizon.
  static FaultPlan random_churn(std::size_t num_servers, sim::Time horizon,
                                sim::Time mean_uptime, sim::Time mean_downtime,
                                util::Rng& rng);

  /// Schedules every event on the simulator against the transport.
  void install(sim::Simulator& simulator, SimTransport& transport) const;

  const std::vector<Event>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Largest number of servers in [0, num_servers) simultaneously down.
  std::size_t max_concurrent_down(std::size_t num_servers) const;

 private:
  std::vector<Event> events_;
};

}  // namespace pqra::net
