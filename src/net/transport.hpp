#pragma once

/// \file transport.hpp
/// Transport abstraction shared by the simulated and threaded runtimes.
///
/// A Transport moves Messages between NodeIds and counts them; Receivers are
/// registered per node.  The counters are the measurement instrument for the
/// message-complexity experiments (§6.4), so they are part of the interface,
/// not an implementation detail.
///
/// Counting happens in two forms: the legacy MessageStats snapshot (kept as
/// the per-run/per-link view the benches difference across phases) and,
/// when a transport is bound to an obs::Registry via bind_metrics(), the
/// unified metrics pipeline (messages/drops/bytes by type) that the rest of
/// the system exports through.

#include <array>
#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "obs/metrics.hpp"

namespace pqra::net {

/// Receives messages addressed to one node.
class Receiver {
 public:
  virtual ~Receiver() = default;
  virtual void on_message(NodeId from, Message msg) = 0;
};

/// Snapshot of transport counters.
struct MessageStats {
  std::uint64_t total = 0;
  std::uint64_t dropped = 0;  ///< messages lost to crashed nodes / drop prob.
  std::array<std::uint64_t, kNumMsgTypes> by_type{};
  std::vector<std::uint64_t> received_by_node;  ///< index = NodeId

  /// Component-wise difference (this - earlier); used to attribute message
  /// counts to a phase of an execution.
  MessageStats minus(const MessageStats& earlier) const;
};

/// Registry-backed transport instruments, shared by SimTransport and
/// ThreadTransport so both runtimes report under the same names (see
/// obs/names.hpp).  Instrument pointers are grabbed once at bind time; the
/// per-send path is branch + relaxed increments.
class TransportMetrics {
 public:
  explicit TransportMetrics(obs::Registry& registry);

  void on_send(const Message& msg) {
    messages_->inc();
    by_type_[static_cast<std::size_t>(msg.type)]->inc();
    payload_bytes_->inc(msg.value.size());
  }

  void on_drop() { dropped_->inc(); }

 private:
  obs::Counter* messages_;
  obs::Counter* dropped_;
  obs::Counter* payload_bytes_;
  std::array<obs::Counter*, kNumMsgTypes> by_type_;
};

/// One destination of a batched quorum fan-out (send_fanout): the shared
/// prototype message is delivered to \p to carrying the per-target span id
/// \p span (0 = untraced).  Everything else about the message is identical
/// across the fan-out, which is what makes batching it worthwhile.
struct FanoutEntry {
  NodeId to = 0;
  std::uint64_t span = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers \p msg from \p from to \p to (asynchronously; implementations
  /// define the delay semantics).  Both nodes must be registered.
  virtual void send(NodeId from, NodeId to, Message msg) = 0;

  /// Sends one prototype message to \p count targets — the quorum fan-out
  /// primitive.  Counting, fault draws and delay draws happen per target in
  /// array order, exactly as \p count send() calls would, so switching a
  /// call site between the two forms never changes an execution.  The
  /// default implementation is that loop; SimTransport overrides it with a
  /// batched schedule (one arena block and ~1 queue op per fan-out — see
  /// docs/PERFORMANCE.md).
  virtual void send_fanout(NodeId from, const FanoutEntry* targets,
                           std::size_t count, Message proto);

  /// Registers the receiver for \p node.  One receiver per node.
  virtual void register_receiver(NodeId node, Receiver* receiver) = 0;

  virtual MessageStats stats() const = 0;
};

}  // namespace pqra::net
