#pragma once

/// \file sim_transport.hpp
/// Reliable asynchronous network over the discrete-event simulator.
///
/// Matches the paper's model: every message sent (between live nodes) is
/// eventually received, delays come from a pluggable DelayModel, and there is
/// no duplication or reordering guarantee beyond what the delays induce.
/// Fault injection (node crashes, link drop probability) is available for
/// the availability experiments; the paper's own runs use none.

#include <optional>
#include <unordered_set>
#include <vector>

#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace pqra::net {

class SimTransport final : public Transport {
 public:
  /// \p max_nodes bounds the NodeId space (receivers are stored in a flat
  /// vector for O(1) dispatch).  The transport forks its own RNG stream from
  /// \p rng for delay sampling.
  SimTransport(sim::Simulator& simulator, sim::DelayModel& delay_model,
               const util::Rng& rng, NodeId max_nodes);

  void send(NodeId from, NodeId to, Message msg) override;
  void register_receiver(NodeId node, Receiver* receiver) override;
  MessageStats stats() const override;

  /// Crashed nodes silently lose all traffic to and from them.
  void crash(NodeId node);
  void recover(NodeId node);
  bool is_crashed(NodeId node) const;

  /// Independently drops each message with probability \p p (default 0).
  void set_drop_probability(double p);

  /// Routes message/drop/byte counts into \p registry (obs/names.hpp names)
  /// in addition to the legacy MessageStats snapshot.  Counting does not
  /// schedule events, so binding cannot perturb DES determinism.
  void bind_metrics(obs::Registry& registry);

 private:
  sim::Simulator& simulator_;
  sim::DelayModel& delay_model_;
  util::Rng rng_;
  std::vector<Receiver*> receivers_;
  std::vector<bool> crashed_;
  double drop_probability_ = 0.0;
  MessageStats stats_;
  std::optional<TransportMetrics> metrics_;
};

}  // namespace pqra::net
