#pragma once

/// \file sim_transport.hpp
/// Reliable asynchronous network over the discrete-event simulator.
///
/// Matches the paper's model: every message sent (between live nodes) is
/// eventually received, delays come from a pluggable DelayModel, and there is
/// no duplication or reordering guarantee beyond what the delays induce.
/// Fault injection (crashes, partitions, slow nodes, message loss — see
/// net/faults.hpp) is available for the availability experiments; the
/// paper's own runs use none.

#include <optional>
#include <vector>

#include "net/faults.hpp"
#include "net/transport.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace pqra::net {

class SimTransport final : public Transport {
 public:
  /// \p max_nodes bounds the NodeId space (receivers are stored in a flat
  /// vector for O(1) dispatch).  The transport forks its own RNG stream from
  /// \p rng for delay sampling.
  SimTransport(sim::Simulator& simulator, sim::DelayModel& delay_model,
               const util::Rng& rng, NodeId max_nodes);

  void send(NodeId from, NodeId to, Message msg) override;

  /// Batched quorum fan-out: all per-target RNG draws happen up front (in
  /// array order, identical to \p count send() calls), the deliveries are
  /// packed into EventArena blocks sorted by (time, seq), and only the
  /// earliest entry per block occupies the event queue at any moment —
  /// equal-time entries deliver inside one fire.  The executed (time, seq)
  /// schedule is byte-identical to the unbatched form.
  void send_fanout(NodeId from, const FanoutEntry* targets, std::size_t count,
                   Message proto) override;

  void register_receiver(NodeId node, Receiver* receiver) override;
  MessageStats stats() const override;

  /// Full fault state of this network (crash/partition/slow/message faults).
  /// Fault draws share the transport's RNG stream, but only happen for fault
  /// types that are enabled, so fault-free runs replay unchanged.
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

  // Convenience wrappers kept for existing call sites.
  void crash(NodeId node) { faults_.crash(node); }
  void recover(NodeId node) { faults_.recover(node); }
  bool is_crashed(NodeId node) const { return faults_.is_crashed(node); }

  /// Independently drops each message with probability \p p (default 0).
  void set_drop_probability(double p);

  /// Routes message/drop/byte counts into \p registry (obs/names.hpp names)
  /// in addition to the legacy MessageStats snapshot.  Counting does not
  /// schedule events, so binding cannot perturb DES determinism.
  void bind_metrics(obs::Registry& registry);

  /// Records every send/deliver/drop into \p recorder (not owned; may be
  /// null to unbind).  Recording is O(1) and allocation-free, and never
  /// schedules events, so binding cannot perturb DES determinism.
  void bind_flight_recorder(obs::FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

 private:
  struct FanoutBlock;  // arena-resident batch (sim_transport.cpp)

  /// One scheduled delivery of a fan-out before it is packed into blocks.
  struct FanoutDelivery {
    sim::Time at;
    std::uint64_t seq;
    std::uint64_t span;
    NodeId to;
  };

  void deliver_after(sim::Time delay, NodeId from, NodeId to, Message msg);

  /// Delivers the current entry of \p block (and any equal-time successors),
  /// then schedules the next entry or retires the block.
  void fire_fanout(FanoutBlock* block);

  void record_flight(obs::FlightEventKind kind, NodeId from, NodeId to,
                     const Message& msg);

  sim::Simulator& simulator_;
  sim::DelayModel& delay_model_;
  util::Rng rng_;
  std::vector<Receiver*> receivers_;
  FaultInjector faults_;
  MessageStats stats_;
  std::optional<TransportMetrics> metrics_;
  obs::FlightRecorder* flight_recorder_ = nullptr;
  std::vector<FanoutDelivery> fanout_scratch_;  // send_fanout staging
};

}  // namespace pqra::net
