#pragma once

/// \file faults.hpp
/// Unified fault-injection subsystem shared by both runtimes.
///
/// A FaultInjector holds the live fault state of one network — crashed
/// nodes, slow nodes, a partition, and message-level fault probabilities —
/// and renders a per-send FaultDecision from it.  The transports own one
/// injector each and consult it on every send:
///
///   - SimTransport asks the injector inside the DES event loop, drawing
///     from the transport's seeded RNG, so an installed FaultPlan yields a
///     bit-reproducible fault schedule (the deterministic-replay tests rely
///     on this).
///   - ThreadTransport asks it under the transport mutex with live threads
///     on both ends; a LiveFaultDriver replays a FaultPlan against it in
///     wall-clock time.
///
/// The injector never delivers or delays anything itself — it only decides.
/// Each transport applies the decision with its own delivery machinery, so
/// the fault model stays identical across runtimes (docs/FAULTS.md).
///
/// RNG discipline: on_send draws from the caller's RNG only for fault types
/// that are actually enabled, so configuring no faults leaves the caller's
/// random stream exactly as it was — existing seeded experiments reproduce
/// unchanged.

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace pqra::net {

/// Message-level fault configuration.  All probabilities independent per
/// message; delays in the transport's time unit (sim-time units for the DES,
/// seconds for the threaded runtime).
struct MessageFaults {
  /// Independently lose each message.
  double drop_probability = 0.0;
  /// Independently deliver a second copy of each message (with its own
  /// independently sampled delay, so the copies may arrive in either order).
  double duplicate_probability = 0.0;
  /// Fixed extra delay added to every message (scaled by slow-node factors).
  double extra_delay = 0.0;
  /// With this probability, add a further uniform delay in
  /// [0, reorder_delay_max) — enough to reorder messages behind later sends.
  double reorder_probability = 0.0;
  double reorder_delay_max = 0.0;

  /// True when any knob is set (fast-path guard).
  bool any() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           extra_delay > 0.0 || reorder_probability > 0.0;
  }

  friend bool operator==(const MessageFaults&, const MessageFaults&) = default;
};

/// What the injector decided for one message.
struct FaultDecision {
  bool drop = false;       ///< lose the message (crash, partition or chance)
  bool duplicate = false;  ///< deliver a second, independently delayed copy
  double extra_delay = 0.0;   ///< add to the model delay
  double delay_factor = 1.0;  ///< multiply the model delay (slow nodes)
};

/// Running totals of injected faults (plain struct: cheap to read in tests;
/// the obs::Registry pipeline is bound separately via bind_metrics).
struct FaultCounters {
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t crash_drops = 0;      ///< messages lost to crashed endpoints
  std::uint64_t partition_drops = 0;  ///< messages lost across the partition
  std::uint64_t random_drops = 0;     ///< messages lost to drop_probability
  std::uint64_t duplicates = 0;
  std::uint64_t delayed = 0;  ///< messages given extra delay (slow/reorder)
  std::uint64_t torn_writes = 0;   ///< WAL syncs torn mid-record (storage)
  std::uint64_t fsync_losses = 0;  ///< WAL syncs silently lost (storage)

  std::uint64_t injected() const {
    return crash_drops + partition_drops + random_drops + duplicates +
           delayed + torn_writes + fsync_losses;
  }
};

/// Observer of node lifecycle transitions.  The explore runner's durability
/// oracle hangs off recover(): when a crashed node comes back, the oracle
/// drops its volatile storage, replays the durable prefix, and cross-checks
/// the result (docs/DURABILITY.md).  Fired only on real transitions (the
/// idempotent no-op paths of crash()/recover() never notify).
class NodeLifecycleListener {
 public:
  virtual void on_recover(NodeId node) = 0;

 protected:
  ~NodeLifecycleListener() = default;
};

/// Fault state of one network.  Not internally synchronized: SimTransport
/// uses it from the single DES thread, ThreadTransport guards it with its
/// own mutex (see faults() accessors on the transports).
class FaultInjector {
 public:
  explicit FaultInjector(NodeId max_nodes);

  // -- node-level faults ----------------------------------------------------

  /// Crashed nodes silently lose all traffic to and from them.  Idempotent.
  void crash(NodeId node);
  void recover(NodeId node);
  bool is_crashed(NodeId node) const;
  std::size_t num_crashed() const { return num_crashed_; }

  /// Notified after each real crashed->up transition in recover().
  /// One listener; nullptr clears.
  void set_lifecycle_listener(NodeLifecycleListener* listener) {
    lifecycle_ = listener;
  }

  // -- storage-level faults (docs/DURABILITY.md) ----------------------------

  /// Arms a one-shot torn write: the next WAL sync on \p node persists only
  /// a random prefix of its final record (MemDisk consumes the arm).
  void arm_torn_write(NodeId node);
  /// True exactly once per arm_torn_write (consumes the arm and counts it).
  bool consume_torn_write(NodeId node);

  /// Opens/closes an fsync-loss window: while set, every WAL sync on
  /// \p node is silently lost (reported durable, bytes never persisted).
  void set_fsync_loss(NodeId node, bool lost);
  /// True while the window is open; counts each lost sync.
  bool consume_fsync_loss(NodeId node);

  /// Slow node: messages to or from it have their delay multiplied by
  /// \p factor (>= 1; factors of both endpoints compound).
  void set_slow(NodeId node, double factor);
  void clear_slow(NodeId node);
  double slow_factor(NodeId node) const;

  /// Network partition: nodes in different groups cannot exchange messages.
  /// Nodes in no group (e.g. clients) keep talking to everyone — partitioning
  /// the servers does not sever the clients.  Replaces any prior partition.
  void partition(const std::vector<std::vector<NodeId>>& groups);
  void heal();
  bool partitioned(NodeId a, NodeId b) const;

  // -- message-level faults -------------------------------------------------

  void set_message_faults(const MessageFaults& faults) { message_ = faults; }
  const MessageFaults& message_faults() const { return message_; }

  /// Renders the decision for one message.  Draws from \p rng only for fault
  /// types that are enabled (see file comment).
  FaultDecision on_send(NodeId from, NodeId to, util::Rng& rng);

  const FaultCounters& counters() const { return counters_; }

  /// Reports every injected fault into \p registry under the
  /// obs/names.hpp `pqra_faults_*` instruments.
  void bind_metrics(obs::Registry& registry);

 private:
  struct Instruments {
    obs::Counter* injected = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* msg_dropped = nullptr;
    obs::Counter* msg_duplicated = nullptr;
    obs::Counter* msg_delayed = nullptr;
    obs::Counter* torn_writes = nullptr;
    obs::Counter* fsync_losses = nullptr;
  };

  void count_drop(std::uint64_t FaultCounters::*slot);

  std::vector<bool> crashed_;
  std::vector<bool> torn_armed_;
  std::vector<bool> fsync_loss_;
  std::vector<double> slow_;
  /// Partition group per node; kNoGroup = unrestricted.
  std::vector<std::uint32_t> group_;
  bool partitioned_ = false;
  MessageFaults message_;
  FaultCounters counters_;
  std::size_t num_crashed_ = 0;
  NodeLifecycleListener* lifecycle_ = nullptr;
  Instruments instruments_;

  static constexpr std::uint32_t kNoGroup = 0xFFFFFFFFu;
};

}  // namespace pqra::net
