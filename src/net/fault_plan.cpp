#include "net/fault_plan.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"
#include "util/math.hpp"

namespace pqra::net {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kSlow:
      return "slow";
    case FaultKind::kClearSlow:
      return "noslow";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kTornWrite:
      return "tornwrite";
    case FaultKind::kFsyncLoss:
      return "fsyncloss";
    case FaultKind::kClearFsyncLoss:
      return "nofsyncloss";
  }
  return "?";
}

FaultPlan& FaultPlan::crash_at(sim::Time at, NodeId node) {
  PQRA_REQUIRE(at >= 0.0, "events cannot be scheduled before time 0");
  events_.push_back(Event{.at = at, .kind = FaultKind::kCrash, .node = node});
  return *this;
}

FaultPlan& FaultPlan::recover_at(sim::Time at, NodeId node) {
  PQRA_REQUIRE(at >= 0.0, "events cannot be scheduled before time 0");
  events_.push_back(Event{.at = at, .kind = FaultKind::kRecover, .node = node});
  return *this;
}

FaultPlan& FaultPlan::crash_key_at(sim::Time at, KeyId key) {
  crash_at(at, key);
  events_.back().node_is_key = true;
  return *this;
}

FaultPlan& FaultPlan::recover_key_at(sim::Time at, KeyId key) {
  recover_at(at, key);
  events_.back().node_is_key = true;
  return *this;
}

FaultPlan& FaultPlan::slow_key_at(sim::Time at, KeyId key, double factor) {
  slow_at(at, key, factor);
  events_.back().node_is_key = true;
  return *this;
}

FaultPlan& FaultPlan::clear_slow_key_at(sim::Time at, KeyId key) {
  clear_slow_at(at, key);
  events_.back().node_is_key = true;
  return *this;
}

bool FaultPlan::has_key_targets() const {
  for (const Event& ev : events_) {
    if (ev.node_is_key) return true;
    for (const std::vector<KeyId>& keys : ev.group_keys) {
      if (!keys.empty()) return true;
    }
  }
  return false;
}

FaultPlan FaultPlan::resolve_keys(
    const std::function<NodeId(KeyId)>& primary) const {
  PQRA_REQUIRE(static_cast<bool>(primary), "resolve_keys needs a resolver");
  FaultPlan resolved = *this;
  for (Event& ev : resolved.events_) {
    if (ev.node_is_key) {
      ev.node = primary(ev.node);
      ev.node_is_key = false;
    }
    for (std::size_t g = 0; g < ev.group_keys.size(); ++g) {
      for (const KeyId key : ev.group_keys[g]) {
        const NodeId node = primary(key);
        std::vector<NodeId>& group = ev.groups[g];
        if (std::find(group.begin(), group.end(), node) == group.end()) {
          group.push_back(node);
        }
      }
    }
    ev.group_keys.clear();
  }
  return resolved;
}

FaultPlan& FaultPlan::outage(NodeId node, sim::Time from, sim::Time duration) {
  PQRA_REQUIRE(duration > 0.0, "outage must have positive duration");
  crash_at(from, node);
  recover_at(from + duration, node);
  return *this;
}

FaultPlan& FaultPlan::slow_at(sim::Time at, NodeId node, double factor) {
  PQRA_REQUIRE(at >= 0.0, "events cannot be scheduled before time 0");
  PQRA_REQUIRE(factor >= 1.0, "slow factor must be >= 1");
  events_.push_back(
      Event{.at = at, .kind = FaultKind::kSlow, .node = node, .factor = factor});
  return *this;
}

FaultPlan& FaultPlan::clear_slow_at(sim::Time at, NodeId node) {
  PQRA_REQUIRE(at >= 0.0, "events cannot be scheduled before time 0");
  events_.push_back(
      Event{.at = at, .kind = FaultKind::kClearSlow, .node = node});
  return *this;
}

FaultPlan& FaultPlan::torn_write_at(sim::Time at, NodeId node) {
  PQRA_REQUIRE(at >= 0.0, "events cannot be scheduled before time 0");
  events_.push_back(
      Event{.at = at, .kind = FaultKind::kTornWrite, .node = node});
  return *this;
}

FaultPlan& FaultPlan::torn_write_key_at(sim::Time at, KeyId key) {
  torn_write_at(at, key);
  events_.back().node_is_key = true;
  return *this;
}

FaultPlan& FaultPlan::fsync_loss_at(sim::Time at, NodeId node) {
  PQRA_REQUIRE(at >= 0.0, "events cannot be scheduled before time 0");
  events_.push_back(
      Event{.at = at, .kind = FaultKind::kFsyncLoss, .node = node});
  return *this;
}

FaultPlan& FaultPlan::fsync_loss_key_at(sim::Time at, KeyId key) {
  fsync_loss_at(at, key);
  events_.back().node_is_key = true;
  return *this;
}

FaultPlan& FaultPlan::clear_fsync_loss_at(sim::Time at, NodeId node) {
  PQRA_REQUIRE(at >= 0.0, "events cannot be scheduled before time 0");
  events_.push_back(
      Event{.at = at, .kind = FaultKind::kClearFsyncLoss, .node = node});
  return *this;
}

FaultPlan& FaultPlan::clear_fsync_loss_key_at(sim::Time at, KeyId key) {
  clear_fsync_loss_at(at, key);
  events_.back().node_is_key = true;
  return *this;
}

FaultPlan& FaultPlan::partition_at(sim::Time at,
                                   std::vector<std::vector<NodeId>> groups) {
  PQRA_REQUIRE(at >= 0.0, "events cannot be scheduled before time 0");
  PQRA_REQUIRE(groups.size() >= 2, "a partition needs at least two groups");
  events_.push_back(Event{.at = at,
                          .kind = FaultKind::kPartition,
                          .groups = std::move(groups)});
  return *this;
}

FaultPlan& FaultPlan::heal_at(sim::Time at) {
  PQRA_REQUIRE(at >= 0.0, "events cannot be scheduled before time 0");
  events_.push_back(Event{.at = at, .kind = FaultKind::kHeal});
  return *this;
}

namespace {

/// A reorder delay with zero probability is unobservable and has no clause
/// in the serialize() grammar; normalizing it away here keeps
/// parse(serialize(plan)) structurally equal to plan, not just
/// string-equal (tests/net/fault_plan_roundtrip_test.cpp).
MessageFaults normalized(MessageFaults faults) {
  if (faults.reorder_probability <= 0.0) faults.reorder_delay_max = 0.0;
  return faults;
}

}  // namespace

FaultPlan& FaultPlan::with_message_faults(const MessageFaults& faults) {
  message_faults_ = normalized(faults);
  return *this;
}

FaultPlan FaultPlan::random_churn(std::size_t num_servers, sim::Time horizon,
                                  sim::Time mean_uptime,
                                  sim::Time mean_downtime, util::Rng& rng) {
  PQRA_REQUIRE(horizon > 0.0, "horizon must be positive");
  FaultPlan plan;
  for (std::size_t s = 0; s < num_servers; ++s) {
    sim::Time t = rng.exponential(mean_uptime);
    while (t < horizon) {
      sim::Time down = rng.exponential(mean_downtime);
      plan.outage(static_cast<NodeId>(s), t, down);
      t += down + rng.exponential(mean_uptime);
    }
  }
  return plan;
}

namespace {

[[noreturn]] void parse_fail(const std::string& clause, const char* why) {
  throw std::logic_error("bad fault-plan clause '" + clause + "': " + why);
}

double parse_number(const std::string& clause, const std::string& text) {
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    parse_fail(clause, "expected a number");
  }
  return v;
}

/// A node-or-key target position: `7` names node 7, `k7` names the node
/// owning key 7 (docs/SHARDING.md).
struct Target {
  std::uint32_t id = 0;
  bool is_key = false;
};

Target parse_target(const std::string& clause, const std::string& text) {
  Target t;
  if (!text.empty() && text[0] == 'k') {
    t.is_key = true;
    t.id = static_cast<std::uint32_t>(
        parse_number(clause, text.substr(1)));
  } else {
    t.id = static_cast<std::uint32_t>(parse_number(clause, text));
  }
  return t;
}

/// Parses `a-b` ranges, `,`-lists and `k<KEY>` items into a partition
/// group, e.g. "0-3,7,k12".  Ranges are node-only.
void parse_group(const std::string& clause, const std::string& text,
                 std::vector<NodeId>& nodes, std::vector<KeyId>& keys) {
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty() && item[0] == 'k') {
      keys.push_back(static_cast<KeyId>(parse_number(clause, item.substr(1))));
      continue;
    }
    auto dash = item.find('-');
    if (dash == std::string::npos) {
      nodes.push_back(static_cast<NodeId>(parse_number(clause, item)));
      continue;
    }
    auto lo = static_cast<NodeId>(
        parse_number(clause, item.substr(0, dash)));
    auto hi = static_cast<NodeId>(parse_number(clause, item.substr(dash + 1)));
    if (hi < lo) parse_fail(clause, "range upper bound below lower bound");
    for (NodeId n = lo; n <= hi; ++n) nodes.push_back(n);
  }
  if (nodes.empty() && keys.empty()) parse_fail(clause, "empty node group");
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  MessageFaults message;
  std::istringstream in(spec);
  std::string clause;
  while (std::getline(in, clause, ';')) {
    // Whitespace around clauses is allowed: "crash:2@10; drop=0.02".
    const auto first = clause.find_first_not_of(" \t\n");
    if (first == std::string::npos) continue;
    clause = clause.substr(first, clause.find_last_not_of(" \t\n") - first + 1);
    auto eq = clause.find('=');
    if (eq != std::string::npos && clause.find('@') == std::string::npos) {
      // Message-fault knob.
      const std::string key = clause.substr(0, eq);
      const std::string val = clause.substr(eq + 1);
      if (key == "drop") {
        message.drop_probability = parse_number(clause, val);
      } else if (key == "dup") {
        message.duplicate_probability = parse_number(clause, val);
      } else if (key == "delay") {
        message.extra_delay = parse_number(clause, val);
      } else if (key == "reorder") {
        auto colon = val.find(':');
        if (colon == std::string::npos) {
          parse_fail(clause, "reorder needs 'probability:max_delay'");
        }
        message.reorder_probability =
            parse_number(clause, val.substr(0, colon));
        message.reorder_delay_max =
            parse_number(clause, val.substr(colon + 1));
      } else {
        parse_fail(clause, "unknown message-fault knob");
      }
      continue;
    }

    auto pos = clause.rfind('@');
    if (pos == std::string::npos) parse_fail(clause, "missing '@time'");
    const std::string head = clause.substr(0, pos);
    const std::string time_text = clause.substr(pos + 1);
    auto colon = head.find(':');
    const std::string kind = head.substr(0, colon);
    const std::string arg =
        colon == std::string::npos ? "" : head.substr(colon + 1);
    if (kind == "outage") {
      // outage:N@T1-T2 — the time field is a range, not a single instant.
      auto dash = time_text.find('-');
      if (dash == std::string::npos) {
        parse_fail(clause, "outage needs '@from-to'");
      }
      double from = parse_number(clause, time_text.substr(0, dash));
      double to = parse_number(clause, time_text.substr(dash + 1));
      if (to <= from) parse_fail(clause, "outage end must be after start");
      const Target t = parse_target(clause, arg);
      if (t.is_key) {
        plan.crash_key_at(from, t.id).recover_key_at(to, t.id);
      } else {
        plan.outage(t.id, from, to - from);
      }
      continue;
    }
    if (kind == "fsyncloss" && time_text.find('-') != std::string::npos) {
      // fsyncloss:N@T1-T2 — window sugar, desugared to the open/close pair
      // (serialize() emits the pair, so sugar round-trips via the pair form).
      auto dash = time_text.find('-');
      double from = parse_number(clause, time_text.substr(0, dash));
      double to = parse_number(clause, time_text.substr(dash + 1));
      if (to <= from) parse_fail(clause, "window end must be after start");
      const Target t = parse_target(clause, arg);
      if (t.is_key) {
        plan.fsync_loss_key_at(from, t.id).clear_fsync_loss_key_at(to, t.id);
      } else {
        plan.fsync_loss_at(from, t.id).clear_fsync_loss_at(to, t.id);
      }
      continue;
    }
    const double at = parse_number(clause, time_text);
    if (kind == "heal") {
      plan.heal_at(at);
    } else if (kind == "crash") {
      const Target t = parse_target(clause, arg);
      t.is_key ? plan.crash_key_at(at, t.id) : plan.crash_at(at, t.id);
    } else if (kind == "recover") {
      const Target t = parse_target(clause, arg);
      t.is_key ? plan.recover_key_at(at, t.id) : plan.recover_at(at, t.id);
    } else if (kind == "slow") {
      auto star = arg.find('*');
      if (star == std::string::npos) parse_fail(clause, "slow needs 'N*F'");
      const Target t = parse_target(clause, arg.substr(0, star));
      const double factor = parse_number(clause, arg.substr(star + 1));
      t.is_key ? plan.slow_key_at(at, t.id, factor)
               : plan.slow_at(at, t.id, factor);
    } else if (kind == "noslow") {
      const Target t = parse_target(clause, arg);
      t.is_key ? plan.clear_slow_key_at(at, t.id)
               : plan.clear_slow_at(at, t.id);
    } else if (kind == "tornwrite") {
      const Target t = parse_target(clause, arg);
      t.is_key ? plan.torn_write_key_at(at, t.id)
               : plan.torn_write_at(at, t.id);
    } else if (kind == "fsyncloss") {
      const Target t = parse_target(clause, arg);
      t.is_key ? plan.fsync_loss_key_at(at, t.id)
               : plan.fsync_loss_at(at, t.id);
    } else if (kind == "nofsyncloss") {
      const Target t = parse_target(clause, arg);
      t.is_key ? plan.clear_fsync_loss_key_at(at, t.id)
               : plan.clear_fsync_loss_at(at, t.id);
    } else if (kind == "partition") {
      std::vector<std::vector<NodeId>> groups;
      std::vector<std::vector<KeyId>> group_keys;
      bool any_keys = false;
      std::istringstream gin(arg);
      std::string group;
      while (std::getline(gin, group, '|')) {
        std::vector<NodeId> nodes;
        std::vector<KeyId> keys;
        parse_group(clause, group, nodes, keys);
        any_keys = any_keys || !keys.empty();
        groups.push_back(std::move(nodes));
        group_keys.push_back(std::move(keys));
      }
      plan.partition_at(at, std::move(groups));
      if (any_keys) plan.events_.back().group_keys = std::move(group_keys);
    } else {
      parse_fail(clause, "unknown event kind");
    }
  }
  plan.with_message_faults(message);
  return plan;
}

std::string FaultPlan::serialize() const {
  std::string out;
  auto clause = [&](const std::string& text) {
    if (!out.empty()) out += ';';
    out += text;
  };
  for (const Event& ev : events_) {
    const std::string at = util::format_double(ev.at);
    // Key-addressed targets serialize with the `k` prefix of the parse()
    // grammar.
    const std::string target =
        (ev.node_is_key ? "k" : "") + std::to_string(ev.node);
    switch (ev.kind) {
      case FaultKind::kCrash:
        clause("crash:" + target + "@" + at);
        break;
      case FaultKind::kRecover:
        clause("recover:" + target + "@" + at);
        break;
      case FaultKind::kSlow:
        clause("slow:" + target + "*" + util::format_double(ev.factor) + "@" +
               at);
        break;
      case FaultKind::kClearSlow:
        clause("noslow:" + target + "@" + at);
        break;
      case FaultKind::kPartition: {
        std::string groups;
        for (std::size_t g = 0; g < ev.groups.size(); ++g) {
          if (g > 0) groups += '|';
          std::string sep;
          for (const NodeId n : ev.groups[g]) {
            groups += sep + std::to_string(n);
            sep = ",";
          }
          if (g < ev.group_keys.size()) {
            for (const KeyId k : ev.group_keys[g]) {
              groups += sep + "k" + std::to_string(k);
              sep = ",";
            }
          }
        }
        clause("partition:" + groups + "@" + at);
        break;
      }
      case FaultKind::kHeal:
        clause("heal@" + at);
        break;
      case FaultKind::kTornWrite:
        clause("tornwrite:" + target + "@" + at);
        break;
      case FaultKind::kFsyncLoss:
        clause("fsyncloss:" + target + "@" + at);
        break;
      case FaultKind::kClearFsyncLoss:
        clause("nofsyncloss:" + target + "@" + at);
        break;
    }
  }
  if (message_faults_.drop_probability > 0.0) {
    clause("drop=" + util::format_double(message_faults_.drop_probability));
  }
  if (message_faults_.duplicate_probability > 0.0) {
    clause("dup=" +
           util::format_double(message_faults_.duplicate_probability));
  }
  if (message_faults_.extra_delay > 0.0) {
    clause("delay=" + util::format_double(message_faults_.extra_delay));
  }
  if (message_faults_.reorder_probability > 0.0) {
    clause("reorder=" +
           util::format_double(message_faults_.reorder_probability) + ":" +
           util::format_double(message_faults_.reorder_delay_max));
  }
  return out;
}

FaultPlan FaultPlan::from_parts(std::vector<Event> events,
                                const MessageFaults& faults) {
  FaultPlan plan;
  plan.events_ = std::move(events);
  plan.message_faults_ = normalized(faults);
  return plan;
}

void FaultPlan::mutate(std::size_t num_servers, sim::Time horizon,
                       util::Rng& rng, std::size_t num_keys,
                       bool durability) {
  PQRA_REQUIRE(num_servers > 0, "mutation needs at least one server");
  PQRA_REQUIRE(horizon > 0.0, "mutation needs a positive horizon");
  const auto random_node = [&] {
    return static_cast<NodeId>(rng.below(num_servers));
  };
  // Key-addressed target draw: only taken when the caller opened the
  // keyspace (num_keys > 0), so pre-sharding seeds replay the exact same
  // draw sequence.
  const auto random_target = [&]() -> std::pair<std::uint32_t, bool> {
    if (num_keys > 0 && rng.bernoulli(0.3)) {
      return {static_cast<std::uint32_t>(rng.below(num_keys)), true};
    }
    return {random_node(), false};
  };
  const auto random_time = [&] { return rng.uniform01() * horizon; };
  // The durability edit is appended past the legacy range, so legacy calls
  // (durability=false) draw below(8) exactly as before the durability PR.
  std::uint64_t edit = rng.below(durability ? 9 : 8);
  // Structural edits need existing events / enough servers; degrade to the
  // always-possible edits instead of consuming extra draws.
  if ((edit == 5 || edit == 6) && events_.empty()) edit = 1;
  if (edit == 4 && num_servers < 2) edit = 0;
  switch (edit) {
    case 0: {  // crash/recover window
      const sim::Time from = rng.uniform01() * horizon * 0.9;
      const sim::Time duration = std::min(
          std::max(rng.exponential(horizon / 8.0), horizon * 0.01),
          horizon - from);
      const auto [id, is_key] = random_target();
      if (is_key) {
        crash_key_at(from, id).recover_key_at(from + duration, id);
      } else {
        outage(id, from, duration);
      }
      break;
    }
    case 1: {  // lone crash (the run harness recovers everyone at horizon)
      const auto [id, is_key] = random_target();
      const sim::Time at = random_time();
      is_key ? crash_key_at(at, id) : crash_at(at, id);
      break;
    }
    case 2: {
      const auto [id, is_key] = random_target();
      const sim::Time at = random_time();
      is_key ? recover_key_at(at, id) : recover_at(at, id);
      break;
    }
    case 3: {  // slow window
      const auto [id, is_key] = random_target();
      const sim::Time from = rng.uniform01() * horizon * 0.9;
      const double factor = 1.0 + rng.uniform01() * 9.0;
      const sim::Time until =
          std::min(from + rng.exponential(horizon / 8.0), horizon);
      if (is_key) {
        slow_key_at(from, id, factor);
        clear_slow_key_at(until, id);
      } else {
        slow_at(from, id, factor);
        clear_slow_at(until, id);
      }
      break;
    }
    case 4: {  // partition window over a random split of the servers
      std::vector<NodeId> nodes(num_servers);
      for (std::size_t i = 0; i < num_servers; ++i) {
        nodes[i] = static_cast<NodeId>(i);
      }
      rng.shuffle(nodes);
      const std::size_t cut =
          1 + static_cast<std::size_t>(rng.below(num_servers - 1));
      std::vector<std::vector<NodeId>> groups(2);
      groups[0].assign(nodes.begin(), nodes.begin() + cut);
      groups[1].assign(nodes.begin() + cut, nodes.end());
      const sim::Time from = rng.uniform01() * horizon * 0.9;
      partition_at(from, std::move(groups));
      heal_at(std::min(from + rng.exponential(horizon / 8.0), horizon));
      break;
    }
    case 5:  // drop one event
      events_.erase(events_.begin() +
                    static_cast<std::ptrdiff_t>(rng.below(events_.size())));
      break;
    case 6: {  // perturb one event's time
      Event& ev = events_[rng.below(events_.size())];
      ev.at = std::min(std::max(ev.at + (rng.uniform01() - 0.5) * horizon * 0.2,
                                0.0),
                       horizon);
      break;
    }
    case 7:  // jiggle one message-fault knob (bounded: retries stay live)
      switch (rng.below(4)) {
        case 0:
          message_faults_.drop_probability =
              rng.bernoulli(0.25) ? 0.0 : rng.uniform01() * 0.25;
          break;
        case 1:
          message_faults_.duplicate_probability =
              rng.bernoulli(0.25) ? 0.0 : rng.uniform01() * 0.2;
          break;
        case 2:
          message_faults_.extra_delay =
              rng.bernoulli(0.25) ? 0.0 : rng.uniform01() * 2.0;
          break;
        default:
          if (rng.bernoulli(0.25)) {
            message_faults_.reorder_probability = 0.0;
            message_faults_.reorder_delay_max = 0.0;
          } else {
            message_faults_.reorder_probability = rng.uniform01() * 0.3;
            message_faults_.reorder_delay_max = rng.uniform01() * 5.0;
          }
          break;
      }
      message_faults_ = normalized(message_faults_);
      break;
    case 8: {  // durability fault: torn sync or fsync-loss window
      const auto [id, is_key] = random_target();
      if (rng.bernoulli(0.5)) {
        const sim::Time at = random_time();
        is_key ? torn_write_key_at(at, id) : torn_write_at(at, id);
      } else {
        const sim::Time from = rng.uniform01() * horizon * 0.9;
        const sim::Time until =
            std::min(from + rng.exponential(horizon / 8.0), horizon);
        if (is_key) {
          fsync_loss_key_at(from, id);
          clear_fsync_loss_key_at(until, id);
        } else {
          fsync_loss_at(from, id);
          clear_fsync_loss_at(until, id);
        }
      }
      break;
    }
  }
}

void FaultPlan::install(sim::Simulator& simulator,
                        FaultInjector& injector) const {
  PQRA_REQUIRE(!has_key_targets(),
               "plan has key-addressed targets: call resolve_keys() first");
  if (message_faults_.any()) injector.set_message_faults(message_faults_);
  for (const Event& ev : events_) {
    simulator.schedule_at(ev.at, sim::EventTag::kFault, [&injector, ev] {
      switch (ev.kind) {
        case FaultKind::kCrash:
          injector.crash(ev.node);
          break;
        case FaultKind::kRecover:
          injector.recover(ev.node);
          break;
        case FaultKind::kSlow:
          injector.set_slow(ev.node, ev.factor);
          break;
        case FaultKind::kClearSlow:
          injector.clear_slow(ev.node);
          break;
        case FaultKind::kPartition:
          injector.partition(ev.groups);
          break;
        case FaultKind::kHeal:
          injector.heal();
          break;
        case FaultKind::kTornWrite:
          injector.arm_torn_write(ev.node);
          break;
        case FaultKind::kFsyncLoss:
          injector.set_fsync_loss(ev.node, true);
          break;
        case FaultKind::kClearFsyncLoss:
          injector.set_fsync_loss(ev.node, false);
          break;
      }
    });
  }
}

void FaultPlan::install(sim::Simulator& simulator,
                        SimTransport& transport) const {
  install(simulator, transport.faults());
}

LiveFaultDriver::LiveFaultDriver(const FaultPlan& plan,
                                 ThreadTransport& transport,
                                 double seconds_per_time_unit)
    : transport_(transport) {
  PQRA_REQUIRE(seconds_per_time_unit > 0.0, "time scale must be positive");
  PQRA_REQUIRE(!plan.has_key_targets(),
               "live driver replays resolved plans: call resolve_keys() "
               "before handing a key-addressed plan to the threaded runtime");
  thread_ = std::thread([this, plan, seconds_per_time_unit] {
    run(plan, seconds_per_time_unit);
  });
}

LiveFaultDriver::~LiveFaultDriver() { stop(); }

void LiveFaultDriver::stop() {
  {
    std::lock_guard lock(mutex_);
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void LiveFaultDriver::run(FaultPlan plan, double scale) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();

  if (plan.message_faults().any()) {
    MessageFaults scaled = plan.message_faults();
    scaled.extra_delay *= scale;
    scaled.reorder_delay_max *= scale;
    transport_.set_message_faults(scaled);
  }

  std::vector<FaultPlan::Event> events = plan.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultPlan::Event& a, const FaultPlan::Event& b) {
                     return a.at < b.at;
                   });
  for (const FaultPlan::Event& ev : events) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(ev.at * scale));
    {
      // pqra-lint: allow(hotpath-blocking) — LiveFaultDriver's own thread
      std::unique_lock lock(mutex_);
      if (cv_.wait_until(lock, due, [this] { return stopped_; })) return;
    }
    switch (ev.kind) {
      case FaultKind::kCrash:
        transport_.crash(ev.node);
        break;
      case FaultKind::kRecover:
        transport_.recover(ev.node);
        break;
      case FaultKind::kSlow:
        transport_.set_slow(ev.node, ev.factor);
        break;
      case FaultKind::kClearSlow:
        transport_.clear_slow(ev.node);
        break;
      case FaultKind::kPartition:
        transport_.partition(ev.groups);
        break;
      case FaultKind::kHeal:
        transport_.heal();
        break;
      case FaultKind::kTornWrite:
      case FaultKind::kFsyncLoss:
      case FaultKind::kClearFsyncLoss:
        // Durability faults target MemDisk-backed replicas, which only exist
        // on the DES; the threaded runtime's FileBackend does real I/O and
        // has no injection point, so these verbs are no-ops here.
        break;
    }
  }
}

std::size_t FaultPlan::max_concurrent_down(std::size_t num_servers) const {
  std::vector<Event> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  std::vector<bool> down(num_servers, false);
  std::size_t current = 0, worst = 0;
  for (const Event& ev : sorted) {
    // Key-addressed targets have no node identity until resolve_keys();
    // callers that care run this on the resolved plan.
    if (ev.node_is_key) continue;
    if (ev.node >= num_servers) continue;
    if (ev.kind == FaultKind::kCrash && !down[ev.node]) {
      down[ev.node] = true;
      ++current;
    } else if (ev.kind == FaultKind::kRecover && down[ev.node]) {
      down[ev.node] = false;
      --current;
    }
    worst = std::max(worst, current);
  }
  return worst;
}

}  // namespace pqra::net
