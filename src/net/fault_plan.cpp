#include "net/fault_plan.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pqra::net {

FaultPlan& FaultPlan::crash_at(sim::Time at, NodeId node) {
  PQRA_REQUIRE(at >= 0.0, "events cannot be scheduled before time 0");
  events_.push_back(Event{at, node, true});
  return *this;
}

FaultPlan& FaultPlan::recover_at(sim::Time at, NodeId node) {
  PQRA_REQUIRE(at >= 0.0, "events cannot be scheduled before time 0");
  events_.push_back(Event{at, node, false});
  return *this;
}

FaultPlan& FaultPlan::outage(NodeId node, sim::Time from, sim::Time duration) {
  PQRA_REQUIRE(duration > 0.0, "outage must have positive duration");
  crash_at(from, node);
  recover_at(from + duration, node);
  return *this;
}

FaultPlan FaultPlan::random_churn(std::size_t num_servers, sim::Time horizon,
                                  sim::Time mean_uptime,
                                  sim::Time mean_downtime, util::Rng& rng) {
  PQRA_REQUIRE(horizon > 0.0, "horizon must be positive");
  FaultPlan plan;
  for (std::size_t s = 0; s < num_servers; ++s) {
    sim::Time t = rng.exponential(mean_uptime);
    while (t < horizon) {
      sim::Time down = rng.exponential(mean_downtime);
      plan.outage(static_cast<NodeId>(s), t, down);
      t += down + rng.exponential(mean_uptime);
    }
  }
  return plan;
}

void FaultPlan::install(sim::Simulator& simulator,
                        SimTransport& transport) const {
  for (const Event& ev : events_) {
    simulator.schedule_at(ev.at, [&transport, ev] {
      if (ev.crash) {
        transport.crash(ev.node);
      } else {
        transport.recover(ev.node);
      }
    });
  }
}

std::size_t FaultPlan::max_concurrent_down(std::size_t num_servers) const {
  std::vector<Event> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  std::vector<bool> down(num_servers, false);
  std::size_t current = 0, worst = 0;
  for (const Event& ev : sorted) {
    if (ev.node >= num_servers) continue;
    if (ev.crash && !down[ev.node]) {
      down[ev.node] = true;
      ++current;
    } else if (!ev.crash && down[ev.node]) {
      down[ev.node] = false;
      --current;
    }
    worst = std::max(worst, current);
  }
  return worst;
}

}  // namespace pqra::net
