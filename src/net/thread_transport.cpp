#include "net/thread_transport.hpp"

#include <utility>

#include "util/check.hpp"

namespace pqra::net {

ThreadTransport::ThreadTransport(NodeId max_nodes) {
  mailboxes_.reserve(max_nodes);
  for (NodeId i = 0; i < max_nodes; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  stats_.received_by_node.assign(max_nodes, 0);
}

void ThreadTransport::send(NodeId from, NodeId to, Message msg) {
  PQRA_REQUIRE(from < mailboxes_.size() && to < mailboxes_.size(),
               "node id out of range");
  {
    std::lock_guard lock(stats_mutex_);
    if (closed_) {
      ++stats_.dropped;
      if (metrics_.has_value()) metrics_->on_drop();
      return;
    }
    ++stats_.total;
    ++stats_.by_type[static_cast<std::size_t>(msg.type)];
    ++stats_.received_by_node[to];
    if (metrics_.has_value()) metrics_->on_send(msg);
  }
  Mailbox& box = *mailboxes_[to];
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(Envelope{from, std::move(msg)});
  }
  box.cv.notify_one();
}

std::optional<Envelope> ThreadTransport::recv(NodeId node) {
  PQRA_REQUIRE(node < mailboxes_.size(), "node id out of range");
  Mailbox& box = *mailboxes_[node];
  std::unique_lock lock(box.mutex);
  box.cv.wait(lock, [this, &box] { return !box.queue.empty() || closed(); });
  if (box.queue.empty()) return std::nullopt;
  Envelope env = std::move(box.queue.front());
  box.queue.pop_front();
  return env;
}

std::optional<Envelope> ThreadTransport::try_recv(NodeId node) {
  PQRA_REQUIRE(node < mailboxes_.size(), "node id out of range");
  Mailbox& box = *mailboxes_[node];
  std::lock_guard lock(box.mutex);
  if (box.queue.empty()) return std::nullopt;
  Envelope env = std::move(box.queue.front());
  box.queue.pop_front();
  return env;
}

void ThreadTransport::close() {
  {
    std::lock_guard lock(stats_mutex_);
    closed_ = true;
  }
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box->mutex);
    box->cv.notify_all();
  }
}

bool ThreadTransport::closed() const {
  std::lock_guard lock(stats_mutex_);
  return closed_;
}

MessageStats ThreadTransport::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void ThreadTransport::bind_metrics(obs::Registry& registry) {
  PQRA_REQUIRE(registry.mode() == obs::Concurrency::kThreadSafe,
               "ThreadTransport needs a thread-safe registry");
  std::lock_guard lock(stats_mutex_);
  metrics_.emplace(registry);
}

}  // namespace pqra::net
