#include "net/thread_transport.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace pqra::net {

namespace {
using Clock = std::chrono::steady_clock;

Clock::time_point delay_to_ready(double seconds) {
  return Clock::now() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double>(seconds));
}
}  // namespace

ThreadTransport::ThreadTransport(NodeId max_nodes, std::uint64_t fault_seed)
    : start_(Clock::now()), faults_(max_nodes), fault_rng_(fault_seed) {
  mailboxes_.reserve(max_nodes);
  for (NodeId i = 0; i < max_nodes; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  stats_.received_by_node.assign(max_nodes, 0);
}

void ThreadTransport::enqueue(NodeId to, Timed entry) {
  Mailbox& box = *mailboxes_[to];
  {
    std::lock_guard lock(box.mutex);
    if (entry.ready == Clock::time_point{} || box.queue.empty() ||
        box.queue.back().ready <= entry.ready) {
      box.queue.push_back(std::move(entry));
    } else {
      // Delayed copy overtaken by nothing: keep the queue sorted by ready
      // time so recv() only ever has to look at the front.
      auto pos = std::upper_bound(
          box.queue.begin(), box.queue.end(), entry,
          [](const Timed& a, const Timed& b) { return a.ready < b.ready; });
      box.queue.insert(pos, std::move(entry));
    }
  }
  box.cv.notify_one();
}

void ThreadTransport::send(NodeId from, NodeId to, Message msg) {
  PQRA_REQUIRE(from < mailboxes_.size() && to < mailboxes_.size(),
               "node id out of range");
  FaultDecision fault;
  {
    std::lock_guard lock(stats_mutex_);
    if (closed_) {
      ++stats_.dropped;
      if (metrics_.has_value()) metrics_->on_drop();
      return;
    }
    fault = faults_.on_send(from, to, fault_rng_);
    if (fault.drop) {
      ++stats_.dropped;
      if (metrics_.has_value()) metrics_->on_drop();
      if (flight_recorder_ != nullptr) {
        record_flight(obs::FlightEventKind::kDrop, from, to, msg);
      }
      return;
    }
    ++stats_.total;
    ++stats_.by_type[static_cast<std::size_t>(msg.type)];
    ++stats_.received_by_node[to];
    if (metrics_.has_value()) metrics_->on_send(msg);
    if (flight_recorder_ != nullptr) {
      record_flight(obs::FlightEventKind::kSend, from, to, msg);
    }
  }
  Clock::time_point ready = fault.extra_delay > 0.0
                                ? delay_to_ready(fault.extra_delay)
                                : Clock::time_point{};
  if (fault.duplicate) enqueue(to, Timed{Envelope{from, msg}, ready});
  enqueue(to, Timed{Envelope{from, std::move(msg)}, ready});
}

std::optional<Envelope> ThreadTransport::recv(NodeId node) {
  return recv_until(node, Clock::time_point::max());
}

std::optional<Envelope> ThreadTransport::recv_until(
    NodeId node, Clock::time_point deadline) {
  PQRA_REQUIRE(node < mailboxes_.size(), "node id out of range");
  Mailbox& box = *mailboxes_[node];
  std::unique_lock lock(box.mutex);
  for (;;) {
    if (closed()) {
      // Drain what is queued, ignoring injected delays, then report closed.
      if (box.queue.empty()) return std::nullopt;
      Envelope env = std::move(box.queue.front().env);
      box.queue.pop_front();
      return env;
    }
    Clock::time_point now = Clock::now();
    if (!box.queue.empty() && box.queue.front().ready <= now) {
      Envelope env = std::move(box.queue.front().env);
      box.queue.pop_front();
      return env;
    }
    if (now >= deadline) return std::nullopt;
    Clock::time_point until = deadline;
    if (!box.queue.empty()) until = std::min(until, box.queue.front().ready);
    if (until == Clock::time_point::max()) {
      box.cv.wait(lock);
    } else {
      box.cv.wait_until(lock, until);
    }
  }
}

std::optional<Envelope> ThreadTransport::try_recv(NodeId node) {
  PQRA_REQUIRE(node < mailboxes_.size(), "node id out of range");
  Mailbox& box = *mailboxes_[node];
  std::lock_guard lock(box.mutex);
  if (box.queue.empty()) return std::nullopt;
  if (!closed() && box.queue.front().ready > Clock::now()) return std::nullopt;
  Envelope env = std::move(box.queue.front().env);
  box.queue.pop_front();
  return env;
}

void ThreadTransport::close() {
  {
    std::lock_guard lock(stats_mutex_);
    closed_ = true;
  }
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box->mutex);
    box->cv.notify_all();
  }
}

bool ThreadTransport::closed() const {
  std::lock_guard lock(stats_mutex_);
  return closed_;
}

MessageStats ThreadTransport::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void ThreadTransport::crash(NodeId node) {
  std::lock_guard lock(stats_mutex_);
  faults_.crash(node);
}

void ThreadTransport::recover(NodeId node) {
  std::lock_guard lock(stats_mutex_);
  faults_.recover(node);
}

bool ThreadTransport::is_crashed(NodeId node) const {
  std::lock_guard lock(stats_mutex_);
  return faults_.is_crashed(node);
}

void ThreadTransport::set_slow(NodeId node, double factor) {
  std::lock_guard lock(stats_mutex_);
  faults_.set_slow(node, factor);
}

void ThreadTransport::clear_slow(NodeId node) {
  std::lock_guard lock(stats_mutex_);
  faults_.clear_slow(node);
}

void ThreadTransport::partition(
    const std::vector<std::vector<NodeId>>& groups) {
  std::lock_guard lock(stats_mutex_);
  faults_.partition(groups);
}

void ThreadTransport::heal() {
  std::lock_guard lock(stats_mutex_);
  faults_.heal();
}

void ThreadTransport::set_message_faults(const MessageFaults& faults) {
  std::lock_guard lock(stats_mutex_);
  faults_.set_message_faults(faults);
}

FaultCounters ThreadTransport::fault_counters() const {
  std::lock_guard lock(stats_mutex_);
  return faults_.counters();
}

void ThreadTransport::bind_fault_metrics(obs::Registry& registry) {
  PQRA_REQUIRE(registry.mode() == obs::Concurrency::kThreadSafe,
               "ThreadTransport needs a thread-safe registry");
  std::lock_guard lock(stats_mutex_);
  faults_.bind_metrics(registry);
}

void ThreadTransport::bind_metrics(obs::Registry& registry) {
  PQRA_REQUIRE(registry.mode() == obs::Concurrency::kThreadSafe,
               "ThreadTransport needs a thread-safe registry");
  std::lock_guard lock(stats_mutex_);
  metrics_.emplace(registry);
}

void ThreadTransport::bind_flight_recorder(obs::FlightRecorder* recorder) {
  std::lock_guard lock(stats_mutex_);
  flight_recorder_ = recorder;
}

void ThreadTransport::record_flight(obs::FlightEventKind kind, NodeId from,
                                    NodeId to, const Message& msg) {
  // Caller holds stats_mutex_.
  obs::FlightRecord rec;
  rec.time =
      std::chrono::duration<double>(Clock::now() - start_).count();
  rec.event = kind;
  rec.msg_type = static_cast<std::uint8_t>(msg.type);
  rec.from = from;
  rec.to = to;
  rec.reg = msg.reg;
  rec.op = msg.op;
  rec.ts = msg.ts;
  rec.trace = msg.trace;
  rec.span = msg.span;
  flight_recorder_->record(rec);
}

}  // namespace pqra::net
