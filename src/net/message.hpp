#pragma once

/// \file message.hpp
/// The wire vocabulary of the quorum register protocol.
///
/// The protocol of §4 needs exactly four message types: a read queries a
/// quorum (ReadReq) and each queried replica answers with its timestamped
/// value (ReadAck); a write pushes a new timestamped value to a quorum
/// (WriteReq) and each replica acknowledges (WriteAck).

#include <cstdint>
#include <string>

#include "net/value.hpp"
#include "util/codec.hpp"

namespace pqra::net {

/// Identifies a node (replica server or client process) on a transport.
using NodeId = std::uint32_t;

/// Identifies one shared register (one vector component of the iteration).
using RegisterId = std::uint32_t;

/// Identifies one key of the sharded multi-key store (docs/SHARDING.md).
/// A key IS a register: the store runs the §4 protocol independently per
/// key, so keys and registers share one id space and `Message::reg` carries
/// the key of every request/ack.  The alias exists so key-aware layers
/// (core/keyspace, spec partitioning, fault-plan key targets) say what they
/// mean.
using KeyId = RegisterId;

/// Register id used by snapshot reads: a ReadReq for kAllRegisters asks the
/// replica for its whole store (one ReadAck whose value is the encoded
/// store), letting a client read every register through a single quorum
/// access.  Ordinary registers must not use this id.
inline constexpr RegisterId kAllRegisters = 0xFFFFFFFFu;

/// Client-local operation identifier; unique per (client, operation).
using OpId = std::uint64_t;

/// Write timestamps.  Each register has a single writer which numbers its
/// writes 1, 2, 3, ...; timestamp 0 denotes the preloaded initial value.
using Timestamp = std::uint64_t;

/// Register payloads are opaque, immutable, refcounted byte blobs (see
/// net/value.hpp): copying one — e.g. fanning a WriteReq out to a k-quorum —
/// shares the buffer instead of duplicating it.

enum class MsgType : std::uint8_t {
  kReadReq = 0,
  kReadAck = 1,
  kWriteReq = 2,
  kWriteAck = 3,
  /// Server-to-server anti-entropy: value carries an encoded register store
  /// (see Replica::encode_store); no reply.
  kGossip = 4,
};

/// Number of distinct MsgType values (for counter arrays).
inline constexpr std::size_t kNumMsgTypes = 5;

const char* msg_type_name(MsgType t);

/// One protocol message.  A single struct (rather than a variant) keeps the
/// hot path allocation-free except for the value payload.
struct Message {
  MsgType type = MsgType::kReadReq;
  RegisterId reg = 0;
  OpId op = 0;
  Timestamp ts = 0;
  /// Causal tracing headers (obs/span.hpp): the trace id of the client
  /// operation this message serves and the span id of the RPC attempt that
  /// sent it.  0 = untraced.  Transports copy them opaquely; replicas echo
  /// a request's ids on the reply so the client can close the RPC span.
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  Value value;

  static Message read_req(RegisterId reg, OpId op);
  static Message read_ack(RegisterId reg, OpId op, Timestamp ts, Value value);
  static Message write_req(RegisterId reg, OpId op, Timestamp ts, Value value);
  static Message write_ack(RegisterId reg, OpId op, Timestamp ts);
  static Message gossip(Value encoded_store);

  /// Debug rendering, e.g. "ReadAck{reg=3 op=17 ts=5 |v|=272}".
  std::string describe() const;
};

}  // namespace pqra::net
