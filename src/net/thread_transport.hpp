#pragma once

/// \file thread_transport.hpp
/// Mailbox transport for the real-threads runtime.
///
/// Each node owns a mutex+condvar mailbox; send() enqueues, recv() blocks.
/// Unlike SimTransport there is no Receiver callback — threaded nodes pull
/// from their mailbox, which matches how the blocking register client and
/// threaded servers are written.  close() releases all blocked receivers so
/// the runtime can shut down cleanly.
///
/// Fault injection: the transport owns a FaultInjector (net/faults.hpp)
/// consulted on every send under the transport mutex.  Dropped messages
/// vanish; delayed messages are enqueued with a wall-clock ready time and
/// withheld from recv() until it passes.  All fault state is mutated through
/// the locking wrappers below — typically by a LiveFaultDriver replaying a
/// FaultPlan — so it is safe against concurrent senders.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

#include "net/faults.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace pqra::net {

/// A received message together with its sender.
struct Envelope {
  NodeId from = 0;
  Message msg;
};

class ThreadTransport {
 public:
  explicit ThreadTransport(NodeId max_nodes, std::uint64_t fault_seed = 1);

  /// Enqueues \p msg into \p to's mailbox.  Thread-safe.  Messages sent
  /// after close() are dropped, as are messages the fault injector drops.
  void send(NodeId from, NodeId to, Message msg);

  /// Blocks until a message for \p node arrives or the transport is closed.
  /// Returns nullopt on close with an empty mailbox.
  std::optional<Envelope> recv(NodeId node);

  /// Like recv() but gives up at \p deadline; nullopt on timeout or close.
  std::optional<Envelope> recv_until(
      NodeId node, std::chrono::steady_clock::time_point deadline);

  /// Non-blocking variant; nullopt when the mailbox is empty.
  std::optional<Envelope> try_recv(NodeId node);

  /// Wakes all blocked receivers; subsequent recv() drains remaining
  /// messages (ignoring injected delays) and then returns nullopt.
  void close();

  bool closed() const;

  MessageStats stats() const;

  // -- fault injection (all thread-safe wrappers over the owned injector) ---

  /// Crashed nodes silently lose all traffic to and from them.
  void crash(NodeId node);
  void recover(NodeId node);
  bool is_crashed(NodeId node) const;

  /// Delay scaling for \p node; with no base delay model, slow factors only
  /// take effect by scaling MessageFaults::extra_delay (seconds).
  void set_slow(NodeId node, double factor);
  void clear_slow(NodeId node);

  /// Partition/heal, same semantics as FaultInjector.
  void partition(const std::vector<std::vector<NodeId>>& groups);
  void heal();

  /// Message-level faults; delays are in seconds on this runtime.
  void set_message_faults(const MessageFaults& faults);

  FaultCounters fault_counters() const;

  /// Reports injected faults into \p registry (must be thread-safe).
  void bind_fault_metrics(obs::Registry& registry);

  /// Routes message/drop/byte counts into \p registry in addition to the
  /// legacy MessageStats snapshot.  The registry must be thread-safe
  /// (Concurrency::kThreadSafe): increments happen on every sender thread.
  /// Bind before the first send.
  void bind_metrics(obs::Registry& registry);

  /// Records sends and drops into \p recorder (not owned; null to unbind),
  /// serialized by the stats mutex; times are wall seconds since transport
  /// construction.  Unlike SimTransport there is no deliver record — pulls
  /// happen on receiver threads and the recorder is deliberately lock-free.
  /// Bind before the first send.
  void bind_flight_recorder(obs::FlightRecorder* recorder);

 private:
  /// Mailbox entry: deliverable once `ready` has passed (injected delay).
  struct Timed {
    Envelope env;
    std::chrono::steady_clock::time_point ready;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Timed> queue;
  };

  void enqueue(NodeId to, Timed entry);

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  void record_flight(obs::FlightEventKind kind, NodeId from, NodeId to,
                     const Message& msg);

  mutable std::mutex stats_mutex_;
  MessageStats stats_;
  std::optional<TransportMetrics> metrics_;
  obs::FlightRecorder* flight_recorder_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  FaultInjector faults_;
  util::Rng fault_rng_;
  bool closed_ = false;
};

}  // namespace pqra::net
