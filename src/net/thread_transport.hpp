#pragma once

/// \file thread_transport.hpp
/// Mailbox transport for the real-threads runtime.
///
/// Each node owns a mutex+condvar mailbox; send() enqueues, recv() blocks.
/// Unlike SimTransport there is no Receiver callback — threaded nodes pull
/// from their mailbox, which matches how the blocking register client and
/// threaded servers are written.  close() releases all blocked receivers so
/// the runtime can shut down cleanly.

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"

#include "net/message.hpp"
#include "net/transport.hpp"

namespace pqra::net {

/// A received message together with its sender.
struct Envelope {
  NodeId from = 0;
  Message msg;
};

class ThreadTransport {
 public:
  explicit ThreadTransport(NodeId max_nodes);

  /// Enqueues \p msg into \p to's mailbox.  Thread-safe.  Messages sent
  /// after close() are dropped.
  void send(NodeId from, NodeId to, Message msg);

  /// Blocks until a message for \p node arrives or the transport is closed.
  /// Returns nullopt on close with an empty mailbox.
  std::optional<Envelope> recv(NodeId node);

  /// Non-blocking variant; nullopt when the mailbox is empty.
  std::optional<Envelope> try_recv(NodeId node);

  /// Wakes all blocked receivers; subsequent recv() drains remaining
  /// messages and then returns nullopt.
  void close();

  bool closed() const;

  MessageStats stats() const;

  /// Routes message/drop/byte counts into \p registry in addition to the
  /// legacy MessageStats snapshot.  The registry must be thread-safe
  /// (Concurrency::kThreadSafe): increments happen on every sender thread.
  /// Bind before the first send.
  void bind_metrics(obs::Registry& registry);

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Envelope> queue;
  };

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  mutable std::mutex stats_mutex_;
  MessageStats stats_;
  std::optional<TransportMetrics> metrics_;
  bool closed_ = false;
};

}  // namespace pqra::net
