#pragma once

/// \file value.hpp
/// Refcounted immutable register payload.
///
/// Every quorum access fans one payload out to k servers, and replicas,
/// client caches and Alg. 1's local vectors all hold copies of the same
/// bytes.  Value makes those copies free: it is a shared_ptr<const Bytes>
/// behind a Bytes-shaped surface, so copying a Value bumps a refcount
/// instead of duplicating the buffer, and a WriteReq broadcast to a k-quorum
/// ships ONE buffer instead of k.
///
/// Sharing discipline (docs/PERFORMANCE.md):
///   - The byte content of a Value is immutable.  "Mutation" is assignment
///     of a whole new Value; nobody may scribble on bytes another holder can
///     see.
///   - mutable_bytes() is the copy-on-write escape hatch: it clones the
///     buffer unless this Value is the sole owner, then allows in-place
///     edits.  Use it only on values you just built.
///   - The refcount is atomic (shared_ptr), so Values may be handed across
///     threads (ThreadTransport) and dropped concurrently.
///
/// Value converts implicitly from and to util::Bytes (the conversion *to*
/// Bytes is by const reference and never copies), so Codec-based call sites
/// keep reading naturally: `Value v = util::encode<T>(x);` and
/// `util::decode<T>(v)` both work unchanged.

#include <cstddef>
#include <memory>
#include <utility>

#include "util/codec.hpp"

namespace pqra::net {

class Value {
 public:
  /// Empty payload; allocates nothing.
  Value() noexcept = default;

  /// Takes ownership of \p bytes.  Implicit on purpose: Codec::encode
  /// returns Bytes and every call site hands that straight to a Value.
  Value(util::Bytes bytes)  // NOLINT(google-explicit-constructor)
      : rep_(bytes.empty()
                 ? nullptr
                 // one allocation per distinct written payload, amortized
                 // over the k-server fan-out of copy-free Value reuse:
                 // pqra-lint: allow(hotpath-alloc)
                 : std::make_shared<const util::Bytes>(std::move(bytes))) {}

  /// Wraps an already-shared buffer (advanced callers; may be null).
  static Value adopt(std::shared_ptr<const util::Bytes> rep) {
    Value v;
    if (rep != nullptr && !rep->empty()) v.rep_ = std::move(rep);
    return v;
  }

  /// The underlying bytes, by reference — never copies.
  const util::Bytes& bytes() const noexcept {
    return rep_ == nullptr ? empty_bytes() : *rep_;
  }

  /// Implicit view as Bytes so Codec and the other byte-level readers work
  /// unchanged.
  operator const util::Bytes&() const noexcept {  // NOLINT
    return bytes();
  }

  std::size_t size() const noexcept { return rep_ == nullptr ? 0 : rep_->size(); }
  bool empty() const noexcept { return size() == 0; }
  const std::byte* data() const noexcept { return bytes().data(); }
  util::Bytes::const_iterator begin() const noexcept { return bytes().begin(); }
  util::Bytes::const_iterator end() const noexcept { return bytes().end(); }

  /// Copy-on-write: returns an exclusively owned mutable buffer, cloning the
  /// shared one first if anyone else holds it.  The returned reference is
  /// invalidated by any copy/move/assignment of this Value.
  util::Bytes& mutable_bytes() {
    if (rep_ == nullptr) {
      rep_ = std::make_shared<const util::Bytes>();
    } else if (rep_.use_count() > 1) {
      rep_ = std::make_shared<const util::Bytes>(*rep_);
    }
    // Sole owner here, so shedding const is safe: no other holder can
    // observe the edit.
    return const_cast<util::Bytes&>(*rep_);
  }

  /// Number of Values sharing this buffer (0 for empty) — lets tests assert
  /// that a quorum fan-out shared one buffer instead of copying k times.
  long use_count() const noexcept { return rep_ == nullptr ? 0 : rep_.use_count(); }

  /// True when \p other shares this Value's buffer (or both are empty).
  bool shares_buffer_with(const Value& other) const noexcept {
    return rep_ == other.rep_;
  }

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_ || a.bytes() == b.bytes();
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator==(const Value& a, const util::Bytes& b) {
    return a.bytes() == b;
  }
  friend bool operator==(const util::Bytes& a, const Value& b) {
    return a == b.bytes();
  }
  friend bool operator!=(const Value& a, const util::Bytes& b) {
    return !(a == b);
  }
  friend bool operator!=(const util::Bytes& a, const Value& b) {
    return !(a == b);
  }

 private:
  static const util::Bytes& empty_bytes() noexcept {
    static const util::Bytes kEmpty;
    return kEmpty;
  }

  /// Invariant: null or non-empty — the empty payload is always represented
  /// by null, so default-constructed and emptied Values compare fast.
  std::shared_ptr<const util::Bytes> rep_;
};

}  // namespace pqra::net
