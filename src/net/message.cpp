#include "net/message.hpp"

#include <sstream>
#include <utility>

namespace pqra::net {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kReadReq:
      return "ReadReq";
    case MsgType::kReadAck:
      return "ReadAck";
    case MsgType::kWriteReq:
      return "WriteReq";
    case MsgType::kWriteAck:
      return "WriteAck";
    case MsgType::kGossip:
      return "Gossip";
  }
  return "?";
}

Message Message::read_req(RegisterId reg, OpId op) {
  Message m;
  m.type = MsgType::kReadReq;
  m.reg = reg;
  m.op = op;
  return m;
}

Message Message::read_ack(RegisterId reg, OpId op, Timestamp ts, Value value) {
  Message m;
  m.type = MsgType::kReadAck;
  m.reg = reg;
  m.op = op;
  m.ts = ts;
  m.value = std::move(value);
  return m;
}

Message Message::write_req(RegisterId reg, OpId op, Timestamp ts, Value value) {
  Message m;
  m.type = MsgType::kWriteReq;
  m.reg = reg;
  m.op = op;
  m.ts = ts;
  m.value = std::move(value);
  return m;
}

Message Message::write_ack(RegisterId reg, OpId op, Timestamp ts) {
  Message m;
  m.type = MsgType::kWriteAck;
  m.reg = reg;
  m.op = op;
  m.ts = ts;
  return m;
}

Message Message::gossip(Value encoded_store) {
  Message m;
  m.type = MsgType::kGossip;
  m.value = std::move(encoded_store);
  return m;
}

std::string Message::describe() const {
  std::ostringstream os;
  os << msg_type_name(type) << "{reg=" << reg << " op=" << op << " ts=" << ts;
  if (trace != 0) os << " trace=" << trace << " span=" << span;
  os << " |v|=" << value.size() << "}";
  return os.str();
}

}  // namespace pqra::net
