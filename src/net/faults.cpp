#include "net/faults.hpp"

#include "obs/names.hpp"
#include "util/check.hpp"

namespace pqra::net {

FaultInjector::FaultInjector(NodeId max_nodes)
    : crashed_(max_nodes, false),
      torn_armed_(max_nodes, false),
      fsync_loss_(max_nodes, false),
      slow_(max_nodes, 1.0),
      group_(max_nodes, kNoGroup) {}

void FaultInjector::crash(NodeId node) {
  PQRA_REQUIRE(node < crashed_.size(), "node id out of range");
  if (crashed_[node]) return;
  crashed_[node] = true;
  ++num_crashed_;
  ++counters_.crashes;
  if (instruments_.crashes != nullptr) {
    instruments_.crashes->inc();
    instruments_.injected->inc();
  }
}

void FaultInjector::recover(NodeId node) {
  PQRA_REQUIRE(node < crashed_.size(), "node id out of range");
  if (!crashed_[node]) return;
  crashed_[node] = false;
  --num_crashed_;
  ++counters_.recoveries;
  if (instruments_.recoveries != nullptr) instruments_.recoveries->inc();
  if (lifecycle_ != nullptr) lifecycle_->on_recover(node);
}

void FaultInjector::arm_torn_write(NodeId node) {
  PQRA_REQUIRE(node < torn_armed_.size(), "node id out of range");
  torn_armed_[node] = true;
}

bool FaultInjector::consume_torn_write(NodeId node) {
  PQRA_REQUIRE(node < torn_armed_.size(), "node id out of range");
  if (!torn_armed_[node]) return false;
  torn_armed_[node] = false;
  ++counters_.torn_writes;
  if (instruments_.torn_writes != nullptr) {
    instruments_.torn_writes->inc();
    instruments_.injected->inc();
  }
  return true;
}

void FaultInjector::set_fsync_loss(NodeId node, bool lost) {
  PQRA_REQUIRE(node < fsync_loss_.size(), "node id out of range");
  fsync_loss_[node] = lost;
}

bool FaultInjector::consume_fsync_loss(NodeId node) {
  PQRA_REQUIRE(node < fsync_loss_.size(), "node id out of range");
  if (!fsync_loss_[node]) return false;
  ++counters_.fsync_losses;
  if (instruments_.fsync_losses != nullptr) {
    instruments_.fsync_losses->inc();
    instruments_.injected->inc();
  }
  return true;
}

bool FaultInjector::is_crashed(NodeId node) const {
  PQRA_REQUIRE(node < crashed_.size(), "node id out of range");
  return crashed_[node];
}

void FaultInjector::set_slow(NodeId node, double factor) {
  PQRA_REQUIRE(node < slow_.size(), "node id out of range");
  PQRA_REQUIRE(factor >= 1.0, "slow factor must be >= 1");
  slow_[node] = factor;
}

void FaultInjector::clear_slow(NodeId node) {
  PQRA_REQUIRE(node < slow_.size(), "node id out of range");
  slow_[node] = 1.0;
}

double FaultInjector::slow_factor(NodeId node) const {
  PQRA_REQUIRE(node < slow_.size(), "node id out of range");
  return slow_[node];
}

void FaultInjector::partition(
    const std::vector<std::vector<NodeId>>& groups) {
  std::fill(group_.begin(), group_.end(), kNoGroup);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NodeId node : groups[g]) {
      PQRA_REQUIRE(node < group_.size(), "node id out of range");
      PQRA_REQUIRE(group_[node] == kNoGroup, "node in two partition groups");
      group_[node] = static_cast<std::uint32_t>(g);
    }
  }
  partitioned_ = true;
}

void FaultInjector::heal() {
  std::fill(group_.begin(), group_.end(), kNoGroup);
  partitioned_ = false;
}

bool FaultInjector::partitioned(NodeId a, NodeId b) const {
  PQRA_REQUIRE(a < group_.size() && b < group_.size(),
               "node id out of range");
  if (!partitioned_) return false;
  return group_[a] != kNoGroup && group_[b] != kNoGroup &&
         group_[a] != group_[b];
}

void FaultInjector::count_drop(std::uint64_t FaultCounters::*slot) {
  ++(counters_.*slot);
  if (instruments_.msg_dropped != nullptr) {
    instruments_.msg_dropped->inc();
    instruments_.injected->inc();
  }
}

FaultDecision FaultInjector::on_send(NodeId from, NodeId to, util::Rng& rng) {
  FaultDecision d;
  if (crashed_[from] || crashed_[to]) {
    d.drop = true;
    count_drop(&FaultCounters::crash_drops);
    return d;
  }
  if (partitioned_ && partitioned(from, to)) {
    d.drop = true;
    count_drop(&FaultCounters::partition_drops);
    return d;
  }
  if (message_.drop_probability > 0.0 &&
      rng.bernoulli(message_.drop_probability)) {
    d.drop = true;
    count_drop(&FaultCounters::random_drops);
    return d;
  }
  if (message_.duplicate_probability > 0.0 &&
      rng.bernoulli(message_.duplicate_probability)) {
    d.duplicate = true;
    ++counters_.duplicates;
    if (instruments_.msg_duplicated != nullptr) {
      instruments_.msg_duplicated->inc();
      instruments_.injected->inc();
    }
  }
  d.delay_factor = slow_[from] * slow_[to];
  d.extra_delay = message_.extra_delay * d.delay_factor;
  if (message_.reorder_probability > 0.0 &&
      rng.bernoulli(message_.reorder_probability)) {
    d.extra_delay += rng.uniform01() * message_.reorder_delay_max;
  }
  if (d.extra_delay > 0.0 || d.delay_factor != 1.0) {
    ++counters_.delayed;
    if (instruments_.msg_delayed != nullptr) {
      instruments_.msg_delayed->inc();
      instruments_.injected->inc();
    }
  }
  return d;
}

void FaultInjector::bind_metrics(obs::Registry& registry) {
  namespace n = obs::names;
  instruments_.injected = &registry.counter(
      n::kFaultsInjected, "Total injected faults, all kinds");
  instruments_.crashes =
      &registry.counter(n::kFaultsCrashes, "Node crash events injected");
  instruments_.recoveries =
      &registry.counter(n::kFaultsRecoveries, "Node recovery events");
  instruments_.msg_dropped = &registry.counter(
      n::kFaultsMsgDropped,
      "Messages lost to crashes, partitions or drop probability");
  instruments_.msg_duplicated = &registry.counter(
      n::kFaultsMsgDuplicated, "Messages delivered twice by injection");
  instruments_.msg_delayed = &registry.counter(
      n::kFaultsMsgDelayed, "Messages given extra delay (slow nodes/reorder)");
  instruments_.torn_writes = &registry.counter(
      n::kFaultsTornWrites, "WAL syncs torn mid-record by injection");
  instruments_.fsync_losses = &registry.counter(
      n::kFaultsFsyncLoss, "WAL syncs silently lost by injection");
}

}  // namespace pqra::net
