#include "net/transport.hpp"

#include "obs/names.hpp"
#include "util/check.hpp"

namespace pqra::net {

TransportMetrics::TransportMetrics(obs::Registry& registry)
    : messages_(&registry.counter(obs::names::kTransportMessages,
                                  "Messages sent (including dropped)")),
      dropped_(&registry.counter(
          obs::names::kTransportDropped,
          "Messages lost to crashed nodes / drop probability / shutdown")),
      payload_bytes_(&registry.counter(obs::names::kTransportPayloadBytes,
                                       "Payload bytes sent")) {
  for (std::size_t i = 0; i < kNumMsgTypes; ++i) {
    by_type_[i] = &registry.counter(obs::names::kTransportMessagesByType[i]);
  }
}

void Transport::send_fanout(NodeId from, const FanoutEntry* targets,
                            std::size_t count, Message proto) {
  // Reference semantics for every transport that does not batch: per-target
  // message copies are cheap (Value is COW), and the last target moves.
  for (std::size_t i = 0; i < count; ++i) {
    Message msg = (i + 1 == count) ? std::move(proto) : proto;
    msg.span = targets[i].span;
    send(from, targets[i].to, std::move(msg));
  }
}

MessageStats MessageStats::minus(const MessageStats& earlier) const {
  PQRA_REQUIRE(total >= earlier.total, "stats snapshots out of order");
  MessageStats d;
  d.total = total - earlier.total;
  d.dropped = dropped - earlier.dropped;
  for (std::size_t i = 0; i < by_type.size(); ++i) {
    d.by_type[i] = by_type[i] - earlier.by_type[i];
  }
  d.received_by_node.resize(received_by_node.size());
  for (std::size_t i = 0; i < received_by_node.size(); ++i) {
    std::uint64_t before =
        i < earlier.received_by_node.size() ? earlier.received_by_node[i] : 0;
    d.received_by_node[i] = received_by_node[i] - before;
  }
  return d;
}

}  // namespace pqra::net
