#include "net/sim_transport.hpp"

#include <algorithm>
#include <new>
#include <utility>

#include "util/check.hpp"

namespace pqra::net {

/// One batched fan-out, resident in a single EventArena block: the shared
/// prototype message plus up to kMaxEntries (time, seq, span, target)
/// deliveries sorted by (time, seq).  Only the entry at `next` is in the
/// event queue; firing it delivers the message (and any equal-time
/// successors — their seqs are consecutive with no outside event between
/// them, so inline delivery preserves the global (time, seq) order) and
/// schedules the following entry.  Fan-outs wider than kMaxEntries split
/// into independent blocks, which is still correct: every entry fires at
/// its own reserved (time, seq).
struct SimTransport::FanoutBlock {
  using Entry = FanoutDelivery;

  NodeId from = 0;
  std::uint16_t count = 0;
  std::uint16_t next = 0;
  Message proto;

  static constexpr std::size_t kHeaderBytes =
      sizeof(NodeId) + 2 * sizeof(std::uint16_t) + sizeof(Message);
  static constexpr std::size_t kMaxEntries =
      (sim::EventArena::kBlockBytes - kHeaderBytes) / sizeof(Entry);

  Entry entries[kMaxEntries];

  static_assert(sim::EventArena::kBlockBytes >=
                    kHeaderBytes + 4 * sizeof(Entry),
                "a block should hold a typical quorum fan-out (k <= 4)");
};


SimTransport::SimTransport(sim::Simulator& simulator,
                           sim::DelayModel& delay_model, const util::Rng& rng,
                           NodeId max_nodes)
    : simulator_(simulator),
      delay_model_(delay_model),
      rng_(rng.fork(0x7261705f74726e73ULL)),
      receivers_(max_nodes, nullptr),
      faults_(max_nodes) {
  stats_.received_by_node.assign(max_nodes, 0);
}

void SimTransport::register_receiver(NodeId node, Receiver* receiver) {
  PQRA_REQUIRE(node < receivers_.size(), "node id out of range");
  PQRA_REQUIRE(receiver != nullptr, "receiver must not be null");
  PQRA_REQUIRE(receivers_[node] == nullptr, "node already registered");
  receivers_[node] = receiver;
}

void SimTransport::record_flight(obs::FlightEventKind kind, NodeId from,
                                 NodeId to, const Message& msg) {
  obs::FlightRecord rec;
  rec.time = simulator_.now();
  rec.event = kind;
  rec.msg_type = static_cast<std::uint8_t>(msg.type);
  rec.from = from;
  rec.to = to;
  rec.reg = msg.reg;
  rec.op = msg.op;
  rec.ts = msg.ts;
  rec.trace = msg.trace;
  rec.span = msg.span;
  flight_recorder_->record(rec);
}

void SimTransport::deliver_after(sim::Time delay, NodeId from, NodeId to,
                                 Message msg) {
  simulator_.schedule_in(
      delay, sim::EventTag::kMsgDeliver,
      [this, from, to, m = std::move(msg)]() mutable {
        // Re-check the destination: it may have crashed in flight.
        if (faults_.is_crashed(to)) {
          ++stats_.dropped;
          if (metrics_.has_value()) metrics_->on_drop();
          if (flight_recorder_ != nullptr) {
            record_flight(obs::FlightEventKind::kDrop, from, to, m);
          }
          return;
        }
        ++stats_.received_by_node[to];
        if (flight_recorder_ != nullptr) {
          record_flight(obs::FlightEventKind::kDeliver, from, to, m);
        }
        receivers_[to]->on_message(from, std::move(m));
      });
}

void SimTransport::send(NodeId from, NodeId to, Message msg) {
  PQRA_REQUIRE(from < receivers_.size() && to < receivers_.size(),
               "node id out of range");
  PQRA_REQUIRE(receivers_[to] != nullptr, "destination not registered");
  ++stats_.total;
  ++stats_.by_type[static_cast<std::size_t>(msg.type)];
  if (metrics_.has_value()) metrics_->on_send(msg);
  if (flight_recorder_ != nullptr) {
    record_flight(obs::FlightEventKind::kSend, from, to, msg);
  }
  FaultDecision fault = faults_.on_send(from, to, rng_);
  if (fault.drop) {
    ++stats_.dropped;
    if (metrics_.has_value()) metrics_->on_drop();
    if (flight_recorder_ != nullptr) {
      record_flight(obs::FlightEventKind::kDrop, from, to, msg);
    }
    return;
  }
  sim::Time delay =
      delay_model_.sample(rng_) * fault.delay_factor + fault.extra_delay;
  if (fault.duplicate) {
    // The copy gets its own independently sampled delay, so the two copies
    // may arrive in either order.
    sim::Time copy_delay =
        delay_model_.sample(rng_) * fault.delay_factor + fault.extra_delay;
    deliver_after(copy_delay, from, to, msg);
  }
  deliver_after(delay, from, to, std::move(msg));
}

void SimTransport::send_fanout(NodeId from, const FanoutEntry* targets,
                               std::size_t count, Message proto) {
  PQRA_REQUIRE(from < receivers_.size(), "node id out of range");
  // Phase 1 — per-target accounting and RNG draws, in array order: the draw
  // sequence (fault decision, delay, duplicate delay) is exactly what
  // `count` send() calls would consume, so batching never shifts the RNG
  // stream.  Dropped sends schedule nothing, duplicated sends schedule the
  // copy before the original — both matching send().
  const sim::Time now = simulator_.now();
  fanout_scratch_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId to = targets[i].to;
    PQRA_REQUIRE(to < receivers_.size(), "node id out of range");
    PQRA_REQUIRE(receivers_[to] != nullptr, "destination not registered");
    ++stats_.total;
    ++stats_.by_type[static_cast<std::size_t>(proto.type)];
    if (metrics_.has_value()) metrics_->on_send(proto);
    if (flight_recorder_ != nullptr) {
      proto.span = targets[i].span;
      record_flight(obs::FlightEventKind::kSend, from, to, proto);
    }
    FaultDecision fault = faults_.on_send(from, to, rng_);
    if (fault.drop) {
      ++stats_.dropped;
      if (metrics_.has_value()) metrics_->on_drop();
      if (flight_recorder_ != nullptr) {
        proto.span = targets[i].span;
        record_flight(obs::FlightEventKind::kDrop, from, to, proto);
      }
      continue;
    }
    sim::Time delay =
        delay_model_.sample(rng_) * fault.delay_factor + fault.extra_delay;
    if (fault.duplicate) {
      sim::Time copy_delay =
          delay_model_.sample(rng_) * fault.delay_factor + fault.extra_delay;
      fanout_scratch_.push_back(
          FanoutDelivery{now + copy_delay, 0, targets[i].span, to});
    }
    fanout_scratch_.push_back(
        FanoutDelivery{now + delay, 0, targets[i].span, to});
  }
  if (fanout_scratch_.empty()) return;

  // Phase 2 — reserve one seq per delivery in creation order (the order the
  // unbatched form would have pushed them), then sort by (time, seq) so each
  // block walks its entries in firing order.
  const std::uint64_t base =
      simulator_.reserve_seqs(fanout_scratch_.size());
  for (std::size_t i = 0; i < fanout_scratch_.size(); ++i) {
    fanout_scratch_[i].seq = base + i;
  }
  std::sort(fanout_scratch_.begin(), fanout_scratch_.end(),
            [](const FanoutDelivery& a, const FanoutDelivery& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.seq < b.seq;
            });

  // Phase 3 — pack into arena blocks; only each block's earliest entry
  // enters the event queue.
  static_assert(sizeof(FanoutBlock) <= sim::EventArena::kBlockBytes,
                "a fan-out block must fit one arena block");
  sim::EventArena& arena = simulator_.arena();
  std::size_t idx = 0;
  while (idx < fanout_scratch_.size()) {
    const std::size_t n =
        std::min(FanoutBlock::kMaxEntries, fanout_scratch_.size() - idx);
    void* p = arena.allocate(sizeof(FanoutBlock));
    auto* block = ::new (p) FanoutBlock;
    block->from = from;
    block->count = static_cast<std::uint16_t>(n);
    const bool last_block = idx + n == fanout_scratch_.size();
    block->proto = last_block ? std::move(proto) : proto;
    for (std::size_t j = 0; j < n; ++j) {
      block->entries[j] = fanout_scratch_[idx + j];
    }
    simulator_.schedule_batch(block->entries[0].at, block->entries[0].seq,
                              sim::EventTag::kMsgDeliver,
                              [this, block] { fire_fanout(block); });
    idx += n;
  }
}

void SimTransport::fire_fanout(FanoutBlock* block) {
  const sim::Time now = simulator_.now();
  for (;;) {
    const FanoutDelivery& e = block->entries[block->next];
    ++block->next;
    const bool last = block->next == block->count;
    block->proto.span = e.span;
    // Same fire-time semantics as the unbatched delivery closure: re-check
    // the destination (it may have crashed in flight), then count, record
    // and deliver.
    if (faults_.is_crashed(e.to)) {
      ++stats_.dropped;
      if (metrics_.has_value()) metrics_->on_drop();
      if (flight_recorder_ != nullptr) {
        record_flight(obs::FlightEventKind::kDrop, block->from, e.to,
                      block->proto);
      }
    } else {
      ++stats_.received_by_node[e.to];
      if (flight_recorder_ != nullptr) {
        record_flight(obs::FlightEventKind::kDeliver, block->from, e.to,
                      block->proto);
      }
      const NodeId from = block->from;
      Receiver* receiver = receivers_[e.to];
      if (last) {
        // The receiver may send again and recycle this arena block, so the
        // block is retired before on_message runs.
        Message msg = std::move(block->proto);
        block->~FanoutBlock();
        simulator_.arena().deallocate(block, sizeof(FanoutBlock));
        receiver->on_message(from, std::move(msg));
        return;
      }
      receiver->on_message(from, block->proto);
    }
    if (last) {
      block->~FanoutBlock();
      simulator_.arena().deallocate(block, sizeof(FanoutBlock));
      return;
    }
    const FanoutDelivery& nx = block->entries[block->next];
    if (nx.at == now) {
      // Equal-time run: the next entry's seq has no outside event between
      // it and the one just delivered (batch seqs are consecutive at equal
      // times), so it fires inside this event — one queue op total.
      simulator_.note_subevent(nx.at, nx.seq, sim::EventTag::kMsgDeliver);
      continue;
    }
    simulator_.schedule_batch(nx.at, nx.seq, sim::EventTag::kMsgDeliver,
                              [this, block] { fire_fanout(block); });
    return;
  }
}

MessageStats SimTransport::stats() const { return stats_; }

void SimTransport::bind_metrics(obs::Registry& registry) {
  metrics_.emplace(registry);
}

void SimTransport::set_drop_probability(double p) {
  PQRA_REQUIRE(p >= 0.0 && p < 1.0, "drop probability must be in [0, 1)");
  MessageFaults faults = faults_.message_faults();
  faults.drop_probability = p;
  faults_.set_message_faults(faults);
}

}  // namespace pqra::net
