#include "net/sim_transport.hpp"

#include <utility>

#include "util/check.hpp"

namespace pqra::net {

SimTransport::SimTransport(sim::Simulator& simulator,
                           sim::DelayModel& delay_model, const util::Rng& rng,
                           NodeId max_nodes)
    : simulator_(simulator),
      delay_model_(delay_model),
      rng_(rng.fork(0x7261705f74726e73ULL)),
      receivers_(max_nodes, nullptr),
      crashed_(max_nodes, false) {
  stats_.received_by_node.assign(max_nodes, 0);
}

void SimTransport::register_receiver(NodeId node, Receiver* receiver) {
  PQRA_REQUIRE(node < receivers_.size(), "node id out of range");
  PQRA_REQUIRE(receiver != nullptr, "receiver must not be null");
  PQRA_REQUIRE(receivers_[node] == nullptr, "node already registered");
  receivers_[node] = receiver;
}

void SimTransport::send(NodeId from, NodeId to, Message msg) {
  PQRA_REQUIRE(from < receivers_.size() && to < receivers_.size(),
               "node id out of range");
  PQRA_REQUIRE(receivers_[to] != nullptr, "destination not registered");
  ++stats_.total;
  ++stats_.by_type[static_cast<std::size_t>(msg.type)];
  if (metrics_.has_value()) metrics_->on_send(msg);
  if (crashed_[from] || crashed_[to] ||
      (drop_probability_ > 0.0 && rng_.bernoulli(drop_probability_))) {
    ++stats_.dropped;
    if (metrics_.has_value()) metrics_->on_drop();
    return;
  }
  sim::Time delay = delay_model_.sample(rng_);
  simulator_.schedule_in(
      delay, [this, from, to, m = std::move(msg)]() mutable {
        // Re-check the destination: it may have crashed in flight.
        if (crashed_[to]) {
          ++stats_.dropped;
          if (metrics_.has_value()) metrics_->on_drop();
          return;
        }
        ++stats_.received_by_node[to];
        receivers_[to]->on_message(from, std::move(m));
      });
}

MessageStats SimTransport::stats() const { return stats_; }

void SimTransport::bind_metrics(obs::Registry& registry) {
  metrics_.emplace(registry);
}

void SimTransport::crash(NodeId node) {
  PQRA_REQUIRE(node < crashed_.size(), "node id out of range");
  crashed_[node] = true;
}

void SimTransport::recover(NodeId node) {
  PQRA_REQUIRE(node < crashed_.size(), "node id out of range");
  crashed_[node] = false;
}

bool SimTransport::is_crashed(NodeId node) const {
  PQRA_REQUIRE(node < crashed_.size(), "node id out of range");
  return crashed_[node];
}

void SimTransport::set_drop_probability(double p) {
  PQRA_REQUIRE(p >= 0.0 && p < 1.0, "drop probability must be in [0, 1)");
  drop_probability_ = p;
}

}  // namespace pqra::net
