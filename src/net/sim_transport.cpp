#include "net/sim_transport.hpp"

#include <utility>

#include "util/check.hpp"

namespace pqra::net {

SimTransport::SimTransport(sim::Simulator& simulator,
                           sim::DelayModel& delay_model, const util::Rng& rng,
                           NodeId max_nodes)
    : simulator_(simulator),
      delay_model_(delay_model),
      rng_(rng.fork(0x7261705f74726e73ULL)),
      receivers_(max_nodes, nullptr),
      faults_(max_nodes) {
  stats_.received_by_node.assign(max_nodes, 0);
}

void SimTransport::register_receiver(NodeId node, Receiver* receiver) {
  PQRA_REQUIRE(node < receivers_.size(), "node id out of range");
  PQRA_REQUIRE(receiver != nullptr, "receiver must not be null");
  PQRA_REQUIRE(receivers_[node] == nullptr, "node already registered");
  receivers_[node] = receiver;
}

void SimTransport::record_flight(obs::FlightEventKind kind, NodeId from,
                                 NodeId to, const Message& msg) {
  obs::FlightRecord rec;
  rec.time = simulator_.now();
  rec.event = kind;
  rec.msg_type = static_cast<std::uint8_t>(msg.type);
  rec.from = from;
  rec.to = to;
  rec.reg = msg.reg;
  rec.op = msg.op;
  rec.ts = msg.ts;
  rec.trace = msg.trace;
  rec.span = msg.span;
  flight_recorder_->record(rec);
}

void SimTransport::deliver_after(sim::Time delay, NodeId from, NodeId to,
                                 Message msg) {
  simulator_.schedule_in(
      delay, sim::EventTag::kMsgDeliver,
      [this, from, to, m = std::move(msg)]() mutable {
        // Re-check the destination: it may have crashed in flight.
        if (faults_.is_crashed(to)) {
          ++stats_.dropped;
          if (metrics_.has_value()) metrics_->on_drop();
          if (flight_recorder_ != nullptr) {
            record_flight(obs::FlightEventKind::kDrop, from, to, m);
          }
          return;
        }
        ++stats_.received_by_node[to];
        if (flight_recorder_ != nullptr) {
          record_flight(obs::FlightEventKind::kDeliver, from, to, m);
        }
        receivers_[to]->on_message(from, std::move(m));
      });
}

void SimTransport::send(NodeId from, NodeId to, Message msg) {
  PQRA_REQUIRE(from < receivers_.size() && to < receivers_.size(),
               "node id out of range");
  PQRA_REQUIRE(receivers_[to] != nullptr, "destination not registered");
  ++stats_.total;
  ++stats_.by_type[static_cast<std::size_t>(msg.type)];
  if (metrics_.has_value()) metrics_->on_send(msg);
  if (flight_recorder_ != nullptr) {
    record_flight(obs::FlightEventKind::kSend, from, to, msg);
  }
  FaultDecision fault = faults_.on_send(from, to, rng_);
  if (fault.drop) {
    ++stats_.dropped;
    if (metrics_.has_value()) metrics_->on_drop();
    if (flight_recorder_ != nullptr) {
      record_flight(obs::FlightEventKind::kDrop, from, to, msg);
    }
    return;
  }
  sim::Time delay =
      delay_model_.sample(rng_) * fault.delay_factor + fault.extra_delay;
  if (fault.duplicate) {
    // The copy gets its own independently sampled delay, so the two copies
    // may arrive in either order.
    sim::Time copy_delay =
        delay_model_.sample(rng_) * fault.delay_factor + fault.extra_delay;
    deliver_after(copy_delay, from, to, msg);
  }
  deliver_after(delay, from, to, std::move(msg));
}

MessageStats SimTransport::stats() const { return stats_; }

void SimTransport::bind_metrics(obs::Registry& registry) {
  metrics_.emplace(registry);
}

void SimTransport::set_drop_probability(double p) {
  PQRA_REQUIRE(p >= 0.0 && p < 1.0, "drop probability must be in [0, 1)");
  MessageFaults faults = faults_.message_faults();
  faults.drop_probability = p;
  faults_.set_message_faults(faults);
}

}  // namespace pqra::net
