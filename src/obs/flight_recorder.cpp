#include "obs/flight_recorder.hpp"

#include <ostream>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/check.hpp"

namespace pqra::obs {

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSend:
      return "send";
    case FlightEventKind::kDeliver:
      return "deliver";
    case FlightEventKind::kDrop:
      return "drop";
  }
  PQRA_CHECK(false, "flight recorder: unknown event kind");
  return "";
}

namespace {

/// Mirrors net::MsgType's enumerators without depending on net/ (layering:
/// obs must stay below net).  tests/net/message_test.cpp asserts the two
/// stay in sync.
constexpr const char* kMsgTypeNames[] = {"ReadReq", "ReadAck", "WriteReq",
                                         "WriteAck", "Gossip"};
constexpr std::size_t kNumMsgTypeNames =
    sizeof(kMsgTypeNames) / sizeof(kMsgTypeNames[0]);

const char* msg_type_name(std::uint8_t t) {
  return t < kNumMsgTypeNames ? kMsgTypeNames[t] : "?";
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) : ring_(capacity) {
  PQRA_CHECK(capacity > 0, "flight recorder: capacity must be > 0");
}

void FlightRecorder::record(const FlightRecord& rec) {
  ring_[next_] = rec;
  next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
  if (held_ < ring_.size()) ++held_;
  ++recorded_;
}

std::size_t FlightRecorder::size() const { return held_; }

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(held_);
  std::size_t start = held_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < held_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::dump(std::ostream& out) const {
  out << "# pqra flight recorder: capacity=" << ring_.size()
      << " held=" << held_ << " overwritten=" << (recorded_ - held_) << "\n";
  for (const FlightRecord& rec : snapshot()) {
    out << '[' << format_double(rec.time) << "] "
        << flight_event_kind_name(rec.event) << ' '
        << msg_type_name(rec.msg_type) << ' ' << rec.from << "->" << rec.to
        << " reg=" << rec.reg << " op=" << rec.op << " ts=" << rec.ts;
    if (rec.trace != 0) {
      out << " trace=" << rec.trace << " span=" << rec.span;
    }
    out << '\n';
  }
}

void FlightRecorder::publish(Registry& registry) const {
  namespace n = names;
  registry.counter(n::kFlightRecRecords, "Records pushed into the ring")
      .inc(recorded_);
  registry
      .counter(n::kFlightRecOverwritten,
               "Records evicted by newer ones before a dump")
      .inc(recorded_ - held_);
  registry
      .gauge(n::kFlightRecCapacity, "Ring capacity (slots)",
             GaugeMerge::kMax)
      .record_max(static_cast<double>(ring_.size()));
}

}  // namespace pqra::obs
