#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace pqra::obs {

namespace {

/// Index of the first bucket worth emitting: everything below is empty.
std::size_t first_used_bucket(const HistogramSnapshot& h) {
  for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
    if (h.cumulative[i] > 0) return i;
  }
  return h.cumulative.empty() ? 0 : h.cumulative.size() - 1;
}

/// Index one past the last bucket whose cumulative count still grows; the
/// remaining buckets all repeat the total and collapse into `+Inf`.
std::size_t last_used_bucket(const HistogramSnapshot& h) {
  std::size_t last = first_used_bucket(h);
  for (std::size_t i = last; i + 1 < h.cumulative.size(); ++i) {
    if (h.cumulative[i + 1] > h.cumulative[i]) last = i + 1;
  }
  return last;
}

void write_json_string(const std::string& s, std::ostream& out) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string format_double(double x) {
  if (std::isnan(x)) return "NaN";
  if (std::isinf(x)) return x > 0 ? "+Inf" : "-Inf";
  char buf[64];
  // %.17g round-trips; try shorter forms first for readable output.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, x);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == x) break;
  }
  return buf;
}

void write_prometheus(const RegistrySnapshot& snap, std::ostream& out) {
  for (const auto& c : snap.counters) {
    if (!c.help.empty()) out << "# HELP " << c.name << ' ' << c.help << '\n';
    out << "# TYPE " << c.name << " counter\n";
    out << c.name << ' ' << c.value << '\n';
  }
  for (const auto& g : snap.gauges) {
    if (!g.help.empty()) out << "# HELP " << g.name << ' ' << g.help << '\n';
    out << "# TYPE " << g.name << " gauge\n";
    out << g.name << ' ' << format_double(g.value) << '\n';
  }
  for (const auto& h : snap.histograms) {
    if (!h.help.empty()) out << "# HELP " << h.name << ' ' << h.help << '\n';
    out << "# TYPE " << h.name << " histogram\n";
    const HistogramSnapshot& d = h.data;
    if (d.count > 0) {
      std::size_t lo = first_used_bucket(d);
      std::size_t hi = last_used_bucket(d);
      for (std::size_t i = lo; i <= hi; ++i) {
        if (std::isinf(d.upper_bounds[i])) continue;  // folded into +Inf
        out << h.name << "_bucket{le=\"" << format_double(d.upper_bounds[i])
            << "\"} " << d.cumulative[i] << '\n';
      }
    }
    out << h.name << "_bucket{le=\"+Inf\"} " << d.count << '\n';
    out << h.name << "_sum " << format_double(d.sum) << '\n';
    out << h.name << "_count " << d.count << '\n';
  }
}

void write_prometheus(const Registry& registry, std::ostream& out) {
  write_prometheus(registry.snapshot(), out);
}

void write_json(const RegistrySnapshot& snap, std::ostream& out) {
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i == 0 ? "\n    " : ",\n    ");
    write_json_string(snap.counters[i].name, out);
    out << ": " << snap.counters[i].value;
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i == 0 ? "\n    " : ",\n    ");
    write_json_string(snap.gauges[i].name, out);
    double v = snap.gauges[i].value;
    if (std::isfinite(v)) {
      out << ": " << format_double(v);
    } else {
      out << ": ";
      write_json_string(format_double(v), out);
    }
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    out << (i == 0 ? "\n    " : ",\n    ");
    write_json_string(h.name, out);
    out << ": {\"count\": " << h.data.count
        << ", \"sum\": " << format_double(h.data.sum) << ", \"buckets\": [";
    if (h.data.count > 0) {
      std::size_t lo = first_used_bucket(h.data);
      std::size_t hi = last_used_bucket(h.data);
      bool first = true;
      for (std::size_t j = lo; j <= hi; ++j) {
        if (std::isinf(h.data.upper_bounds[j])) continue;
        if (!first) out << ", ";
        first = false;
        out << "{\"le\": " << format_double(h.data.upper_bounds[j])
            << ", \"count\": " << h.data.cumulative[j] << '}';
      }
    }
    out << "]}";
  }
  out << "\n  }\n}\n";
}

void write_json(const Registry& registry, std::ostream& out) {
  write_json(registry.snapshot(), out);
}

}  // namespace pqra::obs
