#pragma once

/// \file metrics.hpp
/// Unified metrics registry shared by the DES and real-threads runtimes.
///
/// Instruments are named Counters, Gauges and log-bucketed Histograms,
/// created once through a Registry and then incremented lock-free on the hot
/// path.  The registry runs in one of two concurrency modes, fixed at
/// construction:
///
///   - kSingleThread: the DES fast path.  Increments compile to plain
///     load/add/store (no lock prefix), so instrumenting the simulator adds
///     no atomic traffic and cannot perturb event ordering.
///   - kThreadSafe: the real-threads runtime.  The same instruments update
///     with relaxed atomic RMWs, so p client threads and n server threads
///     can share one registry without a lock on the hot path.
///
/// Registration (Registry::counter/gauge/histogram) is always
/// mutex-protected and idempotent: asking for an existing name returns the
/// same instrument, which is how several clients share one aggregate
/// counter.  Instrument references stay valid for the registry's lifetime.
///
/// Naming convention (see docs/OBSERVABILITY.md): `pqra_<layer>_<what>`,
/// counters suffixed `_total`, e.g. `pqra_client_reads_total`.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pqra::obs {

enum class Concurrency { kSingleThread, kThreadSafe };

/// How a gauge combines when a shard registry is merged into an aggregate
/// (Registry::merge_from — the parallel runner's per-run shards).  Counters
/// and histograms always merge by summation; gauges are point-in-time values
/// whose aggregation semantics depend on what they measure:
///   kLast — the merged-in shard overwrites (e.g. "sim time at end of run",
///           matching what sequential runs sharing one registry produced);
///   kMax  — keep the maximum (high-water marks);
///   kSum  — accumulate (additive quantities exported as gauges).
enum class GaugeMerge { kLast, kMax, kSum };

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (atomic_) {
      v_.fetch_add(n, std::memory_order_relaxed);
    } else {
      v_.store(v_.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
    }
  }

  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Counter(bool atomic) : atomic_(atomic) {}

  std::atomic<std::uint64_t> v_{0};
  const bool atomic_;
};

/// Point-in-time value (heap depth, simulated clock, ...).
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }

  void add(double dx) {
    if (atomic_) {
      double cur = v_.load(std::memory_order_relaxed);
      while (!v_.compare_exchange_weak(cur, cur + dx,
                                       std::memory_order_relaxed)) {
      }
    } else {
      v_.store(v_.load(std::memory_order_relaxed) + dx,
               std::memory_order_relaxed);
    }
  }

  /// Raises the gauge to \p x if larger (high-water marks).
  void record_max(double x) {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < x &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }

  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Gauge(bool atomic) : atomic_(atomic) {}

  std::atomic<double> v_{0.0};
  const bool atomic_;
};

/// Log-bucketed (base-2) histogram of non-negative samples.
///
/// Bucket i holds samples x with 2^(i - kBias - 1) <= x < 2^(i - kBias)
/// (frexp exponent = i - kBias); bucket 0 additionally absorbs everything
/// below its range (including zero and negatives), the last bucket
/// everything above.  NaN samples are dropped and tallied separately.  The
/// layout is fixed, so two histograms merge bucket-wise and export needs no
/// per-instrument configuration.
class Histogram {
 public:
  /// Buckets cover ~[2^-17, 2^46): sub-microsecond wall clocks up to ~weeks
  /// of simulated time without saturating a boundary bucket.
  static constexpr std::size_t kNumBuckets = 64;
  static constexpr int kBias = 17;  // bucket 0 tops out at 2^-kBias

  void observe(double x);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Mean of all observed samples (0 when empty).
  double mean() const;
  std::uint64_t nan_count() const {
    return nans_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(std::size_t i) const;
  /// Inclusive upper bound of bucket \p i (Prometheus `le`); +inf for the
  /// last bucket.
  static double bucket_upper_bound(std::size_t i);

 private:
  friend class Registry;
  explicit Histogram(bool atomic) : atomic_(atomic) {}

  void bump(std::atomic<std::uint64_t>& cell);

  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> nans_{0};
  std::atomic<double> sum_{0.0};
  const bool atomic_;
};

/// Plain-data snapshot of one histogram, for exporters and tests.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::uint64_t nans = 0;
  /// Parallel arrays: cumulative count of samples <= upper_bound[i].
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> cumulative;
};

/// Plain-data snapshot of a whole registry (export boundary; decoupled from
/// live instruments so exporters need no locking discipline).
struct RegistrySnapshot {
  struct CounterSample {
    std::string name;
    std::string help;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::string help;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::string help;
    HistogramSnapshot data;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class Registry {
 public:
  explicit Registry(Concurrency mode = Concurrency::kSingleThread)
      : mode_(mode) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Concurrency mode() const { return mode_; }

  /// Returns the instrument named \p name, creating it on first use.  The
  /// help string is set by whichever call registers first.  Requesting an
  /// existing name as a different instrument kind throws.
  Counter& counter(const std::string& name, const std::string& help = "");
  /// \p merge fixes how this gauge combines under merge_from; like help, the
  /// first registration wins.
  Gauge& gauge(const std::string& name, const std::string& help = "",
               GaugeMerge merge = GaugeMerge::kLast);
  Histogram& histogram(const std::string& name, const std::string& help = "");

  /// Snapshot of every instrument, sorted by name (deterministic export).
  RegistrySnapshot snapshot() const;

  /// Folds \p shard into this registry: counters add, histograms add
  /// bucket-wise, gauges combine per their GaugeMerge policy (this registry's
  /// entry decides; instruments missing here are created with the shard's
  /// help/policy, consistent with first-registration-wins).  \p shard must be
  /// quiescent (its run has finished).  Merging per-run shards IN RUN ORDER
  /// is what makes parallel replications (sim::ParallelRunner) produce
  /// byte-identical exports regardless of job count — see
  /// docs/PERFORMANCE.md.
  void merge_from(const Registry& shard);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    GaugeMerge gauge_merge = GaugeMerge::kLast;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& lookup(const std::string& name, Kind kind, const std::string& help,
                GaugeMerge merge = GaugeMerge::kLast);

  const Concurrency mode_;
  // registration + snapshot only, never hot:
  // pqra-lint: allow(hotpath-blocking)
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace pqra::obs
