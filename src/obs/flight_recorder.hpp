#pragma once

/// \file flight_recorder.hpp
/// Hot-path-safe flight recorder: a fixed ring of the most recent network
/// records, kept so a violation found by tools/explore ships with its
/// last-N-events context (the dump lands next to the shrunken repro file).
///
/// Design constraints, enforced by the lint hot-path rules this file is
/// scoped under (docs/STATIC_ANALYSIS.md):
///   - zero heap allocation after construction: the ring is sized once in
///     the constructor and records are plain values overwritten in place;
///   - no locks and no clocks: callers pass simulated (or already-sampled)
///     time in, and the threaded transport records under its existing
///     stats mutex;
///   - no net/ dependency: message fields arrive as raw integers, the
///     rendered dump names message types through a local table that must
///     stay in sync with net::MsgType (net_test asserts it does).
///
/// Recording is O(1): bump a cursor, overwrite a slot.  The dump walks the
/// ring oldest-first.  See docs/OBSERVABILITY.md for the text format.

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace pqra::obs {

class Registry;

/// What happened to one message.  Values are stable (they appear in dumps).
enum class FlightEventKind : std::uint8_t {
  kSend = 0,     ///< transport accepted a send
  kDeliver = 1,  ///< receiver's on_message ran
  kDrop = 2,     ///< fault injection or a crashed endpoint ate it
};
inline constexpr std::size_t kNumFlightEventKinds = 3;

const char* flight_event_kind_name(FlightEventKind kind);

/// One ring slot: a fixed-size value type, no owned storage.
struct FlightRecord {
  double time = 0.0;  ///< simulated time (threaded: seconds since start)
  FlightEventKind event = FlightEventKind::kSend;
  std::uint8_t msg_type = 0;  ///< net::MsgType as an integer
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t reg = 0;
  std::uint64_t op = 0;
  std::uint64_t ts = 0;
  std::uint64_t trace = 0;  ///< causal ids (obs/span.hpp); 0 = untraced
  std::uint64_t span = 0;
};

class FlightRecorder {
 public:
  /// Allocates the ring once; no allocation happens after this returns.
  explicit FlightRecorder(std::size_t capacity);

  /// O(1), allocation-free: overwrites the oldest slot when full.
  void record(const FlightRecord& rec);

  std::size_t capacity() const { return ring_.size(); }
  /// Records currently held (<= capacity).
  std::size_t size() const;
  /// Total records ever pushed (size + overwritten).
  std::uint64_t recorded() const { return recorded_; }

  /// Copies the held records oldest-first (allocates; not for hot paths).
  std::vector<FlightRecord> snapshot() const;

  /// Text dump, oldest-first, one record per line:
  ///   [   12.5] deliver WriteReq 3->7 reg=2 op=17 ts=5 trace=4 span=6
  /// preceded by a header naming capacity / held / overwritten counts.
  void dump(std::ostream& out) const;

  /// Folds names::kFlightRec* counters into \p registry.
  void publish(Registry& registry) const;

 private:
  std::vector<FlightRecord> ring_;
  std::size_t next_ = 0;       ///< slot the next record lands in
  std::size_t held_ = 0;       ///< min(recorded_, capacity)
  std::uint64_t recorded_ = 0;
};

}  // namespace pqra::obs
