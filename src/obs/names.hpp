#pragma once

/// \file names.hpp
/// Well-known instrument names, so every layer reports into the same
/// registry entries and exporters/tests/dashboards can reference them
/// without string drift.  Convention: `pqra_<layer>_<what>`, counters
/// suffixed `_total`.  See docs/OBSERVABILITY.md.

namespace pqra::obs::names {

// Quorum register clients (DES QuorumRegisterClient + threaded
// BlockingRegisterClient), aggregated over all client processes.
inline constexpr const char* kClientReads = "pqra_client_reads_total";
inline constexpr const char* kClientWrites = "pqra_client_writes_total";
inline constexpr const char* kClientRetries = "pqra_client_retries_total";
inline constexpr const char* kClientCacheHits =
    "pqra_client_monotone_cache_hits_total";
inline constexpr const char* kClientRepairs = "pqra_client_repairs_total";
inline constexpr const char* kClientWriteBacks =
    "pqra_client_write_backs_total";
inline constexpr const char* kClientReadLatency = "pqra_client_read_latency";
inline constexpr const char* kClientWriteLatency = "pqra_client_write_latency";
inline constexpr const char* kClientStaleDepth = "pqra_client_stale_depth";
// Recovery policy (docs/FAULTS.md): degraded completions accepted at the
// operation deadline, and operations that failed outright.
inline constexpr const char* kClientDegradedReads =
    "pqra_client_degraded_reads_total";
inline constexpr const char* kClientDegradedWrites =
    "pqra_client_degraded_writes_total";
inline constexpr const char* kClientOpFailures =
    "pqra_client_op_failures_total";

// Sharded multi-key store (core/keyspace, docs/SHARDING.md), aggregated
// over all store clients.  Per-key attribution lives in spans and the op
// trace (reg == key), not in per-key metric names: the keyspace is
// unbounded, metric names are not.
inline constexpr const char* kStoreGets = "pqra_store_gets_total";
inline constexpr const char* kStorePuts = "pqra_store_puts_total";
inline constexpr const char* kStoreKeysTouched = "pqra_store_keys_touched";
// Replica-side key population: keys created on a server by writes or gossip
// merges (first entry for a previously unknown key id).
inline constexpr const char* kServerKeysCreated =
    "pqra_server_keys_created_total";

// Fault injection (net/faults.hpp), aggregated over the whole network.
inline constexpr const char* kFaultsInjected = "pqra_faults_injected_total";
inline constexpr const char* kFaultsCrashes = "pqra_faults_crashes_total";
inline constexpr const char* kFaultsRecoveries =
    "pqra_faults_recoveries_total";
inline constexpr const char* kFaultsMsgDropped =
    "pqra_faults_messages_dropped_total";
inline constexpr const char* kFaultsMsgDuplicated =
    "pqra_faults_messages_duplicated_total";
inline constexpr const char* kFaultsMsgDelayed =
    "pqra_faults_messages_delayed_total";
// Storage-level injection (docs/DURABILITY.md): WAL syncs torn mid-record
// and WAL syncs silently lost inside an fsync-loss window.
inline constexpr const char* kFaultsTornWrites =
    "pqra_faults_torn_writes_total";
inline constexpr const char* kFaultsFsyncLoss =
    "pqra_faults_fsync_loss_total";

// Replica servers (DES ServerProcess + ThreadedServer).
inline constexpr const char* kServerRequests = "pqra_server_requests_total";
inline constexpr const char* kServerTsAdvances =
    "pqra_server_ts_advances_total";
inline constexpr const char* kServerGossipMerges =
    "pqra_server_gossip_merges_total";

// Transports (SimTransport + ThreadTransport).
inline constexpr const char* kTransportMessages =
    "pqra_transport_messages_total";
inline constexpr const char* kTransportDropped =
    "pqra_transport_dropped_total";
inline constexpr const char* kTransportPayloadBytes =
    "pqra_transport_payload_bytes_total";
/// Per message type: kTransportMessagesByType[MsgType].
inline constexpr const char* kTransportMessagesByType[] = {
    "pqra_transport_messages_read_req_total",
    "pqra_transport_messages_read_ack_total",
    "pqra_transport_messages_write_req_total",
    "pqra_transport_messages_write_ack_total",
    "pqra_transport_messages_gossip_total",
};

// Discrete-event simulator (published once per run; the hot loop is never
// instrumented directly).
inline constexpr const char* kSimEvents = "pqra_sim_events_total";
inline constexpr const char* kSimHeapHighWater = "pqra_sim_heap_high_water";
// Calendar-queue reorganizations (bucket-array grow/shrink + width retune);
// always 0 under PQRA_QUEUE=heap.
inline constexpr const char* kSimQueueBucketResizes =
    "pqra_sim_queue_bucket_resizes_total";
inline constexpr const char* kSimTime = "pqra_sim_time";
// Event-closure storage (sim/event_fn.hpp): heap allocations the event path
// performed (arena chunk growth + oversize fallbacks; 0 once the arena is
// warm) and the arena's live-block high-water mark.
inline constexpr const char* kSimEventHeapAllocs =
    "pqra_sim_event_heap_allocs_total";
inline constexpr const char* kSimEventBlocksHighWater =
    "pqra_sim_event_blocks_high_water";

// Alg. 1 executors.
inline constexpr const char* kAlg1Rounds = "pqra_alg1_rounds";
inline constexpr const char* kAlg1Pseudocycles = "pqra_alg1_pseudocycles";
inline constexpr const char* kAlg1Converged = "pqra_alg1_converged";

// Causal span tracing (obs/span.hpp, docs/OBSERVABILITY.md).  Published
// end-of-run by SpanSink::publish so span bookkeeping never touches the
// registry from inside the event loop.
inline constexpr const char* kSpanStarted = "pqra_span_started_total";
inline constexpr const char* kSpanCompleted = "pqra_span_completed_total";
/// Spans still open when the sink was published (ops in flight at the end
/// of a truncated run).
inline constexpr const char* kSpanOpen = "pqra_span_open";
/// Per span kind: kSpanByKind[SpanKind].
inline constexpr const char* kSpanByKind[] = {
    "pqra_span_client_op_total",
    "pqra_span_rpc_attempt_total",
    "pqra_span_retry_wait_total",
    "pqra_span_server_handle_total",
};

// Flight recorder (obs/flight_recorder.hpp): fixed ring of recent message
// records, published when a dump is taken.
inline constexpr const char* kFlightRecRecords = "pqra_flightrec_records_total";
inline constexpr const char* kFlightRecOverwritten =
    "pqra_flightrec_overwritten_total";
inline constexpr const char* kFlightRecCapacity = "pqra_flightrec_capacity";

// DES self-profiler (sim/profiler.hpp).  Only the deterministic fire counts
// are published into the registry; wall-time attribution goes to the
// `--profile-out` JSON, which is nondeterministic by nature.
inline constexpr const char* kProfileFires = "pqra_profile_fires_total";
/// Per event tag: kProfileFiresByTag[sim::EventTag].
inline constexpr const char* kProfileFiresByTag[] = {
    "pqra_profile_fires_generic_total",
    "pqra_profile_fires_msg_deliver_total",
    "pqra_profile_fires_retry_timer_total",
    "pqra_profile_fires_deadline_total",
    "pqra_profile_fires_gossip_total",
    "pqra_profile_fires_fault_total",
    "pqra_profile_fires_workload_total",
    "pqra_profile_fires_probe_total",
};

// Schedule-exploration fuzzer (tools/explore, docs/EXPLORATION.md).
inline constexpr const char* kExploreRuns = "pqra_explore_runs_total";
inline constexpr const char* kExploreViolations =
    "pqra_explore_violations_total";
inline constexpr const char* kExploreOpsChecked =
    "pqra_explore_ops_checked_total";
inline constexpr const char* kExploreEvents =
    "pqra_explore_sim_events_total";
inline constexpr const char* kExploreShrinkAttempts =
    "pqra_explore_shrink_attempts_total";
inline constexpr const char* kExploreShrinkAccepted =
    "pqra_explore_shrink_accepted_total";
/// Fingerprint of the most recent run (gauge; see Simulator::fingerprint).
inline constexpr const char* kExploreLastFingerprint =
    "pqra_explore_last_fingerprint";

// Durable storage layer (src/storage, docs/DURABILITY.md), aggregated over
// all replicas of a run.
inline constexpr const char* kWalAppends = "pqra_wal_appends_total";
inline constexpr const char* kWalAppendBytes = "pqra_wal_append_bytes_total";
inline constexpr const char* kWalSyncs = "pqra_wal_syncs_total";
inline constexpr const char* kWalLostSyncs = "pqra_wal_lost_syncs_total";
inline constexpr const char* kWalTornSyncs = "pqra_wal_torn_syncs_total";
inline constexpr const char* kWalReplayedRecords =
    "pqra_wal_replayed_records_total";
inline constexpr const char* kWalTornDropped =
    "pqra_wal_torn_tails_dropped_total";
inline constexpr const char* kSnapshotInstalls =
    "pqra_snapshot_installs_total";
inline constexpr const char* kSnapshotLoads = "pqra_snapshot_loads_total";
inline constexpr const char* kStorageRecoveries =
    "pqra_storage_recoveries_total";

}  // namespace pqra::obs::names
