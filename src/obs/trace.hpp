#pragma once

/// \file trace.hpp
/// Structured operation tracing for register protocols.
///
/// Every completed read/write becomes one OpTraceEvent carrying the
/// spec/history vocabulary (§3's operation records: invocation/response
/// times and the timestamp written/returned) plus protocol detail the
/// checkers ignore but humans want: the responding quorum, retry attempts,
/// monotone-cache provenance and the staleness depth t (how many writes
/// behind the freshest value this client had evidence of).
///
/// Three serializations:
///   - JSONL (write_jsonl / parse_jsonl): one JSON object per line,
///     round-trippable, and convertible to spec::OpRecord rows (see
///     core/spec/trace_bridge.hpp) so a captured trace can be replayed
///     through the [R1]/[R2]/[R4] checkers.
///   - Chrome trace-event JSON (write_chrome_trace): load in
///     about://tracing or https://ui.perfetto.dev — one lane per process,
///     one slice per operation over simulated time.
///
/// The sink itself is an append-only vector: single-threaded, matching the
/// DES (the threaded runtime records per-thread and concatenates).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pqra::obs {

enum class TraceOpKind : std::uint8_t { kRead = 0, kWrite = 1 };

struct OpTraceEvent {
  TraceOpKind kind = TraceOpKind::kRead;
  std::uint32_t proc = 0;  ///< client NodeId
  std::uint32_t reg = 0;
  double invoke = 0.0;    ///< invocation time (sim-time or wall seconds)
  double response = 0.0;  ///< response time; >= invoke
  /// Writes: the timestamp written.  Reads: the timestamp returned.
  std::uint64_t ts = 0;
  /// Reads only: result served from the §6.2 monotone cache.
  bool from_cache = false;
  /// Quorum accesses performed, >= 1 (retries add accesses).
  std::uint32_t attempts = 1;
  /// Reads only: staleness depth t — how many writes the quorum's freshest
  /// answer lagged behind the newest timestamp this client knew of.
  std::uint64_t stale_depth = 0;
  /// Servers whose acks completed the operation (NodeIds).
  std::vector<std::uint32_t> quorum;

  bool operator==(const OpTraceEvent&) const = default;
};

/// Append-only event collector.  Not thread-safe by design (see file
/// comment); the DES drives it from a single event loop.
class OpTraceSink {
 public:
  void record(OpTraceEvent event) { events_.push_back(std::move(event)); }

  /// Convenience for the preloaded initial values: a write of timestamp 0
  /// by pseudo-process \p writer completing at time 0, one per register —
  /// the same convention as spec::HistoryRecorder::record_initial.
  void record_initial(std::uint32_t reg, std::uint32_t writer = 0);

  const std::vector<OpTraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<OpTraceEvent> events_;
};

/// One compact JSON object per event, e.g.
///   {"op":"read","proc":35,"reg":2,"invoke":4,"response":6,"ts":3,
///    "cache":false,"attempts":1,"stale":0,"quorum":[0,7,12]}
void write_jsonl(const std::vector<OpTraceEvent>& events, std::ostream& out);

/// Parses write_jsonl output (field order-insensitive; unknown keys are
/// rejected).  Throws std::logic_error naming the 1-based line number on
/// malformed or truncated input.  Blank lines are skipped.
std::vector<OpTraceEvent> parse_jsonl(std::istream& in);

/// Chrome trace-event format: complete ("X") events, one lane (tid) per
/// process, \p us_per_time_unit microseconds per trace time unit (the
/// default renders 1 sim-time unit as 1ms so quorum round trips are visible
/// at default zoom).  Events are emitted in a stable sorted order
/// (invoke, proc, reg, ts) so the bytes are a pure function of the event
/// set.  Requires us_per_time_unit > 0 (PQRA_CHECK).
void write_chrome_trace(const std::vector<OpTraceEvent>& events,
                        std::ostream& out, double us_per_time_unit = 1000.0);

const char* trace_op_kind_name(TraceOpKind kind);

}  // namespace pqra::obs
