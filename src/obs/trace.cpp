#include "obs/trace.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>

#include "obs/export.hpp"
#include "util/check.hpp"

namespace pqra::obs {

const char* trace_op_kind_name(TraceOpKind kind) {
  return kind == TraceOpKind::kRead ? "read" : "write";
}

void OpTraceSink::record_initial(std::uint32_t reg, std::uint32_t writer) {
  OpTraceEvent ev;
  ev.kind = TraceOpKind::kWrite;
  ev.proc = writer;
  ev.reg = reg;
  ev.invoke = 0.0;
  ev.response = 0.0;
  ev.ts = 0;
  events_.push_back(std::move(ev));
}

void write_jsonl(const std::vector<OpTraceEvent>& events, std::ostream& out) {
  for (const OpTraceEvent& ev : events) {
    out << "{\"op\":\"" << trace_op_kind_name(ev.kind)
        << "\",\"proc\":" << ev.proc << ",\"reg\":" << ev.reg
        << ",\"invoke\":" << format_double(ev.invoke)
        << ",\"response\":" << format_double(ev.response) << ",\"ts\":" << ev.ts
        << ",\"cache\":" << (ev.from_cache ? "true" : "false")
        << ",\"attempts\":" << ev.attempts << ",\"stale\":" << ev.stale_depth
        << ",\"quorum\":[";
    for (std::size_t i = 0; i < ev.quorum.size(); ++i) {
      if (i != 0) out << ',';
      out << ev.quorum[i];
    }
    out << "]}\n";
  }
}

namespace {

/// Minimal recursive-descent parser for the flat JSON objects write_jsonl
/// emits.  Strict about structure, lenient about whitespace and key order.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : s_(line) {}

  OpTraceEvent parse() {
    OpTraceEvent ev;
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) expect(',');
      first = false;
      std::string key = parse_string();
      expect(':');
      apply(key, ev);
    }
    skip_ws();
    PQRA_CHECK(pos_ == s_.size(), "op trace: trailing garbage on line");
    return ev;
  }

 private:
  void apply(const std::string& key, OpTraceEvent& ev) {
    if (key == "op") {
      std::string v = parse_string();
      if (v == "read") {
        ev.kind = TraceOpKind::kRead;
      } else if (v == "write") {
        ev.kind = TraceOpKind::kWrite;
      } else {
        PQRA_CHECK(false, "op trace: unknown op kind '" + v + "'");
      }
    } else if (key == "proc") {
      ev.proc = static_cast<std::uint32_t>(parse_number());
    } else if (key == "reg") {
      ev.reg = static_cast<std::uint32_t>(parse_number());
    } else if (key == "invoke") {
      ev.invoke = parse_number();
    } else if (key == "response") {
      ev.response = parse_number();
    } else if (key == "ts") {
      ev.ts = static_cast<std::uint64_t>(parse_number());
    } else if (key == "cache") {
      ev.from_cache = parse_bool();
    } else if (key == "attempts") {
      ev.attempts = static_cast<std::uint32_t>(parse_number());
    } else if (key == "stale") {
      ev.stale_depth = static_cast<std::uint64_t>(parse_number());
    } else if (key == "quorum") {
      expect('[');
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return;
      }
      while (true) {
        ev.quorum.push_back(static_cast<std::uint32_t>(parse_number()));
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          break;
        }
        expect(',');
      }
    } else {
      PQRA_CHECK(false, "op trace: unknown key '" + key + "'");
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    PQRA_CHECK(pos_ < s_.size(), "op trace: truncated line");
    return s_[pos_];
  }

  void expect(char c) {
    skip_ws();
    PQRA_CHECK(peek() == c, std::string("op trace: expected '") + c + "'");
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        char esc = peek();
        ++pos_;
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            PQRA_CHECK(false, "op trace: unsupported escape");
        }
      } else {
        out += c;
      }
    }
    ++pos_;  // closing quote
    return out;
  }

  bool parse_bool() {
    skip_ws();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    PQRA_CHECK(false, "op trace: expected a boolean");
    return false;
  }

  double parse_number() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    PQRA_CHECK(pos_ > start, "op trace: expected a number");
    double v = 0.0;
    try {
      v = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      PQRA_CHECK(false, "op trace: number out of range");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<OpTraceEvent> parse_jsonl(std::istream& in) {
  std::vector<OpTraceEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;
    try {
      events.push_back(LineParser(line).parse());
    } catch (const std::exception& e) {
      PQRA_CHECK(false, "parse_jsonl: line " + std::to_string(lineno) + ": " +
                            e.what());
    }
  }
  return events;
}

void write_chrome_trace(const std::vector<OpTraceEvent>& events,
                        std::ostream& out, double us_per_time_unit) {
  PQRA_CHECK(us_per_time_unit > 0.0,
             "write_chrome_trace: us_per_time_unit must be > 0");
  // Stable emit order regardless of sink order: (invoke, proc, reg, ts).
  // Sink order is already deterministic in the DES, but sorting makes the
  // bytes a pure function of the event *set*, so shard concatenation order
  // can never leak into the output.
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const OpTraceEvent& ea = events[a];
                     const OpTraceEvent& eb = events[b];
                     if (ea.invoke != eb.invoke) return ea.invoke < eb.invoke;
                     if (ea.proc != eb.proc) return ea.proc < eb.proc;
                     if (ea.reg != eb.reg) return ea.reg < eb.reg;
                     return ea.ts < eb.ts;
                   });
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t i : order) {
    const OpTraceEvent& ev = events[i];
    if (!first) out << ',';
    first = false;
    double dur = (ev.response - ev.invoke) * us_per_time_unit;
    if (dur <= 0.0) dur = 1.0;  // zero-width slices vanish in the viewer
    out << "\n{\"name\":\"" << trace_op_kind_name(ev.kind) << " r" << ev.reg
        << "\",\"cat\":\"" << trace_op_kind_name(ev.kind)
        << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << ev.proc
        << ",\"ts\":" << format_double(ev.invoke * us_per_time_unit)
        << ",\"dur\":" << format_double(dur) << ",\"args\":{\"ts\":" << ev.ts
        << ",\"attempts\":" << ev.attempts
        << ",\"cache\":" << (ev.from_cache ? "true" : "false")
        << ",\"stale\":" << ev.stale_depth << ",\"quorum\":\"";
    for (std::size_t i = 0; i < ev.quorum.size(); ++i) {
      if (i != 0) out << ' ';
      out << ev.quorum[i];
    }
    out << "\"}}";
  }
  // Name the lanes: one metadata event per distinct tid, lowest id first.
  std::vector<std::uint32_t> procs;
  for (const OpTraceEvent& ev : events) {
    bool seen = false;
    for (std::uint32_t p : procs) {
      if (p == ev.proc) seen = true;
    }
    if (!seen) procs.push_back(ev.proc);
  }
  std::sort(procs.begin(), procs.end());
  for (std::uint32_t p : procs) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << p
        << ",\"args\":{\"name\":\"proc " << p << "\"}}";
  }
  out << "\n]}\n";
}

}  // namespace pqra::obs
