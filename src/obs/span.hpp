#pragma once

/// \file span.hpp
/// Causal span tracing for register protocols.
///
/// Where obs::OpTraceEvent records one flat event per completed operation,
/// spans record the causal tree underneath it: the client operation, each
/// per-replica RPC attempt, each retry/backoff wait, and the replica-side
/// handling — linked by parent ids and grouped by a trace id so a single
/// stale read can be traced to the exact k-of-n probe that missed the
/// latest write (the paper's ε-intersection, per operation instead of in
/// aggregate).
///
/// Ids travel across the network in net::Message's `trace`/`span` header
/// fields (both transports copy them opaquely; this file deliberately knows
/// nothing about net/).  A span id is a dense 1-based index into the sink,
/// so parent links are validated by construction: a parent id always refers
/// to an earlier span.  0 means "none" everywhere.
///
/// Sampling is deterministic: whether an operation is traced is a pure
/// function of (seed, proc, op), so the span set for a given run seed is
/// byte-identical at any `--jobs`, exactly like the metrics registry.
///
/// The sink is hot-path-safe under the project's lint rules (no
/// std::function, no locks, no clocks, vector-append only) and is driven
/// from the single-threaded DES event loop.
///
/// Serializations mirror trace.hpp: JSONL (round-trippable, line-numbered
/// parse errors) and Chrome trace-event JSON (stable sorted emit order).
/// See docs/OBSERVABILITY.md.

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace pqra::obs {

class Registry;

/// 1-based dense id; 0 = none.
using SpanId = std::uint64_t;

enum class SpanKind : std::uint8_t {
  kClientOp = 0,    ///< whole client read/write, root of its trace
  kRpcAttempt = 1,  ///< one request to one replica within one attempt
  kRetryWait = 2,   ///< core::RetryPolicy backoff between attempts
  kServerHandle = 3 ///< replica-side handling of one request
};
inline constexpr std::size_t kNumSpanKinds = 4;

enum class SpanStatus : std::uint8_t {
  kOpen = 0,       ///< not yet closed
  kOk = 1,         ///< completed normally
  kDegraded = 2,   ///< accepted below quorum at the deadline (docs/FAULTS.md)
  kTimedOut = 3,   ///< operation deadline expired with no usable result
  kUnanswered = 4  ///< RPC whose reply never arrived before the op closed
};

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 for roots
  SpanId trace = 0;   ///< root span's id, shared by the whole tree
  SpanKind kind = SpanKind::kClientOp;
  SpanStatus status = SpanStatus::kOpen;
  std::uint32_t proc = 0;  ///< NodeId that emitted the span
  std::uint32_t reg = 0;
  std::uint64_t op = 0;  ///< client-assigned OpId
  double start = 0.0;
  double end = 0.0;
  bool open = true;
  /// kClientOp: true for writes (reads, snapshot reads otherwise).
  bool is_write = false;
  /// Quorum access number within the operation, from 1.
  std::uint32_t attempt = 0;
  /// kRpcAttempt / kServerHandle: the replica NodeId.
  std::uint32_t server = 0;
  /// Timestamp evidence: kClientOp = ts returned/written; kRpcAttempt /
  /// kServerHandle = ts the replica reported.
  std::uint64_t ts = 0;
  bool from_cache = false;     ///< §6.2 monotone cache hit
  std::uint64_t stale_depth = 0;
  /// kClientOp: replicas whose acks completed the op (the sampled quorum).
  std::vector<std::uint32_t> quorum;
  /// kClientOp: subset of `quorum` that held the freshest timestamp seen —
  /// the per-operation ε-intersection outcome (empty ⇒ the probe missed
  /// every holder of the latest write this client had evidence of).
  std::vector<std::uint32_t> fresh;

  bool operator==(const SpanRecord&) const = default;
};

const char* span_kind_name(SpanKind kind);
const char* span_status_name(SpanStatus status);

/// Append-only span collector.  Single-threaded by design (the DES drives
/// it from one event loop); the threaded runtime only propagates ids.
class SpanSink {
 public:
  struct Options {
    /// Mixed into the sampling hash so different seeds trace different ops.
    std::uint64_t seed = 0;
    /// Trace every Nth (hashed) operation; 1 = every op, 0 = none.
    std::uint64_t sample_period = 1;
  };

  SpanSink() = default;
  explicit SpanSink(Options options) : options_(options) {}

  /// Deterministic root-sampling decision for (proc, op).  Children are
  /// only ever created under a sampled root, so one decision covers the
  /// whole trace.
  bool sampled(std::uint32_t proc, std::uint64_t op) const;

  /// Opens a span and returns its id.  \p parent must be 0 (root) or an
  /// existing id; the trace id is inherited from the parent (roots start a
  /// new trace).  Annotate the returned record via at().
  SpanId begin(SpanKind kind, SpanId parent, std::uint32_t proc, double now);

  /// Mutable access for annotation while the span is open (reg/op/ts/
  /// quorum/...).  PQRA_CHECKs the id.
  SpanRecord& at(SpanId id);

  /// Closes a span.  Throws (PQRA_CHECK) on double-close or end < start —
  /// the property tests/integration/span_fault_property_test.cpp leans on.
  void finish(SpanId id, SpanStatus status, double now);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  std::size_t open_spans() const { return open_; }

  /// Structural audit: every parent exists and precedes its child, closed
  /// spans have end >= start and a non-kOpen status, and (when
  /// \p require_closed) nothing is still open.  Throws on violation.
  void check(bool require_closed) const;

  /// Folds deterministic span counters into \p registry
  /// (names::kSpanStarted / kSpanCompleted / kSpanOpen / kSpanByKind).
  void publish(Registry& registry) const;

 private:
  Options options_;
  std::vector<SpanRecord> spans_;  ///< spans_[id - 1]
  std::size_t open_ = 0;
};

/// One compact JSON object per span, in id order.
void write_spans_jsonl(const std::vector<SpanRecord>& spans,
                       std::ostream& out);

/// Parses write_spans_jsonl output (field order-insensitive; unknown keys
/// rejected).  Throws std::logic_error naming the 1-based line number on
/// malformed or truncated input.  Blank lines are skipped.
std::vector<SpanRecord> parse_spans_jsonl(std::istream& in);

/// Chrome trace-event format: complete ("X") events over simulated time,
/// one lane (tid) per process, span kind + causal ids in args.  Spans are
/// emitted in a stable sorted order (start, id) regardless of sink order.
/// Requires us_per_time_unit > 0 (PQRA_CHECK).
void write_spans_chrome(const std::vector<SpanRecord>& spans,
                        std::ostream& out, double us_per_time_unit = 1000.0);

}  // namespace pqra::obs
