#pragma once

/// \file export.hpp
/// Registry exporters: Prometheus text exposition and a JSON snapshot.
///
/// Both operate on a RegistrySnapshot (or a Registry, snapshotting
/// internally), so they can run while the threaded runtime is still
/// mutating instruments.  Output order is the registry's sorted instrument
/// order, which makes both formats golden-file testable.

#include <ostream>
#include <string>

#include "obs/metrics.hpp"

namespace pqra::obs {

/// Prometheus text exposition format 0.0.4: `# HELP` / `# TYPE` comment
/// pairs followed by the samples.  Histograms emit the standard
/// `_bucket{le="..."}` / `_sum` / `_count` series; empty leading/trailing
/// buckets are elided (the `+Inf` bucket is always present).
void write_prometheus(const RegistrySnapshot& snap, std::ostream& out);
void write_prometheus(const Registry& registry, std::ostream& out);

/// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
/// Histogram buckets appear as [{"le": bound, "count": cumulative}, ...]
/// with the same elision rule as the Prometheus writer.
void write_json(const RegistrySnapshot& snap, std::ostream& out);
void write_json(const Registry& registry, std::ostream& out);

/// Renders a double the way both exporters do: shortest round-trip decimal,
/// "+Inf"/"-Inf"/"NaN" for non-finite values (JSON gets them as strings).
std::string format_double(double x);

}  // namespace pqra::obs
