#include "obs/span.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/check.hpp"

namespace pqra::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kClientOp:
      return "client_op";
    case SpanKind::kRpcAttempt:
      return "rpc_attempt";
    case SpanKind::kRetryWait:
      return "retry_wait";
    case SpanKind::kServerHandle:
      return "server_handle";
  }
  PQRA_CHECK(false, "span: unknown kind");
  return "";
}

const char* span_status_name(SpanStatus status) {
  switch (status) {
    case SpanStatus::kOpen:
      return "open";
    case SpanStatus::kOk:
      return "ok";
    case SpanStatus::kDegraded:
      return "degraded";
    case SpanStatus::kTimedOut:
      return "timeout";
    case SpanStatus::kUnanswered:
      return "unanswered";
  }
  PQRA_CHECK(false, "span: unknown status");
  return "";
}

namespace {

/// SplitMix64 finalizer: the sampling decision must be a pure function of
/// (seed, proc, op) so traced runs replay byte-identically at any --jobs.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

bool SpanSink::sampled(std::uint32_t proc, std::uint64_t op) const {
  if (options_.sample_period == 0) return false;
  if (options_.sample_period == 1) return true;
  std::uint64_t h = mix64(options_.seed ^
                          (op + 1) * 0x9e3779b97f4a7c15ULL ^
                          (static_cast<std::uint64_t>(proc) + 1) *
                              0xc2b2ae3d27d4eb4fULL);
  return h % options_.sample_period == 0;
}

SpanId SpanSink::begin(SpanKind kind, SpanId parent, std::uint32_t proc,
                       double now) {
  PQRA_CHECK(parent <= spans_.size(), "span: parent id out of range");
  SpanId id = spans_.size() + 1;
  SpanRecord rec;
  rec.id = id;
  rec.parent = parent;
  rec.trace = parent == 0 ? id : spans_[parent - 1].trace;
  rec.kind = kind;
  rec.proc = proc;
  rec.start = now;
  rec.end = now;
  spans_.push_back(std::move(rec));
  ++open_;
  return id;
}

SpanRecord& SpanSink::at(SpanId id) {
  PQRA_CHECK(id >= 1 && id <= spans_.size(), "span: id out of range");
  return spans_[id - 1];
}

void SpanSink::finish(SpanId id, SpanStatus status, double now) {
  SpanRecord& rec = at(id);
  PQRA_CHECK(rec.open,
             "span: double close of span " + std::to_string(id));
  PQRA_CHECK(status != SpanStatus::kOpen, "span: cannot close as kOpen");
  PQRA_CHECK(now >= rec.start,
             "span: end before start on span " + std::to_string(id));
  rec.open = false;
  rec.status = status;
  rec.end = now;
  --open_;
}

void SpanSink::check(bool require_closed) const {
  std::size_t open_seen = 0;
  for (const SpanRecord& rec : spans_) {
    const std::string where = " on span " + std::to_string(rec.id);
    PQRA_CHECK(rec.id >= 1 && rec.id <= spans_.size(),
               "span check: id out of range" + where);
    if (rec.parent != 0) {
      PQRA_CHECK(rec.parent < rec.id,
                 "span check: parent does not precede child" + where);
      const SpanRecord& par = spans_[rec.parent - 1];
      PQRA_CHECK(rec.trace == par.trace,
                 "span check: trace id differs from parent's" + where);
    } else {
      PQRA_CHECK(rec.trace == rec.id,
                 "span check: root trace id != span id" + where);
    }
    if (rec.open) {
      ++open_seen;
      PQRA_CHECK(rec.status == SpanStatus::kOpen,
                 "span check: open span with closed status" + where);
      PQRA_CHECK(!require_closed, "span check: span left open" + where);
    } else {
      PQRA_CHECK(rec.status != SpanStatus::kOpen,
                 "span check: closed span with kOpen status" + where);
      PQRA_CHECK(rec.end >= rec.start,
                 "span check: end before start" + where);
    }
  }
  PQRA_CHECK(open_seen == open_, "span check: open-span count drifted");
}

void SpanSink::publish(Registry& registry) const {
  namespace n = names;
  registry.counter(n::kSpanStarted, "Spans opened by the tracing subsystem")
      .inc(spans_.size());
  registry.counter(n::kSpanCompleted, "Spans closed with a final status")
      .inc(spans_.size() - open_);
  registry
      .gauge(n::kSpanOpen, "Spans still open at publication (ops in flight)",
             GaugeMerge::kSum)
      .add(static_cast<double>(open_));
  std::uint64_t by_kind[kNumSpanKinds] = {};
  for (const SpanRecord& rec : spans_) {
    ++by_kind[static_cast<std::size_t>(rec.kind)];
  }
  for (std::size_t k = 0; k < kNumSpanKinds; ++k) {
    registry
        .counter(n::kSpanByKind[k],
                 "Spans of one kind (see obs/span.hpp SpanKind)")
        .inc(by_kind[k]);
  }
}

void write_spans_jsonl(const std::vector<SpanRecord>& spans,
                       std::ostream& out) {
  for (const SpanRecord& rec : spans) {
    out << "{\"id\":" << rec.id << ",\"parent\":" << rec.parent
        << ",\"trace\":" << rec.trace << ",\"kind\":\""
        << span_kind_name(rec.kind) << "\",\"status\":\""
        << span_status_name(rec.status) << "\",\"proc\":" << rec.proc
        << ",\"reg\":" << rec.reg << ",\"op\":" << rec.op
        << ",\"start\":" << format_double(rec.start)
        << ",\"end\":" << format_double(rec.end)
        << ",\"open\":" << (rec.open ? "true" : "false")
        << ",\"write\":" << (rec.is_write ? "true" : "false")
        << ",\"attempt\":" << rec.attempt << ",\"server\":" << rec.server
        << ",\"ts\":" << rec.ts
        << ",\"cache\":" << (rec.from_cache ? "true" : "false")
        << ",\"stale\":" << rec.stale_depth << ",\"quorum\":[";
    for (std::size_t i = 0; i < rec.quorum.size(); ++i) {
      if (i != 0) out << ',';
      out << rec.quorum[i];
    }
    out << "],\"fresh\":[";
    for (std::size_t i = 0; i < rec.fresh.size(); ++i) {
      if (i != 0) out << ',';
      out << rec.fresh[i];
    }
    out << "]}\n";
  }
}

namespace {

/// Recursive-descent parser for the flat objects write_spans_jsonl emits —
/// same dialect as trace.cpp's, with the error text owned by the caller
/// (parse_spans_jsonl prefixes the line number).
class SpanLineParser {
 public:
  explicit SpanLineParser(const std::string& line) : s_(line) {}

  SpanRecord parse() {
    SpanRecord rec;
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) expect(',');
      first = false;
      std::string key = parse_string();
      expect(':');
      apply(key, rec);
    }
    skip_ws();
    PQRA_CHECK(pos_ == s_.size(), "span trace: trailing garbage");
    return rec;
  }

 private:
  void apply(const std::string& key, SpanRecord& rec) {
    if (key == "id") {
      rec.id = static_cast<SpanId>(parse_number());
    } else if (key == "parent") {
      rec.parent = static_cast<SpanId>(parse_number());
    } else if (key == "trace") {
      rec.trace = static_cast<SpanId>(parse_number());
    } else if (key == "kind") {
      std::string v = parse_string();
      bool known = false;
      for (std::size_t k = 0; k < kNumSpanKinds; ++k) {
        if (v == span_kind_name(static_cast<SpanKind>(k))) {
          rec.kind = static_cast<SpanKind>(k);
          known = true;
        }
      }
      PQRA_CHECK(known, "span trace: unknown kind '" + v + "'");
    } else if (key == "status") {
      std::string v = parse_string();
      bool known = false;
      for (std::uint8_t s = 0; s <= 4; ++s) {
        if (v == span_status_name(static_cast<SpanStatus>(s))) {
          rec.status = static_cast<SpanStatus>(s);
          known = true;
        }
      }
      PQRA_CHECK(known, "span trace: unknown status '" + v + "'");
    } else if (key == "proc") {
      rec.proc = static_cast<std::uint32_t>(parse_number());
    } else if (key == "reg") {
      rec.reg = static_cast<std::uint32_t>(parse_number());
    } else if (key == "op") {
      rec.op = static_cast<std::uint64_t>(parse_number());
    } else if (key == "start") {
      rec.start = parse_number();
    } else if (key == "end") {
      rec.end = parse_number();
    } else if (key == "open") {
      rec.open = parse_bool();
    } else if (key == "write") {
      rec.is_write = parse_bool();
    } else if (key == "attempt") {
      rec.attempt = static_cast<std::uint32_t>(parse_number());
    } else if (key == "server") {
      rec.server = static_cast<std::uint32_t>(parse_number());
    } else if (key == "ts") {
      rec.ts = static_cast<std::uint64_t>(parse_number());
    } else if (key == "cache") {
      rec.from_cache = parse_bool();
    } else if (key == "stale") {
      rec.stale_depth = static_cast<std::uint64_t>(parse_number());
    } else if (key == "quorum") {
      parse_id_array(rec.quorum);
    } else if (key == "fresh") {
      parse_id_array(rec.fresh);
    } else {
      PQRA_CHECK(false, "span trace: unknown key '" + key + "'");
    }
  }

  void parse_id_array(std::vector<std::uint32_t>& out) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      out.push_back(static_cast<std::uint32_t>(parse_number()));
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        break;
      }
      expect(',');
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    PQRA_CHECK(pos_ < s_.size(), "span trace: truncated line");
    return s_[pos_];
  }

  void expect(char c) {
    skip_ws();
    PQRA_CHECK(peek() == c, std::string("span trace: expected '") + c + "'");
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        char esc = peek();
        ++pos_;
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            PQRA_CHECK(false, "span trace: unsupported escape");
        }
      } else {
        out += c;
      }
    }
    ++pos_;  // closing quote
    return out;
  }

  bool parse_bool() {
    skip_ws();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    PQRA_CHECK(false, "span trace: expected a boolean");
    return false;
  }

  double parse_number() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    PQRA_CHECK(pos_ > start, "span trace: expected a number");
    double v = 0.0;
    try {
      v = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      PQRA_CHECK(false, "span trace: number out of range");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<SpanRecord> parse_spans_jsonl(std::istream& in) {
  std::vector<SpanRecord> spans;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;
    try {
      spans.push_back(SpanLineParser(line).parse());
    } catch (const std::exception& e) {
      PQRA_CHECK(false, "parse_spans_jsonl: line " + std::to_string(lineno) +
                            ": " + e.what());
    }
  }
  return spans;
}

void write_spans_chrome(const std::vector<SpanRecord>& spans,
                        std::ostream& out, double us_per_time_unit) {
  PQRA_CHECK(us_per_time_unit > 0.0,
             "write_spans_chrome: us_per_time_unit must be > 0");
  // Stable emit order regardless of sink order: (start, id).  Ids are
  // unique, so the order is total and the bytes reproducible.
  std::vector<std::size_t> order(spans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (spans[a].start != spans[b].start) {
      return spans[a].start < spans[b].start;
    }
    return spans[a].id < spans[b].id;
  });
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t i : order) {
    const SpanRecord& rec = spans[i];
    if (!first) out << ',';
    first = false;
    double dur = (rec.end - rec.start) * us_per_time_unit;
    if (dur <= 0.0) dur = 1.0;  // zero-width slices vanish in the viewer
    out << "\n{\"name\":\"";
    if (rec.kind == SpanKind::kClientOp) {
      out << (rec.is_write ? "write" : "read") << " r" << rec.reg;
    } else {
      out << span_kind_name(rec.kind);
      if (rec.kind == SpanKind::kRpcAttempt ||
          rec.kind == SpanKind::kServerHandle) {
        out << " s" << rec.server;
      }
    }
    out << "\",\"cat\":\"" << span_kind_name(rec.kind)
        << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << rec.proc
        << ",\"ts\":" << format_double(rec.start * us_per_time_unit)
        << ",\"dur\":" << format_double(dur) << ",\"args\":{\"id\":" << rec.id
        << ",\"parent\":" << rec.parent << ",\"trace\":" << rec.trace
        << ",\"status\":\"" << span_status_name(rec.status)
        << "\",\"attempt\":" << rec.attempt << ",\"ts\":" << rec.ts
        << ",\"stale\":" << rec.stale_depth << ",\"quorum\":\"";
    for (std::size_t q = 0; q < rec.quorum.size(); ++q) {
      if (q != 0) out << ' ';
      out << rec.quorum[q];
    }
    out << "\",\"fresh\":\"";
    for (std::size_t q = 0; q < rec.fresh.size(); ++q) {
      if (q != 0) out << ' ';
      out << rec.fresh[q];
    }
    out << "\"}}";
  }
  // Name the lanes, lowest process id first (stable across sink order).
  std::vector<std::uint32_t> procs;
  for (const SpanRecord& rec : spans) {
    bool seen = false;
    for (std::uint32_t p : procs) {
      if (p == rec.proc) seen = true;
    }
    if (!seen) procs.push_back(rec.proc);
  }
  std::sort(procs.begin(), procs.end());
  for (std::uint32_t p : procs) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << p
        << ",\"args\":{\"name\":\"proc " << p << "\"}}";
  }
  out << "\n]}\n";
}

}  // namespace pqra::obs
