#include "obs/metrics.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace pqra::obs {

void Histogram::bump(std::atomic<std::uint64_t>& cell) {
  if (atomic_) {
    cell.fetch_add(1, std::memory_order_relaxed);
  } else {
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }
}

void Histogram::observe(double x) {
  if (std::isnan(x)) {
    bump(nans_);
    return;
  }
  int exp = 0;
  if (x > 0.0 && !std::isinf(x)) std::frexp(x, &exp);
  std::size_t idx = 0;
  if (std::isinf(x)) {
    idx = kNumBuckets - 1;
  } else if (x > 0.0) {
    long shifted = static_cast<long>(exp) + kBias;
    if (shifted < 0) shifted = 0;
    if (shifted >= static_cast<long>(kNumBuckets)) shifted = kNumBuckets - 1;
    idx = static_cast<std::size_t>(shifted);
  }
  bump(buckets_[idx]);
  bump(count_);
  if (atomic_) {
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + x,
                                       std::memory_order_relaxed)) {
    }
  } else {
    sum_.store(sum_.load(std::memory_order_relaxed) + x,
               std::memory_order_relaxed);
  }
}

double Histogram::mean() const {
  std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  PQRA_REQUIRE(i < kNumBuckets, "histogram bucket index out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::bucket_upper_bound(std::size_t i) {
  PQRA_REQUIRE(i < kNumBuckets, "histogram bucket index out of range");
  if (i == kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  // Bucket i holds frexp exponents == i - kBias, i.e. x < 2^(i - kBias).
  return std::ldexp(1.0, static_cast<int>(i) - kBias);
}

Registry::Entry& Registry::lookup(const std::string& name, Kind kind,
                                  const std::string& help, GaugeMerge merge) {
  PQRA_REQUIRE(!name.empty(), "instrument name must not be empty");
  // Registration-time only: hot code binds handles once (bind_* / counter()
  // at setup) and publish() runs end-of-run, so the lock and the first-touch
  // allocations below never sit inside the fire loop.
  // pqra-lint: allow(hotpath-blocking) — registration/publish path, not events
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    PQRA_CHECK(it->second.kind == kind,
               "instrument '" + name + "' already registered as another kind");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = help;
  entry.gauge_merge = merge;
  const bool atomic = mode_ == Concurrency::kThreadSafe;
  switch (kind) {
    case Kind::kCounter:
      // pqra-lint: allow(hotpath-alloc) — first registration of the name
      entry.counter.reset(new Counter(atomic));
      break;
    case Kind::kGauge:
      // pqra-lint: allow(hotpath-alloc) — first registration of the name
      entry.gauge.reset(new Gauge(atomic));
      break;
    case Kind::kHistogram:
      // pqra-lint: allow(hotpath-alloc) — first registration of the name
      entry.histogram.reset(new Histogram(atomic));
      break;
  }
  return entries_.emplace(name, std::move(entry)).first->second;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  return *lookup(name, Kind::kCounter, help).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       GaugeMerge merge) {
  return *lookup(name, Kind::kGauge, help, merge).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help) {
  return *lookup(name, Kind::kHistogram, help).histogram;
}

void Registry::merge_from(const Registry& shard) {
  PQRA_REQUIRE(&shard != this, "cannot merge a registry into itself");
  // Copy the shard under its lock, then fold into our entries.  Two separate
  // critical sections avoid lock-order issues; the shard is quiescent per the
  // contract, so the copy is a consistent snapshot anyway.
  struct Carried {
    std::string name;
    Kind kind;
    std::string help;
    GaugeMerge gauge_merge;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    std::uint64_t hist_buckets[Histogram::kNumBuckets] = {};
    std::uint64_t hist_count = 0;
    std::uint64_t hist_nans = 0;
    double hist_sum = 0.0;
  };
  std::vector<Carried> carried;
  {
    std::lock_guard lock(shard.mutex_);
    carried.reserve(shard.entries_.size());
    for (const auto& [name, entry] : shard.entries_) {
      Carried c;
      c.name = name;
      c.kind = entry.kind;
      c.help = entry.help;
      c.gauge_merge = entry.gauge_merge;
      switch (entry.kind) {
        case Kind::kCounter:
          c.counter = entry.counter->value();
          break;
        case Kind::kGauge:
          c.gauge = entry.gauge->value();
          break;
        case Kind::kHistogram:
          for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            c.hist_buckets[i] = entry.histogram->bucket_count(i);
          }
          c.hist_count = entry.histogram->count();
          c.hist_nans = entry.histogram->nan_count();
          c.hist_sum = entry.histogram->sum();
          break;
      }
      carried.push_back(std::move(c));
    }
  }
  for (const Carried& c : carried) {
    Entry& entry = lookup(c.name, c.kind, c.help, c.gauge_merge);
    switch (c.kind) {
      case Kind::kCounter:
        entry.counter->inc(c.counter);
        break;
      case Kind::kGauge:
        switch (entry.gauge_merge) {
          case GaugeMerge::kLast:
            entry.gauge->set(c.gauge);
            break;
          case GaugeMerge::kMax:
            entry.gauge->record_max(c.gauge);
            break;
          case GaugeMerge::kSum:
            entry.gauge->add(c.gauge);
            break;
        }
        break;
      case Kind::kHistogram: {
        Histogram& h = *entry.histogram;
        for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          if (c.hist_buckets[i] != 0) {
            h.buckets_[i].store(h.buckets_[i].load(std::memory_order_relaxed) +
                                    c.hist_buckets[i],
                                std::memory_order_relaxed);
          }
        }
        h.count_.store(
            h.count_.load(std::memory_order_relaxed) + c.hist_count,
            std::memory_order_relaxed);
        h.nans_.store(h.nans_.load(std::memory_order_relaxed) + c.hist_nans,
                      std::memory_order_relaxed);
        h.sum_.store(h.sum_.load(std::memory_order_relaxed) + c.hist_sum,
                     std::memory_order_relaxed);
        break;
      }
    }
  }
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, entry] : entries_) {  // std::map: sorted by name
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.push_back({name, entry.help, entry.counter->value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({name, entry.help, entry.gauge->value()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        HistogramSnapshot data;
        data.count = h.count();
        data.sum = h.sum();
        data.nans = h.nan_count();
        std::uint64_t running = 0;
        for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          running += h.bucket_count(i);
          data.upper_bounds.push_back(Histogram::bucket_upper_bound(i));
          data.cumulative.push_back(running);
        }
        snap.histograms.push_back({name, entry.help, std::move(data)});
        break;
      }
    }
  }
  return snap;
}

}  // namespace pqra::obs
