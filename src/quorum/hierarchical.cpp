#include "quorum/hierarchical.hpp"

#include <sstream>

#include "util/check.hpp"

namespace pqra::quorum {

HierarchicalQuorums::HierarchicalQuorums(std::size_t levels)
    : levels_(levels) {
  PQRA_REQUIRE(levels <= 10, "3^levels servers would be excessive");
  num_servers_ = 1;
  quorum_size_ = 1;
  for (std::size_t l = 0; l < levels; ++l) {
    num_servers_ *= 3;
    quorum_size_ *= 2;
  }
  // Q(h) = 3 * Q(h-1)^2, saturating well above the enumerability cutoff.
  num_quorums_ = 1;
  for (std::size_t l = 0; l < levels; ++l) {
    if (num_quorums_ > 1000000) break;  // saturate; enumerable() is false
    num_quorums_ = 3 * num_quorums_ * num_quorums_;
  }
}

std::size_t HierarchicalQuorums::count(std::size_t level) const {
  std::size_t q = 1;
  for (std::size_t l = 0; l < level; ++l) q = 3 * q * q;
  return q;
}

void HierarchicalQuorums::pick_rec(std::size_t level, ServerId base,
                                   util::Rng& rng,
                                   std::vector<ServerId>& out) const {
  if (level == 0) {
    out.push_back(base);
    return;
  }
  std::size_t subtree = 1;
  for (std::size_t l = 1; l < level; ++l) subtree *= 3;
  auto excluded = static_cast<std::size_t>(rng.below(3));
  for (std::size_t child = 0; child < 3; ++child) {
    if (child == excluded) continue;
    pick_rec(level - 1, base + static_cast<ServerId>(child * subtree), rng,
             out);
  }
}

void HierarchicalQuorums::pick(AccessKind, util::Rng& rng,
                               std::vector<ServerId>& out) const {
  out.clear();
  out.reserve(quorum_size_);
  pick_rec(levels_, 0, rng, out);
}

void HierarchicalQuorums::quorum_rec(std::size_t level, ServerId base,
                                     std::size_t idx,
                                     std::vector<ServerId>& out) const {
  if (level == 0) {
    out.push_back(base);
    return;
  }
  std::size_t sub_count = count(level - 1);
  std::size_t subtree = 1;
  for (std::size_t l = 1; l < level; ++l) subtree *= 3;
  // idx = excluded * Q^2 + a * Q + b.
  std::size_t excluded = idx / (sub_count * sub_count);
  std::size_t rest = idx % (sub_count * sub_count);
  std::size_t sub_idx[2] = {rest / sub_count, rest % sub_count};
  std::size_t slot = 0;
  for (std::size_t child = 0; child < 3; ++child) {
    if (child == excluded) continue;
    quorum_rec(level - 1, base + static_cast<ServerId>(child * subtree),
               sub_idx[slot++], out);
  }
}

void HierarchicalQuorums::quorum(AccessKind, std::size_t idx,
                                 std::vector<ServerId>& out) const {
  PQRA_REQUIRE(enumerable(), "quorum family too large to enumerate");
  PQRA_REQUIRE(idx < num_quorums_, "quorum index out of range");
  out.clear();
  out.reserve(quorum_size_);
  quorum_rec(levels_, 0, idx, out);
}

std::string HierarchicalQuorums::name() const {
  std::ostringstream os;
  os << "hierarchical(h=" << levels_ << ", n=" << num_servers_ << ")";
  return os.str();
}

}  // namespace pqra::quorum
