#pragma once

/// \file rowa.hpp
/// Read-one / write-all: a read quorum is any single server (chosen
/// uniformly), a write quorum is all n servers.  Strict, read load 1/n, but
/// a single crash disables writes — the classic asymmetric baseline.

#include "quorum/quorum_system.hpp"

namespace pqra::quorum {

class ReadOneWriteAll final : public QuorumSystem {
 public:
  explicit ReadOneWriteAll(std::size_t n);

  std::size_t num_servers() const override { return n_; }
  std::size_t quorum_size(AccessKind kind) const override {
    return kind == AccessKind::kRead ? 1 : n_;
  }
  void pick(AccessKind kind, util::Rng& rng,
            std::vector<ServerId>& out) const override;
  bool is_strict() const override { return true; }
  bool enumerable() const override { return true; }
  std::size_t num_quorums(AccessKind kind) const override {
    return kind == AccessKind::kRead ? n_ : 1;
  }
  void quorum(AccessKind kind, std::size_t idx,
              std::vector<ServerId>& out) const override;
  std::size_t min_kill(AccessKind kind) const override {
    return kind == AccessKind::kRead ? n_ : 1;
  }
  std::string name() const override;

 private:
  std::size_t n_;
};

}  // namespace pqra::quorum
