#include "quorum/singleton.hpp"

#include <sstream>

#include "util/check.hpp"

namespace pqra::quorum {

SingletonQuorums::SingletonQuorums(std::size_t n) : n_(n) {
  PQRA_REQUIRE(n >= 1, "need at least one server");
}

void SingletonQuorums::quorum(AccessKind, std::size_t idx,
                              std::vector<ServerId>& out) const {
  PQRA_REQUIRE(idx == 0, "singleton system has exactly one quorum");
  out.assign(1, 0);
}

std::string SingletonQuorums::name() const {
  std::ostringstream os;
  os << "singleton(n=" << n_ << ")";
  return os.str();
}

}  // namespace pqra::quorum
