#include "quorum/analysis.hpp"

#include <algorithm>
#include <functional>

#include "util/check.hpp"

namespace pqra::quorum {

namespace {

bool disjoint(const std::vector<ServerId>& a, const std::vector<ServerId>& b) {
  for (ServerId x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return false;
  }
  return true;
}

bool all_alive(const std::vector<ServerId>& q,
               const std::vector<bool>& crashed) {
  for (ServerId s : q) {
    if (s < crashed.size() && crashed[s]) return false;
  }
  return true;
}

/// Enumerates size-s subsets of {0..n-1}, calling visit(mask as bool vector);
/// stops early when visit returns true.  Exponential — test/bench use only.
bool for_each_subset(std::size_t n, std::size_t s,
                     const std::function<bool(const std::vector<bool>&)>& visit) {
  std::vector<std::size_t> idx(s);
  for (std::size_t i = 0; i < s; ++i) idx[i] = i;
  std::vector<bool> mask(n, false);
  for (;;) {
    std::fill(mask.begin(), mask.end(), false);
    for (std::size_t i : idx) mask[i] = true;
    if (visit(mask)) return true;
    // Advance to the next combination.
    std::size_t i = s;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - s) {
        ++idx[i];
        for (std::size_t j = i + 1; j < s; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return false;
    }
    if (s == 0) return false;
  }
}

}  // namespace

bool check_intersection(const QuorumSystem& qs, util::Rng& rng,
                        std::size_t samples) {
  if (qs.enumerable()) {
    std::size_t nr = qs.num_quorums(AccessKind::kRead);
    std::size_t nw = qs.num_quorums(AccessKind::kWrite);
    std::vector<ServerId> r, w;
    for (std::size_t i = 0; i < nr; ++i) {
      qs.quorum(AccessKind::kRead, i, r);
      for (std::size_t j = 0; j < nw; ++j) {
        qs.quorum(AccessKind::kWrite, j, w);
        if (disjoint(r, w)) return false;
      }
    }
    return true;
  }
  std::vector<ServerId> r, w;
  for (std::size_t t = 0; t < samples; ++t) {
    qs.pick(AccessKind::kRead, rng, r);
    qs.pick(AccessKind::kWrite, rng, w);
    if (disjoint(r, w)) return false;
  }
  return true;
}

double empirical_nonoverlap(const QuorumSystem& qs, util::Rng& rng,
                            std::size_t samples) {
  PQRA_REQUIRE(samples > 0, "need at least one sample");
  std::size_t misses = 0;
  std::vector<ServerId> r, w;
  for (std::size_t t = 0; t < samples; ++t) {
    qs.pick(AccessKind::kRead, rng, r);
    qs.pick(AccessKind::kWrite, rng, w);
    if (disjoint(r, w)) ++misses;
  }
  return static_cast<double>(misses) / static_cast<double>(samples);
}

LoadEstimate empirical_load(const QuorumSystem& qs, AccessKind kind,
                            util::Rng& rng, std::size_t samples) {
  PQRA_REQUIRE(samples > 0, "need at least one sample");
  std::vector<std::uint64_t> hits(qs.num_servers(), 0);
  std::vector<ServerId> q;
  for (std::size_t t = 0; t < samples; ++t) {
    qs.pick(kind, rng, q);
    for (ServerId s : q) ++hits[s];
  }
  LoadEstimate est;
  est.per_server.reserve(hits.size());
  double total = 0.0;
  for (std::uint64_t h : hits) {
    double f = static_cast<double>(h) / static_cast<double>(samples);
    est.per_server.push_back(f);
    est.busiest = std::max(est.busiest, f);
    total += f;
  }
  est.average = total / static_cast<double>(hits.size());
  return est;
}

double load_lower_bound(std::size_t n, std::size_t smallest_quorum) {
  PQRA_REQUIRE(n >= 1 && smallest_quorum >= 1, "degenerate system");
  double a = 1.0 / static_cast<double>(smallest_quorum);
  double b = static_cast<double>(smallest_quorum) / static_cast<double>(n);
  return std::max(a, b);
}

bool survives_crashes(const QuorumSystem& qs, AccessKind kind,
                      const std::vector<bool>& crashed) {
  if (qs.enumerable()) {
    std::vector<ServerId> q;
    for (std::size_t i = 0; i < qs.num_quorums(kind); ++i) {
      qs.quorum(kind, i, q);
      if (all_alive(q, crashed)) return true;
    }
    return false;
  }
  // The non-enumerable systems here (probabilistic, majority) accept *any*
  // subset of the required size, so survival only depends on the live count.
  std::size_t alive = 0;
  for (std::size_t s = 0; s < qs.num_servers(); ++s) {
    if (s >= crashed.size() || !crashed[s]) ++alive;
  }
  return alive >= qs.quorum_size(kind);
}

double survival_probability(const QuorumSystem& qs, AccessKind kind,
                            double crash_prob, util::Rng& rng,
                            std::size_t trials) {
  PQRA_REQUIRE(crash_prob >= 0.0 && crash_prob <= 1.0,
               "crash probability must be in [0, 1]");
  PQRA_REQUIRE(trials > 0, "need at least one trial");
  std::size_t survived = 0;
  std::vector<bool> crashed(qs.num_servers());
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t s = 0; s < crashed.size(); ++s) {
      crashed[s] = rng.bernoulli(crash_prob);
    }
    if (survives_crashes(qs, kind, crashed)) ++survived;
  }
  return static_cast<double>(survived) / static_cast<double>(trials);
}

std::size_t brute_force_min_kill(const QuorumSystem& qs, AccessKind kind) {
  std::size_t n = qs.num_servers();
  for (std::size_t s = 1; s <= n; ++s) {
    bool found = for_each_subset(n, s, [&](const std::vector<bool>& mask) {
      return !survives_crashes(qs, kind, mask);
    });
    if (found) return s;
  }
  return n + 1;  // unreachable for sane systems: killing everyone kills all
}

}  // namespace pqra::quorum
