#pragma once

/// \file grid.hpp
/// The grid quorum system (Cheung–Ammar–Ahamad).  Servers are arranged in an
/// r x c grid; a quorum is one full row plus one full column (size r+c-1).
/// Any two quorums intersect (row of one crosses column of the other), so the
/// system is strict.  With r = c = sqrt(n) the quorum size is Theta(sqrt n)
/// and the load Theta(1/sqrt n) — the optimal-load end of the trade-off —
/// but availability is only min(r, c) = Theta(sqrt n).

#include "quorum/quorum_system.hpp"

namespace pqra::quorum {

class GridQuorums final : public QuorumSystem {
 public:
  /// n = rows * cols servers; server (i, j) has id i*cols + j.
  GridQuorums(std::size_t rows, std::size_t cols);

  /// Convenience: nearest-square grid over n servers (requires square n).
  static GridQuorums square(std::size_t n);

  std::size_t num_servers() const override { return rows_ * cols_; }
  std::size_t quorum_size(AccessKind) const override {
    return rows_ + cols_ - 1;
  }
  void pick(AccessKind kind, util::Rng& rng,
            std::vector<ServerId>& out) const override;
  bool is_strict() const override { return true; }
  bool enumerable() const override { return true; }
  std::size_t num_quorums(AccessKind) const override { return rows_ * cols_; }
  void quorum(AccessKind, std::size_t idx,
              std::vector<ServerId>& out) const override;
  std::size_t min_kill(AccessKind) const override {
    // Killing a full column (rows servers) hits every quorum, since each
    // quorum contains a full row, and vice versa; any smaller kill set
    // leaves some row and some column untouched, whose quorum survives.
    return rows_ < cols_ ? rows_ : cols_;
  }
  std::string name() const override;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  void build(std::size_t row, std::size_t col,
             std::vector<ServerId>& out) const;

  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace pqra::quorum
