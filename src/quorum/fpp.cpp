#include "quorum/fpp.hpp"

#include <array>
#include <sstream>

#include "util/check.hpp"
#include "util/math.hpp"

namespace pqra::quorum {

namespace {

/// Homogeneous coordinates over GF(s), normalized so the first non-zero
/// coordinate is 1.  Points and lines share this representation; point P
/// lies on line L iff P . L == 0 (mod s).
using Triple = std::array<std::uint32_t, 3>;

std::vector<Triple> normalized_triples(std::uint32_t s) {
  std::vector<Triple> out;
  out.reserve(static_cast<std::size_t>(s) * s + s + 1);
  for (std::uint32_t y = 0; y < s; ++y) {
    for (std::uint32_t z = 0; z < s; ++z) out.push_back({1, y, z});
  }
  for (std::uint32_t z = 0; z < s; ++z) out.push_back({0, 1, z});
  out.push_back({0, 0, 1});
  return out;
}

bool incident(const Triple& p, const Triple& l, std::uint32_t s) {
  std::uint64_t dot = 0;
  for (int i = 0; i < 3; ++i) {
    dot += static_cast<std::uint64_t>(p[i]) * l[i];
  }
  return dot % s == 0;
}

}  // namespace

FppQuorums::FppQuorums(std::size_t order) : order_(order) {
  PQRA_REQUIRE(util::is_prime(order), "FPP construction requires prime order");
  auto s = static_cast<std::uint32_t>(order);
  std::vector<Triple> points = normalized_triples(s);
  std::vector<Triple> line_coords = normalized_triples(s);
  lines_.reserve(line_coords.size());
  for (const Triple& l : line_coords) {
    std::vector<ServerId> line;
    line.reserve(order + 1);
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      if (incident(points[pi], l, s)) line.push_back(static_cast<ServerId>(pi));
    }
    PQRA_CHECK(line.size() == order + 1, "projective line has s+1 points");
    lines_.push_back(std::move(line));
  }
}

void FppQuorums::pick(AccessKind, util::Rng& rng,
                      std::vector<ServerId>& out) const {
  out = lines_[rng.below(lines_.size())];
}

void FppQuorums::quorum(AccessKind, std::size_t idx,
                        std::vector<ServerId>& out) const {
  PQRA_REQUIRE(idx < lines_.size(), "quorum index out of range");
  out = lines_[idx];
}

std::string FppQuorums::name() const {
  std::ostringstream os;
  os << "fpp(order=" << order_ << ", n=" << lines_.size() << ")";
  return os.str();
}

}  // namespace pqra::quorum
