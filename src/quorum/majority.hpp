#pragma once

/// \file majority.hpp
/// The majority quorum system: every subset of size floor(n/2)+1 is a
/// quorum.  Strict, with the best availability a strict system can have
/// (ceil(n/2) crashes needed to disable it) but load ~ 1/2 — the
/// high-availability end of the Naor–Wool trade-off discussed in §4/§6.4.

#include "quorum/quorum_system.hpp"

namespace pqra::quorum {

class MajorityQuorums final : public QuorumSystem {
 public:
  explicit MajorityQuorums(std::size_t n);

  std::size_t num_servers() const override { return n_; }
  std::size_t quorum_size(AccessKind) const override { return n_ / 2 + 1; }
  void pick(AccessKind kind, util::Rng& rng,
            std::vector<ServerId>& out) const override;
  bool is_strict() const override { return true; }
  std::size_t min_kill(AccessKind) const override {
    return n_ - (n_ / 2 + 1) + 1;  // = ceil(n/2)
  }
  std::string name() const override;

 private:
  std::size_t n_;
};

}  // namespace pqra::quorum
