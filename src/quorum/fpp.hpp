#pragma once

/// \file fpp.hpp
/// Finite-projective-plane quorum system (Maekawa's sqrt(n) construction,
/// cited in §6.4 via [17]).  For prime order s, the projective plane PG(2,s)
/// has n = s^2 + s + 1 points and equally many lines; each line has s + 1
/// points and any two lines meet in exactly one point, so the lines form a
/// strict quorum system with quorum size ~ sqrt(n), optimal load ~ 1/sqrt(n)
/// and availability s + 1 = Theta(sqrt n).

#include <vector>

#include "quorum/quorum_system.hpp"

namespace pqra::quorum {

class FppQuorums final : public QuorumSystem {
 public:
  /// \p order must be prime (prime powers would need GF(p^e) arithmetic,
  /// which this construction intentionally avoids).
  explicit FppQuorums(std::size_t order);

  std::size_t num_servers() const override { return lines_.size(); }
  std::size_t quorum_size(AccessKind) const override { return order_ + 1; }
  void pick(AccessKind kind, util::Rng& rng,
            std::vector<ServerId>& out) const override;
  bool is_strict() const override { return true; }
  bool enumerable() const override { return true; }
  std::size_t num_quorums(AccessKind) const override { return lines_.size(); }
  void quorum(AccessKind, std::size_t idx,
              std::vector<ServerId>& out) const override;
  std::size_t min_kill(AccessKind) const override {
    // The smallest blocking set of PG(2, s) is a line (s + 1 points).
    return order_ + 1;
  }
  std::string name() const override;

  std::size_t order() const { return order_; }

 private:
  std::size_t order_;
  std::vector<std::vector<ServerId>> lines_;
};

}  // namespace pqra::quorum
