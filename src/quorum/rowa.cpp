#include "quorum/rowa.hpp"

#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace pqra::quorum {

ReadOneWriteAll::ReadOneWriteAll(std::size_t n) : n_(n) {
  PQRA_REQUIRE(n >= 1, "need at least one server");
}

void ReadOneWriteAll::pick(AccessKind kind, util::Rng& rng,
                           std::vector<ServerId>& out) const {
  if (kind == AccessKind::kRead) {
    out.assign(1, static_cast<ServerId>(rng.below(n_)));
  } else {
    out.resize(n_);
    std::iota(out.begin(), out.end(), 0);
  }
}

void ReadOneWriteAll::quorum(AccessKind kind, std::size_t idx,
                             std::vector<ServerId>& out) const {
  if (kind == AccessKind::kRead) {
    PQRA_REQUIRE(idx < n_, "quorum index out of range");
    out.assign(1, static_cast<ServerId>(idx));
  } else {
    PQRA_REQUIRE(idx == 0, "there is exactly one write quorum");
    out.resize(n_);
    std::iota(out.begin(), out.end(), 0);
  }
}

std::string ReadOneWriteAll::name() const {
  std::ostringstream os;
  os << "read-one-write-all(n=" << n_ << ")";
  return os.str();
}

}  // namespace pqra::quorum
