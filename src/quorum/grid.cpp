#include "quorum/grid.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace pqra::quorum {

GridQuorums::GridQuorums(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  PQRA_REQUIRE(rows >= 1 && cols >= 1, "grid must be non-empty");
}

GridQuorums GridQuorums::square(std::size_t n) {
  auto side = static_cast<std::size_t>(std::lround(std::sqrt(
      static_cast<double>(n))));
  PQRA_REQUIRE(side * side == n, "square grid needs a perfect-square n");
  return GridQuorums(side, side);
}

void GridQuorums::build(std::size_t row, std::size_t col,
                        std::vector<ServerId>& out) const {
  out.clear();
  out.reserve(rows_ + cols_ - 1);
  for (std::size_t j = 0; j < cols_; ++j) {
    out.push_back(static_cast<ServerId>(row * cols_ + j));
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    if (i == row) continue;  // (row, col) is already in the row part
    out.push_back(static_cast<ServerId>(i * cols_ + col));
  }
}

void GridQuorums::pick(AccessKind, util::Rng& rng,
                       std::vector<ServerId>& out) const {
  std::size_t row = rng.below(rows_);
  std::size_t col = rng.below(cols_);
  build(row, col, out);
}

void GridQuorums::quorum(AccessKind, std::size_t idx,
                         std::vector<ServerId>& out) const {
  PQRA_REQUIRE(idx < rows_ * cols_, "quorum index out of range");
  build(idx / cols_, idx % cols_, out);
}

std::string GridQuorums::name() const {
  std::ostringstream os;
  os << "grid(" << rows_ << "x" << cols_ << ")";
  return os.str();
}

}  // namespace pqra::quorum
