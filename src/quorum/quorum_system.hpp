#pragma once

/// \file quorum_system.hpp
/// Quorum system abstraction.
///
/// A quorum system over n servers supplies, per operation, a subset of
/// servers to contact.  Strict systems guarantee pairwise intersection of
/// any read quorum with any write quorum; the probabilistic system of
/// Malkhi–Reiter–Wright only intersects with high probability.  Reads and
/// writes may use different sides of a system (see access_set's \p kind),
/// which is how read-one/write-all is expressed.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pqra::quorum {

using ServerId = std::uint32_t;

enum class AccessKind : std::uint8_t { kRead = 0, kWrite = 1 };

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  /// Number of replica servers the system is defined over.
  virtual std::size_t num_servers() const = 0;

  /// Typical quorum size for \p kind (all systems here have fixed sizes).
  virtual std::size_t quorum_size(AccessKind kind) const = 0;

  /// Samples a quorum for one operation into \p out (cleared first).
  /// The sampling distribution is the system's access strategy; for the
  /// probabilistic system it is uniform over all k-subsets as §4 requires.
  virtual void pick(AccessKind kind, util::Rng& rng,
                    std::vector<ServerId>& out) const = 0;

  /// True when any read quorum is guaranteed to intersect any write quorum.
  virtual bool is_strict() const = 0;

  /// True when the read/write quorum families can be enumerated cheaply.
  virtual bool enumerable() const { return false; }

  /// Number of quorums of \p kind (enumerable systems only).
  virtual std::size_t num_quorums(AccessKind) const { return 0; }

  /// The \p idx-th quorum of \p kind (enumerable systems only).
  virtual void quorum(AccessKind, std::size_t /*idx*/,
                      std::vector<ServerId>& /*out*/) const {}

  /// Minimum number of server crashes that disables every quorum of \p kind
  /// (the availability measure of Peleg–Wool, reviewed in §4).
  virtual std::size_t min_kill(AccessKind kind) const = 0;

  virtual std::string name() const = 0;

  /// Convenience: picks into a fresh vector.  (Named differently from pick
  /// so derived-class overrides do not hide it.)
  std::vector<ServerId> sample(AccessKind kind, util::Rng& rng) const {
    std::vector<ServerId> q;
    pick(kind, rng, q);
    return q;
  }
};

}  // namespace pqra::quorum
