#pragma once

/// \file hierarchical.hpp
/// Hierarchical quorum consensus (Kumar).  The n = 3^h servers are the
/// leaves of a complete ternary tree; a quorum takes 2 of the 3 subtrees at
/// every internal node, recursively.  Quorum size 2^h = n^{log3 2} ~ n^0.63
/// sits between grid (~sqrt n) and majority (~n/2), and so does its
/// availability (2^h crashes needed) — a third point on the §4 trade-off
/// curve that the strict world cannot escape.

#include "quorum/quorum_system.hpp"

namespace pqra::quorum {

class HierarchicalQuorums final : public QuorumSystem {
 public:
  /// \p levels = h >= 0; n = 3^h servers (h = 0 is the singleton tree).
  explicit HierarchicalQuorums(std::size_t levels);

  std::size_t num_servers() const override { return num_servers_; }
  std::size_t quorum_size(AccessKind) const override { return quorum_size_; }
  void pick(AccessKind, util::Rng& rng,
            std::vector<ServerId>& out) const override;
  bool is_strict() const override { return true; }
  bool enumerable() const override { return num_quorums_ <= 100000; }
  std::size_t num_quorums(AccessKind) const override { return num_quorums_; }
  void quorum(AccessKind, std::size_t idx,
              std::vector<ServerId>& out) const override;
  /// Killing a node needs 2 of its children killed, recursively: 2^h.
  std::size_t min_kill(AccessKind) const override { return quorum_size_; }
  std::string name() const override;

  std::size_t levels() const { return levels_; }

 private:
  void pick_rec(std::size_t level, ServerId base, util::Rng& rng,
                std::vector<ServerId>& out) const;
  void quorum_rec(std::size_t level, ServerId base, std::size_t idx,
                  std::vector<ServerId>& out) const;
  /// Number of quorums of a subtree with \p level levels.
  std::size_t count(std::size_t level) const;

  std::size_t levels_;
  std::size_t num_servers_;
  std::size_t quorum_size_;
  std::size_t num_quorums_;
};

}  // namespace pqra::quorum
