#pragma once

/// \file singleton.hpp
/// Degenerate centralized quorum system: every quorum is {server 0}.
/// Strict (trivially), load 1 on the coordinator, availability 1.  Serves as
/// the extreme baseline in the load/availability tables.

#include "quorum/quorum_system.hpp"

namespace pqra::quorum {

class SingletonQuorums final : public QuorumSystem {
 public:
  explicit SingletonQuorums(std::size_t n);

  std::size_t num_servers() const override { return n_; }
  std::size_t quorum_size(AccessKind) const override { return 1; }
  void pick(AccessKind, util::Rng&, std::vector<ServerId>& out) const override {
    out.assign(1, 0);
  }
  bool is_strict() const override { return true; }
  bool enumerable() const override { return true; }
  std::size_t num_quorums(AccessKind) const override { return 1; }
  void quorum(AccessKind, std::size_t idx,
              std::vector<ServerId>& out) const override;
  std::size_t min_kill(AccessKind) const override { return 1; }
  std::string name() const override;

 private:
  std::size_t n_;
};

}  // namespace pqra::quorum
