#pragma once

/// \file analysis.hpp
/// Measurement and verification tools for quorum systems: the load and
/// availability notions reviewed in §4 (Naor–Wool, Peleg–Wool) plus
/// empirical estimators used by the load_availability bench and by tests.

#include <cstdint>
#include <vector>

#include "quorum/quorum_system.hpp"
#include "util/rng.hpp"

namespace pqra::quorum {

/// Checks pairwise read-write intersection.  Enumerable systems are checked
/// exhaustively; others are sampled \p samples times.  Returns true if no
/// disjoint (read, write) pair was found.
bool check_intersection(const QuorumSystem& qs, util::Rng& rng,
                        std::size_t samples = 2000);

/// Empirical per-access miss probability: fraction of sampled (read, write)
/// quorum pairs that are disjoint.  For the probabilistic system this
/// estimates C(n-k,k)/C(n,k).
double empirical_nonoverlap(const QuorumSystem& qs, util::Rng& rng,
                            std::size_t samples);

/// Result of a load measurement.
struct LoadEstimate {
  double busiest = 0.0;   ///< access frequency of the busiest server
  double average = 0.0;   ///< mean access frequency (= E[quorum size]/n)
  std::vector<double> per_server;
};

/// Samples \p samples accesses of \p kind under the system's own strategy
/// and reports per-server access frequencies.  The "busiest" field is the
/// empirical load of that strategy.
LoadEstimate empirical_load(const QuorumSystem& qs, AccessKind kind,
                            util::Rng& rng, std::size_t samples);

/// The Naor–Wool lower bound on the load of any n-server quorum system with
/// smallest quorum size c: max(1/c, c/n).
double load_lower_bound(std::size_t n, std::size_t smallest_quorum);

/// True when a quorum of \p kind can still be formed with the given crashed
/// servers.  Enumerable systems scan their family; the probabilistic system
/// needs any k live servers; majority needs a live majority.
bool survives_crashes(const QuorumSystem& qs, AccessKind kind,
                      const std::vector<bool>& crashed);

/// Monte-Carlo estimate of P[system survives] when each server crashes
/// independently with probability \p crash_prob.
double survival_probability(const QuorumSystem& qs, AccessKind kind,
                            double crash_prob, util::Rng& rng,
                            std::size_t trials);

/// Brute-force minimum kill-set size (exact; exponential in n — tests only,
/// n <= ~20 for non-enumerable systems, family scan otherwise).
std::size_t brute_force_min_kill(const QuorumSystem& qs, AccessKind kind);

}  // namespace pqra::quorum
