#include "quorum/majority.hpp"

#include <sstream>

#include "util/check.hpp"

namespace pqra::quorum {

MajorityQuorums::MajorityQuorums(std::size_t n) : n_(n) {
  PQRA_REQUIRE(n >= 1, "need at least one server");
}

void MajorityQuorums::pick(AccessKind, util::Rng& rng,
                           std::vector<ServerId>& out) const {
  // Uniform over all majorities; this is also the load-optimal strategy for
  // the majority system by symmetry.
  rng.sample_without_replacement(static_cast<std::uint32_t>(n_),
                                 static_cast<std::uint32_t>(n_ / 2 + 1), out);
}

std::string MajorityQuorums::name() const {
  std::ostringstream os;
  os << "majority(n=" << n_ << ")";
  return os.str();
}

}  // namespace pqra::quorum
