#pragma once

/// \file probabilistic.hpp
/// The probabilistic quorum system of Malkhi, Reiter and Wright (PODC'97):
/// every k-subset of the n servers is a quorum, and each access draws one
/// uniformly at random.  With k = l*sqrt(n) two quorums intersect with
/// probability >= 1 - e^{-l^2}; availability is n-k+1 and the uniform access
/// strategy gives load k/n.

#include "quorum/quorum_system.hpp"

namespace pqra::quorum {

class ProbabilisticQuorums final : public QuorumSystem {
 public:
  /// \p n servers, quorum size \p k (both reads and writes), 1 <= k <= n.
  ProbabilisticQuorums(std::size_t n, std::size_t k);

  std::size_t num_servers() const override { return n_; }
  std::size_t quorum_size(AccessKind) const override { return k_; }
  void pick(AccessKind kind, util::Rng& rng,
            std::vector<ServerId>& out) const override;
  bool is_strict() const override;
  std::size_t min_kill(AccessKind) const override { return n_ - k_ + 1; }
  std::string name() const override;

 private:
  std::size_t n_;
  std::size_t k_;
};

}  // namespace pqra::quorum
