#include "quorum/probabilistic.hpp"

#include <sstream>

#include "util/check.hpp"

namespace pqra::quorum {

ProbabilisticQuorums::ProbabilisticQuorums(std::size_t n, std::size_t k)
    : n_(n), k_(k) {
  PQRA_REQUIRE(n >= 1, "need at least one server");
  PQRA_REQUIRE(k >= 1 && k <= n, "quorum size must be in [1, n]");
}

void ProbabilisticQuorums::pick(AccessKind, util::Rng& rng,
                                std::vector<ServerId>& out) const {
  // Samples straight into the caller's scratch vector (ServerId is the
  // sample's element type) — the per-access draw reuses capacity instead of
  // returning a fresh vector.
  rng.sample_without_replacement(static_cast<std::uint32_t>(n_),
                                 static_cast<std::uint32_t>(k_), out);
}

bool ProbabilisticQuorums::is_strict() const {
  // When 2k > n every pair of k-subsets intersects, so the "probabilistic"
  // system is in fact strict (this is the k >= 18 regime of §7).
  return 2 * k_ > n_;
}

std::string ProbabilisticQuorums::name() const {
  std::ostringstream os;
  os << "probabilistic(n=" << n_ << ", k=" << k_ << ")";
  return os.str();
}

}  // namespace pqra::quorum
