#include "apps/linear.hpp"

#include <cmath>
#include <utility>

#include "util/check.hpp"
#include "util/codec.hpp"

namespace pqra::apps {

double LinearSystem::contraction_factor() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < size(); ++j) {
      if (j != i) off += std::abs(a[i][j]);
    }
    worst = std::max(worst, off / std::abs(a[i][i]));
  }
  return worst;
}

LinearSystem make_dominant_system(std::size_t n, double dominance,
                                  util::Rng& rng) {
  PQRA_REQUIRE(n >= 1, "system must be non-empty");
  PQRA_REQUIRE(dominance > 0.0 && dominance < 1.0,
               "dominance must be in (0, 1)");
  LinearSystem sys;
  sys.a.assign(n, std::vector<double>(n, 0.0));
  sys.b.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sys.a[i][j] = 2.0 * rng.uniform01() - 1.0;
      off += std::abs(sys.a[i][j]);
    }
    if (off == 0.0) off = 1.0;  // degenerate 1x1 or all-zero row
    sys.a[i][i] = off / dominance;
    sys.b[i] = 20.0 * rng.uniform01() - 10.0;
  }
  return sys;
}

std::vector<double> solve_direct(const LinearSystem& system) {
  const std::size_t n = system.size();
  auto a = system.a;
  auto b = system.b;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    PQRA_CHECK(std::abs(a[pivot][col]) > 1e-12, "singular system");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a[ri][c] * x[c];
    x[ri] = acc / a[ri][ri];
  }
  return x;
}

JacobiOperator::JacobiOperator(LinearSystem system, double tolerance)
    : system_(std::move(system)),
      tolerance_(tolerance),
      solution_(solve_direct(system_)) {
  PQRA_REQUIRE(tolerance > 0.0, "tolerance must be positive");
  PQRA_REQUIRE(system_.contraction_factor() < 1.0,
               "Jacobi requires strict diagonal dominance");
  initial_encoded_ = util::encode(0.0);
  solution_encoded_.reserve(solution_.size());
  for (double v : solution_) solution_encoded_.push_back(util::encode(v));
  alpha_ = system_.contraction_factor();
  for (double v : solution_) {
    initial_error_ = std::max(initial_error_, std::abs(v));
  }
}

bool JacobiOperator::box_contains(std::size_t K, std::size_t i,
                                  const iter::Value& v) const {
  PQRA_REQUIRE(i < system_.size(), "component index out of range");
  double radius = initial_error_ * std::pow(alpha_, static_cast<double>(K));
  // Small absolute slack for accumulated floating-point error.
  return std::abs(util::decode<double>(v) - solution_[i]) <=
         radius + 1e-9 * (1.0 + initial_error_);
}

iter::Value JacobiOperator::initial(std::size_t i) const {
  PQRA_REQUIRE(i < system_.size(), "component index out of range");
  return initial_encoded_;
}

iter::Value JacobiOperator::apply(std::size_t i,
                                  const std::vector<iter::Value>& x) const {
  PQRA_REQUIRE(i < system_.size() && x.size() == system_.size(),
               "bad apply arguments");
  double acc = system_.b[i];
  for (std::size_t j = 0; j < system_.size(); ++j) {
    if (j == i) continue;
    acc -= system_.a[i][j] * util::decode<double>(x[j]);
  }
  return util::encode(acc / system_.a[i][i]);
}

bool JacobiOperator::component_equal(std::size_t, const iter::Value& a,
                                     const iter::Value& b) const {
  return std::abs(util::decode<double>(a) - util::decode<double>(b)) <=
         tolerance_;
}

const iter::Value& JacobiOperator::fixed_point(std::size_t i) const {
  PQRA_REQUIRE(i < system_.size(), "component index out of range");
  return solution_encoded_[i];
}

}  // namespace pqra::apps
