#include "apps/csp.hpp"

#include <deque>
#include <utility>

#include "util/check.hpp"
#include "util/codec.hpp"

namespace pqra::apps {

Csp::Csp(std::size_t num_vars, std::size_t domain_size)
    : domain_size(domain_size),
      allowed(num_vars),
      constrained(num_vars, std::vector<bool>(num_vars, false)) {
  PQRA_REQUIRE(num_vars >= 1, "CSP needs at least one variable");
  PQRA_REQUIRE(domain_size >= 1 && domain_size <= 64,
               "domain size must be in [1, 64]");
  for (auto& row : allowed) {
    row.assign(num_vars, {});
  }
}

void Csp::add_constraint(std::size_t u, std::size_t v,
                         const std::vector<DomainMask>& allowed_pairs) {
  PQRA_REQUIRE(u < num_vars() && v < num_vars() && u != v,
               "bad constraint endpoints");
  PQRA_REQUIRE(allowed_pairs.size() == domain_size,
               "one support mask per value required");
  allowed[u][v] = allowed_pairs;
  // Derive the reverse direction: b of v supports a of u iff bit b of
  // allowed_pairs[a] is set.
  std::vector<DomainMask> reverse(domain_size, 0);
  for (std::size_t a = 0; a < domain_size; ++a) {
    for (std::size_t b = 0; b < domain_size; ++b) {
      if ((allowed_pairs[a] >> b) & 1u) reverse[b] |= 1ULL << a;
    }
  }
  allowed[v][u] = std::move(reverse);
  constrained[u][v] = constrained[v][u] = true;
}

Csp make_coloring_csp(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    std::size_t num_vars, std::size_t colors) {
  Csp csp(num_vars, colors);
  std::vector<DomainMask> differ(colors);
  for (std::size_t a = 0; a < colors; ++a) {
    differ[a] = csp.full_mask() & ~(1ULL << a);
  }
  for (auto [u, v] : edges) {
    csp.add_constraint(u, v, differ);
  }
  return csp;
}

Csp make_random_csp(std::size_t num_vars, std::size_t domain_size,
                    double density, double tightness, util::Rng& rng) {
  PQRA_REQUIRE(density >= 0.0 && density <= 1.0, "density must be in [0,1]");
  PQRA_REQUIRE(tightness >= 0.0 && tightness <= 1.0,
               "tightness must be in [0,1]");
  Csp csp(num_vars, domain_size);
  for (std::size_t u = 0; u < num_vars; ++u) {
    for (std::size_t v = u + 1; v < num_vars; ++v) {
      if (!rng.bernoulli(density)) continue;
      std::vector<DomainMask> masks(domain_size, 0);
      for (std::size_t a = 0; a < domain_size; ++a) {
        for (std::size_t b = 0; b < domain_size; ++b) {
          if (!rng.bernoulli(tightness)) masks[a] |= 1ULL << b;
        }
      }
      csp.add_constraint(u, v, masks);
    }
  }
  return csp;
}

Csp make_ordering_csp(std::size_t num_vars, std::size_t domain_size) {
  Csp csp(num_vars, domain_size);
  std::vector<DomainMask> less_than(domain_size, 0);
  for (std::size_t a = 0; a < domain_size; ++a) {
    for (std::size_t b = a + 1; b < domain_size; ++b) {
      less_than[a] |= 1ULL << b;
    }
  }
  for (std::size_t u = 0; u + 1 < num_vars; ++u) {
    csp.add_constraint(u, u + 1, less_than);
  }
  return csp;
}

namespace {

/// One revision step: prune values of u that lack support in v's domain.
DomainMask revise(const Csp& csp, std::size_t u, std::size_t v,
                  DomainMask dom_u, DomainMask dom_v) {
  DomainMask out = 0;
  for (std::size_t a = 0; a < csp.domain_size; ++a) {
    if (!((dom_u >> a) & 1u)) continue;
    if ((csp.allowed[u][v][a] & dom_v) != 0) out |= 1ULL << a;
  }
  return out;
}

}  // namespace

std::vector<DomainMask> ac3(const Csp& csp) {
  const std::size_t n = csp.num_vars();
  std::vector<DomainMask> dom(n, csp.full_mask());
  std::deque<std::pair<std::size_t, std::size_t>> agenda;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u != v && csp.constrained[u][v]) agenda.emplace_back(u, v);
    }
  }
  while (!agenda.empty()) {
    auto [u, v] = agenda.front();
    agenda.pop_front();
    DomainMask revised = revise(csp, u, v, dom[u], dom[v]);
    if (revised == dom[u]) continue;
    dom[u] = revised;
    for (std::size_t w = 0; w < n; ++w) {
      if (w != u && w != v && csp.constrained[w][u]) agenda.emplace_back(w, u);
    }
  }
  return dom;
}

ArcConsistencyOperator::ArcConsistencyOperator(Csp csp)
    : csp_(std::move(csp)), reference_(ac3(csp_)) {
  initial_encoded_ = util::encode(csp_.full_mask());
  reference_encoded_.reserve(reference_.size());
  for (DomainMask d : reference_) {
    reference_encoded_.push_back(util::encode(d));
  }

  // Upper edges of the contraction boxes: synchronous sweeps from full
  // domains down to the AC fixpoint (at most num_vars * domain_size sweeps).
  const std::size_t n = csp_.num_vars();
  iterates_.emplace_back(n, csp_.full_mask());
  while (iterates_.back() != reference_) {
    const auto& prev = iterates_.back();
    std::vector<DomainMask> next(n);
    for (std::size_t u = 0; u < n; ++u) {
      DomainMask d = prev[u];
      for (std::size_t v = 0; v < n; ++v) {
        if (v == u || !csp_.constrained[u][v]) continue;
        d = revise(csp_, u, v, d, prev[v]);
      }
      next[u] = d;
    }
    PQRA_CHECK(next != iterates_.back(),
               "synchronous sweep stalled before the AC fixpoint");
    iterates_.push_back(std::move(next));
  }
}

bool ArcConsistencyOperator::box_contains(std::size_t K, std::size_t i,
                                          const iter::Value& v) const {
  PQRA_REQUIRE(i < csp_.num_vars(), "component index out of range");
  DomainMask d = util::decode<DomainMask>(v);
  DomainMask upper = iterates_[std::min(K, iterates_.size() - 1)][i];
  // reference ⊆ d ⊆ upper.
  return (reference_[i] & ~d) == 0 && (d & ~upper) == 0;
}

iter::Value ArcConsistencyOperator::initial(std::size_t i) const {
  PQRA_REQUIRE(i < csp_.num_vars(), "component index out of range");
  return initial_encoded_;
}

iter::Value ArcConsistencyOperator::apply(
    std::size_t i, const std::vector<iter::Value>& x) const {
  PQRA_REQUIRE(i < csp_.num_vars() && x.size() == csp_.num_vars(),
               "bad apply arguments");
  DomainMask dom_i = util::decode<DomainMask>(x[i]);
  for (std::size_t v = 0; v < csp_.num_vars(); ++v) {
    if (v == i || !csp_.constrained[i][v]) continue;
    dom_i = revise(csp_, i, v, dom_i, util::decode<DomainMask>(x[v]));
  }
  return util::encode(dom_i);
}

const iter::Value& ArcConsistencyOperator::fixed_point(std::size_t i) const {
  PQRA_REQUIRE(i < csp_.num_vars(), "component index out of range");
  return reference_encoded_[i];
}

}  // namespace pqra::apps
