#pragma once

/// \file linear.hpp
/// Asynchronous Jacobi iteration for strictly diagonally dominant linear
/// systems — the "systems of linear equations" application of §2 (via
/// Bertsekas–Tsitsiklis, the paper's reference [6]).
///
/// x_i <- (b_i - sum_{j != i} a_ij x_j) / a_ii is a max-norm contraction
/// with factor alpha = max_i sum_{j != i} |a_ij| / |a_ii| < 1, so it is an
/// ACO with nested boxes D(K) of radius alpha^K; asynchronous iteration
/// converges from any starting point.  The fixed-point oracle solves the
/// system directly by Gaussian elimination with partial pivoting, and
/// component equality is |x - x*| <= tolerance.

#include <vector>

#include "iter/aco.hpp"
#include "util/rng.hpp"

namespace pqra::apps {

/// Dense linear system A x = b.
struct LinearSystem {
  std::vector<std::vector<double>> a;
  std::vector<double> b;

  std::size_t size() const { return b.size(); }

  /// max_i sum_{j != i} |a_ij| / |a_ii| — must be < 1 for Jacobi.
  double contraction_factor() const;
};

/// Random strictly diagonally dominant system: off-diagonals uniform in
/// [-1, 1], diagonal = (row L1 norm) / dominance with \p dominance < 1,
/// b uniform in [-10, 10].  contraction_factor() == dominance.
LinearSystem make_dominant_system(std::size_t n, double dominance,
                                  util::Rng& rng);

/// Direct solve by Gaussian elimination with partial pivoting.
std::vector<double> solve_direct(const LinearSystem& system);

class JacobiOperator final : public iter::AcoOperator {
 public:
  /// Converged when every |x_i - x*_i| <= tolerance.
  JacobiOperator(LinearSystem system, double tolerance);

  std::size_t num_components() const override { return system_.size(); }
  iter::Value initial(std::size_t i) const override;
  iter::Value apply(std::size_t i,
                    const std::vector<iter::Value>& x) const override;
  bool component_equal(std::size_t i, const iter::Value& a,
                       const iter::Value& b) const override;
  const iter::Value& fixed_point(std::size_t i) const override;
  /// D(K)_i = { x : |x - x*_i| <= alpha^K * r0 } with alpha the contraction
  /// factor and r0 the initial max-norm error — the textbook nested boxes of
  /// a max-norm contraction (Bertsekas–Tsitsiklis).
  bool box_contains(std::size_t K, std::size_t i,
                    const iter::Value& v) const override;
  bool has_box_oracle() const override { return true; }
  std::string name() const override { return "jacobi"; }

  const std::vector<double>& solution() const { return solution_; }
  double tolerance() const { return tolerance_; }

 private:
  LinearSystem system_;
  double tolerance_;
  std::vector<double> solution_;
  std::vector<iter::Value> solution_encoded_;
  iter::Value initial_encoded_;
  double alpha_ = 0.0;           ///< contraction factor
  double initial_error_ = 0.0;   ///< r0 = max_i |0 - x*_i|
};

}  // namespace pqra::apps
