#include "apps/approx_agreement.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/codec.hpp"

namespace pqra::apps {

ApproxAgreementOperator::ApproxAgreementOperator(std::vector<double> inputs,
                                                 double epsilon)
    : inputs_(std::move(inputs)), epsilon_(epsilon) {
  PQRA_REQUIRE(!inputs_.empty(), "need at least one process input");
  PQRA_REQUIRE(epsilon > 0.0, "epsilon must be positive");
  lo_ = *std::min_element(inputs_.begin(), inputs_.end());
  hi_ = *std::max_element(inputs_.begin(), inputs_.end());
  center_ = util::encode((lo_ + hi_) / 2.0);
  initial_encoded_.reserve(inputs_.size());
  for (double v : inputs_) initial_encoded_.push_back(util::encode(v));
}

iter::Value ApproxAgreementOperator::initial(std::size_t i) const {
  PQRA_REQUIRE(i < inputs_.size(), "component index out of range");
  return initial_encoded_[i];
}

iter::Value ApproxAgreementOperator::apply(
    std::size_t i, const std::vector<iter::Value>& x) const {
  PQRA_REQUIRE(i < inputs_.size() && x.size() == inputs_.size(),
               "bad apply arguments");
  double lo = util::decode<double>(x[0]);
  double hi = lo;
  for (const iter::Value& v : x) {
    double d = util::decode<double>(v);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return util::encode((lo + hi) / 2.0);
}

bool ApproxAgreementOperator::component_equal(std::size_t,
                                              const iter::Value& a,
                                              const iter::Value& b) const {
  return std::abs(util::decode<double>(a) - util::decode<double>(b)) <=
         epsilon_;
}

const iter::Value& ApproxAgreementOperator::fixed_point(std::size_t) const {
  return center_;
}

bool ApproxAgreementOperator::locally_converged(
    std::size_t, const iter::Value& own,
    const std::vector<iter::Value>& view) const {
  double lo = util::decode<double>(own);
  double hi = lo;
  for (const iter::Value& v : view) {
    double d = util::decode<double>(v);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return hi - lo <= epsilon_;
}

}  // namespace pqra::apps
