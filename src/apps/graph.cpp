#include "apps/graph.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pqra::apps {

void Graph::add_edge(std::uint32_t from, std::uint32_t to, Weight weight) {
  PQRA_REQUIRE(from < adj.size() && to < adj.size(), "vertex out of range");
  PQRA_REQUIRE(weight >= 0, "negative weights are not supported");
  adj[from].push_back(Edge{to, weight});
}

Graph make_chain(std::size_t n) {
  PQRA_REQUIRE(n >= 2, "chain needs at least two vertices");
  Graph g(n);
  // Vertex n-1 is the source, vertex 0 the sink (the paper's 34 -> 1 chain).
  for (std::uint32_t i = 1; i < n; ++i) {
    g.add_edge(i, i - 1, 1);
  }
  return g;
}

Graph make_cycle(std::size_t n) {
  PQRA_REQUIRE(n >= 2, "cycle needs at least two vertices");
  Graph g(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    g.add_edge(i, static_cast<std::uint32_t>((i + 1) % n), 1);
  }
  return g;
}

Graph make_grid_graph(std::size_t rows, std::size_t cols) {
  PQRA_REQUIRE(rows >= 1 && cols >= 1, "grid must be non-empty");
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<std::uint32_t>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        g.add_edge(id(r, c), id(r, c + 1), 1);
        g.add_edge(id(r, c + 1), id(r, c), 1);
      }
      if (r + 1 < rows) {
        g.add_edge(id(r, c), id(r + 1, c), 1);
        g.add_edge(id(r + 1, c), id(r, c), 1);
      }
    }
  }
  return g;
}

Graph make_complete(std::size_t n, Weight wmin, Weight wmax, util::Rng& rng) {
  PQRA_REQUIRE(n >= 2, "complete graph needs at least two vertices");
  PQRA_REQUIRE(0 <= wmin && wmin <= wmax, "bad weight range");
  Graph g(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      g.add_edge(i, j, rng.uniform_int(wmin, wmax));
    }
  }
  return g;
}

Graph make_random_gnp(std::size_t n, double prob, Weight wmin, Weight wmax,
                      util::Rng& rng) {
  PQRA_REQUIRE(n >= 2, "graph needs at least two vertices");
  PQRA_REQUIRE(prob >= 0.0 && prob <= 1.0, "probability must be in [0, 1]");
  PQRA_REQUIRE(0 <= wmin && wmin <= wmax, "bad weight range");
  Graph g(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (rng.bernoulli(prob)) g.add_edge(i, j, rng.uniform_int(wmin, wmax));
    }
  }
  return g;
}

Graph make_random_tree(std::size_t n, util::Rng& rng) {
  PQRA_REQUIRE(n >= 2, "tree needs at least two vertices");
  Graph g(n);
  for (std::uint32_t i = 1; i < n; ++i) {
    auto parent = static_cast<std::uint32_t>(rng.below(i));
    g.add_edge(parent, i, 1);
  }
  return g;
}

std::vector<std::vector<Weight>> floyd_warshall(const Graph& g) {
  const std::size_t n = g.size();
  std::vector<std::vector<Weight>> dist(n, std::vector<Weight>(n, kInf));
  for (std::size_t i = 0; i < n; ++i) {
    dist[i][i] = 0;
    for (const Edge& e : g.adj[i]) {
      dist[i][e.to] = std::min(dist[i][e.to], e.weight);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (dist[i][k] == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        Weight through = util::saturating_add(dist[i][k], dist[k][j]);
        if (through < dist[i][j]) dist[i][j] = through;
      }
    }
  }
  return dist;
}

Weight weighted_diameter(const Graph& g) {
  auto dist = floyd_warshall(g);
  Weight d = 0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    for (std::size_t j = 0; j < dist.size(); ++j) {
      if (i != j && dist[i][j] != kInf) d = std::max(d, dist[i][j]);
    }
  }
  return d;
}

std::size_t apsp_pseudocycle_bound(const Graph& g) {
  auto d = static_cast<double>(std::max<Weight>(weighted_diameter(g), 2));
  return static_cast<std::size_t>(std::ceil(std::log2(d)));
}

}  // namespace pqra::apps
