#pragma once

/// \file graph.hpp
/// Weighted directed graphs, generators and reference algorithms for the
/// shortest-path / transitive-closure workloads.

#include <cstdint>
#include <vector>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace pqra::apps {

using Weight = std::int64_t;

/// +infinity for distances (saturating arithmetic; see util/math.hpp).
inline constexpr Weight kInf = util::kPathInf;

struct Edge {
  std::uint32_t to = 0;
  Weight weight = 1;
};

/// Adjacency-list digraph.
struct Graph {
  explicit Graph(std::size_t n) : adj(n) {}

  std::size_t size() const { return adj.size(); }

  void add_edge(std::uint32_t from, std::uint32_t to, Weight weight = 1);

  std::vector<std::vector<Edge>> adj;
};

/// The paper's §7 input: a directed chain v_{n} -> ... -> v_1 with unit
/// weights (vertex n-1 the source, vertex 0 the sink), diameter n-1.
Graph make_chain(std::size_t n);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0, unit weights.
Graph make_cycle(std::size_t n);

/// rows x cols grid with edges in both directions, unit weights.
Graph make_grid_graph(std::size_t rows, std::size_t cols);

/// Complete digraph with uniform random weights in [wmin, wmax].
Graph make_complete(std::size_t n, Weight wmin, Weight wmax, util::Rng& rng);

/// G(n, prob) digraph with uniform random weights in [wmin, wmax].
Graph make_random_gnp(std::size_t n, double prob, Weight wmin, Weight wmax,
                      util::Rng& rng);

/// Random out-tree rooted at 0 (edge i -> parent(i) reversed: parent -> i),
/// unit weights; useful because its diameter varies with the shape.
Graph make_random_tree(std::size_t n, util::Rng& rng);

/// All-pairs shortest paths by Floyd–Warshall; dist[i][j] = kInf when
/// unreachable, 0 on the diagonal.
std::vector<std::vector<Weight>> floyd_warshall(const Graph& g);

/// max over reachable pairs (i != j) of dist(i, j); 0 for graphs with no
/// reachable pairs.  For unit weights this is the diameter d of §7, which
/// gives the pseudocycle bound M = ceil(log2 d).
Weight weighted_diameter(const Graph& g);

/// ceil(log2(max(d, 2))), the §7 worst-case pseudocycle count for APSP.
std::size_t apsp_pseudocycle_bound(const Graph& g);

}  // namespace pqra::apps
