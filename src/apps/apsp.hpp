#pragma once

/// \file apsp.hpp
/// The paper's example application (§7): all-pairs shortest paths as an
/// asynchronously contracting operator.
///
/// The vector is the n x n distance matrix; component i is row i (process i
/// is "responsible for updating the i-th row vector").  F recomputes row i
/// as (min,+) product: new x_ij = min_k (x_ik + x_kj).  Starting from the
/// edge-weight matrix, F converges to the true APSP in at most
/// ceil(log2 d) pseudocycles (min-plus path doubling).

#include "apps/graph.hpp"
#include "iter/aco.hpp"

namespace pqra::apps {

class ApspOperator final : public iter::AcoOperator {
 public:
  explicit ApspOperator(const Graph& g);

  std::size_t num_components() const override { return n_; }
  iter::Value initial(std::size_t i) const override;
  iter::Value apply(std::size_t i,
                    const std::vector<iter::Value>& x) const override;
  const iter::Value& fixed_point(std::size_t i) const override;
  std::optional<std::size_t> max_pseudocycles() const override {
    return pseudocycle_bound_;
  }
  /// D(K)_i = { row : fixed_point_i <= row <= F^K(initial)_i } entrywise —
  /// the nested boxes of the min-plus contraction ([C1]-[C3]).
  bool box_contains(std::size_t K, std::size_t i,
                    const iter::Value& v) const override;
  bool has_box_oracle() const override { return true; }
  std::string name() const override { return "apsp"; }

  /// Decoded reference answer (row-major), for tests.
  const std::vector<std::vector<Weight>>& reference() const {
    return reference_;
  }

 private:
  std::size_t n_;
  std::vector<std::vector<Weight>> initial_rows_;
  std::vector<std::vector<Weight>> reference_;
  std::vector<iter::Value> initial_encoded_;
  std::vector<iter::Value> reference_encoded_;
  std::size_t pseudocycle_bound_;
  /// iterates_[K][i][j]: entry (i, j) of F^K(initial), K = 0..M (upper edge
  /// of box D(K); F^M = fixed point).
  std::vector<std::vector<std::vector<Weight>>> iterates_;
};

}  // namespace pqra::apps
