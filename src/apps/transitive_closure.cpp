#include "apps/transitive_closure.hpp"

#include "util/check.hpp"
#include "util/codec.hpp"

namespace pqra::apps {

namespace {

void set_bit(ReachRow& row, std::size_t j) { row[j / 64] |= 1ULL << (j % 64); }

}  // namespace

TransitiveClosureOperator::TransitiveClosureOperator(const Graph& g)
    : n_(g.size()), words_((g.size() + 63) / 64) {
  initial_rows_.assign(n_, ReachRow(words_, 0));
  for (std::size_t i = 0; i < n_; ++i) {
    set_bit(initial_rows_[i], i);
    for (const Edge& e : g.adj[i]) set_bit(initial_rows_[i], e.to);
  }

  // Warshall's algorithm on bitset rows.
  reference_ = initial_rows_;
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t i = 0; i < n_; ++i) {
      if (!test_bit(reference_[i], k)) continue;
      for (std::size_t w = 0; w < words_; ++w) {
        reference_[i][w] |= reference_[k][w];
      }
    }
  }

  initial_encoded_.reserve(n_);
  reference_encoded_.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    initial_encoded_.push_back(util::encode(initial_rows_[i]));
    reference_encoded_.push_back(util::encode(reference_[i]));
  }

  // Lower edges of the contraction boxes: iterate the synchronous sweep
  // until the closure is reached (at most ceil(log2 n) + 1 sweeps).
  iterates_.push_back(initial_rows_);
  while (iterates_.back() != reference_) {
    const auto& prev = iterates_.back();
    std::vector<ReachRow> next = prev;
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) {
        if (!test_bit(prev[i], j)) continue;
        for (std::size_t w = 0; w < words_; ++w) next[i][w] |= prev[j][w];
      }
    }
    PQRA_CHECK(next != iterates_.back() || next == reference_,
               "synchronous sweep stalled before the closure");
    iterates_.push_back(std::move(next));
  }
}

bool TransitiveClosureOperator::box_contains(std::size_t K, std::size_t i,
                                             const iter::Value& v) const {
  PQRA_REQUIRE(i < n_, "component index out of range");
  auto row = util::decode<ReachRow>(v);
  if (row.size() != words_) return false;
  const auto& lower = iterates_[std::min(K, iterates_.size() - 1)][i];
  for (std::size_t w = 0; w < words_; ++w) {
    // lower ⊆ row ⊆ reference, as bit sets.
    if ((lower[w] & ~row[w]) != 0) return false;
    if ((row[w] & ~reference_[i][w]) != 0) return false;
  }
  return true;
}

iter::Value TransitiveClosureOperator::initial(std::size_t i) const {
  PQRA_REQUIRE(i < n_, "component index out of range");
  return initial_encoded_[i];
}

iter::Value TransitiveClosureOperator::apply(
    std::size_t i, const std::vector<iter::Value>& x) const {
  PQRA_REQUIRE(i < n_ && x.size() == n_, "bad apply arguments");
  auto row_i = util::decode<ReachRow>(x[i]);
  PQRA_CHECK(row_i.size() == words_, "row width mismatch");
  ReachRow out = row_i;
  for (std::size_t j = 0; j < n_; ++j) {
    if (!test_bit(row_i, j) || j == i) continue;
    auto row_j = util::decode<ReachRow>(x[j]);
    PQRA_CHECK(row_j.size() == words_, "row width mismatch");
    for (std::size_t w = 0; w < words_; ++w) out[w] |= row_j[w];
  }
  return util::encode(out);
}

const iter::Value& TransitiveClosureOperator::fixed_point(
    std::size_t i) const {
  PQRA_REQUIRE(i < n_, "component index out of range");
  return reference_encoded_[i];
}

}  // namespace pqra::apps
