#pragma once

/// \file approx_agreement.hpp
/// Approximate agreement over random registers — the application §8
/// explicitly proposes for this model ("We consider the approximate
/// agreement problem to be a good application").
///
/// Each of the m processes starts with a real input; component i is process
/// i's current proposal.  F_i replaces the proposal with the midpoint
/// (min + max)/2 of the full view.  Two classical properties are the point
/// of the exercise:
///
///   validity     — every proposal stays inside [min, max] of the inputs
///                  (an invariant of midpoint updates; tested),
///   epsilon-agreement — eventually all proposals are within epsilon.
///
/// Termination uses locally_converged: a process is content when the whole
/// view it just used spans at most epsilon.  There is no predetermined
/// fixed point (the consensus value depends on the schedule), so the
/// fixed_point() oracle reports the center of the validity interval for
/// reference only — the default §7 stopping rule is overridden.

#include <vector>

#include "iter/aco.hpp"

namespace pqra::apps {

class ApproxAgreementOperator final : public iter::AcoOperator {
 public:
  ApproxAgreementOperator(std::vector<double> inputs, double epsilon);

  std::size_t num_components() const override { return inputs_.size(); }
  iter::Value initial(std::size_t i) const override;
  iter::Value apply(std::size_t i,
                    const std::vector<iter::Value>& x) const override;
  bool component_equal(std::size_t i, const iter::Value& a,
                       const iter::Value& b) const override;
  /// Center of [min inputs, max inputs]; reference only (see file comment).
  const iter::Value& fixed_point(std::size_t i) const override;
  bool locally_converged(std::size_t i, const iter::Value& own,
                         const std::vector<iter::Value>& view) const override;
  std::string name() const override { return "approximate-agreement"; }

  double epsilon() const { return epsilon_; }
  double input_min() const { return lo_; }
  double input_max() const { return hi_; }

 private:
  std::vector<double> inputs_;
  double epsilon_;
  double lo_;
  double hi_;
  iter::Value center_;
  std::vector<iter::Value> initial_encoded_;
};

}  // namespace pqra::apps
