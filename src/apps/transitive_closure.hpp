#pragma once

/// \file transitive_closure.hpp
/// Transitive closure as an ACO — the boolean-semiring sibling of APSP that
/// the paper's introduction lists among the framework's applications.
///
/// Component i is the reachability row of vertex i, stored as a bitset
/// (one word per 64 vertices).  F unions into row i the rows of every
/// vertex currently known reachable: monotone non-decreasing on a finite
/// lattice, hence asynchronously contracting; the fixed point is the
/// reflexive-transitive closure.

#include "apps/graph.hpp"
#include "iter/aco.hpp"

namespace pqra::apps {

/// Row bitset: bit j of word j/64 set iff j is known reachable.
using ReachRow = std::vector<std::uint64_t>;

class TransitiveClosureOperator final : public iter::AcoOperator {
 public:
  explicit TransitiveClosureOperator(const Graph& g);

  std::size_t num_components() const override { return n_; }
  iter::Value initial(std::size_t i) const override;
  iter::Value apply(std::size_t i,
                    const std::vector<iter::Value>& x) const override;
  const iter::Value& fixed_point(std::size_t i) const override;
  /// D(K)_i = { row : F^K(initial)_i ⊆ row ⊆ closure_i } — the increasing
  /// mirror image of APSP's boxes.
  bool box_contains(std::size_t K, std::size_t i,
                    const iter::Value& v) const override;
  bool has_box_oracle() const override { return true; }
  std::string name() const override { return "transitive-closure"; }

  /// Reference closure computed by Warshall's algorithm, for tests.
  const std::vector<ReachRow>& reference() const { return reference_; }

  static bool test_bit(const ReachRow& row, std::size_t j) {
    return (row[j / 64] >> (j % 64)) & 1u;
  }

 private:
  std::size_t n_;
  std::size_t words_;
  std::vector<ReachRow> initial_rows_;
  std::vector<ReachRow> reference_;
  std::vector<iter::Value> initial_encoded_;
  std::vector<iter::Value> reference_encoded_;
  /// iterates_[K][i]: row i of F^K(initial) (lower edge of box D(K)).
  std::vector<std::vector<ReachRow>> iterates_;
};

}  // namespace pqra::apps
