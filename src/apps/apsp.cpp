#include "apps/apsp.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/codec.hpp"

namespace pqra::apps {

namespace {

std::vector<Weight> initial_row(const Graph& g, std::size_t i) {
  std::vector<Weight> row(g.size(), kInf);
  row[i] = 0;
  for (const Edge& e : g.adj[i]) {
    row[e.to] = std::min(row[e.to], e.weight);
  }
  return row;
}

}  // namespace

ApspOperator::ApspOperator(const Graph& g)
    : n_(g.size()),
      reference_(floyd_warshall(g)),
      pseudocycle_bound_(apsp_pseudocycle_bound(g)) {
  initial_rows_.reserve(n_);
  initial_encoded_.reserve(n_);
  reference_encoded_.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    initial_rows_.push_back(initial_row(g, i));
    initial_encoded_.push_back(util::encode(initial_rows_.back()));
    reference_encoded_.push_back(util::encode(reference_[i]));
  }

  // Upper edges of the contraction boxes: F^K(initial) by min-plus squaring
  // steps (what one synchronous sweep computes).
  iterates_.push_back(initial_rows_);
  for (std::size_t K = 1; K <= pseudocycle_bound_; ++K) {
    const auto& prev = iterates_.back();
    std::vector<std::vector<Weight>> next(n_, std::vector<Weight>(n_, kInf));
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t k = 0; k < n_; ++k) {
        if (prev[i][k] == kInf) continue;
        for (std::size_t j = 0; j < n_; ++j) {
          Weight through = util::saturating_add(prev[i][k], prev[k][j]);
          if (through < next[i][j]) next[i][j] = through;
        }
      }
    }
    iterates_.push_back(std::move(next));
  }
}

bool ApspOperator::box_contains(std::size_t K, std::size_t i,
                                const iter::Value& v) const {
  PQRA_REQUIRE(i < n_, "component index out of range");
  auto row = util::decode<std::vector<Weight>>(v);
  if (row.size() != n_) return false;
  const auto& upper = iterates_[std::min(K, iterates_.size() - 1)][i];
  for (std::size_t j = 0; j < n_; ++j) {
    if (row[j] < reference_[i][j] || row[j] > upper[j]) return false;
  }
  return true;
}

iter::Value ApspOperator::initial(std::size_t i) const {
  PQRA_REQUIRE(i < n_, "component index out of range");
  return initial_encoded_[i];
}

iter::Value ApspOperator::apply(std::size_t i,
                                const std::vector<iter::Value>& x) const {
  PQRA_REQUIRE(i < n_ && x.size() == n_, "bad apply arguments");
  auto row_i = util::decode<std::vector<Weight>>(x[i]);
  PQRA_CHECK(row_i.size() == n_, "row length mismatch");
  std::vector<Weight> out(n_, kInf);
  for (std::size_t k = 0; k < n_; ++k) {
    if (row_i[k] == kInf) continue;
    auto row_k = util::decode<std::vector<Weight>>(x[k]);
    PQRA_CHECK(row_k.size() == n_, "row length mismatch");
    for (std::size_t j = 0; j < n_; ++j) {
      Weight through = util::saturating_add(row_i[k], row_k[j]);
      if (through < out[j]) out[j] = through;
    }
  }
  return util::encode(out);
}

const iter::Value& ApspOperator::fixed_point(std::size_t i) const {
  PQRA_REQUIRE(i < n_, "component index out of range");
  return reference_encoded_[i];
}

}  // namespace pqra::apps
