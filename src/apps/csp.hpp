#pragma once

/// \file csp.hpp
/// Distributed arc consistency for binary CSPs — the "constraint
/// satisfaction" application from the paper's introduction.
///
/// Variables have domains in {0..d-1} (d <= 64, stored as bitmasks).
/// Component i is variable i's current domain; F_i prunes every value of
/// domain i that lacks a support in some neighbour's domain.  Domains only
/// shrink (finite decreasing lattice), so F is asynchronously contracting
/// and the fixed point is the unique maximal arc-consistent subdomain — the
/// same one AC-3 computes, which serves as the reference oracle.

#include <cstdint>
#include <vector>

#include "iter/aco.hpp"
#include "util/rng.hpp"

namespace pqra::apps {

using DomainMask = std::uint64_t;

/// Binary CSP over n variables with domain size d (<= 64).
struct Csp {
  Csp(std::size_t num_vars, std::size_t domain_size);

  std::size_t num_vars() const { return allowed.size(); }
  std::size_t domain_size;

  /// allowed[u][v][a]: bitmask of values b of v compatible with u = a.
  /// Symmetric by construction (add_constraint fills both directions); a
  /// missing constraint means "everything allowed" (mask of all ones).
  std::vector<std::vector<std::vector<DomainMask>>> allowed;
  std::vector<std::vector<bool>> constrained;

  DomainMask full_mask() const {
    return domain_size == 64 ? ~0ULL : (1ULL << domain_size) - 1;
  }

  /// Declares (u, v) constrained with \p allowed_pairs[a] = supports of
  /// u = a in v; the reverse direction is derived.
  void add_constraint(std::size_t u, std::size_t v,
                      const std::vector<DomainMask>& allowed_pairs);
};

/// Graph-coloring CSP: adjacent vertices must differ, \p colors <= 64.
Csp make_coloring_csp(const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                          edges,
                      std::size_t num_vars, std::size_t colors);

/// Random binary CSP(n, d, density, tightness): each pair is constrained
/// with probability \p density; a constrained pair forbids each value pair
/// independently with probability \p tightness.
Csp make_random_csp(std::size_t num_vars, std::size_t domain_size,
                    double density, double tightness, util::Rng& rng);

/// Ordering chain x_0 < x_1 < ... < x_{n-1} over domains {0..d-1}.  Arc
/// consistency must propagate end to end (dom(x_i) shrinks to
/// {i .. d-n+i}), making it a good stress case for iteration depth; needs
/// d >= n for non-empty domains.
Csp make_ordering_csp(std::size_t num_vars, std::size_t domain_size);

/// Reference arc consistency (AC-3).  Returns the pruned domains.
std::vector<DomainMask> ac3(const Csp& csp);

class ArcConsistencyOperator final : public iter::AcoOperator {
 public:
  explicit ArcConsistencyOperator(Csp csp);

  std::size_t num_components() const override { return csp_.num_vars(); }
  iter::Value initial(std::size_t i) const override;
  iter::Value apply(std::size_t i,
                    const std::vector<iter::Value>& x) const override;
  const iter::Value& fixed_point(std::size_t i) const override;
  /// D(K)_v = { d : ac3_fixpoint_v ⊆ d ⊆ F^K(full domains)_v }.
  bool box_contains(std::size_t K, std::size_t i,
                    const iter::Value& v) const override;
  bool has_box_oracle() const override { return true; }
  std::string name() const override { return "arc-consistency"; }

  const Csp& csp() const { return csp_; }
  const std::vector<DomainMask>& reference() const { return reference_; }

 private:
  Csp csp_;
  std::vector<DomainMask> reference_;
  std::vector<iter::Value> reference_encoded_;
  iter::Value initial_encoded_;
  /// iterates_[K][v]: domain of variable v after K synchronous sweeps
  /// (upper edge of box D(K)).
  std::vector<std::vector<DomainMask>> iterates_;
};

}  // namespace pqra::apps
