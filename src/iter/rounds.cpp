#include "iter/rounds.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pqra::iter {

RoundTracker::RoundTracker(std::size_t num_processes)
    : done_(num_processes, false), remaining_(num_processes) {
  PQRA_REQUIRE(num_processes >= 1, "need at least one process");
}

bool RoundTracker::iteration_completed(std::size_t proc) {
  PQRA_REQUIRE(proc < done_.size(), "process index out of range");
  ++iterations_;
  if (!done_[proc]) {
    done_[proc] = true;
    --remaining_;
  }
  if (remaining_ == 0) {
    ++rounds_;
    std::fill(done_.begin(), done_.end(), false);
    remaining_ = done_.size();
    return true;
  }
  return false;
}

}  // namespace pqra::iter
