#pragma once

/// \file alg1_des.hpp
/// Alg. 1 of §5 executed over quorum registers in the discrete-event
/// simulator.
///
/// Responsibility for the m components is partitioned over p processes
/// (owner(j) = j mod p).  Every process loops: read all m registers (in
/// parallel), apply F to the assembled vector, write the components it owns,
/// repeat.  Execution stops when every process's local copy of its owned
/// components equals the precomputed fixed point (the paper's §7 stopping
/// rule), or when the round cap is hit (the paper reports such runs as
/// lower bounds).

#include <memory>
#include <optional>

#include "core/quorum_register_client.hpp"
#include "core/spec/history.hpp"
#include "iter/aco.hpp"
#include "net/fault_plan.hpp"
#include "net/transport.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "quorum/quorum_system.hpp"
#include "sim/calendar_queue.hpp"
#include "util/stats.hpp"

namespace pqra::iter {

struct Alg1Options {
  /// Quorum system shared by all clients (non-owning; required).
  const quorum::QuorumSystem* quorums = nullptr;

  /// p; defaults to m (the paper's APSP setup: one process per row).
  std::optional<std::size_t> num_processes;

  /// Monotone (§6.2) vs plain probabilistic register.
  bool monotone = true;

  /// Read repair: reads push the freshest value to stale responders
  /// (fire-and-forget; extension — see ClientOptions::read_repair).
  bool read_repair = false;

  /// Atomic-mode reads (write-back before returning; extension).
  bool write_back = false;

  /// Server-side anti-entropy gossip period (extension; unset = no gossip).
  /// Note: gossip keeps the event queue alive, so stall-prone runs should
  /// also set max_sim_time.
  std::optional<sim::Time> gossip_interval;

  /// Snapshot reads (extension): each iteration reads all m registers
  /// through ONE quorum access instead of m (read cost per round drops from
  /// 2pmk to 2pk messages, at the price of correlated staleness).
  bool snapshot_reads = false;

  /// Synchronous (constant delay 1) vs asynchronous (exponential delays of
  /// mean 1), as in §7.
  bool synchronous = true;

  std::uint64_t seed = 1;

  /// Stop after this many completed rounds and report converged = false.
  std::size_t round_cap = 100000;

  /// Record the full operation history for spec checking (costs memory; off
  /// for the big Figure 2 sweeps).
  bool record_history = false;

  /// Crash these servers before the run starts (availability experiments).
  std::vector<net::NodeId> crashed_servers;

  /// Timed crash/recovery schedule installed before the run (churn
  /// experiments); non-owning, may be nullptr.
  const net::FaultPlan* fault_plan = nullptr;

  /// Per-operation retry timeout (needed for liveness under crashes).
  /// Shorthand for a fixed-interval core::RetryPolicy; ignored when `retry`
  /// below is set.
  std::optional<sim::Time> retry_timeout;

  /// Full recovery policy (backoff, jitter, deadline, graceful degradation —
  /// docs/FAULTS.md).  Overrides retry_timeout when set.
  std::optional<core::RetryPolicy> retry;

  /// Hard wall on simulated time; ends the run unconverged.  Needed when an
  /// execution can stall forever (e.g. a strict system with too many crashed
  /// servers keeps retrying without progress).
  std::optional<sim::Time> max_sim_time;

  /// Optional metrics registry (non-owning).  All layers — clients, servers,
  /// transport, simulator — report into it; instruments only count, they
  /// never schedule events, so the simulated execution is unchanged.
  obs::Registry* metrics = nullptr;

  /// Optional structured op-trace sink (non-owning).  Records one event per
  /// completed read/write in spec/history vocabulary, replayable through the
  /// [R1]/[R2]/[R4] checkers via core::spec::to_op_records.
  obs::OpTraceSink* trace = nullptr;

  /// Optional causal span sink (non-owning): clients emit op/RPC/retry
  /// spans, servers parent their handling spans through the message
  /// headers.  Deterministic given the sink's sampling options; see
  /// obs/span.hpp and docs/OBSERVABILITY.md.
  obs::SpanSink* spans = nullptr;

  /// Optional flight recorder (non-owning): the transport records every
  /// send/deliver/drop into the ring; dump it when something goes wrong.
  obs::FlightRecorder* flight_recorder = nullptr;

  /// Optional DES self-profiler (non-owning): attaches to the simulator for
  /// the run.  Wall-time attribution makes outputs nondeterministic — never
  /// route profiler data into determinism-compared artifacts
  /// (sim/profiler.hpp); only its deterministic fire counts are published
  /// into `metrics`.
  sim::Profiler* profiler = nullptr;

  /// Event-queue implementation for the run's internally-owned simulator.
  /// Defaults to the PQRA_QUEUE environment switch; the exploration
  /// fuzzer's --queue-diff mode overrides it to run the same profile under
  /// both implementations and compare fingerprints.
  sim::QueueMode queue_mode = sim::queue_mode_from_env();
};

struct Alg1Result {
  bool converged = false;
  /// Rounds until convergence, including the partial round in progress when
  /// the last process became correct (the §7 measure); equals the cap when
  /// converged == false.
  std::size_t rounds = 0;
  std::size_t iterations = 0;
  std::size_t pseudocycles = 0;
  sim::Time sim_time = 0.0;
  /// Schedule identity of the run (Simulator::fingerprint /
  /// events_processed): equal pairs mean the exact same event schedule
  /// executed — what the exploration fuzzer's replay check asserts.
  std::uint64_t fingerprint = 0;
  std::uint64_t events_processed = 0;
  net::MessageStats messages;
  std::uint64_t monotone_cache_hits = 0;
  std::uint64_t retries = 0;
  /// Operation latency in simulated time, merged over all processes.
  util::OnlineStats read_latency;
  util::OnlineStats write_latency;
  /// Populated when Alg1Options::record_history is set.
  std::shared_ptr<core::spec::HistoryRecorder> history;
};

/// Runs one complete execution.  Deterministic in (op, options.seed).
Alg1Result run_alg1(const AcoOperator& op, const Alg1Options& options);

}  // namespace pqra::iter
