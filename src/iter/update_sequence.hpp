#pragma once

/// \file update_sequence.hpp
/// The sequential update-sequence machinery of Üresin & Dubois (§5).
///
/// This is the *theory* half of the framework: explicit change/view
/// schedules, validation of conditions [A1]-[A3] on finite prefixes, online
/// pseudocycle extraction per [B1]/[B2], and a runner used to exercise
/// Theorem 2 directly (no registers, no network).  The distributed execution
/// over random registers lives in alg1_des.hpp / alg1_threads.hpp.

#include <memory>

#include "iter/aco.hpp"
#include "util/rng.hpp"

namespace pqra::iter {

/// Update k (k >= 1): which components are recomputed and, for every
/// component j, the index view[j] in [0, k-1] of the version of x_j fed to F
/// (version t = the value of x_j after update t; version 0 = initial).
struct UpdateStep {
  std::vector<std::size_t> change;
  std::vector<std::size_t> view;
};

/// Produces the schedule one update at a time.
class ScheduleGenerator {
 public:
  virtual ~ScheduleGenerator() = default;

  /// The k-th update (k >= 1) for an m-component vector.  Must satisfy [A1]
  /// (view[j] < k); the runner validates this.
  virtual UpdateStep next(std::size_t k, std::size_t m) = 0;

  virtual std::string name() const = 0;
};

/// change(k) = all components, view_j(k) = k-1: the classic Jacobi schedule.
/// Every update is a pseudocycle.
std::unique_ptr<ScheduleGenerator> make_synchronous_schedule();

/// change(k) = {(k-1) mod m}, view_j(k) = k-1: Gauss-Seidel-like sweep; one
/// pseudocycle per m consecutive updates.
std::unique_ptr<ScheduleGenerator> make_round_robin_schedule();

/// Random schedules with bounded asynchrony: each update changes a random
/// non-empty subset and draws each view uniformly from the last
/// \p staleness versions.  Satisfies [A1]-[A3] with probability 1.
std::unique_ptr<ScheduleGenerator> make_bounded_stale_schedule(
    std::size_t staleness, const util::Rng& rng);

/// Adversarially stale variant used in tests: always reads the *oldest*
/// version allowed by the staleness bound.
std::unique_ptr<ScheduleGenerator> make_oldest_view_schedule(
    std::size_t staleness);

struct SequentialResult {
  bool converged = false;
  std::size_t updates = 0;
  /// Pseudocycles completed, counted by the online [B1]/[B2] tracker: a
  /// pseudocycle closes once every component has been recomputed by an
  /// update all of whose views were produced in the previous pseudocycle or
  /// later.
  std::size_t pseudocycles = 0;
  /// False when some update used a view older than the previous pseudocycle
  /// (such updates do not count towards closing one; see DESIGN.md).
  bool all_updates_b2 = true;
  /// When box checking is enabled: number of components found outside D(K)
  /// at the close of pseudocycle K.  Theorem 2's proof invariant says this
  /// stays 0 whenever every update satisfied [B2].
  std::size_t box_violations = 0;
  std::vector<Value> final_x;
};

/// Iterates \p op under \p schedule until the fixed point is reached or
/// \p max_updates updates have been applied.  Throws on an [A1] violation.
/// With \p check_boxes set and an operator providing a box oracle, verifies
/// the Theorem 2 invariant "after pseudocycle K the vector lies in D(K)" at
/// every pseudocycle boundary (skipped once a non-[B2] update occurs, since
/// the invariant is only promised for valid update sequences).
SequentialResult run_update_sequence(const AcoOperator& op,
                                     ScheduleGenerator& schedule,
                                     std::size_t max_updates,
                                     bool check_boxes = false);

}  // namespace pqra::iter
