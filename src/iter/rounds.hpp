#pragma once

/// \file rounds.hpp
/// Round accounting per §6.3/§7: a round is a minimal-length contiguous
/// stretch of the execution in which every process completes at least one
/// full loop iteration (read all, apply F, write own).  The tracker closes a
/// round greedily as soon as the last missing process reports an iteration.

#include <cstddef>
#include <vector>

namespace pqra::iter {

class RoundTracker {
 public:
  explicit RoundTracker(std::size_t num_processes);

  /// Records a completed iteration by \p proc.  Returns true when this
  /// iteration closes the current round.
  bool iteration_completed(std::size_t proc);

  std::size_t completed_rounds() const { return rounds_; }
  std::size_t iterations_total() const { return iterations_; }

  /// True when the current (unfinished) round already contains iterations.
  bool in_partial_round() const { return remaining_ < done_.size(); }

  /// Rounds including the in-progress one — the §7 "rounds until
  /// convergence" measure when sampled at the converging iteration.
  std::size_t rounds_including_partial() const {
    return rounds_ + (in_partial_round() ? 1 : 0);
  }

 private:
  std::vector<bool> done_;
  std::size_t remaining_;
  std::size_t rounds_ = 0;
  std::size_t iterations_ = 0;
};

}  // namespace pqra::iter
