#include "iter/update_sequence.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace pqra::iter {

namespace {

class SynchronousSchedule final : public ScheduleGenerator {
 public:
  UpdateStep next(std::size_t k, std::size_t m) override {
    UpdateStep step;
    step.change.resize(m);
    for (std::size_t j = 0; j < m; ++j) step.change[j] = j;
    step.view.assign(m, k - 1);
    return step;
  }

  std::string name() const override { return "synchronous"; }
};

class RoundRobinSchedule final : public ScheduleGenerator {
 public:
  UpdateStep next(std::size_t k, std::size_t m) override {
    UpdateStep step;
    step.change.push_back((k - 1) % m);
    step.view.assign(m, k - 1);
    return step;
  }

  std::string name() const override { return "round-robin"; }
};

class BoundedStaleSchedule final : public ScheduleGenerator {
 public:
  BoundedStaleSchedule(std::size_t staleness, const util::Rng& rng)
      : staleness_(staleness), rng_(rng.fork(0x7363686564ULL)) {
    PQRA_REQUIRE(staleness >= 1, "staleness bound must be at least 1");
  }

  UpdateStep next(std::size_t k, std::size_t m) override {
    UpdateStep step;
    for (std::size_t j = 0; j < m; ++j) {
      if (rng_.bernoulli(0.5)) step.change.push_back(j);
    }
    if (step.change.empty()) {
      step.change.push_back(static_cast<std::size_t>(rng_.below(m)));
    }
    step.view.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      std::size_t oldest = k > staleness_ ? k - staleness_ : 0;
      step.view[j] =
          oldest + static_cast<std::size_t>(rng_.below(k - oldest));
    }
    return step;
  }

  std::string name() const override { return "bounded-stale"; }

 private:
  std::size_t staleness_;
  util::Rng rng_;
};

class OldestViewSchedule final : public ScheduleGenerator {
 public:
  explicit OldestViewSchedule(std::size_t staleness) : staleness_(staleness) {
    PQRA_REQUIRE(staleness >= 1, "staleness bound must be at least 1");
  }

  UpdateStep next(std::size_t k, std::size_t m) override {
    UpdateStep step;
    step.change.resize(m);
    for (std::size_t j = 0; j < m; ++j) step.change[j] = j;
    step.view.assign(m, k > staleness_ ? k - staleness_ : 0);
    return step;
  }

  std::string name() const override { return "oldest-view"; }

 private:
  std::size_t staleness_;
};

}  // namespace

std::unique_ptr<ScheduleGenerator> make_synchronous_schedule() {
  return std::make_unique<SynchronousSchedule>();
}

std::unique_ptr<ScheduleGenerator> make_round_robin_schedule() {
  return std::make_unique<RoundRobinSchedule>();
}

std::unique_ptr<ScheduleGenerator> make_bounded_stale_schedule(
    std::size_t staleness, const util::Rng& rng) {
  return std::make_unique<BoundedStaleSchedule>(staleness, rng);
}

std::unique_ptr<ScheduleGenerator> make_oldest_view_schedule(
    std::size_t staleness) {
  return std::make_unique<OldestViewSchedule>(staleness);
}

SequentialResult run_update_sequence(const AcoOperator& op,
                                     ScheduleGenerator& schedule,
                                     std::size_t max_updates,
                                     bool check_boxes) {
  const std::size_t m = op.num_components();
  PQRA_REQUIRE(m >= 1, "operator must have at least one component");

  // history[t][j]: value of component j after update t (t = 0: initial).
  // tag[t][j]: pseudocycle in which that version was produced (initial
  // versions carry tag 0; pseudocycle numbering starts at 1 so that the
  // [B2] constraint "previous pseudocycle or later" is simply tag >= pc-1).
  std::vector<std::vector<Value>> history;
  std::vector<std::vector<std::size_t>> tag;
  history.emplace_back();
  history[0].reserve(m);
  for (std::size_t j = 0; j < m; ++j) history[0].push_back(op.initial(j));
  tag.emplace_back(m, 0);

  SequentialResult result;

  std::size_t pc = 1;                       // current pseudocycle number
  std::vector<bool> good_update(m, false);  // per component, within this pc
  std::size_t good_remaining = m;

  std::vector<Value> views(m);
  for (std::size_t k = 1; k <= max_updates; ++k) {
    UpdateStep step = schedule.next(k, m);
    PQRA_CHECK(step.view.size() == m, "schedule must supply one view per component");
    PQRA_CHECK(!step.change.empty(), "schedule must change something");

    // [A1] and view resolution.
    bool b2_ok = true;
    for (std::size_t j = 0; j < m; ++j) {
      PQRA_CHECK(step.view[j] < k, "[A1] violated: view from the future");
      views[j] = history[step.view[j]][j];
      if (tag[step.view[j]][j] + 1 < pc) b2_ok = false;
    }
    if (!b2_ok) result.all_updates_b2 = false;

    history.push_back(history[k - 1]);
    tag.push_back(tag[k - 1]);
    for (std::size_t j : step.change) {
      PQRA_CHECK(j < m, "schedule changed a non-existent component");
      history[k][j] = op.apply(j, views);
      tag[k][j] = pc;
      if (b2_ok && !good_update[j]) {
        good_update[j] = true;
        --good_remaining;
      }
    }

    if (good_remaining == 0) {
      ++result.pseudocycles;
      if (check_boxes && result.all_updates_b2 && op.has_box_oracle()) {
        for (std::size_t j = 0; j < m; ++j) {
          if (!op.box_contains(result.pseudocycles, j, history[k][j])) {
            ++result.box_violations;
          }
        }
      }
      ++pc;
      std::fill(good_update.begin(), good_update.end(), false);
      good_remaining = m;
    }

    bool all_fixed = true;
    for (std::size_t j = 0; j < m; ++j) {
      if (!op.locally_converged(j, history[k][j], history[k])) {
        all_fixed = false;
        break;
      }
    }
    result.updates = k;
    if (all_fixed) {
      result.converged = true;
      result.final_x = history[k];
      return result;
    }
  }

  result.final_x = history.back();
  return result;
}

}  // namespace pqra::iter
