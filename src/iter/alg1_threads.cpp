#include "iter/alg1_threads.hpp"

#include <atomic>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <memory>

#include "core/blocking_register.hpp"
#include "core/threaded_server.hpp"
#include "iter/rounds.hpp"
#include "net/fault_plan.hpp"
#include "net/thread_transport.hpp"
#include "util/check.hpp"

namespace pqra::iter {

Alg1ThreadsResult run_alg1_threads(const AcoOperator& op,
                                   const Alg1ThreadsOptions& options) {
  PQRA_REQUIRE(options.quorums != nullptr, "a quorum system is required");
  const quorum::QuorumSystem& quorums = *options.quorums;
  const std::size_t m = op.num_components();
  const std::size_t p = options.num_processes.value_or(m);
  PQRA_REQUIRE(p >= 1, "need at least one process");
  const std::size_t n = quorums.num_servers();

  util::Rng master(options.seed);
  net::ThreadTransport transport(static_cast<net::NodeId>(n + p),
                                 /*fault_seed=*/options.seed);
  if (options.metrics != nullptr) {
    transport.bind_metrics(*options.metrics);
    transport.bind_fault_metrics(*options.metrics);
  }

  // Server threads at NodeIds [0, n), replicas preloaded before they start.
  std::vector<std::unique_ptr<core::ThreadedServer>> servers;
  servers.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    core::Replica replica;
    for (std::size_t j = 0; j < m; ++j) {
      replica.preload(static_cast<net::RegisterId>(j), op.initial(j));
    }
    servers.push_back(std::make_unique<core::ThreadedServer>(
        transport, static_cast<net::NodeId>(s), std::move(replica),
        options.metrics));
  }

  Alg1ThreadsResult result;

  // Shared, mutex-protected progress state.
  std::mutex progress_mutex;
  RoundTracker rounds(p);
  std::vector<bool> correct(p, false);
  std::size_t correct_count = 0;
  std::atomic<bool> stop{false};
  std::uint64_t cache_hits_total = 0;

  auto worker = [&](std::size_t i) {
    core::BlockingRegisterClient client(
        transport, static_cast<net::NodeId>(n + i), quorums,
        /*server_base=*/0, master.fork(100 + i), options.monotone,
        options.metrics, options.retry);
    std::vector<std::size_t> owned;
    for (std::size_t j = i; j < m; j += p) owned.push_back(j);

    std::vector<Value> local(m);
    bool transport_closed = false;
    while (!transport_closed && !stop.load(std::memory_order_acquire)) {
      // A sweep abandoned by an operation timeout (kTimedOut, possible only
      // under fault injection with a deadline policy) just starts the next
      // round — Alg. 1 tolerates the resulting stale local view.
      bool sweep_failed = false;
      for (std::size_t j = 0; j < m; ++j) {
        auto r = client.read(static_cast<net::RegisterId>(j));
        if (!r.has_value()) {
          if (client.last_status() == core::OpStatus::kShutdown) {
            transport_closed = true;
          } else {
            sweep_failed = true;
          }
          break;
        }
        local[j] = std::move(r->value);
      }
      if (transport_closed || sweep_failed) continue;
      std::vector<Value> updated;
      updated.reserve(owned.size());
      for (std::size_t j : owned) updated.push_back(op.apply(j, local));
      for (std::size_t idx = 0; idx < owned.size(); ++idx) {
        local[owned[idx]] = std::move(updated[idx]);
      }
      for (std::size_t j : owned) {
        if (!client.write(static_cast<net::RegisterId>(j), local[j])
                 .has_value()) {
          if (client.last_status() == core::OpStatus::kShutdown) {
            transport_closed = true;
          } else {
            sweep_failed = true;
          }
          break;
        }
      }
      if (transport_closed || sweep_failed) continue;

      bool now_correct = true;
      for (std::size_t j : owned) {
        if (!op.locally_converged(j, local[j], local)) {
          now_correct = false;
          break;
        }
      }

      std::lock_guard lock(progress_mutex);
      rounds.iteration_completed(i);
      if (correct[i] != now_correct) {
        correct[i] = now_correct;
        if (now_correct) {
          ++correct_count;
        } else {
          --correct_count;
        }
      }
      if (correct_count == p) {
        result.converged = true;
        result.rounds = rounds.rounds_including_partial();
        stop.store(true, std::memory_order_release);
      } else if (rounds.completed_rounds() >= options.round_cap) {
        result.converged = false;
        result.rounds = rounds.completed_rounds();
        stop.store(true, std::memory_order_release);
      }
    }

    // Teardown-only aggregation: the client accumulated its latency stats
    // lock-free while running; one merge per thread happens here, after the
    // iteration loop, so the hot path never takes a global lock.
    std::lock_guard lock(progress_mutex);
    cache_hits_total += client.monotone_cache_hits();
    result.retries += client.retries();
    result.op_failures += client.op_failures();
    result.read_latency.merge(client.read_latency());
    result.write_latency.merge(client.write_latency());
  };

  {
    // The fault driver (if any) runs for the workers' whole lifetime and is
    // stopped before the transport closes so it never races teardown.
    std::unique_ptr<net::LiveFaultDriver> driver;
    if (options.fault_plan != nullptr && !options.fault_plan->empty()) {
      driver = std::make_unique<net::LiveFaultDriver>(
          *options.fault_plan, transport, options.seconds_per_time_unit);
    }
    std::vector<std::thread> threads;
    threads.reserve(p);
    for (std::size_t i = 0; i < p; ++i) {
      threads.emplace_back([&worker, i] { worker(i); });
    }
    for (auto& t : threads) t.join();
    if (driver) driver->stop();
  }

  // All clients are done; unblock and join the servers.  A still-crashed
  // server is no obstacle: crash only drops its messages at send time, and
  // close() unblocks every mailbox.
  result.faults = transport.fault_counters();
  transport.close();
  servers.clear();

  std::lock_guard lock(progress_mutex);
  result.iterations = rounds.iterations_total();
  result.messages = transport.stats();
  result.monotone_cache_hits = cache_hits_total;
  if (!result.converged && result.rounds == 0) {
    result.rounds = rounds.rounds_including_partial();
  }
  return result;
}

}  // namespace pqra::iter
