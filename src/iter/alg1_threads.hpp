#pragma once

/// \file alg1_threads.hpp
/// Alg. 1 over the real-threads runtime: p client threads iterate against n
/// replica server threads through blocking quorum registers.  Demonstrates
/// that the protocol logic is runtime-agnostic; scheduling nondeterminism
/// comes from the OS instead of a delay model, so results are not
/// reproducible run-to-run (tests assert convergence, not round counts).

#include <optional>

#include "iter/aco.hpp"
#include "net/transport.hpp"
#include "quorum/quorum_system.hpp"

namespace pqra::iter {

struct Alg1ThreadsOptions {
  const quorum::QuorumSystem* quorums = nullptr;  ///< required, non-owning
  std::optional<std::size_t> num_processes;       ///< default: m
  bool monotone = true;
  std::uint64_t seed = 1;
  std::size_t round_cap = 100000;
};

struct Alg1ThreadsResult {
  bool converged = false;
  std::size_t rounds = 0;
  std::size_t iterations = 0;
  net::MessageStats messages;
  std::uint64_t monotone_cache_hits = 0;
};

/// Runs to convergence (or the round cap) and tears the runtime down.
Alg1ThreadsResult run_alg1_threads(const AcoOperator& op,
                                   const Alg1ThreadsOptions& options);

}  // namespace pqra::iter
