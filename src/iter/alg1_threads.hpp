#pragma once

/// \file alg1_threads.hpp
/// Alg. 1 over the real-threads runtime: p client threads iterate against n
/// replica server threads through blocking quorum registers.  Demonstrates
/// that the protocol logic is runtime-agnostic; scheduling nondeterminism
/// comes from the OS instead of a delay model, so results are not
/// reproducible run-to-run (tests assert convergence, not round counts).

#include <optional>

#include "core/register_types.hpp"
#include "iter/aco.hpp"
#include "net/fault_plan.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "quorum/quorum_system.hpp"
#include "util/stats.hpp"

namespace pqra::iter {

struct Alg1ThreadsOptions {
  const quorum::QuorumSystem* quorums = nullptr;  ///< required, non-owning
  std::optional<std::size_t> num_processes;       ///< default: m
  bool monotone = true;
  std::uint64_t seed = 1;
  std::size_t round_cap = 100000;

  /// Optional metrics registry (non-owning).  Must be thread-safe
  /// (obs::Concurrency::kThreadSafe): clients, servers and the transport all
  /// report into it concurrently.
  obs::Registry* metrics = nullptr;

  /// Optional fault schedule (non-owning), replayed in scaled wall-clock
  /// time by a net::LiveFaultDriver while the workers run.  Plan times are
  /// multiplied by seconds_per_time_unit.  When injecting faults, also set
  /// a retry policy with an rpc_timeout, or workers may block on crashed
  /// servers until the driver recovers them.
  const net::FaultPlan* fault_plan = nullptr;
  double seconds_per_time_unit = 0.01;

  /// Recovery policy for the blocking clients (docs/FAULTS.md).  A worker
  /// whose operation times out outright abandons the sweep and starts its
  /// next round; the iteration still converges because Alg. 1 tolerates
  /// stale reads.
  core::RetryPolicy retry;
};

struct Alg1ThreadsResult {
  bool converged = false;
  std::size_t rounds = 0;
  std::size_t iterations = 0;
  net::MessageStats messages;
  std::uint64_t monotone_cache_hits = 0;
  std::uint64_t retries = 0;       ///< operation retries across all clients
  std::uint64_t op_failures = 0;   ///< operations that timed out outright
  net::FaultCounters faults;       ///< what the injector actually did
  /// Wall-clock operation latency in seconds.  Each worker accumulates into
  /// its own util::OnlineStats lock-free on the hot path; the per-thread
  /// stats are merged (util::OnlineStats::merge) only after the workers
  /// join, so no global lock is touched per operation.
  util::OnlineStats read_latency;
  util::OnlineStats write_latency;
};

/// Runs to convergence (or the round cap) and tears the runtime down.
Alg1ThreadsResult run_alg1_threads(const AcoOperator& op,
                                   const Alg1ThreadsOptions& options);

}  // namespace pqra::iter
