#pragma once

/// \file pseudocycle.hpp
/// Online pseudocycle detection for distributed (Alg. 1) executions.
///
/// The tracker implements the closure condition used in the proof of
/// Theorem 5: pseudocycle h can end once every process has completed an
/// iteration in which, for every register j, the view it read was at least
/// as new as the first write to X_j performed in pseudocycle h-1.  Since in
/// Alg. 1 every process writes all of its components every iteration, such a
/// "good" iteration per process also provides [B1] (each component updated).
/// Pseudocycle 0 has no view requirement (there is nothing older than the
/// initial values).
///
/// This is the measurement instrument behind the messages-per-pseudocycle
/// comparison of §6.4; for a strict quorum system in a synchronous execution
/// every iteration is good, so pseudocycles coincide with rounds, matching
/// M_str's "one round per pseudocycle".

#include <cstdint>
#include <vector>

#include "core/register_types.hpp"

namespace pqra::iter {

class PseudocycleTracker {
 public:
  PseudocycleTracker(std::size_t num_processes, std::size_t num_components);

  /// Records that register \p j was written with timestamp \p ts (call when
  /// the write completes).
  void on_write(std::size_t j, core::Timestamp ts);

  /// Records a completed iteration by \p proc whose read of register j
  /// returned timestamp read_ts[j].  Returns true when this closes the
  /// current pseudocycle.
  bool on_iteration(std::size_t proc,
                    const std::vector<core::Timestamp>& read_ts);

  std::size_t completed() const { return completed_; }

 private:
  void close_pseudocycle();

  std::size_t num_components_;
  /// ts of the first write to each register in the previous pseudocycle —
  /// the view requirement for the current one (0 during pseudocycle 0).
  std::vector<core::Timestamp> target_ts_;
  /// ts of the first write to each register within the current pseudocycle
  /// (0 = not yet written in this pseudocycle).
  std::vector<core::Timestamp> first_write_;
  std::vector<bool> good_;
  std::size_t good_remaining_;
  std::size_t completed_ = 0;
};

}  // namespace pqra::iter
