#include "iter/alg1_des.hpp"

#include <utility>

#include "core/server_process.hpp"
#include "iter/pseudocycle.hpp"
#include "iter/rounds.hpp"
#include "net/sim_transport.hpp"
#include "obs/names.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/codec.hpp"

namespace pqra::iter {

namespace {

/// One application process: owns a register client and drives the Alg. 1
/// loop through continuation callbacks.
class Alg1Process {
 public:
  Alg1Process(std::size_t index, std::size_t num_processes,
              const AcoOperator& op, sim::Simulator& simulator,
              net::Transport& transport, net::NodeId node,
              const quorum::QuorumSystem& quorums, const util::Rng& rng,
              core::ClientOptions client_options, bool snapshot_reads,
              core::spec::HistoryRecorder* history)
      : index_(index),
        op_(op),
        client_(simulator, transport, node, quorums, /*server_base=*/0, rng,
                client_options, history),
        snapshot_reads_(snapshot_reads),
        local_(op.num_components()),
        read_ts_(op.num_components(), 0) {
    for (std::size_t j = index_; j < op_.num_components();
         j += num_processes) {
      owned_.push_back(j);
    }
  }

  /// Wires the process to the shared trackers; called once before start.
  void attach(RoundTracker* rounds, PseudocycleTracker* pseudocycles,
              // pqra-lint: allow(hotpath-function) — wired once at setup
              std::function<void(std::size_t)> on_iteration_end) {
    rounds_ = rounds;
    pseudocycles_ = pseudocycles;
    on_iteration_end_ = std::move(on_iteration_end);
  }

  void start_iteration() {
    const std::size_t m = op_.num_components();
    if (snapshot_reads_) {
      std::vector<net::RegisterId> regs(m);
      for (std::size_t j = 0; j < m; ++j) {
        regs[j] = static_cast<net::RegisterId>(j);
      }
      client_.read_snapshot(std::move(regs),
                            [this](std::vector<core::ReadResult> results) {
                              for (std::size_t j = 0; j < results.size(); ++j) {
                                local_[j] = std::move(results[j].value);
                                read_ts_[j] = results[j].ts;
                              }
                              compute_and_write();
                            });
      return;
    }
    reads_outstanding_ = m;
    for (std::size_t j = 0; j < m; ++j) {
      client_.read(static_cast<net::RegisterId>(j),
                   [this, j](core::ReadResult r) {
                     local_[j] = std::move(r.value);
                     read_ts_[j] = r.ts;
                     if (--reads_outstanding_ == 0) compute_and_write();
                   });
    }
  }

  bool correct() const { return correct_; }
  const core::ClientCounters& counters() const { return client_.counters(); }
  const util::OnlineStats& read_latency() const {
    return client_.read_latency();
  }
  const util::OnlineStats& write_latency() const {
    return client_.write_latency();
  }

 private:
  void compute_and_write() {
    // Apply F to the assembled view for every owned component, then write
    // them back.  The new values become this process's "local copy" that the
    // §7 stopping rule compares against the precomputed answer.
    std::vector<Value> updated;
    updated.reserve(owned_.size());
    for (std::size_t j : owned_) updated.push_back(op_.apply(j, local_));
    for (std::size_t idx = 0; idx < owned_.size(); ++idx) {
      local_[owned_[idx]] = std::move(updated[idx]);
    }

    if (owned_.empty()) {
      end_iteration();
      return;
    }
    writes_outstanding_ = owned_.size();
    for (std::size_t j : owned_) {
      // A Value copy shares the buffer with local_ (and with every WriteReq
      // the client fans out) — no byte duplication on the write path.
      client_.write(static_cast<net::RegisterId>(j), local_[j],
                    [this, j](core::Timestamp ts) {
                      pseudocycles_->on_write(j, ts);
                      if (--writes_outstanding_ == 0) end_iteration();
                    });
    }
  }

  void end_iteration() {
    correct_ = true;
    for (std::size_t j : owned_) {
      if (!op_.locally_converged(j, local_[j], local_)) {
        correct_ = false;
        break;
      }
    }
    rounds_->iteration_completed(index_);
    pseudocycles_->on_iteration(index_, read_ts_);
    on_iteration_end_(index_);
  }

  std::size_t index_;
  const AcoOperator& op_;
  core::QuorumRegisterClient client_;
  bool snapshot_reads_ = false;
  std::vector<std::size_t> owned_;
  std::vector<Value> local_;
  std::vector<core::Timestamp> read_ts_;
  std::size_t reads_outstanding_ = 0;
  std::size_t writes_outstanding_ = 0;
  bool correct_ = false;

  RoundTracker* rounds_ = nullptr;
  PseudocycleTracker* pseudocycles_ = nullptr;
  // pqra-lint: allow(hotpath-function) — set once at attach(), only invoked
  std::function<void(std::size_t)> on_iteration_end_;
};

}  // namespace

Alg1Result run_alg1(const AcoOperator& op, const Alg1Options& options) {
  PQRA_REQUIRE(options.quorums != nullptr, "a quorum system is required");
  const quorum::QuorumSystem& quorums = *options.quorums;
  const std::size_t m = op.num_components();
  const std::size_t p = options.num_processes.value_or(m);
  PQRA_REQUIRE(p >= 1, "need at least one process");
  const std::size_t n = quorums.num_servers();

  util::Rng master(options.seed);
  sim::Simulator simulator{options.queue_mode};
  std::unique_ptr<sim::DelayModel> delays =
      options.synchronous ? sim::make_constant_delay(1.0)
                          : sim::make_exponential_delay(1.0);
  net::SimTransport transport(simulator, *delays, master.fork(1),
                              static_cast<net::NodeId>(n + p));
  if (options.metrics != nullptr) transport.bind_metrics(*options.metrics);
  if (options.flight_recorder != nullptr) {
    transport.bind_flight_recorder(options.flight_recorder);
  }
  if (options.profiler != nullptr) simulator.set_profiler(options.profiler);

  // Servers at NodeIds [0, n), preloaded with the initial vector.
  core::GossipOptions gossip;
  if (options.gossip_interval.has_value()) {
    gossip.interval = *options.gossip_interval;
    gossip.group_base = 0;
    gossip.group_size = n;
  }
  std::vector<std::unique_ptr<core::ServerProcess>> servers;
  servers.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    if (gossip.interval > 0.0) {
      // pqra-lint: allow(hotpath-alloc) — scenario setup, before sim.run()
      servers.push_back(std::make_unique<core::ServerProcess>(
          transport, static_cast<net::NodeId>(s), simulator, gossip,
          master.fork(5000 + s), options.metrics));
    } else {
      // pqra-lint: allow(hotpath-alloc) — scenario setup, before sim.run()
      servers.push_back(std::make_unique<core::ServerProcess>(
          transport, static_cast<net::NodeId>(s), options.metrics));
    }
    if (options.spans != nullptr) {
      servers.back()->bind_spans(options.spans, simulator);
    }
    for (std::size_t j = 0; j < m; ++j) {
      servers.back()->replica().preload(static_cast<net::RegisterId>(j),
                                        op.initial(j));
    }
  }
  for (net::NodeId s : options.crashed_servers) transport.crash(s);
  if (options.fault_plan != nullptr) {
    options.fault_plan->install(simulator, transport);
  }

  std::shared_ptr<core::spec::HistoryRecorder> history;
  if (options.record_history) {
    // pqra-lint: allow(hotpath-alloc) — scenario setup, before sim.run()
    history = std::make_shared<core::spec::HistoryRecorder>();
    for (std::size_t j = 0; j < m; ++j) {
      history->record_initial(static_cast<net::RegisterId>(j));
    }
  }
  if (options.trace != nullptr) {
    for (std::size_t j = 0; j < m; ++j) {
      options.trace->record_initial(static_cast<net::RegisterId>(j));
    }
  }

  core::ClientOptions client_options;
  client_options.monotone = options.monotone;
  if (options.retry.has_value()) {
    client_options.retry = *options.retry;
  } else if (options.retry_timeout.has_value()) {
    client_options.retry = core::RetryPolicy::fixed(*options.retry_timeout);
  }
  client_options.read_repair = options.read_repair;
  client_options.write_back = options.write_back;
  client_options.metrics = options.metrics;
  client_options.trace = options.trace;
  client_options.spans = options.spans;

  RoundTracker rounds(p);
  PseudocycleTracker pseudocycles(p, m);

  std::vector<std::unique_ptr<Alg1Process>> processes;
  processes.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    // pqra-lint: allow(hotpath-alloc) — scenario setup, before sim.run()
    processes.push_back(std::make_unique<Alg1Process>(
        i, p, op, simulator, transport, static_cast<net::NodeId>(n + i),
        quorums, master.fork(100 + i), client_options,
        options.snapshot_reads, history.get()));
  }

  Alg1Result result;
  std::size_t correct_count = 0;
  std::vector<bool> was_correct(p, false);

  auto on_iteration_end = [&](std::size_t i) {
    bool now = processes[i]->correct();
    if (now != was_correct[i]) {
      was_correct[i] = now;
      if (now) {
        ++correct_count;
      } else {
        --correct_count;
      }
    }
    if (correct_count == p) {
      result.converged = true;
      result.rounds = rounds.rounds_including_partial();
      simulator.request_stop();
      return;
    }
    if (rounds.completed_rounds() >= options.round_cap) {
      result.converged = false;
      result.rounds = rounds.completed_rounds();
      simulator.request_stop();
      return;
    }
    processes[i]->start_iteration();
  };

  for (auto& proc : processes) {
    proc->attach(&rounds, &pseudocycles, on_iteration_end);
  }
  for (auto& proc : processes) proc->start_iteration();

  if (options.max_sim_time.has_value()) {
    simulator.run_until(*options.max_sim_time);
  } else {
    simulator.run();
  }
  if (!result.converged && result.rounds == 0) {
    // Stalled (crashed servers without retries / time wall hit): report what
    // completed.
    result.rounds = rounds.rounds_including_partial();
  }

  result.iterations = rounds.iterations_total();
  result.pseudocycles = pseudocycles.completed();
  result.sim_time = simulator.now();
  result.fingerprint = simulator.fingerprint();
  result.events_processed = simulator.events_processed();
  result.messages = transport.stats();
  for (auto& proc : processes) {
    result.monotone_cache_hits += proc->counters().monotone_cache_hits;
    result.retries += proc->counters().retries;
    result.read_latency.merge(proc->read_latency());
    result.write_latency.merge(proc->write_latency());
  }
  result.history = history;

  // End-of-run publication: simulator and executor figures land in the
  // registry only after the event loop stops, so instrumentation cannot
  // perturb event ordering (the determinism test relies on this).
  if (options.metrics != nullptr) {
    namespace n = obs::names;
    obs::Registry& reg = *options.metrics;
    reg.counter(n::kSimEvents, "Events processed by the DES main loop")
        .inc(simulator.events_processed());
    reg.gauge(n::kSimHeapHighWater, "Event-queue high-water mark",
              obs::GaugeMerge::kMax)
        .record_max(static_cast<double>(simulator.queue_high_water()));
    reg.counter(n::kSimQueueBucketResizes,
                "Calendar-queue reorganizations (0 under PQRA_QUEUE=heap)")
        .inc(simulator.queue_bucket_resizes());
    reg.counter(n::kSimEventHeapAllocs,
                "Heap allocations by the event-closure path (arena chunk "
                "growth + oversize fallbacks)")
        .inc(simulator.alloc_stats().heap_allocations());
    reg.gauge(n::kSimEventBlocksHighWater,
              "Event-arena live-block high-water mark",
              obs::GaugeMerge::kMax)
        .record_max(static_cast<double>(simulator.alloc_stats().blocks_high_water));
    reg.gauge(n::kSimTime, "Simulated time at end of run")
        .set(simulator.now());
    reg.gauge(n::kAlg1Rounds, "Rounds until convergence (or the cap)")
        .set(static_cast<double>(result.rounds));
    reg.gauge(n::kAlg1Pseudocycles, "Completed pseudocycles (§7)")
        .set(static_cast<double>(result.pseudocycles));
    reg.gauge(n::kAlg1Converged, "1 if the run converged, else 0")
        .set(result.converged ? 1.0 : 0.0);
    if (options.spans != nullptr) options.spans->publish(reg);
    if (options.flight_recorder != nullptr) {
      options.flight_recorder->publish(reg);
    }
    if (options.profiler != nullptr) {
      // Only the deterministic fire counts enter the registry; wall-time
      // attribution stays in the profiler (--profile-out), because these
      // bytes are compared across --jobs by the determinism tests.
      reg.counter(n::kProfileFires, "Events fired with a profiler attached")
          .inc(options.profiler->total_fires());
      for (std::size_t t = 0; t < sim::kNumEventTags; ++t) {
        reg.counter(n::kProfileFiresByTag[t],
                    "Events fired with this tag (see sim::EventTag)")
            .inc(options.profiler->tag_stats(static_cast<sim::EventTag>(t))
                     .fires);
      }
    }
  }
  return result;
}

}  // namespace pqra::iter
