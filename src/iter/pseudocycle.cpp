#include "iter/pseudocycle.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pqra::iter {

PseudocycleTracker::PseudocycleTracker(std::size_t num_processes,
                                       std::size_t num_components)
    : num_components_(num_components),
      target_ts_(num_components, 0),
      first_write_(num_components, 0),
      good_(num_processes, false),
      good_remaining_(num_processes) {
  PQRA_REQUIRE(num_processes >= 1 && num_components >= 1,
               "degenerate configuration");
}

void PseudocycleTracker::on_write(std::size_t j, core::Timestamp ts) {
  PQRA_REQUIRE(j < num_components_, "component index out of range");
  PQRA_REQUIRE(ts > 0, "writes carry positive timestamps");
  if (first_write_[j] == 0) first_write_[j] = ts;
}

bool PseudocycleTracker::on_iteration(
    std::size_t proc, const std::vector<core::Timestamp>& read_ts) {
  PQRA_REQUIRE(proc < good_.size(), "process index out of range");
  PQRA_REQUIRE(read_ts.size() == num_components_,
               "iteration must report one read per register");
  if (!good_[proc]) {
    bool good = true;
    for (std::size_t j = 0; j < num_components_; ++j) {
      if (read_ts[j] < target_ts_[j]) {
        good = false;
        break;
      }
    }
    if (good) {
      good_[proc] = true;
      --good_remaining_;
    }
  }
  if (good_remaining_ == 0) {
    close_pseudocycle();
    return true;
  }
  return false;
}

void PseudocycleTracker::close_pseudocycle() {
  ++completed_;
  for (std::size_t j = 0; j < num_components_; ++j) {
    // A register not written during this pseudocycle keeps its old target
    // (cannot happen in Alg. 1, where owners write every iteration, but the
    // tracker stays safe for other drivers).
    if (first_write_[j] != 0) target_ts_[j] = first_write_[j];
    first_write_[j] = 0;
  }
  std::fill(good_.begin(), good_.end(), false);
  good_remaining_ = good_.size();
}

}  // namespace pqra::iter
