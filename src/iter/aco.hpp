#pragma once

/// \file aco.hpp
/// Asynchronously contracting operators (Üresin & Dubois, §5).
///
/// An AcoOperator describes the function F : S -> S being iterated, one
/// vector component at a time, over byte-encoded component values.  The
/// fixed-point oracle mirrors the paper's experimental methodology: "the
/// simulation compares each process's local copy ... against the precomputed
/// correct answer" (§7).  Implementations encode/decode through
/// util/codec.hpp.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/register_types.hpp"

namespace pqra::iter {

using core::Value;

class AcoOperator {
 public:
  virtual ~AcoOperator() = default;

  /// m, the number of vector components (== number of shared registers).
  virtual std::size_t num_components() const = 0;

  /// Component i of the initial vector (must lie in D(0)).
  virtual Value initial(std::size_t i) const = 0;

  /// F_i applied to the full vector \p x (x[j] is the used view of
  /// component j).
  virtual Value apply(std::size_t i, const std::vector<Value>& x) const = 0;

  /// Equality of two encodings of component i (override for tolerance-based
  /// comparison, e.g. floating-point solvers).
  virtual bool component_equal(std::size_t /*i*/, const Value& a,
                               const Value& b) const {
    return a == b;
  }

  /// Component i of the precomputed fixed point of F.
  virtual const Value& fixed_point(std::size_t i) const = 0;

  /// True when \p v has reached the fixed point of component i.
  virtual bool is_fixed(std::size_t i, const Value& v) const {
    return component_equal(i, v, fixed_point(i));
  }

  /// Per-process termination test given the process's freshly computed value
  /// of component i and the full view it was computed from.  The default is
  /// the paper's §7 rule (compare against the precomputed fixed point);
  /// operators whose goal is a relation between components — approximate
  /// agreement's "all values within epsilon" — override this instead.
  virtual bool locally_converged(std::size_t i, const Value& own,
                                 const std::vector<Value>& view) const {
    (void)view;
    return is_fixed(i, own);
  }

  /// M: the worst-case number of pseudocycles to convergence, when known
  /// (e.g. ceil(log2 d) for APSP on a graph of diameter d).
  virtual std::optional<std::size_t> max_pseudocycles() const {
    return std::nullopt;
  }

  /// The contraction boxes D(0) ⊇ D(1) ⊇ ... of the ACO definition
  /// ([C1]-[C3] in §5): returns true when \p v lies in D(K)_i, the i-th
  /// factor of the K-th box.  Operators that can compute their boxes
  /// override this, which turns the Theorem 2 proof invariant — after
  /// pseudocycle K the computed vector lies in D(K) — into a checkable
  /// runtime assertion (see run_update_sequence's check_boxes option).
  /// The default "everything is in every box" keeps the check vacuous for
  /// operators without a box oracle.
  virtual bool box_contains(std::size_t K, std::size_t i,
                            const Value& v) const {
    (void)K;
    (void)i;
    (void)v;
    return true;
  }

  /// True when box_contains is a real oracle (not the vacuous default).
  virtual bool has_box_oracle() const { return false; }

  virtual std::string name() const = 0;
};

}  // namespace pqra::iter
