#pragma once

/// \file parallel_runner.hpp
/// Worker pool for independent seeded replications.
///
/// Experiments in this repo are Monte Carlo estimates over R replications,
/// each a pure function of its seed: fork a decorrelated Rng stream, build a
/// private Simulator plus obs::Registry shard, run, return a result struct.
/// Runs never share mutable state, so they parallelise embarrassingly — the
/// only subtlety is keeping the OUTPUT deterministic.  ParallelRunner fixes
/// that by contract:
///
///   - work is handed out by index; which worker executes which index is
///     scheduling noise and must not matter;
///   - results land in a slot vector at their index, so map() returns them
///     in run order no matter the completion order;
///   - callers merge side outputs (metric shards, traces) AFTER map()
///     returns, iterating the result vector in index order.
///
/// Under that discipline `--jobs N` is byte-identical to `--jobs 1` — the
/// determinism regression in tests/ holds the CLI to exactly that.
///
/// jobs == 1 runs inline on the calling thread (no pool, no synchronisation)
/// so the sequential path stays exactly as debuggable as before.
///
/// The pool is NOT a general task graph: one blocking batch at a time, no
/// nesting, no work stealing.  Replication counts are tens-to-thousands and
/// each run is milliseconds-to-seconds, so a dead-simple shared-counter loop
/// is both sufficient and easy to reason about under TSan.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace pqra::sim {

/// Picks a worker count for `--jobs 0` / unset: hardware concurrency,
/// clamped to [1, 64] (hardware_concurrency() may return 0).
std::size_t default_jobs();

class ParallelRunner {
 public:
  /// \p jobs: number of worker threads; 0 means default_jobs().  Workers are
  /// spawned lazily on the first batch that needs them, so constructing a
  /// runner you end up using with single-run batches costs nothing.
  explicit ParallelRunner(std::size_t jobs = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  std::size_t jobs() const { return jobs_; }

  /// Runs fn(0) .. fn(count - 1), each exactly once, distributed over the
  /// pool; blocks until all complete.  Indices are claimed from a shared
  /// counter, so they start in roughly ascending order but COMPLETE in any
  /// order — fn must not depend on cross-index ordering.  If any invocation
  /// throws, the batch still drains (every index runs) and the exception for
  /// the LOWEST failing index is rethrown — deterministic, jobs-invariant
  /// error reporting.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

  /// Deterministic fan-out/fan-in: returns {fn(0), ..., fn(count - 1)} in
  /// index order regardless of jobs or completion order.  R must be
  /// move-constructible.
  template <typename R>
  std::vector<R> map(std::size_t count,
                     const std::function<R(std::size_t)>& fn) {
    std::vector<std::optional<R>> slots(count);
    for_each_index(count,
                   [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(count);
    for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  void worker_loop();
  void ensure_workers();

  const std::size_t jobs_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for a batch / shutdown
  std::condition_variable done_cv_;  // for_each_index waits for drain
  // Current batch, valid while batch_open_: indices [next_, count_) are
  // unclaimed, in_flight_ counts claimed-but-unfinished ones.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t in_flight_ = 0;
  bool batch_open_ = false;
  bool shutdown_ = false;
  // Lowest-index failure of the current batch.
  std::size_t error_index_ = 0;
  std::exception_ptr error_;

  std::vector<std::thread> workers_;  // spawned on first multi-run batch
};

}  // namespace pqra::sim
