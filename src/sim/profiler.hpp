#pragma once

/// \file profiler.hpp
/// DES self-profiler: per-event-type fire counts plus wall-time and
/// simulated-time attribution for the event loop.
///
/// Every scheduled event carries an EventTag (schedule sites pick one; the
/// untagged overloads default to kGeneric).  When a Profiler is attached,
/// Simulator::step() times each callback with std::chrono::steady_clock and
/// reports (tag, wall ns, simulated-time advance) here; with no profiler
/// attached the hot loop takes a single branch and no clock reads, so
/// profiling costs nothing when off (the ≤5%-regression budget in
/// BENCH_PR6.json is measured with it off).
///
/// Attribution is the baseline data the ROADMAP's calendar-queue work will
/// be judged against: which event types dominate wall time, and how far
/// each fire advances virtual time (the event-horizon distribution a
/// calendar queue must bucket well).
///
/// Layering: sim links only util, so this file reimplements the 64-bucket
/// base-2 histogram layout of obs::Histogram (same kNumBuckets/kBias;
/// tests/sim/profiler_test.cpp pins the equivalence) instead of using it.
/// Wall times are inherently nondeterministic, so they are exported *only*
/// through write_json (`experiment_cli --profile-out`) — never into the
/// metrics registry, whose bytes the determinism tests compare.  The
/// deterministic fire counts are published separately by the callers that
/// own a registry (iter/alg1_des.cpp) under names::kProfileFires*.

#include <cstdint>
#include <iosfwd>

namespace pqra::sim {

/// Why an event was scheduled.  Values index names::kProfileFiresByTag.
enum class EventTag : std::uint8_t {
  kGeneric = 0,     ///< untagged schedule sites
  kMsgDeliver = 1,  ///< SimTransport message delivery
  kRetryTimer = 2,  ///< client retry/backoff timer
  kDeadline = 3,    ///< client operation deadline
  kGossip = 4,      ///< server anti-entropy tick
  kFault = 5,       ///< FaultPlan installation (crash/recover/outage/...)
  kWorkload = 6,    ///< workload drivers (clients issuing ops)
  kProbe = 7,       ///< invariant probes (tools/explore, spec probes)
};
inline constexpr std::size_t kNumEventTags = 8;

const char* event_tag_name(EventTag tag);

class Profiler {
 public:
  /// Same layout as obs::Histogram: bucket i counts frexp exponents
  /// i - kBias, covering ~[2^-17, 2^46).
  static constexpr std::size_t kNumBuckets = 64;
  static constexpr int kBias = 17;

  struct TagStats {
    std::uint64_t fires = 0;
    std::uint64_t wall_ns = 0;     ///< total callback wall time
    double sim_advance = 0.0;      ///< total virtual-time advance on fire
  };

  /// O(1), allocation-free (hot-path lint scope): called by
  /// Simulator::step() once per fired event.
  void on_event(EventTag tag, std::uint64_t wall_ns, double sim_advance);

  const TagStats& tag_stats(EventTag tag) const {
    return per_tag_[static_cast<std::size_t>(tag)];
  }
  std::uint64_t total_fires() const { return fires_; }
  std::uint64_t total_wall_ns() const { return wall_ns_; }

  std::uint64_t wall_bucket(std::size_t i) const { return wall_buckets_[i]; }
  std::uint64_t advance_bucket(std::size_t i) const {
    return advance_buckets_[i];
  }

  /// Inclusive upper bound of bucket \p i (+inf for the last) — numerically
  /// identical to obs::Histogram::bucket_upper_bound.
  static double bucket_upper_bound(std::size_t i);

  /// One JSON object: totals, per-tag attribution, and the two sparse
  /// histograms (wall ns per fire; simulated-time advance per fire).
  /// Wall fields make the bytes nondeterministic by design — route them to
  /// `--profile-out` only, never into determinism-compared outputs.
  void write_json(std::ostream& out) const;

 private:
  static std::size_t bucket_index(double x);

  TagStats per_tag_[kNumEventTags] = {};
  std::uint64_t fires_ = 0;
  std::uint64_t wall_ns_ = 0;
  std::uint64_t wall_buckets_[kNumBuckets] = {};
  std::uint64_t advance_buckets_[kNumBuckets] = {};
};

}  // namespace pqra::sim
