#pragma once

/// \file event_fn.hpp
/// Allocation-free event callbacks for the discrete-event simulator.
///
/// The schedule→fire hot path runs tens of millions of times per experiment
/// (Figure 2 alone), and std::function heap-allocates any capture larger than
/// its tiny internal buffer — a Message-carrying delivery lambda always
/// missed it.  EventFn fixes the storage contract:
///
///   - captures up to kInlineBytes live *inside* the event (the common case:
///     a transport delivery closure with its Message fits), so scheduling
///     performs zero heap allocations;
///   - larger captures are placed in fixed-size blocks from an EventArena, a
///     slab allocator with a free list — blocks are recycled event-to-event,
///     so steady state performs zero heap allocations there too;
///   - captures larger than a block fall back to operator new and are
///     counted, so "zero allocations per event" is a number a test can
///     assert (see EventArena::Stats and Simulator::alloc_stats()).
///
/// EventFn is move-only and single-shot in spirit (the simulator invokes it
/// once and destroys it), but invocation does not consume it.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace pqra::sim {

/// Slab allocator for event captures that do not fit inline.  Carves
/// fixed-size blocks out of chunked slabs and recycles them through a free
/// list; only chunk growth and oversize captures touch the global heap, and
/// both are counted.  Not thread-safe — each Simulator owns one.
class EventArena {
 public:
  /// Block size: covers every closure in the repository today (the largest,
  /// a fault-plan event with its partition groups, is well under this) with
  /// room for growth.  Bigger captures still work via the counted fallback.
  static constexpr std::size_t kBlockBytes = 256;
  /// Blocks per chunk: one heap allocation buys 64 recyclable blocks.
  static constexpr std::size_t kBlocksPerChunk = 64;

  /// Allocation-path tallies; the unit tests assert the zero-allocation
  /// claim against these instead of trusting inspection.
  struct Stats {
    std::uint64_t inline_events = 0;    ///< captures stored inside the event
    std::uint64_t arena_events = 0;     ///< captures placed in slab blocks
    std::uint64_t oversize_events = 0;  ///< captures > kBlockBytes (heap)
    std::uint64_t chunks_allocated = 0; ///< slab growth heap allocations
    std::size_t blocks_live = 0;        ///< slab blocks currently in use
    std::size_t blocks_high_water = 0;  ///< max blocks ever in use at once

    /// Heap allocations attributable to event scheduling.
    std::uint64_t heap_allocations() const {
      return chunks_allocated + oversize_events;
    }
  };

  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  void* allocate(std::size_t bytes) {
    if (bytes > kBlockBytes) {
      ++stats_.oversize_events;
      return ::operator new(bytes, std::align_val_t{alignof(std::max_align_t)});
    }
    ++stats_.arena_events;
    if (free_ == nullptr) grow();
    FreeNode* node = free_;
    free_ = node->next;
    ++stats_.blocks_live;
    if (stats_.blocks_live > stats_.blocks_high_water) {
      stats_.blocks_high_water = stats_.blocks_live;
    }
    return node;
  }

  void deallocate(void* p, std::size_t bytes) {
    if (bytes > kBlockBytes) {
      ::operator delete(p, std::align_val_t{alignof(std::max_align_t)});
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_;
    free_ = node;
    --stats_.blocks_live;
  }

  void note_inline() { ++stats_.inline_events; }

  const Stats& stats() const { return stats_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  struct alignas(std::max_align_t) Block {
    std::byte bytes[kBlockBytes];
  };

  void grow() {
    // pqra-lint: allow(hotpath-alloc) — this IS the counted arena growth
    chunks_.push_back(std::make_unique<Block[]>(kBlocksPerChunk));
    ++stats_.chunks_allocated;
    Block* chunk = chunks_.back().get();
    for (std::size_t i = kBlocksPerChunk; i > 0; --i) {
      auto* node = reinterpret_cast<FreeNode*>(&chunk[i - 1]);
      node->next = free_;
      free_ = node;
    }
  }

  std::vector<std::unique_ptr<Block[]>> chunks_;
  FreeNode* free_ = nullptr;
  Stats stats_;
};

/// Move-only `void()` callable with a 64-byte inline buffer; captures that
/// do not fit are stored in EventArena blocks.  See the file comment for the
/// storage contract.
class EventFn {
 public:
  /// Inline capacity.  Sized so the hottest closure in the system — the
  /// SimTransport delivery lambda carrying a whole net::Message — stays
  /// inline; the event heap moves events with one indirect call (or a plain
  /// memcpy for trivially copyable captures).
  static constexpr std::size_t kInlineBytes = 64;

  EventFn() noexcept : vt_(nullptr) {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f, EventArena& arena) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "event callback must be callable with no arguments");
    if constexpr (stores_inline<Fn>()) {
      ::new (static_cast<void*>(store_.inline_bytes)) Fn(std::forward<F>(f));
      arena.note_inline();
      vt_ = inline_vtable<Fn>();
    } else {
      void* p = arena.allocate(sizeof(Fn));
      ::new (p) Fn(std::forward<F>(f));
      store_.ext.ptr = p;
      store_.ext.arena = &arena;
      vt_ = external_vtable<Fn>();
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { vt_->invoke(object()); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void* obj);
    /// Move-construct at `to` from `from`, destroy `from`.  nullptr means
    /// the capture is trivially copyable: relocation is a memcpy.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* obj);
    std::size_t size;  ///< sizeof the stored capture (arena bookkeeping)
    bool is_inline;
  };

  template <typename Fn>
  static constexpr bool stores_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const VTable* inline_vtable() {
    static constexpr VTable vt{
        [](void* obj) { (*static_cast<Fn*>(obj))(); },
        std::is_trivially_copyable_v<Fn>
            ? nullptr
            : +[](void* from, void* to) {
                auto* src = static_cast<Fn*>(from);
                ::new (to) Fn(std::move(*src));
                src->~Fn();
              },
        [](void* obj) { static_cast<Fn*>(obj)->~Fn(); },
        sizeof(Fn),
        /*is_inline=*/true,
    };
    return &vt;
  }

  template <typename Fn>
  static const VTable* external_vtable() {
    static constexpr VTable vt{
        [](void* obj) { (*static_cast<Fn*>(obj))(); },
        nullptr,  // external storage relocates by pointer swap, never by move
        [](void* obj) { static_cast<Fn*>(obj)->~Fn(); },
        sizeof(Fn),
        /*is_inline=*/false,
    };
    return &vt;
  }

  void* object() noexcept {
    return vt_->is_inline ? static_cast<void*>(store_.inline_bytes)
                          : store_.ext.ptr;
  }

  void steal(EventFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ == nullptr) return;
    if (!vt_->is_inline) {
      store_.ext = other.store_.ext;
    } else if (vt_->relocate == nullptr) {
      std::memcpy(store_.inline_bytes, other.store_.inline_bytes, vt_->size);
    } else {
      vt_->relocate(other.store_.inline_bytes, store_.inline_bytes);
    }
    other.vt_ = nullptr;
  }

  void reset() noexcept {
    if (vt_ == nullptr) return;
    if (vt_->is_inline) {
      vt_->destroy(store_.inline_bytes);
    } else {
      vt_->destroy(store_.ext.ptr);
      store_.ext.arena->deallocate(store_.ext.ptr, vt_->size);
    }
    vt_ = nullptr;
  }

  union Store {
    Store() {}  // NOLINT(modernize-use-equals-default) — union member
    alignas(std::max_align_t) std::byte inline_bytes[kInlineBytes];
    struct {
      void* ptr;
      EventArena* arena;
    } ext;
  } store_;
  const VTable* vt_;
};

}  // namespace pqra::sim
