#pragma once

/// \file delay_model.hpp
/// Message-delay distributions for the simulated network.
///
/// The paper's synchronous executions use constant delays and its
/// asynchronous executions use exponentially distributed delays (§7); both
/// are provided, plus uniform and shifted-lognormal variants for wider
/// experimentation.

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace pqra::sim {

/// Simulated time (abstract units; one constant message delay = 1.0).
using Time = double;

/// Samples one network delay per message.
class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Returns a non-negative delay.
  virtual Time sample(util::Rng& rng) = 0;

  /// Human-readable description for logs and experiment records.
  virtual std::string describe() const = 0;
};

/// Every message takes exactly \p delay — the synchronous model.
std::unique_ptr<DelayModel> make_constant_delay(Time delay = 1.0);

/// Exponentially distributed delays with the given mean — the asynchronous
/// model of §7.
std::unique_ptr<DelayModel> make_exponential_delay(Time mean = 1.0);

/// Uniform delays on [lo, hi].
std::unique_ptr<DelayModel> make_uniform_delay(Time lo, Time hi);

/// min_delay + Lognormal(mu, sigma) — heavy-tailed delays for stress tests.
std::unique_ptr<DelayModel> make_lognormal_delay(Time min_delay, double mu,
                                                 double sigma);

}  // namespace pqra::sim
