#pragma once

/// \file delay_model.hpp
/// Message-delay distributions for the simulated network.
///
/// The paper's synchronous executions use constant delays and its
/// asynchronous executions use exponentially distributed delays (§7); both
/// are provided, plus uniform and shifted-lognormal variants for wider
/// experimentation.

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace pqra::sim {

/// Simulated time (abstract units; one constant message delay = 1.0).
using Time = double;

/// Samples one network delay per message.
class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Returns a non-negative delay.
  virtual Time sample(util::Rng& rng) = 0;

  /// Human-readable description for logs and experiment records.
  virtual std::string describe() const = 0;
};

/// Every message takes exactly \p delay — the synchronous model.
std::unique_ptr<DelayModel> make_constant_delay(Time delay = 1.0);

/// Exponentially distributed delays with the given mean — the asynchronous
/// model of §7.
std::unique_ptr<DelayModel> make_exponential_delay(Time mean = 1.0);

/// Uniform delays on [lo, hi].
std::unique_ptr<DelayModel> make_uniform_delay(Time lo, Time hi);

/// min_delay + Lognormal(mu, sigma) — heavy-tailed delays for stress tests.
std::unique_ptr<DelayModel> make_lognormal_delay(Time min_delay, double mu,
                                                 double sigma);

/// Value-type description of a delay model, so a schedule can be mutated,
/// serialized into a replay file and rebuilt bit-identically (the
/// pqra_explore fuzzer's delay-model mutation dimension).  Grammar, using
/// util::format_double for numbers:
///
///   constant:D   exp:MEAN   uniform:LO:HI   lognormal:MIN:MU:SIGMA
struct DelaySpec {
  enum class Kind : std::uint8_t {
    kConstant,
    kExponential,
    kUniform,
    kLognormal,
  };

  Kind kind = Kind::kConstant;
  /// Parameter meaning by kind: constant {a=delay}; exponential {a=mean};
  /// uniform {a=lo, b=hi}; lognormal {a=min, b=mu, c=sigma}.
  double a = 1.0;
  double b = 0.0;
  double c = 0.0;

  /// Builds the model (same factories as above; validates parameters).
  std::unique_ptr<DelayModel> make() const;

  std::string serialize() const;

  /// Parses the grammar above; throws std::logic_error on bad input.
  static DelaySpec parse(const std::string& text);

  friend bool operator==(const DelaySpec& x, const DelaySpec& y) {
    return x.kind == y.kind && x.a == y.a && x.b == y.b && x.c == y.c;
  }
  friend bool operator!=(const DelaySpec& x, const DelaySpec& y) {
    return !(x == y);
  }
};

}  // namespace pqra::sim
