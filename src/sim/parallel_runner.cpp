#include "sim/parallel_runner.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pqra::sim {

std::size_t default_jobs() {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<std::size_t>(hw, 64);
}

ParallelRunner::ParallelRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ParallelRunner::ensure_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(jobs_);
  for (std::size_t i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ParallelRunner::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return shutdown_ || (batch_open_ && next_ < count_);
    });
    if (shutdown_) return;
    while (next_ < count_) {
      const std::size_t index = next_++;
      ++in_flight_;
      lock.unlock();
      std::exception_ptr err;
      try {
        (*fn_)(index);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err && (!error_ || index < error_index_)) {
        error_ = err;
        error_index_ = index;
      }
      --in_flight_;
    }
    if (in_flight_ == 0) done_cv_.notify_all();
  }
}

void ParallelRunner::for_each_index(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  PQRA_REQUIRE(fn != nullptr, "ParallelRunner: null work function");
  if (count == 0) return;

  // Inline fast path: sequential semantics, zero synchronisation, and the
  // caller's stack in every frame (debuggers, sanitizer reports).
  if (jobs_ == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::unique_lock lock(mutex_);
  PQRA_CHECK(!batch_open_, "ParallelRunner batches must not nest");
  ensure_workers();
  fn_ = &fn;
  count_ = count;
  next_ = 0;
  in_flight_ = 0;
  error_ = nullptr;
  error_index_ = 0;
  batch_open_ = true;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return next_ >= count_ && in_flight_ == 0; });
  batch_open_ = false;
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace pqra::sim
