#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

#include "util/check.hpp"

namespace pqra::sim {

namespace {

/// One FNV-1a step folding a 64-bit word byte-wise would cost 8 multiplies;
/// a single multiply-xor per word keeps the fingerprint off the hot path's
/// critical cost while still mixing every bit of (time, seq).
inline std::uint64_t fold(std::uint64_t h, std::uint64_t word) {
  return (h ^ word) * 0x100000001b3ULL;  // FNV-1a prime
}

}  // namespace

void Simulator::push_event(Time t, EventTag tag, EventFn fn) {
  PQRA_REQUIRE(static_cast<bool>(fn), "event callback must be callable");
  heap_.push_back(Event{t, next_seq_++, std::move(fn), tag});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (heap_.size() > heap_high_water_) heap_high_water_ = heap_.size();
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  const Time prev = now_;
  now_ = ev.t;
  ++processed_;
  fingerprint_ = fold(fold(fingerprint_, std::bit_cast<std::uint64_t>(ev.t)),
                      ev.seq);
  if (profiler_ == nullptr) {
    ev.fn();
  } else {
    // steady_clock (never system_clock: docs/STATIC_ANALYSIS.md) around the
    // callback only — heap maintenance stays unattributed so tag costs are
    // comparable across queue implementations (ROADMAP calendar queue).
    const auto wall_start = std::chrono::steady_clock::now();
    ev.fn();
    const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
    profiler_->on_event(ev.tag, static_cast<std::uint64_t>(wall_ns),
                        ev.t - prev);
  }
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (!stop_requested_ && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time t) {
  PQRA_REQUIRE(t >= now_, "cannot run into the past");
  std::size_t n = 0;
  while (!stop_requested_ && !heap_.empty() && next_event_time() <= t) {
    step();
    ++n;
  }
  if (!stop_requested_ && now_ < t) now_ = t;
  return n;
}

}  // namespace pqra::sim
