#include "sim/simulator.hpp"

#include <bit>
#include <chrono>
#include <utility>

#include "util/check.hpp"

namespace pqra::sim {

namespace {

/// One FNV-1a step folding a 64-bit word byte-wise would cost 8 multiplies;
/// a single multiply-xor per word keeps the fingerprint off the hot path's
/// critical cost while still mixing every bit of (time, seq).
inline std::uint64_t fold(std::uint64_t h, std::uint64_t word) {
  return (h ^ word) * 0x100000001b3ULL;  // FNV-1a prime
}

}  // namespace

void Simulator::push_event(Time t, std::uint64_t seq, EventTag tag,
                           EventFn fn) {
  PQRA_REQUIRE(static_cast<bool>(fn), "event callback must be callable");
  queue_.push(t, seq, tag, std::move(fn));
  if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
}

void Simulator::note_subevent(Time t, std::uint64_t seq, EventTag tag) {
  PQRA_CHECK(t == now_, "subevents fire inside the current event only");
  ++processed_;
  fingerprint_ =
      fold(fold(fingerprint_, std::bit_cast<std::uint64_t>(t)), seq);
  // Zero wall / zero advance: the carrying event was already timed as one
  // callback, and equal-time entries advance the clock by nothing.
  if (profiler_ != nullptr) profiler_->on_event(tag, 0, 0.0);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Item ev = queue_.pop();
  const Time prev = now_;
  now_ = ev.t;
  ++processed_;
  fingerprint_ = fold(fold(fingerprint_, std::bit_cast<std::uint64_t>(ev.t)),
                      ev.seq);
  if (profiler_ == nullptr) {
    ev.fn();
  } else {
    // steady_clock (never system_clock: docs/STATIC_ANALYSIS.md) around the
    // callback only — queue maintenance stays unattributed so tag costs are
    // comparable across queue implementations.
    const auto wall_start = std::chrono::steady_clock::now();
    ev.fn();
    const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
    profiler_->on_event(ev.tag, static_cast<std::uint64_t>(wall_ns),
                        ev.t - prev);
  }
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (!stop_requested_ && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time t) {
  PQRA_REQUIRE(t >= now_, "cannot run into the past");
  std::size_t n = 0;
  while (!stop_requested_ && !queue_.empty() && queue_.min_time() <= t) {
    step();
    ++n;
  }
  if (!stop_requested_ && now_ < t) now_ = t;
  return n;
}

}  // namespace pqra::sim
