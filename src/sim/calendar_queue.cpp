#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace pqra::sim {

namespace {

/// Strict (time, seq) order inverted for std::push_heap/std::pop_heap so the
/// *earliest* item surfaces — identical tie-break to the original Simulator
/// heap, which is what keeps pop sequences byte-identical across modes.
struct Later {
  bool operator()(const EventQueue::Item& a, const EventQueue::Item& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

// Day indices saturate here (~4.6e18) so `t * inv_width_` can never overflow
// the uint64 cast even for absurd horizons or a microscopic width; every
// saturated item lands in the far heap, which orders by (t, seq) exactly.
constexpr std::uint64_t kMaxDay = std::uint64_t{1} << 62;

// Consecutive empty days scanned linearly before jumping straight to the
// day of the true minimum (an O(buckets) sweep).  Keeps sparse schedules —
// e.g. a lone retry timer far in the future — from walking the calendar one
// empty day at a time.
constexpr std::uint64_t kMaxEmptyScan = 64;

constexpr std::size_t kMinBuckets = 16;

// Retuned width targets ~2 items per day at steady state (Brown's rule of
// thumb): wide enough that a day usually holds the next few pops, narrow
// enough that in-day heap ops stay O(1)-ish.
constexpr double kWidthGapFactor = 2.0;

}  // namespace

QueueMode queue_mode_from_env() {
  // Construction-time only; the hot path never touches the environment.
  const char* v = std::getenv("PQRA_QUEUE");  // NOLINT(concurrency-mt-unsafe)
  if (v != nullptr && std::strcmp(v, "heap") == 0) return QueueMode::kHeap;
  return QueueMode::kCalendar;
}

EventQueue::EventQueue(QueueMode mode) : mode_(mode) {
  if (mode_ == QueueMode::kCalendar) {
    buckets_.resize(kMinBuckets);
    bucket_mask_ = kMinBuckets - 1;
  }
}

std::uint64_t EventQueue::day_of(Time t) const {
  const double d = t * inv_width_;
  if (d >= static_cast<double>(kMaxDay)) return kMaxDay;
  if (d <= 0.0) return 0;
  return static_cast<std::uint64_t>(d);
}

void EventQueue::push(Time t, std::uint64_t seq, EventTag tag, EventFn fn) {
  if (mode_ == QueueMode::kHeap) {
    heap_.push_back(Item{t, seq, std::move(fn), tag});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++size_;
    return;
  }
  if (size_ == 0) {
    // Empty calendar: re-anchor the cursor on the incoming item so a long
    // quiet gap does not have to be scanned day by day.
    cur_day_ = day_of(t);
    located_ = false;
  }
  push_calendar(Item{t, seq, std::move(fn), tag});
  ++size_;
  // Grow in 4x steps: each resize moves every live item, so a run ramping
  // from empty to its steady-state population pays half as many rebuilds as
  // a 2x ramp would, at the cost of briefly under-filled buckets.
  if (size_ > 2 * buckets_.size()) resize(buckets_.size() * 4);
}

void EventQueue::push_calendar(Item item) {
  const std::uint64_t day = day_of(item.t);
  if (day < cur_day_) {
    // Legal when now <= t < (located minimum): the cursor had already walked
    // past this day's start.  Pull it back; items left in buckets with later
    // days simply wait for the cursor again (correct, just a re-scan).
    cur_day_ = day;
    located_ = false;
  } else if (day == cur_day_) {
    located_ = false;  // may beat the cached minimum
  }
  // day > cur_day_ cannot beat a located minimum (its time is >= the start
  // of a strictly later day), so the cache stays valid.
  if (day >= cur_day_ + buckets_.size()) {
    far_.push_back(std::move(item));
    std::push_heap(far_.begin(), far_.end(), Later{});
    return;
  }
  std::vector<Item>& b = buckets_[day & bucket_mask_];
  b.push_back(std::move(item));
  std::push_heap(b.begin(), b.end(), Later{});
}

void EventQueue::drain_far() {
  while (!far_.empty() && day_of(far_.front().t) < cur_day_ + buckets_.size()) {
    std::pop_heap(far_.begin(), far_.end(), Later{});
    Item item = std::move(far_.back());
    far_.pop_back();
    const std::uint64_t day = day_of(item.t);
    std::vector<Item>& b = buckets_[day & bucket_mask_];
    b.push_back(std::move(item));
    std::push_heap(b.begin(), b.end(), Later{});
  }
}

void EventQueue::locate() {
  if (located_) return;
  std::uint64_t scanned = 0;
  for (;;) {
    std::vector<Item>& b = buckets_[cur_day_ & bucket_mask_];
    if (!b.empty() && day_of(b.front().t) == cur_day_) {
      located_ = true;
      return;
    }
    ++cur_day_;
    drain_far();
    if (++scanned < kMaxEmptyScan) continue;
    // Sparse region: jump the cursor to the day of the true minimum.  The
    // minimum is some bucket's top or the far top (each is a (t, seq) heap).
    scanned = 0;
    const Item* min_item = far_.empty() ? nullptr : &far_.front();
    for (const std::vector<Item>& bucket : buckets_) {
      if (bucket.empty()) continue;
      if (min_item == nullptr || Later{}(*min_item, bucket.front())) {
        min_item = &bucket.front();
      }
    }
    PQRA_CHECK(min_item != nullptr, "locate() on an empty calendar");
    const std::uint64_t jump = day_of(min_item->t);
    if (jump > cur_day_) {
      cur_day_ = jump;
      drain_far();
    }
  }
}

EventQueue::Item EventQueue::pop() {
  PQRA_CHECK(size_ > 0, "pop() on an empty event queue");
  --size_;
  if (mode_ == QueueMode::kHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Item item = std::move(heap_.back());
    heap_.pop_back();
    return item;
  }
  locate();
  std::vector<Item>& b = buckets_[cur_day_ & bucket_mask_];
  std::pop_heap(b.begin(), b.end(), Later{});
  Item item = std::move(b.back());
  b.pop_back();
  located_ = false;
  // Width tuning feeds on the pop-gap stream — a deterministic function of
  // the schedule, so retuned widths (and thus resize points) replay
  // identically run to run.
  if (have_last_pop_) {
    gap_sum_ += item.t - last_pop_t_;
    ++gap_count_;
  }
  last_pop_t_ = item.t;
  have_last_pop_ = true;
  // Shrink with 8x hysteresis (vs the 2x grow trigger) and in 4x steps:
  // the end-of-run drain crosses each halving point exactly once, and a
  // tighter threshold made that tail thrash through O(n) rebuilds whose
  // buckets were about to empty anyway.  Jump-to-min in locate() keeps
  // sparse over-sized calendars cheap in the meantime.
  if (size_ * 8 < buckets_.size() && buckets_.size() > kMinBuckets) {
    resize(std::max(kMinBuckets, buckets_.size() / 4));
  }
  return item;
}

Time EventQueue::min_time() {
  PQRA_CHECK(size_ > 0, "min_time() on an empty event queue");
  if (mode_ == QueueMode::kHeap) return heap_.front().t;
  locate();
  return buckets_[cur_day_ & bucket_mask_].front().t;
}

void EventQueue::resize(std::size_t new_bucket_count) {
  ++bucket_resizes_;
  scratch_.clear();
  for (std::vector<Item>& b : buckets_) {
    for (Item& item : b) scratch_.push_back(std::move(item));
    b.clear();
  }
  for (Item& item : far_) scratch_.push_back(std::move(item));
  far_.clear();
  buckets_.resize(new_bucket_count);
  bucket_mask_ = new_bucket_count - 1;
  if (gap_count_ > 0 && gap_sum_ > 0.0) {
    width_ = (gap_sum_ / static_cast<double>(gap_count_)) * kWidthGapFactor;
    inv_width_ = 1.0 / width_;
    gap_sum_ = 0.0;
    gap_count_ = 0;
  }
  located_ = false;
  if (!scratch_.empty()) {
    Time min_t = scratch_.front().t;
    for (const Item& item : scratch_) min_t = std::min(min_t, item.t);
    cur_day_ = day_of(min_t);
    for (Item& item : scratch_) push_calendar(std::move(item));
  }
  scratch_.clear();
}

}  // namespace pqra::sim
