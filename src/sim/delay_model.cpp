#include "sim/delay_model.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/math.hpp"

namespace pqra::sim {

namespace {

class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(Time delay) : delay_(delay) {
    PQRA_REQUIRE(delay >= 0.0, "delay must be non-negative");
  }

  Time sample(util::Rng&) override { return delay_; }

  std::string describe() const override {
    std::ostringstream os;
    os << "constant(" << delay_ << ")";
    return os.str();
  }

 private:
  Time delay_;
};

class ExponentialDelay final : public DelayModel {
 public:
  explicit ExponentialDelay(Time mean) : mean_(mean) {
    PQRA_REQUIRE(mean > 0.0, "mean must be positive");
  }

  Time sample(util::Rng& rng) override { return rng.exponential(mean_); }

  std::string describe() const override {
    std::ostringstream os;
    os << "exponential(mean=" << mean_ << ")";
    return os.str();
  }

 private:
  Time mean_;
};

class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Time lo, Time hi) : lo_(lo), hi_(hi) {
    PQRA_REQUIRE(lo >= 0.0 && hi >= lo, "need 0 <= lo <= hi");
  }

  Time sample(util::Rng& rng) override {
    return lo_ + (hi_ - lo_) * rng.uniform01();
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "uniform(" << lo_ << ", " << hi_ << ")";
    return os.str();
  }

 private:
  Time lo_;
  Time hi_;
};

class LognormalDelay final : public DelayModel {
 public:
  LognormalDelay(Time min_delay, double mu, double sigma)
      : min_(min_delay), mu_(mu), sigma_(sigma) {
    PQRA_REQUIRE(min_delay >= 0.0, "minimum delay must be non-negative");
    PQRA_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  }

  Time sample(util::Rng& rng) override {
    // Box–Muller; one normal draw per sample is fine here.
    double u1;
    do {
      u1 = rng.uniform01();
    } while (u1 <= 0.0);
    double u2 = rng.uniform01();
    double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return min_ + std::exp(mu_ + sigma_ * z);
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "lognormal(min=" << min_ << ", mu=" << mu_ << ", sigma=" << sigma_
       << ")";
    return os.str();
  }

 private:
  Time min_;
  double mu_;
  double sigma_;
};

}  // namespace

std::unique_ptr<DelayModel> make_constant_delay(Time delay) {
  // pqra-lint: allow(hotpath-alloc) — construction-time factory
  return std::make_unique<ConstantDelay>(delay);
}

std::unique_ptr<DelayModel> make_exponential_delay(Time mean) {
  // pqra-lint: allow(hotpath-alloc) — construction-time factory
  return std::make_unique<ExponentialDelay>(mean);
}

std::unique_ptr<DelayModel> make_uniform_delay(Time lo, Time hi) {
  // pqra-lint: allow(hotpath-alloc) — construction-time factory
  return std::make_unique<UniformDelay>(lo, hi);
}

std::unique_ptr<DelayModel> make_lognormal_delay(Time min_delay, double mu,
                                                 double sigma) {
  // pqra-lint: allow(hotpath-alloc) — construction-time factory
  return std::make_unique<LognormalDelay>(min_delay, mu, sigma);
}

std::unique_ptr<DelayModel> DelaySpec::make() const {
  switch (kind) {
    case Kind::kConstant:
      return make_constant_delay(a);
    case Kind::kExponential:
      return make_exponential_delay(a);
    case Kind::kUniform:
      return make_uniform_delay(a, b);
    case Kind::kLognormal:
      return make_lognormal_delay(a, b, c);
  }
  PQRA_REQUIRE(false, "invalid DelaySpec kind");
  return nullptr;
}

std::string DelaySpec::serialize() const {
  switch (kind) {
    case Kind::kConstant:
      return "constant:" + util::format_double(a);
    case Kind::kExponential:
      return "exp:" + util::format_double(a);
    case Kind::kUniform:
      return "uniform:" + util::format_double(a) + ":" +
             util::format_double(b);
    case Kind::kLognormal:
      return "lognormal:" + util::format_double(a) + ":" +
             util::format_double(b) + ":" + util::format_double(c);
  }
  PQRA_REQUIRE(false, "invalid DelaySpec kind");
  return {};
}

DelaySpec DelaySpec::parse(const std::string& text) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ':')) parts.push_back(item);
  auto number = [&](std::size_t i) {
    char* end = nullptr;
    double v = std::strtod(parts[i].c_str(), &end);
    if (end == parts[i].c_str() || *end != '\0') {
      throw std::logic_error("bad delay spec '" + text +
                             "': expected a number");
    }
    return v;
  };
  auto arity = [&](std::size_t n) {
    if (parts.size() != n + 1) {
      throw std::logic_error("bad delay spec '" + text +
                             "': wrong parameter count");
    }
  };
  DelaySpec spec;
  if (parts.empty()) throw std::logic_error("empty delay spec");
  if (parts[0] == "constant") {
    arity(1);
    spec.kind = Kind::kConstant;
    spec.a = number(1);
  } else if (parts[0] == "exp") {
    arity(1);
    spec.kind = Kind::kExponential;
    spec.a = number(1);
  } else if (parts[0] == "uniform") {
    arity(2);
    spec.kind = Kind::kUniform;
    spec.a = number(1);
    spec.b = number(2);
  } else if (parts[0] == "lognormal") {
    arity(3);
    spec.kind = Kind::kLognormal;
    spec.a = number(1);
    spec.b = number(2);
    spec.c = number(3);
  } else {
    throw std::logic_error("bad delay spec '" + text + "': unknown kind");
  }
  return spec;
}

}  // namespace pqra::sim
