#include "sim/delay_model.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace pqra::sim {

namespace {

class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(Time delay) : delay_(delay) {
    PQRA_REQUIRE(delay >= 0.0, "delay must be non-negative");
  }

  Time sample(util::Rng&) override { return delay_; }

  std::string describe() const override {
    std::ostringstream os;
    os << "constant(" << delay_ << ")";
    return os.str();
  }

 private:
  Time delay_;
};

class ExponentialDelay final : public DelayModel {
 public:
  explicit ExponentialDelay(Time mean) : mean_(mean) {
    PQRA_REQUIRE(mean > 0.0, "mean must be positive");
  }

  Time sample(util::Rng& rng) override { return rng.exponential(mean_); }

  std::string describe() const override {
    std::ostringstream os;
    os << "exponential(mean=" << mean_ << ")";
    return os.str();
  }

 private:
  Time mean_;
};

class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Time lo, Time hi) : lo_(lo), hi_(hi) {
    PQRA_REQUIRE(lo >= 0.0 && hi >= lo, "need 0 <= lo <= hi");
  }

  Time sample(util::Rng& rng) override {
    return lo_ + (hi_ - lo_) * rng.uniform01();
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "uniform(" << lo_ << ", " << hi_ << ")";
    return os.str();
  }

 private:
  Time lo_;
  Time hi_;
};

class LognormalDelay final : public DelayModel {
 public:
  LognormalDelay(Time min_delay, double mu, double sigma)
      : min_(min_delay), mu_(mu), sigma_(sigma) {
    PQRA_REQUIRE(min_delay >= 0.0, "minimum delay must be non-negative");
    PQRA_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  }

  Time sample(util::Rng& rng) override {
    // Box–Muller; one normal draw per sample is fine here.
    double u1;
    do {
      u1 = rng.uniform01();
    } while (u1 <= 0.0);
    double u2 = rng.uniform01();
    double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return min_ + std::exp(mu_ + sigma_ * z);
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "lognormal(min=" << min_ << ", mu=" << mu_ << ", sigma=" << sigma_
       << ")";
    return os.str();
  }

 private:
  Time min_;
  double mu_;
  double sigma_;
};

}  // namespace

std::unique_ptr<DelayModel> make_constant_delay(Time delay) {
  // pqra-lint: allow(hotpath-alloc) — construction-time factory
  return std::make_unique<ConstantDelay>(delay);
}

std::unique_ptr<DelayModel> make_exponential_delay(Time mean) {
  // pqra-lint: allow(hotpath-alloc) — construction-time factory
  return std::make_unique<ExponentialDelay>(mean);
}

std::unique_ptr<DelayModel> make_uniform_delay(Time lo, Time hi) {
  // pqra-lint: allow(hotpath-alloc) — construction-time factory
  return std::make_unique<UniformDelay>(lo, hi);
}

std::unique_ptr<DelayModel> make_lognormal_delay(Time min_delay, double mu,
                                                 double sigma) {
  // pqra-lint: allow(hotpath-alloc) — construction-time factory
  return std::make_unique<LognormalDelay>(min_delay, mu, sigma);
}

}  // namespace pqra::sim
