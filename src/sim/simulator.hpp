#pragma once

/// \file simulator.hpp
/// Deterministic discrete-event simulator.
///
/// Events at equal timestamps fire in scheduling order (a monotonically
/// increasing sequence number breaks ties), so a run is a pure function of
/// the seed — this is what makes every experiment in the repository
/// reproducible and every test deterministic.
///
/// The event heap is managed manually (std::push_heap / std::pop_heap over a
/// vector) instead of std::priority_queue so the hot path can *move* events
/// out; Figure 2 alone schedules tens of millions of them.  Callbacks are
/// EventFn (sim/event_fn.hpp), not std::function: small captures live inside
/// the event and oversized ones in a recycled slab, so the schedule→fire
/// path performs zero heap allocations — asserted by tests against
/// alloc_stats(), not just by inspection.

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/delay_model.hpp"
#include "sim/event_fn.hpp"
#include "sim/profiler.hpp"
#include "util/check.hpp"

namespace pqra::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules \p fn to run \p delay after now().  Negative delays are
  /// rejected.
  template <typename F>
  void schedule_in(Time delay, F&& fn) {
    schedule_in(delay, EventTag::kGeneric, std::forward<F>(fn));
  }

  /// Tagged form: \p tag attributes the fire to an event type when a
  /// Profiler is attached (sim/profiler.hpp); otherwise it is a free byte.
  template <typename F>
  void schedule_in(Time delay, EventTag tag, F&& fn) {
    PQRA_REQUIRE(delay >= 0.0, "cannot schedule into the past");
    schedule_at(now_ + delay, tag, std::forward<F>(fn));
  }

  /// Schedules \p fn at absolute time \p t (must be >= now()).
  template <typename F>
  void schedule_at(Time t, F&& fn) {
    schedule_at(t, EventTag::kGeneric, std::forward<F>(fn));
  }

  template <typename F>
  void schedule_at(Time t, EventTag tag, F&& fn) {
    PQRA_REQUIRE(t >= now_, "cannot schedule into the past");
    push_event(t, tag, EventFn(std::forward<F>(fn), arena_));
  }

  /// Attaches (or detaches, nullptr) a self-profiler.  With none attached
  /// step() takes one extra branch and reads no clocks; with one attached
  /// every callback is timed with std::chrono::steady_clock — which is why
  /// the profiler must never feed determinism-compared outputs.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }
  Profiler* profiler() const { return profiler_; }

  /// Runs one event.  Returns false when the queue is empty.
  bool step();

  /// Runs until the queue empties or request_stop() is called.
  /// Returns the number of events processed by this call.
  std::size_t run();

  /// Runs events with time <= \p t (stops earlier if the queue empties or a
  /// stop is requested).  Afterwards now() == t unless stopped.
  std::size_t run_until(Time t);

  /// Makes run()/run_until() return after the current event completes.
  void request_stop() { stop_requested_ = true; }

  bool stop_requested() const { return stop_requested_; }

  /// Clears a previous stop request so the simulation can be resumed.
  void clear_stop() { stop_requested_ = false; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Execution fingerprint: an FNV-1a fold of every fired event's (time,
  /// sequence number) pair, updated as the schedule→fire loop runs.  Two
  /// runs with equal fingerprints (and equal events_processed()) executed
  /// the exact same event schedule, so the schedule-exploration fuzzer can
  /// assert byte-identical replays without recording the schedule itself
  /// (docs/EXPLORATION.md).  Costs two multiplies per event.
  std::uint64_t fingerprint() const { return fingerprint_; }
  /// Largest number of simultaneously pending events so far (the event
  /// heap's high-water mark — the memory footprint the run actually needed).
  std::size_t max_pending_events() const { return heap_high_water_; }

  /// Event-capture allocation tallies (inline vs slab vs counted heap
  /// fallback) — the sibling of max_pending_events() for the allocation
  /// story.  alloc_stats().heap_allocations() == 0 is the zero-allocation
  /// contract the unit tests assert for small captures.
  const EventArena::Stats& alloc_stats() const { return arena_.stats(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    EventFn fn;
    EventTag tag;
  };

  /// Max-heap comparator inverted so the *earliest* event is on top.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void push_event(Time t, EventTag tag, EventFn fn);

  Time next_event_time() const { return heap_.front().t; }

  EventArena arena_;
  std::vector<Event> heap_;
  std::size_t heap_high_water_ = 0;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t fingerprint_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  bool stop_requested_ = false;
  Profiler* profiler_ = nullptr;
};

}  // namespace pqra::sim
