#pragma once

/// \file simulator.hpp
/// Deterministic discrete-event simulator.
///
/// Events at equal timestamps fire in scheduling order (a monotonically
/// increasing sequence number breaks ties), so a run is a pure function of
/// the seed — this is what makes every experiment in the repository
/// reproducible and every test deterministic.
///
/// The event heap is managed manually (std::push_heap / std::pop_heap over a
/// vector) instead of std::priority_queue so the hot path can *move* events
/// out; Figure 2 alone schedules tens of millions of them.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/delay_model.hpp"

namespace pqra::sim {

class Simulator {
 public:
  using EventFn = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules \p fn to run \p delay after now().  Negative delays are
  /// rejected.
  void schedule_in(Time delay, EventFn fn);

  /// Schedules \p fn at absolute time \p t (must be >= now()).
  void schedule_at(Time t, EventFn fn);

  /// Runs one event.  Returns false when the queue is empty.
  bool step();

  /// Runs until the queue empties or request_stop() is called.
  /// Returns the number of events processed by this call.
  std::size_t run();

  /// Runs events with time <= \p t (stops earlier if the queue empties or a
  /// stop is requested).  Afterwards now() == t unless stopped.
  std::size_t run_until(Time t);

  /// Makes run()/run_until() return after the current event completes.
  void request_stop() { stop_requested_ = true; }

  bool stop_requested() const { return stop_requested_; }

  /// Clears a previous stop request so the simulation can be resumed.
  void clear_stop() { stop_requested_ = false; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t events_processed() const { return processed_; }
  /// Largest number of simultaneously pending events so far (the event
  /// heap's high-water mark — the memory footprint the run actually needed).
  std::size_t max_pending_events() const { return heap_high_water_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    EventFn fn;
  };

  /// Max-heap comparator inverted so the *earliest* event is on top.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Time next_event_time() const { return heap_.front().t; }

  std::vector<Event> heap_;
  std::size_t heap_high_water_ = 0;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace pqra::sim
