#pragma once

/// \file simulator.hpp
/// Deterministic discrete-event simulator.
///
/// Events at equal timestamps fire in scheduling order (a monotonically
/// increasing sequence number breaks ties), so a run is a pure function of
/// the seed — this is what makes every experiment in the repository
/// reproducible and every test deterministic.
///
/// The pending-event set is an EventQueue (sim/calendar_queue.hpp): a
/// calendar queue by default, the original binary heap behind
/// PQRA_QUEUE=heap.  Both pop strictly by (time, seq), so the executed
/// schedule — and therefore the fingerprint and every byte of output — is
/// identical across modes.  Callbacks are EventFn (sim/event_fn.hpp), not
/// std::function: small captures live inside the event and oversized ones in
/// a recycled slab, so the schedule→fire path performs zero heap
/// allocations — asserted by tests against alloc_stats(), not just by
/// inspection.
///
/// Batched fan-out support: a caller scheduling k causally-related events
/// (a quorum send) can reserve_seqs(k) up front, schedule only the earliest
/// entry with schedule_at_seq(), and report the rest as they are delivered
/// inline or rescheduled — see net/sim_transport.cpp.  note_subevent() keeps
/// events_processed() and the fingerprint identical to the unbatched
/// schedule, so batching is invisible to every determinism check.

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/delay_model.hpp"
#include "sim/event_fn.hpp"
#include "sim/profiler.hpp"
#include "util/check.hpp"

namespace pqra::sim {

class Simulator {
 public:
  /// Queue implementation from PQRA_QUEUE (calendar unless =heap).
  Simulator() : Simulator(queue_mode_from_env()) {}
  /// Explicit queue choice — used by the differential tests and the
  /// fuzzer's heap/calendar cross-check (tools/explore).
  explicit Simulator(QueueMode mode) : queue_(mode) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules \p fn to run \p delay after now().  Negative delays are
  /// rejected.
  template <typename F>
  void schedule_in(Time delay, F&& fn) {
    schedule_in(delay, EventTag::kGeneric, std::forward<F>(fn));
  }

  /// Tagged form: \p tag attributes the fire to an event type when a
  /// Profiler is attached (sim/profiler.hpp); otherwise it is a free byte.
  template <typename F>
  void schedule_in(Time delay, EventTag tag, F&& fn) {
    PQRA_REQUIRE(delay >= 0.0, "cannot schedule into the past");
    schedule_at(now_ + delay, tag, std::forward<F>(fn));
  }

  /// Schedules \p fn at absolute time \p t (must be >= now()).
  template <typename F>
  void schedule_at(Time t, F&& fn) {
    schedule_at(t, EventTag::kGeneric, std::forward<F>(fn));
  }

  template <typename F>
  void schedule_at(Time t, EventTag tag, F&& fn) {
    PQRA_REQUIRE(t >= now_, "cannot schedule into the past");
    push_event(t, next_seq_++, tag, EventFn(std::forward<F>(fn), arena_));
  }

  /// Reserves \p k consecutive sequence numbers and returns the first.  A
  /// batched fan-out draws its per-entry seqs here at send time, in creation
  /// order, so the executed (time, seq) schedule is exactly what k separate
  /// schedule_at() calls would have produced.
  std::uint64_t reserve_seqs(std::uint64_t k) {
    const std::uint64_t base = next_seq_;
    next_seq_ += k;
    return base;
  }

  /// Schedules the next pending entry of a reserved batch: \p fn fires at
  /// (t, seq) where \p seq came from reserve_seqs().  A batched fan-out
  /// keeps exactly one entry in the queue per block — the carrier event
  /// reschedules (or inline-delivers, note_subevent()) its successors.
  template <typename F>
  void schedule_batch(Time t, std::uint64_t seq, EventTag tag, F&& fn) {
    PQRA_REQUIRE(t >= now_, "cannot schedule into the past");
    PQRA_CHECK(seq < next_seq_, "seq must come from reserve_seqs()");
    push_event(t, seq, tag, EventFn(std::forward<F>(fn), arena_));
  }

  /// Accounts one batched fan-out entry delivered inline by the currently
  /// firing event (equal-time run): bumps events_processed(), folds (t, seq)
  /// into the fingerprint and pings the profiler, exactly as if the entry
  /// had been popped as its own event.  \p t must equal now().
  void note_subevent(Time t, std::uint64_t seq, EventTag tag);

  /// The slab allocator event captures live in; batched fan-out blocks are
  /// carved from the same arena so they obey the same zero-heap contract.
  EventArena& arena() { return arena_; }

  /// Attaches (or detaches, nullptr) a self-profiler.  With none attached
  /// step() takes one extra branch and reads no clocks; with one attached
  /// every callback is timed with std::chrono::steady_clock — which is why
  /// the profiler must never feed determinism-compared outputs.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }
  Profiler* profiler() const { return profiler_; }

  /// Runs one event.  Returns false when the queue is empty.
  bool step();

  /// Runs until the queue empties or request_stop() is called.
  /// Returns the number of events processed by this call.
  std::size_t run();

  /// Runs events with time <= \p t (stops earlier if the queue empties or a
  /// stop is requested).  Afterwards now() == t unless stopped.
  std::size_t run_until(Time t);

  /// Makes run()/run_until() return after the current event completes.
  void request_stop() { stop_requested_ = true; }

  bool stop_requested() const { return stop_requested_; }

  /// Clears a previous stop request so the simulation can be resumed.
  void clear_stop() { stop_requested_ = false; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Which pending-event structure this simulator runs on.
  QueueMode queue_mode() const { return queue_.mode(); }

  /// Calendar reorganizations so far (0 in heap mode); exported as
  /// pqra_sim_queue_bucket_resizes_total.
  std::uint64_t queue_bucket_resizes() const { return queue_.bucket_resizes(); }

  /// Execution fingerprint: an FNV-1a fold of every fired event's (time,
  /// sequence number) pair, updated as the schedule→fire loop runs.  Two
  /// runs with equal fingerprints (and equal events_processed()) executed
  /// the exact same event schedule, so the schedule-exploration fuzzer can
  /// assert byte-identical replays without recording the schedule itself
  /// (docs/EXPLORATION.md).  Costs two multiplies per event.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Largest number of simultaneously pending events so far (the event
  /// queue's high-water mark — the memory footprint the run actually
  /// needed).
  std::size_t queue_high_water() const { return queue_high_water_; }

  /// \deprecated Pre-calendar-queue name for queue_high_water(); kept one
  /// release for external callers.
  std::size_t max_pending_events() const { return queue_high_water_; }

  /// Event-capture allocation tallies (inline vs slab vs counted heap
  /// fallback) — the sibling of queue_high_water() for the allocation
  /// story.  alloc_stats().heap_allocations() == 0 is the zero-allocation
  /// contract the unit tests assert for small captures.
  const EventArena::Stats& alloc_stats() const { return arena_.stats(); }

 private:
  void push_event(Time t, std::uint64_t seq, EventTag tag, EventFn fn);

  EventArena arena_;
  EventQueue queue_;
  std::size_t queue_high_water_ = 0;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t fingerprint_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  bool stop_requested_ = false;
  Profiler* profiler_ = nullptr;
};

}  // namespace pqra::sim
