#pragma once

/// \file calendar_queue.hpp
/// Pending-event set for the discrete-event simulator.
///
/// Two interchangeable implementations behind one EventQueue facade:
///
///  - kCalendar (default): a calendar queue [Brown 1988] — a power-of-two
///    array of day buckets, each a tiny (time, seq) min-heap, plus a far
///    min-heap for events beyond the calendar's current year.  Insert and
///    extract are amortized O(1) when the day width matches the observed
///    inter-event gap; the width is retuned from deterministic pop-gap
///    statistics at every lazy resize (4x grow at >2 items/bucket, 4x
///    shrink at <1/8).  See docs/PERFORMANCE.md for the tuning and
///    determinism story.
///
///  - kHeap: the original single std::push_heap/std::pop_heap binary heap,
///    kept behind the PQRA_QUEUE=heap escape hatch for one release so the
///    determinism gates can diff the two queues event-for-event.
///
/// Both orders pops strictly by (time, seq) — the FIFO-at-equal-times
/// contract every fingerprint/replay guarantee in the repository rests on —
/// so for any push sequence the pop sequence is byte-identical across modes
/// (asserted by the 10^6-op differential test in tests/sim).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/delay_model.hpp"
#include "sim/event_fn.hpp"
#include "sim/profiler.hpp"

namespace pqra::sim {

enum class QueueMode : std::uint8_t {
  kCalendar,  ///< calendar queue, amortized O(1) (default)
  kHeap,      ///< legacy binary heap, O(log n) (PQRA_QUEUE=heap)
};

/// Resolves the queue implementation from the PQRA_QUEUE environment
/// variable ("calendar" | "heap"; unset or anything else means calendar).
/// Read once per Simulator construction — never on the hot path.
QueueMode queue_mode_from_env();

class EventQueue {
 public:
  struct Item {
    Time t;
    std::uint64_t seq;
    EventFn fn;
    EventTag tag;
  };

  explicit EventQueue(QueueMode mode);
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Inserts an item.  \p seq must be unique and totally ordered with every
  /// other live seq (the Simulator's monotone counter guarantees this).
  void push(Time t, std::uint64_t seq, EventTag tag, EventFn fn);

  /// Time of the earliest (t, seq) item.  Queue must be non-empty.  May
  /// advance internal cursors (locating the minimum is where a calendar
  /// queue does its work), hence non-const; never changes the pop order.
  Time min_time();

  /// Removes and returns the earliest (t, seq) item.  Queue must be
  /// non-empty.
  Item pop();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  QueueMode mode() const { return mode_; }

  /// Number of calendar grow/shrink reorganizations so far (0 in heap
  /// mode); exported as pqra_sim_queue_bucket_resizes_total.
  std::uint64_t bucket_resizes() const { return bucket_resizes_; }

 private:
  // Day index of time t at the current width.  Saturates at kMaxDay so
  // huge timestamps (or a tiny width) cannot overflow the uint64 cast.
  std::uint64_t day_of(Time t) const;

  // Positions cur_day_/located_ on the day bucket holding the minimum item.
  void locate();

  // Moves far-heap items whose day has entered the calendar window into
  // their buckets.  Called whenever cur_day_ advances.
  void drain_far();

  // Rebuilds the calendar with \p new_bucket_count buckets and a width
  // retuned from pop-gap statistics.
  void resize(std::size_t new_bucket_count);

  void push_calendar(Item item);

  QueueMode mode_;
  std::size_t size_ = 0;
  std::uint64_t bucket_resizes_ = 0;

  // kHeap state: one binary min-heap over (t, seq).
  std::vector<Item> heap_;

  // kCalendar state.
  std::vector<std::vector<Item>> buckets_;  // power-of-two count
  std::vector<Item> far_;                   // (t, seq) min-heap beyond window
  std::size_t bucket_mask_ = 0;             // buckets_.size() - 1
  double width_ = 1.0;                      // day width in sim-time units
  double inv_width_ = 1.0;
  std::uint64_t cur_day_ = 0;  // earliest day that may hold the minimum
  bool located_ = false;       // bucket[cur_day_] top is the global minimum
  // Deterministic width-tuning statistics: gaps between consecutive pops.
  Time last_pop_t_ = 0.0;
  bool have_last_pop_ = false;
  double gap_sum_ = 0.0;
  std::uint64_t gap_count_ = 0;
  std::vector<Item> scratch_;  // resize staging, capacity recycled
};

}  // namespace pqra::sim
