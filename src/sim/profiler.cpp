#include "sim/profiler.hpp"

#include <cmath>
#include <limits>
#include <ostream>

#include "util/check.hpp"
#include "util/math.hpp"

namespace pqra::sim {

const char* event_tag_name(EventTag tag) {
  switch (tag) {
    case EventTag::kGeneric:
      return "generic";
    case EventTag::kMsgDeliver:
      return "msg_deliver";
    case EventTag::kRetryTimer:
      return "retry_timer";
    case EventTag::kDeadline:
      return "deadline";
    case EventTag::kGossip:
      return "gossip";
    case EventTag::kFault:
      return "fault";
    case EventTag::kWorkload:
      return "workload";
    case EventTag::kProbe:
      return "probe";
  }
  PQRA_CHECK(false, "profiler: unknown event tag");
  return "";
}

std::size_t Profiler::bucket_index(double x) {
  if (std::isnan(x)) return 0;
  if (std::isinf(x)) return kNumBuckets - 1;
  if (!(x > 0.0)) return 0;
  int exp = 0;
  std::frexp(x, &exp);
  long shifted = static_cast<long>(exp) + kBias;
  if (shifted < 0) shifted = 0;
  if (shifted >= static_cast<long>(kNumBuckets)) shifted = kNumBuckets - 1;
  return static_cast<std::size_t>(shifted);
}

double Profiler::bucket_upper_bound(std::size_t i) {
  PQRA_REQUIRE(i < kNumBuckets, "profiler bucket index out of range");
  if (i == kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i) - kBias);
}

void Profiler::on_event(EventTag tag, std::uint64_t wall_ns,
                        double sim_advance) {
  TagStats& stats = per_tag_[static_cast<std::size_t>(tag)];
  ++stats.fires;
  stats.wall_ns += wall_ns;
  stats.sim_advance += sim_advance;
  ++fires_;
  wall_ns_ += wall_ns;
  ++wall_buckets_[bucket_index(static_cast<double>(wall_ns))];
  ++advance_buckets_[bucket_index(sim_advance)];
}

namespace {

void write_sparse_buckets(std::ostream& out, const std::uint64_t* buckets,
                          std::size_t n) {
  out << '{';
  bool first = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (buckets[i] == 0) continue;
    if (!first) out << ',';
    first = false;
    double ub = Profiler::bucket_upper_bound(i);
    out << "\"";
    if (std::isinf(ub)) {
      out << "+inf";
    } else {
      out << util::format_double(ub);
    }
    out << "\":" << buckets[i];
  }
  out << '}';
}

}  // namespace

void Profiler::write_json(std::ostream& out) const {
  out << "{\n  \"fires\": " << fires_ << ",\n  \"wall_ns\": " << wall_ns_
      << ",\n  \"tags\": {";
  bool first = true;
  for (std::size_t t = 0; t < kNumEventTags; ++t) {
    const TagStats& stats = per_tag_[t];
    if (!first) out << ',';
    first = false;
    out << "\n    \"" << event_tag_name(static_cast<EventTag>(t))
        << "\": { \"fires\": " << stats.fires
        << ", \"wall_ns\": " << stats.wall_ns << ", \"sim_advance\": "
        << util::format_double(stats.sim_advance) << " }";
  }
  out << "\n  },\n  \"wall_ns_per_fire\": ";
  write_sparse_buckets(out, wall_buckets_, kNumBuckets);
  out << ",\n  \"sim_advance_per_fire\": ";
  write_sparse_buckets(out, advance_buckets_, kNumBuckets);
  out << "\n}\n";
}

}  // namespace pqra::sim
