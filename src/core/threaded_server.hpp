#pragma once

/// \file threaded_server.hpp
/// Replica server running on its own std::thread, pulling requests from its
/// ThreadTransport mailbox.  Shares the Replica state machine with the
/// simulated servers.  Stops when the transport is closed.

#include <optional>
#include <thread>

#include "core/replica.hpp"
#include "core/server_process.hpp"
#include "net/thread_transport.hpp"

namespace pqra::core {

class ThreadedServer {
 public:
  /// Starts serving immediately.  Initial register values must be preloaded
  /// into \p preloaded before construction — the serving thread owns the
  /// replica from here on.  \p metrics: optional thread-safe registry the
  /// serving thread reports into (non-owning; must outlive the server).
  ThreadedServer(net::ThreadTransport& transport, NodeId self,
                 Replica preloaded = {}, obs::Registry* metrics = nullptr);

  ThreadedServer(const ThreadedServer&) = delete;
  ThreadedServer& operator=(const ThreadedServer&) = delete;

  /// Joins the server thread.  The transport must have been closed first
  /// (otherwise this blocks forever — by design, it is a usage error).
  ~ThreadedServer();

  /// Post-shutdown inspection only (after the transport is closed and the
  /// serving thread has exited).
  const Replica& replica() const { return replica_; }

  NodeId id() const { return self_; }

 private:
  void serve();

  net::ThreadTransport& transport_;
  NodeId self_;
  Replica replica_;
  std::optional<ServerMetrics> metrics_;
  std::thread thread_;
};

}  // namespace pqra::core
