#pragma once

/// \file replica.hpp
/// Server-side state machine of the quorum register protocol.
///
/// Pure request/response logic with no transport dependency, so the exact
/// same code backs the discrete-event servers (ServerProcess) and the
/// threaded servers (ThreadedServer).  A replica stores, per register, the
/// highest-timestamped value it has seen; stale WriteReqs are acknowledged
/// but ignored (the single writer's timestamps are monotone, so this only
/// matters when retries reorder).

#include <unordered_map>

#include "core/register_types.hpp"

namespace pqra::core {

class Replica {
 public:
  /// Handles one protocol request and produces the reply to send back.
  /// ReadReq -> ReadAck carrying the stored (ts, value) — (0, empty) if the
  /// register was never written nor preloaded.  WriteReq -> WriteAck.
  net::Message handle(const net::Message& request);

  /// Installs an initial value with timestamp 0 (the initial vector i of the
  /// iterative algorithm, present on all replicas before the run starts).
  void preload(RegisterId reg, Value value);

  /// Read-only access for tests and invariant checks.
  const TimestampedValue* get(RegisterId reg) const;

  /// Serializes the whole store for anti-entropy gossip / snapshot reads.
  Value encode_store() const;

  /// Merges a gossiped store: per register, keeps the higher timestamp.
  /// Returns the number of registers that advanced.
  std::size_t merge_store(const Value& encoded);

  /// One entry of an encoded store.
  struct StoreEntry {
    RegisterId reg = 0;
    Timestamp ts = 0;
    Value value;
  };

  /// Parses an encoded store (throws on malformed input).
  static std::vector<StoreEntry> decode_store(const Value& encoded);

  std::size_t num_registers() const { return store_.size(); }

  /// Number of writes actually applied (not acked-but-stale).
  std::uint64_t writes_applied() const { return writes_applied_; }

 private:
  std::unordered_map<RegisterId, TimestampedValue> store_;
  std::uint64_t writes_applied_ = 0;
};

}  // namespace pqra::core
