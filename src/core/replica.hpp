#pragma once

/// \file replica.hpp
/// Server-side state machine of the quorum register protocol.
///
/// Pure request/response logic with no transport dependency, so the exact
/// same code backs the discrete-event servers (ServerProcess) and the
/// threaded servers (ThreadedServer).  A replica stores, per key, the
/// highest-timestamped value it has seen; stale WriteReqs are acknowledged
/// but ignored (the single writer's timestamps are monotone, so this only
/// matters when retries reorder).
///
/// The store is a flat open-addressing KeyId -> (ts, value) table
/// (core/keyspace/flat_table.hpp): under sharding a replica holds an entry
/// per key it owns, lookups stay allocation-free in the DES loop, and slot
/// order is deterministic — though encode_store still sorts, because gossip
/// bytes must not depend on insertion history either (docs/SHARDING.md).

#include "core/keyspace/flat_table.hpp"
#include "core/register_types.hpp"

namespace pqra::core {

class Replica {
 public:
  /// Durability hook (src/storage/durable_store.hpp, docs/DURABILITY.md):
  /// notified once per *applied* store mutation — a WriteReq that advanced
  /// the slot or a gossip merge entry that did — with the exact (reg, ts,
  /// value) now in the store.  Stale requests never notify (they never
  /// mutate).  preload() and restore_entry() bypass the listener: initials
  /// become durable via an explicit checkpoint, and recovery must not
  /// re-log what it just replayed.
  class StoreListener {
   public:
    virtual void on_apply(RegisterId reg, Timestamp ts,
                          const Value& value) = 0;

   protected:
    ~StoreListener() = default;
  };

  /// Binds (or clears, nullptr) the durability listener.
  void bind_storage(StoreListener* listener) { storage_ = listener; }

  /// Recovery support (docs/DURABILITY.md): drops every entry.  The caller
  /// is expected to follow up with restore_entry() calls; writes_applied()
  /// is a lifetime counter and is NOT reset.
  void reset_store();

  /// Re-installs one entry from durable state, keeping the higher
  /// timestamp when the slot already holds one (snapshot then WAL replay
  /// fold with ts-max, same merge rule as gossip).  Bypasses the listener.
  void restore_entry(RegisterId reg, Timestamp ts, Value value);

  /// Handles one protocol request and produces the reply to send back.
  /// ReadReq -> ReadAck carrying the stored (ts, value) — (0, empty) if the
  /// key was never written nor preloaded.  WriteReq -> WriteAck.
  net::Message handle(const net::Message& request);

  /// Installs an initial value with timestamp 0 (the initial vector i of the
  /// iterative algorithm, present on the key's replicas before the run).
  void preload(RegisterId reg, Value value);

  /// Pre-sizes the store for \p keys entries; bulk preloads call it once
  /// instead of paying the table's amortized rehash chain per replica.
  void reserve(std::size_t keys) { store_.reserve(keys); }

  /// Installs a default initial value: a ReadReq for an absent key answers
  /// (ts 0, this value) instead of (0, empty), observably identical to
  /// having preloaded every key of the keyspace with it.  Large uniform
  /// keyspaces (the 10⁵-key store benchmark) use this instead of
  /// materializing one store entry per (key, replica) before the run.
  /// Writes insert normally; gossip/encode_store cover written keys only.
  void set_default_initial(Value value) {
    default_initial_ = std::move(value);
  }

  /// Read-only access for tests and invariant checks.
  const TimestampedValue* get(RegisterId reg) const;

  /// Serializes the whole store for anti-entropy gossip / snapshot reads.
  Value encode_store() const;

  /// Merges a gossiped store: per key, keeps the higher timestamp.
  /// Returns the number of keys that advanced.
  std::size_t merge_store(const Value& encoded);

  /// One entry of an encoded store.
  struct StoreEntry {
    RegisterId reg = 0;
    Timestamp ts = 0;
    Value value;
  };

  /// Parses an encoded store (throws on malformed input).
  static std::vector<StoreEntry> decode_store(const Value& encoded);

  std::size_t num_registers() const { return store_.size(); }

  /// Number of writes actually applied (not acked-but-stale).
  std::uint64_t writes_applied() const { return writes_applied_; }

  /// Test-only fault: when enabled, a ReadReq for key k answers with the
  /// entry of key k^1 whenever that neighbour holds a higher timestamp — a
  /// seeded cross-key contamination bug (a probe-collision returning the
  /// wrong slot) that the key-partitioned [R2] checker must catch and
  /// pqra_explore must shrink to a minimal multi-key repro
  /// (docs/EXPLORATION.md).  Never enabled outside that drill.
  void set_test_cross_key_probe_bug(bool on) { cross_key_probe_bug_ = on; }

 private:
  keyspace::FlatTable<TimestampedValue> store_;
  StoreListener* storage_ = nullptr;
  Value default_initial_;
  std::uint64_t writes_applied_ = 0;
  bool cross_key_probe_bug_ = false;
};

}  // namespace pqra::core
