#include "core/multi_writer_client.hpp"

#include <utility>

#include "util/check.hpp"

namespace pqra::core {

namespace {
constexpr std::uint64_t kCounterBits = 48;
constexpr std::uint64_t kWriterMask = (1ULL << 16) - 1;
}  // namespace

Timestamp pack_tag(const Tag& tag) {
  PQRA_REQUIRE(tag.counter < (1ULL << kCounterBits), "counter overflow");
  PQRA_REQUIRE(tag.writer <= kWriterMask, "writer id must fit in 16 bits");
  return (tag.counter << 16) | tag.writer;
}

Tag unpack_tag(Timestamp ts) {
  return Tag{ts >> 16, static_cast<std::uint32_t>(ts & kWriterMask)};
}

MultiWriterRegisterClient::MultiWriterRegisterClient(
    sim::Simulator& simulator, net::Transport& transport, NodeId self,
    std::uint32_t writer_id, const quorum::QuorumSystem& quorums,
    NodeId server_base, const util::Rng& rng, bool monotone,
    RetryPolicy retry)
    : simulator_(simulator),
      transport_(transport),
      self_(self),
      writer_id_(writer_id),
      quorums_(quorums),
      server_base_(server_base),
      rng_(rng.fork(0x6d756c7469777200ULL ^ self)),
      retry_rng_(rng.fork(0x7265747279000000ULL ^ self)),
      monotone_(monotone),
      retry_(retry) {
  PQRA_REQUIRE(writer_id <= kWriterMask, "writer id must fit in 16 bits");
  transport_.register_receiver(self_, this);
}

void MultiWriterRegisterClient::read(RegisterId reg, ReadCallback cb) {
  PQRA_REQUIRE(static_cast<bool>(cb), "read needs a callback");
  OpId op = next_op_++;
  PendingOp pending;
  pending.reg = reg;
  pending.read_cb = std::move(cb);
  if (retry_.deadline.has_value()) {
    pending.has_deadline = true;
    pending.deadline_at = simulator_.now() + *retry_.deadline;
  }
  auto [it, inserted] = pending_.emplace(op, std::move(pending));
  PQRA_CHECK(inserted, "op id collision");
  start_phase(op, it->second, Phase::kRead);
  if (it->second.has_deadline) arm_deadline(op);
}

void MultiWriterRegisterClient::write(RegisterId reg, Value value,
                                      WriteCallback cb) {
  PQRA_REQUIRE(static_cast<bool>(cb), "write needs a callback");
  OpId op = next_op_++;
  PendingOp pending;
  pending.reg = reg;
  pending.write_cb = std::move(cb);
  pending.write_value = std::move(value);
  if (retry_.deadline.has_value()) {
    pending.has_deadline = true;
    pending.deadline_at = simulator_.now() + *retry_.deadline;
  }
  auto [it, inserted] = pending_.emplace(op, std::move(pending));
  PQRA_CHECK(inserted, "op id collision");
  start_phase(op, it->second, Phase::kWriteQuery);
  if (it->second.has_deadline) arm_deadline(op);
}

void MultiWriterRegisterClient::start_phase(OpId op, PendingOp& pending,
                                            Phase phase) {
  pending.phase = phase;
  pending.needed = quorums_.quorum_size(phase == Phase::kWriteInstall
                                            ? quorum::AccessKind::kWrite
                                            : quorum::AccessKind::kRead);
  pending.responders.clear();
  send_phase(op, pending);
}

void MultiWriterRegisterClient::send_phase(OpId op, PendingOp& pending) {
  bool install = pending.phase == Phase::kWriteInstall;
  auto kind = install ? quorum::AccessKind::kWrite : quorum::AccessKind::kRead;
  // pick() draws exactly what sample() would, so the quorum RNG stream is
  // unchanged; the whole phase then goes out as one batched fan-out.
  quorums_.pick(kind, rng_, quorum_scratch_);
  fanout_scratch_.clear();
  for (quorum::ServerId s : quorum_scratch_) {
    fanout_scratch_.push_back(net::FanoutEntry{server_base_ + s, 0});
  }
  net::Message msg =
      install ? net::Message::write_req(pending.reg, op, pending.install_ts,
                                        pending.write_value)
              : net::Message::read_req(pending.reg, op);
  transport_.send_fanout(self_, fanout_scratch_.data(), fanout_scratch_.size(),
                         std::move(msg));
  if (retry_.rpc_timeout.has_value()) arm_retry(op, pending.attempt);
}

void MultiWriterRegisterClient::arm_retry(OpId op, std::uint32_t attempt) {
  sim::Time wait = retry_.backoff(attempt, retry_rng_);
  simulator_.schedule_in(wait, [this, op, attempt] {
    auto it = pending_.find(op);
    if (it == pending_.end() || it->second.attempt != attempt) {
      return;  // completed, moved phase, or already retried
    }
    PendingOp& pending = it->second;
    if (pending.has_deadline && simulator_.now() >= pending.deadline_at) {
      return;  // the deadline event settles this op
    }
    ++pending.attempt;
    ++retries_;
    // Re-send the *current* phase to a fresh quorum; responders accumulate.
    send_phase(op, pending);
  });
}

void MultiWriterRegisterClient::arm_deadline(OpId op) {
  simulator_.schedule_in(*retry_.deadline, [this, op] {
    auto it = pending_.find(op);
    if (it == pending_.end()) return;  // completed in time
    finish_deadline(op, it->second);
  });
}

void MultiWriterRegisterClient::finish_deadline(OpId op, PendingOp& pending) {
  const std::size_t acks = pending.responders.size();
  const bool enough =
      retry_.degraded_ok &&
      acks >= std::max<std::size_t>(retry_.min_degraded_acks, 1);
  // A write that never reached its install phase has written nothing —
  // there is no partial result to degrade to.
  if (!enough || pending.phase == Phase::kWriteQuery) {
    fail_op(op, pending);
    return;
  }
  pending.status = OpStatus::kDegraded;
  complete(op, pending);
}

void MultiWriterRegisterClient::fail_op(OpId op, PendingOp& pending) {
  ++op_failures_;
  if (pending.phase == Phase::kRead) {
    ReadCallback cb = std::move(pending.read_cb);
    MwReadResult result;
    result.status = OpStatus::kTimedOut;
    result.acks = pending.responders.size();
    pending_.erase(op);
    cb(std::move(result));
  } else {
    WriteCallback cb = std::move(pending.write_cb);
    MwWriteResult result;
    result.status = OpStatus::kTimedOut;
    result.acks = pending.responders.size();
    pending_.erase(op);
    cb(result);
  }
}

void MultiWriterRegisterClient::on_message(NodeId from, net::Message msg) {
  auto it = pending_.find(msg.op);
  if (it == pending_.end()) return;  // late ack
  PendingOp& pending = it->second;

  bool is_ack_for_query = pending.phase != Phase::kWriteInstall;
  if (is_ack_for_query != (msg.type == net::MsgType::kReadAck)) {
    // Stale query-phase ack after the op moved to its install phase
    // (possible with retries); ignore.
    return;
  }

  for (NodeId seen : pending.responders) {
    if (seen == from) return;
  }
  pending.responders.push_back(from);

  if (is_ack_for_query && msg.ts >= pending.best_ts) {
    pending.best_ts = msg.ts;
    pending.best_value = std::move(msg.value);
  }
  if (pending.responders.size() < pending.needed) return;

  switch (pending.phase) {
    case Phase::kRead:
    case Phase::kWriteInstall:
      complete(msg.op, pending);
      break;
    case Phase::kWriteQuery: {
      // Choose a tag strictly above everything seen AND above every tag this
      // writer ever issued (the phase-1 read can miss its own past writes on
      // probabilistic quorums).
      Tag seen = unpack_tag(pending.best_ts);
      std::uint64_t& own = own_counter_[pending.reg];
      std::uint64_t counter = std::max(seen.counter, own) + 1;
      own = counter;
      pending.install_ts = pack_tag(Tag{counter, writer_id_});
      ++pending.attempt;  // invalidate query-phase retry timers
      start_phase(msg.op, pending, Phase::kWriteInstall);
      break;
    }
  }
}

void MultiWriterRegisterClient::complete(OpId op, PendingOp& pending) {
  if (pending.phase == Phase::kRead) {
    MwReadResult result;
    result.tag = unpack_tag(pending.best_ts);
    result.value = std::move(pending.best_value);
    result.status = pending.status;
    result.acks = pending.responders.size();
    if (monotone_) {
      TimestampedValue& cached = monotone_cache_[pending.reg];
      if (cached.ts > pending.best_ts) {
        result.tag = unpack_tag(cached.ts);
        result.value = cached.value;
      } else {
        cached.ts = pending.best_ts;
        cached.value = result.value;
      }
    }
    ++reads_completed_;
    ReadCallback cb = std::move(pending.read_cb);
    pending_.erase(op);
    cb(std::move(result));
  } else {
    MwWriteResult result;
    result.tag = unpack_tag(pending.install_ts);
    result.status = pending.status;
    result.acks = pending.responders.size();
    ++writes_completed_;
    WriteCallback cb = std::move(pending.write_cb);
    pending_.erase(op);
    cb(result);
  }
}

}  // namespace pqra::core
