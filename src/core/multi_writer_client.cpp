#include "core/multi_writer_client.hpp"

#include <utility>

#include "util/check.hpp"

namespace pqra::core {

namespace {
constexpr std::uint64_t kCounterBits = 48;
constexpr std::uint64_t kWriterMask = (1ULL << 16) - 1;
}  // namespace

Timestamp pack_tag(const Tag& tag) {
  PQRA_REQUIRE(tag.counter < (1ULL << kCounterBits), "counter overflow");
  PQRA_REQUIRE(tag.writer <= kWriterMask, "writer id must fit in 16 bits");
  return (tag.counter << 16) | tag.writer;
}

Tag unpack_tag(Timestamp ts) {
  return Tag{ts >> 16, static_cast<std::uint32_t>(ts & kWriterMask)};
}

MultiWriterRegisterClient::MultiWriterRegisterClient(
    sim::Simulator& simulator, net::Transport& transport, NodeId self,
    std::uint32_t writer_id, const quorum::QuorumSystem& quorums,
    NodeId server_base, const util::Rng& rng, bool monotone)
    : simulator_(simulator),
      transport_(transport),
      self_(self),
      writer_id_(writer_id),
      quorums_(quorums),
      server_base_(server_base),
      rng_(rng.fork(0x6d756c7469777200ULL ^ self)),
      monotone_(monotone) {
  PQRA_REQUIRE(writer_id <= kWriterMask, "writer id must fit in 16 bits");
  transport_.register_receiver(self_, this);
}

void MultiWriterRegisterClient::read(RegisterId reg, ReadCallback cb) {
  PQRA_REQUIRE(static_cast<bool>(cb), "read needs a callback");
  OpId op = next_op_++;
  PendingOp pending;
  pending.phase = Phase::kRead;
  pending.reg = reg;
  pending.read_cb = std::move(cb);
  auto [it, inserted] = pending_.emplace(op, std::move(pending));
  PQRA_CHECK(inserted, "op id collision");
  send_query(op, it->second);
}

void MultiWriterRegisterClient::write(RegisterId reg, Value value,
                                      WriteCallback cb) {
  PQRA_REQUIRE(static_cast<bool>(cb), "write needs a callback");
  OpId op = next_op_++;
  PendingOp pending;
  pending.phase = Phase::kWriteQuery;
  pending.reg = reg;
  pending.write_cb = std::move(cb);
  pending.write_value = std::move(value);
  auto [it, inserted] = pending_.emplace(op, std::move(pending));
  PQRA_CHECK(inserted, "op id collision");
  send_query(op, it->second);
}

void MultiWriterRegisterClient::send_query(OpId op, PendingOp& pending) {
  pending.needed = quorums_.quorum_size(quorum::AccessKind::kRead);
  pending.responders.clear();
  for (quorum::ServerId s :
       quorums_.sample(quorum::AccessKind::kRead, rng_)) {
    transport_.send(self_, server_base_ + s,
                    net::Message::read_req(pending.reg, op));
  }
}

void MultiWriterRegisterClient::send_install(OpId op, PendingOp& pending) {
  pending.needed = quorums_.quorum_size(quorum::AccessKind::kWrite);
  pending.responders.clear();
  for (quorum::ServerId s :
       quorums_.sample(quorum::AccessKind::kWrite, rng_)) {
    transport_.send(self_, server_base_ + s,
                    net::Message::write_req(pending.reg, op,
                                            pending.install_ts,
                                            pending.write_value));
  }
}

void MultiWriterRegisterClient::on_message(NodeId from, net::Message msg) {
  auto it = pending_.find(msg.op);
  if (it == pending_.end()) return;  // late ack
  PendingOp& pending = it->second;

  for (NodeId seen : pending.responders) {
    if (seen == from) return;
  }
  pending.responders.push_back(from);

  bool is_ack_for_query = pending.phase != Phase::kWriteInstall;
  PQRA_CHECK(is_ack_for_query == (msg.type == net::MsgType::kReadAck),
             "ack type mismatch");
  if (is_ack_for_query && msg.ts >= pending.best_ts) {
    pending.best_ts = msg.ts;
    pending.best_value = std::move(msg.value);
  }
  if (pending.responders.size() < pending.needed) return;

  switch (pending.phase) {
    case Phase::kRead:
    case Phase::kWriteInstall:
      complete(msg.op, pending);
      break;
    case Phase::kWriteQuery: {
      // Choose a tag strictly above everything seen AND above every tag this
      // writer ever issued (the phase-1 read can miss its own past writes on
      // probabilistic quorums).
      Tag seen = unpack_tag(pending.best_ts);
      std::uint64_t& own = own_counter_[pending.reg];
      std::uint64_t counter = std::max(seen.counter, own) + 1;
      own = counter;
      pending.install_ts = pack_tag(Tag{counter, writer_id_});
      pending.phase = Phase::kWriteInstall;
      send_install(msg.op, pending);
      break;
    }
  }
}

void MultiWriterRegisterClient::complete(OpId op, PendingOp& pending) {
  if (pending.phase == Phase::kRead) {
    MwReadResult result;
    result.tag = unpack_tag(pending.best_ts);
    result.value = std::move(pending.best_value);
    if (monotone_) {
      TimestampedValue& cached = monotone_cache_[pending.reg];
      if (cached.ts > pending.best_ts) {
        result.tag = unpack_tag(cached.ts);
        result.value = cached.value;
      } else {
        cached.ts = pending.best_ts;
        cached.value = result.value;
      }
    }
    ++reads_completed_;
    ReadCallback cb = std::move(pending.read_cb);
    pending_.erase(op);
    cb(std::move(result));
  } else {
    Tag tag = unpack_tag(pending.install_ts);
    ++writes_completed_;
    WriteCallback cb = std::move(pending.write_cb);
    pending_.erase(op);
    cb(tag);
  }
}

}  // namespace pqra::core
