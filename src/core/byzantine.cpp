#include "core/byzantine.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/codec.hpp"

namespace pqra::core {

namespace {
/// High enough that an unprotected client always prefers the fabrication.
constexpr Timestamp kFabricatedTs = 1ULL << 40;
constexpr std::int64_t kFabricatedPayload = 0x5ca1ab1e;
}  // namespace

net::Message fabricated_read_ack(RegisterId reg, OpId op) {
  return net::Message::read_ack(reg, op, kFabricatedTs,
                                util::encode<std::int64_t>(kFabricatedPayload));
}

ByzantineServerProcess::ByzantineServerProcess(net::Transport& transport,
                                               NodeId self, ByzantineMode mode)
    : transport_(transport), self_(self), mode_(mode) {
  transport_.register_receiver(self_, this);
}

void ByzantineServerProcess::on_message(NodeId from, net::Message msg) {
  if (msg.type == net::MsgType::kWriteReq) {
    // Acknowledge but discard: a Byzantine server's state is its own affair.
    transport_.send(self_, from,
                    net::Message::write_ack(msg.reg, msg.op, msg.ts));
    return;
  }
  PQRA_CHECK(msg.type == net::MsgType::kReadReq,
             "server received a non-request message");
  switch (mode_) {
    case ByzantineMode::kFabricateHighTs:
      transport_.send(self_, from, fabricated_read_ack(msg.reg, msg.op));
      return;
    case ByzantineMode::kStaleLie:
      transport_.send(self_, from,
                      net::Message::read_ack(msg.reg, msg.op, 0, Value{}));
      return;
    case ByzantineMode::kCorruptValue: {
      net::Message genuine = replica_.handle(msg);
      // Corrupt a private copy: mutable_bytes() clones the buffer the honest
      // replica still shares with its store (copy-on-write discipline).
      for (std::byte& b : genuine.value.mutable_bytes()) b ^= std::byte{0xFF};
      if (genuine.value.empty()) {
        genuine.value = util::encode<std::int64_t>(-1);
      }
      transport_.send(self_, from, std::move(genuine));
      return;
    }
  }
  PQRA_CHECK(false, "unknown Byzantine mode");
}

MaskingRegisterClient::MaskingRegisterClient(
    sim::Simulator& simulator, net::Transport& transport, NodeId self,
    const quorum::QuorumSystem& quorums, NodeId server_base,
    const util::Rng& rng, std::size_t fault_bound)
    : simulator_(simulator),
      transport_(transport),
      self_(self),
      quorums_(quorums),
      server_base_(server_base),
      rng_(rng.fork(0x6d61736b696e6700ULL ^ self)),
      fault_bound_(fault_bound) {
  transport_.register_receiver(self_, this);
}

void MaskingRegisterClient::read(RegisterId reg, ReadCallback cb) {
  PQRA_REQUIRE(static_cast<bool>(cb), "read needs a callback");
  OpId op = next_op_++;
  PendingOp pending;
  pending.is_read = true;
  pending.reg = reg;
  pending.needed = quorums_.quorum_size(quorum::AccessKind::kRead);
  pending.read_cb = std::move(cb);
  auto [it, inserted] = pending_.emplace(op, std::move(pending));
  PQRA_CHECK(inserted, "op id collision");
  for (quorum::ServerId s : quorums_.sample(quorum::AccessKind::kRead, rng_)) {
    transport_.send(self_, server_base_ + s, net::Message::read_req(reg, op));
  }
}

void MaskingRegisterClient::write(RegisterId reg, Value value,
                                  WriteCallback cb) {
  PQRA_REQUIRE(static_cast<bool>(cb), "write needs a callback");
  OpId op = next_op_++;
  Timestamp ts = ++write_ts_[reg];
  PendingOp pending;
  pending.is_read = false;
  pending.reg = reg;
  pending.needed = quorums_.quorum_size(quorum::AccessKind::kWrite);
  pending.write_cb = std::move(cb);
  pending.write_ts = ts;
  auto [it, inserted] = pending_.emplace(op, std::move(pending));
  PQRA_CHECK(inserted, "op id collision");
  for (quorum::ServerId s :
       quorums_.sample(quorum::AccessKind::kWrite, rng_)) {
    transport_.send(self_, server_base_ + s,
                    net::Message::write_req(reg, op, ts, value));
  }
}

void MaskingRegisterClient::on_message(NodeId from, net::Message msg) {
  auto it = pending_.find(msg.op);
  if (it == pending_.end()) return;
  PendingOp& pending = it->second;
  for (NodeId seen : pending.responders) {
    if (seen == from) return;
  }
  pending.responders.push_back(from);
  if (pending.is_read) {
    PQRA_CHECK(msg.type == net::MsgType::kReadAck, "ack type mismatch");
    pending.answers.push_back(TimestampedValue{msg.ts, std::move(msg.value)});
  }
  if (pending.responders.size() < pending.needed) return;

  if (pending.is_read) {
    complete_read(msg.op, pending);
  } else {
    Timestamp ts = pending.write_ts;
    WriteCallback cb = std::move(pending.write_cb);
    pending_.erase(msg.op);
    cb(ts);
  }
}

void MaskingRegisterClient::complete_read(OpId op, PendingOp& pending) {
  // Count vouchers per distinct (ts, value) pair; accept the largest ts with
  // at least b+1 of them.
  MaskedReadResult result;
  for (std::size_t i = 0; i < pending.answers.size(); ++i) {
    const TimestampedValue& candidate = pending.answers[i];
    if (result.vouched && candidate.ts <= result.ts) continue;
    std::size_t vouchers = 0;
    for (const TimestampedValue& other : pending.answers) {
      if (other.ts == candidate.ts && other.value == candidate.value) {
        ++vouchers;
      }
    }
    if (vouchers >= fault_bound_ + 1) {
      result.vouched = true;
      result.ts = candidate.ts;
      result.value = candidate.value;
    }
  }
  if (!result.vouched) ++unvouched_reads_;

  ReadCallback cb = std::move(pending.read_cb);
  pending_.erase(op);
  cb(std::move(result));
}

}  // namespace pqra::core
