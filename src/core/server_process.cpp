#include "core/server_process.hpp"

#include <utility>

#include "obs/names.hpp"
#include "util/check.hpp"

namespace pqra::core {

ServerMetrics::ServerMetrics(obs::Registry& registry)
    : requests(&registry.counter(obs::names::kServerRequests,
                                 "Protocol requests served by replicas")),
      ts_advances(&registry.counter(
          obs::names::kServerTsAdvances,
          "Writes that advanced a replica register timestamp")),
      gossip_merges(&registry.counter(
          obs::names::kServerGossipMerges,
          "Registers advanced by anti-entropy gossip merges")),
      keys_created(&registry.counter(
          obs::names::kServerKeysCreated,
          "Keys first materialized in a replica store (write or gossip)")) {}

ServerProcess::ServerProcess(net::Transport& transport, NodeId self,
                             obs::Registry* metrics)
    : transport_(transport), self_(self), rng_(0) {
  transport_.register_receiver(self_, this);
  if (metrics != nullptr) metrics_.emplace(*metrics);
}

ServerProcess::ServerProcess(net::Transport& transport, NodeId self,
                             sim::Simulator& simulator,
                             const GossipOptions& gossip, const util::Rng& rng,
                             obs::Registry* metrics)
    : transport_(transport),
      self_(self),
      simulator_(&simulator),
      gossip_(gossip),
      rng_(rng.fork(0x676f73736970ULL ^ self)) {
  transport_.register_receiver(self_, this);
  if (metrics != nullptr) metrics_.emplace(*metrics);
  if (gossip_.interval > 0.0) {
    PQRA_REQUIRE(gossip_.group_size >= 2,
                 "gossip needs at least two servers in the group");
    PQRA_REQUIRE(self_ >= gossip_.group_base &&
                     self_ < gossip_.group_base + gossip_.group_size,
                 "gossiping server must belong to its own group");
    // Jittered first tick so the group does not fire in phase.
    schedule_gossip(rng_.uniform01() * gossip_.interval);
  }
}

void ServerProcess::record_handle_span(const net::Message& request,
                                       Timestamp reply_ts) {
  if (spans_ == nullptr || request.span == 0) return;
  // Zero duration by construction: the paper's model folds service time
  // into the link delays, so handling is instantaneous in simulated time.
  sim::Time now = span_sim_->now();
  obs::SpanId id = spans_->begin(obs::SpanKind::kServerHandle, request.span,
                                 self_, now);
  obs::SpanRecord& rec = spans_->at(id);
  rec.reg = request.reg;
  rec.op = request.op;
  rec.server = self_;
  rec.ts = reply_ts;
  spans_->finish(id, obs::SpanStatus::kOk, now);
}

void ServerProcess::on_message(NodeId from, net::Message msg) {
  if (msg.type == net::MsgType::kGossip) {
    const std::size_t keys_before = replica_.num_registers();
    std::size_t advanced = replica_.merge_store(msg.value);
    gossip_merges_ += advanced;
    if (metrics_.has_value()) {
      metrics_->gossip_merges->inc(advanced);
      metrics_->keys_created->inc(replica_.num_registers() - keys_before);
    }
    return;
  }
  if (msg.type == net::MsgType::kReadReq && msg.reg == net::kAllRegisters) {
    if (metrics_.has_value()) metrics_->requests->inc();
    net::Message reply = net::Message::read_ack(net::kAllRegisters, msg.op, 0,
                                                replica_.encode_store());
    reply.trace = msg.trace;
    reply.span = msg.span;
    record_handle_span(msg, reply.ts);
    transport_.send(self_, from, std::move(reply));
    return;
  }
  std::uint64_t applied_before = replica_.writes_applied();
  const std::size_t keys_before = replica_.num_registers();
  net::Message reply = replica_.handle(msg);
  // Echo the causal headers so the client can close its RPC span; done here
  // (not in Replica) so the replica state machine stays tracing-agnostic.
  reply.trace = msg.trace;
  reply.span = msg.span;
  if (metrics_.has_value()) {
    metrics_->requests->inc();
    metrics_->ts_advances->inc(replica_.writes_applied() - applied_before);
    metrics_->keys_created->inc(replica_.num_registers() - keys_before);
  }
  record_handle_span(msg, reply.ts);
  transport_.send(self_, from, std::move(reply));
}

void ServerProcess::schedule_gossip(sim::Time delay) {
  simulator_->schedule_in(delay, sim::EventTag::kGossip,
                          [this] { gossip_tick(); });
}

void ServerProcess::gossip_tick() {
  // Pick a uniformly random peer other than this server.
  auto offset = static_cast<net::NodeId>(rng_.below(gossip_.group_size - 1));
  net::NodeId peer = gossip_.group_base + offset;
  if (peer >= self_) ++peer;
  // Routed through the batch path (a width-1 fan-out) so gossip shares the
  // transport's block-scheduled delivery machinery.
  net::FanoutEntry entry{peer, 0};
  transport_.send_fanout(self_, &entry, 1,
                         net::Message::gossip(replica_.encode_store()));
  schedule_gossip(gossip_.interval);
}

}  // namespace pqra::core
