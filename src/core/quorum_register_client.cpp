#include "core/quorum_register_client.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/replica.hpp"
#include "obs/names.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace pqra::core {

QuorumRegisterClient::QuorumRegisterClient(
    sim::Simulator& simulator, net::Transport& transport, NodeId self,
    const quorum::QuorumSystem& quorums, NodeId server_base,
    const util::Rng& rng, ClientOptions options,
    spec::HistoryRecorder* history)
    : simulator_(simulator),
      transport_(transport),
      self_(self),
      quorums_(quorums),
      server_base_(server_base),
      rng_(rng.fork(0x636c69656e740000ULL ^ self)),
      retry_rng_(rng.fork(0x7265747279000000ULL ^ self)),
      options_(options),
      history_(history) {
  if (options_.ring != nullptr) {
    PQRA_REQUIRE(options_.ring->num_nodes() >= quorums_.num_servers(),
                 "ring must have at least one replica group's worth of "
                 "members (quorums are sized to the group, not the cluster)");
  }
  transport_.register_receiver(self_, this);
  if (options_.metrics != nullptr) {
    obs::Registry& reg = *options_.metrics;
    namespace n = obs::names;
    instruments_.reads = &reg.counter(n::kClientReads, "Reads completed");
    instruments_.writes = &reg.counter(n::kClientWrites, "Writes completed");
    instruments_.cache_hits = &reg.counter(
        n::kClientCacheHits, "Reads served from the monotone cache (§6.2)");
    instruments_.retries =
        &reg.counter(n::kClientRetries, "Operations retried on a fresh quorum");
    instruments_.repairs = &reg.counter(
        n::kClientRepairs, "Stale replicas repaired after reads");
    instruments_.write_backs = &reg.counter(
        n::kClientWriteBacks, "Atomic-mode write-back phases");
    instruments_.degraded_reads = &reg.counter(
        n::kClientDegradedReads,
        "Reads completed on a partial access set at the deadline");
    instruments_.degraded_writes = &reg.counter(
        n::kClientDegradedWrites,
        "Writes completed on a partial access set at the deadline");
    instruments_.op_failures = &reg.counter(
        n::kClientOpFailures, "Operations that timed out outright");
    instruments_.read_latency = &reg.histogram(
        n::kClientReadLatency, "Read latency, invocation to response");
    instruments_.write_latency = &reg.histogram(
        n::kClientWriteLatency, "Write latency, invocation to response");
    instruments_.stale_depth = &reg.histogram(
        n::kClientStaleDepth,
        "Writes the read quorum's best answer lagged behind the newest "
        "timestamp known to the client");
  }
}

void QuorumRegisterClient::record_trace(obs::TraceOpKind kind,
                                        const PendingOp& pending,
                                        RegisterId reg, Timestamp ts,
                                        bool from_cache) {
  obs::OpTraceEvent ev;
  ev.kind = kind;
  ev.proc = self_;
  ev.reg = reg;
  ev.invoke = pending.started;
  ev.response = simulator_.now();
  ev.ts = ts;
  ev.from_cache = from_cache;
  ev.attempts = pending.attempt + 1;
  ev.stale_depth = kind == obs::TraceOpKind::kRead ? pending.stale_depth : 0;
  ev.quorum.assign(pending.responders.begin(), pending.responders.end());
  options_.trace->record(std::move(ev));
}

void QuorumRegisterClient::begin_op_span(OpId op, PendingOp& pending,
                                         bool is_write, RegisterId reg) {
  if (options_.spans == nullptr || !options_.spans->sampled(self_, op)) return;
  pending.root_span = options_.spans->begin(obs::SpanKind::kClientOp,
                                            /*parent=*/0, self_,
                                            pending.started);
  obs::SpanRecord& rec = options_.spans->at(pending.root_span);
  rec.reg = reg;
  rec.op = op;
  rec.is_write = is_write;
}

void QuorumRegisterClient::close_rpc_span(PendingOp& pending, NodeId from,
                                          Timestamp ts) {
  for (std::size_t i = 0; i < pending.rpc_servers.size(); ++i) {
    if (pending.rpc_servers[i] != from) continue;
    obs::SpanRecord& rec = options_.spans->at(pending.rpc_spans[i]);
    if (!rec.open) continue;  // acked in an earlier attempt
    rec.ts = ts;
    options_.spans->finish(pending.rpc_spans[i], obs::SpanStatus::kOk,
                           simulator_.now());
    return;
  }
}

void QuorumRegisterClient::close_open_rpc_spans(PendingOp& pending) {
  for (obs::SpanId id : pending.rpc_spans) {
    if (!options_.spans->at(id).open) continue;
    options_.spans->finish(id, obs::SpanStatus::kUnanswered, simulator_.now());
  }
}

void QuorumRegisterClient::close_op_span(PendingOp& pending,
                                         obs::SpanStatus status, Timestamp ts,
                                         bool from_cache) {
  if (pending.root_span == 0) return;
  close_open_rpc_spans(pending);
  obs::SpanRecord& rec = options_.spans->at(pending.root_span);
  rec.ts = ts;
  rec.from_cache = from_cache;
  rec.attempt = pending.attempt + 1;
  rec.stale_depth = pending.stale_depth;
  rec.quorum.assign(pending.responders.begin(), pending.responders.end());
  rec.fresh.assign(pending.fresh.begin(), pending.fresh.end());
  options_.spans->finish(pending.root_span, status, simulator_.now());
  pending.root_span = 0;
}

namespace {

obs::SpanStatus span_status_of(OpStatus status) {
  switch (status) {
    case OpStatus::kOk:
      return obs::SpanStatus::kOk;
    case OpStatus::kDegraded:
      return obs::SpanStatus::kDegraded;
    case OpStatus::kTimedOut:
      return obs::SpanStatus::kTimedOut;
    case OpStatus::kShutdown:
      // Threaded-runtime-only status; the DES client never produces it, but
      // a torn-down op maps naturally onto an expired one.
      return obs::SpanStatus::kTimedOut;
  }
  PQRA_CHECK(false, "unknown OpStatus");
  return obs::SpanStatus::kOk;
}

}  // namespace

QuorumRegisterClient::PendingOp& QuorumRegisterClient::emplace_pending(
    OpId op) {
  if (!pending_pool_.empty()) {
    auto node = std::move(pending_pool_.back());
    pending_pool_.pop_back();
    node.key() = op;
    node.mapped().reset();
    auto result = pending_.insert(std::move(node));
    PQRA_CHECK(result.inserted, "op id collision");
    return result.position->second;
  }
  auto [it, inserted] = pending_.try_emplace(op);
  PQRA_CHECK(inserted, "op id collision");
  return it->second;
}

void QuorumRegisterClient::erase_pending(OpId op) {
  auto node = pending_.extract(op);
  if (!node.empty()) pending_pool_.push_back(std::move(node));
}

void QuorumRegisterClient::read(RegisterId reg, ReadCallback cb) {
  PQRA_REQUIRE(static_cast<bool>(cb), "read needs a callback");
  OpId op = next_op_++;
  PendingOp& pending = emplace_pending(op);
  pending.is_read = true;
  pending.reg = reg;
  pending.needed = quorums_.quorum_size(quorum::AccessKind::kRead);
  pending.read_cb = std::move(cb);
  pending.started = simulator_.now();
  begin_op_span(op, pending, /*is_write=*/false, reg);
  if (history_ != nullptr) {
    pending.hist = history_->begin_read(self_, reg, simulator_.now());
    pending.has_hist = true;
  }
  if (options_.retry.deadline.has_value()) {
    pending.has_deadline = true;
    pending.deadline_at = pending.started + *options_.retry.deadline;
  }
  send_to_quorum(op, pending);
  if (pending.has_deadline) arm_deadline(op);
}

void QuorumRegisterClient::read_snapshot(std::vector<RegisterId> regs,
                                         SnapshotCallback cb) {
  PQRA_REQUIRE(static_cast<bool>(cb), "snapshot read needs a callback");
  PQRA_REQUIRE(!regs.empty(), "snapshot read needs at least one register");
  PQRA_REQUIRE(!options_.write_back,
               "snapshot reads do not support atomic write-back");
  PQRA_REQUIRE(options_.ring == nullptr,
               "snapshot reads are whole-store accesses of one replica set; "
               "the sharded store reads per key (docs/SHARDING.md)");
  OpId op = next_op_++;
  PendingOp& pending = emplace_pending(op);
  pending.is_read = true;
  pending.is_snapshot = true;
  pending.reg = net::kAllRegisters;
  pending.needed = quorums_.quorum_size(quorum::AccessKind::kRead);
  pending.snap_cb = std::move(cb);
  pending.started = simulator_.now();
  begin_op_span(op, pending, /*is_write=*/false, net::kAllRegisters);
  if (history_ != nullptr) {
    pending.snap_hists.reserve(regs.size());
    for (RegisterId reg : regs) {
      pending.snap_hists.push_back(
          history_->begin_read(self_, reg, simulator_.now()));
    }
    pending.has_hist = true;
  }
  pending.snap_regs = std::move(regs);
  if (options_.retry.deadline.has_value()) {
    pending.has_deadline = true;
    pending.deadline_at = pending.started + *options_.retry.deadline;
  }
  send_to_quorum(op, pending);
  if (pending.has_deadline) arm_deadline(op);
}

void QuorumRegisterClient::write(RegisterId reg, Value value,
                                 WriteCallback cb) {
  PQRA_REQUIRE(static_cast<bool>(cb), "write needs a callback");
  OpId op = next_op_++;
  Timestamp ts = ++write_ts_.entry(reg);
  PendingOp& pending = emplace_pending(op);
  pending.is_read = false;
  pending.reg = reg;
  pending.needed = quorums_.quorum_size(quorum::AccessKind::kWrite);
  pending.write_cb = std::move(cb);
  pending.write_ts = ts;
  pending.write_value = std::move(value);
  pending.started = simulator_.now();
  begin_op_span(op, pending, /*is_write=*/true, reg);
  if (history_ != nullptr) {
    pending.hist = history_->begin_write(self_, reg, simulator_.now(), ts);
    pending.has_hist = true;
  }
  if (options_.retry.deadline.has_value()) {
    pending.has_deadline = true;
    pending.deadline_at = pending.started + *options_.retry.deadline;
  }
  send_to_quorum(op, pending);
  if (pending.has_deadline) arm_deadline(op);
}

void QuorumRegisterClient::send_to_quorum(OpId op, PendingOp& pending) {
  bool sends_reads = pending.is_read && !pending.in_write_back;
  auto kind =
      sends_reads ? quorum::AccessKind::kRead : quorum::AccessKind::kWrite;
  // Per-access quorum draw into reusable scratch: pick() samples in place,
  // so the steady-state access path allocates nothing here.
  quorums_.pick(kind, rng_, quorum_scratch_);
  if (options_.ring != nullptr) {
    // Sharded mode: ServerIds index the key's replica group, resolved once
    // per access (the retry path re-resolves, which is what lets a retried
    // op survive ring membership edits mid-run — the cache inside
    // resolve_group invalidates on membership version, preserving that).
    resolve_group(pending.reg);
  }
  fanout_scratch_.clear();
  for (quorum::ServerId s : quorum_scratch_) {
    NodeId server = options_.ring != nullptr ? group_scratch_[s]
                                             : server_base_ + s;
    net::FanoutEntry entry{server, 0};
    if (pending.root_span != 0) {
      obs::SpanId rpc = options_.spans->begin(
          obs::SpanKind::kRpcAttempt, pending.root_span, self_,
          simulator_.now());
      obs::SpanRecord& rec = options_.spans->at(rpc);
      rec.reg = pending.reg;
      rec.op = op;
      rec.server = server;
      rec.attempt = pending.attempt + 1;
      pending.rpc_servers.push_back(server);
      pending.rpc_spans.push_back(rpc);
      entry.span = rpc;
    }
    fanout_scratch_.push_back(entry);
  }
  // One prototype per access instead of one message per server: the
  // transport stamps the per-target span ids and (SimTransport) schedules
  // the whole fan-out as a single batch.
  net::Message msg;
  if (sends_reads) {
    msg = net::Message::read_req(pending.reg, op);
  } else if (pending.in_write_back) {
    msg = net::Message::write_req(pending.reg, op, pending.best_ts,
                                  pending.best_value);
  } else {
    msg = net::Message::write_req(pending.reg, op, pending.write_ts,
                                  pending.write_value);
  }
  if (pending.root_span != 0) {
    msg.trace = options_.spans->at(pending.root_span).trace;
  }
  transport_.send_fanout(self_, fanout_scratch_.data(),
                         fanout_scratch_.size(), std::move(msg));
  if (options_.retry.rpc_timeout.has_value()) {
    arm_retry(op, pending.attempt);
  }
}

void QuorumRegisterClient::resolve_group(RegisterId reg) {
  const keyspace::HashRing& ring = *options_.ring;
  const std::size_t n = quorums_.num_servers();
  if (n > kGroupCacheMax) {
    ring.replica_group(reg, n, group_scratch_);
    return;
  }
  if (group_cache_version_ != ring.version()) {
    // Membership edit since the last resolution: every cached group is
    // suspect, drop them all.
    group_cache_ = {};
    group_cache_version_ = ring.version();
  }
  CachedGroup& cached = group_cache_.entry(reg);
  if (cached.count == 0) {
    ring.replica_group(reg, n, group_scratch_);
    cached.count = static_cast<std::uint8_t>(group_scratch_.size());
    std::copy(group_scratch_.begin(), group_scratch_.end(),
              cached.nodes.begin());
    return;
  }
  group_scratch_.assign(cached.nodes.begin(),
                        cached.nodes.begin() + cached.count);
}

void QuorumRegisterClient::arm_retry(OpId op, std::uint32_t attempt) {
  sim::Time wait = options_.retry.backoff(attempt, retry_rng_);
  simulator_.schedule_in(wait, sim::EventTag::kRetryTimer, [this, op,
                                                           attempt, wait] {
    auto it = pending_.find(op);
    if (it == pending_.end() || it->second.attempt != attempt) {
      return;  // completed, or already retried by an older timer
    }
    PendingOp& pending = it->second;
    if (pending.has_deadline && simulator_.now() >= pending.deadline_at) {
      return;  // the deadline event settles this op
    }
    ++pending.attempt;
    ++counters_.retries;
    if (instruments_.retries != nullptr) instruments_.retries->inc();
    if (pending.root_span != 0) {
      // Recorded only when the timer actually fires and escalates, so a
      // completed op never leaves a dangling wait span.  The wait covers
      // [fire - backoff, fire].
      obs::SpanId waited = options_.spans->begin(
          obs::SpanKind::kRetryWait, pending.root_span, self_,
          simulator_.now() - wait);
      obs::SpanRecord& rec = options_.spans->at(waited);
      rec.reg = pending.reg;
      rec.op = op;
      rec.attempt = pending.attempt + 1;  // the attempt this wait leads to
      options_.spans->finish(waited, obs::SpanStatus::kOk, simulator_.now());
    }
    send_to_quorum(op, pending);
  });
}

void QuorumRegisterClient::arm_deadline(OpId op) {
  simulator_.schedule_in(*options_.retry.deadline, sim::EventTag::kDeadline,
                         [this, op] {
                           auto it = pending_.find(op);
                           if (it == pending_.end()) return;  // done in time
                           finish_deadline(op, it->second);
                         });
}

void QuorumRegisterClient::finish_deadline(OpId op, PendingOp& pending) {
  const RetryPolicy& policy = options_.retry;
  const std::size_t acks = pending.responders.size();
  if (!policy.degraded_ok || acks < std::max<std::size_t>(
                                 policy.min_degraded_acks, 1)) {
    fail_op(op, pending);
    return;
  }
  pending.status = OpStatus::kDegraded;
  const auto n = static_cast<std::uint64_t>(quorums_.num_servers());
  if (pending.in_write_back) {
    // The read itself resolved; only the write-back phase is short.  Deliver
    // the value — atomicity degrades, regularity does not.
    deliver_read(op, pending);
  } else if (pending.is_snapshot) {
    pending.staleness_bound = util::asymmetric_nonoverlap_probability(
        n, quorums_.quorum_size(quorum::AccessKind::kWrite), acks);
    complete_snapshot(op, pending);
  } else if (pending.is_read) {
    pending.staleness_bound = util::asymmetric_nonoverlap_probability(
        n, quorums_.quorum_size(quorum::AccessKind::kWrite), acks);
    complete_read(op, pending);
  } else {
    pending.staleness_bound = util::asymmetric_nonoverlap_probability(
        n, acks, quorums_.quorum_size(quorum::AccessKind::kRead));
    complete_write(op, pending);
  }
}

void QuorumRegisterClient::fail_op(OpId op, PendingOp& pending) {
  // The history record stays unresponded (the spec checkers skip open ops)
  // and no trace event is emitted: a failed operation never took effect at
  // the register interface.  The span *is* closed (kTimedOut): causal
  // tracing exists precisely to show where the deadline budget went.
  close_op_span(pending, obs::SpanStatus::kTimedOut, /*ts=*/0,
                /*from_cache=*/false);
  ++counters_.op_failures;
  if (instruments_.op_failures != nullptr) instruments_.op_failures->inc();
  if (pending.is_snapshot) {
    SnapshotCallback cb = std::move(pending.snap_cb);
    std::vector<ReadResult> results(pending.snap_regs.size());
    for (ReadResult& r : results) r.status = OpStatus::kTimedOut;
    erase_pending(op);
    cb(std::move(results));
  } else if (pending.is_read) {
    ReadCallback cb = std::move(pending.read_cb);
    erase_pending(op);
    ReadResult result;
    result.status = OpStatus::kTimedOut;
    cb(std::move(result));
  } else {
    WriteCallback cb = std::move(pending.write_cb);
    WriteResult result;
    result.ts = pending.write_ts;
    result.status = OpStatus::kTimedOut;
    result.acks = pending.responders.size();
    erase_pending(op);
    cb(result);
  }
}

void QuorumRegisterClient::on_message(NodeId from, net::Message msg) {
  auto it = pending_.find(msg.op);
  if (it == pending_.end()) {
    return;  // ack for an operation that already completed (late or retried)
  }
  PendingOp& pending = it->second;
  PQRA_CHECK(msg.reg == pending.reg, "ack for the wrong register");
  bool expects_read_acks = pending.is_read && !pending.in_write_back;
  if (expects_read_acks != (msg.type == net::MsgType::kReadAck)) {
    // Stale ack from the read phase of an op that has moved on to its
    // write-back phase (possible with retries); ignore.
    return;
  }

  // Deduplicate per server: with retries a server may answer twice.
  for (NodeId seen : pending.responders) {
    if (seen == from) return;
  }
  pending.responders.push_back(from);
  if (pending.root_span != 0) close_rpc_span(pending, from, msg.ts);

  if (expects_read_acks) {
    if (pending.is_snapshot) {
      for (Replica::StoreEntry& entry : Replica::decode_store(msg.value)) {
        TimestampedValue& best = pending.snap_best[entry.reg];
        if (entry.ts >= best.ts) {
          best.ts = entry.ts;
          best.value = std::move(entry.value);
        }
      }
    } else {
      // The per-responder timestamps feed read repair and the span root's
      // fresh-set (ε-intersection) annotation.
      if (options_.read_repair || pending.root_span != 0) {
        pending.responder_ts.push_back(msg.ts);
      }
      if (msg.ts >= pending.best_ts) {
        pending.best_ts = msg.ts;
        pending.best_value = std::move(msg.value);
      }
    }
  }
  if (pending.responders.size() < pending.needed) return;

  if (pending.in_write_back) {
    deliver_read(msg.op, pending);
  } else if (pending.is_snapshot) {
    complete_snapshot(msg.op, pending);
  } else if (pending.is_read) {
    complete_read(msg.op, pending);
  } else {
    complete_write(msg.op, pending);
  }
}

void QuorumRegisterClient::complete_snapshot(OpId op, PendingOp& pending) {
  std::vector<ReadResult> results;
  results.reserve(pending.snap_regs.size());
  for (std::size_t i = 0; i < pending.snap_regs.size(); ++i) {
    RegisterId reg = pending.snap_regs[i];
    TimestampedValue& best = pending.snap_best[reg];
    ReadResult result;
    result.ts = best.ts;
    result.value = std::move(best.value);
    result.status = pending.status;
    result.acks = pending.responders.size();
    result.staleness_bound = pending.staleness_bound;
    Timestamp& seen = max_seen_ts_.entry(reg);
    pending.stale_depth = seen > result.ts ? seen - result.ts : 0;
    if (options_.monotone) {
      TimestampedValue& cached = monotone_cache_.entry(reg);
      if (cached.ts > result.ts) {
        result.ts = cached.ts;
        result.value = cached.value;
        result.from_monotone_cache = true;
        ++counters_.monotone_cache_hits;
        if (instruments_.cache_hits != nullptr) instruments_.cache_hits->inc();
      } else {
        cached.ts = result.ts;
        cached.value = result.value;
      }
    }
    if (seen < result.ts) seen = result.ts;
    if (instruments_.stale_depth != nullptr) {
      instruments_.stale_depth->observe(
          static_cast<double>(pending.stale_depth));
    }
    if (pending.has_hist) {
      history_->end_read(pending.snap_hists[i], simulator_.now(), result.ts);
    }
    if (options_.trace != nullptr) {
      record_trace(obs::TraceOpKind::kRead, pending, reg, result.ts,
                   result.from_monotone_cache);
    }
    results.push_back(std::move(result));
  }
  read_latency_.add(simulator_.now() - pending.started);
  if (instruments_.read_latency != nullptr) {
    instruments_.read_latency->observe(simulator_.now() - pending.started);
  }
  if (instruments_.reads != nullptr) {
    instruments_.reads->inc(pending.snap_regs.size());
  }
  counters_.reads_completed += pending.snap_regs.size();
  if (pending.status == OpStatus::kDegraded) {
    counters_.degraded_reads += pending.snap_regs.size();
    if (instruments_.degraded_reads != nullptr) {
      instruments_.degraded_reads->inc(pending.snap_regs.size());
    }
  }
  close_op_span(pending, span_status_of(pending.status),
                /*ts=*/0, /*from_cache=*/false);
  SnapshotCallback cb = std::move(pending.snap_cb);
  erase_pending(op);
  cb(std::move(results));
}

void QuorumRegisterClient::complete_read(OpId op, PendingOp& pending) {
  bool from_cache = false;
  {
    // Staleness depth t is judged against the quorum's answer, before the
    // monotone cache papers over it — the cache is the cure, not the
    // measurement.
    Timestamp seen = max_seen_ts_.entry(pending.reg);
    pending.stale_depth =
        seen > pending.best_ts ? seen - pending.best_ts : 0;
  }
  if (pending.root_span != 0) {
    // ε-intersection outcome: which responders held the quorum's freshest
    // timestamp — judged against the raw quorum answer for the same reason
    // as stale_depth above.
    for (std::size_t i = 0; i < pending.responder_ts.size(); ++i) {
      if (pending.responder_ts[i] == pending.best_ts) {
        pending.fresh.push_back(pending.responders[i]);
      }
    }
  }
  if (options_.monotone) {
    TimestampedValue& cached = monotone_cache_.entry(pending.reg);
    if (cached.ts > pending.best_ts) {
      // The quorum only produced older values than we have already returned;
      // [R4] requires re-returning the cached one (§6.2).
      pending.best_ts = cached.ts;
      pending.best_value = cached.value;
      from_cache = true;
      ++counters_.monotone_cache_hits;
      if (instruments_.cache_hits != nullptr) instruments_.cache_hits->inc();
    } else {
      cached.ts = pending.best_ts;
      cached.value = pending.best_value;
    }
  }
  {
    Timestamp& seen = max_seen_ts_.entry(pending.reg);
    if (seen < pending.best_ts) seen = pending.best_ts;
  }
  pending.from_cache = from_cache;

  if (options_.read_repair) {
    send_read_repair(pending, pending.best_ts, pending.best_value);
  }

  if (options_.write_back && pending.status == OpStatus::kOk) {
    // Degraded reads skip the write-back phase: the deadline has already
    // expired, and the atomicity upgrade is forfeit anyway.
    start_write_back(op, pending);
    return;
  }
  deliver_read(op, pending);
}

void QuorumRegisterClient::send_read_repair(const PendingOp& pending,
                                            Timestamp ts, const Value& value) {
  if (ts == 0) return;  // nothing newer than the initial value to push
  // Fire-and-forget: acks arrive under an op id that is never pending.
  OpId repair_op = next_op_++;
  fanout_scratch_.clear();
  for (std::size_t i = 0; i < pending.responder_ts.size(); ++i) {
    if (pending.responder_ts[i] >= ts) continue;
    fanout_scratch_.push_back(net::FanoutEntry{pending.responders[i], 0});
    ++counters_.repairs_sent;
    if (instruments_.repairs != nullptr) instruments_.repairs->inc();
  }
  if (fanout_scratch_.empty()) return;
  transport_.send_fanout(self_, fanout_scratch_.data(),
                         fanout_scratch_.size(),
                         net::Message::write_req(pending.reg, repair_op, ts,
                                                 value));
}

void QuorumRegisterClient::start_write_back(OpId op, PendingOp& pending) {
  ++counters_.write_backs;
  if (instruments_.write_backs != nullptr) instruments_.write_backs->inc();
  // Read-phase RPC spans end here: a late ReadAck is ignored by on_message
  // once the phase flips, so it must not be able to close anything.
  if (pending.root_span != 0) close_open_rpc_spans(pending);
  pending.in_write_back = true;
  pending.needed = quorums_.quorum_size(quorum::AccessKind::kWrite);
  pending.responders.clear();
  ++pending.attempt;  // invalidate read-phase retry timers
  send_to_quorum(op, pending);
}

void QuorumRegisterClient::deliver_read(OpId op, PendingOp& pending) {
  ReadResult result;
  result.ts = pending.best_ts;
  result.value = std::move(pending.best_value);
  result.from_monotone_cache = pending.from_cache;
  result.status = pending.status;
  result.acks = pending.responders.size();
  result.staleness_bound = pending.staleness_bound;
  if (pending.status == OpStatus::kDegraded) {
    ++counters_.degraded_reads;
    if (instruments_.degraded_reads != nullptr) {
      instruments_.degraded_reads->inc();
    }
  }
  if (pending.has_hist) {
    history_->end_read(pending.hist, simulator_.now(), result.ts);
  }
  read_latency_.add(simulator_.now() - pending.started);
  if (instruments_.read_latency != nullptr) {
    instruments_.read_latency->observe(simulator_.now() - pending.started);
  }
  if (instruments_.stale_depth != nullptr) {
    instruments_.stale_depth->observe(static_cast<double>(pending.stale_depth));
  }
  if (instruments_.reads != nullptr) instruments_.reads->inc();
  ++counters_.reads_completed;
  if (options_.trace != nullptr) {
    record_trace(obs::TraceOpKind::kRead, pending, pending.reg, result.ts,
                 result.from_monotone_cache);
  }
  close_op_span(pending, span_status_of(pending.status), result.ts,
                result.from_monotone_cache);
  ReadCallback cb = std::move(pending.read_cb);
  erase_pending(op);
  cb(std::move(result));
}

void QuorumRegisterClient::complete_write(OpId op, PendingOp& pending) {
  if (pending.has_hist) {
    history_->end_write(pending.hist, simulator_.now());
  }
  write_latency_.add(simulator_.now() - pending.started);
  if (instruments_.write_latency != nullptr) {
    instruments_.write_latency->observe(simulator_.now() - pending.started);
  }
  if (instruments_.writes != nullptr) instruments_.writes->inc();
  ++counters_.writes_completed;
  if (pending.status == OpStatus::kDegraded) {
    ++counters_.degraded_writes;
    if (instruments_.degraded_writes != nullptr) {
      instruments_.degraded_writes->inc();
    }
  }
  Timestamp ts = pending.write_ts;
  {
    Timestamp& seen = max_seen_ts_.entry(pending.reg);
    if (seen < ts) seen = ts;
  }
  if (options_.trace != nullptr) {
    record_trace(obs::TraceOpKind::kWrite, pending, pending.reg, ts, false);
  }
  close_op_span(pending, span_status_of(pending.status), ts, false);
  WriteResult result;
  result.ts = ts;
  result.status = pending.status;
  result.acks = pending.responders.size();
  result.staleness_bound = pending.staleness_bound;
  WriteCallback cb = std::move(pending.write_cb);
  erase_pending(op);
  cb(result);
}

Timestamp QuorumRegisterClient::last_written_ts(RegisterId reg) const {
  const Timestamp* ts = write_ts_.find(reg);
  return ts == nullptr ? 0 : *ts;
}

}  // namespace pqra::core
