#pragma once

/// \file typed_register.hpp
/// Typed convenience wrapper over the byte-blob register client.
///
/// Applications hold a TypedRegister<T> per shared component and never touch
/// the codec directly:
///
///   TypedRegister<std::vector<std::int64_t>> row(client, reg_id);
///   row.write(distances, [](Timestamp) { ... });
///   row.read([](Timestamp ts, std::vector<std::int64_t> v) { ... });

#include <utility>

#include "core/quorum_register_client.hpp"
#include "util/codec.hpp"

namespace pqra::core {

template <typename T>
class TypedRegister {
 public:
  TypedRegister(QuorumRegisterClient& client, RegisterId reg)
      : client_(&client), reg_(reg) {}

  /// \p cb is any callable `void(Timestamp, T)`.  Taking the callable's own
  /// type (instead of a std::function alias) matters: wrapping a
  /// std::function inside the decode lambda always overflowed the client
  /// callback's small-buffer storage, costing a heap allocation per read —
  /// a small lambda now rides through type erasure once and stays inline.
  template <typename Cb>
  void read(Cb cb) {
    client_->read(reg_, [cb = std::move(cb)](ReadResult r) mutable {
      cb(r.ts, util::decode<T>(r.value));
    });
  }

  /// \p cb is any callable accepting a WriteResult (or Timestamp).
  template <typename Cb>
  void write(const T& value, Cb cb) {
    client_->write(reg_, util::encode(value), std::move(cb));
  }

  RegisterId id() const { return reg_; }

 private:
  QuorumRegisterClient* client_;
  RegisterId reg_;
};

}  // namespace pqra::core
