#pragma once

/// \file typed_register.hpp
/// Typed convenience wrapper over the byte-blob register client.
///
/// Applications hold a TypedRegister<T> per shared component and never touch
/// the codec directly:
///
///   TypedRegister<std::vector<std::int64_t>> row(client, reg_id);
///   row.write(distances, [](Timestamp) { ... });
///   row.read([](Timestamp ts, std::vector<std::int64_t> v) { ... });

#include <functional>
#include <utility>

#include "core/quorum_register_client.hpp"
#include "util/codec.hpp"

namespace pqra::core {

template <typename T>
class TypedRegister {
 public:
  using ReadCallback = std::function<void(Timestamp, T)>;
  using WriteCallback = QuorumRegisterClient::WriteCallback;

  TypedRegister(QuorumRegisterClient& client, RegisterId reg)
      : client_(&client), reg_(reg) {}

  void read(ReadCallback cb) {
    client_->read(reg_, [cb = std::move(cb)](ReadResult r) {
      cb(r.ts, util::decode<T>(r.value));
    });
  }

  void write(const T& value, WriteCallback cb) {
    client_->write(reg_, util::encode(value), std::move(cb));
  }

  RegisterId id() const { return reg_; }

 private:
  QuorumRegisterClient* client_;
  RegisterId reg_;
};

}  // namespace pqra::core
