#pragma once

/// \file quorum_register_client.hpp
/// Client side of the (monotone) probabilistic quorum register protocol
/// over the discrete-event simulator.
///
/// Protocol (§4, simplified single-writer / failure-free form of
/// Malkhi–Reiter's algorithm):
///   read(X):  pick a read quorum, send ReadReq to each member, wait for all
///             k acks, return the value with the largest timestamp.
///   write(X): bump the register's (writer-local) timestamp, pick a write
///             quorum, send WriteReq(ts, v) to each member, wait for all
///             k acks.
///
/// Monotone variant (§6.2): the client remembers the largest-timestamped
/// value any read of X has returned; when a read's quorum only yields older
/// timestamps, the remembered value is returned instead.
///
/// The quorum system is pluggable, so instantiating this client with a
/// strict system (majority / grid / FPP) yields the regular-register
/// baseline used throughout §6.4.
///
/// Operations are asynchronous (continuation callbacks) because the client
/// is driven by simulator events.  Several operations on *different*
/// registers may be outstanding at once — Alg. 1 reads all m registers in
/// parallel — but per register the application must not pipeline operations
/// (condition (3) of §3's register interface).
///
/// Recovery (docs/FAULTS.md): ClientOptions::retry is a full RetryPolicy —
/// per-attempt timeout, exponential backoff with deterministic jitter, an
/// absolute operation deadline, and optional graceful degradation.  Each
/// retry samples a *fresh* quorum while acks keep accumulating under the
/// same operation id, which keeps the probabilistic register live when
/// servers crash (availability experiments); strict systems may block
/// forever in that regime, which is exactly the availability gap §4
/// describes.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/keyspace/flat_table.hpp"
#include "core/keyspace/hash_ring.hpp"
#include "core/register_types.hpp"
#include "core/spec/history.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "quorum/quorum_system.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pqra::core {

struct ReadResult {
  Timestamp ts = 0;
  Value value;
  bool from_monotone_cache = false;
  /// How the read completed; value/ts are meaningless for kTimedOut.
  OpStatus status = OpStatus::kOk;
  /// Distinct servers that answered the operation's final phase.
  std::size_t acks = 0;
  /// Degraded reads only: probability the partial access set missed the
  /// latest write's quorum, C(n - k_w, acks) / C(n, acks).
  double staleness_bound = 0.0;
};

struct WriteResult {
  Timestamp ts = 0;
  OpStatus status = OpStatus::kOk;
  std::size_t acks = 0;
  /// Degraded writes only: probability a later read quorum misses the
  /// partial set of servers that acked, C(n - acks, k_r) / C(n, k_r).
  double staleness_bound = 0.0;

  /// Implicit on purpose: legacy write callbacks take the bare timestamp.
  operator Timestamp() const { return ts; }  // NOLINT(google-explicit-*)
};

struct ClientOptions {
  /// Enables the §6.2 monotone cache.
  bool monotone = false;
  /// Recovery policy: retry.rpc_timeout re-sends to a freshly sampled quorum
  /// with backoff/jitter; retry.deadline bounds the whole operation (failing
  /// it or, with retry.degraded_ok, completing it on a partial access set).
  RetryPolicy retry;
  /// Read repair: after a read, asynchronously pushes the freshest
  /// (ts, value) seen to the responders that answered with older data.
  /// Fire-and-forget: does not delay the read.  Speeds up propagation.
  bool read_repair = false;
  /// Atomic mode (§8's "stronger registers" direction): before returning, a
  /// read writes the value it is about to return to a full write quorum.
  /// With a strict quorum system this yields a single-writer *atomic*
  /// register (no new/old inversion between readers); costs one extra
  /// round trip per read.
  bool write_back = false;
  /// Unified metrics pipeline (non-owning, may be nullptr): operation
  /// counters, sim-time latency histograms and the stale-read-depth
  /// histogram are reported under the obs/names.hpp client names,
  /// aggregated over every client sharing the registry.
  obs::Registry* metrics = nullptr;
  /// Structured op-trace sink (non-owning, may be nullptr): every completed
  /// read/write is recorded with its quorum membership; see obs/trace.hpp.
  obs::OpTraceSink* trace = nullptr;
  /// Causal span sink (non-owning, may be nullptr): sampled operations emit
  /// a span tree — client op → per-replica RPC attempt → retry wait — with
  /// the quorum membership and ε-intersection outcome annotated on the
  /// root.  Ids propagate in message headers so replicas can parent their
  /// handling spans; see obs/span.hpp and docs/OBSERVABILITY.md.
  obs::SpanSink* spans = nullptr;
  /// Sharded-store mode (docs/SHARDING.md, non-owning, may be nullptr):
  /// when set, the quorum system must be sized to one replica group
  /// (quorums.num_servers() == group size), and every access resolves its
  /// key's group through the ring — a drawn ServerId s becomes the group's
  /// s-th member instead of server_base + s.  All ε-intersection and
  /// staleness math is unchanged: it already runs over n = group size.
  /// Snapshot reads (whole-store, single group) are not supported per key.
  const keyspace::HashRing* ring = nullptr;
};

/// Per-client operation tallies.  This is the per-process attribution view
/// (what each Alg. 1 process did); the cross-layer pipeline is the
/// obs::Registry passed through ClientOptions::metrics, which aggregates the
/// same events over all clients.  Kept as a plain struct so reading it costs
/// nothing and per-process deltas stay trivial.
struct ClientCounters {
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t monotone_cache_hits = 0;
  std::uint64_t retries = 0;
  std::uint64_t repairs_sent = 0;     ///< stale replicas repaired after reads
  std::uint64_t write_backs = 0;      ///< atomic-mode write-back phases
  std::uint64_t degraded_reads = 0;   ///< reads completed on a partial set
  std::uint64_t degraded_writes = 0;  ///< writes completed on a partial set
  std::uint64_t op_failures = 0;      ///< operations that timed out outright
};

class QuorumRegisterClient final : public net::Receiver {
 public:
  // Per-op completion callbacks: one type-erasure per client operation,
  // amortized over the k-message quorum fan-out; the schedule->fire loop
  // itself carries sim::EventFn, never these.
  // pqra-lint: allow(hotpath-function) — per-op completion callback
  using ReadCallback = std::function<void(ReadResult)>;
  /// WriteResult converts to Timestamp, so `[](Timestamp ts)` lambdas work.
  // pqra-lint: allow(hotpath-function) — per-op completion callback
  using WriteCallback = std::function<void(WriteResult)>;

  /// \p server_base: servers occupy NodeIds [server_base, server_base + n)
  /// in the order of the quorum system's ServerIds.
  /// \p history: optional recorder for spec checking (may be nullptr).
  QuorumRegisterClient(sim::Simulator& simulator, net::Transport& transport,
                       NodeId self, const quorum::QuorumSystem& quorums,
                       NodeId server_base, const util::Rng& rng,
                       ClientOptions options = {},
                       spec::HistoryRecorder* history = nullptr);

  /// Starts a read of \p reg; \p cb fires when the quorum has answered.
  void read(RegisterId reg, ReadCallback cb);

  // pqra-lint: allow(hotpath-function) — per-op completion callback
  using SnapshotCallback = std::function<void(std::vector<ReadResult>)>;

  /// Snapshot read: fetches ALL of \p regs through a single quorum access
  /// (k whole-store messages instead of |regs| * k per-register exchanges —
  /// §6.4's read cost per round drops from 2pmk to 2pk).  Results arrive in
  /// the order of \p regs.  The trade-off is correlated staleness: one
  /// unlucky quorum is stale for every component at once.  Monotone caching
  /// applies per register; read repair and write-back do not apply to
  /// snapshots.
  void read_snapshot(std::vector<RegisterId> regs, SnapshotCallback cb);

  /// Starts a write of \p reg; \p cb fires when the quorum has acked.
  /// This client must be the register's only writer.
  void write(RegisterId reg, Value value, WriteCallback cb);

  void on_message(NodeId from, net::Message msg) override;

  const ClientCounters& counters() const { return counters_; }

  /// Simulated-time latency distributions (invocation to response).
  const util::OnlineStats& read_latency() const { return read_latency_; }
  const util::OnlineStats& write_latency() const { return write_latency_; }

  NodeId id() const { return self_; }

  /// Last timestamp this client wrote to \p reg (0 if none).
  Timestamp last_written_ts(RegisterId reg) const;

 private:
  struct PendingOp {
    bool is_read = true;
    bool is_snapshot = false;           ///< whole-store read
    bool in_write_back = false;         ///< atomic-mode phase 2 in progress
    bool from_cache = false;            ///< result came from the §6.2 cache
    RegisterId reg = 0;
    std::size_t needed = 0;             ///< quorum size
    std::vector<NodeId> responders;     ///< distinct servers that acked
    /// Timestamp each read responder reported (parallel to responders;
    /// kept only when read repair or span tracing is on).
    std::vector<Timestamp> responder_ts;
    /// Span state (obs/span.hpp).  root_span == 0 ⇔ this op is untraced
    /// (no sink, or not sampled); all other span work is gated on it.
    obs::SpanId root_span = 0;
    /// Open/closed RPC-attempt spans, parallel vectors: rpc_spans[i] is the
    /// span for the request sent to rpc_servers[i].  Closed on the first
    /// ack from that server; leftovers close as kUnanswered when the op
    /// settles or changes phase.
    std::vector<NodeId> rpc_servers;
    std::vector<obs::SpanId> rpc_spans;
    /// Responders that reported the quorum's best timestamp (the
    /// ε-intersection outcome), fixed in complete_read.
    std::vector<NodeId> fresh;
    Timestamp best_ts = 0;
    Value best_value;
    /// Snapshot state: requested registers, per-register best, callback and
    /// history handles (one recorded read per register).
    std::vector<RegisterId> snap_regs;
    std::unordered_map<RegisterId, TimestampedValue> snap_best;
    SnapshotCallback snap_cb;
    std::vector<spec::HistoryRecorder::OpHandle> snap_hists;
    ReadCallback read_cb;
    WriteCallback write_cb;
    Timestamp write_ts = 0;             ///< for writes and retries
    Value write_value;
    std::uint32_t attempt = 0;
    sim::Time started = 0.0;
    /// Absolute completion budget (started + retry.deadline), when armed.
    bool has_deadline = false;
    sim::Time deadline_at = 0.0;
    /// Settled by the deadline handler; kOk on the normal path.
    OpStatus status = OpStatus::kOk;
    double staleness_bound = 0.0;
    /// Staleness depth t of the completed read: how many writes the quorum's
    /// freshest answer lagged behind the newest timestamp this client had
    /// evidence of (0 = fresh).  Fixed in complete_read.
    Timestamp stale_depth = 0;
    spec::HistoryRecorder::OpHandle hist = 0;
    bool has_hist = false;

    /// Returns the op to its default-constructed state while keeping the
    /// capacity of every container — the whole point of recycling settled
    /// ops through pending_pool_ instead of freeing them.
    void reset() {
      is_read = true;
      is_snapshot = false;
      in_write_back = false;
      from_cache = false;
      reg = 0;
      needed = 0;
      responders.clear();
      responder_ts.clear();
      root_span = 0;
      rpc_servers.clear();
      rpc_spans.clear();
      fresh.clear();
      best_ts = 0;
      best_value = Value();
      snap_regs.clear();
      snap_best.clear();
      snap_cb = nullptr;
      snap_hists.clear();
      read_cb = nullptr;
      write_cb = nullptr;
      write_ts = 0;
      write_value = Value();
      attempt = 0;
      started = 0.0;
      has_deadline = false;
      deadline_at = 0.0;
      status = OpStatus::kOk;
      staleness_bound = 0.0;
      stale_depth = 0;
      hist = 0;
      has_hist = false;
    }
  };

  /// Shared-registry instrument pointers (null when metrics are off).
  struct Instruments {
    obs::Counter* reads = nullptr;
    obs::Counter* writes = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* repairs = nullptr;
    obs::Counter* write_backs = nullptr;
    obs::Counter* degraded_reads = nullptr;
    obs::Counter* degraded_writes = nullptr;
    obs::Counter* op_failures = nullptr;
    obs::Histogram* read_latency = nullptr;
    obs::Histogram* write_latency = nullptr;
    obs::Histogram* stale_depth = nullptr;
  };

  void record_trace(obs::TraceOpKind kind, const PendingOp& pending,
                    RegisterId reg, Timestamp ts, bool from_cache);

  /// Opens the root kClientOp span when a sink is bound and (self, op) is
  /// sampled; no-op otherwise.
  void begin_op_span(OpId op, PendingOp& pending, bool is_write,
                     RegisterId reg);
  /// Closes the first still-open RPC span to \p from with the acked ts.
  void close_rpc_span(PendingOp& pending, NodeId from, Timestamp ts);
  /// Closes every still-open RPC span as kUnanswered (op settled or moved
  /// to its write-back phase).
  void close_open_rpc_spans(PendingOp& pending);
  /// Annotates and closes the root span (quorum, fresh set, ts, staleness).
  void close_op_span(PendingOp& pending, obs::SpanStatus status, Timestamp ts,
                     bool from_cache);

  /// Registers a fresh PendingOp under \p op, reusing a recycled map node
  /// (and its grown container capacities) when one is parked in
  /// pending_pool_ — the steady-state issue path then allocates nothing.
  PendingOp& emplace_pending(OpId op);

  /// Removes the settled op and parks its node for reuse.  References into
  /// the PendingOp stay valid exactly as long as they did with a plain
  /// erase: until the next operation is issued.
  void erase_pending(OpId op);

  void send_to_quorum(OpId op, PendingOp& pending);
  /// Fills group_scratch_ with \p reg's replica group (ring mode only),
  /// through the version-checked group cache.
  void resolve_group(RegisterId reg);
  void arm_retry(OpId op, std::uint32_t attempt);
  void arm_deadline(OpId op);
  void finish_deadline(OpId op, PendingOp& pending);
  void fail_op(OpId op, PendingOp& pending);
  void complete_read(OpId op, PendingOp& pending);
  void complete_write(OpId op, PendingOp& pending);
  void send_read_repair(const PendingOp& pending, Timestamp ts,
                        const Value& value);
  void start_write_back(OpId op, PendingOp& pending);
  void deliver_read(OpId op, PendingOp& pending);
  void complete_snapshot(OpId op, PendingOp& pending);

  sim::Simulator& simulator_;
  net::Transport& transport_;
  NodeId self_;
  const quorum::QuorumSystem& quorums_;
  NodeId server_base_;
  util::Rng rng_;
  /// Dedicated stream for retry jitter: backoff draws never perturb the
  /// quorum-sampling stream, so fault-free replays stay byte-identical.
  util::Rng retry_rng_;
  ClientOptions options_;
  spec::HistoryRecorder* history_;

  OpId next_op_ = 1;
  /// Scratch for per-access quorum draws (send_to_quorum): pick() fills it
  /// in place, reusing capacity across every operation and retry.
  std::vector<quorum::ServerId> quorum_scratch_;
  /// Scratch for the key's replica group in ring mode (same reuse contract).
  std::vector<NodeId> group_scratch_;
  /// Memoized ring resolutions, valid for one HashRing::version(): group
  /// lookup is two binary searches plus a dedup scan per access otherwise,
  /// and a key's group never changes between membership edits.  Only groups
  /// of at most kGroupCacheMax nodes are cached (flat fixed-width slots).
  static constexpr std::size_t kGroupCacheMax = 8;
  struct CachedGroup {
    std::array<NodeId, kGroupCacheMax> nodes{};
    std::uint8_t count = 0;
  };
  keyspace::FlatTable<CachedGroup> group_cache_;
  std::uint64_t group_cache_version_ = 0;
  /// Scratch for the fan-out target list handed to Transport::send_fanout.
  std::vector<net::FanoutEntry> fanout_scratch_;
  std::unordered_map<OpId, PendingOp> pending_;
  /// Settled-op map nodes awaiting reuse (see emplace_pending).
  std::vector<std::unordered_map<OpId, PendingOp>::node_type> pending_pool_;
  /// The per-register tables are keyspace::FlatTables, not unordered_maps:
  /// they sit on the ack hot path (two lookups per completed op), are never
  /// iterated, and the flat probe sequence is allocation-free after the
  /// amortized growth.
  keyspace::FlatTable<Timestamp> write_ts_;
  keyspace::FlatTable<TimestampedValue> monotone_cache_;
  /// Newest timestamp this client has seen per register (reads and own
  /// writes), independent of the monotone cache so staleness depth is
  /// measurable for plain clients too.
  keyspace::FlatTable<Timestamp> max_seen_ts_;
  ClientCounters counters_;
  Instruments instruments_;
  util::OnlineStats read_latency_;
  util::OnlineStats write_latency_;
};

}  // namespace pqra::core
