#pragma once

/// \file history.hpp
/// Execution-history recording for the register-specification checkers.
///
/// The random-register conditions [R1], [R2] and [R4] of §3/§6.1 are
/// trace properties; recording every operation's invocation/response times
/// and the timestamp it wrote/returned lets tests check them on real
/// executions.  Because each register has a single writer issuing strictly
/// increasing timestamps, "read R reads from write W" reduces to "R returned
/// W's timestamp", which sidesteps the value-ambiguity the paper's footnote 1
/// discusses.

#include <cstdint>
#include <vector>

#include "core/register_types.hpp"
#include "sim/simulator.hpp"

namespace pqra::core::spec {

enum class OpKind : std::uint8_t { kRead = 0, kWrite = 1 };

struct OpRecord {
  OpKind kind = OpKind::kRead;
  NodeId proc = 0;
  RegisterId reg = 0;
  sim::Time invoke = 0.0;
  sim::Time response = 0.0;
  bool responded = false;
  /// For writes: the timestamp written (fixed at invocation).
  /// For reads: the timestamp returned (fixed at response).
  Timestamp ts = 0;
};

/// Collects OpRecords.  Not thread-safe; the threaded runtime records through
/// its own lock (see ConcurrentHistoryRecorder).
class HistoryRecorder {
 public:
  using OpHandle = std::size_t;

  /// Declares the preloaded initial value of \p reg: modeled as a write with
  /// timestamp 0 completing at time 0 by the pseudo-process \p writer.
  void record_initial(RegisterId reg, NodeId writer = 0);

  /// Pre-sizes the record vector (e.g. one record per preloaded key plus
  /// the expected op count) so bulk recording skips reallocation.
  void reserve(std::size_t records) { ops_.reserve(records); }

  OpHandle begin_read(NodeId proc, RegisterId reg, sim::Time now);
  void end_read(OpHandle h, sim::Time now, Timestamp ts_returned);

  OpHandle begin_write(NodeId proc, RegisterId reg, sim::Time now,
                       Timestamp ts);
  void end_write(OpHandle h, sim::Time now);

  const std::vector<OpRecord>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }

 private:
  std::vector<OpRecord> ops_;
};

}  // namespace pqra::core::spec
