#include "core/spec/history.hpp"

#include "util/check.hpp"

namespace pqra::core::spec {

void HistoryRecorder::record_initial(RegisterId reg, NodeId writer) {
  OpRecord rec;
  rec.kind = OpKind::kWrite;
  rec.proc = writer;
  rec.reg = reg;
  rec.invoke = 0.0;
  rec.response = 0.0;
  rec.responded = true;
  rec.ts = 0;
  ops_.push_back(rec);
}

HistoryRecorder::OpHandle HistoryRecorder::begin_read(NodeId proc,
                                                      RegisterId reg,
                                                      sim::Time now) {
  OpRecord rec;
  rec.kind = OpKind::kRead;
  rec.proc = proc;
  rec.reg = reg;
  rec.invoke = now;
  ops_.push_back(rec);
  return ops_.size() - 1;
}

void HistoryRecorder::end_read(OpHandle h, sim::Time now,
                               Timestamp ts_returned) {
  PQRA_REQUIRE(h < ops_.size(), "bad op handle");
  OpRecord& rec = ops_[h];
  PQRA_REQUIRE(rec.kind == OpKind::kRead && !rec.responded,
               "end_read on a non-pending read");
  rec.response = now;
  rec.responded = true;
  rec.ts = ts_returned;
}

HistoryRecorder::OpHandle HistoryRecorder::begin_write(NodeId proc,
                                                       RegisterId reg,
                                                       sim::Time now,
                                                       Timestamp ts) {
  OpRecord rec;
  rec.kind = OpKind::kWrite;
  rec.proc = proc;
  rec.reg = reg;
  rec.invoke = now;
  rec.ts = ts;
  ops_.push_back(rec);
  return ops_.size() - 1;
}

void HistoryRecorder::end_write(OpHandle h, sim::Time now) {
  PQRA_REQUIRE(h < ops_.size(), "bad op handle");
  OpRecord& rec = ops_[h];
  PQRA_REQUIRE(rec.kind == OpKind::kWrite && !rec.responded,
               "end_write on a non-pending write");
  rec.response = now;
  rec.responded = true;
}

}  // namespace pqra::core::spec
