#include "core/spec/checker.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

namespace pqra::core::spec {

namespace {

/// Key for per-register write lookup.  Several writes may share a key:
/// contended keys (writers-per-key > 1) have independent per-writer
/// timestamp counters, so (reg, ts) is only unique in single-writer
/// histories.
using WriteKey = std::pair<RegisterId, Timestamp>;

std::map<WriteKey, std::vector<const OpRecord*>> index_writes(
    const std::vector<OpRecord>& ops) {
  std::map<WriteKey, std::vector<const OpRecord*>> writes;
  for (const OpRecord& op : ops) {
    if (op.kind == OpKind::kWrite) {
      writes[{op.reg, op.ts}].push_back(&op);
    }
  }
  return writes;
}

std::string describe_op(const OpRecord& op) {
  std::ostringstream os;
  os << (op.kind == OpKind::kRead ? "read" : "write") << "(proc=" << op.proc
     << ", reg=" << op.reg << ", ts=" << op.ts << ", t=[" << op.invoke << ", "
     << (op.responded ? op.response : -1.0) << "])";
  return os.str();
}

}  // namespace

void CheckResult::fail(std::string message) {
  ok = false;
  violations.push_back(std::move(message));
}

CheckResult check_r1(const std::vector<OpRecord>& ops) {
  CheckResult result;
  for (const OpRecord& op : ops) {
    if (!op.responded) {
      result.fail("[R1] unresponded operation: " + describe_op(op));
    }
  }
  return result;
}

CheckResult check_r2(const std::vector<OpRecord>& ops) {
  CheckResult result;
  auto writes = index_writes(ops);
  for (const OpRecord& op : ops) {
    if (op.kind != OpKind::kRead || !op.responded) continue;
    auto it = writes.find({op.reg, op.ts});
    if (it == writes.end()) {
      result.fail("[R2] read returned a never-written timestamp: " +
                  describe_op(op));
      continue;
    }
    // The read is justified if at least one matching write could have been
    // its source; with duplicate (reg, ts) keys any candidate will do, so
    // only fail when every one began after the read ended (the violation
    // cites the earliest-invoking candidate — the closest miss).
    const OpRecord* best = it->second.front();
    for (const OpRecord* w : it->second) {
      if (w->invoke < best->invoke) best = w;
    }
    if (best->invoke > op.response) {
      result.fail("[R2] read returned a write that began after the read "
                  "ended: " +
                  describe_op(op) + " vs " + describe_op(*best));
    }
  }
  return result;
}

CheckResult check_r4(const std::vector<OpRecord>& ops) {
  CheckResult result;
  // Collect responded reads, sort by response time (stable on record order
  // for simultaneous responses, which matches delivery order in the DES).
  std::map<std::pair<NodeId, RegisterId>, std::vector<const OpRecord*>> reads;
  for (const OpRecord& op : ops) {
    if (op.kind == OpKind::kRead && op.responded) {
      reads[{op.proc, op.reg}].push_back(&op);
    }
  }
  for (auto& [key, list] : reads) {
    std::stable_sort(list.begin(), list.end(),
                     [](const OpRecord* a, const OpRecord* b) {
                       return a->response < b->response;
                     });
    Timestamp last = 0;
    for (const OpRecord* op : list) {
      if (op->ts < last) {
        result.fail("[R4] read went backwards: " + describe_op(*op));
      }
      last = std::max(last, op->ts);
    }
  }
  return result;
}

CheckResult check_single_writer(const std::vector<OpRecord>& ops) {
  CheckResult result;
  struct WriterState {
    bool seen = false;
    NodeId proc = 0;
    Timestamp max_ts = 0;
  };
  std::map<RegisterId, WriterState> writers;
  for (const OpRecord& op : ops) {
    if (op.kind != OpKind::kWrite || op.ts == 0) continue;  // skip initials
    WriterState& w = writers[op.reg];
    if (w.seen && w.proc != op.proc) {
      result.fail("[SW] second writer for register: " + describe_op(op));
    }
    if (w.seen && op.ts <= w.max_ts) {
      result.fail("[SW] non-increasing write timestamp: " + describe_op(op));
    }
    w.seen = true;
    w.proc = op.proc;
    w.max_ts = std::max(w.max_ts, op.ts);
  }
  return result;
}

CheckResult check_regular(const std::vector<OpRecord>& ops) {
  CheckResult result;
  // Per register: a read may return the latest write completed before its
  // invocation or any write concurrent with it; i.e. ts must lie in
  // [latest completed before invoke, latest invoked before response].
  std::map<RegisterId, std::vector<const OpRecord*>> writes;
  for (const OpRecord& op : ops) {
    if (op.kind == OpKind::kWrite) writes[op.reg].push_back(&op);
  }
  for (const OpRecord& op : ops) {
    if (op.kind != OpKind::kRead || !op.responded) continue;
    Timestamp lo = 0;
    Timestamp hi = 0;
    for (const OpRecord* w : writes[op.reg]) {
      if (w->responded && w->response <= op.invoke) lo = std::max(lo, w->ts);
      if (w->invoke <= op.response) hi = std::max(hi, w->ts);
    }
    if (op.ts < lo || op.ts > hi) {
      std::ostringstream os;
      os << "[REG] read outside the regular window [" << lo << ", " << hi
         << "]: " << describe_op(op);
      result.fail(os.str());
    }
  }
  return result;
}

CheckResult check_atomic(const std::vector<OpRecord>& ops) {
  CheckResult result = check_regular(ops);
  // New/old inversion: order completed reads per register by response time
  // and require non-decreasing timestamps whenever they do not overlap.
  std::map<RegisterId, std::vector<const OpRecord*>> reads;
  for (const OpRecord& op : ops) {
    if (op.kind == OpKind::kRead && op.responded) reads[op.reg].push_back(&op);
  }
  for (auto& [reg, list] : reads) {
    std::stable_sort(list.begin(), list.end(),
                     [](const OpRecord* a, const OpRecord* b) {
                       return a->response < b->response;
                     });
    // For each read, compare against the max timestamp of reads that
    // completed strictly before it was invoked.
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (list[j]->response < list[i]->invoke &&
            list[i]->ts < list[j]->ts) {
          result.fail("[ATOMIC] new/old inversion: " + describe_op(*list[i]) +
                      " after " + describe_op(*list[j]));
        }
      }
    }
  }
  return result;
}

CheckResult check_random_register(const std::vector<OpRecord>& ops,
                                  bool monotone) {
  CheckResult merged;
  for (const CheckResult& r :
       {check_r1(ops), check_r2(ops), check_single_writer(ops),
        monotone ? check_r4(ops) : CheckResult{}}) {
    if (!r.ok) {
      merged.ok = false;
      merged.violations.insert(merged.violations.end(), r.violations.begin(),
                               r.violations.end());
    }
  }
  return merged;
}

}  // namespace pqra::core::spec
