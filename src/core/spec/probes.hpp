#pragma once

/// \file probes.hpp
/// Cheap runtime invariant probes for the schedule-exploration fuzzer.
///
/// The spec checkers (checker.hpp) judge the recorded operation history
/// after a run; these probes additionally watch *internal* state the
/// history cannot see — replica stores and the COW payload representation —
/// at points the fuzzer chooses (periodic probe events plus one final
/// observation).  Each probe reports through the same CheckResult type so
/// a probe failure shrinks and replays exactly like a spec violation,
/// under the rule ids "probe:store-ts" and "probe:value-cow".

#include <map>
#include <utility>

#include "core/replica.hpp"
#include "core/spec/checker.hpp"

namespace pqra::core::spec {

/// Watches replica stores across observations:
///
///   - store timestamp monotonicity: a replica's stored timestamp for a
///     register never decreases between observations (stale WriteReqs and
///     gossip merges must be ignored, never applied);
///   - COW net::Value refcount sanity: a stored payload is either empty
///     with no buffer, or non-empty with use_count() >= 1 (value.hpp's
///     null-or-non-empty invariant, observed through the public API);
///   - snapshot consistency: decode_store(encode_store()) agrees with the
///     live store entry by entry (the gossip wire format cannot drift from
///     the store it advertises).
///
/// observe() is deterministic and read-only; call it from a scheduled DES
/// event as often as the budget allows.
class StoreProbe {
 public:
  /// Checks one replica's store against everything seen so far and folds
  /// the replica's current timestamps into the watch state.
  CheckResult observe(NodeId server, const Replica& replica);

  /// Drops the watch state for \p server.  Durable recovery legitimately
  /// rewinds a store to its durable prefix (an acked-but-unsynced write is
  /// lost by an injected fsync fault, docs/DURABILITY.md); the durability
  /// oracle judges that rewind itself, then forgets the node here so the
  /// monotonicity probe doesn't re-report it as a store-ts violation.
  void forget(NodeId server);

 private:
  std::map<std::pair<NodeId, RegisterId>, Timestamp> last_seen_;
};

}  // namespace pqra::core::spec
