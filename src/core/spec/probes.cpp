#include "core/spec/probes.hpp"

#include <sstream>

namespace pqra::core::spec {

namespace {

std::string where(NodeId server, RegisterId reg) {
  std::ostringstream os;
  os << "server=" << server << ", reg=" << reg;
  return os.str();
}

}  // namespace

CheckResult StoreProbe::observe(NodeId server, const Replica& replica) {
  CheckResult result;
  // encode_store() emits a sorted snapshot (replica.cpp), so the iteration
  // order here is deterministic and the probe itself exercises the gossip
  // wire format on every observation.
  const std::vector<Replica::StoreEntry> snapshot =
      Replica::decode_store(replica.encode_store());
  for (const Replica::StoreEntry& entry : snapshot) {
    const TimestampedValue* live = replica.get(entry.reg);
    if (live == nullptr) {
      result.fail("[probe:store-ts] encoded store advertises a register the "
                  "live store lacks: " +
                  where(server, entry.reg));
      continue;
    }
    if (live->ts != entry.ts || live->value.bytes() != entry.value.bytes()) {
      result.fail("[probe:store-ts] encode/decode snapshot diverged from the "
                  "live store: " +
                  where(server, entry.reg));
    }
    // net::Value invariant: the empty payload is represented by a null rep
    // (use_count 0); a non-empty payload owns a buffer (use_count >= 1).
    const bool empty = live->value.empty();
    const long refs = live->value.use_count();
    if (empty ? refs != 0 : refs < 1) {
      std::ostringstream os;
      os << "[probe:value-cow] payload refcount out of contract (empty="
         << empty << ", use_count=" << refs << "): " << where(server,
                                                             entry.reg);
      result.fail(os.str());
    }
    const auto key = std::make_pair(server, entry.reg);
    auto it = last_seen_.find(key);
    if (it != last_seen_.end() && entry.ts < it->second) {
      std::ostringstream os;
      os << "[probe:store-ts] replica timestamp went backwards ("
         << it->second << " -> " << entry.ts << "): "
         << where(server, entry.reg);
      result.fail(os.str());
    }
    if (it == last_seen_.end()) {
      last_seen_.emplace(key, entry.ts);
    } else {
      it->second = std::max(it->second, entry.ts);
    }
  }
  return result;
}

void StoreProbe::forget(NodeId server) {
  auto it = last_seen_.lower_bound({server, 0});
  while (it != last_seen_.end() && it->first.first == server) {
    it = last_seen_.erase(it);
  }
}

}  // namespace pqra::core::spec
