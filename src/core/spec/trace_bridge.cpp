#include "core/spec/trace_bridge.hpp"

namespace pqra::core::spec {

std::vector<OpRecord> to_op_records(
    const std::vector<obs::OpTraceEvent>& events) {
  std::vector<OpRecord> ops;
  ops.reserve(events.size());
  for (const obs::OpTraceEvent& ev : events) {
    OpRecord rec;
    rec.kind =
        ev.kind == obs::TraceOpKind::kRead ? OpKind::kRead : OpKind::kWrite;
    rec.proc = ev.proc;
    rec.reg = ev.reg;
    rec.invoke = ev.invoke;
    rec.response = ev.response;
    rec.responded = true;
    rec.ts = ev.ts;
    ops.push_back(rec);
  }
  return ops;
}

std::vector<obs::OpTraceEvent> to_trace_events(
    const std::vector<OpRecord>& ops) {
  std::vector<obs::OpTraceEvent> events;
  events.reserve(ops.size());
  for (const OpRecord& rec : ops) {
    if (!rec.responded) continue;
    obs::OpTraceEvent ev;
    ev.kind = rec.kind == OpKind::kRead ? obs::TraceOpKind::kRead
                                        : obs::TraceOpKind::kWrite;
    ev.proc = rec.proc;
    ev.reg = rec.reg;
    ev.invoke = rec.invoke;
    ev.response = rec.response;
    ev.ts = rec.ts;
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace pqra::core::spec
