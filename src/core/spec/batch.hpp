#pragma once

/// \file batch.hpp
/// Batch entry points over the individual spec checkers, keyed by stable
/// rule ids.
///
/// The schedule-exploration fuzzer (tools/explore) pipes every recorded
/// history through a configurable set of checkers and needs to know *which*
/// rule a violating schedule broke — the shrinker only accepts a reduction
/// when the candidate still fails the same rule, and repro files name the
/// rule they reproduce.  check_batch runs the selected checkers and returns
/// per-rule outcomes; tests/core/spec_batch_test.cpp pins the id
/// attribution (a history violating exactly one rule is flagged with
/// exactly that id).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/spec/checker.hpp"
#include "core/spec/history.hpp"

namespace pqra::core::spec {

/// The deterministically checkable rules of the register spec (checker.hpp).
enum class Rule : std::uint8_t {
  kR1,            ///< completeness: every operation responded
  kR2,            ///< reads-from: returned timestamps were really written
  kR4,            ///< monotone reads per process and register
  kSingleWriter,  ///< one writer, strictly increasing timestamps
  kRegular,       ///< Lamport regularity (strict-quorum baseline)
  kAtomic,        ///< single-writer atomicity (write-back mode)
};

/// Stable id used in repro files, test names and diagnostics:
/// "R1", "R2", "R4", "single-writer", "regular", "atomic".
const char* rule_id(Rule rule);

/// Inverse of rule_id; nullopt for unknown ids.
std::optional<Rule> parse_rule(std::string_view id);

/// Which rules to run.  The defaults are the safety conditions every
/// recorded history must satisfy; R4 additionally requires the clients
/// under test to be monotone, and regular/atomic require a strict quorum
/// system (+ write-back for atomic), so those are opt-in.
struct BatchOptions {
  bool r1 = true;
  bool r2 = true;
  bool r4 = false;
  bool single_writer = true;
  bool regular = false;
  bool atomic = false;
};

struct RuleOutcome {
  Rule rule = Rule::kR1;
  CheckResult result;
};

struct BatchResult {
  /// One outcome per selected rule, in Rule declaration order.
  std::vector<RuleOutcome> outcomes;

  bool ok() const;

  /// First failing outcome in rule order (deterministic attribution when a
  /// history breaks several rules at once), nullptr when ok().
  const RuleOutcome* first_failure() const;

  /// "<rule-id>: <first violation> (+N more)" for the first failure, or
  /// "ok" — the one-line form the fuzzer logs and embeds in repro files.
  std::string summary() const;

  /// Total violations across all selected rules.
  std::size_t num_violations() const;
};

/// Runs every rule selected in \p options against \p ops.
BatchResult check_batch(const std::vector<OpRecord>& ops,
                        const BatchOptions& options);

/// First failure of a key-partitioned batch check: which rule broke, on
/// which key, with the first violation's text.
struct KeyedFirstFailure {
  Rule rule = Rule::kR1;
  RegisterId key = 0;
  std::string violation;
};

struct KeyedBatchResult {
  std::size_t keys_checked = 0;
  std::size_t num_violations = 0;
  /// Lowest violating key's first failing rule (deterministic attribution:
  /// keys ascend, rules follow declaration order within a key).
  std::optional<KeyedFirstFailure> first;

  bool ok() const { return num_violations == 0; }

  /// "<rule-id> key=<k>: <violation> (+N more)" or "ok over K keys" — the
  /// one-line form the fuzzer and experiment_cli's store app print.
  std::string summary() const;
};

/// Key-parameterized batch check (docs/SHARDING.md): partitions \p ops by
/// key (register id), runs the selected rules independently per key in
/// ascending key order, and attributes the first failure as (rule, key).
///
/// Every rule in BatchOptions is already per-key independent — R1/R2/R4,
/// single-writer, regular and atomic all constrain operations on one
/// register only — so partitioning never changes the verdict of
/// check_batch; what it adds is the key attribution and, for million-key
/// histories, per-key working sets.  tests/core/spec_batch_test.cpp pins
/// the equivalence.
KeyedBatchResult check_batch_by_key(const std::vector<OpRecord>& ops,
                                    const BatchOptions& options);

}  // namespace pqra::core::spec
