#pragma once

/// \file probabilistic_checks.hpp
/// Statistical validators for the probabilistic register conditions.
///
/// [R3] and [R5] are statements about distributions, not single traces, so
/// they are validated by dedicated quorum-level experiments (no transport —
/// just the quorum sampling process, which is what the proofs of Theorem 1
/// and Theorem 4 reason about) plus an extractor that pulls empirical
/// Y samples out of full protocol histories.

#include <cstdint>
#include <vector>

#include "core/spec/history.hpp"
#include "quorum/quorum_system.hpp"
#include "util/rng.hpp"

namespace pqra::core::spec {

/// One trial of the [R3] survival process: perform a write W (random quorum),
/// then l more writes; report whether some replica in W's quorum still holds
/// W afterwards.  Returns the empirical survival probability over \p trials.
/// Theorem 1 bounds this by k * ((n-k)/n)^l.
double r3_survival_rate(const quorum::QuorumSystem& qs, std::size_t l,
                        std::size_t trials, util::Rng& rng);

/// Samples the [R5] variable Y directly: after a write with a random quorum,
/// count read-quorum draws until one intersects the write's quorum.
/// Theorem 4: P(Y = r) <= (1-q)^{r-1} q with q = 1 - C(n-k,k)/C(n,k).
std::vector<std::uint64_t> r5_y_samples(const quorum::QuorumSystem& qs,
                                        std::size_t samples, util::Rng& rng,
                                        std::uint64_t cap = 1u << 20);

/// Under-fault variants: the servers listed in \p crashed are unavailable
/// and every quorum draw is rejection-sampled until it avoids all of them —
/// the sampling process a retrying client (acks accumulating across fresh
/// quorums, docs/FAULTS.md) converges to.  Conditional on avoiding the
/// crashed set, an access set is a uniform k-subset of the n' = n - f live
/// servers, so the [R5] tail stays geometric with the ratio recomputed at
/// n': q' = 1 - C(n'-k,k)/C(n',k).  Requires n' >= the access-set size.
double r3_survival_rate_under_crashes(
    const quorum::QuorumSystem& qs, std::size_t l, std::size_t trials,
    util::Rng& rng, const std::vector<quorum::ServerId>& crashed);

std::vector<std::uint64_t> r5_y_samples_under_crashes(
    const quorum::QuorumSystem& qs, std::size_t samples, util::Rng& rng,
    const std::vector<quorum::ServerId>& crashed, std::uint64_t cap = 1u << 20);

/// Extracts empirical Y samples from a recorded protocol history: for each
/// write W to \p reg and the reader \p proc, the number of reads by \p proc
/// invoked after W completed until one returns W's timestamp or newer.
/// Censored observations (history ends first) are dropped.
std::vector<std::uint64_t> y_samples_from_history(
    const std::vector<OpRecord>& ops, RegisterId reg, NodeId proc);

}  // namespace pqra::core::spec
