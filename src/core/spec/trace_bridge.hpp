#pragma once

/// \file trace_bridge.hpp
/// Converts obs:: op-trace events into spec::OpRecord rows so a captured
/// (or re-parsed) JSONL trace can be replayed through the [R1]/[R2]/[R4]
/// register-spec checkers.  The two vocabularies coincide by construction —
/// obs::OpTraceEvent carries the history fields plus protocol extras the
/// checkers do not consume (quorum membership, retries, staleness depth).

#include <vector>

#include "core/spec/history.hpp"
#include "obs/trace.hpp"

namespace pqra::core::spec {

/// One OpRecord per trace event, in trace order.  Every trace event is a
/// completed operation, so the records all have responded = true.
std::vector<OpRecord> to_op_records(const std::vector<obs::OpTraceEvent>& events);

/// The reverse direction, for emitting an existing HistoryRecorder capture
/// through the obs:: writers.  Unresponded records are skipped (a trace only
/// contains completed operations); protocol extras default to empty.
std::vector<obs::OpTraceEvent> to_trace_events(const std::vector<OpRecord>& ops);

}  // namespace pqra::core::spec
