#pragma once

/// \file checker.hpp
/// Trace checkers for the register specification.
///
/// check_r1/check_r2/check_r4 verify the deterministic conditions of the
/// random-register definition (§3) and its monotone refinement (§6.1) on a
/// recorded history.  check_regular verifies Lamport regularity, which the
/// strict-quorum baseline must satisfy.  The probabilistic conditions [R3]
/// and [R5] cannot be checked on a single finite trace; see
/// probabilistic_checks.hpp for their statistical validators.

#include <string>
#include <vector>

#include "core/spec/history.hpp"

namespace pqra::core::spec {

struct CheckResult {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string message);
};

/// [R1]: every operation in a complete execution has a matching response.
CheckResult check_r1(const std::vector<OpRecord>& ops);

/// [R2]: every read reads from some write: the timestamp a read returned was
/// actually written (or is the initial value), by a write that began before
/// the read ended.
CheckResult check_r2(const std::vector<OpRecord>& ops);

/// [R4]: per process and register, reads-from never goes backwards: the
/// returned timestamps of each process's reads of each register are
/// non-decreasing in response order.
CheckResult check_r4(const std::vector<OpRecord>& ops);

/// Single-writer sanity: per register, writes come from one process with
/// strictly increasing timestamps.  (A precondition of the other checks.)
CheckResult check_single_writer(const std::vector<OpRecord>& ops);

/// Lamport regularity (what a strict quorum system provides): every read
/// returns the timestamp of the latest write that completed before the read
/// was invoked, or of some write concurrent with the read.
CheckResult check_regular(const std::vector<OpRecord>& ops);

/// Single-writer atomicity (Lamport): regularity plus no new/old inversion —
/// if read R1 completes before read R2 is invoked (any two processes), R2
/// must not return an older timestamp than R1.  This is what the client's
/// write-back mode provides over a strict quorum system (§8's "stronger
/// registers" direction).
CheckResult check_atomic(const std::vector<OpRecord>& ops);

/// Runs R1+R2+single-writer (+R4 when \p monotone) and merges the results.
CheckResult check_random_register(const std::vector<OpRecord>& ops,
                                  bool monotone);

}  // namespace pqra::core::spec
