#include "core/spec/probabilistic_checks.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pqra::core::spec {

namespace {

std::vector<bool> crash_mask(const quorum::QuorumSystem& qs,
                             const std::vector<quorum::ServerId>& crashed) {
  std::vector<bool> down(qs.num_servers(), false);
  for (quorum::ServerId s : crashed) {
    PQRA_REQUIRE(s < qs.num_servers(), "crashed server id out of range");
    down[s] = true;
  }
  std::size_t f = static_cast<std::size_t>(
      std::count(down.begin(), down.end(), true));
  PQRA_REQUIRE(
      qs.num_servers() - f >= qs.quorum_size(quorum::AccessKind::kRead) &&
          qs.num_servers() - f >= qs.quorum_size(quorum::AccessKind::kWrite),
      "fewer live servers than an access set needs");
  return down;
}

/// Draws quorums until one avoids every crashed server.
void pick_live(const quorum::QuorumSystem& qs, quorum::AccessKind kind,
               util::Rng& rng, const std::vector<bool>& down,
               std::vector<quorum::ServerId>& out) {
  do {
    qs.pick(kind, rng, out);
  } while (std::any_of(out.begin(), out.end(),
                       [&](quorum::ServerId s) { return down[s]; }));
}

}  // namespace

double r3_survival_rate(const quorum::QuorumSystem& qs, std::size_t l,
                        std::size_t trials, util::Rng& rng) {
  PQRA_REQUIRE(trials > 0, "need at least one trial");
  std::size_t n = qs.num_servers();
  std::size_t survived = 0;
  // holder[s] == current write's id at replica s; the target write is id 0,
  // subsequent writes are 1..l.
  std::vector<std::uint64_t> holder(n);
  std::vector<quorum::ServerId> q;
  for (std::size_t t = 0; t < trials; ++t) {
    std::fill(holder.begin(), holder.end(), ~0ULL);
    qs.pick(quorum::AccessKind::kWrite, rng, q);
    std::vector<quorum::ServerId> target_quorum = q;
    for (quorum::ServerId s : q) holder[s] = 0;
    for (std::uint64_t w = 1; w <= l; ++w) {
      qs.pick(quorum::AccessKind::kWrite, rng, q);
      for (quorum::ServerId s : q) holder[s] = w;
    }
    bool alive = std::any_of(target_quorum.begin(), target_quorum.end(),
                             [&](quorum::ServerId s) { return holder[s] == 0; });
    if (alive) ++survived;
  }
  return static_cast<double>(survived) / static_cast<double>(trials);
}

std::vector<std::uint64_t> r5_y_samples(const quorum::QuorumSystem& qs,
                                        std::size_t samples, util::Rng& rng,
                                        std::uint64_t cap) {
  PQRA_REQUIRE(samples > 0, "need at least one sample");
  std::vector<std::uint64_t> out;
  out.reserve(samples);
  std::vector<quorum::ServerId> wq, rq;
  std::vector<bool> in_write(qs.num_servers());
  for (std::size_t t = 0; t < samples; ++t) {
    qs.pick(quorum::AccessKind::kWrite, rng, wq);
    std::fill(in_write.begin(), in_write.end(), false);
    for (quorum::ServerId s : wq) in_write[s] = true;
    std::uint64_t y = 0;
    for (;;) {
      ++y;
      qs.pick(quorum::AccessKind::kRead, rng, rq);
      bool overlap = std::any_of(rq.begin(), rq.end(), [&](quorum::ServerId s) {
        return in_write[s];
      });
      if (overlap || y >= cap) break;
    }
    out.push_back(y);
  }
  return out;
}

double r3_survival_rate_under_crashes(
    const quorum::QuorumSystem& qs, std::size_t l, std::size_t trials,
    util::Rng& rng, const std::vector<quorum::ServerId>& crashed) {
  PQRA_REQUIRE(trials > 0, "need at least one trial");
  const std::vector<bool> down = crash_mask(qs, crashed);
  std::size_t n = qs.num_servers();
  std::size_t survived = 0;
  std::vector<std::uint64_t> holder(n);
  std::vector<quorum::ServerId> q;
  for (std::size_t t = 0; t < trials; ++t) {
    std::fill(holder.begin(), holder.end(), ~0ULL);
    pick_live(qs, quorum::AccessKind::kWrite, rng, down, q);
    std::vector<quorum::ServerId> target_quorum = q;
    for (quorum::ServerId s : q) holder[s] = 0;
    for (std::uint64_t w = 1; w <= l; ++w) {
      pick_live(qs, quorum::AccessKind::kWrite, rng, down, q);
      for (quorum::ServerId s : q) holder[s] = w;
    }
    bool alive = std::any_of(target_quorum.begin(), target_quorum.end(),
                             [&](quorum::ServerId s) { return holder[s] == 0; });
    if (alive) ++survived;
  }
  return static_cast<double>(survived) / static_cast<double>(trials);
}

std::vector<std::uint64_t> r5_y_samples_under_crashes(
    const quorum::QuorumSystem& qs, std::size_t samples, util::Rng& rng,
    const std::vector<quorum::ServerId>& crashed, std::uint64_t cap) {
  PQRA_REQUIRE(samples > 0, "need at least one sample");
  const std::vector<bool> down = crash_mask(qs, crashed);
  std::vector<std::uint64_t> out;
  out.reserve(samples);
  std::vector<quorum::ServerId> wq, rq;
  std::vector<bool> in_write(qs.num_servers());
  for (std::size_t t = 0; t < samples; ++t) {
    pick_live(qs, quorum::AccessKind::kWrite, rng, down, wq);
    std::fill(in_write.begin(), in_write.end(), false);
    for (quorum::ServerId s : wq) in_write[s] = true;
    std::uint64_t y = 0;
    for (;;) {
      ++y;
      pick_live(qs, quorum::AccessKind::kRead, rng, down, rq);
      bool overlap = std::any_of(rq.begin(), rq.end(), [&](quorum::ServerId s) {
        return in_write[s];
      });
      if (overlap || y >= cap) break;
    }
    out.push_back(y);
  }
  return out;
}

std::vector<std::uint64_t> y_samples_from_history(
    const std::vector<OpRecord>& ops, RegisterId reg, NodeId proc) {
  // Gather this register's completed writes and this process's completed
  // reads, each sorted by time.
  std::vector<const OpRecord*> writes, reads;
  for (const OpRecord& op : ops) {
    if (op.reg != reg || !op.responded) continue;
    if (op.kind == OpKind::kWrite) writes.push_back(&op);
    if (op.kind == OpKind::kRead && op.proc == proc) reads.push_back(&op);
  }
  auto by_response = [](const OpRecord* a, const OpRecord* b) {
    return a->response < b->response;
  };
  std::sort(writes.begin(), writes.end(), by_response);
  std::stable_sort(reads.begin(), reads.end(),
                   [](const OpRecord* a, const OpRecord* b) {
                     return a->invoke < b->invoke;
                   });

  std::vector<std::uint64_t> samples;
  for (const OpRecord* w : writes) {
    std::uint64_t count = 0;
    bool resolved = false;
    for (const OpRecord* r : reads) {
      if (r->invoke < w->response) continue;  // not "after W"
      ++count;
      if (r->ts >= w->ts) {
        resolved = true;
        break;
      }
    }
    if (resolved) samples.push_back(count);
    // else: censored by the end of the execution; dropped.
  }
  return samples;
}

}  // namespace pqra::core::spec
