#include "core/spec/probabilistic_checks.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pqra::core::spec {

double r3_survival_rate(const quorum::QuorumSystem& qs, std::size_t l,
                        std::size_t trials, util::Rng& rng) {
  PQRA_REQUIRE(trials > 0, "need at least one trial");
  std::size_t n = qs.num_servers();
  std::size_t survived = 0;
  // holder[s] == current write's id at replica s; the target write is id 0,
  // subsequent writes are 1..l.
  std::vector<std::uint64_t> holder(n);
  std::vector<quorum::ServerId> q;
  for (std::size_t t = 0; t < trials; ++t) {
    std::fill(holder.begin(), holder.end(), ~0ULL);
    qs.pick(quorum::AccessKind::kWrite, rng, q);
    std::vector<quorum::ServerId> target_quorum = q;
    for (quorum::ServerId s : q) holder[s] = 0;
    for (std::uint64_t w = 1; w <= l; ++w) {
      qs.pick(quorum::AccessKind::kWrite, rng, q);
      for (quorum::ServerId s : q) holder[s] = w;
    }
    bool alive = std::any_of(target_quorum.begin(), target_quorum.end(),
                             [&](quorum::ServerId s) { return holder[s] == 0; });
    if (alive) ++survived;
  }
  return static_cast<double>(survived) / static_cast<double>(trials);
}

std::vector<std::uint64_t> r5_y_samples(const quorum::QuorumSystem& qs,
                                        std::size_t samples, util::Rng& rng,
                                        std::uint64_t cap) {
  PQRA_REQUIRE(samples > 0, "need at least one sample");
  std::vector<std::uint64_t> out;
  out.reserve(samples);
  std::vector<quorum::ServerId> wq, rq;
  std::vector<bool> in_write(qs.num_servers());
  for (std::size_t t = 0; t < samples; ++t) {
    qs.pick(quorum::AccessKind::kWrite, rng, wq);
    std::fill(in_write.begin(), in_write.end(), false);
    for (quorum::ServerId s : wq) in_write[s] = true;
    std::uint64_t y = 0;
    for (;;) {
      ++y;
      qs.pick(quorum::AccessKind::kRead, rng, rq);
      bool overlap = std::any_of(rq.begin(), rq.end(), [&](quorum::ServerId s) {
        return in_write[s];
      });
      if (overlap || y >= cap) break;
    }
    out.push_back(y);
  }
  return out;
}

std::vector<std::uint64_t> y_samples_from_history(
    const std::vector<OpRecord>& ops, RegisterId reg, NodeId proc) {
  // Gather this register's completed writes and this process's completed
  // reads, each sorted by time.
  std::vector<const OpRecord*> writes, reads;
  for (const OpRecord& op : ops) {
    if (op.reg != reg || !op.responded) continue;
    if (op.kind == OpKind::kWrite) writes.push_back(&op);
    if (op.kind == OpKind::kRead && op.proc == proc) reads.push_back(&op);
  }
  auto by_response = [](const OpRecord* a, const OpRecord* b) {
    return a->response < b->response;
  };
  std::sort(writes.begin(), writes.end(), by_response);
  std::stable_sort(reads.begin(), reads.end(),
                   [](const OpRecord* a, const OpRecord* b) {
                     return a->invoke < b->invoke;
                   });

  std::vector<std::uint64_t> samples;
  for (const OpRecord* w : writes) {
    std::uint64_t count = 0;
    bool resolved = false;
    for (const OpRecord* r : reads) {
      if (r->invoke < w->response) continue;  // not "after W"
      ++count;
      if (r->ts >= w->ts) {
        resolved = true;
        break;
      }
    }
    if (resolved) samples.push_back(count);
    // else: censored by the end of the execution; dropped.
  }
  return samples;
}

}  // namespace pqra::core::spec
