#include "core/spec/batch.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace pqra::core::spec {

const char* rule_id(Rule rule) {
  switch (rule) {
    case Rule::kR1:
      return "R1";
    case Rule::kR2:
      return "R2";
    case Rule::kR4:
      return "R4";
    case Rule::kSingleWriter:
      return "single-writer";
    case Rule::kRegular:
      return "regular";
    case Rule::kAtomic:
      return "atomic";
  }
  return "?";
}

std::optional<Rule> parse_rule(std::string_view id) {
  for (Rule rule : {Rule::kR1, Rule::kR2, Rule::kR4, Rule::kSingleWriter,
                    Rule::kRegular, Rule::kAtomic}) {
    if (id == rule_id(rule)) return rule;
  }
  return std::nullopt;
}

bool BatchResult::ok() const {
  for (const RuleOutcome& outcome : outcomes) {
    if (!outcome.result.ok) return false;
  }
  return true;
}

const RuleOutcome* BatchResult::first_failure() const {
  for (const RuleOutcome& outcome : outcomes) {
    if (!outcome.result.ok) return &outcome;
  }
  return nullptr;
}

std::string BatchResult::summary() const {
  const RuleOutcome* failure = first_failure();
  if (failure == nullptr) return "ok";
  std::string out = rule_id(failure->rule);
  out += ": ";
  out += failure->result.violations.empty() ? "(no detail)"
                                            : failure->result.violations[0];
  const std::size_t extra = num_violations() - 1;
  if (extra > 0) out += " (+" + std::to_string(extra) + " more)";
  return out;
}

std::size_t BatchResult::num_violations() const {
  std::size_t n = 0;
  for (const RuleOutcome& outcome : outcomes) {
    n += outcome.result.violations.size();
  }
  return n;
}

BatchResult check_batch(const std::vector<OpRecord>& ops,
                        const BatchOptions& options) {
  BatchResult result;
  if (options.r1) result.outcomes.push_back({Rule::kR1, check_r1(ops)});
  if (options.r2) result.outcomes.push_back({Rule::kR2, check_r2(ops)});
  if (options.r4) result.outcomes.push_back({Rule::kR4, check_r4(ops)});
  if (options.single_writer) {
    result.outcomes.push_back({Rule::kSingleWriter, check_single_writer(ops)});
  }
  if (options.regular) {
    result.outcomes.push_back({Rule::kRegular, check_regular(ops)});
  }
  if (options.atomic) {
    result.outcomes.push_back({Rule::kAtomic, check_atomic(ops)});
  }
  return result;
}

std::string KeyedBatchResult::summary() const {
  if (!first.has_value()) {
    return "ok over " + std::to_string(keys_checked) + " keys";
  }
  std::string out = rule_id(first->rule);
  out += " key=" + std::to_string(first->key) + ": " + first->violation;
  if (num_violations > 1) {
    out += " (+" + std::to_string(num_violations - 1) + " more)";
  }
  return out;
}

KeyedBatchResult check_batch_by_key(const std::vector<OpRecord>& ops,
                                    const BatchOptions& options) {
  // Group by key without a node-per-key map (a 10⁵-key store history made
  // the old map-of-vectors the single hottest symbol in the bench profile),
  // and without comparison-sorting the records either (the stable_sort of a
  // flat copy it was first replaced with still cost ~10 ms per bench run).
  // Key ids are small dense integers, so a counting sort over *pointers*
  // groups the history in two O(n) passes; walking the placement in record
  // order keeps each key's ops in recording order — exactly what the
  // per-key checkers would have seen with a per-key recorder — and
  // ascending key order keeps first-failure attribution deterministic.
  RegisterId max_reg = 0;
  for (const OpRecord& op : ops) max_reg = std::max(max_reg, op.reg);

  // Histories with key ids far sparser than the record count (possible in
  // hand-written tests — real keyspaces are dense) fall back to a stable
  // pointer sort rather than allocating a counting array per absent key.
  const bool dense =
      static_cast<std::size_t>(max_reg) <= 4 * ops.size() + 1024;

  std::vector<std::size_t> start;
  std::vector<const OpRecord*> sorted(ops.size());
  if (dense) {
    start.assign(static_cast<std::size_t>(max_reg) + 2, 0);
    for (const OpRecord& op : ops) ++start[op.reg + 1];
    for (std::size_t k = 1; k < start.size(); ++k) start[k] += start[k - 1];
    std::vector<std::size_t> cursor = start;
    for (const OpRecord& op : ops) sorted[cursor[op.reg]++] = &op;
  } else {
    for (std::size_t k = 0; k < ops.size(); ++k) sorted[k] = &ops[k];
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const OpRecord* a, const OpRecord* b) {
                       return a->reg < b->reg;
                     });
  }

  KeyedBatchResult result;
  std::vector<OpRecord> key_ops;
  for (std::size_t i = 0; i < sorted.size();) {
    const RegisterId reg = sorted[i]->reg;
    std::size_t j = i;
    if (dense) {
      j = start[reg + 1];
    } else {
      while (j < sorted.size() && sorted[j]->reg == reg) ++j;
    }
    ++result.keys_checked;
    // A key whose entire history is one completed write (typically the
    // preloaded initial of a never-touched key) passes every rule
    // vacuously: no reads to order, a single writer, nothing to intersect.
    // Large mostly-cold keyspaces make this the common case.
    if (j - i == 1 && sorted[i]->kind == OpKind::kWrite &&
        sorted[i]->responded) {
      i = j;
      continue;
    }
    key_ops.clear();
    key_ops.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) key_ops.push_back(*sorted[k]);
    const BatchResult batch = check_batch(key_ops, options);
    result.num_violations += batch.num_violations();
    if (!result.first.has_value()) {
      if (const RuleOutcome* failure = batch.first_failure()) {
        KeyedFirstFailure first;
        first.rule = failure->rule;
        first.key = reg;
        first.violation = failure->result.violations.empty()
                              ? "(no detail)"
                              : failure->result.violations[0];
        result.first = std::move(first);
      }
    }
    i = j;
  }
  return result;
}

}  // namespace pqra::core::spec
